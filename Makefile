GO ?= go

.PHONY: build test vet lint race race-storage ci

# Tier-1 verification: everything builds, every test passes.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static invariants: stock go vet plus the repo's own gdbvet suite
# (vfsonly, syncerr, capdecl, lockdiscipline) driven through the
# -vettool protocol. See DESIGN.md "Static invariants".
bin/gdbvet: FORCE
	$(GO) build -o $@ ./cmd/gdbvet

.PHONY: FORCE
FORCE:

lint: vet bin/gdbvet
	$(GO) vet -vettool=$(CURDIR)/bin/gdbvet ./...

# The whole module runs under the race detector; the storage subset
# remains as a faster inner-loop target.
race:
	$(GO) test -race ./...

race-storage:
	$(GO) test -race ./internal/storage/... ./internal/engines/suite/...

ci: lint test race
