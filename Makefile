GO ?= go

.PHONY: build test vet lint race race-storage race-kernels bench ci

# Tier-1 verification: everything builds, every test passes.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static invariants: stock go vet plus the repo's own gdbvet suite
# (vfsonly, syncerr, capdecl, lockdiscipline) driven through the
# -vettool protocol. See DESIGN.md "Static invariants".
bin/gdbvet: FORCE
	$(GO) build -o $@ ./cmd/gdbvet

.PHONY: FORCE
FORCE:

lint: vet bin/gdbvet
	$(GO) vet -vettool=$(CURDIR)/bin/gdbvet ./...

# The whole module runs under the race detector; the storage subset
# remains as a faster inner-loop target.
race:
	$(GO) test -race ./...

race-storage:
	$(GO) test -race ./internal/storage/... ./internal/engines/suite/...

# Query kernels and every engine under the race detector — the surface the
# parallel substrate touches.
race-kernels:
	$(GO) test -race ./internal/algo/... ./internal/engines/...

# Parallel kernel sweep; records honest per-host numbers (GOMAXPROCS and
# NumCPU are in the JSON, speedup needs a multi-core host).
bench:
	$(GO) run ./cmd/gdbbench -parallel -table none -out BENCH_parallel.json

ci: lint test race race-kernels
