GO ?= go

.PHONY: build test vet race-storage ci

# Tier-1 verification: everything builds, every test passes.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The storage stack and the engine conformance suite carry the crash-
# recovery harness; run them under the race detector.
race-storage:
	$(GO) test -race ./internal/storage/... ./internal/engines/suite/...

ci: vet test race-storage
