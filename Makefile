GO ?= go
COVER_FLOOR ?= 45.0
FUZZTIME ?= 10s

.PHONY: build test vet lint race race-storage race-kernels race-obs race-server race-snapshots race-plan bench cover fuzz-smoke serve-smoke bench-serve ci

# Tier-1 verification: everything builds, every test passes.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static invariants: stock go vet plus the repo's own gdbvet suite
# (vfsonly, syncerr, capdecl, lockdiscipline, obsctx, ctxflow, itererr,
# closeleak, lockorder) driven two ways: per-package through the
# -vettool protocol, then standalone so the summary-driven analyzers see
# module-wide function summaries (cross-package lock cycles only exist
# there). The standalone pass also audits every //gdbvet:allow directive
# and enforces the per-analyzer suppression budget in .gdbvet-budget.
# See DESIGN.md "Static invariants".
bin/gdbvet: FORCE
	$(GO) build -o $@ ./cmd/gdbvet

.PHONY: FORCE
FORCE:

lint: vet bin/gdbvet
	$(GO) vet -vettool=$(CURDIR)/bin/gdbvet ./...
	./bin/gdbvet -audit -budget .gdbvet-budget ./...

# The whole module runs under the race detector; the storage subset
# remains as a faster inner-loop target.
race:
	$(GO) test -race ./...

race-storage:
	$(GO) test -race ./internal/storage/... ./internal/engines/suite/...

# Query kernels and every engine under the race detector — the surface the
# parallel substrate touches.
race-kernels:
	$(GO) test -race ./internal/algo/... ./internal/engines/...

# The observability substrate and its differential twins under the race
# detector: concurrent counter/span traffic plus the trace-on/off and
# observed/unobserved byte-identity proofs.
race-obs:
	$(GO) test -race ./internal/obs/... ./internal/report/... ./internal/enginetest/diff/...

# The MVCC snapshot surface under the race detector: the versioned
# adjacency store, both store-level acquire paths, the engine
# snapshot/cancellation suite, and the writer-during-long-read twin
# proof. See DESIGN.md "Snapshot & versioning contract".
race-snapshots:
	$(GO) test -race ./internal/adj/... ./internal/memgraph/ ./internal/kvgraph/ ./internal/engines/suite/
	$(GO) test -race ./internal/enginetest/diff/ -run TestPinnedSnapshotSurvivesWriterTwins -count=1

# The planner surface under the race detector: cardinality statistics,
# the cost-based/WCO planner, and the plan-differential + metamorphic
# twins that prove plan choice never changes answers. See DESIGN.md
# "Planning & statistics contract".
race-plan:
	$(GO) test -race ./internal/query/stats/ ./internal/query/plan/
	$(GO) test -race ./internal/enginetest/diff/ -run 'TestPlanDifferential|TestPlanMetamorphic' -count=1

# The networked service under the race detector: session registry,
# admission gate, and the token-bucket/load-harness pieces that hammer
# them concurrently.
race-server:
	$(GO) test -race ./internal/server/... ./cmd/gdbserver/... ./cmd/gdbload/...

# Parallel kernel sweep and cold/warm cache sweep; both record honest
# per-host numbers (the parallel JSON carries GOMAXPROCS/NumCPU, the cache
# JSON carries the budget and hit/miss ledgers).
bench:
	$(GO) run ./cmd/gdbbench -parallel -table none -out BENCH_parallel.json
	$(GO) run ./cmd/gdbbench -cache -table none -out BENCH_cache.json
	$(GO) run ./cmd/gdbbench -plan -table none -nodes 20000 -degree 6 -out BENCH_plan.json

# Per-package coverage with a floor: any tested package below COVER_FLOOR
# fails the build. Packages without tests, command mains and examples are
# exempt — adding the first test to a package puts it on the hook.
cover:
	$(GO) test -cover ./... | awk -v floor=$(COVER_FLOOR) ' \
		{ print } \
		$$1 != "ok" { next } \
		$$2 ~ /^gdbm\/(cmd|examples)\// { next } \
		/\[no statements\]/ { next } \
		/coverage:/ { \
			pct = ""; \
			for (i = 1; i <= NF; i++) if ($$i == "coverage:") { pct = $$(i+1); sub(/%.*/, "", pct) } \
			if (pct != "" && pct + 0 < floor) { bad = bad "\n  " $$2 " " pct "% < " floor "%" } \
		} \
		END { if (bad != "") { printf "coverage floor violations:%s\n", bad; exit 1 } }'

# Short deterministic fuzz pass over every fuzz target; long enough to
# catch regressions of previously-found crashers, short enough for ci.
# go test allows -fuzz for one package per invocation, hence two runs.
fuzz-smoke:
	$(GO) test ./internal/query/ -run '^$$' -fuzz FuzzParseQuery -fuzztime $(FUZZTIME)
	$(GO) test ./internal/format/ -run '^$$' -fuzz FuzzFormatRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/query/plan/ -run '^$$' -fuzz FuzzCompileMatchSpec -fuzztime $(FUZZTIME)

# Overload drill: build the real gdbserver/gdbload binaries, burst at 2×
# the configured capacity, run a binary-protocol pass and a streamed
# multi-chunk large result, and assert shed-not-crash plus a clean SIGTERM
# drain. See DESIGN.md "Overload & degradation contract" and "Wire &
# streaming contract".
serve-smoke:
	$(GO) test ./cmd/gdbserver/ -run TestServeSmoke -count=1 -v

# Closed-loop serve benchmark: in-process server over real TCP, open-loop
# Poisson arrivals at 0.5×/1×/2× capacity, host-stamped JSON out. -proto
# both runs the sweep once per response encoding and appends the JSON-vs-
# binary comparison rows (p50/p99, bytes per query).
bench-serve:
	$(GO) run ./cmd/gdbload -selfserve -engine neograph -capacity 100 -proto both -out BENCH_serve.json

ci: lint test race race-kernels race-obs race-snapshots race-server race-plan cover fuzz-smoke serve-smoke
