// Benchmark harness: one benchmark family per table of the survey plus the
// ablations DESIGN.md calls out. The feature matrices themselves are exact
// (regenerated and diffed in internal/report); the benchmarks here measure
// the *cost* of each compared capability so the trade-offs the survey
// discusses are observable, and BenchmarkPerfSweep reproduces the shape of
// the performance study the survey cites (Dominguez-Sal et al. [11]).
package gdbm_test

import (
	"context"
	"fmt"
	"os"
	"testing"

	"gdbm"
	"gdbm/internal/algo"
	"gdbm/internal/algo/par"
	"gdbm/internal/engine/capability"
	"gdbm/internal/engines/bitmapdb"
	"gdbm/internal/engines/sonesdb"
	"gdbm/internal/engines/triplestore"
	"gdbm/internal/gen"
	"gdbm/internal/index"
	"gdbm/internal/kvgraph"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/pastql"
	"gdbm/internal/storage/kv"
	"gdbm/internal/storage/pager"
)

// openEngine opens an engine, giving disk-requiring archetypes a temp dir.
func openEngine(b *testing.B, name string) gdbm.Engine {
	b.Helper()
	opts := gdbm.Options{}
	if capability.NeedsDir(name) {
		opts.Dir = b.TempDir()
	}
	e, err := gdbm.Open(name, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

func seedRMAT(b *testing.B, e gdbm.Engine, nodes int) []gdbm.NodeID {
	b.Helper()
	ids, err := gdbm.Generate(gdbm.GenSpec{Kind: gdbm.RMAT, Nodes: nodes, EdgesPerNode: 4, Seed: 99}, e.(gdbm.Loader))
	if err != nil {
		b.Fatal(err)
	}
	return ids
}

// --- Table I: data storing — ingest cost per storage scheme ---

func BenchmarkTableI_Ingest(b *testing.B) {
	cases := []struct {
		name string
		dir  bool
	}{
		{"neograph/main-memory", false},
		{"neograph/external-memory", true},
		{"vertexkv/backend-btree", true},
		{"filamentdb/backend-kv", true},
		{"gstore/external-only", true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			name := c.name[:indexByte(c.name, '/')]
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				opts := gdbm.Options{}
				if c.dir {
					opts.Dir = b.TempDir()
				}
				e, err := gdbm.Open(name, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := gdbm.Generate(gdbm.GenSpec{Kind: gdbm.ErdosRenyi, Nodes: 500, EdgesPerNode: 3, Seed: 1}, e.(gdbm.Loader)); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				e.Close()
			}
		})
	}
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return len(s)
}

// --- Table II: operation through a language vs through the API ---

func BenchmarkTableII_APIInsert(b *testing.B) {
	e := openEngine(b, "neograph")
	api := e.(gdbm.GraphAPI)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := api.AddNode("Person", gdbm.Props("i", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_QLInsert(b *testing.B) {
	e := openEngine(b, "neograph")
	q := e.(gdbm.Querier)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Query(fmt.Sprintf(`CREATE (n:Person {i: %d})`, i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_DDL(b *testing.B) {
	e := openEngine(b, "sonesdb")
	q := e.(gdbm.Querier)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Query(fmt.Sprintf(`CREATE VERTEX TYPE T%d (name STRING)`, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table III: structure construction cost per graph model ---

func BenchmarkTableIII_Structures(b *testing.B) {
	b.Run("simple-graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := memgraph.New()
			a, _ := g.AddNode("N", nil)
			c, _ := g.AddNode("N", nil)
			g.AddEdge("e", a, c, nil)
		}
	})
	b.Run("attributed-graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := memgraph.New()
			a, _ := g.AddNode("N", model.Props("k", 1, "s", "x"))
			c, _ := g.AddNode("N", model.Props("k", 2))
			g.AddEdge("e", a, c, model.Props("w", 0.5))
		}
	})
	b.Run("hypergraph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := memgraph.NewHypergraph()
			a, _ := g.AddNode("N", nil)
			c, _ := g.AddNode("N", nil)
			d, _ := g.AddNode("N", nil)
			g.AddHyperEdge("e", []model.NodeID{a, c, d}, nil)
		}
	})
	b.Run("nested-graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := memgraph.NewNested()
			a, _ := g.AddNode("N", nil)
			child := memgraph.NewNested()
			child.AddNode("inner", nil)
			g.Nest(a, child)
		}
	})
}

// --- Table IV: schema-checked vs schemaless instance creation ---

func BenchmarkTableIV_SchemalessInsert(b *testing.B) {
	e := openEngine(b, "neograph") // no schema, no types checking
	api := e.(gdbm.GraphAPI)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		api.AddNode("Person", gdbm.Props("name", fmt.Sprintf("p%d", i)))
	}
}

func BenchmarkTableIV_TypedInsert(b *testing.B) {
	e := openEngine(b, "bitmapdb") // types checking on every insert
	db := e.(*bitmapdb.DB)
	db.Schema().EnsureNodeType("Person", gdbm.Props("name", ""))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.AddNode("Person", gdbm.Props("name", fmt.Sprintf("p%d", i)))
	}
}

// --- Table V: the query facilities ---

func BenchmarkTableV_RetrievalQL(b *testing.B) {
	e := openEngine(b, "neograph")
	seedRMAT(b, e, 500)
	q := e.(gdbm.Querier)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Query(`MATCH (n:N) WHERE n.idx = 250 RETURN n.idx AS i`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableV_Reasoning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := func() gdbm.Engine {
			e, err := gdbm.Open("triplestore", gdbm.Options{})
			if err != nil {
				b.Fatal(err)
			}
			return e
		}()
		ts := e.(*triplestore.DB)
		for j := 0; j < 20; j++ {
			ts.AddTriple(fmt.Sprintf("c%d", j), "subClassOf", fmt.Sprintf("c%d", j+1))
		}
		ts.AddTriple("x", "type", "c0")
		b.StartTimer()
		if _, err := ts.Materialize(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		e.Close()
	}
}

func BenchmarkTableV_AnalysisShortestPath(b *testing.B) {
	e := openEngine(b, "bitmapdb")
	ids := seedRMAT(b, e, 2000)
	es := e.Essentials()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es.ShortestPath(ids[i%100], ids[len(ids)-1-(i%100)])
	}
}

// --- Table VI: integrity constraint validation overhead ---

func BenchmarkTableVI_ConstraintOverhead(b *testing.B) {
	b.Run("no-constraints", func(b *testing.B) {
		e := openEngine(b, "neograph")
		api := e.(gdbm.GraphAPI)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			api.AddNode("P", gdbm.Props("name", fmt.Sprintf("n%d", i)))
		}
	})
	b.Run("identity+cardinality", func(b *testing.B) {
		e := openEngine(b, "sonesdb")
		db := e.(*sonesdb.DB)
		db.AddIdentity("P", "name")
		db.AddCardinality("owns", 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.AddNode("P", gdbm.Props("name", fmt.Sprintf("n%d", i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Table VII: one bench per essential query class, per engine surface ---

func benchEssential(b *testing.B, op string, run func(b *testing.B, e gdbm.Engine, ids []gdbm.NodeID, es gdbm.Essentials)) {
	for _, name := range gdbm.Engines() {
		e := openEngine(b, name)
		es := e.Essentials()
		exposed := map[string]bool{
			"adjacency": es.NodeAdjacency != nil,
			"khood":     es.KNeighborhood != nil,
			"fixed":     es.FixedLengthPaths != nil,
			"shortest":  es.ShortestPath != nil,
			"summarize": es.Summarization != nil,
		}
		if !exposed[op] {
			continue
		}
		ids := seedRMAT(b, e, 1000)
		b.Run(e.SurveyRow(), func(b *testing.B) {
			run(b, e, ids, es)
		})
	}
}

func BenchmarkTableVII_Adjacency(b *testing.B) {
	benchEssential(b, "adjacency", func(b *testing.B, e gdbm.Engine, ids []gdbm.NodeID, es gdbm.Essentials) {
		for i := 0; i < b.N; i++ {
			es.NodeAdjacency(ids[i%len(ids)], ids[(i*7)%len(ids)])
		}
	})
}

func BenchmarkTableVII_KNeighborhood(b *testing.B) {
	benchEssential(b, "khood", func(b *testing.B, e gdbm.Engine, ids []gdbm.NodeID, es gdbm.Essentials) {
		for i := 0; i < b.N; i++ {
			es.KNeighborhood(ids[i%len(ids)], 2)
		}
	})
}

func BenchmarkTableVII_FixedLengthPaths(b *testing.B) {
	benchEssential(b, "fixed", func(b *testing.B, e gdbm.Engine, ids []gdbm.NodeID, es gdbm.Essentials) {
		for i := 0; i < b.N; i++ {
			es.FixedLengthPaths(ids[i%len(ids)], ids[(i*13)%len(ids)], 3)
		}
	})
}

func BenchmarkTableVII_ShortestPath(b *testing.B) {
	benchEssential(b, "shortest", func(b *testing.B, e gdbm.Engine, ids []gdbm.NodeID, es gdbm.Essentials) {
		for i := 0; i < b.N; i++ {
			es.ShortestPath(ids[i%len(ids)], ids[(i*31)%len(ids)])
		}
	})
}

func BenchmarkTableVII_Summarization(b *testing.B) {
	benchEssential(b, "summarize", func(b *testing.B, e gdbm.Engine, ids []gdbm.NodeID, es gdbm.Essentials) {
		for i := 0; i < b.N; i++ {
			es.Summarization(gdbm.AggAvg, "N", "weight")
		}
	})
}

// Pattern matching and regular path queries are unsupported by every
// surveyed engine surface (Table VII's empty columns); their cost is
// measured on the shared algorithm layer instead.
func BenchmarkTableVII_PatternMatchingSubstrate(b *testing.B) {
	g := memgraph.New()
	sink := &gen.MemSink{}
	gen.Generate(gen.Spec{Kind: gen.ER, Nodes: 300, EdgesPerNode: 3, Seed: 5}, sink)
	idmap := map[model.NodeID]model.NodeID{}
	for _, n := range sink.NodesList {
		id, _ := g.AddNode(n.Label, n.Props)
		idmap[n.ID] = id
	}
	for _, e := range sink.EdgesList {
		g.AddEdge(e.Label, idmap[e.From], idmap[e.To], nil)
	}
	pat, _ := gdbm.NewPattern(
		[]gdbm.PatternNode{{Var: "a"}, {Var: "b"}, {Var: "c"}},
		[]gdbm.PatternEdge{{From: 0, To: 1, Label: "link"}, {From: 1, To: 2, Label: "link"}},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gdbm.FindMatches(g, pat, 100)
	}
}

// --- Table VIII: the past-language profiles on the formal core ---

func BenchmarkTableVIII_PastLanguages(b *testing.B) {
	g := memgraph.New()
	ids := make([]model.NodeID, 50)
	for i := range ids {
		ids[i], _ = g.AddNode("V", nil)
	}
	for i := 0; i+1 < len(ids); i++ {
		g.AddEdge("a", ids[i], ids[i+1], nil)
	}
	for _, l := range pastql.Languages() {
		if l.Ops.RegularPaths == nil {
			continue
		}
		b.Run(l.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := l.Ops.RegularPaths(g, ids[0], "a/a/a"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- The cited performance study: R-MAT sweep across engines ---

func BenchmarkPerfSweep(b *testing.B) {
	for _, nodes := range []int{1000, 4000} {
		for _, name := range []string{"neograph", "bitmapdb", "vertexkv", "triplestore"} {
			b.Run(fmt.Sprintf("%s/n%d", name, nodes), func(b *testing.B) {
				e := openEngine(b, name)
				ids := seedRMAT(b, e, nodes)
				es := e.Essentials()
				if es.KNeighborhood == nil {
					b.Skip("no traversal surface")
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					es.KNeighborhood(ids[i%len(ids)], 2)
				}
			})
		}
	}
}

// --- Ablations (DESIGN.md) ---

func BenchmarkAblationIndexKind(b *testing.B) {
	kinds := map[string]index.Index{
		"bitmap":  index.NewBitmap(),
		"hash":    index.NewHash(),
		"ordered": index.NewOrdered(kv.NewMemory()),
	}
	for name, idx := range kinds {
		for i := 0; i < 10000; i++ {
			idx.Add(model.Int(int64(i%50)), uint64(i))
		}
		b.Run(name+"/lookup", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				idx.Lookup(model.Int(int64(i%50)), func(uint64) bool { n++; return true })
			}
		})
	}
}

func BenchmarkAblationAdjacency(b *testing.B) {
	builders := map[string]func() model.MutableGraph{
		"adjacency-list": func() model.MutableGraph { return memgraph.New() },
		"kv-encoded":     func() model.MutableGraph { return kvgraph.New(kv.NewMemory()) },
	}
	for name, build := range builders {
		g := build()
		sink := graphSink{g}
		gen.Generate(gen.Spec{Kind: gen.ER, Nodes: 2000, EdgesPerNode: 4, Seed: 3}, sink)
		b.Run(name+"/expand", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				id := model.NodeID(1 + i%2000)
				g.Neighbors(id, model.Both, func(model.Edge, model.Node) bool { return true })
			}
		})
	}
}

type graphSink struct{ g model.MutableGraph }

func (s graphSink) LoadNode(label string, props model.Properties) (model.NodeID, error) {
	return s.g.AddNode(label, props)
}
func (s graphSink) LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	return s.g.AddEdge(label, from, to, props)
}

func BenchmarkAblationRPQ(b *testing.B) {
	g := memgraph.New()
	ids := make([]model.NodeID, 60)
	for i := range ids {
		ids[i], _ = g.AddNode("V", nil)
	}
	for i := 0; i+1 < len(ids); i++ {
		g.AddEdge("a", ids[i], ids[i+1], nil)
		if i%3 == 0 {
			g.AddEdge("b", ids[i], ids[(i+7)%len(ids)], nil)
		}
	}
	pe, err := gdbm.CompilePathExpr("a/(a|b)*")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("product-automaton", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pe.Eval(g, ids[0])
		}
	})
	b.Run("naive-enumeration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pe.EvalNaive(g, ids[0], 8)
		}
	})
}

func BenchmarkAblationBufferPool(b *testing.B) {
	for _, pool := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("pool%d", pool), func(b *testing.B) {
			dir := b.TempDir()
			pg, err := pager.Open(dir+"/bp.pg", pager.Options{PoolPages: pool})
			if err != nil {
				b.Fatal(err)
			}
			defer pg.Close()
			var pages []pager.PageID
			payload := make([]byte, 512)
			for i := 0; i < 4096; i++ {
				id, err := pg.Allocate()
				if err != nil {
					b.Fatal(err)
				}
				pg.Write(id, payload)
				pages = append(pages, id)
			}
			b.ResetTimer()
			// Skewed access: 90% of reads hit a 64-page hot set, the rest
			// sweep the cold range — the regime where pool size matters.
			for i := 0; i < b.N; i++ {
				var id pager.PageID
				if i%10 != 0 {
					id = pages[i%64]
				} else {
					id = pages[(i*37)%len(pages)]
				}
				if _, err := pg.Read(id); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			hits, misses := pg.Stats()
			if hits+misses > 0 {
				b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
			}
		})
	}
}

// BenchmarkQueryPlanner measures the planner's index use: the same lookup
// with and without a property index.
func BenchmarkQueryPlanner(b *testing.B) {
	mk := func(withIndex bool) (gdbm.Querier, func()) {
		e, err := gdbm.Open("neograph", gdbm.Options{})
		if err != nil {
			b.Fatal(err)
		}
		l := e.(gdbm.Loader)
		for i := 0; i < 3000; i++ {
			l.LoadNode("P", gdbm.Props("idx", i))
		}
		if withIndex {
			type indexer interface{ CreateIndex(string) error }
			if err := e.(indexer).CreateIndex("idx"); err != nil {
				b.Fatal(err)
			}
		}
		return e.(gdbm.Querier), func() { e.Close() }
	}
	b.Run("full-scan", func(b *testing.B) {
		q, done := mk(false)
		defer done()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Query(`MATCH (p:P {idx: 1500}) RETURN p.idx AS i`)
		}
	})
	b.Run("hash-index", func(b *testing.B) {
		q, done := mk(true)
		defer done()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Query(`MATCH (p:P {idx: 1500}) RETURN p.idx AS i`)
		}
	})
}

// BenchmarkParallelKernels compares each parallel kernel against its
// sequential baseline over a shared R-MAT fixture. `make bench` runs the
// same kernels through cmd/gdbbench and records BENCH_parallel.json.
func BenchmarkParallelKernels(b *testing.B) {
	g := memgraph.New()
	ids, err := gen.Generate(gen.Spec{Kind: gen.RMAT, Nodes: 3000, EdgesPerNode: 4, Seed: 42}, graphSink{g})
	if err != nil {
		b.Fatal(err)
	}
	for i, id := range ids {
		g.SetNodeProp(id, "idx", model.Int(int64(i)))
	}
	pe, err := gdbm.CompilePathExpr("link/link")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	start := ids[0]
	for _, workers := range []int{0, 1, 2, 4, 8} {
		var opt par.Options
		name := "sequential"
		if workers > 0 {
			pool := par.New(workers)
			defer pool.Close()
			opt = par.Options{Workers: workers, Threshold: 1, Pool: pool}
			name = fmt.Sprintf("workers%d", workers)
		}
		b.Run("bfs/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if workers == 0 {
					err = algo.BFS(g, start, model.Both, func(model.NodeID, int) bool { return true })
				} else {
					err = par.BFS(ctx, g, start, model.Both, opt, func(model.NodeID, int) bool { return true })
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("rpq/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if workers == 0 {
					_, err = pe.Eval(g, start)
				} else {
					_, err = par.EvalPath(ctx, pe, g, start, opt)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("degrees/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if workers == 0 {
					_, err = algo.Degrees(g, model.Both)
				} else {
					_, err = par.Degrees(ctx, g, model.Both, opt)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
