// Command gdbbench regenerates the survey's comparison tables from the
// living engines and runs the performance sweep.
//
// Usage:
//
//	gdbbench -table all            # print Tables I–VIII
//	gdbbench -table 7              # print one table
//	gdbbench -diff                 # cell-by-cell diff vs the paper
//	gdbbench -perf -nodes 10000    # performance sweep (HPC-SGAB style)
//	gdbbench -parallel -table none # parallel kernel sweep
//	gdbbench -parallel -out BENCH_parallel.json -table none
//	gdbbench -cache -out BENCH_cache.json -table none
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"gdbm"
	"gdbm/internal/engine/capability"
	"gdbm/internal/storage/vfs"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 1..8 or 'all' or 'none'")
	diff := flag.Bool("diff", false, "print the cell-by-cell diff against the paper's matrices")
	perf := flag.Bool("perf", false, "run the performance sweep")
	parallel := flag.Bool("parallel", false, "run the parallel kernel sweep")
	cacheSweep := flag.Bool("cache", false, "run the cold/warm cache sweep")
	cacheBytes := flag.Int64("cachebytes", 4<<20, "total cache budget per engine for -cache")
	workers := flag.String("workers", "1,2,4,8", "comma-separated worker counts for -parallel")
	out := flag.String("out", "", "write the -parallel or -cache sweep as JSON to this file")
	nodes := flag.Int("nodes", 2000, "perf sweep graph size (nodes)")
	degree := flag.Int("degree", 4, "perf sweep edges per node")
	seed := flag.Int64("seed", 42, "workload seed")
	dir := flag.String("dir", "", "data directory for disk-backed engines (default: temp)")
	flag.Parse()

	if err := run(*table, *diff, *perf, *parallel, *cacheSweep, *cacheBytes, *workers, *out, *nodes, *degree, *seed, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "gdbbench:", err)
		os.Exit(1)
	}
}

func run(table string, diff, perf, parallel, cacheSweep bool, cacheBytes int64, workers, out string, nodes, degree int, seed int64, dir string) error {
	if dir == "" {
		tmp, err := vfs.OSFS.TempDir("gdbbench")
		if err != nil {
			return err
		}
		defer vfs.OSFS.RemoveAll(tmp)
		dir = tmp
	}

	openAll := func() ([]gdbm.Engine, func(), error) {
		var engines []gdbm.Engine
		for _, name := range gdbm.Engines() {
			opts := gdbm.Options{}
			if capability.NeedsDir(name) {
				opts.Dir = filepath.Join(dir, name)
				if err := vfs.OSFS.MkdirAll(opts.Dir); err != nil {
					return nil, nil, err
				}
			}
			e, err := gdbm.Open(name, opts)
			if err != nil {
				return nil, nil, fmt.Errorf("open %s: %w", name, err)
			}
			engines = append(engines, e)
		}
		cleanup := func() {
			for _, e := range engines {
				e.Close()
			}
		}
		return engines, cleanup, nil
	}

	if table != "none" {
		engines, cleanup, err := openAll()
		if err != nil {
			return err
		}
		tables, err := gdbm.Tables(engines)
		cleanup()
		if err != nil {
			return err
		}
		want := map[string]string{
			"1": "I", "2": "II", "3": "III", "4": "IV",
			"5": "V", "6": "VI", "7": "VII", "8": "VIII",
		}
		for _, t := range tables {
			if table != "all" && want[table] != t.ID {
				continue
			}
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			if diff {
				mismatches := gdbm.DiffWithPaper(t)
				if len(mismatches) == 0 {
					if t.ID == "VIII" {
						fmt.Println("  (Table VIII has no machine-checkable reference: the paper's matrix is reconstructed; see EXPERIMENTS.md)")
					} else {
						fmt.Printf("  Table %s matches the paper cell for cell.\n", t.ID)
					}
				}
				for _, m := range mismatches {
					fmt.Println("  MISMATCH:", m)
				}
				fmt.Println()
			}
		}
	}

	if perf {
		fmt.Printf("performance sweep: R-MAT n=%d, degree=%d, seed=%d\n\n", nodes, degree, seed)
		open := func(name string) (gdbm.Engine, error) {
			opts := gdbm.Options{}
			// vertexkv is benched in its disk-backed configuration by
			// choice; disk-only archetypes get a directory by necessity.
			if capability.NeedsDir(name) || name == "vertexkv" {
				d := filepath.Join(dir, "perf-"+name)
				if err := vfs.OSFS.RemoveAll(d); err != nil {
					return nil, err
				}
				if err := vfs.OSFS.MkdirAll(d); err != nil {
					return nil, err
				}
				opts.Dir = d
			}
			return gdbm.Open(name, opts)
		}
		results, err := gdbm.RunPerf(open, gdbm.Engines(), nodes, degree, seed)
		if err != nil {
			return err
		}
		gdbm.RenderPerf(os.Stdout, results)
	}

	if parallel {
		counts, err := parseWorkers(workers)
		if err != nil {
			return err
		}
		sweep, err := gdbm.RunParallelSweep(nodes, degree, seed, counts)
		if err != nil {
			return err
		}
		gdbm.RenderParallel(os.Stdout, sweep)
		if out != "" {
			if err := gdbm.WriteParallelJSON(vfs.OSFS, out, sweep); err != nil {
				return err
			}
			fmt.Println("wrote", out)
		}
	}

	if cacheSweep {
		open := func(name string, budget int64) (gdbm.Engine, error) {
			d := filepath.Join(dir, fmt.Sprintf("cache-%s-%d", name, budget))
			if err := vfs.OSFS.RemoveAll(d); err != nil {
				return nil, err
			}
			if err := vfs.OSFS.MkdirAll(d); err != nil {
				return nil, err
			}
			return gdbm.Open(name, gdbm.Options{Dir: d, CacheBytes: budget})
		}
		// The three disk-backed engines whose cached configuration the
		// differential harness proves observationally identical.
		sweep, err := gdbm.RunCacheSweep(open, []string{"neograph", "vertexkv", "gstore"}, nodes, degree, seed, cacheBytes)
		if err != nil {
			return err
		}
		gdbm.RenderCache(os.Stdout, sweep)
		if out != "" {
			if err := gdbm.WriteCacheJSON(vfs.OSFS, out, sweep); err != nil {
				return err
			}
			fmt.Println("wrote", out)
		}
	}
	return nil
}

func parseWorkers(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-workers lists no counts")
	}
	return counts, nil
}
