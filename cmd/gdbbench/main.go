// Command gdbbench regenerates the survey's comparison tables from the
// living engines and runs the performance sweep.
//
// Usage:
//
//	gdbbench -table all            # print Tables I–VIII
//	gdbbench -table 7              # print one table
//	gdbbench -diff                 # cell-by-cell diff vs the paper
//	gdbbench -perf -nodes 10000    # performance sweep (HPC-SGAB style)
//	gdbbench -parallel -table none # parallel kernel sweep
//	gdbbench -parallel -out BENCH_parallel.json -table none
//	gdbbench -cache -out BENCH_cache.json -table none
//	gdbbench -trace -table none    # traced query sweep (per-query spans)
//	gdbbench -trace -slowlog slow.log -slowms 1 -table none
//	gdbbench -plan -table none     # planner sweep (naive vs cost vs WCO)
//	gdbbench -plan -planpatterns triangle,reorder -out BENCH_plan.json -table none
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gdbm"
	"gdbm/internal/engine/capability"
	"gdbm/internal/obs"
	"gdbm/internal/storage/vfs"
)

// benchConfig is the parsed flag set. Keeping it a value makes the flag
// matrix testable without re-parsing argv.
type benchConfig struct {
	table      string
	diff       bool
	perf       bool
	parallel   bool
	cacheSweep bool
	trace      bool
	planSweep  bool
	planPats   string // comma-separated subset for -plan; "" = all
	cacheBytes int64
	workers    string
	out        string
	nodes      int
	degree     int
	seed       int64
	dir        string
	dirSet     bool   // -dir was given explicitly
	engines    string // comma-separated subset for -perf/-trace; "" = all
	slowlog    string
	slowms     int
}

func main() {
	var cfg benchConfig
	flag.StringVar(&cfg.table, "table", "all", "table to regenerate: 1..8 or 'all' or 'none'")
	flag.BoolVar(&cfg.diff, "diff", false, "print the cell-by-cell diff against the paper's matrices")
	flag.BoolVar(&cfg.perf, "perf", false, "run the performance sweep")
	flag.BoolVar(&cfg.parallel, "parallel", false, "run the parallel kernel sweep")
	flag.BoolVar(&cfg.cacheSweep, "cache", false, "run the cold/warm cache sweep")
	flag.BoolVar(&cfg.trace, "trace", false, "run the traced query sweep (per-query spans)")
	flag.BoolVar(&cfg.planSweep, "plan", false, "run the query-planner sweep (naive vs cost-based vs WCO)")
	flag.StringVar(&cfg.planPats, "planpatterns", "", "comma-separated patterns for -plan (default: all)")
	flag.Int64Var(&cfg.cacheBytes, "cachebytes", 4<<20, "total cache budget per engine for -cache")
	flag.StringVar(&cfg.workers, "workers", "1,2,4,8", "comma-separated worker counts for -parallel")
	flag.StringVar(&cfg.out, "out", "", "write the -parallel, -cache or -trace sweep as JSON to this file")
	flag.IntVar(&cfg.nodes, "nodes", 2000, "perf sweep graph size (nodes)")
	flag.IntVar(&cfg.degree, "degree", 4, "perf sweep edges per node")
	flag.Int64Var(&cfg.seed, "seed", 42, "workload seed")
	flag.StringVar(&cfg.dir, "dir", "", "data directory for disk-backed engines (default: temp)")
	flag.StringVar(&cfg.engines, "engines", "", "comma-separated engines for -perf/-trace (default: all)")
	flag.StringVar(&cfg.slowlog, "slowlog", "", "with -trace: append slow-query records to this file")
	flag.IntVar(&cfg.slowms, "slowms", 0, "with -slowlog: record only traces at or above this wall time in ms")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dir" {
			cfg.dirSet = true
		}
	})

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gdbbench:", err)
		os.Exit(1)
	}
}

// validateFlags rejects inconsistent flag combinations before any
// directory is created or any engine warms up, and resolves the engine
// subset for -perf/-trace. In particular, explicitly naming an
// external-memory-only engine (capability.NeedsDir) without an explicit
// -dir is an error: silently benching a disk-only archetype against a
// throwaway temp directory misreports what was measured.
func validateFlags(cfg benchConfig) ([]string, error) {
	all := gdbm.Engines()
	names := all
	if cfg.engines != "" {
		names = nil
		known := map[string]bool{}
		for _, n := range all {
			known[n] = true
		}
		for _, part := range strings.Split(cfg.engines, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if !known[part] {
				return nil, fmt.Errorf("unknown engine %q in -engines (have: %s)", part, strings.Join(all, ", "))
			}
			names = append(names, part)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("-engines lists no engines")
		}
		for _, n := range names {
			if capability.NeedsDir(n) && !cfg.dirSet {
				return nil, fmt.Errorf("engine %q is external-memory only (Table I): naming it in -engines requires an explicit -dir", n)
			}
		}
	}
	if cfg.slowlog != "" && !cfg.trace {
		return nil, fmt.Errorf("-slowlog only applies to the traced sweep: add -trace")
	}
	if cfg.planPats != "" && !cfg.planSweep {
		return nil, fmt.Errorf("-planpatterns only applies to the planner sweep: add -plan")
	}
	if cfg.planSweep {
		if cfg.nodes <= 0 || cfg.degree <= 0 {
			return nil, fmt.Errorf("-plan needs positive -nodes and -degree, got nodes=%d degree=%d", cfg.nodes, cfg.degree)
		}
		if _, err := planPatternList(cfg.planPats); err != nil {
			return nil, err
		}
	}
	if cfg.slowms != 0 && cfg.slowlog == "" {
		return nil, fmt.Errorf("-slowms only applies to a slow-query log: add -slowlog")
	}
	if cfg.slowms < 0 {
		return nil, fmt.Errorf("-slowms must be non-negative, got %d", cfg.slowms)
	}
	return names, nil
}

func run(cfg benchConfig) error {
	names, err := validateFlags(cfg)
	if err != nil {
		return err
	}
	dir := cfg.dir
	if dir == "" {
		tmp, err := vfs.OSFS.TempDir("gdbbench")
		if err != nil {
			return err
		}
		defer vfs.OSFS.RemoveAll(tmp)
		dir = tmp
	}

	openAll := func() ([]gdbm.Engine, func(), error) {
		var engines []gdbm.Engine
		for _, name := range gdbm.Engines() {
			opts := gdbm.Options{}
			if capability.NeedsDir(name) {
				opts.Dir = filepath.Join(dir, name)
				if err := vfs.OSFS.MkdirAll(opts.Dir); err != nil {
					return nil, nil, err
				}
			}
			e, err := gdbm.Open(name, opts)
			if err != nil {
				return nil, nil, fmt.Errorf("open %s: %w", name, err)
			}
			engines = append(engines, e)
		}
		cleanup := func() {
			for _, e := range engines {
				e.Close()
			}
		}
		return engines, cleanup, nil
	}

	if cfg.table != "none" {
		engines, cleanup, err := openAll()
		if err != nil {
			return err
		}
		tables, err := gdbm.Tables(engines)
		cleanup()
		if err != nil {
			return err
		}
		want := map[string]string{
			"1": "I", "2": "II", "3": "III", "4": "IV",
			"5": "V", "6": "VI", "7": "VII", "8": "VIII",
		}
		for _, t := range tables {
			if cfg.table != "all" && want[cfg.table] != t.ID {
				continue
			}
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			if cfg.diff {
				mismatches := gdbm.DiffWithPaper(t)
				if len(mismatches) == 0 {
					if t.ID == "VIII" {
						fmt.Println("  (Table VIII has no machine-checkable reference: the paper's matrix is reconstructed; see EXPERIMENTS.md)")
					} else {
						fmt.Printf("  Table %s matches the paper cell for cell.\n", t.ID)
					}
				}
				for _, m := range mismatches {
					fmt.Println("  MISMATCH:", m)
				}
				fmt.Println()
			}
		}
	}

	if cfg.perf {
		fmt.Printf("performance sweep: R-MAT n=%d, degree=%d, seed=%d\n\n", cfg.nodes, cfg.degree, cfg.seed)
		open := func(name string) (gdbm.Engine, error) {
			opts := gdbm.Options{}
			// vertexkv is benched in its disk-backed configuration by
			// choice; disk-only archetypes get a directory by necessity.
			if capability.NeedsDir(name) || name == "vertexkv" {
				d := filepath.Join(dir, "perf-"+name)
				if err := vfs.OSFS.RemoveAll(d); err != nil {
					return nil, err
				}
				if err := vfs.OSFS.MkdirAll(d); err != nil {
					return nil, err
				}
				opts.Dir = d
			}
			return gdbm.Open(name, opts)
		}
		results, err := gdbm.RunPerf(open, names, cfg.nodes, cfg.degree, cfg.seed)
		if err != nil {
			return err
		}
		gdbm.RenderPerf(os.Stdout, results)
	}

	if cfg.parallel {
		counts, err := parseWorkers(cfg.workers)
		if err != nil {
			return err
		}
		sweep, err := gdbm.RunParallelSweep(cfg.nodes, cfg.degree, cfg.seed, counts)
		if err != nil {
			return err
		}
		gdbm.RenderParallel(os.Stdout, sweep)
		if cfg.out != "" {
			if err := gdbm.WriteParallelJSON(vfs.OSFS, cfg.out, sweep); err != nil {
				return err
			}
			fmt.Println("wrote", cfg.out)
		}
	}

	if cfg.cacheSweep {
		open := func(name string, budget int64) (gdbm.Engine, error) {
			d := filepath.Join(dir, fmt.Sprintf("cache-%s-%d", name, budget))
			if err := vfs.OSFS.RemoveAll(d); err != nil {
				return nil, err
			}
			if err := vfs.OSFS.MkdirAll(d); err != nil {
				return nil, err
			}
			return gdbm.Open(name, gdbm.Options{Dir: d, CacheBytes: budget})
		}
		// The three disk-backed engines whose cached configuration the
		// differential harness proves observationally identical.
		sweep, err := gdbm.RunCacheSweep(open, []string{"neograph", "vertexkv", "gstore"}, cfg.nodes, cfg.degree, cfg.seed, cfg.cacheBytes)
		if err != nil {
			return err
		}
		gdbm.RenderCache(os.Stdout, sweep)
		if cfg.out != "" {
			if err := gdbm.WriteCacheJSON(vfs.OSFS, cfg.out, sweep); err != nil {
				return err
			}
			fmt.Println("wrote", cfg.out)
		}
	}

	if cfg.planSweep {
		pats, err := planPatternList(cfg.planPats)
		if err != nil {
			return err
		}
		sweep, err := gdbm.RunPlanSweep(cfg.nodes, cfg.degree, cfg.seed, pats)
		if err != nil {
			return err
		}
		gdbm.RenderPlan(os.Stdout, sweep)
		if cfg.out != "" {
			if err := gdbm.WritePlanJSON(vfs.OSFS, cfg.out, sweep); err != nil {
				return err
			}
			fmt.Println("wrote", cfg.out)
		}
	}

	if cfg.trace {
		var slow *gdbm.SlowLog
		if cfg.slowlog != "" {
			s, err := gdbm.OpenSlowLog(vfs.OSFS, cfg.slowlog, time.Duration(cfg.slowms)*time.Millisecond)
			if err != nil {
				return err
			}
			slow = s
		}
		open := func(name string) (gdbm.Engine, *obs.Registry, error) {
			reg := obs.NewRegistry()
			opts := gdbm.Options{Metrics: reg}
			if capability.NeedsDir(name) || name == "vertexkv" {
				d := filepath.Join(dir, "trace-"+name)
				if err := vfs.OSFS.RemoveAll(d); err != nil {
					return nil, nil, err
				}
				if err := vfs.OSFS.MkdirAll(d); err != nil {
					return nil, nil, err
				}
				opts.Dir = d
			}
			e, err := gdbm.Open(name, opts)
			return e, reg, err
		}
		sweep, err := gdbm.RunTraceSweep(open, names, cfg.nodes, cfg.degree, cfg.seed, slow)
		if err != nil {
			slow.Close()
			return err
		}
		if err := slow.Close(); err != nil {
			return err
		}
		gdbm.RenderTrace(os.Stdout, sweep)
		if cfg.out != "" {
			if err := gdbm.WriteTraceJSON(vfs.OSFS, cfg.out, sweep); err != nil {
				return err
			}
			fmt.Println("wrote", cfg.out)
		}
	}
	return nil
}

// planPatternList resolves -planpatterns ("" = every pattern), rejecting
// names the sweep does not implement.
func planPatternList(s string) ([]string, error) {
	if s == "" {
		return gdbm.PlanPatterns, nil
	}
	known := map[string]bool{}
	for _, p := range gdbm.PlanPatterns {
		known[p] = true
	}
	var pats []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !known[part] {
			return nil, fmt.Errorf("unknown pattern %q in -planpatterns (have: %s)", part, strings.Join(gdbm.PlanPatterns, ", "))
		}
		pats = append(pats, part)
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("-planpatterns lists no patterns")
	}
	return pats, nil
}

func parseWorkers(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-workers lists no counts")
	}
	return counts, nil
}
