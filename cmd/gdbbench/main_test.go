package main

import (
	"testing"
)

func TestRunTablesAndDiff(t *testing.T) {
	if err := run("all", true, false, 0, 0, 1, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleTable(t *testing.T) {
	if err := run("7", false, false, 0, 0, 1, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestRunPerfSweepSmall(t *testing.T) {
	if err := run("none", false, true, 300, 2, 1, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
