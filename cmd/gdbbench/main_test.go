package main

import (
	"path/filepath"
	"strings"
	"testing"

	"gdbm/internal/storage/vfs"
)

func TestRunTablesAndDiff(t *testing.T) {
	if err := run("all", true, false, false, false, 0, "", "", 0, 0, 1, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleTable(t *testing.T) {
	if err := run("7", false, false, false, false, 0, "", "", 0, 0, 1, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestRunPerfSweepSmall(t *testing.T) {
	if err := run("none", false, true, false, false, 0, "", "", 300, 2, 1, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelSweepSmall(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	if err := run("none", false, false, true, false, 0, "1,2", out, 300, 2, 1, dir); err != nil {
		t.Fatal(err)
	}
	f, err := vfs.OSFS.OpenFile(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := vfs.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{`"gomaxprocs"`, `"kernel": "bfs"`, `"workers": 2`, `"speedup_vs_sequential"`} {
		if !strings.Contains(body, want) {
			t.Errorf("JSON missing %s:\n%s", want, body)
		}
	}
}

func TestRunCacheSweepSmall(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "cache.json")
	if err := run("none", false, false, false, true, 1<<20, "", out, 300, 2, 1, dir); err != nil {
		t.Fatal(err)
	}
	f, err := vfs.OSFS.OpenFile(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := vfs.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{`"cache_bytes"`, `"kernel": "khood"`, `"warm_speedup_vs_uncached"`, `"tier"`} {
		if !strings.Contains(body, want) {
			t.Errorf("JSON missing %s:\n%s", want, body)
		}
	}
}

func TestParseWorkers(t *testing.T) {
	if _, err := parseWorkers("0"); err == nil {
		t.Error("worker count 0 accepted")
	}
	if _, err := parseWorkers(""); err == nil {
		t.Error("empty worker list accepted")
	}
	counts, err := parseWorkers(" 1, 4 ,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 || counts[0] != 1 || counts[2] != 8 {
		t.Errorf("parseWorkers = %v", counts)
	}
}
