package main

import (
	"path/filepath"
	"strings"
	"testing"

	"gdbm/internal/storage/vfs"
)

// readAll slurps a file written through the vfs seam.
func readAll(t *testing.T, path string) string {
	t.Helper()
	f, err := vfs.OSFS.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := vfs.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<18)
	n, _ := r.Read(buf)
	return string(buf[:n])
}

func TestRunTablesAndDiff(t *testing.T) {
	if err := run(benchConfig{table: "all", diff: true, seed: 1, dir: t.TempDir(), dirSet: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleTable(t *testing.T) {
	if err := run(benchConfig{table: "7", seed: 1, dir: t.TempDir(), dirSet: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPerfSweepSmall(t *testing.T) {
	cfg := benchConfig{table: "none", perf: true, nodes: 300, degree: 2, seed: 1, dir: t.TempDir(), dirSet: true}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelSweepSmall(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	cfg := benchConfig{table: "none", parallel: true, workers: "1,2", out: out,
		nodes: 300, degree: 2, seed: 1, dir: dir, dirSet: true}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	body := readAll(t, out)
	for _, want := range []string{`"gomaxprocs"`, `"degraded_host"`, `"kernel": "bfs"`, `"workers": 2`, `"speedup_vs_sequential"`} {
		if !strings.Contains(body, want) {
			t.Errorf("JSON missing %s:\n%s", want, body)
		}
	}
}

func TestRunCacheSweepSmall(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "cache.json")
	cfg := benchConfig{table: "none", cacheSweep: true, cacheBytes: 1 << 20, out: out,
		nodes: 300, degree: 2, seed: 1, dir: dir, dirSet: true}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	body := readAll(t, out)
	for _, want := range []string{`"cache_bytes"`, `"kernel": "khood"`, `"warm_speedup_vs_uncached"`, `"tier"`} {
		if !strings.Contains(body, want) {
			t.Errorf("JSON missing %s:\n%s", want, body)
		}
	}
}

func TestRunTraceSweepSmall(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.json")
	slowlog := filepath.Join(dir, "slow.log")
	cfg := benchConfig{table: "none", trace: true, out: out, slowlog: slowlog,
		engines: "neograph,gstore,triplestore,sonesdb",
		nodes:   300, degree: 2, seed: 1, dir: dir, dirSet: true}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	body := readAll(t, out)
	for _, want := range []string{`"span_sum_ns"`, `"name": "query"`, `"engine": "gstore"`, `"engine": "sonesdb"`} {
		if !strings.Contains(body, want) {
			t.Errorf("trace JSON missing %s:\n%s", want, body)
		}
	}
	// Threshold 0 records every traced query in the slow log.
	log := readAll(t, slowlog)
	if !strings.Contains(log, "trace=") || !strings.Contains(log, "span=query@0:") {
		t.Errorf("slow log missing records:\n%s", log)
	}
}

func TestRunPlanSweepSmall(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "plan.json")
	cfg := benchConfig{table: "none", planSweep: true, planPats: "triangle,reorder", out: out,
		nodes: 400, degree: 3, seed: 7, dir: dir, dirSet: true}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	body := readAll(t, out)
	for _, want := range []string{`"pattern": "triangle"`, `"pattern": "reorder"`, `"planner": "wco"`, `"speedup_vs_naive"`, `"gomaxprocs"`} {
		if !strings.Contains(body, want) {
			t.Errorf("plan JSON missing %s:\n%s", want, body)
		}
	}
	if strings.Contains(body, `"pattern": "diamond"`) {
		t.Errorf("plan JSON includes diamond despite -planpatterns subset:\n%s", body)
	}
}

// TestValidateFlagMatrix pins the fail-fast contract: inconsistent flag
// combinations must be rejected before any directory is created or any
// engine warms up.
func TestValidateFlagMatrix(t *testing.T) {
	cases := []struct {
		name    string
		cfg     benchConfig
		wantErr string // substring; "" means the combo must validate
	}{
		{"defaults", benchConfig{table: "all"}, ""},
		{"perf all engines tempdir", benchConfig{table: "none", perf: true}, ""},
		{"named memory engines no dir", benchConfig{table: "none", perf: true, engines: "neograph,vertexkv"}, ""},
		{"named disk-only engine no dir", benchConfig{table: "none", perf: true, engines: "gstore"}, "-dir"},
		{"named disk-only engine with dir", benchConfig{table: "none", perf: true, engines: "gstore", dir: "/tmp/x", dirSet: true}, ""},
		{"disk-only amid others no dir", benchConfig{table: "none", trace: true, engines: "neograph,gstore"}, "-dir"},
		{"spaces trimmed", benchConfig{table: "none", perf: true, engines: " neograph , gstore ", dir: "/tmp/x", dirSet: true}, ""},
		{"unknown engine", benchConfig{table: "none", perf: true, engines: "mongodb"}, "unknown engine"},
		{"empty engine list", benchConfig{table: "none", perf: true, engines: " , "}, "no engines"},
		{"slowlog without trace", benchConfig{table: "none", perf: true, slowlog: "s.log"}, "-trace"},
		{"slowms without slowlog", benchConfig{table: "none", trace: true, slowms: 5}, "-slowlog"},
		{"negative slowms", benchConfig{table: "none", trace: true, slowlog: "s.log", slowms: -1}, "non-negative"},
		{"trace with slowlog", benchConfig{table: "none", trace: true, slowlog: "s.log", slowms: 5}, ""},
		{"planpatterns without plan", benchConfig{table: "none", planPats: "triangle"}, "-plan"},
		{"plan unknown pattern", benchConfig{table: "none", planSweep: true, nodes: 100, degree: 2, planPats: "bogus"}, "unknown pattern"},
		{"plan empty pattern list", benchConfig{table: "none", planSweep: true, nodes: 100, degree: 2, planPats: " , "}, "no patterns"},
		{"plan zero nodes", benchConfig{table: "none", planSweep: true, degree: 2}, "positive"},
		{"plan pattern subset", benchConfig{table: "none", planSweep: true, nodes: 100, degree: 2, planPats: " triangle , reorder "}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			names, err := validateFlags(tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%+v) = %v, want ok", tc.cfg, err)
				}
				if len(names) == 0 {
					t.Fatalf("validateFlags(%+v) resolved no engines", tc.cfg)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateFlags(%+v) = %v, want error containing %q", tc.cfg, err, tc.wantErr)
			}
		})
	}
}

func TestParseWorkers(t *testing.T) {
	if _, err := parseWorkers("0"); err == nil {
		t.Error("worker count 0 accepted")
	}
	if _, err := parseWorkers(""); err == nil {
		t.Error("empty worker list accepted")
	}
	counts, err := parseWorkers(" 1, 4 ,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 || counts[0] != 1 || counts[2] != 8 {
		t.Errorf("parseWorkers = %v", counts)
	}
}
