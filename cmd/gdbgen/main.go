// Command gdbgen generates synthetic graphs (Erdős–Rényi, Barabási–Albert,
// R-MAT) and writes them in the interchange formats the survey discusses:
// GraphML, CSV edge lists, or N-Triples.
//
// Usage:
//
//	gdbgen -kind rmat -nodes 1000 -degree 4 -format graphml -out graph.xml
//	gdbgen -kind ba -nodes 500 -format csv -out social   # social.nodes.csv + social.edges.csv
//	gdbgen -kind er -nodes 200 -format ntriples -out data.nt
package main

import (
	"flag"
	"fmt"
	"os"

	"gdbm"
	"gdbm/internal/format"
	"gdbm/internal/gen"
	"gdbm/internal/memgraph"
	"gdbm/internal/storage/vfs"
)

func main() {
	kind := flag.String("kind", "rmat", "generator: er, ba or rmat")
	nodes := flag.Int("nodes", 1000, "node count")
	degree := flag.Int("degree", 4, "edges per node")
	seed := flag.Int64("seed", 42, "random seed")
	form := flag.String("format", "graphml", "output format: graphml, csv or ntriples")
	out := flag.String("out", "graph", "output path (csv appends .nodes.csv/.edges.csv)")
	flag.Parse()

	if err := run(*kind, *nodes, *degree, *seed, *form, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gdbgen:", err)
		os.Exit(1)
	}
}

func run(kind string, nodes, degree int, seed int64, form, out string) error {
	var k gdbm.GenKind
	switch kind {
	case "er":
		k = gdbm.ErdosRenyi
	case "ba":
		k = gdbm.BarabasiAlbert
	case "rmat":
		k = gdbm.RMAT
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}

	g := memgraph.New()
	sink := graphSink{g}
	if _, err := gen.Generate(gen.Spec{Kind: gen.Kind(k), Nodes: nodes, EdgesPerNode: degree, Seed: seed}, sink); err != nil {
		return err
	}
	fmt.Printf("generated %s graph: %d nodes, %d edges\n", kind, g.Order(), g.Size())

	switch form {
	case "graphml":
		f, w, err := vfs.Create(vfs.OSFS, out)
		if err != nil {
			return err
		}
		defer f.Close()
		return format.WriteGraphML(w, g)
	case "csv":
		nf, nw, err := vfs.Create(vfs.OSFS, out+".nodes.csv")
		if err != nil {
			return err
		}
		defer nf.Close()
		ef, ew, err := vfs.Create(vfs.OSFS, out+".edges.csv")
		if err != nil {
			return err
		}
		defer ef.Close()
		return format.WriteCSV(nw, ew, g)
	case "ntriples":
		f, w, err := vfs.Create(vfs.OSFS, out)
		if err != nil {
			return err
		}
		defer f.Close()
		return format.WriteNTriples(w, tripleView{g})
	}
	return fmt.Errorf("unknown format %q", form)
}

// graphSink adapts memgraph to the generator sink.
type graphSink struct{ g *memgraph.Graph }

func (s graphSink) LoadNode(label string, props gdbm.Properties) (gdbm.NodeID, error) {
	return s.g.AddNode(label, props)
}
func (s graphSink) LoadEdge(label string, from, to gdbm.NodeID, props gdbm.Properties) (gdbm.EdgeID, error) {
	return s.g.AddEdge(label, from, to, props)
}

// tripleView renders a property graph as subject-predicate-object
// statements for N-Triples export.
type tripleView struct{ g *memgraph.Graph }

func (v tripleView) Triples(fn func(s, p, o string) bool) error {
	return v.g.Edges(func(e gdbm.Edge) bool {
		return fn(fmt.Sprintf("node%d", e.From), e.Label, fmt.Sprintf("node%d", e.To))
	})
}
