package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGraphML(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.xml")
	if err := run("rmat", 50, 3, 1, "graphml", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<graphml>") {
		t.Errorf("not graphml: %.80s", data)
	}
}

func TestRunCSV(t *testing.T) {
	base := filepath.Join(t.TempDir(), "g")
	if err := run("ba", 40, 2, 1, "csv", base); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".nodes.csv", ".edges.csv"} {
		if _, err := os.Stat(base + suffix); err != nil {
			t.Errorf("missing %s: %v", suffix, err)
		}
	}
}

func TestRunNTriples(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.nt")
	if err := run("er", 30, 2, 1, "ntriples", out); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "<link>") {
		t.Errorf("not ntriples: %.80s", data)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 10, 2, 1, "graphml", filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := run("er", 10, 2, 1, "bogus", filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("unknown format should fail")
	}
}
