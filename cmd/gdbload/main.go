// Command gdbload drives gdbserver with an open-loop arrival process and
// writes the serve benchmark (BENCH_serve.json): p50/p99 latency, goodput
// and shed rate at several multiples of the server's configured capacity.
//
// Usage:
//
//	gdbload -addr http://127.0.0.1:8080 -engine neograph -capacity 200
//	gdbload -selfserve -capacity 100 -out BENCH_serve.json
//	gdbload -arrival gamma -cv 2 ...   # burstier-than-Poisson arrivals
//
// -selfserve starts an in-process server on a loopback port so the
// benchmark is one command; the numbers still flow through real TCP.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	_ "gdbm" // register the engines

	"gdbm/internal/gen"
	"gdbm/internal/obs"
	"gdbm/internal/server"
	"gdbm/internal/server/loadgen"
	"gdbm/internal/storage/vfs"
)

type loadConfig struct {
	addr        string
	selfserve   bool
	engine      string
	class       string
	stmt        string
	capacity    float64
	multipliers string
	duration    time.Duration
	arrival     string
	cv          float64
	seed        int64
	retries     int
	retryBase   time.Duration
	timeoutMS   int
	out         string
	seedNodes   int
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.addr, "addr", "", "server base URL (http://host:port); empty requires -selfserve")
	flag.BoolVar(&cfg.selfserve, "selfserve", false, "start an in-process gdbserver on a loopback port")
	flag.StringVar(&cfg.engine, "engine", "neograph", "engine to query")
	flag.StringVar(&cfg.class, "class", "interactive", "SLO class: interactive or batch")
	flag.StringVar(&cfg.stmt, "stmt", "", "statement to send (default: a cheap read in the engine's language)")
	flag.Float64Var(&cfg.capacity, "capacity", 100, "capacity anchor in req/s; multipliers scale this")
	flag.StringVar(&cfg.multipliers, "multipliers", "0.5,1,2", "comma-separated capacity multipliers")
	flag.DurationVar(&cfg.duration, "duration", 3*time.Second, "arrival window per point")
	flag.StringVar(&cfg.arrival, "arrival", "poisson", "arrival process: poisson or gamma")
	flag.Float64Var(&cfg.cv, "cv", 1, "coefficient of variation for gamma arrivals")
	flag.Int64Var(&cfg.seed, "seed", 42, "arrival and jitter seed")
	flag.IntVar(&cfg.retries, "retries", 3, "max retries per request after a shed")
	flag.DurationVar(&cfg.retryBase, "retry-base", 50*time.Millisecond, "exponential backoff base")
	flag.IntVar(&cfg.timeoutMS, "timeout-ms", 0, "per-request deadline sent to the server (0 = class default)")
	flag.StringVar(&cfg.out, "out", "", "write the sweep as JSON to this file (BENCH_serve.json)")
	flag.IntVar(&cfg.seedNodes, "seed-nodes", 500, "with -selfserve: seed graph size")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gdbload:", err)
		os.Exit(1)
	}
}

// defaultStmt picks a cheap read per language so the default benchmark
// load is admission-dominated, not kernel-dominated.
func defaultStmt(lang string) string {
	switch lang {
	case "gql":
		return `MATCH (a:N) RETURN count(*) AS n`
	case "sparqlish":
		return `SELECT ?x WHERE { ?x <type> "N" . } LIMIT 1`
	default: // gsql and anything unknown
		return "SELECT ORDER"
	}
}

func run(cfg loadConfig) error {
	target := cfg.addr
	var shutdown func() error
	if cfg.selfserve {
		if cfg.addr != "" {
			return fmt.Errorf("-addr and -selfserve are mutually exclusive")
		}
		var err error
		target, shutdown, err = selfserve(cfg)
		if err != nil {
			return err
		}
		defer func() {
			if err := shutdown(); err != nil {
				fmt.Fprintln(os.Stderr, "gdbload: shutdown:", err)
			}
		}()
	}
	if target == "" {
		return fmt.Errorf("need -addr or -selfserve")
	}

	var mults []float64
	for _, s := range strings.Split(cfg.multipliers, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || m <= 0 {
			return fmt.Errorf("bad multiplier %q", s)
		}
		mults = append(mults, m)
	}

	lc := loadgen.Config{
		Target:     target,
		Engine:     cfg.engine,
		Class:      cfg.class,
		Duration:   cfg.duration,
		Arrival:    cfg.arrival,
		CV:         cfg.cv,
		Seed:       cfg.seed,
		MaxRetries: cfg.retries,
		RetryBase:  cfg.retryBase,
		TimeoutMS:  cfg.timeoutMS,
	}
	if cfg.stmt != "" {
		stmt := cfg.stmt
		lc.Stmt = func(int) string { return stmt }
	} else {
		stmt := defaultStmt(languageOf(cfg.engine))
		lc.Stmt = func(int) string { return stmt }
	}

	sweep, err := loadgen.RunSweep(lc, cfg.capacity, mults)
	if err != nil {
		return err
	}

	for _, p := range sweep.Points {
		fmt.Printf("x%-4g offered=%-5d goodput=%7.1f rps  shed=%5.1f%%  p50=%7.2fms  p99=%7.2fms  gaveup=%d\n",
			p.Multiplier, p.Offered, p.GoodputRPS, 100*p.ShedRate, p.P50MS, p.P99MS, p.GaveUp)
	}

	if cfg.out != "" {
		data, err := json.MarshalIndent(sweep, "", "  ")
		if err != nil {
			return err
		}
		f, w, err := vfs.Create(vfs.OSFS, cfg.out)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", cfg.out)
	}
	return nil
}

// languageOf maps the bundled query-capable engines to their language for
// the default statement; unknown engines fall back to gsql's cheap read
// (the server answers 422 if the engine has no language at all).
func languageOf(engineName string) string {
	switch engineName {
	case "neograph":
		return "gql"
	case "triplestore":
		return "sparqlish"
	}
	return "gsql"
}

// selfserve starts an in-process server over real TCP and returns its base
// URL and a drain-and-stop function.
func selfserve(cfg loadConfig) (string, func() error, error) {
	sc := server.Config{
		Engines: []string{cfg.engine},
		Metrics: obs.NewRegistry(),
		Interactive: server.ClassConfig{
			Rate: cfg.capacity, Burst: int(cfg.capacity / 4),
			MaxInflight: 16, MaxQueue: 32, Deadline: 2 * time.Second,
		},
	}
	if cfg.seedNodes > 0 {
		sc.Seed = &gen.Spec{Kind: gen.RMAT, Nodes: cfg.seedNodes, EdgesPerNode: 4, Seed: cfg.seed}
	}
	srv, err := server.New(sc)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() error {
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}
