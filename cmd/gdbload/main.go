// Command gdbload drives gdbserver with an open-loop arrival process and
// writes the serve benchmark (BENCH_serve.json): p50/p99 latency, goodput
// and shed rate at several multiples of the server's configured capacity.
//
// Usage:
//
//	gdbload -addr http://127.0.0.1:8080 -engine neograph -capacity 200
//	gdbload -selfserve -capacity 100 -out BENCH_serve.json
//	gdbload -arrival gamma -cv 2 ...   # burstier-than-Poisson arrivals
//	gdbload -proto binary ...          # framed responses (Accept: application/x-gdbw)
//	gdbload -proto both ...            # JSON-vs-binary comparison rows
//
// -selfserve starts an in-process server on a loopback port so the
// benchmark is one command; the numbers still flow through real TCP.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	_ "gdbm" // register the engines

	"gdbm/internal/gen"
	"gdbm/internal/obs"
	"gdbm/internal/server"
	"gdbm/internal/server/loadgen"
	"gdbm/internal/storage/vfs"
)

type loadConfig struct {
	addr        string
	selfserve   bool
	engine      string
	class       string
	stmt        string
	capacity    float64
	multipliers string
	duration    time.Duration
	arrival     string
	cv          float64
	seed        int64
	proto       string
	retries     int
	retryBase   time.Duration
	timeoutMS   int
	out         string
	seedNodes   int
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.addr, "addr", "", "server base URL (http://host:port); empty requires -selfserve")
	flag.BoolVar(&cfg.selfserve, "selfserve", false, "start an in-process gdbserver on a loopback port")
	flag.StringVar(&cfg.engine, "engine", "neograph", "engine to query")
	flag.StringVar(&cfg.class, "class", "interactive", "SLO class: interactive or batch")
	flag.StringVar(&cfg.stmt, "stmt", "", "statement to send (default: a cheap read in the engine's language)")
	flag.Float64Var(&cfg.capacity, "capacity", 100, "capacity anchor in req/s; multipliers scale this")
	flag.StringVar(&cfg.multipliers, "multipliers", "0.5,1,2", "comma-separated capacity multipliers")
	flag.DurationVar(&cfg.duration, "duration", 3*time.Second, "arrival window per point")
	flag.StringVar(&cfg.arrival, "arrival", "poisson", "arrival process: poisson or gamma")
	flag.Float64Var(&cfg.cv, "cv", 1, "coefficient of variation for gamma arrivals")
	flag.StringVar(&cfg.proto, "proto", "json", "response encoding: json, binary (Accept: application/x-gdbw), or both (run the sweep once per protocol and emit a comparison)")
	flag.Int64Var(&cfg.seed, "seed", 42, "arrival and jitter seed")
	flag.IntVar(&cfg.retries, "retries", 3, "max retries per request after a shed")
	flag.DurationVar(&cfg.retryBase, "retry-base", 50*time.Millisecond, "exponential backoff base")
	flag.IntVar(&cfg.timeoutMS, "timeout-ms", 0, "per-request deadline sent to the server (0 = class default)")
	flag.StringVar(&cfg.out, "out", "", "write the sweep as JSON to this file (BENCH_serve.json)")
	flag.IntVar(&cfg.seedNodes, "seed-nodes", 500, "with -selfserve: seed graph size")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gdbload:", err)
		os.Exit(1)
	}
}

// defaultStmt picks a cheap read per language so the default benchmark
// load is admission-dominated, not kernel-dominated.
func defaultStmt(lang string) string {
	switch lang {
	case "gql":
		return `MATCH (a:N) RETURN count(*) AS n`
	case "sparqlish":
		return `SELECT ?x WHERE { ?x <type> "N" . } LIMIT 1`
	default: // gsql and anything unknown
		return "SELECT ORDER"
	}
}

func run(cfg loadConfig) error {
	target := cfg.addr
	var shutdown func() error
	if cfg.selfserve {
		if cfg.addr != "" {
			return fmt.Errorf("-addr and -selfserve are mutually exclusive")
		}
		var err error
		target, shutdown, err = selfserve(cfg)
		if err != nil {
			return err
		}
		defer func() {
			if err := shutdown(); err != nil {
				fmt.Fprintln(os.Stderr, "gdbload: shutdown:", err)
			}
		}()
	}
	if target == "" {
		return fmt.Errorf("need -addr or -selfserve")
	}

	var mults []float64
	for _, s := range strings.Split(cfg.multipliers, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || m <= 0 {
			return fmt.Errorf("bad multiplier %q", s)
		}
		mults = append(mults, m)
	}

	lc := loadgen.Config{
		Target:     target,
		Engine:     cfg.engine,
		Class:      cfg.class,
		Duration:   cfg.duration,
		Arrival:    cfg.arrival,
		CV:         cfg.cv,
		Seed:       cfg.seed,
		MaxRetries: cfg.retries,
		RetryBase:  cfg.retryBase,
		TimeoutMS:  cfg.timeoutMS,
	}
	if cfg.stmt != "" {
		stmt := cfg.stmt
		lc.Stmt = func(int) string { return stmt }
	} else {
		stmt := defaultStmt(languageOf(cfg.engine))
		lc.Stmt = func(int) string { return stmt }
	}

	switch cfg.proto {
	case "", "json", "binary":
		lc.Proto = cfg.proto
		sweep, err := loadgen.RunSweep(lc, cfg.capacity, mults)
		if err != nil {
			return err
		}
		printSweep(sweep)
		if cfg.out != "" {
			return writeOut(cfg.out, sweep)
		}
		return nil
	case "both":
		// Same arrival schedule (same seed) per protocol: the comparison
		// differs only in response encoding.
		lc.Proto = "json"
		js, err := loadgen.RunSweep(lc, cfg.capacity, mults)
		if err != nil {
			return err
		}
		lc.Proto = "binary"
		bs, err := loadgen.RunSweep(lc, cfg.capacity, mults)
		if err != nil {
			return err
		}
		printSweep(js)
		printSweep(bs)
		cmp := compareProtos(js, bs)
		for _, c := range cmp {
			fmt.Printf("x%-4g json p50=%6.2fms p99=%6.2fms %7.0f B/q | binary p50=%6.2fms p99=%6.2fms %7.0f B/q\n",
				c.Multiplier, c.JSONP50MS, c.JSONP99MS, c.JSONBytesPerQuery,
				c.BinaryP50MS, c.BinaryP99MS, c.BinaryBytesPerQuery)
		}
		if cfg.out != "" {
			return writeOut(cfg.out, comparedSweep{Sweep: *js, BinaryPoints: bs.Points, ProtoComparison: cmp})
		}
		return nil
	default:
		return fmt.Errorf("bad -proto %q (json, binary or both)", cfg.proto)
	}
}

// comparedSweep is the -proto both payload: the JSON sweep keeps the
// backward-compatible top-level shape (points, stamp), the binary sweep and
// the per-multiplier comparison rows ride alongside under one shared stamp.
type comparedSweep struct {
	loadgen.Sweep
	BinaryPoints    []loadgen.SweepPoint `json:"binary_points"`
	ProtoComparison []protoComparison    `json:"proto_comparison"`
}

// protoComparison is one JSON-vs-binary row at a capacity multiplier.
type protoComparison struct {
	Multiplier          float64 `json:"multiplier"`
	JSONP50MS           float64 `json:"json_p50_ms"`
	JSONP99MS           float64 `json:"json_p99_ms"`
	JSONBytesPerQuery   float64 `json:"json_bytes_per_query"`
	BinaryP50MS         float64 `json:"binary_p50_ms"`
	BinaryP99MS         float64 `json:"binary_p99_ms"`
	BinaryBytesPerQuery float64 `json:"binary_bytes_per_query"`
}

func compareProtos(js, bs *loadgen.Sweep) []protoComparison {
	var out []protoComparison
	for i, jp := range js.Points {
		if i >= len(bs.Points) {
			break
		}
		bp := bs.Points[i]
		out = append(out, protoComparison{
			Multiplier:          jp.Multiplier,
			JSONP50MS:           jp.P50MS,
			JSONP99MS:           jp.P99MS,
			JSONBytesPerQuery:   jp.BytesPerQuery,
			BinaryP50MS:         bp.P50MS,
			BinaryP99MS:         bp.P99MS,
			BinaryBytesPerQuery: bp.BytesPerQuery,
		})
	}
	return out
}

func printSweep(sweep *loadgen.Sweep) {
	proto := sweep.Proto
	if proto == "" {
		proto = "json"
	}
	for _, p := range sweep.Points {
		fmt.Printf("%-6s x%-4g offered=%-5d goodput=%7.1f rps  shed=%5.1f%%  p50=%7.2fms  p99=%7.2fms  ttfb50=%6.2fms  %6.0f B/q  gaveup=%d\n",
			proto, p.Multiplier, p.Offered, p.GoodputRPS, 100*p.ShedRate, p.P50MS, p.P99MS, p.TTFBP50MS, p.BytesPerQuery, p.GaveUp)
	}
}

func writeOut(path string, doc any) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	f, w, err := vfs.Create(vfs.OSFS, path)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// languageOf maps the bundled query-capable engines to their language for
// the default statement; unknown engines fall back to gsql's cheap read
// (the server answers 422 if the engine has no language at all).
func languageOf(engineName string) string {
	switch engineName {
	case "neograph":
		return "gql"
	case "triplestore":
		return "sparqlish"
	}
	return "gsql"
}

// selfserve starts an in-process server over real TCP and returns its base
// URL and a drain-and-stop function.
func selfserve(cfg loadConfig) (string, func() error, error) {
	sc := server.Config{
		Engines: []string{cfg.engine},
		Metrics: obs.NewRegistry(),
		Interactive: server.ClassConfig{
			Rate: cfg.capacity, Burst: int(cfg.capacity / 4),
			MaxInflight: 16, MaxQueue: 32, Deadline: 2 * time.Second,
		},
	}
	if cfg.seedNodes > 0 {
		sc.Seed = &gen.Spec{Kind: gen.RMAT, Nodes: cfg.seedNodes, EdgesPerNode: 4, Seed: cfg.seed}
	}
	srv, err := server.New(sc)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() error {
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}
