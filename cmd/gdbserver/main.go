// Command gdbserver serves the graph engines over HTTP with admission
// control per SLO class, request deadlines threaded into the query kernels,
// and graceful drain on SIGTERM/SIGINT. Query results stream as they are
// produced: chunked JSON by default, or length-prefixed binary frames when
// the client sends Accept: application/x-gdbw (see internal/server/wire).
//
// Usage:
//
//	gdbserver -addr :8080                         # serve all in-memory engines
//	gdbserver -engines neograph,gstore -seed-nodes 2000
//	gdbserver -rate 200 -burst 50 -inflight 16    # size the interactive class
//
// Endpoints:
//
//	POST /v1/query     {"stmt","engine"|"session","class","timeout_ms"}
//	POST /v1/session   {"engine"}           private engine instance
//	DELETE /v1/session/{id}
//	GET  /healthz      200 serving, 503 draining
//	GET  /statsz       admission and latency counters
//
// Overload answers 429 with Retry-After; draining answers 503; a query
// over deadline answers 504. See DESIGN.md "Overload & degradation
// contract".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "gdbm" // register the engines

	"gdbm/internal/gen"
	"gdbm/internal/obs"
	"gdbm/internal/server"
)

type serverConfig struct {
	addr      string
	engines   string
	seedNodes int
	seedDeg   int
	seedSeed  int64

	rate     float64
	burst    int
	inflight int
	queue    int
	weight   float64
	deadline time.Duration

	batchRate     float64
	batchBurst    int
	batchInflight int
	batchQueue    int
	batchWeight   float64
	batchDeadline time.Duration

	chunkRows int
	maxConns  int
	drainWait time.Duration
}

func main() {
	var cfg serverConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	flag.StringVar(&cfg.engines, "engines", "", "comma-separated engines to serve (default: all in-memory engines)")
	flag.IntVar(&cfg.seedNodes, "seed-nodes", 0, "seed each engine with an R-MAT graph of this many nodes (0 = empty)")
	flag.IntVar(&cfg.seedDeg, "seed-degree", 4, "seed graph edges per node")
	flag.Int64Var(&cfg.seedSeed, "seed", 42, "seed graph random seed")
	flag.Float64Var(&cfg.rate, "rate", server.DefaultInteractive.Rate, "interactive admission rate (req/s)")
	flag.IntVar(&cfg.burst, "burst", server.DefaultInteractive.Burst, "interactive burst")
	flag.IntVar(&cfg.inflight, "inflight", server.DefaultInteractive.MaxInflight, "interactive max in-flight queries")
	flag.IntVar(&cfg.queue, "queue", server.DefaultInteractive.MaxQueue, "interactive queue depth")
	flag.Float64Var(&cfg.weight, "weight", server.DefaultInteractive.Weight, "interactive share of pooled slots while contested")
	flag.DurationVar(&cfg.deadline, "deadline", server.DefaultInteractive.Deadline, "interactive per-query deadline")
	flag.Float64Var(&cfg.batchRate, "batch-rate", server.DefaultBatch.Rate, "batch admission rate (req/s)")
	flag.IntVar(&cfg.batchBurst, "batch-burst", server.DefaultBatch.Burst, "batch burst")
	flag.IntVar(&cfg.batchInflight, "batch-inflight", server.DefaultBatch.MaxInflight, "batch max in-flight queries")
	flag.IntVar(&cfg.batchQueue, "batch-queue", server.DefaultBatch.MaxQueue, "batch queue depth")
	flag.Float64Var(&cfg.batchWeight, "batch-weight", server.DefaultBatch.Weight, "batch share of pooled slots while contested")
	flag.DurationVar(&cfg.batchDeadline, "batch-deadline", server.DefaultBatch.Deadline, "batch per-query deadline")
	flag.IntVar(&cfg.chunkRows, "chunk-rows", 0, "rows per streamed response chunk (0 = server default)")
	flag.IntVar(&cfg.maxConns, "max-conns", 256, "max accepted TCP connections")
	flag.DurationVar(&cfg.drainWait, "drain-wait", 30*time.Second, "max time to wait for in-flight queries on shutdown")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gdbserver:", err)
		os.Exit(1)
	}
}

func run(cfg serverConfig) error {
	sc := server.Config{
		Interactive: server.ClassConfig{
			Rate: cfg.rate, Burst: cfg.burst, MaxInflight: cfg.inflight,
			MaxQueue: cfg.queue, Weight: cfg.weight, Deadline: cfg.deadline,
		},
		Batch: server.ClassConfig{
			Rate: cfg.batchRate, Burst: cfg.batchBurst, MaxInflight: cfg.batchInflight,
			MaxQueue: cfg.batchQueue, Weight: cfg.batchWeight, Deadline: cfg.batchDeadline,
		},
		Metrics:   obs.NewRegistry(),
		ChunkRows: cfg.chunkRows,
	}
	if cfg.engines != "" {
		for _, n := range strings.Split(cfg.engines, ",") {
			if n = strings.TrimSpace(n); n != "" {
				sc.Engines = append(sc.Engines, n)
			}
		}
	}
	if cfg.seedNodes > 0 {
		sc.Seed = &gen.Spec{
			Kind: gen.RMAT, Nodes: cfg.seedNodes,
			EdgesPerNode: cfg.seedDeg, Seed: cfg.seedSeed,
		}
	}
	srv, err := server.New(sc)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.maxConns > 0 {
		ln = server.LimitListener(ln, cfg.maxConns)
	}
	hs := &http.Server{Handler: srv.Handler()}

	// The smoke test and gdbload -selfserve parse this line for the port.
	fmt.Printf("gdbserver listening on %s engines=%s\n",
		ln.Addr(), strings.Join(srv.Engines(), ","))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: reject new queries with 503 immediately, then let
	// Shutdown wait for in-flight handlers up to the drain budget.
	fmt.Println("gdbserver draining")
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drainWait)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("gdbserver drained cleanly")
	return nil
}
