package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"gdbm/internal/server/wire"
)

// TestServeSmoke is the end-to-end overload drill `make serve-smoke` runs:
// build the real binaries, start gdbserver on a loopback port, drive a
// short gdbload burst at 2× the configured capacity, run a binary-protocol
// pass and a streamed multi-chunk large-result request, and SIGTERM the
// server. Pass criteria: the burst is shed (not crashed into), nothing
// hard-fails, both encodings deliver complete results, and the drain
// completes cleanly with exit status 0.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "gdbserver")
	loadBin := filepath.Join(dir, "gdbload")
	for bin, pkg := range map[string]string{serverBin: "gdbm/cmd/gdbserver", loadBin: "gdbm/cmd/gdbload"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	const capacity = 50
	const seedNodes = 200
	srv := exec.Command(serverBin,
		"-addr", "127.0.0.1:0",
		"-engines", "neograph",
		"-seed-nodes", fmt.Sprint(seedNodes),
		"-rate", fmt.Sprint(capacity), "-burst", "10",
		"-inflight", "8", "-queue", "8",
		// Small chunks so the large-result request below streams across
		// several flushes rather than fitting one chunk.
		"-chunk-rows", "32",
	)
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	deadline := time.After(30 * time.Second)
	linec := make(chan string, 1)
	go func() {
		if sc.Scan() {
			linec <- sc.Text()
		}
		close(linec)
	}()
	select {
	case line := <-linec:
		m := addrRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unexpected first line: %q", line)
		}
		addr = m[1]
	case <-deadline:
		t.Fatal("server never announced its address")
	}
	// Keep draining server stdout so the pipe never blocks it, and keep
	// the text for the drain assertions.
	restc := make(chan string, 1)
	go func() {
		var b strings.Builder
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		restc <- b.String()
	}()

	// 2× capacity burst through the real client.
	outJSON := filepath.Join(dir, "smoke_serve.json")
	load := exec.Command(loadBin,
		"-addr", "http://"+addr,
		"-engine", "neograph",
		"-capacity", fmt.Sprint(capacity),
		"-multipliers", "2",
		"-duration", "1500ms",
		"-retries", "2",
		"-out", outJSON,
	)
	loadOut, err := load.CombinedOutput()
	if err != nil {
		t.Fatalf("gdbload: %v\n%s", err, loadOut)
	}
	var sweep struct {
		Points []struct {
			Offered      int `json:"offered"`
			Completed    int `json:"completed"`
			Failed       int `json:"failed"`
			ShedAttempts int `json:"shed_attempts"`
		} `json:"points"`
	}
	raw, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &sweep); err != nil {
		t.Fatalf("parse %s: %v", outJSON, err)
	}
	if len(sweep.Points) != 1 {
		t.Fatalf("points: %d", len(sweep.Points))
	}
	p := sweep.Points[0]
	if p.ShedAttempts == 0 {
		t.Errorf("2× burst was never shed (offered %d, completed %d); admission control did not engage", p.Offered, p.Completed)
	}
	if p.Failed != 0 {
		t.Errorf("hard failures under overload: %d (shed-not-crash violated)\n%s", p.Failed, loadOut)
	}
	if p.Completed == 0 {
		t.Error("no request completed at 2× load; server collapsed instead of shedding")
	}

	// Binary protocol through the real client: a gentle pass must complete
	// framed responses and account response bytes.
	binJSON := filepath.Join(dir, "smoke_serve_bin.json")
	load = exec.Command(loadBin,
		"-addr", "http://"+addr,
		"-engine", "neograph",
		"-capacity", fmt.Sprint(capacity),
		"-multipliers", "0.5",
		"-duration", "800ms",
		"-proto", "binary",
		"-retries", "2",
		"-out", binJSON,
	)
	loadOut, err = load.CombinedOutput()
	if err != nil {
		t.Fatalf("gdbload -proto binary: %v\n%s", err, loadOut)
	}
	var binSweep struct {
		Proto  string `json:"proto"`
		Points []struct {
			Completed     int     `json:"completed"`
			Failed        int     `json:"failed"`
			BytesPerQuery float64 `json:"bytes_per_query"`
		} `json:"points"`
	}
	raw, err = os.ReadFile(binJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &binSweep); err != nil {
		t.Fatalf("parse %s: %v", binJSON, err)
	}
	if binSweep.Proto != "binary" || len(binSweep.Points) != 1 {
		t.Fatalf("binary sweep shape: proto=%q points=%d", binSweep.Proto, len(binSweep.Points))
	}
	bp := binSweep.Points[0]
	if bp.Completed == 0 || bp.Failed != 0 {
		t.Errorf("binary pass: completed=%d failed=%d\n%s", bp.Completed, bp.Failed, loadOut)
	}
	if bp.BytesPerQuery <= 0 {
		t.Errorf("binary pass did not account response bytes: %+v", bp)
	}

	// Streamed large result: one row per seeded node, forced across many
	// 32-row chunks, byte-complete on both encodings.
	stmt := `MATCH (a:N) RETURN a.idx AS i`
	body, _ := json.Marshal(map[string]any{"stmt": stmt, "engine": "neograph"})
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	framed, err := wire.Collect(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("collect framed stream: %v", err)
	}
	if len(framed.Rows) != seedNodes || framed.End.Rows != seedNodes {
		t.Errorf("framed large result: %d rows, end declares %d, want %d", len(framed.Rows), framed.End.Rows, seedNodes)
	}
	jr, err := http.Post("http://"+addr+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jres struct {
		Rows [][]any `json:"rows"`
	}
	err = json.NewDecoder(jr.Body).Decode(&jres)
	jr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(jres.Rows) != seedNodes {
		t.Errorf("streamed JSON large result: %d rows, want %d", len(jres.Rows), seedNodes)
	}

	// Graceful drain on SIGTERM: clean exit, explicit drain markers.
	http.DefaultClient.CloseIdleConnections()
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Read stdout to EOF before Wait: Wait closes the pipe and would race
	// the scanner out of the final drain lines.
	var rest string
	select {
	case rest = <-restc:
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	exited := make(chan error, 1)
	go func() { exited <- srv.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("server exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	if !strings.Contains(rest, "drained cleanly") {
		t.Errorf("missing clean-drain marker; server output:\n%s", rest)
	}
}
