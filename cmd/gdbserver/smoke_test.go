package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end overload drill `make serve-smoke` runs:
// build the real binaries, start gdbserver on a loopback port, drive a
// short gdbload burst at 2× the configured capacity, and SIGTERM the
// server. Pass criteria: the burst is shed (not crashed into), nothing
// hard-fails, and the drain completes cleanly with exit status 0.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "gdbserver")
	loadBin := filepath.Join(dir, "gdbload")
	for bin, pkg := range map[string]string{serverBin: "gdbm/cmd/gdbserver", loadBin: "gdbm/cmd/gdbload"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	const capacity = 50
	srv := exec.Command(serverBin,
		"-addr", "127.0.0.1:0",
		"-engines", "neograph",
		"-seed-nodes", "200",
		"-rate", fmt.Sprint(capacity), "-burst", "10",
		"-inflight", "8", "-queue", "8",
	)
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	deadline := time.After(30 * time.Second)
	linec := make(chan string, 1)
	go func() {
		if sc.Scan() {
			linec <- sc.Text()
		}
		close(linec)
	}()
	select {
	case line := <-linec:
		m := addrRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unexpected first line: %q", line)
		}
		addr = m[1]
	case <-deadline:
		t.Fatal("server never announced its address")
	}
	// Keep draining server stdout so the pipe never blocks it, and keep
	// the text for the drain assertions.
	restc := make(chan string, 1)
	go func() {
		var b strings.Builder
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		restc <- b.String()
	}()

	// 2× capacity burst through the real client.
	outJSON := filepath.Join(dir, "smoke_serve.json")
	load := exec.Command(loadBin,
		"-addr", "http://"+addr,
		"-engine", "neograph",
		"-capacity", fmt.Sprint(capacity),
		"-multipliers", "2",
		"-duration", "1500ms",
		"-retries", "2",
		"-out", outJSON,
	)
	loadOut, err := load.CombinedOutput()
	if err != nil {
		t.Fatalf("gdbload: %v\n%s", err, loadOut)
	}
	var sweep struct {
		Points []struct {
			Offered      int `json:"offered"`
			Completed    int `json:"completed"`
			Failed       int `json:"failed"`
			ShedAttempts int `json:"shed_attempts"`
		} `json:"points"`
	}
	raw, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &sweep); err != nil {
		t.Fatalf("parse %s: %v", outJSON, err)
	}
	if len(sweep.Points) != 1 {
		t.Fatalf("points: %d", len(sweep.Points))
	}
	p := sweep.Points[0]
	if p.ShedAttempts == 0 {
		t.Errorf("2× burst was never shed (offered %d, completed %d); admission control did not engage", p.Offered, p.Completed)
	}
	if p.Failed != 0 {
		t.Errorf("hard failures under overload: %d (shed-not-crash violated)\n%s", p.Failed, loadOut)
	}
	if p.Completed == 0 {
		t.Error("no request completed at 2× load; server collapsed instead of shedding")
	}

	// Graceful drain on SIGTERM: clean exit, explicit drain markers.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- srv.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("server exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	rest := <-restc
	if !strings.Contains(rest, "drained cleanly") {
		t.Errorf("missing clean-drain marker; server output:\n%s", rest)
	}
}
