package main

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

func TestShellSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.xml")
	// Save from one session...
	out := shellSession(t, "neograph", strings.Join([]string{
		`CREATE (a:P {name: 'ada'})`,
		`CREATE (b:P {name: 'bob'})`,
		`MATCH (a:P {name: 'ada'}), (b:P {name: 'bob'}) CREATE (a)-[:knows]->(b)`,
		fmt.Sprintf(`\save %s`, path),
		`\quit`,
	}, "\n"))
	if !strings.Contains(out, "wrote") {
		t.Fatalf("save output:\n%s", out)
	}
	// ...load into a fresh one.
	out2 := shellSession(t, "neograph", strings.Join([]string{
		fmt.Sprintf(`\load %s`, path),
		`MATCH (a)-[:knows]->(b) RETURN b.name AS n`,
		`\quit`,
	}, "\n"))
	if !strings.Contains(out2, "loaded 2 nodes, 1 edges") {
		t.Errorf("load output:\n%s", out2)
	}
	if !strings.Contains(out2, "bob") {
		t.Errorf("query after load:\n%s", out2)
	}
}

func TestShellReason(t *testing.T) {
	out := shellSession(t, "triplestore", strings.Join([]string{
		`INSERT DATA { <cat> <subClassOf> <animal> . <felix> <type> <cat> . }`,
		`\reason`,
		`SELECT ?x WHERE { ?x <type> <animal> . }`,
		`\quit`,
	}, "\n"))
	if !strings.Contains(out, "materialized 1 inferred facts") {
		t.Errorf("reason output:\n%s", out)
	}
	if !strings.Contains(out, "felix") {
		t.Errorf("inferred query:\n%s", out)
	}
	// Non-reasoning engine reports the Table V gap.
	out2 := shellSession(t, "neograph", "\\reason\n\\quit\n")
	if !strings.Contains(out2, "no reasoning facility") {
		t.Errorf("non-reasoner output:\n%s", out2)
	}
}
