// Command gdbshell is the interactive exploration surface over any engine —
// the repository's stand-in for the GUI facility the survey marks for the
// AllegroGraph and Sones archetypes (Gruff / WebShell).
//
// Usage:
//
//	gdbshell -engine neograph
//	> MATCH (a)-[:knows]->(b) RETURN b.name AS n
//	> :trace on
//	> :stats
//	> \draw 1
//	> :quit
//
// Lines starting with \ or : are shell commands; everything else goes to
// the engine's query language (for engines without one, the shell reports
// so).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"gdbm"
	"gdbm/internal/storage/vfs"
)

// shellFS is the filesystem \save and \load go through; routing it via
// vfs keeps the crash harness able to intercept every byte the tools
// write and satisfies the vfsonly invariant.
var shellFS = vfs.OSFS

func main() {
	name := flag.String("engine", "neograph", "engine to open (see gdbm.Engines())")
	dir := flag.String("dir", "", "data directory for disk-backed engines")
	flag.Parse()

	// Every session gets a metrics registry so :stats can show the
	// storage-tier counters; an idle registry costs nothing.
	reg := gdbm.NewRegistry()
	opts := gdbm.Options{Dir: *dir, Metrics: reg}
	e, err := gdbm.Open(*name, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdbshell:", err)
		os.Exit(1)
	}
	defer e.Close()

	fmt.Printf("gdbshell: %s (%s archetype). \\help for commands.\n", e.Name(), e.SurveyRow())
	if err := repl(os.Stdin, os.Stdout, e, reg); err != nil && err != io.EOF {
		fmt.Fprintln(os.Stderr, "gdbshell:", err)
		os.Exit(1)
	}
}

// shell is one REPL session's state: the engine, its metrics registry and
// the tracing toggle (:trace on|off).
type shell struct {
	e       gdbm.Engine
	reg     *gdbm.Registry
	tracing bool
}

func repl(in io.Reader, out io.Writer, e gdbm.Engine, reg *gdbm.Registry) error {
	sh := &shell{e: e, reg: reg}
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") || strings.HasPrefix(line, ":") {
			quit, err := sh.command(out, line)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
			}
			if quit {
				return nil
			}
			continue
		}
		q, ok := e.(gdbm.Querier)
		if !ok {
			fmt.Fprintf(out, "engine %s has no query language (API only, per its survey row); use \\stats, \\nodes, \\draw\n", e.Name())
			continue
		}
		sh.query(out, q, line)
	}
}

// query dispatches one statement, tracing it when :trace is on. The trace
// never changes the answer — it only adds a record line after the result.
func (sh *shell) query(out io.Writer, q gdbm.Querier, line string) {
	if !sh.tracing {
		res, err := q.Query(line)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		printResult(out, res)
		return
	}
	before := sh.reg.Counters()
	tr := gdbm.NewTrace(line)
	res, err := gdbm.QueryContext(gdbm.WithTrace(context.Background(), tr), q, line)
	tr.Finish()
	for k, v := range sh.reg.Counters() {
		tr.Add(k, int64(v-before[k]))
	}
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	printResult(out, res)
	fmt.Fprintln(out, tr.Record())
}

func (sh *shell) command(out io.Writer, line string) (quit bool, err error) {
	e := sh.e
	fields := strings.Fields(line)
	// \cmd and :cmd are interchangeable.
	switch fields[0][1:] {
	case "quit", "q":
		return true, nil
	case "help":
		fmt.Fprintln(out, `commands (prefix with \ or :):
  \stats            graph order/size, degree statistics and metric counters
  \trace [on|off]   toggle per-query tracing (spans + counter deltas)
  \nodes [n]        list up to n nodes (default 10)
  \draw <id>        ASCII drawing of a node's neighborhood
  \save <file>      export the graph as GraphML
  \load <file>      import a GraphML file
  \reason           materialize rule inferences (reasoning engines)
  \features         the engine's survey feature profile (its table rows)
  \lang             the engine's query language name
  \quit             exit`)
		return false, nil
	case "lang":
		if q, ok := e.(gdbm.Querier); ok {
			fmt.Fprintln(out, q.LanguageName())
		} else {
			fmt.Fprintln(out, "(none — API only)")
		}
		return false, nil
	case "trace":
		if len(fields) > 1 {
			switch fields[1] {
			case "on":
				sh.tracing = true
			case "off":
				sh.tracing = false
			default:
				return false, fmt.Errorf("usage: \\trace [on|off]")
			}
		}
		if sh.tracing {
			fmt.Fprintln(out, "tracing on")
		} else {
			fmt.Fprintln(out, "tracing off")
		}
		return false, nil
	case "stats":
		shown := false
		if g, ok := e.(gdbm.GraphAPI); ok {
			fmt.Fprintf(out, "order=%d size=%d\n", g.Order(), g.Size())
			st, err := gdbm.Degrees(g, gdbm.Both)
			if err != nil {
				return false, err
			}
			fmt.Fprintf(out, "degree min=%d max=%d avg=%.2f\n", st.Min, st.Max, st.Avg)
			shown = true
		}
		if r := sh.reg.Render(); r != "" {
			fmt.Fprintln(out, r)
			shown = true
		}
		if !shown {
			return false, fmt.Errorf("engine exposes neither a binary graph API nor metrics")
		}
		return false, nil
	case "nodes":
		g, ok := e.(gdbm.GraphAPI)
		if !ok {
			return false, fmt.Errorf("engine does not expose a binary graph API")
		}
		limit := 10
		if len(fields) > 1 {
			limit, _ = strconv.Atoi(fields[1])
		}
		n := 0
		if err := g.Nodes(func(node gdbm.Node) bool {
			fmt.Fprintf(out, "  (%d:%s %s)\n", node.ID, node.Label, node.Props)
			n++
			return n < limit
		}); err != nil {
			return false, err
		}
		return false, nil
	case "features":
		f := e.Features()
		fmt.Fprintf(out, "%s reproduces the %q row; features: %+v\n", e.Name(), e.SurveyRow(), f)
		return false, nil
	case "save":
		if len(fields) < 2 {
			return false, fmt.Errorf("usage: \\save <file>")
		}
		g, ok := e.(gdbm.GraphAPI)
		if !ok {
			return false, fmt.Errorf("engine does not expose a binary graph API")
		}
		f, w, err := vfs.Create(shellFS, fields[1])
		if err != nil {
			return false, err
		}
		defer f.Close()
		if err := gdbm.WriteGraphML(w, g); err != nil {
			return false, err
		}
		fmt.Fprintf(out, "wrote %s\n", fields[1])
		return false, nil
	case "load":
		if len(fields) < 2 {
			return false, fmt.Errorf("usage: \\load <file>")
		}
		l, ok := e.(gdbm.Loader)
		if !ok {
			return false, fmt.Errorf("engine has no loader surface")
		}
		f, err := shellFS.OpenFile(fields[1])
		if err != nil {
			return false, err
		}
		defer f.Close()
		r, err := vfs.NewReader(f)
		if err != nil {
			return false, err
		}
		nodes, edges, err := gdbm.ReadGraphML(r, l)
		if err != nil {
			return false, err
		}
		fmt.Fprintf(out, "loaded %d nodes, %d edges\n", nodes, edges)
		return false, nil
	case "reason":
		r, ok := e.(gdbm.Reasoner)
		if !ok {
			return false, fmt.Errorf("engine %s has no reasoning facility (Table V)", e.Name())
		}
		n, err := r.Materialize()
		if err != nil {
			return false, err
		}
		fmt.Fprintf(out, "materialized %d inferred facts\n", n)
		return false, nil
	case "draw":
		if len(fields) < 2 {
			return false, fmt.Errorf("usage: \\draw <node-id>")
		}
		id, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return false, err
		}
		g, ok := e.(gdbm.GraphAPI)
		if !ok {
			return false, fmt.Errorf("engine does not expose a binary graph API")
		}
		return false, draw(out, g, gdbm.NodeID(id))
	}
	return false, fmt.Errorf("unknown command %s (try \\help)", fields[0])
}

// draw renders a node and its neighborhood as ASCII art — the "graphical"
// part of the shell.
func draw(out io.Writer, g gdbm.GraphAPI, id gdbm.NodeID) error {
	center, err := g.Node(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "        [%d:%s]\n", center.ID, center.Label)
	var lines []string
	if err := g.Neighbors(id, gdbm.Out, func(e gdbm.Edge, n gdbm.Node) bool {
		lines = append(lines, fmt.Sprintf("          |--%s--> [%d:%s]", e.Label, n.ID, n.Label))
		return true
	}); err != nil {
		return err
	}
	if err := g.Neighbors(id, gdbm.In, func(e gdbm.Edge, n gdbm.Node) bool {
		lines = append(lines, fmt.Sprintf("          <--%s--| [%d:%s]", e.Label, n.ID, n.Label))
		return true
	}); err != nil {
		return err
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	if len(lines) == 0 {
		fmt.Fprintln(out, "          (isolated)")
	}
	return nil
}

func printResult(out io.Writer, res *gdbm.Result) {
	if len(res.Cols) == 0 {
		fmt.Fprintln(out, "ok")
		return
	}
	fmt.Fprintln(out, strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Fprintln(out, strings.Join(parts, " | "))
	}
	fmt.Fprintf(out, "(%d rows)\n", len(res.Rows))
}
