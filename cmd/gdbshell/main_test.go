package main

import (
	"bytes"
	"strings"
	"testing"

	"gdbm"
	"gdbm/internal/engine/capability"
)

func shellSession(t *testing.T, engine string, input string) string {
	t.Helper()
	opts := gdbm.Options{}
	if capability.NeedsDir(engine) {
		opts.Dir = t.TempDir()
	}
	e, err := gdbm.Open(engine, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var out bytes.Buffer
	if err := repl(strings.NewReader(input), &out, e); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestShellQueryAndStats(t *testing.T) {
	out := shellSession(t, "neograph", strings.Join([]string{
		`CREATE (a:P {name: 'ada'})`,
		`CREATE (b:P {name: 'bob'})`,
		`MATCH (a:P {name: 'ada'}), (b:P {name: 'bob'}) CREATE (a)-[:knows]->(b)`,
		`MATCH (x)-[:knows]->(y) RETURN y.name AS n`,
		`\stats`,
		`\nodes 1`,
		`\quit`,
	}, "\n"))
	if !strings.Contains(out, "bob") {
		t.Errorf("query output missing:\n%s", out)
	}
	if !strings.Contains(out, "order=2 size=1") {
		t.Errorf("stats missing:\n%s", out)
	}
	// \nodes 1 prints one node; iteration order is unspecified.
	if !strings.Contains(out, ":P {name:") {
		t.Errorf("nodes listing missing:\n%s", out)
	}
}

func TestShellDraw(t *testing.T) {
	out := shellSession(t, "neograph", strings.Join([]string{
		`CREATE (a:P {name: 'hub'})`,
		`CREATE (b:Q {name: 'leaf'})`,
		`MATCH (a:P), (b:Q) CREATE (a)-[:spoke]->(b)`,
		`\draw 1`,
		`\quit`,
	}, "\n"))
	if !strings.Contains(out, "[1:P]") || !strings.Contains(out, "--spoke--> [2:Q]") {
		t.Errorf("draw output:\n%s", out)
	}
	// Isolated node.
	out2 := shellSession(t, "neograph", "CREATE (a:P)\n\\draw 1\n\\quit\n")
	if !strings.Contains(out2, "(isolated)") {
		t.Errorf("isolated draw:\n%s", out2)
	}
}

func TestShellHelpFeaturesLang(t *testing.T) {
	out := shellSession(t, "neograph", "\\help\n\\features\n\\lang\n\\quit\n")
	if !strings.Contains(out, "\\stats") || !strings.Contains(out, "Neo4j") || !strings.Contains(out, "gql") {
		t.Errorf("help/features/lang output:\n%s", out)
	}
}

func TestShellAPIOnlyEngine(t *testing.T) {
	out := shellSession(t, "vertexkv", "MATCH (a) RETURN a\n\\quit\n")
	if !strings.Contains(out, "no query language") {
		t.Errorf("API-only message missing:\n%s", out)
	}
}

func TestShellErrorsAreReported(t *testing.T) {
	out := shellSession(t, "neograph", "MATCH (\n\\bogus\n\\draw notanumber\n\\quit\n")
	if strings.Count(out, "error:") < 2 {
		t.Errorf("errors not reported:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown command not reported:\n%s", out)
	}
}
