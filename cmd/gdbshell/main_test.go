package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"gdbm"
	"gdbm/internal/engine/capability"
)

func shellSession(t *testing.T, engine string, input string) string {
	t.Helper()
	reg := gdbm.NewRegistry()
	opts := gdbm.Options{Metrics: reg}
	if capability.NeedsDir(engine) {
		opts.Dir = t.TempDir()
	}
	e, err := gdbm.Open(engine, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var out bytes.Buffer
	if err := repl(strings.NewReader(input), &out, e, reg); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestShellQueryAndStats(t *testing.T) {
	out := shellSession(t, "neograph", strings.Join([]string{
		`CREATE (a:P {name: 'ada'})`,
		`CREATE (b:P {name: 'bob'})`,
		`MATCH (a:P {name: 'ada'}), (b:P {name: 'bob'}) CREATE (a)-[:knows]->(b)`,
		`MATCH (x)-[:knows]->(y) RETURN y.name AS n`,
		`\stats`,
		`\nodes 1`,
		`\quit`,
	}, "\n"))
	if !strings.Contains(out, "bob") {
		t.Errorf("query output missing:\n%s", out)
	}
	if !strings.Contains(out, "order=2 size=1") {
		t.Errorf("stats missing:\n%s", out)
	}
	// \nodes 1 prints one node; iteration order is unspecified.
	if !strings.Contains(out, ":P {name:") {
		t.Errorf("nodes listing missing:\n%s", out)
	}
}

func TestShellDraw(t *testing.T) {
	out := shellSession(t, "neograph", strings.Join([]string{
		`CREATE (a:P {name: 'hub'})`,
		`CREATE (b:Q {name: 'leaf'})`,
		`MATCH (a:P), (b:Q) CREATE (a)-[:spoke]->(b)`,
		`\draw 1`,
		`\quit`,
	}, "\n"))
	if !strings.Contains(out, "[1:P]") || !strings.Contains(out, "--spoke--> [2:Q]") {
		t.Errorf("draw output:\n%s", out)
	}
	// Isolated node.
	out2 := shellSession(t, "neograph", "CREATE (a:P)\n\\draw 1\n\\quit\n")
	if !strings.Contains(out2, "(isolated)") {
		t.Errorf("isolated draw:\n%s", out2)
	}
}

func TestShellHelpFeaturesLang(t *testing.T) {
	out := shellSession(t, "neograph", "\\help\n\\features\n\\lang\n\\quit\n")
	if !strings.Contains(out, "\\stats") || !strings.Contains(out, "Neo4j") || !strings.Contains(out, "gql") {
		t.Errorf("help/features/lang output:\n%s", out)
	}
}

func TestShellAPIOnlyEngine(t *testing.T) {
	out := shellSession(t, "vertexkv", "MATCH (a) RETURN a\n\\quit\n")
	if !strings.Contains(out, "no query language") {
		t.Errorf("API-only message missing:\n%s", out)
	}
}

func TestShellColonPrefixAndTrace(t *testing.T) {
	out := shellSession(t, "neograph", strings.Join([]string{
		`CREATE (a:P {name: 'ada'})`,
		`CREATE (b:P {name: 'bob'})`,
		`MATCH (a:P {name: 'ada'}), (b:P {name: 'bob'}) CREATE (a)-[:knows]->(b)`,
		`:trace on`,
		`MATCH (x)-[:knows]->(y) RETURN y.name AS n`,
		`:trace off`,
		`:stats`,
		`:quit`,
	}, "\n"))
	if !strings.Contains(out, "tracing on") || !strings.Contains(out, "tracing off") {
		t.Errorf("trace toggle output:\n%s", out)
	}
	// The traced query still answers, then appends its one-line record
	// with the dispatch-level "query" span.
	if !strings.Contains(out, "bob") {
		t.Errorf("traced query answer missing:\n%s", out)
	}
	if !strings.Contains(out, `trace="MATCH (x)-[:knows]->(y) RETURN y.name AS n"`) ||
		!strings.Contains(out, "span=query@0:") {
		t.Errorf("trace record missing:\n%s", out)
	}
	// :stats works via the colon prefix too.
	if !strings.Contains(out, "order=2 size=1") {
		t.Errorf("colon-prefixed stats missing:\n%s", out)
	}
}

func TestShellStatsShowsDiskMetrics(t *testing.T) {
	// A disk-backed engine routes reads through the instrumented pager and
	// kvgraph layers, so :stats must surface non-trivial counters.
	reg := gdbm.NewRegistry()
	e, err := gdbm.Open("neograph", gdbm.Options{Dir: t.TempDir(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var out bytes.Buffer
	input := "CREATE (a:P {name: 'ada'})\nMATCH (a:P) RETURN a.name AS n\n:stats\n:quit\n"
	if err := repl(strings.NewReader(input), &out, e, reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "counter kvgraph.node_reads") {
		t.Errorf("disk metrics missing from :stats:\n%s", out.String())
	}
}

func TestShellTraceRejectsBadMode(t *testing.T) {
	out := shellSession(t, "neograph", ":trace sideways\n:quit\n")
	if !strings.Contains(out, "usage:") {
		t.Errorf("bad trace mode accepted:\n%s", out)
	}
}

// failingNeighbors wraps a real engine's graph API and fails iteration,
// pinning the fix for draw swallowing Neighbors errors: a broken
// neighborhood must surface as an error, not render as empty.
type failingNeighbors struct {
	gdbm.GraphAPI
	err error
}

func (f failingNeighbors) Neighbors(gdbm.NodeID, gdbm.Direction, func(gdbm.Edge, gdbm.Node) bool) error {
	return f.err
}

func TestDrawPropagatesIterationError(t *testing.T) {
	e, err := gdbm.Open("neograph", gdbm.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	api := e.(gdbm.GraphAPI)
	id, err := api.AddNode("P", nil)
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("iteration failed")
	var out bytes.Buffer
	if err := draw(&out, failingNeighbors{api, injected}, id); !errors.Is(err, injected) {
		t.Fatalf("draw error = %v, want the injected iteration error", err)
	}
}

func TestShellErrorsAreReported(t *testing.T) {
	out := shellSession(t, "neograph", "MATCH (\n\\bogus\n\\draw notanumber\n\\quit\n")
	if strings.Count(out, "error:") < 2 {
		t.Errorf("errors not reported:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown command not reported:\n%s", out)
	}
}
