// Command gdbvet is the multichecker for the repository's invariant
// analyzers:
//
//	vfsonly         file I/O in storage/engines/cmd must route through vfs.FS
//	syncerr         Sync/Append/Commit/Flush errors must be checked
//	capdecl         engines implement only their survey-profile capabilities
//	lockdiscipline  no lock copies, no Lock without same-function Unlock
//	obsctx          StartSpan end functions must be called, never discarded
//	ctxflow         server/dispatch code must thread the request context into queries
//	itererr         iteration errors must be checked on every path (CFG dataflow)
//	closeleak       constructed closeables must be closed or escape on every path
//	lockorder       program-wide lock ordering: cycles, re-entry, RLock upgrades
//
// It runs two ways:
//
//	gdbvet ./...                       # standalone, loads packages itself
//	go vet -vettool=$(which gdbvet) ./...  # under the go vet driver
//
// Under -vettool the go command hands gdbvet one JSON .cfg file per
// package (the unitchecker protocol) with pre-built export data; gdbvet
// type-checks the package from source against that and reports findings
// on stderr, exiting 2 when any are found. Standalone mode computes
// cross-package function summaries over everything it loaded, so the
// summary-driven analyzers (itererr, closeleak, lockorder) see the whole
// module at once; under -vettool each package is summarized alone.
// Suppressions use //gdbvet:allow(<analyzer>): <justification> on or
// above the line.
//
// Extra modes:
//
//	gdbvet -json ./...                 # machine-readable diagnostics (both drivers)
//	gdbvet -audit ./...                # list every suppression with its justification
//	gdbvet -budget .gdbvet-budget ./...  # fail if per-analyzer suppressions grow
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"gdbm/internal/analysis"
	"gdbm/internal/analysis/capdecl"
	"gdbm/internal/analysis/closeleak"
	"gdbm/internal/analysis/ctxflow"
	"gdbm/internal/analysis/itererr"
	"gdbm/internal/analysis/load"
	"gdbm/internal/analysis/lockdiscipline"
	"gdbm/internal/analysis/lockorder"
	"gdbm/internal/analysis/obsctx"
	"gdbm/internal/analysis/syncerr"
	"gdbm/internal/analysis/vfsonly"
)

// analyzers is the gdbvet suite; order fixes report order per position tie.
var analyzers = []*analysis.Analyzer{
	vfsonly.Analyzer,
	syncerr.Analyzer,
	capdecl.Analyzer,
	lockdiscipline.Analyzer,
	obsctx.Analyzer,
	ctxflow.Analyzer,
	itererr.Analyzer,
	closeleak.Analyzer,
	lockorder.Analyzer,
}

func main() {
	// The go vet driver probes the tool before use. The -V=full reply
	// must end in a buildID=<hex> field (cmd/go caches vet results keyed
	// on it), so hash the executable like x/tools' unitchecker does. The
	// -flags reply lists the flags cmd/go may forward; only -json is
	// meaningful per package.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			id, err := selfID()
			if err != nil {
				fmt.Fprintln(os.Stderr, "gdbvet:", err)
				os.Exit(1)
			}
			fmt.Printf("gdbvet version devel buildID=%s\n", id)
			return
		case "-flags", "--flags":
			fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON"}]`)
			return
		}
	}

	asPath := flag.String("as", "", "treat the (single) loaded package as this import path (testing aid)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	audit := flag.Bool("audit", false, "list every //gdbvet:allow directive with its justification (standalone only)")
	budgetFile := flag.String("budget", "", "compare per-analyzer suppression counts against this budget `file` and fail on growth (standalone only)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gdbvet [-json] [-audit] [-budget file] [packages]  |  gdbvet [-json] <unitchecker>.cfg\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		if *audit || *budgetFile != "" {
			fmt.Fprintln(os.Stderr, "gdbvet: -audit and -budget need standalone mode, not a vet .cfg")
			os.Exit(1)
		}
		os.Exit(vetTool(args[0], *jsonOut))
	}
	os.Exit(standalone(args, *asPath, *jsonOut, *audit, *budgetFile))
}

// selfID returns a content hash of the running executable, the buildID
// cmd/go uses to key its vet result cache.
func selfID() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	//gdbvet:allow(vfsonly): hashing our own executable for the go vet handshake, not database I/O
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// jsonDiag is the machine-readable diagnostic shape for -json.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func toJSONDiags(ds []analysis.Diagnostic) []jsonDiag {
	out := make([]jsonDiag, 0, len(ds))
	for _, d := range ds {
		out = append(out, jsonDiag{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		})
	}
	return out
}

// emit prints the run's findings. Text mode prints active findings only;
// JSON mode includes the suppressed ones, marked, so downstream tooling
// sees the whole picture. The exit decision stays on active findings.
func emit(active, suppressed []analysis.Diagnostic, jsonOut bool) {
	if jsonOut {
		all := append(append([]analysis.Diagnostic{}, active...), suppressed...)
		analysis.Sort(all)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(toJSONDiags(all)); err != nil {
			fmt.Fprintln(os.Stderr, "gdbvet:", err)
		}
		return
	}
	for _, d := range active {
		fmt.Fprintln(os.Stderr, d)
	}
}

// standalone loads the patterns itself, computes module-wide summaries,
// and runs every analyzer.
func standalone(patterns []string, asPath string, jsonOut, audit bool, budgetFile string) int {
	targets, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdbvet:", err)
		return 1
	}
	if asPath != "" {
		if len(targets) != 1 {
			fmt.Fprintf(os.Stderr, "gdbvet: -as needs exactly one package, got %d\n", len(targets))
			return 1
		}
		targets[0].PkgPath = asPath
	}
	summaries := analysis.ComputeSummaries(targets)
	for _, t := range targets {
		t.Summaries = summaries
	}

	var active, suppressed []analysis.Diagnostic
	var allows []analysis.AllowRecord
	for _, t := range targets {
		for _, a := range analyzers {
			res, err := analysis.RunAll(a, t)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gdbvet:", err)
				return 1
			}
			active = append(active, res.Diags...)
			suppressed = append(suppressed, res.Suppressed...)
			allows = append(allows, res.Allows...)
		}
	}
	analysis.Sort(active)

	code := 0
	if audit {
		if fail := printAudit(allows, jsonOut); fail {
			code = 2
		}
	} else {
		emit(active, suppressed, jsonOut)
	}
	if budgetFile != "" {
		if fail := checkBudget(budgetFile, allows); fail {
			code = 2
		}
	}
	if len(active) > 0 {
		code = 2
	}
	return code
}

// printAudit lists every //gdbvet:allow directive with its justification
// and reports whether any directive is unjustified or stale.
func printAudit(allows []analysis.AllowRecord, jsonOut bool) (fail bool) {
	sort.Slice(allows, func(i, j int) bool {
		a, b := allows[i], allows[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	if jsonOut {
		type jsonAllow struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Reason   string `json:"reason"`
			Used     bool   `json:"used"`
		}
		out := make([]jsonAllow, 0, len(allows))
		for _, a := range allows {
			out = append(out, jsonAllow{a.Pos.Filename, a.Pos.Line, a.Analyzer, a.Reason, a.Used})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "gdbvet:", err)
		}
	} else {
		fmt.Printf("gdbvet audit: %d suppression directive(s)\n", len(allows))
	}
	for _, a := range allows {
		status := "used"
		switch {
		case a.Reason == "":
			status = "UNJUSTIFIED"
			fail = true
		case !a.Used:
			status = "STALE"
			fail = true
		}
		if !jsonOut {
			fmt.Printf("  %s:%d: allow(%s) [%s] %s\n", a.Pos.Filename, a.Pos.Line, a.Analyzer, status, a.Reason)
		} else if status != "used" {
			fmt.Fprintf(os.Stderr, "gdbvet audit: %s:%d: allow(%s) is %s\n", a.Pos.Filename, a.Pos.Line, a.Analyzer, status)
		}
	}
	return fail
}

// checkBudget compares the per-analyzer suppression counts against the
// checked-in budget file (lines of `analyzer count`, # comments). More
// suppressions than budgeted fails: a new suppression must be paid for
// by raising the budget in the same change, which is the review hook.
func checkBudget(path string, allows []analysis.AllowRecord) (fail bool) {
	//gdbvet:allow(vfsonly): the lint budget ledger is repo metadata, not database I/O
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdbvet budget:", err)
		return true
	}
	budget := map[string]int{}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			fmt.Fprintf(os.Stderr, "gdbvet budget: %s:%d: want `analyzer count`, got %q\n", path, ln+1, line)
			return true
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "gdbvet budget: %s:%d: %v\n", path, ln+1, err)
			return true
		}
		budget[fields[0]] = n
	}

	counts := map[string]int{}
	for _, a := range allows {
		counts[a.Analyzer]++
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	fmt.Printf("gdbvet budget: suppressions per analyzer (have/allowed)\n")
	for _, name := range names {
		have, allowed := counts[name], budget[name]
		marker := ""
		switch {
		case have > allowed:
			marker = "  OVER BUDGET: justify the new suppression and raise the budget in " + path
			fail = true
		case have < allowed:
			marker = "  (budget can be ratcheted down)"
		}
		fmt.Printf("  %-15s %d/%d%s\n", name, have, allowed, marker)
	}
	return fail
}

// vetConfig is the unitchecker protocol input written by cmd/go.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetTool analyzes one package described by a cmd/go .cfg file.
func vetTool(cfgPath string, jsonOut bool) int {
	//gdbvet:allow(vfsonly): unitchecker protocol file handed over by cmd/go, not database I/O
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdbvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gdbvet: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// gdbvet exchanges no facts, but the driver expects the output file.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			//gdbvet:allow(vfsonly): facts file the go vet driver expects at a path it chose
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "gdbvet:", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintln(os.Stderr, "gdbvet:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		//gdbvet:allow(vfsonly): compiler export data located by cmd/go, not database I/O
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "gdbvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	target := &analysis.Target{
		PkgPath: cfg.ImportPath,
		Fset:    fset,
		Files:   files,
		Pkg:     tpkg,
		Info:    info,
	}
	target.Summaries = analysis.ComputeSummaries([]*analysis.Target{target})
	var active, suppressed []analysis.Diagnostic
	for _, a := range analyzers {
		res, err := analysis.RunAll(a, target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdbvet:", err)
			return 1
		}
		active = append(active, res.Diags...)
		suppressed = append(suppressed, res.Suppressed...)
	}
	writeVetx()
	analysis.Sort(active)
	emit(active, suppressed, jsonOut)
	if len(active) > 0 {
		return 2
	}
	return 0
}
