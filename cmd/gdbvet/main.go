// Command gdbvet is the multichecker for the repository's invariant
// analyzers:
//
//	vfsonly         file I/O in storage/engines/cmd must route through vfs.FS
//	syncerr         Sync/Append/Commit/Flush errors must be checked
//	capdecl         engines implement only their survey-profile capabilities
//	lockdiscipline  no lock copies, no Lock without same-function Unlock
//	obsctx          StartSpan end functions must be called, never discarded
//	ctxflow         server/dispatch code must thread the request context into queries
//
// It runs two ways:
//
//	gdbvet ./...                       # standalone, loads packages itself
//	go vet -vettool=$(which gdbvet) ./...  # under the go vet driver
//
// Under -vettool the go command hands gdbvet one JSON .cfg file per
// package (the unitchecker protocol) with pre-built export data; gdbvet
// type-checks the package from source against that and reports findings
// on stderr, exiting 2 when any are found. Suppressions use
// //gdbvet:allow(<analyzer>): <justification> on or above the line.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"gdbm/internal/analysis"
	"gdbm/internal/analysis/capdecl"
	"gdbm/internal/analysis/ctxflow"
	"gdbm/internal/analysis/load"
	"gdbm/internal/analysis/lockdiscipline"
	"gdbm/internal/analysis/obsctx"
	"gdbm/internal/analysis/syncerr"
	"gdbm/internal/analysis/vfsonly"
)

// analyzers is the gdbvet suite; order fixes report order per position tie.
var analyzers = []*analysis.Analyzer{
	vfsonly.Analyzer,
	syncerr.Analyzer,
	capdecl.Analyzer,
	lockdiscipline.Analyzer,
	obsctx.Analyzer,
	ctxflow.Analyzer,
}

func main() {
	// The go vet driver probes the tool before use. The -V=full reply
	// must end in a buildID=<hex> field (cmd/go caches vet results keyed
	// on it), so hash the executable like x/tools' unitchecker does.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			id, err := selfID()
			if err != nil {
				fmt.Fprintln(os.Stderr, "gdbvet:", err)
				os.Exit(1)
			}
			fmt.Printf("gdbvet version devel buildID=%s\n", id)
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	asPath := flag.String("as", "", "treat the (single) loaded package as this import path (testing aid)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gdbvet [packages]  |  gdbvet <unitchecker>.cfg\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetTool(args[0]))
	}
	os.Exit(standalone(args, *asPath))
}

// selfID returns a content hash of the running executable, the buildID
// cmd/go uses to key its vet result cache.
func selfID() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	//gdbvet:allow(vfsonly): hashing our own executable for the go vet handshake, not database I/O
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// standalone loads the patterns itself and runs every analyzer.
func standalone(patterns []string, asPath string) int {
	targets, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdbvet:", err)
		return 1
	}
	if asPath != "" {
		if len(targets) != 1 {
			fmt.Fprintf(os.Stderr, "gdbvet: -as needs exactly one package, got %d\n", len(targets))
			return 1
		}
		targets[0].PkgPath = asPath
	}
	var all []analysis.Diagnostic
	for _, t := range targets {
		for _, a := range analyzers {
			ds, err := analysis.Run(a, t)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gdbvet:", err)
				return 1
			}
			all = append(all, ds...)
		}
	}
	analysis.Sort(all)
	for _, d := range all {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(all) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the unitchecker protocol input written by cmd/go.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetTool analyzes one package described by a cmd/go .cfg file.
func vetTool(cfgPath string) int {
	//gdbvet:allow(vfsonly): unitchecker protocol file handed over by cmd/go, not database I/O
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdbvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gdbvet: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// gdbvet exchanges no facts, but the driver expects the output file.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			//gdbvet:allow(vfsonly): facts file the go vet driver expects at a path it chose
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "gdbvet:", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintln(os.Stderr, "gdbvet:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		//gdbvet:allow(vfsonly): compiler export data located by cmd/go, not database I/O
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "gdbvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	target := &analysis.Target{
		PkgPath: cfg.ImportPath,
		Fset:    fset,
		Files:   files,
		Pkg:     tpkg,
		Info:    info,
	}
	var all []analysis.Diagnostic
	for _, a := range analyzers {
		ds, err := analysis.Run(a, target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gdbvet:", err)
			return 1
		}
		all = append(all, ds...)
	}
	writeVetx()
	analysis.Sort(all)
	for _, d := range all {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(all) > 0 {
		return 2
	}
	return 0
}
