package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildGdbvet compiles the gdbvet binary once into a test temp dir.
func buildGdbvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gdbvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build gdbvet: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/gdbvet -> repo root
}

// TestStandaloneRepoClean is the gate the lint target enforces: the whole
// repository must be free of unsuppressed findings.
func TestStandaloneRepoClean(t *testing.T) {
	bin := buildGdbvet(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("gdbvet ./... reported findings or failed: %v\n%s", err, out)
	}
}

// TestStandaloneFindsViolations runs the binary over a known-dirty fixture
// with -as mapping it into vfsonly's scope and expects exit code 2.
func TestStandaloneFindsViolations(t *testing.T) {
	bin := buildGdbvet(t)
	cmd := exec.Command(bin, "-as", "gdbm/internal/storage/diskio",
		"./internal/analysis/vfsonly/testdata/src/diskio")
	cmd.Dir = repoRoot(t)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on violation fixture, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "[vfsonly]") {
		t.Errorf("expected vfsonly findings in output:\n%s", out.String())
	}
}

// TestVersionHandshake covers the -V=full probe cmd/go performs before
// trusting a vettool.
func TestVersionHandshake(t *testing.T) {
	bin := buildGdbvet(t)
	out, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), "gdbvet version ") {
		t.Errorf("version line must start with %q, got %q", "gdbvet version ", out)
	}
}

// TestVettoolProtocol drives gdbvet exactly as cmd/go does: go vet
// -vettool over a clean package must pass, and over the violation fixture
// (reachable because testdata is ignored only by wildcards, not explicit
// arguments) must fail.
func TestVettoolProtocol(t *testing.T) {
	bin := buildGdbvet(t)
	root := repoRoot(t)

	clean := exec.Command("go", "vet", "-vettool="+bin, "./internal/report")
	clean.Dir = root
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over clean package: %v\n%s", err, out)
	}

	dirty := exec.Command("go", "vet", "-vettool="+bin,
		"./cmd/gdbvet/testdata/src/dirty")
	dirty.Dir = root
	out, err := dirty.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool over dirty fixture should fail\n%s", out)
	}
	if !strings.Contains(string(out), "[vfsonly]") {
		t.Errorf("expected vfsonly findings via vettool, got:\n%s", out)
	}
}
