// Package dirty is a deliberately violating fixture for gdbvet's own
// driver tests. Its real import path sits under gdbm/cmd, so vfsonly
// applies even when cmd/go hands gdbvet the true package path via the
// -vettool protocol. Wildcard patterns (./...) never match testdata, so
// the repo-wide lint stays green.
package dirty

import "os"

// Leak opens a file straight through the os package.
func Leak(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}
