// Bioinformatics on the hypergraph model — the survey singles out
// HyperGraphDB's hyperedges as "particularly useful for modeling data of
// areas like knowledge representation, artificial intelligence and
// bio-informatics" because higher-order relations (a protein complex
// binding several proteins at once) are first class instead of being
// decomposed into cliques of binary edges.
package main

import (
	"fmt"
	"log"

	"gdbm"
	"gdbm/internal/engines/hyperdb"
)

func main() {
	raw, err := gdbm.Open("hyperdb", gdbm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer raw.Close()
	db := raw.(*hyperdb.DB)

	// The HyperGraphDB archetype is typed (Table VI: types checking):
	// declare the atom type, then make protein names unique identities.
	if err := db.Schema().DefineNodeType(gdbm.NodeType{
		Name: "Protein",
		Properties: []gdbm.PropertyType{
			{Name: "name", Kind: gdbm.KindString, Required: true, Unique: true},
		},
	}); err != nil {
		log.Fatal(err)
	}
	db.SetIdentity("Protein", "name")

	protein := func(name string) gdbm.NodeID {
		id, err := db.AddAtom("Protein", gdbm.Props("name", name))
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	// A miniature interactome.
	rpb1 := protein("RPB1")
	rpb2 := protein("RPB2")
	rpb3 := protein("RPB3")
	tbp := protein("TBP")
	tfb1 := protein("TFB1")
	ssl2 := protein("SSL2")

	// Higher-order relations: complexes bind many proteins at once.
	polII, err := db.AddLink("complex", []gdbm.NodeID{rpb1, rpb2, rpb3}, gdbm.Props("name", "RNA-Pol-II-core"))
	if err != nil {
		log.Fatal(err)
	}
	tfiih, _ := db.AddLink("complex", []gdbm.NodeID{tfb1, ssl2, tbp}, gdbm.Props("name", "TFIIH-like"))
	// A binary interaction is just a 2-member hyperedge.
	db.AddLink("binds", []gdbm.NodeID{rpb1, tbp}, nil)

	h := db.Hypergraph()
	fmt.Printf("interactome: %d proteins, %d relations (2 complexes, 1 binary)\n", h.Order(), h.Size())

	// Which complexes contain RPB1?
	fmt.Println("relations containing RPB1:")
	if err := h.Incident(rpb1, func(e gdbm.HyperEdge) bool {
		fmt.Printf("  %s %s with %d members\n", e.Label, e.Props.Get("name"), len(e.Members))
		return true
	}); err != nil {
		log.Fatal(err)
	}

	// Node adjacency in the hypergraph sense: shared hyperedge.
	es := raw.Essentials()
	sameComplex, _ := es.NodeAdjacency(rpb1, rpb2)
	crossComplex, _ := es.NodeAdjacency(rpb2, ssl2)
	fmt.Printf("RPB1 adjacent to RPB2 (same complex): %v\n", sameComplex)
	fmt.Printf("RPB2 adjacent to SSL2 (different complexes): %v\n", crossComplex)

	// TBP bridges the polymerase and the TFIIH-like complex.
	bridge, _ := es.NodeAdjacency(rpb1, tbp)
	fmt.Printf("RPB1 adjacent to TBP (binds relation): %v\n", bridge)
	_ = polII
	_ = tfiih

	// Identity constraint at work: a duplicate protein is rejected.
	if _, err := db.AddAtom("Protein", gdbm.Props("name", "RPB1")); err != nil {
		fmt.Printf("identity constraint rejected duplicate RPB1: %v\n", err != nil)
	}

	// Summarize through the engine surface.
	n, _ := es.Summarization(gdbm.AggCount, "Protein", "")
	fmt.Printf("protein count via summarization surface: %s\n", n)

	// The survey's observation: the same data in a binary-edge engine
	// needs clique expansion. Project and compare.
	bin := db.HyperAPIOf()
	_ = bin
	fmt.Println("hyperedges keep complexes first-class; clique expansion of the 3-member complexes would need 6 directed edges each")
}
