// Nested graphs — the structure the survey finds *no* current system
// supports ("hypergraphs and attributed graphs can be modeled by nested
// graphs. In contrast, the multilevel nesting provided by nested graphs
// cannot be modeled by any of the other structures"). This example builds a
// multilevel software-architecture model with hypernodes and demonstrates
// the subsumption claim by flattening it into a plain graph.
package main

import (
	"fmt"
	"log"

	"gdbm"
	"gdbm/internal/memgraph"
)

func main() {
	// Top level: services and their calls.
	system := memgraph.NewNested()
	api, _ := system.AddNode("Service", gdbm.Props("name", "api"))
	billing, _ := system.AddNode("Service", gdbm.Props("name", "billing"))
	system.AddEdge("calls", api, billing, nil)

	// The api service is itself a graph of modules...
	apiInternals := memgraph.NewNested()
	authMod, _ := apiInternals.AddNode("Module", gdbm.Props("name", "auth"))
	routeMod, _ := apiInternals.AddNode("Module", gdbm.Props("name", "router"))
	apiInternals.AddEdge("imports", routeMod, authMod, nil)

	// ...and the auth module is a graph of functions (level 2 nesting).
	authInternals := memgraph.NewNested()
	login, _ := authInternals.AddNode("Fn", gdbm.Props("name", "Login"))
	verify, _ := authInternals.AddNode("Fn", gdbm.Props("name", "Verify"))
	authInternals.AddEdge("invokes", login, verify, nil)

	if err := apiInternals.Nest(authMod, authInternals); err != nil {
		log.Fatal(err)
	}
	if err := system.Nest(api, apiInternals); err != nil {
		log.Fatal(err)
	}

	depth, _ := system.Depth(api)
	fmt.Printf("the api hypernode nests %d levels of structure\n", depth)

	child, _ := system.Child(api)
	fmt.Printf("inside api: %d modules, %d import edges\n", child.Order(), child.Size())

	// The survey's subsumption claim, executed: flatten the multilevel
	// graph into a plain simple graph with explicit "nests" edges.
	flat, err := system.Flatten()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flattened: %d nodes, %d edges\n", flat.Order(), flat.Size())
	nests := 0
	if err := flat.Edges(func(e gdbm.Edge) bool {
		if e.Label == "nests" {
			nests++
		}
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nesting became %d explicit 'nests' edges — expressible, but the\n", nests)
	fmt.Println("multilevel structure is now a naming convention instead of a model feature,")
	fmt.Println("which is exactly why the survey calls nesting out as unsupported future work")

	// Queries still work over the flattened view via the shared algorithms.
	stats, _ := gdbm.Degrees(flat, gdbm.Both)
	fmt.Printf("flattened degree stats: min=%d max=%d avg=%.2f\n", stats.Min, stats.Max, stats.Avg)
}
