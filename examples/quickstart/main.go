// Quickstart: open an engine, create a small property graph through the
// API and through the query language, run the essential graph queries, and
// print the engine's survey profile.
package main

import (
	"fmt"
	"log"

	"gdbm"
)

func main() {
	// Open the Neo4j-archetype engine in main memory.
	db, err := gdbm.Open("neograph", gdbm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	api := db.(gdbm.GraphAPI)

	// Create data through the API.
	ada, _ := api.AddNode("Person", gdbm.Props("name", "ada", "age", 36))
	bob, _ := api.AddNode("Person", gdbm.Props("name", "bob", "age", 40))
	cam, _ := api.AddNode("Person", gdbm.Props("name", "cam", "age", 25))
	api.AddEdge("knows", ada, bob, gdbm.Props("since", 2019))
	api.AddEdge("knows", bob, cam, nil)

	// Create data through the (partial) query language.
	q := db.(gdbm.Querier)
	if _, err := q.Query(`CREATE (d:Person {name: 'dot', age: 52})`); err != nil {
		log.Fatal(err)
	}
	if _, err := q.Query(`MATCH (c:Person {name: 'cam'}), (d:Person {name: 'dot'}) CREATE (c)-[:knows]->(d)`); err != nil {
		log.Fatal(err)
	}

	// Query: who do people over 30 know?
	res, err := q.Query(`MATCH (a:Person)-[:knows]->(b) WHERE a.age > 30 RETURN a.name AS a, b.name AS b ORDER BY a`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("who do people over 30 know?")
	for _, row := range res.Rows {
		fmt.Printf("  %s knows %s\n", row[0], row[1])
	}

	// Essential graph queries through the engine's surface (Table VII).
	es := db.Essentials()
	adj, _ := es.NodeAdjacency(ada, bob)
	fmt.Printf("ada adjacent to bob: %v\n", adj)

	hood, _ := es.KNeighborhood(ada, 2)
	fmt.Printf("ada's 2-neighborhood has %d people\n", len(hood))

	path, _ := es.ShortestPath(ada, cam)
	fmt.Printf("shortest path ada->cam has %d hops\n", path.Len())

	avg, _ := es.Summarization(gdbm.AggAvg, "Person", "age")
	fmt.Printf("average age: %s\n", avg)

	// The engine's survey identity.
	fmt.Printf("engine %s reproduces the %s row of the survey\n", db.Name(), db.SurveyRow())
}
