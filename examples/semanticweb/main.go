// Semantic Web on the triple model — the AllegroGraph archetype: load RDF
// statements, query them with the SPARQL-like language, and materialize
// RDFS-style inferences with the rule engine (the survey's "Reasoning"
// facility of Table V).
package main

import (
	"fmt"
	"log"
	"strings"

	"gdbm"
	"gdbm/internal/engines/triplestore"
	"gdbm/internal/format"
)

const data = `
<socrates> <type> <human> .
<plato> <type> <human> .
<human> <subClassOf> <mortal> .
<mortal> <subClassOf> <being> .
<socrates> <teacherOf> <plato> .
<plato> <teacherOf> <aristotle> .
<aristotle> <type> <human> .
<socrates> <name> "Socrates of Athens" .
`

func main() {
	raw, err := gdbm.Open("triplestore", gdbm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer raw.Close()
	db := raw.(*triplestore.DB)

	// Load N-Triples.
	n, err := format.ReadNTriples(strings.NewReader(data), db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d statements\n", n)

	// Query with the SPARQL-like language (Table V marks this QL partial:
	// it matches triple patterns, not arbitrary graph structure).
	q := raw.(gdbm.Querier)
	res, err := q.Query(`SELECT ?x WHERE { ?x <type> <human> . } ORDER BY ?x`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("humans (asserted):")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row[0])
	}

	// Reasoning: RDFS subclass rules derive mortality.
	derived, err := db.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d inferred statements\n", derived)

	res, err = q.Query(`SELECT ?x WHERE { ?x <type> <mortal> . } ORDER BY ?x`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mortals (inferred via human subClassOf mortal):")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row[0])
	}

	// Joins across triple patterns: students of a human teacher.
	res, err = q.Query(`SELECT ?t ?s WHERE { ?t <teacherOf> ?s . ?t <type> <human> . } ORDER BY ?t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("teacher/student pairs:")
	for _, row := range res.Rows {
		fmt.Printf("  %s taught %s\n", row[0], row[1])
	}

	// DML through the language.
	if _, err := q.Query(`INSERT DATA { <aristotle> <teacherOf> <alexander> . }`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statements after insert: %d\n", db.Count())

	// Filters over literals.
	res, err = q.Query(`SELECT ?n WHERE { <socrates> <name> ?n . FILTER (?n != "x") }`)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Rows) == 1 {
		fmt.Printf("literal lookup: %s\n", res.Rows[0][0])
	}
}
