// Social network analysis — the application domain the survey's
// AllegroGraph/InfiniteGraph descriptions call out. A Barabási–Albert
// scale-free network is generated into the DEX-archetype engine; the
// example then runs the classic SNA workloads: degree centrality,
// friend-of-friend recommendations, shortest social paths, and community
// sampling via the bitmap label algebra the archetype is built on.
package main

import (
	"fmt"
	"log"
	"sort"

	"gdbm"
	"gdbm/internal/engines/bitmapdb"
)

func main() {
	raw, err := gdbm.Open("bitmapdb", gdbm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer raw.Close()
	db := raw.(*bitmapdb.DB) // the concrete API: the DEX archetype is API-only

	// A 400-person scale-free friendship network.
	ids, err := gdbm.Generate(gdbm.GenSpec{
		Kind:         gdbm.BarabasiAlbert,
		Nodes:        400,
		EdgesPerNode: 3,
		Seed:         2012,
		Labels:       []string{"Person"},
		EdgeLabel:    "friend",
	}, raw.(gdbm.Loader))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d people, %d friendships\n", db.Order(), db.Size())

	// 1. Degree centrality: the influencers.
	type ranked struct {
		id  gdbm.NodeID
		deg int
	}
	var rank []ranked
	for _, id := range ids {
		d, _ := db.Degree(id, gdbm.Both)
		rank = append(rank, ranked{id, d})
	}
	sort.Slice(rank, func(i, j int) bool { return rank[i].deg > rank[j].deg })
	fmt.Println("top influencers by degree:")
	for _, r := range rank[:5] {
		fmt.Printf("  person %d: %d friends\n", r.id, r.deg)
	}

	// 2. Friend-of-friend recommendations for a mid-degree person.
	target := rank[len(rank)/2].id
	direct := map[gdbm.NodeID]bool{target: true}
	if err := db.Neighbors(target, gdbm.Both, func(_ gdbm.Edge, n gdbm.Node) bool {
		direct[n.ID] = true
		return true
	}); err != nil {
		log.Fatal(err)
	}
	scores := map[gdbm.NodeID]int{} // mutual-friend counts
	for friend := range direct {
		if friend == target {
			continue
		}
		if err := db.Neighbors(friend, gdbm.Both, func(_ gdbm.Edge, n gdbm.Node) bool {
			if !direct[n.ID] {
				scores[n.ID]++
			}
			return true
		}); err != nil {
			log.Fatal(err)
		}
	}
	type rec struct {
		id     gdbm.NodeID
		mutual int
	}
	var recs []rec
	for id, m := range scores {
		recs = append(recs, rec{id, m})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].mutual != recs[j].mutual {
			return recs[i].mutual > recs[j].mutual
		}
		return recs[i].id < recs[j].id
	})
	fmt.Printf("recommendations for person %d:\n", target)
	for i, r := range recs {
		if i == 3 {
			break
		}
		fmt.Printf("  person %d (%d mutual friends)\n", r.id, r.mutual)
	}

	// 3. Degrees of separation (shortest social path).
	es := raw.Essentials()
	path, err := es.ShortestPath(ids[0], rank[0].id)
	if err == nil {
		fmt.Printf("degrees of separation person %d -> top influencer: %d\n", ids[0], path.Len())
	}

	// 4. Network summary through the engine's analysis surface.
	count, _ := es.Summarization(gdbm.AggCount, "Person", "")
	fmt.Printf("population: %s\n", count)
	stats, _ := gdbm.Degrees(db, gdbm.Both)
	fmt.Printf("degree distribution: min=%d max=%d avg=%.1f (scale-free skew: max >> avg)\n",
		stats.Min, stats.Max, stats.Avg)

	// 5. The bitmap algebra the DEX archetype is named for: label sets
	// support set operations directly.
	people := db.LabelSet("Person")
	fmt.Printf("bitmap index cardinality for :Person = %d\n", people.Count())
}
