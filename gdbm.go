// Package gdbm is the public API of the graph-database-models workbench: a
// from-scratch Go reproduction of the systems compared in "A Comparison of
// Current Graph Database Models" (Angles, ICDE 2012 Workshops).
//
// The package exposes nine engines, one per system archetype of the survey
// (AllegroGraph, DEX, Filament, G-Store, HyperGraphDB, InfiniteGraph,
// Neo4j, Sones, VertexDB), built on shared storage, index, query-language,
// constraint and algorithm substrates, plus the harness that regenerates
// the paper's eight comparison tables from the living engines.
//
// Quick start:
//
//	db, err := gdbm.Open("neograph", gdbm.Options{})
//	...
//	api := db.(gdbm.GraphAPI)
//	ada, _ := api.AddNode("Person", gdbm.Props("name", "ada"))
//	bob, _ := api.AddNode("Person", gdbm.Props("name", "bob"))
//	api.AddEdge("knows", ada, bob, nil)
//	res, _ := db.(gdbm.Querier).Query(`MATCH (a)-[:knows]->(b) RETURN b.name AS n`)
package gdbm

import (
	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/format"
	"gdbm/internal/gen"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/pastql"
	"gdbm/internal/query/plan"
	"gdbm/internal/report"

	// Register every archetype engine.
	_ "gdbm/internal/engines/bitmapdb"
	_ "gdbm/internal/engines/filamentdb"
	_ "gdbm/internal/engines/gstore"
	_ "gdbm/internal/engines/hyperdb"
	_ "gdbm/internal/engines/infinigraph"
	_ "gdbm/internal/engines/neograph"
	_ "gdbm/internal/engines/sonesdb"
	_ "gdbm/internal/engines/triplestore"
	_ "gdbm/internal/engines/vertexkv"
)

// Core data model types.
type (
	// Value is a typed scalar (null, bool, int, float, string).
	Value = model.Value
	// Properties maps attribute names to values.
	Properties = model.Properties
	// Node is a vertex record.
	Node = model.Node
	// Edge is a binary edge record.
	Edge = model.Edge
	// HyperEdge relates an arbitrary set of nodes.
	HyperEdge = model.HyperEdge
	// NodeID identifies a node.
	NodeID = model.NodeID
	// EdgeID identifies an edge.
	EdgeID = model.EdgeID
	// Direction selects which incident edges a traversal follows.
	Direction = model.Direction
	// Graph is the structural read interface.
	Graph = model.Graph
	// MutableGraph extends Graph with updates.
	MutableGraph = model.MutableGraph
	// Schema is a catalog of node/relation types.
	Schema = model.Schema
	// NodeType declares a class of nodes.
	NodeType = model.NodeType
	// RelationType declares a class of edges.
	RelationType = model.RelationType
	// PropertyType declares a typed attribute.
	PropertyType = model.PropertyType
	// Kind enumerates value types.
	Kind = model.Kind
)

// Value kinds.
const (
	KindNull   = model.KindNull
	KindBool   = model.KindBool
	KindInt    = model.KindInt
	KindFloat  = model.KindFloat
	KindString = model.KindString
)

// Traversal directions.
const (
	Out  = model.Out
	In   = model.In
	Both = model.Both
)

// Value constructors.
var (
	// Null returns the null value.
	Null = model.Null
	// Bool wraps a bool.
	Bool = model.Bool
	// Int wraps an int64.
	Int = model.Int
	// Float wraps a float64.
	Float = model.Float
	// Str wraps a string.
	Str = model.Str
	// Of converts a native Go value.
	Of = model.Of
	// Props builds a property map from key/value pairs.
	Props = model.Props
)

// Engine surfaces.
type (
	// Engine is one archetype database instance.
	Engine = engine.Engine
	// Options configures Open.
	Options = engine.Options
	// Features is the archetype's table profile.
	Features = engine.Features
	// Essentials is the essential-query surface of Table VII.
	Essentials = engine.Essentials
	// Support is a table cell mark.
	Support = engine.Support
	// GraphAPI is the binary property-graph API surface.
	GraphAPI = engine.GraphAPI
	// HyperAPI is the hypergraph API surface.
	HyperAPI = engine.HyperAPI
	// Querier is the query-language surface.
	Querier = engine.Querier
	// SchemaHolder exposes a schema (DDL surface).
	SchemaHolder = engine.SchemaHolder
	// Reasoner exposes rule inference.
	Reasoner = engine.Reasoner
	// Persistent exposes Flush for disk-backed engines.
	Persistent = engine.Persistent
	// Loader is the bulk-ingest surface.
	Loader = engine.Loader
	// Result is a materialized query result.
	Result = plan.Result
)

// Support marks.
const (
	No      = engine.No
	Partial = engine.Partial
	Yes     = engine.Yes
)

// Open constructs the named engine. Names: "triplestore" (AllegroGraph),
// "bitmapdb" (DEX), "filamentdb" (Filament), "gstore" (G-Store), "hyperdb"
// (HyperGraphDB), "infinigraph" (InfiniteGraph), "neograph" (Neo4j),
// "sonesdb" (Sones), "vertexkv" (VertexDB).
func Open(name string, opts Options) (Engine, error) { return engine.Open(name, opts) }

// Engines lists the available engine names in the paper's row order.
func Engines() []string { return engine.Names() }

// Algorithms (the essential graph queries, usable on any Graph).
type (
	// Path is a node/edge sequence.
	Path = algo.Path
	// Pattern is a query graph for subgraph isomorphism.
	Pattern = algo.Pattern
	// PatternNode constrains one matched node.
	PatternNode = algo.PatternNode
	// PatternEdge constrains one matched edge.
	PatternEdge = algo.PatternEdge
	// Match is one pattern embedding.
	Match = algo.Match
	// PathExpr is a compiled regular path expression.
	PathExpr = algo.PathExpr
	// AggKind selects an aggregate function.
	AggKind = algo.AggKind
	// DegreeStats summarizes a degree distribution.
	DegreeStats = algo.DegreeStats
)

// Aggregate kinds.
const (
	AggCount = algo.AggCount
	AggSum   = algo.AggSum
	AggAvg   = algo.AggAvg
	AggMin   = algo.AggMin
	AggMax   = algo.AggMax
)

// Algorithm entry points.
var (
	// Adjacent tests node adjacency.
	Adjacent = algo.Adjacent
	// Neighborhood returns the k-neighborhood.
	Neighborhood = algo.Neighborhood
	// ShortestPath returns a minimum-hop path.
	ShortestPath = algo.ShortestPath
	// WeightedShortestPath runs Dijkstra over an edge property.
	WeightedShortestPath = algo.WeightedShortestPath
	// FixedLengthPaths enumerates simple paths of exact length.
	FixedLengthPaths = algo.FixedLengthPaths
	// Reachable tests reachability.
	Reachable = algo.Reachable
	// CompilePathExpr compiles a regular path expression.
	CompilePathExpr = algo.CompilePathExpr
	// NewPattern builds a pattern graph.
	NewPattern = algo.NewPattern
	// FindMatches enumerates pattern embeddings.
	FindMatches = algo.FindMatches
	// Degrees computes degree statistics.
	Degrees = algo.Degrees
	// Diameter computes the graph diameter.
	Diameter = algo.Diameter
	// Distance computes the shortest-path length.
	Distance = algo.Distance
	// AggregateNodeProp folds a property over nodes.
	AggregateNodeProp = algo.AggregateNodeProp
	// BFS walks the graph breadth-first.
	BFS = algo.BFS
)

// Workload generation.
type (
	// GenSpec describes a synthetic graph.
	GenSpec = gen.Spec
	// GenKind selects the generator family.
	GenKind = gen.Kind
)

// Generator families.
const (
	ErdosRenyi     = gen.ER
	BarabasiAlbert = gen.BA
	RMAT           = gen.RMAT
)

// Generate builds a synthetic graph into any Loader.
func Generate(spec GenSpec, sink Loader) ([]NodeID, error) { return gen.Generate(spec, sink) }

// Table regeneration (the paper's evaluation).
type (
	// Table is one regenerated comparison matrix.
	Table = report.Table
	// Mismatch is a cell differing from the paper.
	Mismatch = report.Mismatch
	// PerfResult is one performance-sweep measurement.
	PerfResult = report.PerfResult
	// PastLanguage is one Table VIII language profile.
	PastLanguage = pastql.Language
)

// Tables regenerates all eight tables against the given engines (open one
// per archetype; see Open).
func Tables(engines []Engine) ([]*Table, error) { return report.AllTables(engines) }

// DiffWithPaper compares a regenerated table with the paper's matrix.
func DiffWithPaper(t *Table) []Mismatch { return report.Diff(t) }

// RunPerf runs the performance sweep the survey's related work cites.
var RunPerf = report.RunPerf

// RenderPerf prints a performance sweep.
var RenderPerf = report.RenderPerf

// ParallelSweep is the parallel-kernel benchmark result set.
type ParallelSweep = report.ParallelSweep

// RunParallelSweep times the parallel query kernels against their
// sequential baselines across worker counts.
var RunParallelSweep = report.RunParallelSweep

// RenderParallel prints a parallel-kernel sweep.
var RenderParallel = report.RenderParallel

// WriteParallelJSON writes a parallel-kernel sweep as JSON through the
// vfs seam.
var WriteParallelJSON = report.WriteParallelJSON

// CacheSweep is the cold/warm cache benchmark result set.
type CacheSweep = report.CacheSweep

// RunCacheSweep times identical query passes against cached and uncached
// engine configurations (uncached / cold / warm).
var RunCacheSweep = report.RunCacheSweep

// RenderCache prints a cache sweep.
var RenderCache = report.RenderCache

// WriteCacheJSON writes a cache sweep as JSON through the vfs seam.
var WriteCacheJSON = report.WriteCacheJSON

// PlanSweep is the query-planner benchmark result set: every pattern timed
// under the naive, cost-based, and worst-case-optimal planners.
type PlanSweep = report.PlanSweep

// PlanPatterns names the benchable planner patterns.
var PlanPatterns = report.PlanPatterns

// RunPlanSweep times each pattern under all three planners on one seeded
// hub-skewed graph, verifying the planners agree on the answer first.
var RunPlanSweep = report.RunPlanSweep

// RenderPlan prints a plan sweep.
var RenderPlan = report.RenderPlan

// WritePlanJSON writes a plan sweep as JSON through the vfs seam.
var WritePlanJSON = report.WritePlanJSON

// Observability (see internal/obs and DESIGN.md "Observability contract").
type (
	// Registry hands out named metric collectors; wire one into an engine
	// via Options.Metrics. A nil *Registry is "metrics off".
	Registry = obs.Registry
	// Trace accumulates the spans and counters of one query execution; a
	// nil *Trace is "tracing off".
	Trace = obs.Trace
	// SlowLog appends slow-query records through the vfs seam; a nil
	// *SlowLog observes nothing.
	SlowLog = obs.SlowLog
	// ContextQuerier is a Querier whose dispatch accepts a traced context.
	ContextQuerier = engine.ContextQuerier
)

var (
	// NewRegistry returns an empty metrics registry.
	NewRegistry = obs.NewRegistry
	// NewTrace starts a trace named after the work it times.
	NewTrace = obs.New
	// WithTrace returns a context carrying the trace.
	WithTrace = obs.WithTrace
	// TraceFromContext returns the context's trace (nil when tracing is off).
	TraceFromContext = obs.FromContext
	// OpenSlowLog opens (appending to) a slow-query log through the vfs seam.
	OpenSlowLog = obs.OpenSlowLog
	// QueryContext dispatches a statement to a Querier, threading the
	// context's trace when the engine supports it.
	QueryContext = engine.QueryContext
)

// TraceSweep is the traced-query benchmark report.
type TraceSweep = report.TraceSweep

// RunTraceSweep runs a traced read-only workload in each engine's query
// language and reports per-query spans and counter deltas.
var RunTraceSweep = report.RunTraceSweep

// RenderTrace prints a trace sweep.
var RenderTrace = report.RenderTrace

// WriteTraceJSON writes a trace sweep as JSON through the vfs seam.
var WriteTraceJSON = report.WriteTraceJSON

// PastLanguages returns the executable Table VIII profiles.
func PastLanguages() []*PastLanguage { return pastql.Languages() }

// Interchange formats (the survey notes no standard exists; these are the
// formats it names).
var (
	// WriteGraphML exports a graph as GraphML.
	WriteGraphML = format.WriteGraphML
	// ReadGraphML imports GraphML into any Loader.
	ReadGraphML = format.ReadGraphML
	// WriteCSV exports node and edge CSV sections.
	WriteCSV = format.WriteCSV
	// ReadCSV imports CSV sections into any Loader.
	ReadCSV = format.ReadCSV
	// WriteNTriples exports statements as N-Triples.
	WriteNTriples = format.WriteNTriples
	// ReadNTriples imports N-Triples statements.
	ReadNTriples = format.ReadNTriples
)
