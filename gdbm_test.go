package gdbm_test

import (
	"testing"

	"gdbm"
	"gdbm/internal/engine/capability"
)

func TestPublicOpenAllEngines(t *testing.T) {
	names := gdbm.Engines()
	if len(names) != 9 {
		t.Fatalf("engines = %v", names)
	}
	for _, name := range names {
		opts := gdbm.Options{}
		if capability.NeedsDir(name) {
			opts.Dir = t.TempDir()
		}
		e, err := gdbm.Open(name, opts)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		if e.Name() != name || e.SurveyRow() == "" {
			t.Errorf("%s identity: name=%s row=%s", name, e.Name(), e.SurveyRow())
		}
		e.Close()
	}
}

func TestPublicQuickstartFlow(t *testing.T) {
	db, err := gdbm.Open("neograph", gdbm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	api := db.(gdbm.GraphAPI)
	ada, _ := api.AddNode("Person", gdbm.Props("name", "ada", "age", 36))
	bob, _ := api.AddNode("Person", gdbm.Props("name", "bob"))
	if _, err := api.AddEdge("knows", ada, bob, nil); err != nil {
		t.Fatal(err)
	}
	res, err := db.(gdbm.Querier).Query(`MATCH (a)-[:knows]->(b) RETURN b.name AS n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsString(); n != "bob" {
		t.Errorf("n = %q", n)
	}
	// Algorithms over the public surface.
	ok, err := gdbm.Adjacent(api, ada, bob, gdbm.Out)
	if err != nil || !ok {
		t.Errorf("Adjacent: %v %v", ok, err)
	}
	p, err := gdbm.ShortestPath(api, ada, bob, gdbm.Out)
	if err != nil || p.Len() != 1 {
		t.Errorf("ShortestPath: %v %v", p, err)
	}
	avg, err := gdbm.AggregateNodeProp(api, "Person", "age", gdbm.AggAvg)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := avg.AsFloat(); f != 36 {
		t.Errorf("avg = %v", avg)
	}
}

func TestPublicGenerateAndTables(t *testing.T) {
	db, err := gdbm.Open("neograph", gdbm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ids, err := gdbm.Generate(gdbm.GenSpec{Kind: gdbm.RMAT, Nodes: 100, EdgesPerNode: 2, Seed: 1}, db.(gdbm.Loader))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 100 {
		t.Fatalf("ids = %d", len(ids))
	}

	var engines []gdbm.Engine
	for _, name := range gdbm.Engines() {
		opts := gdbm.Options{}
		if capability.NeedsDir(name) {
			opts.Dir = t.TempDir()
		}
		e, err := gdbm.Open(name, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		engines = append(engines, e)
	}
	tables, err := gdbm.Tables(engines)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 8 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tb := range tables {
		if ms := gdbm.DiffWithPaper(tb); len(ms) != 0 {
			t.Errorf("table %s mismatches: %v", tb.ID, ms)
		}
	}
}

func TestPublicPathExprAndPattern(t *testing.T) {
	db, _ := gdbm.Open("neograph", gdbm.Options{})
	defer db.Close()
	api := db.(gdbm.GraphAPI)
	a, _ := api.AddNode("N", nil)
	b, _ := api.AddNode("N", nil)
	c, _ := api.AddNode("N", nil)
	api.AddEdge("x", a, b, nil)
	api.AddEdge("y", b, c, nil)

	pe, err := gdbm.CompilePathExpr("x/y")
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := pe.Eval(api, a)
	if err != nil || len(nodes) != 1 || nodes[0] != c {
		t.Errorf("Eval: %v %v", nodes, err)
	}

	pat, err := gdbm.NewPattern(
		[]gdbm.PatternNode{{Var: "u"}, {Var: "v"}},
		[]gdbm.PatternEdge{{From: 0, To: 1, Label: "x"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := gdbm.FindMatches(api, pat, 0)
	if err != nil || len(ms) != 1 {
		t.Errorf("FindMatches: %v %v", ms, err)
	}
}

func TestPublicPastLanguages(t *testing.T) {
	langs := gdbm.PastLanguages()
	if len(langs) != 6 {
		t.Fatalf("past languages = %d", len(langs))
	}
}
