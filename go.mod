module gdbm

go 1.22
