// Package adj provides succinct, immutable adjacency snapshots for the
// mutable graph stores. A Snapshot is a frozen point-in-time rendering of a
// store into fixed-size blocks: node and edge records live in dense
// per-block arrays addressed through a membership directory, and each
// node's incident edge lists are CSR rows of delta-encoded uvarints. The
// companion Versioned type (versioned.go) publishes one Snapshot per stable
// graph epoch with copy-on-write block reuse, so acquiring the current
// snapshot is O(1) when the store is quiescent and proportional only to the
// mutated blocks otherwise.
//
// Snapshots are deeply immutable once built: readers share blocks across
// versions without synchronization, and the race detector sees no writes.
// Property maps inside the records are shared with the owning store, which
// is safe because every store in this repository replaces (never mutates)
// a record's map on SetNodeProp/SetEdgeProp — the copy-on-write property
// discipline pinned by the concurrency suite.
//
// Enumeration order is deterministic: Nodes, Edges and Neighbors yield
// ascending IDs (neighbor rows are sorted by edge ID at build time). This
// is the CSR data organization of the "Demystifying Graph Databases"
// survey, with the bitmap directory variant matching DEX's compressed
// bitmap indices (see directory.go).
package adj

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"gdbm/internal/model"
)

// Blocks cover blockSize consecutive IDs; block b holds IDs
// [b<<blockShift, (b+1)<<blockShift). ID 0 is never valid, so slot 0 of
// block 0 is permanently vacant.
const (
	blockShift = 9
	blockSize  = 1 << blockShift
	blockMask  = blockSize - 1
)

// Layout selects the per-block membership directory encoding.
type Layout uint8

const (
	// LayoutVarint stores present local IDs as a sorted array searched by
	// binary search — compact for sparse blocks.
	LayoutVarint Layout = iota
	// LayoutBitmap stores presence as a 512-bit bitmap ranked by popcount —
	// the DEX-style variant bitmapdb selects.
	LayoutBitmap
)

// rows is a CSR over the records of one block: row i spans
// buf[offs[i]:offs[i+1]] and encodes [uvarint degree] followed by the
// incident edge IDs in ascending order as uvarint deltas (the first delta
// is from zero, i.e. absolute).
type rows struct {
	offs []uint32
	buf  []byte
}

func (r rows) degree(i int) int {
	d, _ := binary.Uvarint(r.buf[r.offs[i]:r.offs[i+1]])
	return int(d)
}

// forEach decodes row i, calling fn for each edge ID until fn returns
// false; it reports whether the full row was consumed.
func (r rows) forEach(i int, fn func(model.EdgeID) bool) bool {
	buf := r.buf[r.offs[i]:r.offs[i+1]]
	d, n := binary.Uvarint(buf)
	buf = buf[n:]
	prev := uint64(0)
	for k := uint64(0); k < d; k++ {
		delta, n := binary.Uvarint(buf)
		buf = buf[n:]
		prev += delta
		if !fn(model.EdgeID(prev)) {
			return false
		}
	}
	return true
}

// nodeBlock holds the node records of one ID block plus both CSR
// directions; edgeBlock holds edge records only (adjacency lives with the
// endpoint nodes).
type nodeBlock struct {
	dir   directory
	nodes []model.Node // dense, ascending ID
	out   rows
	in    rows
}

type edgeBlock struct {
	dir   directory
	edges []model.Edge // dense, ascending ID
}

// Snapshot is an immutable model.Graph rendered from a store at one stable
// epoch. It is safe for unsynchronized use by any number of readers.
type Snapshot struct {
	epoch  uint64
	layout Layout
	nb     []*nodeBlock // nil entries are fully vacant blocks
	eb     []*edgeBlock
	order  int
	size   int
	pins   atomic.Int64
}

// Epoch returns the stable store epoch this snapshot renders.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Pins returns the number of outstanding (unreleased) pins — observability
// for the release-discipline tests; the snapshot itself is reclaimed by
// the garbage collector once unpublished and unpinned.
func (s *Snapshot) Pins() int64 { return s.pins.Load() }

// Pin records a reader reference and returns its release. The release is
// idempotent, per the model.ReleaseFunc contract.
func (s *Snapshot) Pin() model.ReleaseFunc {
	s.pins.Add(1)
	var once sync.Once
	return func() { once.Do(func() { s.pins.Add(-1) }) }
}

func (s *Snapshot) nodeAt(id model.NodeID) (*model.Node, bool) {
	if id == 0 {
		return nil, false
	}
	b := uint64(id) >> blockShift
	if b >= uint64(len(s.nb)) || s.nb[b] == nil {
		return nil, false
	}
	blk := s.nb[b]
	slot, ok := blk.dir.rank(uint32(uint64(id) & blockMask))
	if !ok {
		return nil, false
	}
	return &blk.nodes[slot], true
}

func (s *Snapshot) edgeAt(id model.EdgeID) (*model.Edge, bool) {
	if id == 0 {
		return nil, false
	}
	b := uint64(id) >> blockShift
	if b >= uint64(len(s.eb)) || s.eb[b] == nil {
		return nil, false
	}
	blk := s.eb[b]
	slot, ok := blk.dir.rank(uint32(uint64(id) & blockMask))
	if !ok {
		return nil, false
	}
	return &blk.edges[slot], true
}

// Order returns the number of nodes.
func (s *Snapshot) Order() int { return s.order }

// Size returns the number of edges.
func (s *Snapshot) Size() int { return s.size }

// Node returns the node record for id.
func (s *Snapshot) Node(id model.NodeID) (model.Node, error) {
	n, ok := s.nodeAt(id)
	if !ok {
		return model.Node{}, model.NodeNotFound(id)
	}
	return *n, nil
}

// Edge returns the edge record for id.
func (s *Snapshot) Edge(id model.EdgeID) (model.Edge, error) {
	e, ok := s.edgeAt(id)
	if !ok {
		return model.Edge{}, model.EdgeNotFound(id)
	}
	return *e, nil
}

// Nodes calls fn for every node in ascending ID order.
func (s *Snapshot) Nodes(fn func(model.Node) bool) error {
	for _, blk := range s.nb {
		if blk == nil {
			continue
		}
		for i := range blk.nodes {
			if !fn(blk.nodes[i]) {
				return nil
			}
		}
	}
	return nil
}

// Edges calls fn for every edge in ascending ID order.
func (s *Snapshot) Edges(fn func(model.Edge) bool) error {
	for _, blk := range s.eb {
		if blk == nil {
			continue
		}
		for i := range blk.edges {
			if !fn(blk.edges[i]) {
				return nil
			}
		}
	}
	return nil
}

// Neighbors calls fn for each incident edge of id in the given direction,
// out-rows before in-rows, each in ascending edge-ID order. A self-loop is
// visited once per direction, matching the live stores.
func (s *Snapshot) Neighbors(id model.NodeID, dir model.Direction, fn func(model.Edge, model.Node) bool) error {
	if id == 0 {
		return model.NodeNotFound(id)
	}
	b := uint64(id) >> blockShift
	if b >= uint64(len(s.nb)) || s.nb[b] == nil {
		return model.NodeNotFound(id)
	}
	blk := s.nb[b]
	slot, ok := blk.dir.rank(uint32(uint64(id) & blockMask))
	if !ok {
		return model.NodeNotFound(id)
	}
	emit := func(eid model.EdgeID, out bool) bool {
		e, ok := s.edgeAt(eid)
		if !ok {
			return true // unreachable on a consistent render; skip defensively
		}
		far := e.From
		if out {
			far = e.To
		}
		n, ok := s.nodeAt(far)
		if !ok {
			return true
		}
		return fn(*e, *n)
	}
	if dir == model.Out || dir == model.Both {
		if !blk.out.forEach(slot, func(eid model.EdgeID) bool { return emit(eid, true) }) {
			return nil
		}
	}
	if dir == model.In || dir == model.Both {
		if !blk.in.forEach(slot, func(eid model.EdgeID) bool { return emit(eid, false) }) {
			return nil
		}
	}
	return nil
}

// SortedNeighborIDs implements model.SortedAdjacency: the far-endpoint IDs
// of id's incident edges in dir with the given label ("" = any), ascending,
// one entry per matching edge. CSR rows are ordered by edge ID, not
// neighbor ID, so the collected endpoints are sorted here — still without
// touching node records. Multiplicity matches Neighbors exactly: parallel
// edges repeat, and a self-loop under Both appears once per direction.
func (s *Snapshot) SortedNeighborIDs(id model.NodeID, dir model.Direction, label string) ([]model.NodeID, error) {
	if id == 0 {
		return nil, model.NodeNotFound(id)
	}
	b := uint64(id) >> blockShift
	if b >= uint64(len(s.nb)) || s.nb[b] == nil {
		return nil, model.NodeNotFound(id)
	}
	blk := s.nb[b]
	slot, ok := blk.dir.rank(uint32(uint64(id) & blockMask))
	if !ok {
		return nil, model.NodeNotFound(id)
	}
	var ids []model.NodeID
	collect := func(eid model.EdgeID, out bool) bool {
		e, ok := s.edgeAt(eid)
		if !ok {
			return true // unreachable on a consistent render; skip defensively
		}
		if label != "" && e.Label != label {
			return true
		}
		far := e.From
		if out {
			far = e.To
		}
		if _, ok := s.nodeAt(far); !ok {
			return true
		}
		ids = append(ids, far)
		return true
	}
	if dir == model.Out || dir == model.Both {
		blk.out.forEach(slot, func(eid model.EdgeID) bool { return collect(eid, true) })
	}
	if dir == model.In || dir == model.Both {
		blk.in.forEach(slot, func(eid model.EdgeID) bool { return collect(eid, false) })
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Degree returns the incident edge count in the given direction, decoded
// from a single uvarint per direction — O(1) in the row length.
func (s *Snapshot) Degree(id model.NodeID, dir model.Direction) (int, error) {
	if id == 0 {
		return 0, model.NodeNotFound(id)
	}
	b := uint64(id) >> blockShift
	if b >= uint64(len(s.nb)) || s.nb[b] == nil {
		return 0, model.NodeNotFound(id)
	}
	blk := s.nb[b]
	slot, ok := blk.dir.rank(uint32(uint64(id) & blockMask))
	if !ok {
		return 0, model.NodeNotFound(id)
	}
	switch dir {
	case model.Out:
		return blk.out.degree(slot), nil
	case model.In:
		return blk.in.degree(slot), nil
	default:
		return blk.out.degree(slot) + blk.in.degree(slot), nil
	}
}
