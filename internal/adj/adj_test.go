package adj

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"gdbm/internal/model"
)

// mapSource is a toy Source over plain maps, standing in for a store with
// its lock held.
type mapSource struct {
	nodes map[model.NodeID]model.Node
	edges map[model.EdgeID]model.Edge
	maxN  model.NodeID
	maxE  model.EdgeID
}

func newMapSource() *mapSource {
	return &mapSource{
		nodes: map[model.NodeID]model.Node{},
		edges: map[model.EdgeID]model.Edge{},
	}
}

func (s *mapSource) addNode(label string) model.NodeID {
	s.maxN++
	s.nodes[s.maxN] = model.Node{ID: s.maxN, Label: label}
	return s.maxN
}

func (s *mapSource) addEdge(label string, from, to model.NodeID) model.EdgeID {
	s.maxE++
	s.edges[s.maxE] = model.Edge{ID: s.maxE, Label: label, From: from, To: to}
	return s.maxE
}

func (s *mapSource) MaxNodeID() (model.NodeID, error) { return s.maxN, nil }
func (s *mapSource) MaxEdgeID() (model.EdgeID, error) { return s.maxE, nil }

func (s *mapSource) NodeByID(id model.NodeID) (model.Node, bool, error) {
	n, ok := s.nodes[id]
	return n, ok, nil
}

func (s *mapSource) EdgeByID(id model.EdgeID) (model.Edge, bool, error) {
	e, ok := s.edges[id]
	return e, ok, nil
}

func (s *mapSource) OutEdges(id model.NodeID) ([]model.EdgeID, error) {
	var out []model.EdgeID
	for eid, e := range s.edges {
		if e.From == id {
			out = append(out, eid)
		}
	}
	return out, nil
}

func (s *mapSource) InEdges(id model.NodeID) ([]model.EdgeID, error) {
	var in []model.EdgeID
	for eid, e := range s.edges {
		if e.To == id {
			in = append(in, eid)
		}
	}
	return in, nil
}

// dump renders a snapshot into a canonical string: every record plus every
// adjacency row, in enumeration order.
func dump(t *testing.T, g model.Graph) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "order=%d size=%d\n", g.Order(), g.Size())
	err := g.Nodes(func(n model.Node) bool {
		fmt.Fprintf(&b, "n%d:%s", n.ID, n.Label)
		for _, dir := range []model.Direction{model.Out, model.In, model.Both} {
			d, err := g.Degree(n.ID, dir)
			if err != nil {
				t.Fatalf("Degree(%d,%v): %v", n.ID, dir, err)
			}
			fmt.Fprintf(&b, " %s=%d[", dir, d)
			err = g.Neighbors(n.ID, dir, func(e model.Edge, far model.Node) bool {
				fmt.Fprintf(&b, " e%d>n%d", e.ID, far.ID)
				return true
			})
			if err != nil {
				t.Fatalf("Neighbors(%d,%v): %v", n.ID, dir, err)
			}
			b.WriteString(" ]")
		}
		b.WriteString("\n")
		return true
	})
	if err != nil {
		t.Fatalf("Nodes: %v", err)
	}
	err = g.Edges(func(e model.Edge) bool {
		fmt.Fprintf(&b, "e%d:%s %d->%d\n", e.ID, e.Label, e.From, e.To)
		return true
	})
	if err != nil {
		t.Fatalf("Edges: %v", err)
	}
	return b.String()
}

func build(t *testing.T, src Source, layout Layout) *Snapshot {
	t.Helper()
	s, err := Build(src, layout, 0, nil, nil, nil, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

func TestSnapshotBasics(t *testing.T) {
	src := newMapSource()
	a := src.addNode("a")
	bn := src.addNode("b")
	c := src.addNode("c")
	ab := src.addEdge("ab", a, bn)
	bc := src.addEdge("bc", bn, c)
	loop := src.addEdge("loop", c, c)

	s := build(t, src, LayoutVarint)
	if s.Order() != 3 || s.Size() != 3 {
		t.Fatalf("Order/Size = %d/%d, want 3/3", s.Order(), s.Size())
	}
	n, err := s.Node(bn)
	if err != nil || n.Label != "b" {
		t.Fatalf("Node(b) = %+v, %v", n, err)
	}
	if _, err := s.Node(99); err == nil {
		t.Fatal("Node(99) should not exist")
	}
	e, err := s.Edge(ab)
	if err != nil || e.From != a || e.To != bn {
		t.Fatalf("Edge(ab) = %+v, %v", e, err)
	}
	if _, err := s.Edge(99); err == nil {
		t.Fatal("Edge(99) should not exist")
	}
	if err := s.Neighbors(99, model.Both, func(model.Edge, model.Node) bool { return true }); err == nil {
		t.Fatal("Neighbors(99) should fail")
	}
	if _, err := s.Degree(99, model.Both); err == nil {
		t.Fatal("Degree(99) should fail")
	}

	// b: out {bc}, in {ab}.
	for _, tc := range []struct {
		dir  model.Direction
		want int
	}{{model.Out, 1}, {model.In, 1}, {model.Both, 2}} {
		d, err := s.Degree(bn, tc.dir)
		if err != nil || d != tc.want {
			t.Fatalf("Degree(b,%v) = %d, %v; want %d", tc.dir, d, err, tc.want)
		}
	}
	var hops []string
	if err := s.Neighbors(bn, model.Both, func(e model.Edge, far model.Node) bool {
		hops = append(hops, fmt.Sprintf("e%d>n%d", e.ID, far.ID))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// Out rows first (bc -> c), then in rows (ab's far end is a).
	if got := strings.Join(hops, " "); got != fmt.Sprintf("e%d>n%d e%d>n%d", bc, c, ab, a) {
		t.Fatalf("Neighbors(b, Both) order = %q", got)
	}

	// The self-loop is seen once per direction.
	d, err := s.Degree(c, model.Both)
	if err != nil || d != 3 { // in: bc + loop, out: loop
		t.Fatalf("Degree(c, Both) = %d, %v; want 3", d, err)
	}
	seen := 0
	if err := s.Neighbors(c, model.Both, func(e model.Edge, _ model.Node) bool {
		if e.ID == loop {
			seen++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("self-loop visited %d times under Both, want 2", seen)
	}

	// Early termination stops enumeration without error.
	calls := 0
	if err := s.Nodes(func(model.Node) bool { calls++; return false }); err != nil || calls != 1 {
		t.Fatalf("Nodes early stop: calls=%d err=%v", calls, err)
	}
}

func TestLayoutsAgree(t *testing.T) {
	src := newMapSource()
	const n = 700 // spans two blocks
	ids := make([]model.NodeID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, src.addNode(fmt.Sprintf("n%d", i)))
	}
	for i := 0; i < n; i++ {
		src.addEdge("e", ids[i], ids[(i*7+3)%n])
	}
	// Punch holes so the directories are non-trivial.
	for i := 0; i < n; i += 13 {
		delete(src.nodes, ids[i])
	}
	for eid, e := range src.edges {
		if _, ok := src.nodes[e.From]; !ok {
			delete(src.edges, eid)
			continue
		}
		if _, ok := src.nodes[e.To]; !ok {
			delete(src.edges, eid)
		}
	}
	v := dump(t, build(t, src, LayoutVarint))
	b := dump(t, build(t, src, LayoutBitmap))
	if v != b {
		t.Fatalf("layouts disagree:\nvarint:\n%s\nbitmap:\n%s", v, b)
	}
	if !strings.Contains(v, "order=") {
		t.Fatal("dump is empty")
	}
}

func TestVersionedReuseAndInvalidation(t *testing.T) {
	src := newMapSource()
	for i := 0; i < 1200; i++ { // three node blocks
		src.addNode("x")
	}
	src.addEdge("e", 1, 600)

	var v Versioned
	epoch := uint64(0)
	s1, rel1, err := v.Pin(epoch, src)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Order() != 1200 || s1.Size() != 1 {
		t.Fatalf("s1 order/size = %d/%d", s1.Order(), s1.Size())
	}

	// A mutation in block 0 must rebuild exactly that node block.
	src.nodes[5] = model.Node{ID: 5, Label: "renamed"}
	epoch += 2
	v.MarkNode(5)
	s2, rel2, err := v.Pin(epoch, src)
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s1 {
		t.Fatal("stale snapshot re-pinned after mutation")
	}
	if s2.nb[0] == s1.nb[0] {
		t.Fatal("dirty node block 0 was reused")
	}
	if s2.nb[1] != s1.nb[1] || s2.nb[2] != s1.nb[2] {
		t.Fatal("clean node blocks were not shared")
	}
	if s2.eb[0] != s1.eb[0] {
		t.Fatal("clean edge block was not shared")
	}
	n, err := s2.Node(5)
	if err != nil || n.Label != "renamed" {
		t.Fatalf("rebuilt block misses mutation: %+v, %v", n, err)
	}
	if old, err := s1.Node(5); err != nil || old.Label != "x" {
		t.Fatalf("pinned old snapshot changed: %+v, %v", old, err)
	}

	// TryPin: hit at the current epoch (success == non-nil release), miss
	// on stale or odd epochs.
	if s, rel := v.TryPin(epoch); rel == nil || s != s2 {
		t.Fatal("TryPin missed the current epoch")
	} else {
		rel()
	}
	if _, rel := v.TryPin(epoch + 2); rel != nil {
		t.Fatal("TryPin hit a stale epoch")
	}
	if _, rel := v.TryPin(epoch + 1); rel != nil {
		t.Fatal("TryPin hit an odd (mid-mutation) epoch")
	}

	// MarkAll forces a full rebuild: no block sharing.
	v.MarkAll()
	epoch += 2
	s3, rel3, err := v.Pin(epoch, src)
	if err != nil {
		t.Fatal(err)
	}
	if s3.nb[1] == s2.nb[1] {
		t.Fatal("MarkAll did not invalidate clean blocks")
	}

	// Release discipline: idempotent, counts reach zero.
	rel1()
	rel1()
	rel2()
	rel3()
	for _, s := range []*Snapshot{s1, s2, s3} {
		if p := s.Pins(); p != 0 {
			t.Fatalf("pins = %d after release, want 0", p)
		}
	}
}

func TestVersionedLayoutSwitch(t *testing.T) {
	src := newMapSource()
	src.addNode("a")
	var v Versioned
	s1, rel1, err := v.Pin(0, src)
	if err != nil {
		t.Fatal(err)
	}
	rel1()
	v.SetLayout(LayoutBitmap)
	// Same epoch, new layout: the published varint snapshot must not be
	// re-pinned; a bitmap render replaces it.
	s2, rel2, err := v.Pin(0, src)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if s1 == s2 || s2.layout != LayoutBitmap {
		t.Fatalf("layout switch did not re-render (s1==s2: %v, layout=%d)", s1 == s2, s2.layout)
	}
}

func TestDegreeMatchesEnumeration(t *testing.T) {
	src := newMapSource()
	const n = 300
	for i := 0; i < n; i++ {
		src.addNode("x")
	}
	for i := 0; i < 4*n; i++ {
		src.addEdge("e", model.NodeID(i%n+1), model.NodeID((i*31+7)%n+1))
	}
	s := build(t, src, LayoutVarint)
	for id := model.NodeID(1); id <= n; id++ {
		for _, dir := range []model.Direction{model.Out, model.In, model.Both} {
			d, err := s.Degree(id, dir)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			var last model.EdgeID
			lastOut := true
			if err := s.Neighbors(id, dir, func(e model.Edge, _ model.Node) bool {
				isOut := e.From == id && (dir == model.Out || (dir == model.Both && count < mustDegree(t, s, id, model.Out)))
				if count > 0 && isOut == lastOut && e.ID < last {
					t.Fatalf("node %d dir %v: edge IDs not ascending within a row", id, dir)
				}
				last, lastOut = e.ID, isOut
				count++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if count != d {
				t.Fatalf("node %d dir %v: degree %d but %d neighbors", id, dir, d, count)
			}
		}
	}
}

func mustDegree(t *testing.T, g model.Graph, id model.NodeID, dir model.Direction) int {
	t.Helper()
	d, err := g.Degree(id, dir)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildEmpty(t *testing.T) {
	s := build(t, newMapSource(), LayoutVarint)
	if s.Order() != 0 || s.Size() != 0 {
		t.Fatalf("empty build: order=%d size=%d", s.Order(), s.Size())
	}
	if err := s.Nodes(func(model.Node) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Node(1); err == nil {
		t.Fatal("Node(1) on empty snapshot should fail")
	}
}

func TestRowsRoundTrip(t *testing.T) {
	// Direct row codec check with adversarial ID spreads.
	sets := [][]model.EdgeID{
		{},
		{1},
		{1, 2, 3},
		{7, 700, 70000, 7000000},
		{5, 5, 9}, // duplicates survive (defensive; stores never produce them)
	}
	nodes := make([]model.Node, len(sets))
	for i := range nodes {
		nodes[i] = model.Node{ID: model.NodeID(i + 1)}
	}
	scratch := []model.EdgeID{}
	r, err := encodeRows(func(id model.NodeID) ([]model.EdgeID, error) {
		return sets[id-1], nil
	}, nodes, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range sets {
		if d := r.degree(i); d != len(want) {
			t.Fatalf("row %d degree = %d, want %d", i, d, len(want))
		}
		var got []model.EdgeID
		r.forEach(i, func(e model.EdgeID) bool { got = append(got, e); return true })
		sorted := append([]model.EdgeID(nil), want...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		if fmt.Sprint(got) != fmt.Sprint(sorted) {
			t.Fatalf("row %d = %v, want %v", i, got, sorted)
		}
	}
}

// TestSortedNeighborIDs checks the native sorted-adjacency capability
// against a reference collected through Neighbors: same IDs, same
// multiplicity (parallel edges, self-loops), ascending order, label filter
// applied, across both layouts and all directions.
func TestSortedNeighborIDs(t *testing.T) {
	src := newMapSource()
	a := src.addNode("X")
	b := src.addNode("X")
	c := src.addNode("X")
	src.addEdge("e", a, b)
	src.addEdge("e", a, b) // parallel
	src.addEdge("f", a, c)
	src.addEdge("e", c, a)
	src.addEdge("e", b, b) // self-loop
	for _, layout := range []Layout{LayoutVarint, LayoutBitmap} {
		s := build(t, src, layout)
		for id := a; id <= c; id++ {
			for _, dir := range []model.Direction{model.Out, model.In, model.Both} {
				for _, label := range []string{"", "e", "f", "ghost"} {
					got, err := s.SortedNeighborIDs(id, dir, label)
					if err != nil {
						t.Fatalf("SortedNeighborIDs(%d,%v,%q): %v", id, dir, label, err)
					}
					var want []model.NodeID
					err = s.Neighbors(id, dir, func(e model.Edge, far model.Node) bool {
						if label == "" || e.Label == label {
							want = append(want, far.ID)
						}
						return true
					})
					if err != nil {
						t.Fatal(err)
					}
					sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Errorf("layout %v node %d dir %v label %q: got %v want %v", layout, id, dir, label, got, want)
					}
					for i := 1; i < len(got); i++ {
						if got[i-1] > got[i] {
							t.Fatalf("unsorted: %v", got)
						}
					}
				}
			}
		}
		if _, err := s.SortedNeighborIDs(999, model.Out, ""); err == nil {
			t.Error("missing node should error")
		}
	}
}
