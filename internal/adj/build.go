package adj

import (
	"encoding/binary"
	"sort"

	"gdbm/internal/model"
)

// Source is the build-time view of a mutable store. Implementations are
// unlocked adapters: the caller (Versioned.Pin's contract) holds the
// store's writer-excluding lock once around the whole render, so Source
// methods must read the underlying structures without taking locks that
// would re-enter it.
//
// IDs are allocated densely from 1 and never reused, so MaxNodeID and
// MaxEdgeID are high-water marks; removed IDs appear as absent.
type Source interface {
	MaxNodeID() (model.NodeID, error)
	MaxEdgeID() (model.EdgeID, error)
	// NodeByID returns the record for id and whether it exists.
	NodeByID(id model.NodeID) (model.Node, bool, error)
	// EdgeByID returns the record for id and whether it exists.
	EdgeByID(id model.EdgeID) (model.Edge, bool, error)
	// OutEdges returns the IDs of edges whose From is id, in any order.
	// The returned slice is not retained or mutated by the builder.
	OutEdges(id model.NodeID) ([]model.EdgeID, error)
	// InEdges returns the IDs of edges whose To is id, in any order.
	InEdges(id model.NodeID) ([]model.EdgeID, error)
}

func blocksFor(max uint64) int {
	if max == 0 {
		return 0
	}
	return int(max>>blockShift) + 1
}

// Build renders a Snapshot of src at the given stable epoch. When prev is
// a snapshot of the same layout and full is false, blocks absent from the
// dirty sets are shared with prev instead of being re-rendered — the
// copy-on-write path that keeps re-rendering proportional to the mutated
// region rather than the graph.
func Build(src Source, layout Layout, epoch uint64, prev *Snapshot, dirtyN, dirtyE map[uint32]struct{}, full bool) (*Snapshot, error) {
	maxN, err := src.MaxNodeID()
	if err != nil {
		return nil, err
	}
	maxE, err := src.MaxEdgeID()
	if err != nil {
		return nil, err
	}
	reuse := prev != nil && !full && prev.layout == layout
	s := &Snapshot{
		epoch:  epoch,
		layout: layout,
		nb:     make([]*nodeBlock, blocksFor(uint64(maxN))),
		eb:     make([]*edgeBlock, blocksFor(uint64(maxE))),
	}
	for b := range s.nb {
		if reuse && b < len(prev.nb) {
			if _, dirty := dirtyN[uint32(b)]; !dirty {
				s.nb[b] = prev.nb[b]
				if s.nb[b] != nil {
					s.order += len(s.nb[b].nodes)
				}
				continue
			}
		}
		blk, err := buildNodeBlock(src, layout, uint32(b))
		if err != nil {
			return nil, err
		}
		s.nb[b] = blk
		if blk != nil {
			s.order += len(blk.nodes)
		}
	}
	for b := range s.eb {
		if reuse && b < len(prev.eb) {
			if _, dirty := dirtyE[uint32(b)]; !dirty {
				s.eb[b] = prev.eb[b]
				if s.eb[b] != nil {
					s.size += len(s.eb[b].edges)
				}
				continue
			}
		}
		blk, err := buildEdgeBlock(src, layout, uint32(b))
		if err != nil {
			return nil, err
		}
		s.eb[b] = blk
		if blk != nil {
			s.size += len(blk.edges)
		}
	}
	return s, nil
}

func buildNodeBlock(src Source, layout Layout, b uint32) (*nodeBlock, error) {
	lo := uint64(b) << blockShift
	var blk nodeBlock
	var locals []uint16
	for off := uint64(0); off < blockSize; off++ {
		id := lo + off
		if id == 0 {
			continue
		}
		n, ok, err := src.NodeByID(model.NodeID(id))
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		blk.nodes = append(blk.nodes, n)
		locals = append(locals, uint16(off))
	}
	if len(blk.nodes) == 0 {
		return nil, nil
	}
	blk.dir = makeDirectory(layout, locals)
	var err error
	scratch := make([]model.EdgeID, 0, 16)
	if blk.out, err = encodeRows(src.OutEdges, blk.nodes, &scratch); err != nil {
		return nil, err
	}
	if blk.in, err = encodeRows(src.InEdges, blk.nodes, &scratch); err != nil {
		return nil, err
	}
	return &blk, nil
}

func buildEdgeBlock(src Source, layout Layout, b uint32) (*edgeBlock, error) {
	lo := uint64(b) << blockShift
	var blk edgeBlock
	var locals []uint16
	for off := uint64(0); off < blockSize; off++ {
		id := lo + off
		if id == 0 {
			continue
		}
		e, ok, err := src.EdgeByID(model.EdgeID(id))
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		blk.edges = append(blk.edges, e)
		locals = append(locals, uint16(off))
	}
	if len(blk.edges) == 0 {
		return nil, nil
	}
	blk.dir = makeDirectory(layout, locals)
	return &blk, nil
}

// encodeRows builds one CSR direction: per node, the incident edge IDs
// sorted ascending and delta-uvarint encoded behind a uvarint degree.
// Sorting owns a scratch copy, never the Source's slice.
func encodeRows(incident func(model.NodeID) ([]model.EdgeID, error), nodes []model.Node, scratch *[]model.EdgeID) (rows, error) {
	r := rows{offs: make([]uint32, 1, len(nodes)+1)}
	for i := range nodes {
		eids, err := incident(nodes[i].ID)
		if err != nil {
			return rows{}, err
		}
		sc := append((*scratch)[:0], eids...)
		sort.Slice(sc, func(a, b int) bool { return sc[a] < sc[b] })
		r.buf = binary.AppendUvarint(r.buf, uint64(len(sc)))
		prev := uint64(0)
		for _, e := range sc {
			r.buf = binary.AppendUvarint(r.buf, uint64(e)-prev)
			prev = uint64(e)
		}
		r.offs = append(r.offs, uint32(len(r.buf)))
		*scratch = sc
	}
	return r, nil
}
