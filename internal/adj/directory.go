package adj

import (
	"math/bits"
	"sort"
)

// directory maps a local ID (0..blockSize-1) to its dense slot inside a
// block, in one of two layouts:
//
//   - varint: the present local IDs as a sorted []uint16, slot found by
//     binary search — compact when the block is sparse;
//   - bitmap: a 512-bit presence bitmap with per-word cumulative counts,
//     slot found by popcount rank — constant-time membership, the
//     DEX-style compressed-bitmap organization bitmapdb selects.
type directory struct {
	ids []uint16   // varint layout; nil under bitmap layout
	bm  *bitmapDir // bitmap layout; nil under varint layout
}

type bitmapDir struct {
	bits [blockSize / 64]uint64
	cum  [blockSize / 64]uint16 // number of set bits in words < i
}

// makeDirectory builds the directory for the given sorted local IDs.
func makeDirectory(layout Layout, locals []uint16) directory {
	if layout == LayoutBitmap {
		bm := &bitmapDir{}
		for _, l := range locals {
			bm.bits[l>>6] |= 1 << (l & 63)
		}
		n := uint16(0)
		for i := range bm.bits {
			bm.cum[i] = n
			n += uint16(bits.OnesCount64(bm.bits[i]))
		}
		return directory{bm: bm}
	}
	ids := make([]uint16, len(locals))
	copy(ids, locals)
	return directory{ids: ids}
}

// rank returns the dense slot of local and whether it is present.
func (d *directory) rank(local uint32) (int, bool) {
	if d.bm != nil {
		w, b := local>>6, local&63
		word := d.bm.bits[w]
		if word>>b&1 == 0 {
			return 0, false
		}
		return int(d.bm.cum[w]) + bits.OnesCount64(word&(1<<b-1)), true
	}
	i := sort.Search(len(d.ids), func(i int) bool { return uint32(d.ids[i]) >= local })
	if i < len(d.ids) && uint32(d.ids[i]) == local {
		return i, true
	}
	return 0, false
}
