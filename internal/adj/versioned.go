package adj

import (
	"sync"
	"sync/atomic"

	"gdbm/internal/model"
)

// Versioned publishes one immutable Snapshot per stable graph epoch with
// copy-on-write block reuse. The owning store embeds one next to its
// cache.Epoch and follows three rules:
//
//   - every mutation, while holding the store's exclusive lock, double-bumps
//     the epoch (odd mid-mutation, even at rest) and calls MarkNode/MarkEdge
//     for each record it touches (endpoints included for edge mutations);
//   - AcquireView first calls TryPin with the current epoch — the O(1) path
//     that succeeds whenever the published snapshot is already current — and
//     only on a miss takes the store's reader lock and calls Pin;
//   - Pin is called with writers excluded and epoch read under that
//     exclusion, so the render sees a quiescent store and the dirty sets
//     cannot grow mid-build.
//
// Mark and SetLayout take an internal mutex, so Versioned is safe even if
// an owner's locking discipline is looser than the rules above; the rules
// are what make TryPin's epoch comparison meaningful.
type Versioned struct {
	mu     sync.Mutex
	layout Layout
	cur    atomic.Pointer[Snapshot]
	dirtyN map[uint32]struct{}
	dirtyE map[uint32]struct{}
	full   bool
}

// SetLayout selects the directory layout for subsequently built snapshots
// and invalidates block reuse across the change. Call at construction
// time, before the store is shared.
func (v *Versioned) SetLayout(l Layout) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.layout != l {
		v.layout = l
		v.full = true
	}
}

// MarkNode records that the block holding node id must be re-rendered.
func (v *Versioned) MarkNode(id model.NodeID) {
	if id == 0 {
		return
	}
	v.mu.Lock()
	if v.dirtyN == nil {
		v.dirtyN = make(map[uint32]struct{})
	}
	v.dirtyN[uint32(uint64(id)>>blockShift)] = struct{}{}
	v.mu.Unlock()
}

// MarkEdge records that the block holding edge id must be re-rendered.
func (v *Versioned) MarkEdge(id model.EdgeID) {
	if id == 0 {
		return
	}
	v.mu.Lock()
	if v.dirtyE == nil {
		v.dirtyE = make(map[uint32]struct{})
	}
	v.dirtyE[uint32(uint64(id)>>blockShift)] = struct{}{}
	v.mu.Unlock()
}

// MarkAll invalidates every block — for wholesale store replacement
// (transaction rollback restores).
func (v *Versioned) MarkAll() {
	v.mu.Lock()
	v.full = true
	v.mu.Unlock()
}

// Current returns the published snapshot, if any — observability only.
func (v *Versioned) Current() *Snapshot { return v.cur.Load() }

// TryPin pins the published snapshot iff it renders exactly the given
// epoch and the epoch is stable (even). This is the lock-free O(1)
// acquire path: one atomic load, one pin. A nil release means the pin
// missed and a render is needed — success is exactly "release != nil",
// the shape the closeleak analyzer's nil-pardon understands.
func (v *Versioned) TryPin(epoch uint64) (*Snapshot, model.ReleaseFunc) {
	if epoch&1 == 1 { // mid-mutation; caller must serialize with the writer
		return nil, nil
	}
	s := v.cur.Load()
	if s == nil || s.epoch != epoch {
		return nil, nil
	}
	release := s.Pin()
	return s, release
}

// Pin returns a pinned snapshot of src at the given epoch, re-rendering
// dirty blocks (sharing clean ones with the previous snapshot) when the
// published version is stale. The caller must hold the store's
// writer-excluding lock and must have read epoch under it.
func (v *Versioned) Pin(epoch uint64, src Source) (*Snapshot, model.ReleaseFunc, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if s := v.cur.Load(); s != nil && s.epoch == epoch && s.layout == v.layout {
		return s, s.Pin(), nil
	}
	s, err := Build(src, v.layout, epoch, v.cur.Load(), v.dirtyN, v.dirtyE, v.full)
	if err != nil {
		return nil, nil, err
	}
	v.cur.Store(s)
	v.dirtyN, v.dirtyE, v.full = nil, nil, false
	return s, s.Pin(), nil
}
