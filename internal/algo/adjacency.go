// Package algo implements the survey's four classes of essential graph
// queries (Section IV): adjacency queries (node/edge adjacency,
// k-neighborhood), reachability queries (fixed-length paths, regular simple
// paths, shortest paths), pattern matching (subgraph isomorphism), and
// summarization (aggregates and graph properties). All functions operate on
// the model.Graph read interface, so every binary-edge engine shares them.
package algo

import (
	"context"

	"gdbm/internal/model"
)

// Adjacent reports whether a and b are neighbors: an edge exists between
// them in the given direction (from a's perspective).
func Adjacent(g model.Graph, a, b model.NodeID, dir model.Direction) (bool, error) {
	found := false
	err := g.Neighbors(a, dir, func(_ model.Edge, n model.Node) bool {
		if n.ID == b {
			found = true
			return false
		}
		return true
	})
	return found, err
}

// EdgesAdjacent reports whether two edges share an endpoint.
func EdgesAdjacent(g model.Graph, e1, e2 model.EdgeID) (bool, error) {
	a, err := g.Edge(e1)
	if err != nil {
		return false, err
	}
	b, err := g.Edge(e2)
	if err != nil {
		return false, err
	}
	return a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To, nil
}

// Neighborhood returns the k-neighborhood of start: every node reachable in
// at most k hops following dir, excluding start itself. The result is in
// BFS-discovery order.
func Neighborhood(g model.Graph, start model.NodeID, k int, dir model.Direction) ([]model.NodeID, error) {
	return NeighborhoodCtx(context.Background(), g, start, k, dir)
}

// NeighborhoodCtx is Neighborhood with cooperative cancellation: the level-
// synchronous expansion checks ctx between levels and returns ctx.Err()
// once the context is done, so server deadlines stop the walk mid-kernel.
func NeighborhoodCtx(ctx context.Context, g model.Graph, start model.NodeID, k int, dir model.Direction) ([]model.NodeID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, err := g.Node(start); err != nil {
		return nil, err
	}
	visited := map[model.NodeID]bool{start: true}
	frontier := []model.NodeID{start}
	var out []model.NodeID
	for depth := 0; depth < k && len(frontier) > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var next []model.NodeID
		for _, id := range frontier {
			err := g.Neighbors(id, dir, func(_ model.Edge, n model.Node) bool {
				if !visited[n.ID] {
					visited[n.ID] = true
					next = append(next, n.ID)
					out = append(out, n.ID)
				}
				return true
			})
			if err != nil {
				return nil, err
			}
		}
		frontier = next
	}
	return out, nil
}

// BFS walks the graph from start in direction dir, calling visit with each
// discovered node and its depth. Traversal stops when visit returns false.
func BFS(g model.Graph, start model.NodeID, dir model.Direction, visit func(id model.NodeID, depth int) bool) error {
	return BFSCtx(context.Background(), g, start, dir, visit)
}

// BFSCtx is BFS with cooperative cancellation: the walk checks ctx at every
// level boundary and returns ctx.Err() once the context is done, so a
// query whose deadline has passed stops burning CPU mid-traversal.
func BFSCtx(ctx context.Context, g model.Graph, start model.NodeID, dir model.Direction, visit func(id model.NodeID, depth int) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if _, err := g.Node(start); err != nil {
		return err
	}
	visited := map[model.NodeID]bool{start: true}
	type item struct {
		id    model.NodeID
		depth int
	}
	queue := []item{{start, 0}}
	depth := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth > depth {
			depth = cur.depth
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if !visit(cur.id, cur.depth) {
			return nil
		}
		err := g.Neighbors(cur.id, dir, func(_ model.Edge, n model.Node) bool {
			if !visited[n.ID] {
				visited[n.ID] = true
				queue = append(queue, item{n.ID, cur.depth + 1})
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}
