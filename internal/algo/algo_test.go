package algo

import (
	"errors"

	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

// chain builds a -> b -> c -> ... with label "next".
func chain(t *testing.T, n int) (*memgraph.Graph, []model.NodeID) {
	t.Helper()
	g := memgraph.New()
	ids := make([]model.NodeID, n)
	for i := range ids {
		ids[i], _ = g.AddNode("N", model.Props("i", i))
	}
	for i := 0; i+1 < n; i++ {
		if _, err := g.AddEdge("next", ids[i], ids[i+1], nil); err != nil {
			t.Fatal(err)
		}
	}
	return g, ids
}

func TestAdjacent(t *testing.T) {
	g, ids := chain(t, 3)
	ok, err := Adjacent(g, ids[0], ids[1], model.Out)
	if err != nil || !ok {
		t.Errorf("0->1 out: %v %v", ok, err)
	}
	ok, _ = Adjacent(g, ids[1], ids[0], model.Out)
	if ok {
		t.Error("1->0 out should be false")
	}
	ok, _ = Adjacent(g, ids[1], ids[0], model.Both)
	if !ok {
		t.Error("1-0 both should be true")
	}
	ok, _ = Adjacent(g, ids[0], ids[2], model.Both)
	if ok {
		t.Error("0-2 not adjacent")
	}
	if _, err := Adjacent(g, 999, ids[0], model.Out); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing node: %v", err)
	}
}

func TestEdgesAdjacent(t *testing.T) {
	g, _ := chain(t, 4) // edges 1: 0-1, 2: 1-2, 3: 2-3
	ok, err := EdgesAdjacent(g, 1, 2)
	if err != nil || !ok {
		t.Errorf("edges 1,2: %v %v", ok, err)
	}
	ok, _ = EdgesAdjacent(g, 1, 3)
	if ok {
		t.Error("edges 1,3 share no node")
	}
	if _, err := EdgesAdjacent(g, 1, 99); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing edge: %v", err)
	}
}

func TestNeighborhood(t *testing.T) {
	g, ids := chain(t, 6)
	n1, err := Neighborhood(g, ids[0], 1, model.Out)
	if err != nil || len(n1) != 1 || n1[0] != ids[1] {
		t.Errorf("1-hood = %v, %v", n1, err)
	}
	n3, _ := Neighborhood(g, ids[0], 3, model.Out)
	if len(n3) != 3 {
		t.Errorf("3-hood = %v", n3)
	}
	nAll, _ := Neighborhood(g, ids[2], 10, model.Both)
	if len(nAll) != 5 {
		t.Errorf("full both-hood size = %d", len(nAll))
	}
	if _, err := Neighborhood(g, 999, 1, model.Out); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing node: %v", err)
	}
	n0, _ := Neighborhood(g, ids[0], 0, model.Out)
	if len(n0) != 0 {
		t.Errorf("0-hood = %v", n0)
	}
}

func TestBFSDepths(t *testing.T) {
	g, ids := chain(t, 5)
	depths := map[model.NodeID]int{}
	if err := BFS(g, ids[0], model.Out, func(id model.NodeID, d int) bool {
		depths[id] = d
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if depths[id] != i {
			t.Errorf("depth[%d] = %d", i, depths[id])
		}
	}
	// Early stop.
	n := 0
	BFS(g, ids[0], model.Out, func(model.NodeID, int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestReachable(t *testing.T) {
	g, ids := chain(t, 4)
	ok, _ := Reachable(g, ids[0], ids[3], model.Out)
	if !ok {
		t.Error("0 should reach 3")
	}
	ok, _ = Reachable(g, ids[3], ids[0], model.Out)
	if ok {
		t.Error("3 should not reach 0 out-wards")
	}
	ok, _ = Reachable(g, ids[3], ids[0], model.Both)
	if !ok {
		t.Error("3 reaches 0 undirected")
	}
	ok, _ = Reachable(g, ids[2], ids[2], model.Out)
	if !ok {
		t.Error("self reachability")
	}
	if _, err := Reachable(g, 999, ids[0], model.Out); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing: %v", err)
	}
}

func TestFixedLengthPaths(t *testing.T) {
	// Diamond: a->b->d, a->c->d plus direct a->d.
	g := memgraph.New()
	a, _ := g.AddNode("N", nil)
	b, _ := g.AddNode("N", nil)
	c, _ := g.AddNode("N", nil)
	d, _ := g.AddNode("N", nil)
	g.AddEdge("e", a, b, nil)
	g.AddEdge("e", a, c, nil)
	g.AddEdge("e", b, d, nil)
	g.AddEdge("e", c, d, nil)
	g.AddEdge("e", a, d, nil)

	p2, err := FixedLengthPaths(g, a, d, 2, model.Out, 0)
	if err != nil || len(p2) != 2 {
		t.Fatalf("length-2 paths = %d, %v", len(p2), err)
	}
	p1, _ := FixedLengthPaths(g, a, d, 1, model.Out, 0)
	if len(p1) != 1 {
		t.Errorf("length-1 paths = %d", len(p1))
	}
	p3, _ := FixedLengthPaths(g, a, d, 3, model.Out, 0)
	if len(p3) != 0 {
		t.Errorf("length-3 paths = %d", len(p3))
	}
	// Limit.
	lim, _ := FixedLengthPaths(g, a, d, 2, model.Out, 1)
	if len(lim) != 1 {
		t.Errorf("limited paths = %d", len(lim))
	}
	// Path structure is consistent.
	for _, p := range p2 {
		if p.Len() != 2 || len(p.Nodes) != 3 || p.Nodes[0] != a || p.Nodes[2] != d {
			t.Errorf("bad path %+v", p)
		}
	}
}

func TestShortestPath(t *testing.T) {
	g, ids := chain(t, 5)
	// Add a shortcut 0 -> 3.
	g.AddEdge("skip", ids[0], ids[3], nil)
	p, err := ShortestPath(g, ids[0], ids[4], model.Out)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Errorf("shortest len = %d, want 2 (via shortcut)", p.Len())
	}
	if p.Nodes[0] != ids[0] || p.Nodes[len(p.Nodes)-1] != ids[4] {
		t.Errorf("endpoints wrong: %v", p.Nodes)
	}
	// Self path.
	self, _ := ShortestPath(g, ids[2], ids[2], model.Out)
	if self.Len() != 0 {
		t.Errorf("self path len = %d", self.Len())
	}
	// Disconnected.
	iso, _ := g.AddNode("iso", nil)
	if _, err := ShortestPath(g, ids[0], iso, model.Out); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("disconnected: %v", err)
	}
}

func TestWeightedShortestPath(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("N", nil)
	b, _ := g.AddNode("N", nil)
	c, _ := g.AddNode("N", nil)
	g.AddEdge("e", a, b, model.Props("w", 10.0))
	g.AddEdge("e", a, c, model.Props("w", 1.0))
	g.AddEdge("e", c, b, model.Props("w", 2.0))
	p, w, err := WeightedShortestPath(g, a, b, "w", model.Out)
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 {
		t.Errorf("weight = %v, want 3", w)
	}
	if p.Len() != 2 {
		t.Errorf("path len = %d", p.Len())
	}
	// Missing weights default to 1.
	g2, ids := chain(t, 3)
	_, w2, _ := WeightedShortestPath(g2, ids[0], ids[2], "w", model.Out)
	if w2 != 2 {
		t.Errorf("default weight total = %v", w2)
	}
	// Disconnected.
	iso, _ := g.AddNode("iso", nil)
	if _, _, err := WeightedShortestPath(g, a, iso, "w", model.Out); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("disconnected: %v", err)
	}
}

func TestDegreesStats(t *testing.T) {
	g, _ := chain(t, 4) // degrees (both): 1,2,2,1
	s, err := Degrees(g, model.Both)
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 1 || s.Max != 2 || s.Avg != 1.5 {
		t.Errorf("stats = %+v", s)
	}
	empty := memgraph.New()
	es, _ := Degrees(empty, model.Both)
	if es.Min != 0 || es.Max != 0 || es.Avg != 0 {
		t.Errorf("empty stats = %+v", es)
	}
}

func TestDistanceEccentricityDiameter(t *testing.T) {
	g, ids := chain(t, 5)
	d, err := Distance(g, ids[0], ids[3], model.Out)
	if err != nil || d != 3 {
		t.Errorf("distance = %d, %v", d, err)
	}
	ecc, _ := Eccentricity(g, ids[0], model.Out)
	if ecc != 4 {
		t.Errorf("eccentricity = %d", ecc)
	}
	dia, _ := Diameter(g, model.Both)
	if dia != 4 {
		t.Errorf("diameter = %d", dia)
	}
	diaOut, _ := Diameter(g, model.Out)
	if diaOut != 4 {
		t.Errorf("directed diameter = %d", diaOut)
	}
}

func TestAggregates(t *testing.T) {
	g := memgraph.New()
	g.AddNode("P", model.Props("age", 10))
	g.AddNode("P", model.Props("age", 20))
	g.AddNode("P", model.Props("age", 30))
	g.AddNode("Q", model.Props("age", 99))

	cases := []struct {
		kind AggKind
		want model.Value
	}{
		{AggCount, model.Int(3)},
		{AggSum, model.Float(60)},
		{AggAvg, model.Float(20)},
		{AggMin, model.Int(10)},
		{AggMax, model.Int(30)},
	}
	for _, c := range cases {
		got, err := AggregateNodeProp(g, "P", "age", c.kind)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(c.want) {
			t.Errorf("%v = %v, want %v", c.kind, got, c.want)
		}
	}
	// All labels.
	all, _ := AggregateNodeProp(g, "", "age", AggCount)
	if v, _ := all.AsInt(); v != 4 {
		t.Errorf("count all = %v", all)
	}
	// Avg of nothing is null.
	none, _ := AggregateNodeProp(g, "Ghost", "age", AggAvg)
	if !none.IsNull() {
		t.Errorf("avg of none = %v", none)
	}
}

func TestAggKindString(t *testing.T) {
	for k, want := range map[AggKind]string{AggCount: "count", AggSum: "sum", AggAvg: "avg", AggMin: "min", AggMax: "max"} {
		if k.String() != want {
			t.Errorf("%d: %s", k, k.String())
		}
	}
}
