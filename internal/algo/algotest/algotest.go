// Package algotest provides shared test helpers for the algorithm layer:
// random graph and path-expression generators (used by the sequential RPQ
// quick-checks and the parallel-kernel equivalence properties) and a
// fault-injecting graph wrapper for error-propagation tests. It lives
// outside the _test files so internal/algo and internal/algo/par can share
// one set of generators.
package algotest

import (
	"errors"
	"math/rand"
	"sync/atomic"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

// RandomDAG builds an acyclic graph: edges only go from lower to higher
// node index, labels drawn from {a, b, c}.
func RandomDAG(rng *rand.Rand, n, m int) (*memgraph.Graph, []model.NodeID) {
	g := memgraph.New()
	ids := make([]model.NodeID, n)
	for i := range ids {
		ids[i], _ = g.AddNode("V", nil)
	}
	labels := []string{"a", "b", "c"}
	for i := 0; i < m; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		g.AddEdge(labels[rng.Intn(len(labels))], ids[u], ids[v], nil)
	}
	return g, ids
}

// RandomExpr produces a small random path expression over {a, b, c}.
func RandomExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		return []string{"a", "b", "c"}[rng.Intn(3)]
	}
	switch rng.Intn(5) {
	case 0:
		return RandomExpr(rng, depth-1) + "/" + RandomExpr(rng, depth-1)
	case 1:
		return "(" + RandomExpr(rng, depth-1) + "|" + RandomExpr(rng, depth-1) + ")"
	case 2:
		return "(" + RandomExpr(rng, depth-1) + ")*"
	case 3:
		return "(" + RandomExpr(rng, depth-1) + ")?"
	default:
		return []string{"a", "b", "c"}[rng.Intn(3)]
	}
}

// RandomGraph builds a labeled, attributed, possibly cyclic multigraph:
// n nodes with labels from {P, Q} and an integer property "w", m edges
// with labels from {a, b, c}. Self-loops and parallel edges may occur.
func RandomGraph(rng *rand.Rand, n, m int) (*memgraph.Graph, []model.NodeID) {
	g := memgraph.New()
	ids := make([]model.NodeID, n)
	nlabels := []string{"P", "Q"}
	for i := range ids {
		ids[i], _ = g.AddNode(nlabels[rng.Intn(len(nlabels))],
			model.Properties{"w": model.Int(int64(rng.Intn(100)))})
	}
	elabels := []string{"a", "b", "c"}
	for i := 0; i < m; i++ {
		u := ids[rng.Intn(n)]
		v := ids[rng.Intn(n)]
		g.AddEdge(elabels[rng.Intn(len(elabels))], u, v, nil)
	}
	return g, ids
}

// ErrInjected is the sentinel failure returned by FlakyGraph once its call
// budget runs out.
var ErrInjected = errors.New("algotest: injected failure")

// FlakyGraph wraps a Graph and makes Nodes, Edges, Neighbors and Degree
// fail with ErrInjected after budget successful calls (budget 0 fails the
// first call). The countdown is atomic, so concurrent kernels can share
// one wrapper.
type FlakyGraph struct {
	model.Graph
	budget int64
}

// NewFlaky wraps g with a failure budget.
func NewFlaky(g model.Graph, budget int) *FlakyGraph {
	return &FlakyGraph{Graph: g, budget: int64(budget)}
}

func (f *FlakyGraph) tick() error {
	if atomic.AddInt64(&f.budget, -1) < 0 {
		return ErrInjected
	}
	return nil
}

// Nodes implements model.Graph, consuming one budget unit.
func (f *FlakyGraph) Nodes(fn func(model.Node) bool) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Graph.Nodes(fn)
}

// Edges implements model.Graph, consuming one budget unit.
func (f *FlakyGraph) Edges(fn func(model.Edge) bool) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Graph.Edges(fn)
}

// Neighbors implements model.Graph, consuming one budget unit.
func (f *FlakyGraph) Neighbors(id model.NodeID, dir model.Direction, fn func(model.Edge, model.Node) bool) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Graph.Neighbors(id, dir, fn)
}

// Degree implements model.Graph, consuming one budget unit.
func (f *FlakyGraph) Degree(id model.NodeID, dir model.Direction) (int, error) {
	if err := f.tick(); err != nil {
		return 0, err
	}
	return f.Graph.Degree(id, dir)
}

// FlakyMutable wraps a MutableGraph the way FlakyGraph wraps a Graph: the
// read methods (Nodes, Edges, Neighbors, Degree) consume the shared budget
// and fail with ErrInjected once it runs out, while mutations pass through
// untouched. Engine-layer tests use it to drive a mutation path to a
// precise read failure — e.g. the incident-edge scan inside a node removal.
type FlakyMutable struct {
	*FlakyGraph
	m model.MutableGraph
}

// NewFlakyMutable wraps g with a read-failure budget.
func NewFlakyMutable(g model.MutableGraph, budget int) *FlakyMutable {
	return &FlakyMutable{FlakyGraph: NewFlaky(g, budget), m: g}
}

// AddNode implements model.MutableGraph, passing through.
func (f *FlakyMutable) AddNode(label string, props model.Properties) (model.NodeID, error) {
	return f.m.AddNode(label, props)
}

// AddEdge implements model.MutableGraph, passing through.
func (f *FlakyMutable) AddEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	return f.m.AddEdge(label, from, to, props)
}

// RemoveNode implements model.MutableGraph, passing through.
func (f *FlakyMutable) RemoveNode(id model.NodeID) error { return f.m.RemoveNode(id) }

// RemoveEdge implements model.MutableGraph, passing through.
func (f *FlakyMutable) RemoveEdge(id model.EdgeID) error { return f.m.RemoveEdge(id) }

// SetNodeProp implements model.MutableGraph, passing through.
func (f *FlakyMutable) SetNodeProp(id model.NodeID, key string, v model.Value) error {
	return f.m.SetNodeProp(id, key, v)
}

// SetEdgeProp implements model.MutableGraph, passing through.
func (f *FlakyMutable) SetEdgeProp(id model.EdgeID, key string, v model.Value) error {
	return f.m.SetEdgeProp(id, key, v)
}

var _ model.MutableGraph = (*FlakyMutable)(nil)
