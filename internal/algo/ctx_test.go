package algo

import (
	"context"
	"errors"
	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

// cancelled returns a context that is already done.
func cancelled() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// grid builds a w×w lattice so every traversal has several levels and a
// healthy branching factor.
func grid(t *testing.T, w int) (*memgraph.Graph, []model.NodeID) {
	t.Helper()
	g := memgraph.New()
	ids := make([]model.NodeID, w*w)
	for i := range ids {
		ids[i], _ = g.AddNode("N", model.Props("i", i))
	}
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			if c+1 < w {
				if _, err := g.AddEdge("e", ids[r*w+c], ids[r*w+c+1], nil); err != nil {
					t.Fatal(err)
				}
			}
			if r+1 < w {
				if _, err := g.AddEdge("e", ids[r*w+c], ids[(r+1)*w+c], nil); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g, ids
}

// TestCancelledContextReturnsPromptly is the satellite regression test: every
// Ctx kernel entry point handed an already-cancelled context must return
// ctx.Err() without touching the graph (beyond at most an entry check), so a
// request whose deadline passed while queued burns no traversal CPU.
func TestCancelledContextReturnsPromptly(t *testing.T) {
	g, ids := grid(t, 8)
	ctx := cancelled()
	first, last := ids[0], ids[len(ids)-1]

	pat, err := NewPattern(
		[]PatternNode{{Var: "a"}, {Var: "b"}},
		[]PatternEdge{{From: 0, To: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}

	calls := map[string]func() error{
		"BFSCtx": func() error {
			return BFSCtx(ctx, g, first, model.Out, func(model.NodeID, int) bool { return true })
		},
		"NeighborhoodCtx": func() error {
			_, err := NeighborhoodCtx(ctx, g, first, 3, model.Out)
			return err
		},
		"ReachableCtx": func() error {
			_, err := ReachableCtx(ctx, g, first, last, model.Out)
			return err
		},
		"FixedLengthPathsCtx": func() error {
			_, err := FixedLengthPathsCtx(ctx, g, first, last, 14, model.Out, 0)
			return err
		},
		"ShortestPathCtx": func() error {
			_, err := ShortestPathCtx(ctx, g, first, last, model.Out)
			return err
		},
		"DistanceCtx": func() error {
			_, err := DistanceCtx(ctx, g, first, last, model.Out)
			return err
		},
		"DiameterCtx": func() error {
			_, err := DiameterCtx(ctx, g, model.Both)
			return err
		},
		"FindMatchesCtx": func() error {
			_, err := FindMatchesCtx(ctx, g, pat, 0)
			return err
		},
		"FindMatchesSeededCtx": func() error {
			_, err := FindMatchesSeededCtx(ctx, g, pat, 0, ids[:4])
			return err
		},
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled ctx: got %v, want context.Canceled", name, err)
		}
	}
}

// TestCancelMidTraversal cancels from inside the visit callback and checks
// the walk stops at the next level boundary with the context's error.
func TestCancelMidTraversal(t *testing.T) {
	g, ids := grid(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	visits := 0
	err := BFSCtx(ctx, g, ids[0], model.Out, func(_ model.NodeID, depth int) bool {
		visits++
		if depth == 2 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BFSCtx after mid-walk cancel: got %v, want context.Canceled", err)
	}
	if visits >= len(ids) {
		t.Fatalf("BFSCtx visited all %d nodes despite cancellation", visits)
	}
}

// TestCancelMidMatch cancels a combinatorial pattern search partway through
// and checks the backtracking recursion aborts with ctx.Err().
func TestCancelMidMatch(t *testing.T) {
	g, _ := grid(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// A 3-node path pattern over a lattice has many embeddings; cancel after
	// the search emits a handful by polling from a graph callback. The
	// cancel lands inside rec(), whose next step check must surface it.
	pat, err := NewPattern(
		[]PatternNode{{Var: "a"}, {Var: "b"}, {Var: "c"}},
		[]PatternEdge{{From: 0, To: 1}, {From: 1, To: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cg := &cancelAfterGraph{Graph: g, after: 50, cancel: cancel}
	if _, err := FindMatchesCtx(ctx, cg, pat, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("FindMatchesCtx after mid-search cancel: got %v, want context.Canceled", err)
	}
}

// TestBackgroundUnaffected guards the compatibility contract: the ctx-free
// names still work and the Ctx variants with context.Background() answer
// identically.
func TestBackgroundUnaffected(t *testing.T) {
	g, ids := grid(t, 4)
	p1, err := ShortestPath(g, ids[0], ids[len(ids)-1], model.Out)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ShortestPathCtx(context.Background(), g, ids[0], ids[len(ids)-1], model.Out)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Len() != p2.Len() || p1.Len() != 6 {
		t.Fatalf("path lengths differ: %d vs %d (want 6)", p1.Len(), p2.Len())
	}
}

// cancelAfterGraph cancels a context after a fixed number of Neighbors calls,
// simulating a deadline landing mid-search.
type cancelAfterGraph struct {
	model.Graph
	after  int
	calls  int
	cancel context.CancelFunc
}

func (c *cancelAfterGraph) Neighbors(id model.NodeID, dir model.Direction, fn func(model.Edge, model.Node) bool) error {
	c.calls++
	if c.calls == c.after {
		c.cancel()
	}
	return c.Graph.Neighbors(id, dir, fn)
}
