package algo

import (
	"errors"
	"math/rand"
	"testing"

	"gdbm/internal/algo/algotest"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

// Regression tests for the swallowed-iterator-error sweep: every kernel
// must surface a failure from the underlying model.Graph instead of
// returning a silently truncated result.

func flakyFixture(t *testing.T, budget int) *algotest.FlakyGraph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	g, _ := algotest.RandomGraph(rng, 12, 30)
	return algotest.NewFlaky(g, budget)
}

func TestDegreesPropagatesNodesError(t *testing.T) {
	if _, err := Degrees(flakyFixture(t, 0), model.Both); !errors.Is(err, algotest.ErrInjected) {
		t.Fatalf("Degrees with failing Nodes: err = %v, want injected", err)
	}
}

func TestDegreesPropagatesDegreeError(t *testing.T) {
	// Budget 1: the Nodes scan succeeds, the first Degree call fails.
	if _, err := Degrees(flakyFixture(t, 1), model.Both); !errors.Is(err, algotest.ErrInjected) {
		t.Fatalf("Degrees with failing Degree: err = %v, want injected", err)
	}
}

func TestDiameterPropagatesErrors(t *testing.T) {
	for _, budget := range []int{0, 1, 2} {
		if _, err := Diameter(flakyFixture(t, budget), model.Out); !errors.Is(err, algotest.ErrInjected) {
			t.Errorf("Diameter budget=%d: err = %v, want injected", budget, err)
		}
	}
}

func TestAggregatePropagatesNodesError(t *testing.T) {
	if _, err := AggregateNodeProp(flakyFixture(t, 0), "P", "w", AggSum); !errors.Is(err, algotest.ErrInjected) {
		t.Fatalf("AggregateNodeProp with failing Nodes: err = %v, want injected", err)
	}
}

func TestFindMatchesPropagatesScanError(t *testing.T) {
	p, err := NewPattern(
		[]PatternNode{{Label: "P"}, {Label: "Q"}},
		[]PatternEdge{{From: 0, To: 1, Label: "a"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic fixture with many P-a->Q embeddings, so every budget
	// below is guaranteed to be exhausted mid-search.
	g := memgraph.New()
	for i := 0; i < 8; i++ {
		u, _ := g.AddNode("P", nil)
		v, _ := g.AddNode("Q", nil)
		g.AddEdge("a", u, v, nil)
	}
	// Budget 0 fails the unanchored Nodes scan itself; larger budgets fail
	// inside the recursive Neighbors expansion.
	for _, budget := range []int{0, 2, 5} {
		fg := algotest.NewFlaky(g, budget)
		if _, err := FindMatches(fg, p, 0); !errors.Is(err, algotest.ErrInjected) {
			t.Errorf("FindMatches budget=%d: err = %v, want injected", budget, err)
		}
	}
}

func TestBFSAndNeighborhoodPropagateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, ids := algotest.RandomGraph(rng, 12, 40)
	fg := algotest.NewFlaky(g, 1)
	err := BFS(fg, ids[0], model.Both, func(model.NodeID, int) bool { return true })
	if !errors.Is(err, algotest.ErrInjected) {
		t.Errorf("BFS: err = %v, want injected", err)
	}
	fg = algotest.NewFlaky(g, 1)
	if _, err := Neighborhood(fg, ids[0], 3, model.Both); !errors.Is(err, algotest.ErrInjected) {
		t.Errorf("Neighborhood: err = %v, want injected", err)
	}
}
