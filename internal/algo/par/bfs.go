package par

import (
	"context"

	"gdbm/internal/model"
)

// frontierWeights returns per-node degree hints for work splitting. Degree
// errors degrade to weight 1 rather than failing the kernel — the weights
// only steer chunking, and a node whose adjacency is truly unreadable
// reports its error from the expansion itself.
func frontierWeights(g model.Graph, frontier []model.NodeID, dir model.Direction) func(int) int {
	w := make([]int, len(frontier))
	for i, id := range frontier {
		d, err := g.Degree(id, dir)
		if err != nil || d < 1 {
			d = 1
		}
		w[i] = d
	}
	return func(i int) int { return w[i] }
}

// expandFrontier expands every frontier node's adjacency concurrently into
// per-node candidate buffers: buf[i] holds the neighbors of frontier[i]
// not yet visited at expansion start, in Neighbors order. The visited map
// is read, never written, during expansion, so workers share it without
// locks; deduplication across buffers is the sequential merge's job.
func expandFrontier(ctx context.Context, g model.Graph, frontier []model.NodeID, dir model.Direction, visited map[model.NodeID]bool, opt Options) ([][]model.NodeID, error) {
	buf := make([][]model.NodeID, len(frontier))
	expand := func(ctx context.Context, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return g.Neighbors(frontier[i], dir, func(_ model.Edge, n model.Node) bool {
			if !visited[n.ID] {
				buf[i] = append(buf[i], n.ID)
			}
			return true
		})
	}
	if len(frontier) < opt.threshold() {
		for i := range frontier {
			if err := expand(ctx, i); err != nil {
				return nil, err
			}
		}
		return buf, nil
	}
	chunks := Split(len(frontier), opt.workers()*chunksPerWorker, frontierWeights(g, frontier, dir))
	err := opt.pool().Map(ctx, len(chunks), func(ctx context.Context, ci int) error {
		for i := chunks[ci].Start; i < chunks[ci].End; i++ {
			if err := expand(ctx, i); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// BFS walks the graph from start with the same visit sequence and
// early-stop semantics as algo.BFS, expanding each depth level's frontier
// concurrently and merging the discoveries in frontier order. On an
// iteration error the callbacks already issued may cover nodes the
// sequential walk would not have reached before failing; the error
// returned is the same.
func BFS(ctx context.Context, g model.Graph, start model.NodeID, dir model.Direction, opt Options, visit func(id model.NodeID, depth int) bool) error {
	if _, err := g.Node(start); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	visited := map[model.NodeID]bool{start: true}
	frontier := []model.NodeID{start}
	if !visit(start, 0) {
		return nil
	}
	for depth := 1; len(frontier) > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		buf, err := expandFrontier(ctx, g, frontier, dir, visited, opt)
		if err != nil {
			return err
		}
		var next []model.NodeID
		for _, cands := range buf {
			for _, id := range cands {
				if visited[id] {
					continue
				}
				visited[id] = true
				if !visit(id, depth) {
					return nil
				}
				next = append(next, id)
			}
		}
		frontier = next
	}
	return nil
}

// Reachable reports whether to can be reached from from following dir,
// equivalently to algo.Reachable.
func Reachable(ctx context.Context, g model.Graph, from, to model.NodeID, dir model.Direction, opt Options) (bool, error) {
	if from == to {
		if _, err := g.Node(from); err != nil {
			return false, err
		}
		return true, nil
	}
	found := false
	err := BFS(ctx, g, from, dir, opt, func(id model.NodeID, _ int) bool {
		if id == to {
			found = true
			return false
		}
		return true
	})
	return found, err
}

// Neighborhood returns the k-neighborhood of start in the same
// BFS-discovery order as algo.Neighborhood.
func Neighborhood(ctx context.Context, g model.Graph, start model.NodeID, k int, dir model.Direction, opt Options) ([]model.NodeID, error) {
	if _, err := g.Node(start); err != nil {
		return nil, err
	}
	visited := map[model.NodeID]bool{start: true}
	frontier := []model.NodeID{start}
	var out []model.NodeID
	for depth := 0; depth < k && len(frontier) > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		buf, err := expandFrontier(ctx, g, frontier, dir, visited, opt)
		if err != nil {
			return nil, err
		}
		var next []model.NodeID
		for _, cands := range buf {
			for _, id := range cands {
				if !visited[id] {
					visited[id] = true
					next = append(next, id)
					out = append(out, id)
				}
			}
		}
		frontier = next
	}
	return out, nil
}
