package par

// Range is a half-open index interval [Start, End).
type Range struct{ Start, End int }

// Len returns the number of indexes in the range.
func (r Range) Len() int { return r.End - r.Start }

// Split partitions the index range [0, n) into at most parts contiguous,
// in-order ranges of roughly equal total weight, so per-chunk results can
// be concatenated to reproduce the sequential processing order. A nil
// weight treats all items as equal; weights below 1 count as 1. Heavy
// items (hubs) never split across chunks — a single very heavy item makes
// its chunk the straggler, which callers offset by requesting more chunks
// than workers.
func Split(n, parts int, weight func(i int) int) []Range {
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	if parts <= 1 {
		return []Range{{0, n}}
	}
	if weight == nil {
		out := make([]Range, 0, parts)
		for i := 0; i < parts; i++ {
			start, end := i*n/parts, (i+1)*n/parts
			if start < end {
				out = append(out, Range{start, end})
			}
		}
		return out
	}
	w := func(i int) int {
		v := weight(i)
		if v < 1 {
			v = 1
		}
		return v
	}
	remaining := 0
	for i := 0; i < n; i++ {
		remaining += w(i)
	}
	out := make([]Range, 0, parts)
	start, acc := 0, 0
	for i := 0; i < n; i++ {
		acc += w(i)
		// Close the chunk once it reaches an equal share of the remaining
		// weight over the remaining chunk budget.
		left := parts - len(out)
		if left > 1 && acc >= (remaining+left-1)/left {
			out = append(out, Range{start, i + 1})
			start = i + 1
			remaining -= acc
			acc = 0
		}
	}
	if start < n {
		out = append(out, Range{start, n})
	}
	return out
}
