package par_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gdbm/internal/algo"
	"gdbm/internal/algo/algotest"
	"gdbm/internal/algo/par"
	"gdbm/internal/kvgraph"
	"gdbm/internal/model"
	"gdbm/internal/storage/kv"
)

// force pushes every kernel through its parallel path regardless of input
// size, so the equivalence properties exercise chunking and merging even on
// the small graphs quick.Check generates.
var force = par.Options{Threshold: 1, Workers: 4}

type visitRec struct {
	id    model.NodeID
	depth int
}

// kvClone copies a memgraph into a kvgraph so the Nodes scan order is
// deterministic (ID order) — required for the exact-sequence pattern and
// limit properties.
func kvClone(t testing.TB, g model.Graph) *kvgraph.Graph {
	t.Helper()
	out := kvgraph.New(kv.NewMemory())
	ids := map[model.NodeID]model.NodeID{}
	var nodes []model.Node
	if err := g.Nodes(func(n model.Node) bool { nodes = append(nodes, n); return true }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		id, err := out.AddNode(n.Label, n.Props)
		if err != nil {
			t.Fatal(err)
		}
		ids[n.ID] = id
	}
	var edges []model.Edge
	if err := g.Edges(func(e model.Edge) bool { edges = append(edges, e); return true }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].ID < edges[j].ID })
	for _, e := range edges {
		if _, err := out.AddEdge(e.Label, ids[e.From], ids[e.To], e.Props); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestBFSVisitSequenceMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ids := algotest.RandomGraph(rng, 20+rng.Intn(20), 60+rng.Intn(60))
		start := ids[rng.Intn(len(ids))]
		for _, dir := range []model.Direction{model.Out, model.In, model.Both} {
			var seq, parv []visitRec
			if err := algo.BFS(g, start, dir, func(id model.NodeID, d int) bool {
				seq = append(seq, visitRec{id, d})
				return true
			}); err != nil {
				t.Fatal(err)
			}
			err := par.BFS(context.Background(), g, start, dir, force, func(id model.NodeID, d int) bool {
				parv = append(parv, visitRec{id, d})
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(seq) != fmt.Sprint(parv) {
				t.Logf("seed %d dir %v:\nseq %v\npar %v", seed, dir, seq, parv)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSEarlyStopMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, ids := algotest.RandomGraph(rng, 30, 90)
	for _, stopAfter := range []int{1, 3, 7} {
		var seq, parv []visitRec
		n := 0
		algo.BFS(g, ids[0], model.Both, func(id model.NodeID, d int) bool {
			seq = append(seq, visitRec{id, d})
			n++
			return n < stopAfter
		})
		n = 0
		if err := par.BFS(context.Background(), g, ids[0], model.Both, force, func(id model.NodeID, d int) bool {
			parv = append(parv, visitRec{id, d})
			n++
			return n < stopAfter
		}); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(seq) != fmt.Sprint(parv) {
			t.Fatalf("stopAfter=%d:\nseq %v\npar %v", stopAfter, seq, parv)
		}
	}
}

func TestNeighborhoodAndReachableMatchSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ids := algotest.RandomGraph(rng, 15+rng.Intn(15), 40+rng.Intn(40))
		a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		k := 1 + rng.Intn(4)
		for _, dir := range []model.Direction{model.Out, model.Both} {
			seqN, err := algo.Neighborhood(g, a, k, dir)
			if err != nil {
				t.Fatal(err)
			}
			parN, err := par.Neighborhood(context.Background(), g, a, k, dir, force)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(seqN) != fmt.Sprint(parN) {
				t.Logf("seed %d dir %v k=%d: seq %v par %v", seed, dir, k, seqN, parN)
				return false
			}
			seqR, err := algo.Reachable(g, a, b, dir)
			if err != nil {
				t.Fatal(err)
			}
			parR, err := par.Reachable(context.Background(), g, a, b, dir, force)
			if err != nil {
				t.Fatal(err)
			}
			if seqR != parR {
				t.Logf("seed %d dir %v: reachable seq=%v par=%v", seed, dir, seqR, parR)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalPathMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ids := algotest.RandomDAG(rng, 10+rng.Intn(8), 20+rng.Intn(20))
		expr := algotest.RandomExpr(rng, 2)
		pe, err := algo.CompilePathExpr(expr)
		if err != nil {
			t.Fatalf("compile %q: %v", expr, err)
		}
		start := ids[rng.Intn(len(ids))]
		seq, err := pe.Eval(g, start)
		if err != nil {
			t.Fatal(err)
		}
		parv, err := par.EvalPath(context.Background(), pe, g, start, force)
		if err != nil {
			t.Fatal(err)
		}
		// The parallel product search replays the sequential candidate
		// order, so the result sequences are identical, not just set-equal.
		if fmt.Sprint(seq) != fmt.Sprint(parv) {
			t.Logf("seed %d expr %q start %d:\nseq %v\npar %v", seed, expr, start, seq, parv)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// On a cyclic graph too (not just DAGs): the product automaton handles
// cycles via the visited set.
func TestEvalPathMatchesSequentialOnCyclicGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ids := algotest.RandomGraph(rng, 12, 36)
		pe, err := algo.CompilePathExpr(algotest.RandomExpr(rng, 2))
		if err != nil {
			t.Fatal(err)
		}
		start := ids[rng.Intn(len(ids))]
		seq, err := pe.Eval(g, start)
		if err != nil {
			t.Fatal(err)
		}
		parv, err := par.EvalPath(context.Background(), pe, g, start, force)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(seq) == fmt.Sprint(parv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func matchKey(m algo.Match) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%d;", k, m[k])
	}
	return s
}

func testPattern(t testing.TB) *algo.Pattern {
	t.Helper()
	p, err := algo.NewPattern(
		[]algo.PatternNode{{Var: "x", Label: "P"}, {Var: "y"}},
		[]algo.PatternEdge{{From: 0, To: 1, Label: "a"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// On memgraph the Nodes scan order varies between calls (map iteration), so
// parallel and sequential matching agree as sets.
func TestFindMatchesSetEqualOnMemgraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := algotest.RandomGraph(rng, 20, 60)
		p := testPattern(t)
		seq, err := algo.FindMatches(g, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		parv, err := par.FindMatches(context.Background(), g, p, 0, force)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(parv) {
			t.Logf("seed %d: %d seq matches, %d par", seed, len(seq), len(parv))
			return false
		}
		set := map[string]bool{}
		for _, m := range seq {
			set[matchKey(m)] = true
		}
		for _, m := range parv {
			if !set[matchKey(m)] {
				t.Logf("seed %d: par-only match %v", seed, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// On kvgraph the scan order is deterministic (ID order), so the match
// sequence — including limit truncation — is byte-identical.
func TestFindMatchesExactOrderOnKVGraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mg, _ := algotest.RandomGraph(rng, 18, 50)
		g := kvClone(t, mg)
		p := testPattern(t)
		for _, limit := range []int{0, 1, 3, 10} {
			seq, err := algo.FindMatches(g, p, limit)
			if err != nil {
				t.Fatal(err)
			}
			parv, err := par.FindMatches(context.Background(), g, p, limit, force)
			if err != nil {
				t.Fatal(err)
			}
			if len(seq) != len(parv) {
				t.Logf("seed %d limit %d: %d seq, %d par", seed, limit, len(seq), len(parv))
				return false
			}
			for i := range seq {
				if matchKey(seq[i]) != matchKey(parv[i]) {
					t.Logf("seed %d limit %d pos %d: seq %v par %v", seed, limit, i, seq[i], parv[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatesMatchSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := algotest.RandomGraph(rng, 25, 70)
		for _, kind := range []algo.AggKind{algo.AggCount, algo.AggSum, algo.AggMin, algo.AggMax, algo.AggAvg} {
			for _, label := range []string{"", "P"} {
				seq, err := algo.AggregateNodeProp(g, label, "w", kind)
				if err != nil {
					t.Fatal(err)
				}
				parv, err := par.AggregateNodeProp(context.Background(), g, label, "w", kind, force)
				if err != nil {
					t.Fatal(err)
				}
				// Integer inputs make every aggregate (sum, avg included)
				// exact, so equality is not flaky.
				if !seq.Equal(parv) {
					t.Logf("seed %d kind %v label %q: seq %v par %v", seed, kind, label, seq, parv)
					return false
				}
			}
		}
		seqD, err := algo.Degrees(g, model.Both)
		if err != nil {
			t.Fatal(err)
		}
		parD, err := par.Degrees(context.Background(), g, model.Both, force)
		if err != nil {
			t.Fatal(err)
		}
		if seqD != parD {
			t.Logf("seed %d: degrees seq %+v par %+v", seed, seqD, parD)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelsHonorCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, ids := algotest.RandomGraph(rng, 40, 120)
	pe, err := algo.CompilePathExpr("(a|b)*")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	checks := map[string]func() error{
		"BFS": func() error {
			return par.BFS(ctx, g, ids[0], model.Both, force, func(model.NodeID, int) bool { return true })
		},
		"Reachable": func() error {
			_, err := par.Reachable(ctx, g, ids[0], ids[1], model.Both, force)
			return err
		},
		"EvalPath": func() error {
			_, err := par.EvalPath(ctx, pe, g, ids[0], force)
			return err
		},
		"FindMatches": func() error {
			_, err := par.FindMatches(ctx, g, testPattern(t), 0, force)
			return err
		},
		"Aggregate": func() error {
			_, err := par.AggregateNodeProp(ctx, g, "", "w", algo.AggSum, force)
			return err
		},
		"Degrees": func() error {
			_, err := par.Degrees(ctx, g, model.Both, force)
			return err
		},
	}
	for name, fn := range checks {
		if err := fn(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with canceled context: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestKernelsPropagateInjectedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, ids := algotest.RandomGraph(rng, 30, 90)
	pe, err := algo.CompilePathExpr("a/b")
	if err != nil {
		t.Fatal(err)
	}
	// AggregateNodeProp reads the graph exactly once (the Nodes scan), so
	// only budget 0 can trip it; traversal kernels touch the graph per
	// frontier element and fail at any budget.
	budgets := map[string][]int{"Aggregate": {0}}
	checks := map[string]func(model.Graph) error{
		"BFS": func(fg model.Graph) error {
			return par.BFS(context.Background(), fg, ids[0], model.Both, force, func(model.NodeID, int) bool { return true })
		},
		"EvalPath": func(fg model.Graph) error {
			_, err := par.EvalPath(context.Background(), pe, fg, ids[0], force)
			return err
		},
		"FindMatches": func(fg model.Graph) error {
			_, err := par.FindMatches(context.Background(), fg, testPattern(t), 0, force)
			return err
		},
		"Aggregate": func(fg model.Graph) error {
			_, err := par.AggregateNodeProp(context.Background(), fg, "", "w", algo.AggSum, force)
			return err
		},
		"Degrees": func(fg model.Graph) error {
			_, err := par.Degrees(context.Background(), fg, model.Both, force)
			return err
		},
	}
	for name, fn := range checks {
		bs, ok := budgets[name]
		if !ok {
			bs = []int{0, 1, 3}
		}
		for _, budget := range bs {
			if err := fn(algotest.NewFlaky(g, budget)); !errors.Is(err, algotest.ErrInjected) {
				t.Errorf("%s budget=%d: err = %v, want injected", name, budget, err)
			}
		}
	}
}
