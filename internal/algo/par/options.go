package par

// DefaultThreshold is the work-size floor below which kernels run the
// sequential path: a frontier or candidate list smaller than this is
// cheaper to process inline than to chunk and hand out.
const DefaultThreshold = 256

// chunksPerWorker oversubscribes chunks relative to workers so a straggler
// chunk (a hub-heavy range) doesn't idle the rest of the pool.
const chunksPerWorker = 4

// Options tunes one kernel invocation. The zero value selects the shared
// default pool, its worker count, and DefaultThreshold.
type Options struct {
	// Workers caps the number of chunks in flight; 0 = pool size.
	Workers int
	// Threshold is the minimum work size worth parallelizing; 0 selects
	// DefaultThreshold (set 1 to parallelize unconditionally). Below it,
	// kernels produce their results through the sequential internal/algo
	// implementations.
	Threshold int
	// Pool runs the work; nil selects Default().
	Pool *Pool
}

func (o Options) pool() *Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return Default()
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return o.pool().Workers()
}

func (o Options) threshold() int {
	if o.Threshold > 0 {
		return o.Threshold
	}
	return DefaultThreshold
}
