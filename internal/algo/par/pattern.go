package par

import (
	"context"

	"gdbm/internal/algo"
	"gdbm/internal/model"
)

// FindMatches enumerates pattern embeddings exactly as algo.FindMatches
// does, parallelizing the root-candidate scan: every node is filtered
// against the root pattern node's local constraints concurrently, the
// surviving candidates are partitioned into contiguous chunks, and one
// seeded sequential search runs per chunk. Chunk results concatenate in
// scan order and the merge truncates at limit, so the returned matches
// equal the sequential kernel's whenever the graph's Nodes order is
// deterministic (and are a permutation of them otherwise).
func FindMatches(ctx context.Context, g model.Graph, p *algo.Pattern, limit int, opt Options) ([]algo.Match, error) {
	if p.NumNodes() == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var nodes []model.Node
	if err := g.Nodes(func(n model.Node) bool {
		nodes = append(nodes, n)
		return true
	}); err != nil {
		return nil, err
	}
	if len(nodes) < opt.threshold() {
		return algo.FindMatches(g, p, limit)
	}

	root := p.RootIndex()
	keep := make([]bool, len(nodes))
	chunks := Split(len(nodes), opt.workers()*chunksPerWorker, nil)
	if err := opt.pool().Map(ctx, len(chunks), func(ctx context.Context, ci int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := chunks[ci].Start; i < chunks[ci].End; i++ {
			keep[i] = p.NodeMatches(root, nodes[i])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var seeds []model.NodeID
	for i, k := range keep {
		if k {
			seeds = append(seeds, nodes[i].ID)
		}
	}
	if len(seeds) == 0 {
		return nil, nil
	}

	// Each chunk honors the global limit on its own (a chunk can at worst
	// compute matches the merge discards), and the in-order truncating
	// merge makes the first limit matches identical to the sequential
	// kernel's.
	sChunks := Split(len(seeds), opt.workers()*chunksPerWorker, nil)
	res := make([][]algo.Match, len(sChunks))
	if err := opt.pool().Map(ctx, len(sChunks), func(ctx context.Context, ci int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		m, err := algo.FindMatchesSeeded(g, p, limit, seeds[sChunks[ci].Start:sChunks[ci].End])
		if err != nil {
			return err
		}
		res[ci] = m
		return nil
	}); err != nil {
		return nil, err
	}
	var out []algo.Match
	for _, m := range res {
		out = append(out, m...)
		if limit > 0 && len(out) >= limit {
			out = out[:limit]
			break
		}
	}
	return out, nil
}
