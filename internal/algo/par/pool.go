// Package par is the shared parallel-execution substrate for the query
// kernels: a bounded worker pool, degree-aware contiguous work splitting,
// and parallel variants of the essential-query kernels of internal/algo.
//
// Determinism is the design center. Every kernel follows the same shape —
// expand a frontier (or partition a candidate list) concurrently into
// per-item buffers, then merge the buffers sequentially in frontier order —
// so its results are identical to the sequential kernel's whenever the
// graph's iteration order is deterministic: same visit sequence, same
// result order, same early-stop behavior. Parallelism changes only the
// wall-clock, never the answer.
//
// Kernels fall back to their sequential counterparts below a configurable
// work-size threshold, where chunking overhead would dominate. Graphs
// handed to the kernels must be safe for concurrent readers — the
// model.Snapshotter contract; engines expose conforming views through
// engine.Concurrent, gated by the capability registry.
package par

import (
	"context"
	"runtime"
	"sync"
	"time"

	"gdbm/internal/obs"
)

// Pool is a bounded set of reusable worker goroutines. Work is submitted
// in fork-join batches through Map; when every worker is busy the
// submitting goroutine runs tasks itself (caller-runs overflow), so a Map
// call can never deadlock waiting on workers occupied by other callers.
type Pool struct {
	tasks   chan func()
	workers int
	once    sync.Once
}

// New starts a pool with the given number of worker goroutines;
// workers <= 0 selects runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan func()), workers: workers}
	for i := 0; i < workers; i++ {
		go func() {
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers once in-flight tasks finish. Map must not be
// called after Close. Closing twice is a no-op.
func (p *Pool) Close() { p.once.Do(func() { close(p.tasks) }) }

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the shared process-wide pool, sized to GOMAXPROCS at
// first use. It is never closed.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = New(0) })
	return defaultPool
}

// Map runs fn(ctx, 0) … fn(ctx, n-1) concurrently on the pool and waits
// for all of them. The first non-nil error cancels the context handed to
// still-pending invocations and is returned; invocations that start after
// the failure return immediately. Tasks that cannot be handed to an idle
// worker run on the calling goroutine. When the parent context is
// canceled, Map returns its error after the in-flight tasks drain.
//
// When ctx carries an obs.Trace, each task handed to a worker records its
// queue wait (submit to start) in the "pool.queue_wait_ns" trace counter
// and "pool.tasks" counts the handoffs; caller-run overflow tasks never
// queue, so they contribute to neither. Worker-run tasks additionally
// carry a pprof label set (obs.Profile) naming the trace, so CPU profiles
// attribute pool samples to the query that scheduled them. With no trace
// in ctx none of this runs — the fan-out path is unchanged.
func (p *Pool) Map(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	tr := obs.FromContext(ctx)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	run := func(i int) {
		defer wg.Done()
		if ctx.Err() != nil {
			return
		}
		if err := fn(ctx, i); err != nil {
			fail(err)
		}
	}
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		task := func() { run(i) }
		if tr != nil {
			enqueued := time.Now()
			task = func() {
				tr.Add("pool.queue_wait_ns", time.Since(enqueued).Nanoseconds())
				tr.Add("pool.tasks", 1)
				obs.Profile(ctx, func(context.Context) { run(i) },
					"pool", "map", "trace", tr.Name())
			}
		}
		select {
		case p.tasks <- task:
		default:
			run(i)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
