package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapRunsEveryIndex(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 200
	var hits [n]int32
	err := p.Map(context.Background(), n, func(_ context.Context, i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestMapPropagatesFirstError(t *testing.T) {
	p := New(2)
	defer p.Close()
	boom := errors.New("boom")
	err := p.Map(context.Background(), 50, func(_ context.Context, i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestMapErrorCancelsSiblings(t *testing.T) {
	p := New(2)
	defer p.Close()
	boom := errors.New("boom")
	var canceled int32
	err := p.Map(context.Background(), 100, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		if ctx.Err() != nil {
			atomic.AddInt32(&canceled, 1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// With caller-runs submission and index 0 failing first, later tasks
	// observe the canceled derived context. At least some must have seen it.
	if atomic.LoadInt32(&canceled) == 0 {
		t.Log("no sibling observed cancellation (scheduling-dependent, not a failure)")
	}
}

func TestMapHonorsCanceledContext(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	err := p.Map(ctx, 10, func(_ context.Context, _ int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if atomic.LoadInt32(&ran) != 0 {
		t.Fatalf("%d tasks ran despite pre-canceled context", ran)
	}
}

// Caller-runs overflow means Map cannot deadlock even when tasks submit
// nested Maps on the same saturated pool.
func TestMapNestedDoesNotDeadlock(t *testing.T) {
	p := New(1)
	defer p.Close()
	var total int32
	err := p.Map(context.Background(), 8, func(ctx context.Context, i int) error {
		return p.Map(ctx, 8, func(_ context.Context, j int) error {
			atomic.AddInt32(&total, 1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 64 {
		t.Fatalf("nested map ran %d tasks, want 64", total)
	}
}

func TestPoolDefaults(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", p.Workers())
	}
	if Default().Workers() < 1 {
		t.Fatal("Default pool has no workers")
	}
	p.Close() // double Close must not panic
}

func TestSplitUniform(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {4, 4}, {10, 3}, {100, 7}, {5, 100},
	} {
		chunks := Split(tc.n, tc.parts, nil)
		checkCover(t, chunks, tc.n, tc.parts)
	}
}

func TestSplitWeighted(t *testing.T) {
	// One heavy item among light ones: the heavy item must not share its
	// chunk with everything else.
	weights := []int{1, 1, 1, 1000, 1, 1, 1, 1}
	chunks := Split(len(weights), 4, func(i int) int { return weights[i] })
	checkCover(t, chunks, len(weights), 4)
	for _, c := range chunks {
		if c.Start <= 3 && 3 < c.End && c.Len() == len(weights) {
			t.Fatalf("weighted split degenerated to one chunk: %v", chunks)
		}
	}
	// Zero and negative weights are clamped, not fatal.
	chunks = Split(6, 3, func(int) int { return 0 })
	checkCover(t, chunks, 6, 3)
}

func checkCover(t *testing.T, chunks []Range, n, parts int) {
	t.Helper()
	if len(chunks) > parts {
		t.Fatalf("Split(%d, %d): %d chunks", n, parts, len(chunks))
	}
	next := 0
	for _, c := range chunks {
		if c.Start != next || c.End <= c.Start {
			t.Fatalf("Split(%d, %d): bad chunk %+v in %v", n, parts, c, chunks)
		}
		next = c.End
	}
	if next != n {
		t.Fatalf("Split(%d, %d): covers [0,%d), want [0,%d)", n, parts, next, n)
	}
}
