package par

import (
	"context"
	"sort"

	"gdbm/internal/algo"
	"gdbm/internal/model"
)

// product pairs a graph node with an automaton state.
type product struct {
	node  model.NodeID
	state int
}

// EvalPath answers a regular path query from start with the same node
// sequence as expr.Eval: a BFS over the product of the graph and the
// expression's automaton, here with each level's product frontier expanded
// concurrently. Candidates are generated per frontier element in the
// sequential kernel's order (automaton transitions, then neighbors, then
// epsilon-closed states ascending) and merged in frontier order, so
// deduplication and result accumulation replay the sequential discovery
// sequence exactly.
func EvalPath(ctx context.Context, expr *algo.PathExpr, g model.Graph, start model.NodeID, opt Options) ([]model.NodeID, error) {
	if _, err := g.Node(start); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	trans := make([][]algo.PathTransition, expr.NumStates())
	for s := range trans {
		trans[s] = expr.Transitions(s)
	}
	closure := func(states map[int]bool) {
		stack := make([]int, 0, len(states))
		for s := range states {
			stack = append(stack, s)
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range trans[s] {
				if t.Eps && !states[t.To] {
					states[t.To] = true
					stack = append(stack, t.To)
				}
			}
		}
	}
	sorted := func(states map[int]bool) []int {
		out := make([]int, 0, len(states))
		for s := range states {
			out = append(out, s)
		}
		sort.Ints(out)
		return out
	}

	startSet := map[int]bool{expr.StartState(): true}
	closure(startSet)

	visited := map[product]bool{}
	var frontier []product
	for _, s := range sorted(startSet) {
		ps := product{start, s}
		visited[ps] = true
		frontier = append(frontier, ps)
	}

	final := expr.FinalState()
	resultSet := map[model.NodeID]bool{}
	var results []model.NodeID
	accept := func(n model.NodeID, s int) {
		if s == final && !resultSet[n] {
			resultSet[n] = true
			results = append(results, n)
		}
	}
	for _, ps := range frontier {
		accept(ps.node, ps.state)
	}

	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		buf := make([][]product, len(frontier))
		expand := func(ctx context.Context, i int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			cur := frontier[i]
			for _, t := range trans[cur.state] {
				if t.Eps {
					continue
				}
				dir := model.Out
				if t.Inverse {
					dir = model.In
				}
				t := t
				err := g.Neighbors(cur.node, dir, func(e model.Edge, n model.Node) bool {
					if e.Label != t.Label {
						return true
					}
					next := map[int]bool{t.To: true}
					closure(next)
					for _, s := range sorted(next) {
						if ps := (product{n.ID, s}); !visited[ps] {
							buf[i] = append(buf[i], ps)
						}
					}
					return true
				})
				if err != nil {
					return err
				}
			}
			return nil
		}
		if len(frontier) < opt.threshold() {
			for i := range frontier {
				if err := expand(ctx, i); err != nil {
					return nil, err
				}
			}
		} else {
			nodes := make([]model.NodeID, len(frontier))
			for i, ps := range frontier {
				nodes[i] = ps.node
			}
			chunks := Split(len(frontier), opt.workers()*chunksPerWorker, frontierWeights(g, nodes, model.Both))
			if err := opt.pool().Map(ctx, len(chunks), func(ctx context.Context, ci int) error {
				for i := chunks[ci].Start; i < chunks[ci].End; i++ {
					if err := expand(ctx, i); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return nil, err
			}
		}
		var next []product
		for _, cands := range buf {
			for _, ps := range cands {
				if visited[ps] {
					continue
				}
				visited[ps] = true
				accept(ps.node, ps.state)
				next = append(next, ps)
			}
		}
		frontier = next
	}
	return results, nil
}
