package par

import (
	"context"
	"math"

	"gdbm/internal/algo"
	"gdbm/internal/model"
)

// AggregateNodeProp computes the same aggregate as algo.AggregateNodeProp,
// folding contiguous node chunks concurrently and merging the partial
// aggregators in chunk order. Count, min and max merge exactly; sums merge
// by partial-sum addition, exact for integer-valued properties and equal
// up to floating-point association otherwise.
func AggregateNodeProp(ctx context.Context, g model.Graph, label, prop string, kind algo.AggKind, opt Options) (model.Value, error) {
	if err := ctx.Err(); err != nil {
		return model.Null(), err
	}
	var nodes []model.Node
	if err := g.Nodes(func(n model.Node) bool {
		nodes = append(nodes, n)
		return true
	}); err != nil {
		return model.Null(), err
	}
	if len(nodes) < opt.threshold() {
		return algo.AggregateNodeProp(g, label, prop, kind)
	}
	chunks := Split(len(nodes), opt.workers()*chunksPerWorker, nil)
	parts := make([]*algo.Aggregator, len(chunks))
	if err := opt.pool().Map(ctx, len(chunks), func(ctx context.Context, ci int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		agg := algo.NewAggregator(kind)
		for i := chunks[ci].Start; i < chunks[ci].End; i++ {
			n := nodes[i]
			if label != "" && n.Label != label {
				continue
			}
			if kind == algo.AggCount {
				agg.Add(model.Int(1))
			} else {
				agg.Add(n.Props.Get(prop))
			}
		}
		parts[ci] = agg
		return nil
	}); err != nil {
		return model.Null(), err
	}
	total := algo.NewAggregator(kind)
	for _, part := range parts {
		total.Merge(part)
	}
	return total.Result(), nil
}

// Degrees computes algo.Degrees' statistics with the per-node degree
// lookups spread across the pool. Min, max and the node count merge
// exactly; the average's numerator is a sum of integer degrees, exact in
// float64, so the result equals the sequential kernel's.
func Degrees(ctx context.Context, g model.Graph, dir model.Direction, opt Options) (algo.DegreeStats, error) {
	if err := ctx.Err(); err != nil {
		return algo.DegreeStats{}, err
	}
	var ids []model.NodeID
	if err := g.Nodes(func(n model.Node) bool {
		ids = append(ids, n.ID)
		return true
	}); err != nil {
		return algo.DegreeStats{}, err
	}
	if len(ids) < opt.threshold() {
		return algo.Degrees(g, dir)
	}
	type partStats struct {
		min, max int
		sum      float64
		n        int
	}
	chunks := Split(len(ids), opt.workers()*chunksPerWorker, nil)
	parts := make([]partStats, len(chunks))
	if err := opt.pool().Map(ctx, len(chunks), func(ctx context.Context, ci int) error {
		ps := partStats{min: math.MaxInt}
		for i := chunks[ci].Start; i < chunks[ci].End; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			d, err := g.Degree(ids[i], dir)
			if err != nil {
				return err
			}
			if d < ps.min {
				ps.min = d
			}
			if d > ps.max {
				ps.max = d
			}
			ps.sum += float64(d)
			ps.n++
		}
		parts[ci] = ps
		return nil
	}); err != nil {
		return algo.DegreeStats{}, err
	}
	stats := algo.DegreeStats{Min: math.MaxInt}
	n := 0
	for _, ps := range parts {
		if ps.n == 0 {
			continue
		}
		if ps.min < stats.Min {
			stats.Min = ps.min
		}
		if ps.max > stats.Max {
			stats.Max = ps.max
		}
		stats.Avg += ps.sum
		n += ps.n
	}
	if n == 0 {
		return algo.DegreeStats{}, nil
	}
	stats.Avg /= float64(n)
	return stats, nil
}
