package algo

import (
	"context"
	"fmt"

	"gdbm/internal/model"
)

// Pattern is a small query graph to be matched against a data graph
// (subgraph isomorphism, the survey's "pattern matching queries"). Pattern
// nodes may constrain the data node's label and property values; pattern
// edges may constrain the edge label and are directed.
type Pattern struct {
	nodes []PatternNode
	edges []PatternEdge
}

// PatternNode constrains one matched node. Empty Label and nil Props match
// anything.
type PatternNode struct {
	// Var names the node in match results.
	Var string
	// Label, if non-empty, must equal the data node's label.
	Label string
	// Props, if non-nil, must be a subset of the data node's properties.
	Props model.Properties
}

// PatternEdge constrains one matched edge between two pattern nodes
// (by index into the pattern's node list).
type PatternEdge struct {
	From, To int
	// Label, if non-empty, must equal the data edge's label.
	Label string
}

// NewPattern builds a pattern; it validates edge endpoints.
func NewPattern(nodes []PatternNode, edges []PatternEdge) (*Pattern, error) {
	for i, e := range edges {
		if e.From < 0 || e.From >= len(nodes) || e.To < 0 || e.To >= len(nodes) {
			return nil, fmt.Errorf("pattern edge %d references node out of range", i)
		}
	}
	return &Pattern{nodes: nodes, edges: edges}, nil
}

// String renders the pattern deterministically (property maps print in
// sorted key order), so equal patterns render equal — result caches use the
// rendering as a fingerprint component.
func (p *Pattern) String() string {
	var b []byte
	for i, n := range p.nodes {
		if i > 0 {
			b = append(b, ' ')
		}
		b = fmt.Appendf(b, "(%s:%s %s)", n.Var, n.Label, n.Props)
	}
	for _, e := range p.edges {
		b = fmt.Appendf(b, " [%d-%s>%d]", e.From, e.Label, e.To)
	}
	return string(b)
}

// Match is one embedding of the pattern: variable name to data node.
type Match map[string]model.NodeID

// NumNodes returns the number of pattern nodes.
func (p *Pattern) NumNodes() int { return len(p.nodes) }

// RootIndex returns the index of the pattern node the backtracking search
// assigns first (the first entry of the internal match order). Candidate
// lists passed to FindMatchesSeeded seed this node.
func (p *Pattern) RootIndex() int {
	order, _ := matchOrder(p)
	return order[0]
}

// NodeMatches reports whether data node n satisfies the label and property
// constraints of pattern node pi. It checks local constraints only — edge
// constraints and injectivity are the search's job.
func (p *Pattern) NodeMatches(pi int, n model.Node) bool {
	pn := p.nodes[pi]
	if pn.Label != "" && pn.Label != n.Label {
		return false
	}
	for k, v := range pn.Props {
		if !n.Props.Get(k).Equal(v) {
			return false
		}
	}
	return true
}

// FindMatches enumerates embeddings of the pattern in g, up to limit
// (0 = unlimited). The mapping is injective (isomorphism, not homomorphism),
// matching the survey's definition.
func FindMatches(g model.Graph, p *Pattern, limit int) ([]Match, error) {
	return FindMatchesSeeded(g, p, limit, nil)
}

// FindMatchesCtx is FindMatches with cooperative cancellation through the
// backtracking search.
func FindMatchesCtx(ctx context.Context, g model.Graph, p *Pattern, limit int) ([]Match, error) {
	return FindMatchesSeededCtx(ctx, g, p, limit, nil)
}

// FindMatchesSeeded is FindMatches with the candidate set for the root
// pattern node (the first node in match order, RootIndex) restricted to
// seeds, tried in the given order. A nil seeds scans every node of g. The
// parallel pattern kernel partitions a filtered candidate list across
// workers and runs one seeded search per chunk.
func FindMatchesSeeded(g model.Graph, p *Pattern, limit int, seeds []model.NodeID) ([]Match, error) {
	return FindMatchesSeededCtx(context.Background(), g, p, limit, seeds)
}

// FindMatchesSeededCtx is FindMatchesSeeded with cooperative cancellation:
// the seed-and-expand search checks ctx at every assignment step of the
// backtracking recursion and returns ctx.Err() once the context is done,
// so server deadlines interrupt even a combinatorially exploding match.
func FindMatchesSeededCtx(ctx context.Context, g model.Graph, p *Pattern, limit int, seeds []model.NodeID) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(p.nodes) == 0 {
		return nil, nil
	}
	// Order pattern nodes so each (after the first) connects to an
	// already-assigned node where possible; this drives candidate
	// generation through neighborhoods instead of full scans.
	order, anchored := matchOrder(p)

	assignment := make([]model.NodeID, len(p.nodes))
	assigned := make([]bool, len(p.nodes))
	used := map[model.NodeID]bool{}
	var out []Match

	// adj[i] lists pattern edges incident to pattern node i.
	adj := make([][]int, len(p.nodes))
	for ei, e := range p.edges {
		adj[e.From] = append(adj[e.From], ei)
		adj[e.To] = append(adj[e.To], ei)
	}

	nodeOK := p.NodeMatches

	// edgesOK verifies every pattern edge whose endpoints are both
	// assigned and which involves pi.
	edgesOK := func(pi int) (bool, error) {
		for _, ei := range adj[pi] {
			e := p.edges[ei]
			if !assigned[e.From] || !assigned[e.To] {
				continue
			}
			ok, err := hasEdge(g, assignment[e.From], assignment[e.To], e.Label)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}

	var rec func(step int) error
	rec = func(step int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if limit > 0 && len(out) >= limit {
			return nil
		}
		if step == len(order) {
			m := Match{}
			for i, pn := range p.nodes {
				name := pn.Var
				if name == "" {
					name = fmt.Sprintf("_%d", i)
				}
				m[name] = assignment[i]
			}
			out = append(out, m)
			return nil
		}
		pi := order[step]
		try := func(n model.Node) error {
			if used[n.ID] || !nodeOK(pi, n) {
				return nil
			}
			assignment[pi] = n.ID
			assigned[pi] = true
			used[n.ID] = true
			ok, err := edgesOK(pi)
			if err == nil && ok {
				err = rec(step + 1)
			}
			assigned[pi] = false
			delete(used, n.ID)
			return err
		}
		if anchorEdge := anchored[pi]; anchorEdge >= 0 {
			// Generate candidates from the neighborhood of the
			// already-assigned endpoint.
			e := p.edges[anchorEdge]
			var fromID model.NodeID
			var dir model.Direction
			if e.From != pi && assigned[e.From] {
				fromID, dir = assignment[e.From], model.Out
			} else {
				fromID, dir = assignment[e.To], model.In
			}
			var cands []model.Node
			err := g.Neighbors(fromID, dir, func(de model.Edge, n model.Node) bool {
				if e.Label == "" || de.Label == e.Label {
					cands = append(cands, n)
				}
				return true
			})
			if err != nil {
				return err
			}
			for _, n := range cands {
				if err := try(n); err != nil {
					return err
				}
				if limit > 0 && len(out) >= limit {
					return nil
				}
			}
			return nil
		}
		// Root with an explicit seed list: try the seeds in order.
		if step == 0 && seeds != nil {
			for _, id := range seeds {
				n, err := g.Node(id)
				if err != nil {
					return err
				}
				if err := try(n); err != nil {
					return err
				}
				if limit > 0 && len(out) >= limit {
					return nil
				}
			}
			return nil
		}
		// Unanchored: scan all nodes.
		var scanErr error
		if err := g.Nodes(func(n model.Node) bool {
			if err := try(n); err != nil {
				scanErr = err
				return false
			}
			return !(limit > 0 && len(out) >= limit)
		}); err != nil {
			return err
		}
		return scanErr
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// matchOrder returns a visit order for pattern nodes plus, for each pattern
// node, the index of a pattern edge connecting it to an earlier node
// (-1 if none).
func matchOrder(p *Pattern) (order []int, anchored []int) {
	n := len(p.nodes)
	anchored = make([]int, n)
	for i := range anchored {
		anchored[i] = -1
	}
	placed := make([]bool, n)
	for len(order) < n {
		// Prefer a node connected to a placed node.
		pick := -1
		for ei, e := range p.edges {
			if placed[e.From] && !placed[e.To] {
				pick = e.To
				anchored[e.To] = ei
				break
			}
			if placed[e.To] && !placed[e.From] {
				pick = e.From
				anchored[e.From] = ei
				break
			}
		}
		if pick == -1 {
			for i := 0; i < n; i++ {
				if !placed[i] {
					pick = i
					break
				}
			}
		}
		placed[pick] = true
		order = append(order, pick)
	}
	return order, anchored
}

// hasEdge reports whether an edge from → to with the label exists (any label
// if label is empty).
func hasEdge(g model.Graph, from, to model.NodeID, label string) (bool, error) {
	found := false
	err := g.Neighbors(from, model.Out, func(e model.Edge, n model.Node) bool {
		if n.ID == to && (label == "" || e.Label == label) {
			found = true
			return false
		}
		return true
	})
	return found, err
}
