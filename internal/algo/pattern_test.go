package algo

import (
	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

func TestPatternValidation(t *testing.T) {
	_, err := NewPattern(
		[]PatternNode{{Var: "a"}},
		[]PatternEdge{{From: 0, To: 5}},
	)
	if err == nil {
		t.Error("out-of-range edge endpoint should fail")
	}
}

func TestPatternEmptyMatchesNothing(t *testing.T) {
	g, _ := socialGraph(t)
	p, _ := NewPattern(nil, nil)
	m, err := FindMatches(g, p, 0)
	if err != nil || len(m) != 0 {
		t.Errorf("empty pattern: %v %v", m, err)
	}
}

func TestPatternSingleNodeByLabel(t *testing.T) {
	g := memgraph.New()
	g.AddNode("Person", nil)
	g.AddNode("Person", nil)
	g.AddNode("City", nil)
	p, _ := NewPattern([]PatternNode{{Var: "x", Label: "Person"}}, nil)
	m, err := FindMatches(g, p, 0)
	if err != nil || len(m) != 2 {
		t.Errorf("matches = %v, %v", m, err)
	}
}

func TestPatternPropConstraint(t *testing.T) {
	g, ids := socialGraph(t)
	p, _ := NewPattern([]PatternNode{{Var: "x", Props: model.Props("name", "bob")}}, nil)
	m, err := FindMatches(g, p, 0)
	if err != nil || len(m) != 1 || m[0]["x"] != ids["bob"] {
		t.Errorf("matches = %v, %v", m, err)
	}
}

func TestPatternEdge(t *testing.T) {
	g, ids := socialGraph(t)
	p, _ := NewPattern(
		[]PatternNode{{Var: "a"}, {Var: "b"}},
		[]PatternEdge{{From: 0, To: 1, Label: "knows"}},
	)
	m, err := FindMatches(g, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("knows matches = %d: %v", len(m), m)
	}
	want := map[model.NodeID]model.NodeID{ids["ada"]: ids["bob"], ids["bob"]: ids["cam"]}
	for _, match := range m {
		if want[match["a"]] != match["b"] {
			t.Errorf("unexpected match %v", match)
		}
	}
}

func TestPatternTriangleInjective(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("N", nil)
	b, _ := g.AddNode("N", nil)
	c, _ := g.AddNode("N", nil)
	g.AddEdge("e", a, b, nil)
	g.AddEdge("e", b, c, nil)
	g.AddEdge("e", c, a, nil)
	p, _ := NewPattern(
		[]PatternNode{{Var: "x"}, {Var: "y"}, {Var: "z"}},
		[]PatternEdge{{From: 0, To: 1, Label: "e"}, {From: 1, To: 2, Label: "e"}, {From: 2, To: 0, Label: "e"}},
	)
	m, err := FindMatches(g, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Directed triangle has 3 rotations.
	if len(m) != 3 {
		t.Errorf("triangle matches = %d", len(m))
	}
	for _, match := range m {
		if match["x"] == match["y"] || match["y"] == match["z"] || match["x"] == match["z"] {
			t.Errorf("non-injective match %v", match)
		}
	}
}

func TestPatternNoSelfMatchOnTwoCycle(t *testing.T) {
	// a <-> b: pattern x->y->x must not map x and y to the same node.
	g := memgraph.New()
	a, _ := g.AddNode("N", nil)
	b, _ := g.AddNode("N", nil)
	g.AddEdge("e", a, b, nil)
	g.AddEdge("e", b, a, nil)
	p, _ := NewPattern(
		[]PatternNode{{Var: "x"}, {Var: "y"}},
		[]PatternEdge{{From: 0, To: 1}, {From: 1, To: 0}},
	)
	m, err := FindMatches(g, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Errorf("2-cycle matches = %d", len(m))
	}
}

func TestPatternLimit(t *testing.T) {
	g := memgraph.New()
	hub, _ := g.AddNode("Hub", nil)
	for i := 0; i < 10; i++ {
		leaf, _ := g.AddNode("Leaf", nil)
		g.AddEdge("spoke", hub, leaf, nil)
	}
	p, _ := NewPattern(
		[]PatternNode{{Var: "h", Label: "Hub"}, {Var: "l", Label: "Leaf"}},
		[]PatternEdge{{From: 0, To: 1, Label: "spoke"}},
	)
	m, err := FindMatches(g, p, 3)
	if err != nil || len(m) != 3 {
		t.Errorf("limited matches = %d, %v", len(m), err)
	}
}

func TestPatternDisconnectedComponents(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("A", nil)
	b, _ := g.AddNode("B", nil)
	_ = a
	_ = b
	p, _ := NewPattern([]PatternNode{{Var: "x", Label: "A"}, {Var: "y", Label: "B"}}, nil)
	m, err := FindMatches(g, p, 0)
	if err != nil || len(m) != 1 {
		t.Errorf("cross product match = %v, %v", m, err)
	}
}

func TestPatternAnonymousVars(t *testing.T) {
	g, _ := socialGraph(t)
	p, _ := NewPattern(
		[]PatternNode{{}, {}},
		[]PatternEdge{{From: 0, To: 1, Label: "works"}},
	)
	m, err := FindMatches(g, p, 0)
	if err != nil || len(m) != 2 {
		t.Fatalf("matches = %v %v", m, err)
	}
	if _, ok := m[0]["_0"]; !ok {
		t.Error("anonymous var _0 missing")
	}
}
