package algo

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"gdbm/internal/model"
)

// Path is a node sequence with the edges that join consecutive nodes;
// len(Edges) == len(Nodes)-1.
type Path struct {
	Nodes []model.NodeID
	Edges []model.EdgeID
}

// Len returns the path length in edges.
func (p Path) Len() int { return len(p.Edges) }

// Reachable reports whether to can be reached from from following dir.
func Reachable(g model.Graph, from, to model.NodeID, dir model.Direction) (bool, error) {
	return ReachableCtx(context.Background(), g, from, to, dir)
}

// ReachableCtx is Reachable with cooperative cancellation through the
// underlying BFS.
func ReachableCtx(ctx context.Context, g model.Graph, from, to model.NodeID, dir model.Direction) (bool, error) {
	if from == to {
		if _, err := g.Node(from); err != nil {
			return false, err
		}
		return true, nil
	}
	found := false
	err := BFSCtx(ctx, g, from, dir, func(id model.NodeID, _ int) bool {
		if id == to {
			found = true
			return false
		}
		return true
	})
	return found, err
}

// FixedLengthPaths returns every simple path from from to to with exactly
// length edges, up to limit paths (0 = unlimited). Paths are simple: no node
// repeats.
func FixedLengthPaths(g model.Graph, from, to model.NodeID, length int, dir model.Direction, limit int) ([]Path, error) {
	return FixedLengthPathsCtx(context.Background(), g, from, to, length, dir, limit)
}

// FixedLengthPathsCtx is FixedLengthPaths with cooperative cancellation:
// the backtracking enumeration checks ctx at every expansion step and
// returns ctx.Err() once the context is done.
func FixedLengthPathsCtx(ctx context.Context, g model.Graph, from, to model.NodeID, length int, dir model.Direction, limit int) ([]Path, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, err := g.Node(from); err != nil {
		return nil, err
	}
	if _, err := g.Node(to); err != nil {
		return nil, err
	}
	var out []Path
	onPath := map[model.NodeID]bool{from: true}
	cur := Path{Nodes: []model.NodeID{from}}
	var dfs func(at model.NodeID, remaining int) error
	dfs = func(at model.NodeID, remaining int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if limit > 0 && len(out) >= limit {
			return nil
		}
		if remaining == 0 {
			if at == to {
				cp := Path{
					Nodes: append([]model.NodeID(nil), cur.Nodes...),
					Edges: append([]model.EdgeID(nil), cur.Edges...),
				}
				out = append(out, cp)
			}
			return nil
		}
		var steps []struct {
			e model.Edge
			n model.Node
		}
		err := g.Neighbors(at, dir, func(e model.Edge, n model.Node) bool {
			steps = append(steps, struct {
				e model.Edge
				n model.Node
			}{e, n})
			return true
		})
		if err != nil {
			return err
		}
		for _, s := range steps {
			if onPath[s.n.ID] {
				continue
			}
			onPath[s.n.ID] = true
			cur.Nodes = append(cur.Nodes, s.n.ID)
			cur.Edges = append(cur.Edges, s.e.ID)
			if err := dfs(s.n.ID, remaining-1); err != nil {
				return err
			}
			cur.Nodes = cur.Nodes[:len(cur.Nodes)-1]
			cur.Edges = cur.Edges[:len(cur.Edges)-1]
			delete(onPath, s.n.ID)
		}
		return nil
	}
	if err := dfs(from, length); err != nil {
		return nil, err
	}
	return out, nil
}

// ShortestPath returns a minimum-hop path from from to to, or ErrNotFound if
// none exists.
func ShortestPath(g model.Graph, from, to model.NodeID, dir model.Direction) (Path, error) {
	return ShortestPathCtx(context.Background(), g, from, to, dir)
}

// ShortestPathCtx is ShortestPath with cooperative cancellation: the BFS
// expansion checks ctx as it dequeues and returns ctx.Err() once the
// context is done.
func ShortestPathCtx(ctx context.Context, g model.Graph, from, to model.NodeID, dir model.Direction) (Path, error) {
	if err := ctx.Err(); err != nil {
		return Path{}, err
	}
	if _, err := g.Node(from); err != nil {
		return Path{}, err
	}
	if _, err := g.Node(to); err != nil {
		return Path{}, err
	}
	if from == to {
		return Path{Nodes: []model.NodeID{from}}, nil
	}
	parent := map[model.NodeID]parentHop{from: {}}
	queue := []model.NodeID{from}
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return Path{}, err
		}
		cur := queue[0]
		queue = queue[1:]
		var reached bool
		err := g.Neighbors(cur, dir, func(e model.Edge, n model.Node) bool {
			if _, seen := parent[n.ID]; seen {
				return true
			}
			parent[n.ID] = parentHop{cur, e.ID}
			if n.ID == to {
				reached = true
				return false
			}
			queue = append(queue, n.ID)
			return true
		})
		if err != nil {
			return Path{}, err
		}
		if reached {
			return assemble(parent, from, to), nil
		}
	}
	return Path{}, fmt.Errorf("no path from %d to %d: %w", from, to, model.ErrNotFound)
}

// parentHop records how a node was first reached during a search.
type parentHop struct {
	prev model.NodeID
	edge model.EdgeID
}

func assemble(parent map[model.NodeID]parentHop, from, to model.NodeID) Path {
	var revNodes []model.NodeID
	var revEdges []model.EdgeID
	for at := to; ; {
		revNodes = append(revNodes, at)
		if at == from {
			break
		}
		h := parent[at]
		revEdges = append(revEdges, h.edge)
		at = h.prev
	}
	p := Path{}
	for i := len(revNodes) - 1; i >= 0; i-- {
		p.Nodes = append(p.Nodes, revNodes[i])
	}
	for i := len(revEdges) - 1; i >= 0; i-- {
		p.Edges = append(p.Edges, revEdges[i])
	}
	return p
}

// WeightedShortestPath runs Dijkstra using the named edge property as a
// non-negative weight (missing property = weight 1). It returns the path and
// its total weight.
func WeightedShortestPath(g model.Graph, from, to model.NodeID, weightProp string, dir model.Direction) (Path, float64, error) {
	if _, err := g.Node(from); err != nil {
		return Path{}, 0, err
	}
	if _, err := g.Node(to); err != nil {
		return Path{}, 0, err
	}
	dist := map[model.NodeID]float64{from: 0}
	parent := map[model.NodeID]parentHop{from: {}}
	done := map[model.NodeID]bool{}
	pq := &nodeHeap{{id: from, dist: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeDist)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		if cur.id == to {
			return assemble(parent, from, to), cur.dist, nil
		}
		err := g.Neighbors(cur.id, dir, func(e model.Edge, n model.Node) bool {
			w := 1.0
			if f, ok := e.Props.Get(weightProp).AsFloat(); ok {
				w = f
			}
			if w < 0 {
				w = 0
			}
			nd := cur.dist + w
			if old, seen := dist[n.ID]; !seen || nd < old {
				dist[n.ID] = nd
				parent[n.ID] = parentHop{cur.id, e.ID}
				heap.Push(pq, nodeDist{id: n.ID, dist: nd})
			}
			return true
		})
		if err != nil {
			return Path{}, 0, err
		}
	}
	return Path{}, math.Inf(1), fmt.Errorf("no path from %d to %d: %w", from, to, model.ErrNotFound)
}

type nodeDist struct {
	id   model.NodeID
	dist float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
