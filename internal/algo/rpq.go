package algo

import (
	"fmt"
	"sort"
	"strings"

	"gdbm/internal/model"
)

// Regular path queries ("regular simple paths" in the survey) match paths
// whose edge-label word belongs to a regular language. The expression syntax
// over edge labels is:
//
//	knows                 a single label
//	a/b                   concatenation
//	a|b                   alternation
//	a*  a+  a?            closure, plus, option
//	<a                    traverse label a against edge direction
//	(a|b)/c               grouping
//
// Expressions compile to a Thompson NFA; evaluation runs a BFS over the
// product of the graph and the automaton, which avoids enumerating paths
// (the naive strategy the ablation bench compares against).

// nfa states are numbered; transitions carry a label ("" = epsilon) and a
// direction flag.
type nfaEdge struct {
	label   string
	inverse bool
	to      int
	eps     bool
}

type nfa struct {
	edges [][]nfaEdge
	start int
	final int
}

func (a *nfa) newState() int {
	a.edges = append(a.edges, nil)
	return len(a.edges) - 1
}

func (a *nfa) addEps(from, to int) {
	a.edges[from] = append(a.edges[from], nfaEdge{eps: true, to: to})
}

func (a *nfa) addLabel(from, to int, label string, inverse bool) {
	a.edges[from] = append(a.edges[from], nfaEdge{label: label, inverse: inverse, to: to})
}

// fragment is a partial automaton with one entry and one exit state.
type fragment struct{ in, out int }

// PathExpr is a compiled regular path expression.
type PathExpr struct {
	a      *nfa
	source string
}

// String returns the original expression text.
func (p *PathExpr) String() string { return p.source }

// CompilePathExpr parses and compiles a regular path expression.
func CompilePathExpr(expr string) (*PathExpr, error) {
	p := &rpqParser{input: expr, a: &nfa{}}
	frag, err := p.parseAlternation()
	if err != nil {
		return nil, fmt.Errorf("path expression %q: %w", expr, err)
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("path expression %q: unexpected %q at offset %d", expr, p.input[p.pos], p.pos)
	}
	p.a.start = frag.in
	p.a.final = frag.out
	return &PathExpr{a: p.a, source: expr}, nil
}

type rpqParser struct {
	input string
	pos   int
	a     *nfa
}

func (p *rpqParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *rpqParser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

// alternation := concat ('|' concat)*
func (p *rpqParser) parseAlternation() (fragment, error) {
	first, err := p.parseConcat()
	if err != nil {
		return fragment{}, err
	}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			return first, nil
		}
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return fragment{}, err
		}
		in, out := p.a.newState(), p.a.newState()
		p.a.addEps(in, first.in)
		p.a.addEps(in, next.in)
		p.a.addEps(first.out, out)
		p.a.addEps(next.out, out)
		first = fragment{in, out}
	}
}

// concat := unary ('/' unary)*
func (p *rpqParser) parseConcat() (fragment, error) {
	first, err := p.parseUnary()
	if err != nil {
		return fragment{}, err
	}
	for {
		p.skipSpace()
		if p.peek() != '/' {
			return first, nil
		}
		p.pos++
		next, err := p.parseUnary()
		if err != nil {
			return fragment{}, err
		}
		p.a.addEps(first.out, next.in)
		first = fragment{first.in, next.out}
	}
}

// unary := atom ('*' | '+' | '?')?
func (p *rpqParser) parseUnary() (fragment, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return fragment{}, err
	}
	p.skipSpace()
	switch p.peek() {
	case '*':
		p.pos++
		in, out := p.a.newState(), p.a.newState()
		p.a.addEps(in, atom.in)
		p.a.addEps(in, out)
		p.a.addEps(atom.out, atom.in)
		p.a.addEps(atom.out, out)
		return fragment{in, out}, nil
	case '+':
		p.pos++
		in, out := p.a.newState(), p.a.newState()
		p.a.addEps(in, atom.in)
		p.a.addEps(atom.out, atom.in)
		p.a.addEps(atom.out, out)
		return fragment{in, out}, nil
	case '?':
		p.pos++
		in, out := p.a.newState(), p.a.newState()
		p.a.addEps(in, atom.in)
		p.a.addEps(in, out)
		p.a.addEps(atom.out, out)
		return fragment{in, out}, nil
	}
	return atom, nil
}

// atom := '(' alternation ')' | '<'? label
func (p *rpqParser) parseAtom() (fragment, error) {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		frag, err := p.parseAlternation()
		if err != nil {
			return fragment{}, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return fragment{}, fmt.Errorf("missing ')' at offset %d", p.pos)
		}
		p.pos++
		return frag, nil
	}
	inverse := false
	if p.peek() == '<' {
		inverse = true
		p.pos++
	}
	start := p.pos
	for p.pos < len(p.input) && !strings.ContainsRune("|/*+?()< \t", rune(p.input[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return fragment{}, fmt.Errorf("expected a label at offset %d", p.pos)
	}
	label := p.input[start:p.pos]
	in, out := p.a.newState(), p.a.newState()
	p.a.addLabel(in, out, label, inverse)
	return fragment{in, out}, nil
}

// PathTransition is one exported automaton transition, used by external
// evaluators (the parallel product-graph kernel in internal/algo/par).
// Eps transitions consume no edge; non-eps transitions consume one edge
// whose label equals Label, traversed against direction when Inverse.
type PathTransition struct {
	Label   string
	Inverse bool
	To      int
	Eps     bool
}

// NumStates returns the number of automaton states.
func (p *PathExpr) NumStates() int { return len(p.a.edges) }

// StartState returns the automaton's start state.
func (p *PathExpr) StartState() int { return p.a.start }

// FinalState returns the automaton's accepting state.
func (p *PathExpr) FinalState() int { return p.a.final }

// Transitions returns the outgoing transitions of a state.
func (p *PathExpr) Transitions(state int) []PathTransition {
	out := make([]PathTransition, 0, len(p.a.edges[state]))
	for _, e := range p.a.edges[state] {
		out = append(out, PathTransition{Label: e.label, Inverse: e.inverse, To: e.to, Eps: e.eps})
	}
	return out
}

// productState pairs a graph node with an automaton state.
type productState struct {
	node  model.NodeID
	state int
}

// sortedStates returns the states of a set in ascending order, so product
// searches expand automaton states in a deterministic order regardless of
// map iteration.
func sortedStates(states map[int]bool) []int {
	out := make([]int, 0, len(states))
	for s := range states {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// epsClosure expands a set of automaton states through epsilon edges.
func (a *nfa) epsClosure(states map[int]bool) {
	stack := make([]int, 0, len(states))
	for s := range states {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range a.edges[s] {
			if e.eps && !states[e.to] {
				states[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
}

// Eval returns every node reachable from start by a path whose label word
// matches the expression. It runs BFS on the product graph; each
// (node, state) pair is visited once, so the cost is O(|V|·|Q| + |E|·|Q|).
// Automaton states are expanded in ascending order, so the result order is
// deterministic whenever the graph's Neighbors order is.
func (p *PathExpr) Eval(g model.Graph, start model.NodeID) ([]model.NodeID, error) {
	if _, err := g.Node(start); err != nil {
		return nil, err
	}
	a := p.a
	startSet := map[int]bool{a.start: true}
	a.epsClosure(startSet)

	visited := map[productState]bool{}
	var queue []productState
	push := func(n model.NodeID, states map[int]bool) {
		for _, s := range sortedStates(states) {
			ps := productState{n, s}
			if !visited[ps] {
				visited[ps] = true
				queue = append(queue, ps)
			}
		}
	}
	push(start, startSet)

	resultSet := map[model.NodeID]bool{}
	var results []model.NodeID
	accept := func(n model.NodeID, s int) {
		if s == a.final && !resultSet[n] {
			resultSet[n] = true
			results = append(results, n)
		}
	}
	for _, ps := range queue {
		accept(ps.node, ps.state)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ae := range a.edges[cur.state] {
			if ae.eps {
				continue
			}
			dir := model.Out
			if ae.inverse {
				dir = model.In
			}
			err := g.Neighbors(cur.node, dir, func(e model.Edge, n model.Node) bool {
				if e.Label != ae.label {
					return true
				}
				next := map[int]bool{ae.to: true}
				a.epsClosure(next)
				for _, s := range sortedStates(next) {
					ps := productState{n.ID, s}
					if !visited[ps] {
						visited[ps] = true
						queue = append(queue, ps)
						accept(n.ID, s)
					}
				}
				return true
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return results, nil
}

// Matches reports whether some matching path connects from and to.
func (p *PathExpr) Matches(g model.Graph, from, to model.NodeID) (bool, error) {
	nodes, err := p.Eval(g, from)
	if err != nil {
		return false, err
	}
	for _, n := range nodes {
		if n == to {
			return true, nil
		}
	}
	return false, nil
}

// EvalNaive answers the query by enumerating simple paths up to maxDepth and
// testing each word against the automaton. This is the *simple-path*
// semantics the survey notes is NP-complete; Eval uses the tractable
// reachability semantics. On acyclic graphs (or when no matching path needs
// to revisit a node) the two agree, which the tests exploit; EvalNaive is
// also the baseline for BenchmarkAblationRPQ.
func (p *PathExpr) EvalNaive(g model.Graph, start model.NodeID, maxDepth int) ([]model.NodeID, error) {
	if _, err := g.Node(start); err != nil {
		return nil, err
	}
	resultSet := map[model.NodeID]bool{}
	var results []model.NodeID
	var word []struct {
		label   string
		inverse bool
	}
	onPath := map[model.NodeID]bool{start: true}
	var dfs func(at model.NodeID, depth int) error
	check := func(n model.NodeID) {
		if !resultSet[n] && p.accepts(word) {
			resultSet[n] = true
			results = append(results, n)
		}
	}
	dfs = func(at model.NodeID, depth int) error {
		check(at)
		if depth == maxDepth {
			return nil
		}
		for _, dirCase := range []struct {
			dir model.Direction
			inv bool
		}{{model.Out, false}, {model.In, true}} {
			var steps []struct {
				label string
				node  model.NodeID
			}
			err := g.Neighbors(at, dirCase.dir, func(e model.Edge, n model.Node) bool {
				steps = append(steps, struct {
					label string
					node  model.NodeID
				}{e.Label, n.ID})
				return true
			})
			if err != nil {
				return err
			}
			for _, s := range steps {
				if onPath[s.node] {
					continue
				}
				onPath[s.node] = true
				word = append(word, struct {
					label   string
					inverse bool
				}{s.label, dirCase.inv})
				if err := dfs(s.node, depth+1); err != nil {
					return err
				}
				word = word[:len(word)-1]
				delete(onPath, s.node)
			}
		}
		return nil
	}
	if err := dfs(start, 0); err != nil {
		return nil, err
	}
	return results, nil
}

func (p *PathExpr) accepts(word []struct {
	label   string
	inverse bool
}) bool {
	states := map[int]bool{p.a.start: true}
	p.a.epsClosure(states)
	for _, sym := range word {
		next := map[int]bool{}
		for s := range states {
			for _, e := range p.a.edges[s] {
				if !e.eps && e.label == sym.label && e.inverse == sym.inverse {
					next[e.to] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		p.a.epsClosure(next)
		states = next
	}
	return states[p.a.final]
}
