package algo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

// randomDAG builds an acyclic graph: edges only go from lower to higher
// node index, labels drawn from {a, b, c}.
func randomDAG(rng *rand.Rand, n, m int) (*memgraph.Graph, []model.NodeID) {
	g := memgraph.New()
	ids := make([]model.NodeID, n)
	for i := range ids {
		ids[i], _ = g.AddNode("V", nil)
	}
	labels := []string{"a", "b", "c"}
	for i := 0; i < m; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		g.AddEdge(labels[rng.Intn(len(labels))], ids[u], ids[v], nil)
	}
	return g, ids
}

// randomExpr produces a small random path expression over {a, b, c}.
func randomExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		return []string{"a", "b", "c"}[rng.Intn(3)]
	}
	switch rng.Intn(5) {
	case 0:
		return randomExpr(rng, depth-1) + "/" + randomExpr(rng, depth-1)
	case 1:
		return "(" + randomExpr(rng, depth-1) + "|" + randomExpr(rng, depth-1) + ")"
	case 2:
		return "(" + randomExpr(rng, depth-1) + ")*"
	case 3:
		return "(" + randomExpr(rng, depth-1) + ")?"
	default:
		return []string{"a", "b", "c"}[rng.Intn(3)]
	}
}

// Property: on acyclic graphs the product-automaton evaluation and the
// naive simple-path evaluation agree for arbitrary expressions (every
// matching path in a DAG is simple).
func TestRPQProductVsNaiveOnRandomDAGsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ids := randomDAG(rng, 8+rng.Intn(6), 10+rng.Intn(15))
		expr := randomExpr(rng, 2)
		pe, err := CompilePathExpr(expr)
		if err != nil {
			t.Fatalf("compile %q: %v", expr, err)
		}
		start := ids[rng.Intn(len(ids))]
		fast, err := pe.Eval(g, start)
		if err != nil {
			t.Fatalf("eval %q: %v", expr, err)
		}
		slow, err := pe.EvalNaive(g, start, 14)
		if err != nil {
			t.Fatalf("naive %q: %v", expr, err)
		}
		fs := map[model.NodeID]bool{}
		for _, n := range fast {
			fs[n] = true
		}
		ss := map[model.NodeID]bool{}
		for _, n := range slow {
			ss[n] = true
		}
		if len(fs) != len(ss) {
			t.Logf("seed %d expr %q start %d: product=%v naive=%v", seed, expr, start, fast, slow)
			return false
		}
		for n := range fs {
			if !ss[n] {
				t.Logf("seed %d expr %q: product-only node %d", seed, expr, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eval results are closed under the automaton semantics — every
// returned node is reachable, and the start node is returned iff the
// expression accepts the empty word.
func TestRPQResultsReachableQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ids := randomDAG(rng, 10, 20)
		pe, err := CompilePathExpr(randomExpr(rng, 2))
		if err != nil {
			return false
		}
		start := ids[rng.Intn(len(ids))]
		nodes, err := pe.Eval(g, start)
		if err != nil {
			return false
		}
		for _, n := range nodes {
			ok, err := Reachable(g, start, n, model.Out)
			if err != nil || (!ok && n != start) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The naive evaluator's EvalNaive explores inverse edges too; confirm it
// stays consistent when inverse labels appear.
func TestRPQInverseOnDAG(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("V", nil)
	b, _ := g.AddNode("V", nil)
	c, _ := g.AddNode("V", nil)
	g.AddEdge("a", a, b, nil)
	g.AddEdge("a", c, b, nil)
	pe, err := CompilePathExpr("a/<a")
	if err != nil {
		t.Fatal(err)
	}
	fast, _ := pe.Eval(g, a)
	// Reachability semantics: a -a-> b <-a- c, plus the degenerate return
	// to a itself.
	set := map[model.NodeID]bool{}
	for _, n := range fast {
		set[n] = true
	}
	if !set[c] {
		t.Errorf("product missed sibling node: %v", fast)
	}
	slow, _ := pe.EvalNaive(g, a, 6)
	sset := map[model.NodeID]bool{}
	for _, n := range slow {
		sset[n] = true
	}
	if !sset[c] {
		t.Errorf("naive missed sibling node: %v", slow)
	}
	// Simple-path semantics excludes the return to a; reachability allows it.
	if sset[a] {
		t.Errorf("naive should not revisit the start: %v", slow)
	}
	if !set[a] {
		t.Errorf("product should include the start via a/<a: %v", fast)
	}
}
