package algo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gdbm/internal/algo/algotest"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

// The DAG and expression generators live in algotest so the parallel-kernel
// equivalence properties (internal/algo/par) can reuse them.
var (
	randomDAG  = algotest.RandomDAG
	randomExpr = algotest.RandomExpr
)

// Property: on acyclic graphs the product-automaton evaluation and the
// naive simple-path evaluation agree for arbitrary expressions (every
// matching path in a DAG is simple).
func TestRPQProductVsNaiveOnRandomDAGsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ids := randomDAG(rng, 8+rng.Intn(6), 10+rng.Intn(15))
		expr := randomExpr(rng, 2)
		pe, err := CompilePathExpr(expr)
		if err != nil {
			t.Fatalf("compile %q: %v", expr, err)
		}
		start := ids[rng.Intn(len(ids))]
		fast, err := pe.Eval(g, start)
		if err != nil {
			t.Fatalf("eval %q: %v", expr, err)
		}
		slow, err := pe.EvalNaive(g, start, 14)
		if err != nil {
			t.Fatalf("naive %q: %v", expr, err)
		}
		fs := map[model.NodeID]bool{}
		for _, n := range fast {
			fs[n] = true
		}
		ss := map[model.NodeID]bool{}
		for _, n := range slow {
			ss[n] = true
		}
		if len(fs) != len(ss) {
			t.Logf("seed %d expr %q start %d: product=%v naive=%v", seed, expr, start, fast, slow)
			return false
		}
		for n := range fs {
			if !ss[n] {
				t.Logf("seed %d expr %q: product-only node %d", seed, expr, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eval results are closed under the automaton semantics — every
// returned node is reachable, and the start node is returned iff the
// expression accepts the empty word.
func TestRPQResultsReachableQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ids := randomDAG(rng, 10, 20)
		pe, err := CompilePathExpr(randomExpr(rng, 2))
		if err != nil {
			return false
		}
		start := ids[rng.Intn(len(ids))]
		nodes, err := pe.Eval(g, start)
		if err != nil {
			return false
		}
		for _, n := range nodes {
			ok, err := Reachable(g, start, n, model.Out)
			if err != nil || (!ok && n != start) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The naive evaluator's EvalNaive explores inverse edges too; confirm it
// stays consistent when inverse labels appear.
func TestRPQInverseOnDAG(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("V", nil)
	b, _ := g.AddNode("V", nil)
	c, _ := g.AddNode("V", nil)
	g.AddEdge("a", a, b, nil)
	g.AddEdge("a", c, b, nil)
	pe, err := CompilePathExpr("a/<a")
	if err != nil {
		t.Fatal(err)
	}
	fast, _ := pe.Eval(g, a)
	// Reachability semantics: a -a-> b <-a- c, plus the degenerate return
	// to a itself.
	set := map[model.NodeID]bool{}
	for _, n := range fast {
		set[n] = true
	}
	if !set[c] {
		t.Errorf("product missed sibling node: %v", fast)
	}
	slow, _ := pe.EvalNaive(g, a, 6)
	sset := map[model.NodeID]bool{}
	for _, n := range slow {
		sset[n] = true
	}
	if !sset[c] {
		t.Errorf("naive missed sibling node: %v", slow)
	}
	// Simple-path semantics excludes the return to a; reachability allows it.
	if sset[a] {
		t.Errorf("naive should not revisit the start: %v", slow)
	}
	if !set[a] {
		t.Errorf("product should include the start via a/<a: %v", fast)
	}
}
