package algo

import (
	"testing"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

// socialGraph: ada -knows-> bob -knows-> cam; ada -works-> org; cam -works-> org.
func socialGraph(t *testing.T) (*memgraph.Graph, map[string]model.NodeID) {
	t.Helper()
	g := memgraph.New()
	ids := map[string]model.NodeID{}
	for _, n := range []string{"ada", "bob", "cam", "org"} {
		id, _ := g.AddNode("P", model.Props("name", n))
		ids[n] = id
	}
	g.AddEdge("knows", ids["ada"], ids["bob"], nil)
	g.AddEdge("knows", ids["bob"], ids["cam"], nil)
	g.AddEdge("works", ids["ada"], ids["org"], nil)
	g.AddEdge("works", ids["cam"], ids["org"], nil)
	return g, ids
}

func evalSet(t *testing.T, g model.Graph, start model.NodeID, expr string) map[model.NodeID]bool {
	t.Helper()
	pe, err := CompilePathExpr(expr)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	nodes, err := pe.Eval(g, start)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	set := map[model.NodeID]bool{}
	for _, n := range nodes {
		set[n] = true
	}
	return set
}

func TestRPQSingleLabel(t *testing.T) {
	g, ids := socialGraph(t)
	got := evalSet(t, g, ids["ada"], "knows")
	if len(got) != 1 || !got[ids["bob"]] {
		t.Errorf("knows from ada = %v", got)
	}
}

func TestRPQConcat(t *testing.T) {
	g, ids := socialGraph(t)
	got := evalSet(t, g, ids["ada"], "knows/knows")
	if len(got) != 1 || !got[ids["cam"]] {
		t.Errorf("knows/knows = %v", got)
	}
}

func TestRPQAlternation(t *testing.T) {
	g, ids := socialGraph(t)
	got := evalSet(t, g, ids["ada"], "knows|works")
	if len(got) != 2 || !got[ids["bob"]] || !got[ids["org"]] {
		t.Errorf("knows|works = %v", got)
	}
}

func TestRPQStar(t *testing.T) {
	g, ids := socialGraph(t)
	got := evalSet(t, g, ids["ada"], "knows*")
	// Star includes the empty word: ada itself.
	if len(got) != 3 || !got[ids["ada"]] || !got[ids["bob"]] || !got[ids["cam"]] {
		t.Errorf("knows* = %v", got)
	}
}

func TestRPQPlusOption(t *testing.T) {
	g, ids := socialGraph(t)
	plus := evalSet(t, g, ids["ada"], "knows+")
	if plus[ids["ada"]] || len(plus) != 2 {
		t.Errorf("knows+ = %v", plus)
	}
	opt := evalSet(t, g, ids["ada"], "knows?")
	if len(opt) != 2 || !opt[ids["ada"]] || !opt[ids["bob"]] {
		t.Errorf("knows? = %v", opt)
	}
}

func TestRPQInverse(t *testing.T) {
	g, ids := socialGraph(t)
	// Colleagues of ada: works then inverse works.
	got := evalSet(t, g, ids["ada"], "works/<works")
	if !got[ids["cam"]] || !got[ids["ada"]] {
		t.Errorf("works/<works = %v", got)
	}
}

func TestRPQGroupingAndCycle(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("N", nil)
	b, _ := g.AddNode("N", nil)
	g.AddEdge("x", a, b, nil)
	g.AddEdge("y", b, a, nil)
	pe, err := CompilePathExpr("(x/y)*")
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := pe.Eval(g, a)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle closure terminates and returns exactly {a}.
	if len(nodes) != 1 || nodes[0] != a {
		t.Errorf("(x/y)* from a = %v", nodes)
	}
	// x/(y/x)* reaches b.
	pe2, _ := CompilePathExpr("x/(y/x)*")
	nodes2, _ := pe2.Eval(g, a)
	if len(nodes2) != 1 || nodes2[0] != b {
		t.Errorf("x/(y/x)* = %v", nodes2)
	}
}

func TestRPQParseErrors(t *testing.T) {
	for _, expr := range []string{"", "(a", "a|", "a/", "*", "a)b", "<"} {
		if _, err := CompilePathExpr(expr); err == nil {
			t.Errorf("compile %q should fail", expr)
		}
	}
}

func TestRPQMatches(t *testing.T) {
	g, ids := socialGraph(t)
	pe, _ := CompilePathExpr("knows/knows")
	ok, err := pe.Matches(g, ids["ada"], ids["cam"])
	if err != nil || !ok {
		t.Errorf("matches ada->cam: %v %v", ok, err)
	}
	ok, _ = pe.Matches(g, ids["ada"], ids["bob"])
	if ok {
		t.Error("ada->bob should not match knows/knows")
	}
}

func TestRPQMissingStart(t *testing.T) {
	g, _ := socialGraph(t)
	pe, _ := CompilePathExpr("knows")
	if _, err := pe.Eval(g, 999); err == nil {
		t.Error("missing start should error")
	}
	if _, err := pe.EvalNaive(g, 999, 3); err == nil {
		t.Error("naive missing start should error")
	}
}

// On an acyclic graph the product-automaton and naive simple-path semantics
// agree; use that for differential testing.
func TestRPQProductVsNaive(t *testing.T) {
	g, ids := socialGraph(t)
	// "works/<works" is excluded: its match revisits the start node, which
	// the simple-path semantics forbids but reachability semantics allows.
	for _, expr := range []string{"knows", "knows/knows", "knows|works", "knows*", "knows+", "knows?/works"} {
		pe, err := CompilePathExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := pe.Eval(g, ids["ada"])
		if err != nil {
			t.Fatal(err)
		}
		slow, err := pe.EvalNaive(g, ids["ada"], 6)
		if err != nil {
			t.Fatal(err)
		}
		fs, ss := map[model.NodeID]bool{}, map[model.NodeID]bool{}
		for _, n := range fast {
			fs[n] = true
		}
		for _, n := range slow {
			ss[n] = true
		}
		if len(fs) != len(ss) {
			t.Errorf("%q: product %v vs naive %v", expr, fast, slow)
			continue
		}
		for n := range fs {
			if !ss[n] {
				t.Errorf("%q: product has %d, naive does not", expr, n)
			}
		}
	}
}

func TestRPQStringRoundTrip(t *testing.T) {
	pe, _ := CompilePathExpr("a/(b|c)*")
	if pe.String() != "a/(b|c)*" {
		t.Errorf("String() = %q", pe.String())
	}
}
