package algo

import (
	"context"
	"fmt"
	"math"

	"gdbm/internal/model"
)

// Summarization queries (Section IV.4): aggregate functions over query
// results and functions computing properties of the graph and its elements —
// order, degree statistics, path length, node distance and diameter.

// DegreeStats summarizes the degree distribution in a direction.
type DegreeStats struct {
	Min, Max int
	Avg      float64
}

// Degrees computes min/max/average degree over all nodes.
func Degrees(g model.Graph, dir model.Direction) (DegreeStats, error) {
	stats := DegreeStats{Min: math.MaxInt}
	n := 0
	var iterErr error
	err := g.Nodes(func(node model.Node) bool {
		d, err := g.Degree(node.ID, dir)
		if err != nil {
			iterErr = err
			return false
		}
		if d < stats.Min {
			stats.Min = d
		}
		if d > stats.Max {
			stats.Max = d
		}
		stats.Avg += float64(d)
		n++
		return true
	})
	if err != nil {
		return DegreeStats{}, err
	}
	if iterErr != nil {
		return DegreeStats{}, iterErr
	}
	if n == 0 {
		return DegreeStats{}, nil
	}
	stats.Avg /= float64(n)
	return stats, nil
}

// Distance returns the length of a shortest path between two nodes, or -1
// and ErrNotFound if disconnected.
func Distance(g model.Graph, a, b model.NodeID, dir model.Direction) (int, error) {
	return DistanceCtx(context.Background(), g, a, b, dir)
}

// DistanceCtx is Distance with cooperative cancellation through the
// underlying shortest-path search.
func DistanceCtx(ctx context.Context, g model.Graph, a, b model.NodeID, dir model.Direction) (int, error) {
	p, err := ShortestPathCtx(ctx, g, a, b, dir)
	if err != nil {
		return -1, err
	}
	return p.Len(), nil
}

// Eccentricity returns the greatest distance from start to any reachable
// node.
func Eccentricity(g model.Graph, start model.NodeID, dir model.Direction) (int, error) {
	return eccentricityCtx(context.Background(), g, start, dir)
}

func eccentricityCtx(ctx context.Context, g model.Graph, start model.NodeID, dir model.Direction) (int, error) {
	max := 0
	err := BFSCtx(ctx, g, start, dir, func(_ model.NodeID, depth int) bool {
		if depth > max {
			max = depth
		}
		return true
	})
	return max, err
}

// Diameter returns the greatest distance between any two connected nodes
// (the survey's definition), computed by BFS from every node. O(V·(V+E)).
func Diameter(g model.Graph, dir model.Direction) (int, error) {
	return DiameterCtx(context.Background(), g, dir)
}

// DiameterCtx is Diameter with cooperative cancellation: each per-node BFS
// checks ctx through BFSCtx, so the O(V·(V+E)) sweep — the most expensive
// summarization query — stops promptly once the context is done.
func DiameterCtx(ctx context.Context, g model.Graph, dir model.Direction) (int, error) {
	max := 0
	var iterErr error
	err := g.Nodes(func(n model.Node) bool {
		ecc, err := eccentricityCtx(ctx, g, n.ID, dir)
		if err != nil {
			iterErr = err
			return false
		}
		if ecc > max {
			max = ecc
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if iterErr != nil {
		return 0, iterErr
	}
	return max, nil
}

// AggKind selects an aggregate function.
type AggKind uint8

const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", uint8(k))
	}
}

// Aggregator folds values into a single result; it implements the aggregate
// functions of summarization queries.
type Aggregator struct {
	kind    AggKind
	count   int // all values, including nulls (COUNT semantics)
	nonNull int // values participating in numeric aggregates
	sum     float64
	min     model.Value
	max     model.Value
}

// NewAggregator returns an aggregator of the given kind.
func NewAggregator(kind AggKind) *Aggregator { return &Aggregator{kind: kind} }

// Add folds one value. Null values count for AggCount but are ignored by
// the numeric aggregates (SQL semantics: AVG skips nulls).
func (a *Aggregator) Add(v model.Value) {
	a.count++
	if v.IsNull() {
		return
	}
	a.nonNull++
	if f, ok := v.AsFloat(); ok {
		a.sum += f
	}
	if a.min.IsNull() || v.Compare(a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || v.Compare(a.max) > 0 {
		a.max = v
	}
}

// Kind returns the aggregate the folder computes.
func (a *Aggregator) Kind() AggKind { return a.kind }

// Merge folds another aggregator of the same kind into a, as if every value
// added to other had been added to a after a's own values. Count, min and
// max merge exactly; sums merge by adding the partial sums, so a chunked
// fold is bit-identical to the sequential fold whenever partial sums are
// exact (integers), and equal up to float association otherwise.
func (a *Aggregator) Merge(other *Aggregator) {
	a.count += other.count
	a.nonNull += other.nonNull
	a.sum += other.sum
	if !other.min.IsNull() && (a.min.IsNull() || other.min.Compare(a.min) < 0) {
		a.min = other.min
	}
	if !other.max.IsNull() && (a.max.IsNull() || other.max.Compare(a.max) > 0) {
		a.max = other.max
	}
}

// Result returns the aggregate value. Avg over zero values is null.
func (a *Aggregator) Result() model.Value {
	switch a.kind {
	case AggCount:
		return model.Int(int64(a.count))
	case AggSum:
		return model.Float(a.sum)
	case AggAvg:
		if a.nonNull == 0 {
			return model.Null()
		}
		return model.Float(a.sum / float64(a.nonNull))
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	}
	return model.Null()
}

// AggregateNodeProp folds the named property over every node with the given
// label ("" = all nodes).
func AggregateNodeProp(g model.Graph, label, prop string, kind AggKind) (model.Value, error) {
	agg := NewAggregator(kind)
	err := g.Nodes(func(n model.Node) bool {
		if label != "" && n.Label != label {
			return true
		}
		if kind == AggCount {
			agg.Add(model.Int(1))
		} else {
			agg.Add(n.Props.Get(prop))
		}
		return true
	})
	if err != nil {
		return model.Null(), err
	}
	return agg.Result(), nil
}
