// Package analysis is the repository's own go/analysis-shaped framework:
// an Analyzer/Pass vocabulary, a diagnostic type, and the //gdbvet:allow
// suppression protocol shared by every gdbvet analyzer.
//
// The x/tools analysis framework is deliberately not used — the module is
// dependency-free — so this package reimplements the minimal surface the
// invariant analyzers (vfsonly, syncerr, capdecl, lockdiscipline,
// obsctx, ctxflow) need on top of go/ast and go/types. Package load type-checks whole
// packages via `go list -export`; cmd/gdbvet drives the analyzers both
// standalone and under `go vet -vettool`.
//
// # Suppression
//
// A finding can be silenced only by an explicit, justified annotation on
// the offending line or the line directly above it:
//
//	f, err := os.Open(p) //gdbvet:allow(vfsonly): boundary code, see doc.go
//
// The justification after the colon is mandatory: a directive without one
// suppresses nothing and is itself reported. A directive that suppresses
// nothing is reported as unused, so stale annotations cannot linger.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //gdbvet:allow(name) directives.
	Name string
	// Doc is the one-paragraph description printed by gdbvet -help.
	Doc string
	// AppliesTo filters packages by logical import path; nil runs the
	// analyzer everywhere.
	AppliesTo func(pkgPath string) bool
	// Run reports the package's violations through pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one reported violation, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a finding silenced by a justified
	// //gdbvet:allow directive. Run drops suppressed findings; RunAll
	// returns them separately so gdbvet -json and -audit can surface
	// them.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// PkgPath is the package's logical import path. Tests may map a
	// testdata directory to a virtual path so path-scoped analyzers see
	// the package where it pretends to live.
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	// Summaries holds the cross-package function summaries of the load
	// this package came from: all targets in standalone mode, the lone
	// package under go vet -vettool. May be nil; the accessor methods
	// on Summaries are nil-safe.
	Summaries *Summaries

	allows     []*allowDirective
	diags      []Diagnostic
	suppressed []Diagnostic
}

// Reportf records a violation at pos unless a justified
// //gdbvet:allow(<analyzer>) directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportPosf(p.Fset.Position(pos), format, args...)
}

// ReportPosf is Reportf for findings whose position was resolved
// earlier (the summary-driven analyzers carry token.Position through
// the cross-package lock graph).
func (p *Pass) ReportPosf(posn token.Position, format string, args ...any) {
	d := Diagnostic{
		Pos:      posn,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	for _, a := range p.allows {
		if a.covers(posn) && a.reason != "" {
			a.used = true
			d.Suppressed = true
			p.suppressed = append(p.suppressed, d)
			return
		}
	}
	p.diags = append(p.diags, d)
}

// allowDirective is one parsed //gdbvet:allow comment.
type allowDirective struct {
	pos    token.Position // of the comment itself
	names  []string
	reason string
	used   bool
}

// covers reports whether the directive applies to a finding at posn: the
// comment sits on the same line (trailing) or the line directly above.
func (d *allowDirective) covers(posn token.Position) bool {
	return d.pos.Filename == posn.Filename &&
		(d.pos.Line == posn.Line || d.pos.Line == posn.Line-1)
}

var allowRx = regexp.MustCompile(`^//gdbvet:allow\(([A-Za-z0-9_,]+)\)(?::\s*(.*))?$`)

// parseAllows extracts the directives naming the analyzer from the files'
// comments.
func parseAllows(fset *token.FileSet, files []*ast.File, analyzer string) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				// Tolerate a trailing `// ...` segment so analysistest
				// fixtures can put `// want` expectations on the
				// directive's own line.
				if i := strings.Index(text, " // "); i >= 0 {
					text = strings.TrimRight(text[:i], " ")
				}
				m := allowRx.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				names := strings.Split(m[1], ",")
				applies := false
				for _, n := range names {
					if n == analyzer {
						applies = true
					}
				}
				if !applies {
					continue
				}
				out = append(out, &allowDirective{
					pos:    fset.Position(c.Pos()),
					names:  names,
					reason: strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return out
}

// Target is the package surface an analyzer runs over; package load
// produces it and analysistest fakes it.
type Target struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	// Summaries is the cross-package summary set of the load; drivers
	// attach it after ComputeSummaries over every target they loaded.
	Summaries *Summaries
}

// AllowRecord is one //gdbvet:allow directive as seen by one analyzer,
// for gdbvet -audit.
type AllowRecord struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	// Used reports whether the directive suppressed at least one
	// finding of this analyzer in this run.
	Used bool
}

// Result is the full outcome of one analyzer over one package.
type Result struct {
	// Diags are the active findings, directive-hygiene findings
	// included, sorted by position.
	Diags []Diagnostic
	// Suppressed are the findings silenced by justified directives.
	Suppressed []Diagnostic
	// Allows records every directive naming this analyzer.
	Allows []AllowRecord
}

// Run executes one analyzer over one package and returns its diagnostics,
// including directive-hygiene findings (missing justification, unused
// directive), sorted by position.
//
// Test files are exempt: the invariants govern production code, while
// tests deliberately provoke the conditions the analyzers forbid (fault
// injection discards failing Sync/Append errors on purpose, crash tests
// corrupt files through the raw OS). The go vet driver hands gdbvet test
// files alongside the package's own, so the exemption lives here rather
// than in the loader.
func Run(a *Analyzer, t *Target) ([]Diagnostic, error) {
	res, err := RunAll(a, t)
	return res.Diags, err
}

// RunAll is Run plus the suppressed findings and the directive records,
// for the -json and -audit driver modes.
func RunAll(a *Analyzer, t *Target) (Result, error) {
	if a.AppliesTo != nil && !a.AppliesTo(t.PkgPath) {
		return Result{}, nil
	}
	var files []*ast.File
	for _, f := range t.Files {
		if strings.HasSuffix(t.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	pass := &Pass{
		Analyzer:  a,
		PkgPath:   t.PkgPath,
		Fset:      t.Fset,
		Files:     files,
		Pkg:       t.Pkg,
		Info:      t.Info,
		Summaries: t.Summaries,
		allows:    parseAllows(t.Fset, files, a.Name),
	}
	if err := a.Run(pass); err != nil {
		return Result{}, fmt.Errorf("%s: %s: %w", a.Name, t.PkgPath, err)
	}
	res := Result{Suppressed: pass.suppressed}
	for _, d := range pass.allows {
		switch {
		case d.reason == "":
			pass.diags = append(pass.diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: a.Name,
				Message:  "gdbvet:allow directive is missing its mandatory justification (write //gdbvet:allow(" + a.Name + "): <why>)",
			})
		case !d.used:
			pass.diags = append(pass.diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: a.Name,
				Message:  "unused gdbvet:allow(" + a.Name + ") directive suppresses nothing; delete it",
			})
		}
		res.Allows = append(res.Allows, AllowRecord{
			Pos:      d.pos,
			Analyzer: a.Name,
			Reason:   d.reason,
			Used:     d.used,
		})
	}
	Sort(pass.diags)
	res.Diags = pass.diags
	return res, nil
}

// Sort orders diagnostics by file, line, column, analyzer.
func Sort(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// PathIsUnder reports whether pkgPath is pkg or nested below it —
// the import-path analogue of filepath prefix matching.
func PathIsUnder(pkgPath, pkg string) bool {
	return pkgPath == pkg || strings.HasPrefix(pkgPath, pkg+"/")
}
