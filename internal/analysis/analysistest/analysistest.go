// Package analysistest runs one gdbvet analyzer over a testdata package
// and checks its diagnostics against `// want "regexp"` comments, the
// same contract as x/tools' analysistest, rebuilt on the repo's own
// loader.
//
// Expectations are written on the offending line:
//
//	f, _ := os.Open("x") // want `direct os\.Open call`
//
// Each want string is a regular expression that must match exactly one
// diagnostic reported on that line, and every diagnostic must be wanted.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gdbm/internal/analysis"
	"gdbm/internal/analysis/load"
)

// expectation is one `// want` clause.
type expectation struct {
	file    string // base name
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

var wantRx = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the package in dir (a path relative to the test's working
// directory), presents it to the analyzer under the virtual import path
// asPath (so path-scoped analyzers treat the fixture as if it lived
// there), and diffs diagnostics against want comments. It returns the
// diagnostics for any extra assertions.
func Run(t *testing.T, a *analysis.Analyzer, dir, asPath string) []analysis.Diagnostic {
	t.Helper()
	targets, err := load.Packages("", "./"+strings.TrimPrefix(dir, "./"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	if len(targets) != 1 {
		t.Fatalf("analysistest: %s resolved to %d packages, want 1", dir, len(targets))
	}
	target := targets[0]
	if asPath != "" {
		target.PkgPath = asPath
	}
	target.Summaries = analysis.ComputeSummaries(targets)

	var wants []*expectation
	for _, f := range target.Files {
		filename := target.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := target.Fset.Position(c.Pos())
				rxs, err := parseWant(m[1])
				if err != nil {
					t.Fatalf("%s:%d: %v", filename, posn.Line, err)
				}
				for _, rx := range rxs {
					wants = append(wants, &expectation{
						file: base(filename),
						line: posn.Line,
						rx:   regexp.MustCompile(rx),
						raw:  rx,
					})
				}
			}
		}
	}

	diags, err := analysis.Run(a, target)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.raw)
		}
	}
	return diags
}

// claim marks the first unmatched expectation covering d and reports
// whether one existed.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == base(d.Pos.Filename) && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func base(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// parseWant splits `"rx1" "rx2"` or backquoted forms into regexp sources.
func parseWant(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want: expected quoted regexp, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("want: unterminated %c-quoted regexp", quote)
		}
		lit := s[:end+2]
		rx, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("want: %q: %v", lit, err)
		}
		out = append(out, rx)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want: no regexps")
	}
	return out, nil
}
