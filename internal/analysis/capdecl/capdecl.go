// Package capdecl pins the engines to the survey's feature matrices: a
// type in an engine package may only implement (or type-assert to) the
// capability interfaces of package engine that the archetype's paper
// profile — recorded in internal/engine/capability — allows. Because the
// check runs over go/types method sets, it also convicts capabilities
// acquired silently through struct embedding, the way neograph once
// inherited a SchemaHolder surface from its propcore substrate.
package capdecl

import (
	"go/ast"
	"go/types"

	"gdbm/internal/analysis"
	"gdbm/internal/engine/capability"
)

// enginePkgPath is the package whose exported interfaces form the
// capability vocabulary.
const enginePkgPath = "gdbm/internal/engine"

// enginesRoot is the subtree holding one package per archetype.
const enginesRoot = "gdbm/internal/engines"

// Registry is the consulted allowance table; tests may add entries for
// fixture packages.
var Registry = capability.Profiles

// Analyzer is the capdecl check.
var Analyzer = &analysis.Analyzer{
	Name: "capdecl",
	Doc: "engine packages may only implement the capability interfaces their " +
		"archetype's survey profile allows (internal/engine/capability), so " +
		"Tables I-VII cannot drift from the code",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath != enginesRoot && analysis.PathIsUnder(pkgPath, enginesRoot)
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	prof, ok := Registry[pass.PkgPath]
	if !ok {
		pass.Reportf(pass.Files[0].Name.Pos(),
			"engine package %s has no profile in internal/engine/capability; register its allowed capability set before it can ship", pass.PkgPath)
		return nil
	}
	if prof.Library {
		return nil
	}

	enginePkg := findImport(pass.Pkg, enginePkgPath)
	if enginePkg == nil {
		// Without the engine package in the import graph the package
		// cannot register itself as an archetype; nothing to pin.
		return nil
	}

	// Resolve the capability vocabulary to its interface types.
	type capIface struct {
		name  capability.Capability
		named types.Type
		iface *types.Interface
	}
	var caps []capIface
	for _, name := range capability.All() {
		obj := enginePkg.Scope().Lookup(name)
		if obj == nil {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		caps = append(caps, capIface{name, obj.Type(), iface})
	}

	// Every concrete package-level type must stay inside the allowance.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		for _, c := range caps {
			if prof.Allows(c.name) {
				continue
			}
			if types.Implements(t, c.iface) || types.Implements(types.NewPointer(t), c.iface) {
				pass.Reportf(tn.Pos(),
					"type %s implements engine.%s, but the %q profile forbids it (survey tables; see internal/engine/capability)",
					name, c.name, prof.Row)
			}
		}
	}

	// Explicit conversions or assertions to a forbidden capability are
	// drift too, even when no local type implements it.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ta, ok := n.(*ast.TypeAssertExpr)
			if !ok || ta.Type == nil {
				return true
			}
			tv, ok := pass.Info.Types[ta.Type]
			if !ok {
				return true
			}
			for _, c := range caps {
				if !prof.Allows(c.name) && types.Identical(tv.Type, c.named) {
					pass.Reportf(ta.Pos(),
						"type assertion to engine.%s, but the %q profile forbids that capability",
						c.name, prof.Row)
				}
			}
			return true
		})
	}
	return nil
}

// findImport walks the transitive imports of pkg for path.
func findImport(pkg *types.Package, path string) *types.Package {
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == path {
				return imp
			}
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(pkg)
}
