package capdecl_test

import (
	"testing"

	"gdbm/internal/analysis/analysistest"
	"gdbm/internal/analysis/capdecl"
	"gdbm/internal/engine/capability"
)

// TestForbiddenCapabilities registers a fixture profile and checks that an
// engine gaining an interface its profile forbids — directly, through
// embedding, or via a type assertion — is convicted, while allowed and
// escape-hatched surfaces stay silent.
func TestForbiddenCapabilities(t *testing.T) {
	const path = "gdbm/internal/engines/fakedb"
	capability.Profiles[path] = capability.Profile{
		Row: "Fakebase",
		Allowed: []capability.Capability{
			capability.Loader, capability.GraphAPI,
			capability.Querier, capability.Persistent,
		},
	}
	defer delete(capability.Profiles, path)
	analysistest.Run(t, capdecl.Analyzer, "testdata/src/fakedb", path)
}

// TestUnregisteredEngine: a package under internal/engines/ with no
// capability profile is convicted at its package clause.
func TestUnregisteredEngine(t *testing.T) {
	analysistest.Run(t, capdecl.Analyzer, "testdata/src/ghostdb", "gdbm/internal/engines/ghostdb")
}

// TestScope: only archetype packages under internal/engines are checked.
func TestScope(t *testing.T) {
	if capdecl.Analyzer.AppliesTo("gdbm/internal/engines") {
		t.Error("the engines root itself holds no package to check")
	}
	if capdecl.Analyzer.AppliesTo("gdbm/internal/storage/wal") {
		t.Error("storage packages are out of capdecl scope")
	}
	if !capdecl.Analyzer.AppliesTo("gdbm/internal/engines/neograph") {
		t.Error("engine packages must be in capdecl scope")
	}
}

// TestRealRegistryLibraries: the shared substrate packages are marked
// Library so capdecl skips them without weakening engine checks.
func TestRealRegistryLibraries(t *testing.T) {
	for _, p := range []string{"gdbm/internal/engines/propcore", "gdbm/internal/engines/suite"} {
		prof, ok := capability.Profiles[p]
		if !ok || !prof.Library {
			t.Errorf("%s must be registered as a library package", p)
		}
	}
}
