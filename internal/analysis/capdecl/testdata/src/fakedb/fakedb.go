// Package fakedb is a capdecl fixture; the test registers it under the
// virtual path gdbm/internal/engines/fakedb with the profile
// {Loader, GraphAPI, Querier, Persistent} ("Fakebase" row).
package fakedb

import (
	"gdbm/internal/engine"
	"gdbm/internal/model"
	"gdbm/internal/query/plan"
)

// substrate mimics propcore: a shared core whose embedding silently leaks
// a schema surface into any engine that composes it. Defined inside an
// archetype package (unlike the real propcore, a Library package), it is
// convicted on its own.
type substrate struct{} // want `type substrate implements engine\.SchemaHolder, but the "Fakebase" profile forbids it`

// Schema makes substrate (and every embedder) an engine.SchemaHolder.
func (substrate) Schema() *model.Schema { return nil }

// DB gains SchemaHolder through embedding alone — the exact drift that
// once made the schema-free Neo4j archetype advertise a DDL surface.
type DB struct { // want `type DB implements engine\.SchemaHolder, but the "Fakebase" profile forbids it`
	substrate
}

// Good implements only allowed capabilities and must stay silent.
type Good struct{}

func (Good) LanguageName() string                  { return "fakeql" }
func (Good) Query(stmt string) (*plan.Result, error) { return nil, nil }
func (Good) Flush() error                          { return nil }

// probe asserts a capability the profile forbids: relying on reasoning
// internally is drift even without implementing it.
func probe(e engine.Engine) bool {
	_, ok := e.(engine.Reasoner) // want `type assertion to engine\.Reasoner, but the "Fakebase" profile forbids`
	return ok
}

// probeAllowed asserts an allowed capability; no finding.
func probeAllowed(e engine.Engine) bool {
	_, ok := e.(engine.Querier)
	return ok
}

// Experimental carries a justified escape hatch, so its forbidden
// Transactional surface is sanctioned (and the directive is "used").
//gdbvet:allow(capdecl): experimental tx surface staged behind a pending profile revision; see EXPERIMENTS.md
type Experimental struct{}

func (Experimental) Update(fn func() error) error { return fn() }
