// Package ghostdb is a capdecl fixture: an engine package that never
// registered a capability profile.
package ghostdb // want `engine package gdbm/internal/engines/ghostdb has no profile in internal/engine/capability`

// Ghost would be an engine; without a profile the package is convicted at
// its package clause before any type is inspected.
type Ghost struct{}

func (Ghost) Name() string { return "ghost" }
