// Package cfg builds an intra-procedural control-flow graph for one Go
// function body, the substrate under the gdbvet dataflow analyzers
// (itererr, closeleak, lockorder). The graph is statement-level: each
// basic block holds a run of ast.Node values (statements, plus the
// atomic condition expressions of branches) that execute in order, and
// edges carry the branch condition they follow, so an analysis can
// refine a fact on the true and false arms separately.
//
// Covered control flow: if/else, for and range loops, switch, type
// switch and select, labeled break/continue, goto, fallthrough, early
// return, and short-circuit && / || / ! in branch conditions (each
// atomic operand becomes its own block, with edges that skip the
// right-hand side exactly when Go would). A defer statement stays in
// its block — registration happens in source order — and the deferred
// calls run at every function exit, which analyses model by treating a
// reached DeferStmt's effect as pending until Exit.
//
// Two constructs terminate a path without reaching Exit: the panic
// builtin and any call the optional NoReturn hook recognizes
// (os.Exit, log.Fatal, ...). Blocks downstream of only such calls are
// unreachable and carry no facts. Function literals are opaque: their
// bodies are separate functions with their own CFGs, so Build does not
// descend into them.
package cfg

import "go/ast"

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry has no predecessors; execution starts here.
	Entry *Block
	// Exit is the single synthetic return point. Every return statement
	// and every fall-off-the-end path leads here.
	Exit *Block
	// Blocks lists every block, Entry first, Exit last.
	Blocks []*Block
	// Defers collects the defer statements in source order; they run at
	// Exit (in reverse order) on every path that executed them.
	Defers []*ast.DeferStmt
}

// Block is a straight-line run of nodes with no interior branching.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the statements and atomic condition expressions that
	// execute in order when the block runs.
	Nodes []ast.Node
	// Succs are the control-flow edges out of the block.
	Succs []Edge
}

// Edge is one control-flow edge. When the edge is taken because a
// condition expression evaluated to a known value, Cond is that atomic
// expression and Branch its value; otherwise Cond is nil.
type Edge struct {
	To     *Block
	Cond   ast.Expr
	Branch bool
}

// Options configures Build.
type Options struct {
	// NoReturn reports whether a call never returns (os.Exit,
	// log.Fatal, runtime.Goexit). The builder already terminates paths
	// at the panic builtin.
	NoReturn func(*ast.CallExpr) bool
}

type builder struct {
	g    *Graph
	cur  *Block
	opts Options

	// breakTo / continueTo map "" to the innermost target and each
	// active label to its loop or switch.
	breakTo    []labeledBlock
	continueTo []labeledBlock

	// pendingLabel is the label immediately preceding the next loop,
	// switch or select statement.
	pendingLabel string

	// labels maps a label name to the block starting its statement, for
	// goto; gotos seen before their label land in pendingGotos.
	labels       map[string]*Block
	pendingGotos map[string][]*Block
}

type labeledBlock struct {
	label string
	block *Block
}

// Build constructs the CFG of body.
func Build(body *ast.BlockStmt, opts Options) *Graph {
	b := &builder{
		g:            &Graph{},
		opts:         opts,
		labels:       map[string]*Block{},
		pendingGotos: map[string][]*Block{},
	}
	entry := b.newBlock()
	b.g.Entry = entry
	b.cur = entry
	exit := b.newBlock() // created second; moved to the end below
	b.g.Exit = exit

	b.stmts(body.List)
	b.edge(b.cur, Edge{To: exit})

	// Unresolved gotos (labels on plain statements mid-block): be
	// conservative and route them to Exit so no fact is lost.
	for _, srcs := range b.pendingGotos {
		for _, s := range srcs {
			b.edge(s, Edge{To: exit})
		}
	}

	// Keep Exit last for readable dumps.
	blocks := b.g.Blocks
	for i, blk := range blocks {
		if blk == exit && i != len(blocks)-1 {
			copy(blocks[i:], blocks[i+1:])
			blocks[len(blocks)-1] = exit
			break
		}
	}
	for i, blk := range blocks {
		blk.Index = i
	}
	return b.g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from *Block, e Edge) {
	if from == nil || e.To == nil {
		return
	}
	from.Succs = append(from.Succs, e)
}

// startBlock seals the current block with an unconditional edge to next
// and makes next current.
func (b *builder) startBlock(next *Block) {
	b.edge(b.cur, Edge{To: next})
	b.cur = next
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		thenB := b.newBlock()
		elseB := b.newBlock()
		after := b.newBlock()
		b.cond(s.Cond, thenB, elseB)
		b.cur = thenB
		b.stmt(s.Body)
		b.edge(b.cur, Edge{To: after})
		b.cur = elseB
		if s.Else != nil {
			b.stmt(s.Else)
		}
		b.edge(b.cur, Edge{To: after})
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			b.cond(s.Cond, body, after)
		} else {
			b.edge(b.cur, Edge{To: body})
		}
		b.pushLoop(label, after, post)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.edge(b.cur, Edge{To: post})
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, Edge{To: head})
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		// The RangeStmt node itself represents evaluating the range
		// operand and binding the iteration variables.
		head.Nodes = append(head.Nodes, s)
		b.edge(head, Edge{To: body})
		b.edge(head, Edge{To: after})
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.edge(b.cur, Edge{To: head})
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchBody(label, s.Body, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchBody(label, s.Body, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.switchBody(label, s.Body, func(c ast.Stmt) []ast.Node {
			if comm := c.(*ast.CommClause).Comm; comm != nil {
				return []ast.Node{comm}
			}
			return nil
		})

	case *ast.LabeledStmt:
		// Record the label target; loops/switches consume it via
		// takeLabel, gotos via labels.
		target := b.newBlock()
		b.startBlock(target)
		b.labels[s.Label.Name] = target
		for _, src := range b.pendingGotos[s.Label.Name] {
			b.edge(src, Edge{To: target})
		}
		delete(b.pendingGotos, s.Label.Name)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, Edge{To: b.g.Exit})
		b.cur = b.newBlock() // unreachable continuation

	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.noReturn(call) {
			b.cur = b.newBlock() // path ends here, Exit not reached
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, IncDec, Send, Go: straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchBody builds the shared case-dispatch shape of switch, type
// switch and select. commNodes, when non-nil, extracts the nodes a
// clause evaluates before its body runs (the select comm statement).
func (b *builder) switchBody(label string, body *ast.BlockStmt, commNodes func(ast.Stmt) []ast.Node) {
	head := b.cur
	after := b.newBlock()
	b.breakTo = append(b.breakTo, labeledBlock{label: label, block: after})
	hasDefault := false
	var caseBlocks []*Block
	var clauses []ast.Stmt
	for _, c := range body.List {
		cb := b.newBlock()
		caseBlocks = append(caseBlocks, cb)
		clauses = append(clauses, c)
		b.edge(head, Edge{To: cb})
	}
	for i, c := range clauses {
		cb := caseBlocks[i]
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				cb.Nodes = append(cb.Nodes, e)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			if commNodes != nil {
				cb.Nodes = append(cb.Nodes, commNodes(c)...)
			}
			list = c.Body
		}
		b.cur = cb
		b.stmts(list)
		// fallthrough, if present, is the last statement and links to
		// the next case's block.
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				if i+1 < len(caseBlocks) {
					b.edge(b.cur, Edge{To: caseBlocks[i+1]})
					b.cur = b.newBlock()
				}
			}
		}
		b.edge(b.cur, Edge{To: after})
	}
	if !hasDefault {
		// No default: the whole statement can fall through.
		b.edge(head, Edge{To: after})
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = after
}

func (b *builder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := findTarget(b.breakTo, name); t != nil {
			b.edge(b.cur, Edge{To: t})
		}
		b.cur = b.newBlock()
	case "continue":
		if t := findTarget(b.continueTo, name); t != nil {
			b.edge(b.cur, Edge{To: t})
		}
		b.cur = b.newBlock()
	case "goto":
		if t, ok := b.labels[name]; ok {
			b.edge(b.cur, Edge{To: t})
		} else {
			b.pendingGotos[name] = append(b.pendingGotos[name], b.cur)
		}
		b.cur = b.newBlock()
	case "fallthrough":
		// handled by switchBody; nothing to do here.
	}
}

func findTarget(stack []labeledBlock, label string) *Block {
	if len(stack) == 0 {
		return nil
	}
	if label == "" {
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breakTo = append(b.breakTo, labeledBlock{label: label, block: brk})
	b.continueTo = append(b.continueTo, labeledBlock{label: label, block: cont})
}

func (b *builder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// cond decomposes a branch condition into atomic tests, wiring
// short-circuit skips: in `a && b`, b's block is reached only on a's
// true edge; in `a || b`, only on a's false edge.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		b.cond(e.X, t, f)
		return
	case *ast.UnaryExpr:
		if e.Op.String() == "!" {
			b.cond(e.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "&&":
			mid := b.newBlock()
			b.cond(e.X, mid, f)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		case "||":
			mid := b.newBlock()
			b.cond(e.X, t, mid)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		}
	}
	b.cur.Nodes = append(b.cur.Nodes, e)
	b.edge(b.cur, Edge{To: t, Cond: e, Branch: true})
	b.edge(b.cur, Edge{To: f, Cond: e, Branch: false})
}

// noReturn reports whether the call terminates the path: the panic
// builtin, or anything the NoReturn hook recognizes.
func (b *builder) noReturn(call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.opts.NoReturn != nil && b.opts.NoReturn(call)
}
