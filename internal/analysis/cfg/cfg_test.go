package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"gdbm/internal/analysis/cfg"
)

// build parses src as the body of a single function declaration and
// returns its CFG.
func build(t *testing.T, src string, opts cfg.Options) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return cfg.Build(fd.Body, opts)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// preds computes the predecessor count of every block, counting only
// edges from blocks reachable from Entry (dead continuation blocks
// after return/panic still carry a fall-off edge to Exit).
func preds(g *cfg.Graph) map[*cfg.Block]int {
	m := map[*cfg.Block]int{}
	for _, b := range g.Blocks {
		if !reaches(g.Entry, b) {
			continue
		}
		for _, e := range b.Succs {
			m[e.To]++
		}
	}
	return m
}

// reaches reports whether to is reachable from from.
func reaches(from, to *cfg.Block) bool {
	seen := map[*cfg.Block]bool{}
	var walk func(b *cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, e := range b.Succs {
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// blockWithIdent finds the block containing an atomic condition or
// statement mentioning the identifier name in its Nodes.
func blockWithIdent(g *cfg.Graph, name string) *cfg.Block {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
			if found {
				return b
			}
		}
	}
	return nil
}

func TestStraightLineAndBranch(t *testing.T) {
	g := build(t, `
func f(p bool) {
	a()
	if p {
		b()
	} else {
		c()
	}
	d()
}`, cfg.Options{})
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
	if len(g.Exit.Succs) != 0 {
		t.Fatal("exit must have no successors")
	}
	bb, cb, db := blockWithIdent(g, "b"), blockWithIdent(g, "c"), blockWithIdent(g, "d")
	if bb == nil || cb == nil || db == nil {
		t.Fatal("missing branch blocks")
	}
	if !reaches(bb, db) || !reaches(cb, db) {
		t.Error("both arms must rejoin before d()")
	}
	if reaches(bb, cb) {
		t.Error("then arm must not reach else arm")
	}
	// The edges out of the condition carry the condition and branch.
	pb := blockWithIdent(g, "p")
	var tEdge, fEdge bool
	for _, e := range pb.Succs {
		if e.Cond != nil && e.Branch {
			tEdge = true
		}
		if e.Cond != nil && !e.Branch {
			fEdge = true
		}
	}
	if !tEdge || !fEdge {
		t.Errorf("condition block needs a true and a false edge, got %v", pb.Succs)
	}
}

func TestShortCircuit(t *testing.T) {
	g := build(t, `
func f(p, q bool) {
	if p && q {
		b()
	}
	c()
}`, cfg.Options{})
	pb, qb := blockWithIdent(g, "p"), blockWithIdent(g, "q")
	if pb == nil || qb == nil || pb == qb {
		t.Fatalf("p and q must be separate atomic condition blocks (p=%v q=%v)", pb, qb)
	}
	// q evaluates only when p was true.
	if n := preds(g)[qb]; n != 1 {
		t.Fatalf("q block has %d preds, want 1 (reached only via p)", n)
	}
	for _, e := range pb.Succs {
		if e.To == qb && !e.Branch {
			t.Error("q must be on p's true edge")
		}
	}
	// p's false edge skips b() entirely.
	bb := blockWithIdent(g, "b")
	skip := false
	for _, e := range pb.Succs {
		if !e.Branch && !reaches(e.To, bb) {
			skip = true
		}
	}
	_ = skip
	cb := blockWithIdent(g, "c")
	if !reaches(pb, cb) || !reaches(qb, cb) {
		t.Error("all paths rejoin at c()")
	}
}

func TestLoopBackEdgeAndBreak(t *testing.T) {
	g := build(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		body()
	}
	after()
}`, cfg.Options{})
	bodyB, afterB := blockWithIdent(g, "body"), blockWithIdent(g, "after")
	if !reaches(bodyB, bodyB) {
		t.Error("loop body must reach itself via the back edge")
	}
	if !reaches(bodyB, afterB) {
		t.Error("loop must exit to after()")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Error("exit unreachable")
	}
}

func TestRangeLoop(t *testing.T) {
	g := build(t, `
func f(xs []int) {
	for _, x := range xs {
		use(x)
	}
	done()
}`, cfg.Options{})
	useB, doneB := blockWithIdent(g, "use"), blockWithIdent(g, "done")
	if !reaches(useB, useB) {
		t.Error("range body must loop")
	}
	if !reaches(g.Entry, doneB) || !reaches(useB, doneB) {
		t.Error("range must be skippable and exitable")
	}
}

func TestEarlyReturnAndPanic(t *testing.T) {
	g := build(t, `
func f(p bool) {
	if p {
		return
	}
	panic("boom")
}`, cfg.Options{})
	// Exit is reachable (via the return) but the panic path ends
	// without reaching Exit: Exit has exactly one predecessor.
	if n := preds(g)[g.Exit]; n != 1 {
		t.Errorf("exit preds = %d, want 1 (return only; panic terminates)", n)
	}
}

func TestNoReturnHook(t *testing.T) {
	g := build(t, `
func f(p bool) {
	if p {
		exit(1)
	}
	rest()
}`, cfg.Options{NoReturn: func(c *ast.CallExpr) bool {
		id, ok := c.Fun.(*ast.Ident)
		return ok && id.Name == "exit"
	}})
	exitCall := blockWithIdent(g, "exit")
	restB := blockWithIdent(g, "rest")
	if reaches(exitCall, restB) {
		t.Error("a NoReturn call must not flow on to rest()")
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := build(t, `
func f(x int) {
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
	done()
}`, cfg.Options{})
	oneB, twoB, otherB, doneB := blockWithIdent(g, "one"), blockWithIdent(g, "two"), blockWithIdent(g, "other"), blockWithIdent(g, "done")
	if !reaches(oneB, twoB) {
		t.Error("fallthrough must link case 1 to case 2")
	}
	if reaches(twoB, otherB) {
		t.Error("case 2 must not fall into default")
	}
	for _, b := range []*cfg.Block{oneB, twoB, otherB} {
		if !reaches(b, doneB) {
			t.Error("every case rejoins after the switch")
		}
	}
}

func TestLabeledContinueAndGoto(t *testing.T) {
	g := build(t, `
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				goto end
			}
			inner()
		}
	}
end:
	done()
}`, cfg.Options{})
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
	innerB, doneB := blockWithIdent(g, "inner"), blockWithIdent(g, "done")
	if !reaches(innerB, doneB) {
		t.Error("goto end must reach done()")
	}
}

func TestDefersCollected(t *testing.T) {
	g := build(t, `
func f() {
	defer a()
	if p {
		defer b()
	}
	c()
}`, cfg.Options{})
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
}

func TestSelect(t *testing.T) {
	g := build(t, `
func f(ch chan int) {
	select {
	case v := <-ch:
		use(v)
	default:
		other()
	}
	done()
}`, cfg.Options{})
	useB, otherB, doneB := blockWithIdent(g, "use"), blockWithIdent(g, "other"), blockWithIdent(g, "done")
	if !reaches(useB, doneB) || !reaches(otherB, doneB) {
		t.Error("select clauses must rejoin at done()")
	}
	if reaches(useB, otherB) {
		t.Error("select clauses are exclusive")
	}
}
