// Package closeleak enforces resource ownership on every path: a value
// with a Close method obtained from a constructor-like call must be
// closed, or must escape the function, on every path to return — the
// error paths included. This is the session-engine bug class from the
// server work: an engine opened per session leaked whenever an early
// error return skipped the cleanup.
//
// A site is tracked when all of the following hold:
//
//   - the call's result type is defined in this module and has Close
//     in its method set (pointer receivers included);
//   - the callee looks ownership-transferring: its name starts with
//     New, Open, Create, Dial, Start or Make. Getter-style accessors
//     that return a resource someone else owns are deliberately not
//     tracked — convicting them would force the caller to close what
//     it does not own.
//
// The obligation is discharged by calling Close (directly, in a defer,
// or inside a deferred closure), by returning or storing the value, or
// by passing it to a function the cross-package summaries prove closes
// or retains it. On the branch where the constructor's paired error is
// non-nil — or where the value itself is nil — there is nothing to
// close and nothing is owed. Paths that end in panic or os.Exit owe
// nothing either. The analysis is the same forward CFG dataflow as
// itererr, with may-leak (union) join: a path that leaks is a finding
// even when its sibling cleans up.
//
// A second obligation class covers the snapshot path: any call whose
// result tuple includes a module-defined ReleaseFunc (model.ReleaseFunc
// — the release handle of AcquireSnapshot/AcquireView) is tracked with
// no owner-prefix gate, because receiving the func IS the ownership
// transfer. A leaked release handle pins a snapshot epoch forever: the
// copy-on-write machinery keeps the pinned version reachable and every
// later rebuild piles on top. The obligation is discharged by calling
// or deferring the func, or by letting it escape (returned, stored,
// passed on); the paired-error pardon applies the same way.
package closeleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gdbm/internal/analysis"
	"gdbm/internal/analysis/cfg"
	"gdbm/internal/analysis/dataflow"
)

// Analyzer is the closeleak check.
var Analyzer = &analysis.Analyzer{
	Name: "closeleak",
	Doc: "a closeable value obtained from a constructor must be closed or escape " +
		"on every path to return, error returns included",
	Run: run,
}

var ownerPrefixes = []string{"New", "Open", "Create", "Dial", "Start", "Make"}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, module: analysis.ModulePath(pass.PkgPath)}
	analysis.FuncBodies(pass.Files, c.checkBody)
	return nil
}

// siteKind separates the two obligation classes for message tailoring.
type siteKind int

const (
	kindClose   siteKind = iota // a closeable value: Close() is owed
	kindRelease                 // a ReleaseFunc: calling it is owed
)

// noun names what leaked, for diagnostics.
func (k siteKind) noun() string {
	if k == kindRelease {
		return "release func"
	}
	return "value"
}

// owed names the discharge, for diagnostics.
func (k siteKind) owed() string {
	if k == kindRelease {
		return "called"
	}
	return "closed"
}

// site is one live close obligation.
type site struct {
	id       int
	kind     siteKind
	label    string // printable constructor call, e.g. "engine.New"
	pos      token.Pos
	obj      types.Object // the closeable variable
	errObj   types.Object // the constructor's paired error result, if any
	def      ast.Node
	reported bool
}

type checker struct {
	pass   *analysis.Pass
	module string
}

// closerCall matches a call that transfers a discharge obligation to the
// caller: a constructor-like call with a module-internal closeable among
// its results, or any call returning a module-defined ReleaseFunc (no
// name gate — handing out the release func is the transfer). errIdx is
// the paired error result, or -1.
func (c *checker) closerCall(call *ast.CallExpr) (resIdx, errIdx int, label string, kind siteKind, ok bool) {
	tv, found := c.pass.Info.Types[call]
	if !found || tv.IsType() {
		return 0, -1, "", kindClose, false
	}
	owner := ownerName(call.Fun)
	if tuple, isTuple := tv.Type.(*types.Tuple); isTuple {
		resIdx, errIdx = -1, -1
		for i := 0; i < tuple.Len(); i++ {
			t := tuple.At(i).Type()
			switch {
			case c.releaseFunc(t):
				// The release obligation wins over a closeable in the same
				// tuple: AcquireView hands out a borrowed graph plus the
				// owned release handle.
				if resIdx < 0 || kind == kindClose {
					resIdx, kind = i, kindRelease
				}
			case resIdx < 0 && owner && c.closeable(t):
				resIdx, kind = i, kindClose
			case isError(t):
				errIdx = i
			}
		}
		if resIdx < 0 {
			return 0, -1, "", kindClose, false
		}
		return resIdx, errIdx, types.ExprString(call.Fun), kind, true
	}
	if c.releaseFunc(tv.Type) {
		return 0, -1, types.ExprString(call.Fun), kindRelease, true
	}
	if owner && c.closeable(tv.Type) {
		return 0, -1, types.ExprString(call.Fun), kindClose, true
	}
	return 0, -1, "", kindClose, false
}

// ownerName reports whether the called expression's final name looks
// ownership-transferring.
func ownerName(fun ast.Expr) bool {
	var name string
	switch fun := ast.Unparen(fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	for _, p := range ownerPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// releaseFunc reports whether t is a module-defined named func type
// called ReleaseFunc (model.ReleaseFunc, or a per-package alias of the
// same shape).
func (c *checker) releaseFunc(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "ReleaseFunc" || obj.Pkg() == nil || analysis.ModulePath(obj.Pkg().Path()) != c.module {
		return false
	}
	_, isSig := named.Underlying().(*types.Signature)
	return isSig
}

// closeable reports whether t is a module-defined type with Close in
// its method set.
func (c *checker) closeable(t types.Type) bool {
	definer := t
	if p, ok := definer.(*types.Pointer); ok {
		definer = p.Elem()
	}
	named, ok := definer.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || analysis.ModulePath(obj.Pkg().Path()) != c.module {
		return false
	}
	m, _, _ := types.LookupFieldOrMethod(t, true, nil, "Close")
	fn, isFn := m.(*types.Func)
	if !isFn {
		return false
	}
	sig, isSig := fn.Type().(*types.Signature)
	return isSig && sig.Params().Len() == 0
}

func (c *checker) checkBody(name string, body *ast.BlockStmt) {
	sites := c.collect(body)
	if len(sites) == 0 {
		return
	}
	byObj := map[types.Object][]*site{}
	byDef := map[ast.Node][]*site{}
	for _, s := range sites {
		if s.obj != nil {
			byObj[s.obj] = append(byObj[s.obj], s)
		}
		byDef[s.def] = append(byDef[s.def], s)
	}

	g := cfg.Build(body, cfg.Options{NoReturn: analysis.NoReturnCall(c.pass.Info)})

	// Deferred cleanup runs at every exit regardless of where the defer
	// statement sits in flow order.
	deferClosed := map[types.Object]bool{}
	for _, d := range g.Defers {
		ops := c.classify(d, byObj, byDef)
		for _, obj := range ops.closes {
			deferClosed[obj] = true
		}
		for _, obj := range ops.escapes {
			deferClosed[obj] = true
		}
	}

	type fact = map[int]bool
	kill := func(f fact, pred func(*site) bool) fact {
		var out fact
		for id := range f {
			if pred(sites[id]) {
				if out == nil {
					out = make(fact, len(f))
					for k := range f {
						out[k] = true
					}
				}
				delete(out, id)
			}
		}
		if out == nil {
			return f
		}
		return out
	}

	transfer := func(n ast.Node, f fact, report bool) fact {
		ops := c.classify(n, byObj, byDef)
		for _, obj := range ops.closes {
			f = kill(f, func(s *site) bool { return s.obj == obj })
		}
		for _, obj := range ops.escapes {
			f = kill(f, func(s *site) bool { return s.obj == obj })
		}
		for _, p := range ops.passes {
			p := p
			f = kill(f, func(s *site) bool {
				if s.obj != p.obj {
					return false
				}
				fs := c.pass.Summaries.Func(p.callee)
				if fs == nil {
					return true // unknown callee: assume it takes ownership
				}
				return fs.Closes[p.argIdx] || fs.Escapes[p.argIdx]
			})
		}
		lose := func(obj types.Object, exceptDef ast.Node) {
			f = kill(f, func(s *site) bool {
				dead := s.obj == obj && s.def != exceptDef
				if dead && report && !s.reported {
					s.reported = true
					c.pass.Reportf(s.pos,
						"%s from %s is overwritten before it is %s",
						s.kind.noun(), s.label, s.kind.owed())
				}
				return dead
			})
		}
		for _, obj := range ops.reassigns {
			lose(obj, nil)
		}
		for _, s := range ops.adds {
			if s.obj != nil {
				lose(s.obj, s.def)
			}
			out := make(fact, len(f)+1)
			for k := range f {
				out[k] = true
			}
			out[s.id] = true
			f = out
		}
		return f
	}

	res := dataflow.Forward(g, dataflow.Problem[fact]{
		Entry: fact{},
		Join: func(a, b fact) fact {
			if len(a) == 0 {
				return b
			}
			if len(b) == 0 {
				return a
			}
			out := make(fact, len(a)+len(b))
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(n ast.Node, f fact) fact { return transfer(n, f, false) },
		Edge: func(e cfg.Edge, f fact) fact {
			obj, nonNil, ok := nilCheck(c.pass.Info, e.Cond)
			if !ok {
				return f
			}
			return kill(f, func(s *site) bool {
				// Constructor failed: nothing was opened.
				if s.errObj != nil && s.errObj == obj && nonNil == e.Branch {
					return true
				}
				// The value itself is nil on this branch.
				return s.obj == obj && !nonNil == e.Branch
			})
		},
	})

	for _, b := range g.Blocks {
		f, reached := res.In[b]
		if !reached {
			continue
		}
		for _, n := range b.Nodes {
			f = transfer(n, f, true)
		}
	}
	for id := range res.In[g.Exit] {
		s := sites[id]
		if s.reported || deferClosed[s.obj] {
			continue
		}
		s.reported = true
		verb := "close it"
		if s.kind == kindRelease {
			verb = "call it"
		}
		c.pass.Reportf(s.pos,
			"%s from %s is not %s on every path to return; %s or let it escape",
			s.kind.noun(), s.label, s.kind.owed(), verb)
	}
}

// collect finds the close obligations of body (not descending into
// nested function literals) and reports the immediate discards.
func (c *checker) collect(body *ast.BlockStmt) []*site {
	var sites []*site
	add := func(label string, kind siteKind, pos token.Pos, obj, errObj types.Object, def ast.Node) {
		sites = append(sites, &site{
			id: len(sites), kind: kind, label: label, pos: pos,
			obj: obj, errObj: errObj, def: def,
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if _, _, label, kind, ok := c.closerCall(call); ok {
					c.pass.Reportf(call.Pos(),
						"%s from %s is dropped; it can never be %s",
						kind.noun(), label, kind.owed())
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			resIdx, errIdx, label, kind, ok := c.closerCall(call)
			if !ok || resIdx >= len(n.Lhs) {
				return true
			}
			obj := lhsObject(c.pass.Info, n.Lhs[resIdx])
			var errObj types.Object
			if errIdx >= 0 && errIdx < len(n.Lhs) {
				errObj = lhsObject(c.pass.Info, n.Lhs[errIdx])
			}
			if isBlank(n.Lhs[resIdx]) {
				c.pass.Reportf(n.Pos(),
					"%s from %s is assigned to the blank identifier; it can never be %s",
					kind.noun(), label, kind.owed())
			} else if obj != nil {
				add(label, kind, call.Pos(), obj, errObj, n)
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 1 || len(vs.Names) != 1 {
					continue
				}
				call, ok := vs.Values[0].(*ast.CallExpr)
				if !ok {
					continue
				}
				if _, _, label, kind, ok := c.closerCall(call); ok {
					if obj := c.pass.Info.Defs[vs.Names[0]]; obj != nil {
						add(label, kind, call.Pos(), obj, nil, n)
					}
				}
			}
		}
		return true
	})
	return sites
}

type passEvent struct {
	obj    types.Object
	callee *types.Func
	argIdx int
}

type nodeOps struct {
	closes    []types.Object // x.Close() observed
	escapes   []types.Object // x returned, stored, sent, captured...
	passes    []passEvent
	reassigns []types.Object
	adds      []*site
}

// classify extracts one CFG node's effects on the tracked obligations.
func (c *checker) classify(n ast.Node, byObj map[types.Object][]*site, byDef map[ast.Node][]*site) nodeOps {
	var ops nodeOps
	ops.adds = byDef[n]

	tracked := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		obj := c.pass.Info.ObjectOf(id)
		if len(byObj[obj]) == 0 {
			return nil
		}
		return obj
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if obj := tracked(lhs); obj != nil {
						if !defines(byDef[x], obj) {
							ops.reassigns = append(ops.reassigns, obj)
						}
					} else if _, isIdent := lhs.(*ast.Ident); !isIdent {
						walk(lhs)
					}
				}
				for _, rhs := range x.Rhs {
					walk(rhs)
				}
				return false
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if obj := tracked(sel.X); obj != nil {
						if sel.Sel.Name == "Close" {
							ops.closes = append(ops.closes, obj)
						}
						// Other method calls use the value without
						// transferring ownership.
						for _, arg := range x.Args {
							walk(arg)
						}
						return false
					}
				}
				callee := calleeOf(c.pass.Info, x)
				for i, arg := range x.Args {
					if obj := tracked(arg); obj != nil {
						ops.passes = append(ops.passes, passEvent{obj: obj, callee: callee, argIdx: i})
						continue
					}
					walk(arg)
				}
				walk(x.Fun)
				return false
			case *ast.SelectorExpr:
				if obj := tracked(x.X); obj != nil {
					if x.Sel.Name == "Close" {
						// Method value x.Close handed somewhere: treat as
						// a close (it is bound precisely to be called).
						ops.closes = append(ops.closes, obj)
					}
					// Field reads keep ownership in place.
					return false
				}
				return true
			case *ast.RangeStmt:
				walk(x.X)
				for _, v := range []ast.Expr{x.Key, x.Value} {
					if v == nil {
						continue
					}
					if obj := tracked(v); obj != nil {
						ops.reassigns = append(ops.reassigns, obj)
					}
				}
				return false
			case *ast.Ident:
				if obj := tracked(x); obj != nil {
					ops.escapes = append(ops.escapes, obj)
				}
			}
			return true
		})
	}
	walk(n)
	return ops
}

func defines(ss []*site, obj types.Object) bool {
	for _, s := range ss {
		if s.obj == obj {
			return true
		}
	}
	return false
}

func nilCheck(info *types.Info, cond ast.Expr) (types.Object, bool, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return nil, false, false
	}
	op := be.Op.String()
	if op != "!=" && op != "==" {
		return nil, false, false
	}
	x, y := be.X, be.Y
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) {
		return nil, false, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return nil, false, false
	}
	return obj, op == "!=", true
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := info.ObjectOf(id)
	// A package-level variable escapes by construction: a value parked
	// there outlives the function, and someone else may close it.
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return obj
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isError(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
