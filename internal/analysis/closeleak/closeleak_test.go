package closeleak_test

import (
	"testing"

	"gdbm/internal/analysis/analysistest"
	"gdbm/internal/analysis/closeleak"
)

func TestCloseLeak(t *testing.T) {
	analysistest.Run(t, closeleak.Analyzer, "testdata/src/closer", "")
}
