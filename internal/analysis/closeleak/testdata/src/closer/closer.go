// Package closer is the closeleak fixture: a closeable engine obtained
// from constructors, leaked and cleaned up.
package closer

import (
	"errors"
	"os"
)

// Engine is the closeable resource.
type Engine struct{ open bool }

func (e *Engine) Close() error               { e.open = false; return nil }
func (e *Engine) Query(q string) (int, error) { return len(q), nil }

func NewEngine() *Engine                      { return &Engine{open: true} }
func OpenEngine(path string) (*Engine, error) { return &Engine{open: true}, nil }

var shared = &Engine{}

// current is a getter, not a constructor: the caller does not own the
// result and must not close it. The name heuristic keeps it untracked.
func current() *Engine { return shared }

// --- violations -----------------------------------------------------

func dropped() {
	NewEngine() // want `value from NewEngine is dropped`
}

func blankAssigned() {
	_ = NewEngine() // want `value from NewEngine is assigned to the blank identifier`
}

func leaked(q string) int {
	e := NewEngine() // want `value from NewEngine is not closed on every path`
	n, _ := e.Query(q)
	return n
}

func leakOnErrorPath(path string, strict bool) error {
	e, err := OpenEngine(path) // want `value from OpenEngine is not closed on every path`
	if err != nil {
		return err
	}
	if strict {
		return errors.New("strict mode refuses engines")
	}
	return e.Close()
}

func overwritten() error {
	e := NewEngine() // want `value from NewEngine is overwritten before it is closed`
	e = NewEngine()
	return e.Close()
}

func handedToNonOwner(q string) {
	e := NewEngine() // want `value from NewEngine is not closed on every path`
	ping(e, q)
}

// ping uses the engine without taking ownership: it neither closes nor
// retains it, so the caller still owes the Close.
func ping(e *Engine, q string) {
	e.Query(q)
}

// --- clean ----------------------------------------------------------

func deferClosed(q string) (int, error) {
	e := NewEngine()
	defer e.Close()
	return e.Query(q)
}

func deferClosure(path string) error {
	e, err := OpenEngine(path)
	if err != nil {
		return err
	}
	defer func() {
		e.Close()
	}()
	_, qerr := e.Query(path)
	return qerr
}

func closedBothArms(q string) error {
	e := NewEngine()
	if q == "" {
		e.Close()
		return errors.New("empty query")
	}
	_, err := e.Query(q)
	e.Close()
	return err
}

func returned() *Engine {
	return NewEngine()
}

func aliasReturned() *Engine {
	e := NewEngine()
	return e
}

type pool struct{ engines []*Engine }

func (p *pool) stored() {
	e := NewEngine()
	p.engines = append(p.engines, e)
}

// shutdown closes on the caller's behalf; the summaries prove it.
func shutdown(e *Engine) {
	e.Close()
}

func handedToOwner() {
	e := NewEngine()
	shutdown(e)
}

func getterUntracked(q string) int {
	e := current()
	n, _ := e.Query(q)
	return n
}

func exitPath(abort bool) error {
	e := NewEngine()
	if abort {
		os.Exit(3)
	}
	return e.Close()
}

func suppressed() {
	//gdbvet:allow(closeleak): fixture exercises the suppression path
	NewEngine()
}

// --- release-func obligations ----------------------------------------

// ReleaseFunc mirrors model.ReleaseFunc: receiving one transfers the
// obligation to call it, with no constructor-name gate on the producer.
type ReleaseFunc func()

// Graph is a borrowed view; it has no Close and is never tracked.
type Graph struct{ order int }

func (g *Graph) Order() int { return g.order }

// AcquireSnapshot mirrors engine.Concurrent: no owner prefix, yet the
// returned release handle is an obligation.
func AcquireSnapshot() (*Graph, ReleaseFunc, error) {
	return &Graph{}, func() {}, nil
}

// acquireView mirrors model.Pinner for the unexported-producer shape.
func acquireView() (*Graph, ReleaseFunc) {
	return &Graph{}, func() {}
}

// plainFunc returns an unnamed func type: not tracked.
func plainFunc() func() { return func() {} }

func releaseLeaked(deep bool) int {
	g, release, err := AcquireSnapshot() // want `release func from AcquireSnapshot is not called on every path`
	if err != nil {
		return 0
	}
	if deep {
		n := g.Order() * 2
		release()
		return n
	}
	// This arm returns without releasing: the pinned epoch leaks.
	return g.Order()
}

func releaseBlank() int {
	g, _, err := AcquireSnapshot() // want `release func from AcquireSnapshot is assigned to the blank identifier`
	if err != nil {
		return 0
	}
	return g.Order()
}

func releaseLeakOnErrorPath(strict bool) (int, error) {
	g, release, err := AcquireSnapshot() // want `release func from AcquireSnapshot is not called on every path`
	if err != nil {
		return 0, err
	}
	if strict {
		return 0, errors.New("strict mode refuses snapshots")
	}
	n := g.Order()
	release()
	return n, nil
}

func releaseOverwritten() {
	_, release := acquireView() // want `release func from acquireView is overwritten before it is called`
	_, release = acquireView()
	release()
}

func releaseDeferred() int {
	g, release, err := AcquireSnapshot()
	if err != nil {
		return 0
	}
	defer release()
	return g.Order()
}

func releaseCalledBothArms(deep bool) int {
	g, release := acquireView()
	if deep {
		n := g.Order() * 2
		release()
		return n
	}
	release()
	return g.Order()
}

func releaseErrorPardon() (int, error) {
	// On the err != nil branch nothing was pinned; the paired-error
	// pardon discharges the obligation exactly as for closeables.
	g, release, err := AcquireSnapshot()
	if err != nil {
		return 0, err
	}
	defer release()
	return g.Order(), nil
}

func releaseEscapes() (*Graph, ReleaseFunc, error) {
	// Returning the handle hands the obligation to the caller.
	return AcquireSnapshot()
}

func releaseStored(fns *[]ReleaseFunc) {
	_, release := acquireView()
	*fns = append(*fns, release)
}

func unnamedFuncUntracked() {
	f := plainFunc()
	_ = f
}
