// Package closer is the closeleak fixture: a closeable engine obtained
// from constructors, leaked and cleaned up.
package closer

import (
	"errors"
	"os"
)

// Engine is the closeable resource.
type Engine struct{ open bool }

func (e *Engine) Close() error               { e.open = false; return nil }
func (e *Engine) Query(q string) (int, error) { return len(q), nil }

func NewEngine() *Engine                      { return &Engine{open: true} }
func OpenEngine(path string) (*Engine, error) { return &Engine{open: true}, nil }

var shared = &Engine{}

// current is a getter, not a constructor: the caller does not own the
// result and must not close it. The name heuristic keeps it untracked.
func current() *Engine { return shared }

// --- violations -----------------------------------------------------

func dropped() {
	NewEngine() // want `closeable value from NewEngine is dropped`
}

func blankAssigned() {
	_ = NewEngine() // want `closeable value from NewEngine is assigned to the blank identifier`
}

func leaked(q string) int {
	e := NewEngine() // want `value from NewEngine is not closed on every path`
	n, _ := e.Query(q)
	return n
}

func leakOnErrorPath(path string, strict bool) error {
	e, err := OpenEngine(path) // want `value from OpenEngine is not closed on every path`
	if err != nil {
		return err
	}
	if strict {
		return errors.New("strict mode refuses engines")
	}
	return e.Close()
}

func overwritten() error {
	e := NewEngine() // want `value from NewEngine is overwritten before it is closed`
	e = NewEngine()
	return e.Close()
}

func handedToNonOwner(q string) {
	e := NewEngine() // want `value from NewEngine is not closed on every path`
	ping(e, q)
}

// ping uses the engine without taking ownership: it neither closes nor
// retains it, so the caller still owes the Close.
func ping(e *Engine, q string) {
	e.Query(q)
}

// --- clean ----------------------------------------------------------

func deferClosed(q string) (int, error) {
	e := NewEngine()
	defer e.Close()
	return e.Query(q)
}

func deferClosure(path string) error {
	e, err := OpenEngine(path)
	if err != nil {
		return err
	}
	defer func() {
		e.Close()
	}()
	_, qerr := e.Query(path)
	return qerr
}

func closedBothArms(q string) error {
	e := NewEngine()
	if q == "" {
		e.Close()
		return errors.New("empty query")
	}
	_, err := e.Query(q)
	e.Close()
	return err
}

func returned() *Engine {
	return NewEngine()
}

func aliasReturned() *Engine {
	e := NewEngine()
	return e
}

type pool struct{ engines []*Engine }

func (p *pool) stored() {
	e := NewEngine()
	p.engines = append(p.engines, e)
}

// shutdown closes on the caller's behalf; the summaries prove it.
func shutdown(e *Engine) {
	e.Close()
}

func handedToOwner() {
	e := NewEngine()
	shutdown(e)
}

func getterUntracked(q string) int {
	e := current()
	n, _ := e.Query(q)
	return n
}

func exitPath(abort bool) error {
	e := NewEngine()
	if abort {
		os.Exit(3)
	}
	return e.Close()
}

func suppressed() {
	//gdbvet:allow(closeleak): fixture exercises the suppression path
	NewEngine()
}
