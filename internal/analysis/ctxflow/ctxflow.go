// Package ctxflow is the static half of the server's deadline contract:
// a request's context must flow from the HTTP handler through the
// dispatch layer into the query kernels unbroken. The dynamic half — the
// cancellation regression tests in internal/algo and internal/query/plan
// — proves a threaded context stops a running scan; this check proves
// the dispatch code actually threads one.
//
// Two ways of severing the flow are convicted in server/dispatch scope:
//
//  1. Calling a context-threading query entry point (QueryContext,
//     ExecCtx, RunCtx) with a fresh context.Background() or
//     context.TODO() as the context argument. The call compiles and
//     runs, but the client's deadline and disconnect no longer reach
//     the kernel, so an abandoned request keeps burning an inflight
//     slot until the query finishes on its own. Root contexts at
//     non-query call sites (signal handling, shutdown budgets, outbound
//     HTTP) are legitimate and not convicted.
//
//  2. Calling the context-free variant (Query, Exec, Run) on a value
//     whose type also offers the context-threading sibling. The ctx-free
//     surface exists for CLI tools and tests; dispatch code that has a
//     request context must use the sibling.
//
// The check is name-based and flow-insensitive like the rest of the
// suite: it does not chase a Background() stored in a variable first.
// That hole is acceptable — the idiom the analyzer polices is the
// inline one, and the cancellation tests catch the rest dynamically.
package ctxflow

import (
	"go/ast"
	"go/types"

	"gdbm/internal/analysis"
)

// scope: the networked service and its dispatch layer — the only code
// that holds a per-request context and can lose it. Kernels and CLI
// tools legitimately start from Background.
var scope = []string{
	"gdbm/internal/server",
	"gdbm/cmd/gdbserver",
	"gdbm/cmd/gdbload",
}

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "server/dispatch code must thread the request context into query entry points: " +
		"no context.Background()/TODO() at a ctx-taking call, no ctx-free Query/Exec/Run " +
		"where a context-threading sibling exists",
	AppliesTo: func(pkgPath string) bool {
		for _, s := range scope {
			if analysis.PathIsUnder(pkgPath, s) {
				return true
			}
		}
		return false
	},
	Run: run,
}

// ctxSiblings maps a context-free query entry point to the
// context-threading variant that dispatch code must prefer.
var ctxSiblings = map[string]string{
	"Query": "QueryContext",
	"Exec":  "ExecCtx",
	"Run":   "RunCtx",
}

// ctxEntryPoints is the set of context-threading query entry points
// rule 1 guards; a root context anywhere else (WithTimeout, signal
// handling, outbound requests) is legitimate.
var ctxEntryPoints = map[string]bool{
	"QueryContext": true,
	"ExecCtx":      true,
	"RunCtx":       true,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// takesContextFirst reports whether sig's first parameter is
// context.Context.
func takesContextFirst(sig *types.Signature) bool {
	return sig != nil && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

func run(pass *analysis.Pass) error {
	// freshContext reports whether e is an inline context.Background() or
	// context.TODO() call, returning which.
	freshContext := func(e ast.Expr) (string, bool) {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return "", false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return "", false
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return "", false
		}
		pn, ok := pass.Info.Uses[pkg].(*types.PkgName)
		if !ok || pn.Imported().Path() != "context" {
			return "", false
		}
		return "context." + sel.Sel.Name + "()", true
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name

			// Rule 1: a query entry point fed a fresh root context.
			if sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature); ok &&
				ctxEntryPoints[name] && takesContextFirst(sig) && len(call.Args) > 0 {
				if src, fresh := freshContext(call.Args[0]); fresh {
					pass.Reportf(call.Pos(),
						"%s severs the request context at %s; the deadline and client disconnect no longer reach the kernel — thread the caller's ctx",
						src, name)
					return true
				}
			}

			// Rule 2: the ctx-free variant used where the ctx sibling exists.
			sibling, isPlain := ctxSiblings[name]
			if !isPlain {
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || selection.Kind() != types.MethodVal {
				return true
			}
			obj, _, _ := types.LookupFieldOrMethod(selection.Recv(), true, pass.Pkg, sibling)
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			if takesContextFirst(fn.Type().(*types.Signature)) {
				pass.Reportf(call.Pos(),
					"%s has a context-threading sibling %s; dispatch code must call it with the request context",
					name, sibling)
			}
			return true
		})
	}
	return nil
}
