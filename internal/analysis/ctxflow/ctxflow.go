// Package ctxflow is the static half of the server's deadline contract:
// a request's context must flow from the HTTP handler through the
// dispatch layer into the query kernels unbroken. The dynamic half — the
// cancellation regression tests in internal/algo and internal/query/plan
// — proves a threaded context stops a running scan; this check proves
// the dispatch code actually threads one.
//
// Two ways of severing the flow are convicted in server/dispatch scope:
//
//  1. Calling a context-threading query entry point (QueryContext,
//     ExecCtx, RunCtx) with a fresh context.Background() or
//     context.TODO() as the context argument. The call compiles and
//     runs, but the client's deadline and disconnect no longer reach
//     the kernel, so an abandoned request keeps burning an inflight
//     slot until the query finishes on its own. Root contexts at
//     non-query call sites (signal handling, shutdown budgets, outbound
//     HTTP) are legitimate and not convicted.
//
//  2. Calling the context-free variant (Query, Exec, Run) on a value
//     whose type also offers the context-threading sibling. The ctx-free
//     surface exists for CLI tools and tests; dispatch code that has a
//     request context must use the sibling.
//
// A third shape is convicted in a wider scope that also covers the
// engine packages:
//
//  3. Calling a parallel query kernel (par.BFS, Reachable, Neighborhood,
//     EvalPath, FindMatches, AggregateNodeProp, Degrees) with an inline
//     context.Background()/TODO(). Engines dispatch these kernels from
//     inside their Essentials closures; minting a fresh root there severs
//     every caller's deadline at the last hop, exactly where it matters
//     most — the kernels are the only cancellation-aware code on the
//     path. Engines must thread the context they were handed
//     (engine.ContextEssentials); only the ctx-free compatibility
//     wrappers (Essentials() calling EssentialsCtx(context.Background()))
//     may start a root, and those call EssentialsCtx, not a kernel, so
//     they stay unconvicted.
//
// The check is name-based and flow-insensitive like the rest of the
// suite: it does not chase a Background() stored in a variable first.
// That hole is acceptable — the idiom the analyzer polices is the
// inline one, and the cancellation tests catch the rest dynamically.
package ctxflow

import (
	"go/ast"
	"go/types"

	"gdbm/internal/analysis"
)

// scope: the networked service and its dispatch layer — the only code
// that holds a per-request context and can lose it. Kernels and CLI
// tools legitimately start from Background.
var scope = []string{
	"gdbm/internal/server",
	"gdbm/cmd/gdbserver",
	"gdbm/cmd/gdbload",
}

// kernelScope is where rule 3 applies: everywhere rules 1–2 do, plus the
// engine packages, whose Essentials closures are the last dispatch hop
// before the parallel kernels. Rules 1–2 stay out of engine scope on
// purpose — engines legitimately expose ctx-free compatibility surfaces
// (Query wrapping QueryContext, Essentials wrapping EssentialsCtx).
var kernelScope = []string{
	"gdbm/internal/engines",
}

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "server/dispatch code must thread the request context into query entry points: " +
		"no context.Background()/TODO() at a ctx-taking call, no ctx-free Query/Exec/Run " +
		"where a context-threading sibling exists",
	AppliesTo: func(pkgPath string) bool {
		for _, s := range scope {
			if analysis.PathIsUnder(pkgPath, s) {
				return true
			}
		}
		for _, s := range kernelScope {
			if analysis.PathIsUnder(pkgPath, s) {
				return true
			}
		}
		return false
	},
	Run: run,
}

// ctxSiblings maps a context-free query entry point to the
// context-threading variant that dispatch code must prefer.
var ctxSiblings = map[string]string{
	"Query": "QueryContext",
	"Exec":  "ExecCtx",
	"Run":   "RunCtx",
}

// ctxEntryPoints is the set of context-threading query entry points
// rule 1 guards; a root context anywhere else (WithTimeout, signal
// handling, outbound requests) is legitimate.
var ctxEntryPoints = map[string]bool{
	"QueryContext": true,
	"ExecCtx":      true,
	"RunCtx":       true,
}

// parKernels is the set of parallel query kernels rule 3 guards. These
// are the cancellation-aware leaves of the dispatch chain; feeding them
// a fresh root discards every deadline accumulated above.
var parKernels = map[string]bool{
	"BFS":               true,
	"Reachable":         true,
	"Neighborhood":      true,
	"EvalPath":          true,
	"FindMatches":       true,
	"AggregateNodeProp": true,
	"Degrees":           true,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// takesContextFirst reports whether sig's first parameter is
// context.Context.
func takesContextFirst(sig *types.Signature) bool {
	return sig != nil && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

func run(pass *analysis.Pass) error {
	// Rules 1–2 run only in the server/dispatch scope; rule 3 runs
	// everywhere the analyzer applies (including the engine packages).
	dispatchScope := false
	for _, s := range scope {
		if analysis.PathIsUnder(pass.PkgPath, s) {
			dispatchScope = true
			break
		}
	}

	// freshContext reports whether e is an inline context.Background() or
	// context.TODO() call, returning which.
	freshContext := func(e ast.Expr) (string, bool) {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return "", false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return "", false
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return "", false
		}
		pn, ok := pass.Info.Uses[pkg].(*types.PkgName)
		if !ok || pn.Imported().Path() != "context" {
			return "", false
		}
		return "context." + sel.Sel.Name + "()", true
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name

			// Rule 3: a parallel kernel fed a fresh root context. Applies
			// in engine scope too — the kernels are the cancellation-aware
			// leaves, so a root minted here discards the caller's deadline
			// at the last possible hop.
			if sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature); ok &&
				parKernels[name] && takesContextFirst(sig) && len(call.Args) > 0 {
				if src, fresh := freshContext(call.Args[0]); fresh {
					pass.Reportf(call.Pos(),
						"%s severs the caller's context at the parallel kernel %s; thread the ctx handed to the dispatch site (EssentialsCtx) instead",
						src, name)
					return true
				}
			}

			if !dispatchScope {
				return true
			}

			// Rule 1: a query entry point fed a fresh root context.
			if sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature); ok &&
				ctxEntryPoints[name] && takesContextFirst(sig) && len(call.Args) > 0 {
				if src, fresh := freshContext(call.Args[0]); fresh {
					pass.Reportf(call.Pos(),
						"%s severs the request context at %s; the deadline and client disconnect no longer reach the kernel — thread the caller's ctx",
						src, name)
					return true
				}
			}

			// Rule 2: the ctx-free variant used where the ctx sibling exists.
			sibling, isPlain := ctxSiblings[name]
			if !isPlain {
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || selection.Kind() != types.MethodVal {
				return true
			}
			obj, _, _ := types.LookupFieldOrMethod(selection.Recv(), true, pass.Pkg, sibling)
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			if takesContextFirst(fn.Type().(*types.Signature)) {
				pass.Reportf(call.Pos(),
					"%s has a context-threading sibling %s; dispatch code must call it with the request context",
					name, sibling)
			}
			return true
		})
	}
	return nil
}
