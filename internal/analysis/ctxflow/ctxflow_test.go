package ctxflow_test

import (
	"testing"

	"gdbm/internal/analysis/analysistest"
	"gdbm/internal/analysis/ctxflow"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/src/ctxsrv", "gdbm/internal/server/ctxsrv")
}

func TestKernelViolations(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/src/ctxeng", "gdbm/internal/engines/ctxeng")
}

func TestScope(t *testing.T) {
	for _, p := range []string{
		"gdbm/internal/server",
		"gdbm/internal/server/loadgen",
		"gdbm/cmd/gdbserver",
		"gdbm/cmd/gdbload",
		// Engine packages are in scope for the kernel rule.
		"gdbm/internal/engines/neograph",
		"gdbm/internal/engines/bitmapdb",
		"gdbm/internal/engines/triplestore",
		"gdbm/internal/engines/infinigraph",
	} {
		if !ctxflow.Analyzer.AppliesTo(p) {
			t.Errorf("%s should be in ctxflow scope", p)
		}
	}
	// CLI tools and kernels legitimately start from context.Background.
	for _, p := range []string{
		"gdbm/cmd/gdbbench",
		"gdbm/internal/query/gql",
		"gdbm/internal/algo",
		"gdbm/internal/algo/par",
	} {
		if ctxflow.Analyzer.AppliesTo(p) {
			t.Errorf("%s should be out of ctxflow scope", p)
		}
	}
}
