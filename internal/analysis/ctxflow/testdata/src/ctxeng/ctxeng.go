// Package ctxeng is a ctxflow fixture for rule 3; analysistest presents
// it under a virtual import path inside internal/engines, where only the
// kernel rule applies — the dispatch rules 1–2 must stay silent here.
package ctxeng

import "context"

type nodeID uint64

// kern mimics the parallel kernel surface of internal/algo/par: every
// entry point takes a context first.
type kern struct{}

func (kern) BFS(ctx context.Context, start nodeID) error                { return nil }
func (kern) Reachable(ctx context.Context, a, b nodeID) (bool, error)   { return false, nil }
func (kern) Neighborhood(ctx context.Context, n nodeID, k int) []nodeID { return nil }
func (kern) EvalPath(ctx context.Context, expr string) []nodeID         { return nil }
func (kern) FindMatches(ctx context.Context, p string) []nodeID         { return nil }
func (kern) AggregateNodeProp(ctx context.Context, label string) int    { return 0 }
func (kern) Degrees(ctx context.Context) (int, error)                   { return 0, nil }
func (kern) SomethingElse(ctx context.Context, n nodeID) error          { return nil }
func (kern) Neighbourhood(notCtx int, n nodeID) []nodeID                { return nil } // decoy: no ctx param

// eng mimics an engine with both query surfaces. Rules 1–2 do not apply
// in engine scope, so none of its calls below are convicted.
type eng struct{}

type result struct{}

func (eng) Query(stmt string) (result, error) { return result{}, nil }
func (eng) QueryContext(ctx context.Context, stmt string) (result, error) {
	return result{}, nil
}

// Violations: a kernel fed an inline fresh root inside engine dispatch.

func seversNeighborhood(ctx context.Context, p kern) {
	p.Neighborhood(context.Background(), 1, 2) // want `context\.Background\(\) severs the caller's context at the parallel kernel Neighborhood`
}

func seversAggregate(ctx context.Context, p kern) {
	p.AggregateNodeProp(context.TODO(), "person") // want `context\.TODO\(\) severs the caller's context at the parallel kernel AggregateNodeProp`
}

func seversBFS(p kern) {
	_ = p.BFS(context.Background(), 1) // want `severs the caller's context at the parallel kernel BFS`
}

func seversInsideClosure(ctx context.Context, p kern) {
	// The engines' real shape: the kernel call sits inside an Essentials
	// closure. Traversal descends into function literals.
	f := func(n nodeID, k int) []nodeID {
		return p.Neighborhood(context.Background(), n, k) // want `severs the caller's context at the parallel kernel Neighborhood`
	}
	_ = f
}

// Allowed.

func threads(ctx context.Context, p kern) {
	_ = p.Neighborhood(ctx, 1, 2)
	_ = p.AggregateNodeProp(ctx, "person")
}

func derived(ctx context.Context, p kern) {
	c, cancel := context.WithTimeout(ctx, 0)
	defer cancel()
	_ = p.Neighborhood(c, 1, 2)
}

func notAKernel(p kern) {
	// Background at a ctx-taking call that is not a kernel is legitimate
	// in engine scope (compatibility wrappers, startup code).
	_ = p.SomethingElse(context.Background(), 1)
}

func wrongShape(p kern) {
	// Name collides with nothing: first parameter is not context.Context.
	_ = p.Neighbourhood(0, 1)
}

func compatWrapper(e eng) (result, error) {
	// The ctx-free compatibility wrapper idiom: engines expose Query()
	// forwarding to QueryContext(context.Background(), ...). Rule 1 is
	// dispatch-scope only, so this is NOT convicted here — the engine
	// genuinely has no caller context in this surface.
	return e.QueryContext(context.Background(), "q")
}

func ctxFreeSurface(e eng) {
	// Rule 2 (sibling preference) is likewise dispatch-scope only.
	_, _ = e.Query("q")
}

func sanctioned(p kern) {
	_ = p.Neighborhood(context.Background(), 1, 2) //gdbvet:allow(ctxflow): fixture demonstrating suppression of the kernel rule
}
