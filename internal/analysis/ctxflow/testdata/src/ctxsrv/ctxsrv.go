// Package ctxsrv is a ctxflow fixture; analysistest presents it under a
// virtual import path inside internal/server.
package ctxsrv

import "context"

type result struct{}

// eng mimics an engine with both query surfaces, like the real
// ContextQuerier engines.
type eng struct{}

func (eng) Query(stmt string) (result, error) { return result{}, nil }
func (eng) QueryContext(ctx context.Context, stmt string) (result, error) {
	return result{}, nil
}

// lang mimics a query language with Exec/ExecCtx and Run/RunCtx pairs.
type lang struct{}

func (lang) Exec(stmt string) error                         { return nil }
func (lang) ExecCtx(ctx context.Context, stmt string) error { return nil }
func (lang) Run(q string) error                             { return nil }
func (lang) RunCtx(ctx context.Context, q string) error     { return nil }

// plain has only the ctx-free surface; calling it is not a conviction
// because there is no sibling to prefer.
type plain struct{}

func (plain) Query(stmt string) (result, error) { return result{}, nil }

// decoy has a Query/QueryContext pair whose "context" is not
// context.Context; the sibling rule must not fire on it.
type decoy struct{}

func (decoy) Query(stmt string) error               { return nil }
func (decoy) QueryContext(n int, stmt string) error { return nil }

// Violations.

func seversBackground(ctx context.Context, e eng) {
	e.QueryContext(context.Background(), "q") // want `context\.Background\(\) severs the request context`
}

func seversTODO(ctx context.Context, e eng) {
	e.QueryContext(context.TODO(), "q") // want `context\.TODO\(\) severs the request context`
}

func seversExec(ctx context.Context, l lang) {
	l.ExecCtx(context.Background(), "q") // want `severs the request context at ExecCtx`
}

func seversRun(ctx context.Context, l lang) {
	l.RunCtx(context.Background(), "q") // want `severs the request context at RunCtx`
}

func dropsCtx(ctx context.Context, e eng) {
	e.Query("q") // want `Query has a context-threading sibling QueryContext`
}

func dropsExec(ctx context.Context, l lang) {
	l.Exec("q") // want `Exec has a context-threading sibling ExecCtx`
}

func dropsRun(ctx context.Context, l lang) {
	l.Run("q") // want `Run has a context-threading sibling RunCtx`
}

// Allowed.

func threads(ctx context.Context, e eng, l lang) {
	_, _ = e.QueryContext(ctx, "q")
	_ = l.ExecCtx(ctx, "q")
	_ = l.RunCtx(ctx, "q")
}

func derived(ctx context.Context, e eng) {
	// Deriving a tighter deadline from the request context keeps the
	// chain intact; only fresh roots are convicted.
	c, cancel := context.WithTimeout(ctx, 0)
	defer cancel()
	_, _ = e.QueryContext(c, "q")
}

func rootElsewhere(e eng) {
	// A root context at a non-query call site (shutdown budgets, signal
	// handling) is legitimate; only the query entry points are guarded.
	c, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, _ = e.QueryContext(c, "q")
}

func noSibling(p plain) {
	// No QueryContext exists on plain; nothing to prefer.
	_, _ = p.Query("q")
}

func wrongShapeSibling(d decoy) {
	// decoy.QueryContext does not take context.Context; not a sibling.
	_ = d.Query("q")
}

func sanctioned(e eng) {
	_, _ = e.Query("q") //gdbvet:allow(ctxflow): fixture demonstrating the suppression comment
}

func sanctionedSever(e eng) {
	// Suppression works on the sever rule too: the directive is consumed
	// (so it does not trip the unused-directive hygiene check) and the
	// diagnostic is routed to the suppressed set, not reported here.
	_, _ = e.QueryContext(context.Background(), "q") //gdbvet:allow(ctxflow): fixture demonstrating suppression of the sever rule
}

// Known holes — shapes the analyzer deliberately skips, pinned here so
// the silence is a tested contract rather than an accident. If the
// analyzer ever grows flow-sensitivity or callback tracking, these
// lines acquire want comments instead of surprising downstream code.

func rootViaVariable(ctx context.Context, e eng) {
	// The package doc promises flow-insensitivity: a fresh root stored
	// in a variable before the call is not chased. The dynamic
	// cancellation tests are the backstop for this hole.
	c := context.Background()
	_, _ = e.QueryContext(c, "q")
}

func methodValueCallback(e eng, l lang) {
	// A ctx-free entry point passed as a method value never appears as
	// the function of a call expression, so rule 2 cannot see it being
	// invoked inside the runner.
	runQueries(e.Query)
	runHooks(l.Exec, l.Run)
}

func methodValueThroughVariable(e eng) {
	// Calling through a bound method value: the call's function is a
	// plain identifier, not a selector, so the sibling lookup never runs.
	q := e.Query
	_, _ = q("q")
}

func closureCallback(e eng) {
	// Contrast: a closure wrapping the ctx-free call IS convicted —
	// traversal descends into function literals. Only the uninvoked
	// method value escapes the check.
	runQueries(func(stmt string) (result, error) {
		return e.Query(stmt) // want `Query has a context-threading sibling QueryContext`
	})
}

func runQueries(f func(string) (result, error)) { _, _ = f("q") }
func runHooks(hooks ...any)                     {}
