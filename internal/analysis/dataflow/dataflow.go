// Package dataflow is the forward worklist solver the gdbvet analyzers
// run over the cfg package's graphs. The lattice is pluggable: a
// Problem supplies the entry fact, the join, and the per-node transfer
// function, plus an optional per-edge hook that refines a fact along a
// branch edge (the hook is how closeleak drops a Close obligation on
// the `err != nil` arm of a constructor check).
//
// Facts are arbitrary values of type F. The solver never mutates a
// fact; Transfer and Edge must return fresh or shared-immutable values,
// and Join must be commutative and idempotent. Unreachable blocks are
// never visited and appear in neither result map, so an analysis can
// distinguish "no fact" from "empty fact".
package dataflow

import (
	"go/ast"

	"gdbm/internal/analysis/cfg"
)

// Problem describes one forward dataflow analysis.
type Problem[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Join combines facts meeting at a block. It must be commutative
	// and idempotent.
	Join func(a, b F) F
	// Equal reports whether two facts are equal; it bounds the
	// iteration.
	Equal func(a, b F) bool
	// Transfer pushes the fact across one node of a block, in order.
	Transfer func(n ast.Node, f F) F
	// Edge, if non-nil, refines the fact flowing along a conditional
	// edge (e.Cond is the atomic condition, e.Branch its value on this
	// edge). Unconditional edges pass the fact through unchanged.
	Edge func(e cfg.Edge, f F) F
}

// Result holds the solved facts: In is the joined fact at block entry,
// Out the fact after the block's last node. Blocks never reached hold
// no entry.
type Result[F any] struct {
	In  map[*cfg.Block]F
	Out map[*cfg.Block]F
}

// Forward solves the problem over g to a fixpoint and returns the
// per-block facts.
func Forward[F any](g *cfg.Graph, p Problem[F]) Result[F] {
	res := Result[F]{
		In:  make(map[*cfg.Block]F, len(g.Blocks)),
		Out: make(map[*cfg.Block]F, len(g.Blocks)),
	}
	res.In[g.Entry] = p.Entry

	// Worklist seeded with Entry; blocks enter the list when their In
	// fact changes.
	work := []*cfg.Block{g.Entry}
	queued := map[*cfg.Block]bool{g.Entry: true}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		f := res.In[b]
		for _, n := range b.Nodes {
			f = p.Transfer(n, f)
		}
		res.Out[b] = f

		for _, e := range b.Succs {
			ef := f
			if p.Edge != nil && e.Cond != nil {
				ef = p.Edge(e, ef)
			}
			old, seen := res.In[e.To]
			var next F
			if seen {
				next = p.Join(old, ef)
				if p.Equal(old, next) {
					continue
				}
			} else {
				next = ef
			}
			res.In[e.To] = next
			if !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return res
}
