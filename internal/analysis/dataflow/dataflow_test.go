package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"gdbm/internal/analysis/cfg"
	"gdbm/internal/analysis/dataflow"
)

func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return cfg.Build(fd.Body, cfg.Options{})
		}
	}
	t.Fatal("no function")
	return nil
}

// checkedProblem is a must-analysis: the fact is true when check() has
// been called on every path reaching the point.
func checkedProblem() dataflow.Problem[bool] {
	return dataflow.Problem[bool]{
		Entry: false,
		Join:  func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
		Transfer: func(n ast.Node, f bool) bool {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "check" {
						return true
					}
				}
			}
			return f
		},
	}
}

func TestMustCheckBothArms(t *testing.T) {
	g := build(t, `
func f(p bool) {
	if p {
		check()
	} else {
		check()
	}
}`)
	res := dataflow.Forward(g, checkedProblem())
	if got, ok := res.In[g.Exit]; !ok || !got {
		t.Errorf("check() on both arms: fact at exit = %v (reached=%v), want true", got, ok)
	}
}

func TestMustCheckOneArmFails(t *testing.T) {
	g := build(t, `
func f(p bool) {
	if p {
		check()
	}
}`)
	res := dataflow.Forward(g, checkedProblem())
	if got := res.In[g.Exit]; got {
		t.Error("check() on one arm must not satisfy the must-analysis")
	}
}

func TestLoopFixpoint(t *testing.T) {
	// The loop may run zero times, so the check inside it does not
	// dominate the exit.
	g := build(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		check()
	}
}`)
	res := dataflow.Forward(g, checkedProblem())
	if got := res.In[g.Exit]; got {
		t.Error("a check inside a maybe-zero-trip loop must not count")
	}
	// After an unconditional check before the loop it does.
	g = build(t, `
func f(n int) {
	check()
	for i := 0; i < n; i++ {
		work()
	}
}`)
	res = dataflow.Forward(g, checkedProblem())
	if got := res.In[g.Exit]; !got {
		t.Error("check before the loop dominates the exit")
	}
}

// TestEdgeRefinement drops the fact on the false edge of the condition
// ident "armed", modelling branch-sensitive obligation transfer.
func TestEdgeRefinement(t *testing.T) {
	g := build(t, `
func f(armed bool) {
	check()
	if armed {
		use()
	} else {
		other()
	}
}`)
	p := checkedProblem()
	p.Edge = func(e cfg.Edge, f bool) bool {
		if id, ok := e.Cond.(*ast.Ident); ok && id.Name == "armed" && !e.Branch {
			return false
		}
		return f
	}
	res := dataflow.Forward(g, p)
	// The join of true (then arm) and false (refined else arm) is false.
	if got := res.In[g.Exit]; got {
		t.Error("edge refinement on the false arm must reach the exit join")
	}
}

func TestUnreachableBlocksCarryNoFacts(t *testing.T) {
	g := build(t, `
func f() {
	check()
	return
	dead()
}`)
	res := dataflow.Forward(g, checkedProblem())
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "dead" {
				if _, reached := res.In[b]; reached {
					t.Error("dead code after return must not be visited")
				}
			}
		}
	}
	if got, ok := res.In[g.Exit]; !ok || !got {
		t.Error("exit fact must come from the live path")
	}
}
