// Package itererr enforces the iteration-error contract on every path
// through a function: the error produced by iterating a graph must be
// looked at before the results are trusted. This is the bug class the
// repo has fixed by hand twice — algo kernels building Degrees/Diameter
// over swallowed Nodes/Edges errors, then a second sweep through the
// engines — and each fix needed a FlakyGraph regression test to stay
// fixed. The analyzer pins the whole class statically.
//
// Two iteration shapes are guarded, both only when the API comes from
// this module:
//
//  1. Callback iteration — the model.Graph idiom `Nodes(fn func(..)
//     bool) error` and its siblings (Edges, Neighbors, HyperEdges,
//     Incident). The returned error must be consumed on every path:
//     discarding it (expression statement, defer/go, blank
//     assignment), letting an assigned error variable reach a return
//     without a use, or overwriting it unchecked are convictions.
//
//  2. Cursor iteration — any call returning a value whose method set
//     has both `Next() bool` and `Err() error`. After the loop, Err()
//     must be called on every path before the function returns, or the
//     cursor must escape (returned, stored, or passed to a function
//     that the cross-package summaries cannot prove ignores it).
//
// Unlike the older name-based checks (syncerr, obsctx), this analyzer
// is path-sensitive: it runs a forward dataflow over the function's
// CFG, so an error checked in one branch but not the other is caught,
// and a check that dominates every exit is accepted wherever it
// appears. A path ending in panic or os.Exit/log.Fatal owes no check.
package itererr

import (
	"go/ast"
	"go/token"
	"go/types"

	"gdbm/internal/analysis"
	"gdbm/internal/analysis/cfg"
	"gdbm/internal/analysis/dataflow"
)

// Analyzer is the itererr check.
var Analyzer = &analysis.Analyzer{
	Name: "itererr",
	Doc: "the error from iterating a graph (callback iteration or a Next/Err cursor) " +
		"must be checked on every path before the results are used",
	Run: run,
}

// iterMethods are the module's callback-iteration entry points.
var iterMethods = map[string]bool{
	"Nodes": true, "Edges": true, "Neighbors": true,
	"HyperEdges": true, "Incident": true,
}

func run(pass *analysis.Pass) error {
	a := &checker{pass: pass, module: analysis.ModulePath(pass.PkgPath)}
	analysis.FuncBodies(pass.Files, a.checkBody)
	return nil
}

type siteKind int

const (
	callbackSite siteKind = iota
	cursorSite
)

// site is one tracked iteration whose error obligation is live.
type site struct {
	id    int
	kind  siteKind
	label string // printable call, e.g. "g.Nodes"
	pos   token.Pos
	obj   types.Object // the error variable (callback) or cursor variable
	// errObj is the error returned alongside a cursor, when present;
	// on its non-nil branch the cursor is dead and owes nothing.
	errObj   types.Object
	def      ast.Node // the defining statement
	reported bool
}

type checker struct {
	pass   *analysis.Pass
	module string
}

// iterCall matches a call to a module-internal callback-iteration
// method: named like an iterator, takes a func(...) bool, returns
// exactly one error.
func (c *checker) iterCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !iterMethods[sel.Sel.Name] {
		return "", false
	}
	selection, ok := c.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || analysis.ModulePath(fn.Pkg().Path()) != c.module {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 || !isError(sig.Results().At(0).Type()) {
		return "", false
	}
	hasCallback := false
	for i := 0; i < sig.Params().Len(); i++ {
		if fsig, ok := sig.Params().At(i).Type().Underlying().(*types.Signature); ok {
			if fsig.Results().Len() == 1 && isBool(fsig.Results().At(0).Type()) {
				hasCallback = true
			}
		}
	}
	if !hasCallback {
		return "", false
	}
	return types.ExprString(sel.X) + "." + sel.Sel.Name, true
}

// cursorResult finds a module-internal iterator (Next() bool + Err()
// error in the method set) among the call's results; errIdx is the
// index of an accompanying error result, or -1.
func (c *checker) cursorResult(call *ast.CallExpr) (resIdx, errIdx int, label string, ok bool) {
	tv, found := c.pass.Info.Types[call]
	if !found {
		return 0, -1, "", false
	}
	check := func(t types.Type) bool {
		named := namedOrPtr(t)
		if named == nil || named.Obj().Pkg() == nil ||
			analysis.ModulePath(named.Obj().Pkg().Path()) != c.module {
			// Interface-typed cursors from the module count too.
			if !isModuleInterface(t, c.module) {
				return false
			}
		}
		return hasMethodShape(t, "Next", func(s *types.Signature) bool {
			return s.Params().Len() == 0 && s.Results().Len() == 1 && isBool(s.Results().At(0).Type())
		}) && hasMethodShape(t, "Err", func(s *types.Signature) bool {
			return s.Params().Len() == 0 && s.Results().Len() == 1 && isError(s.Results().At(0).Type())
		})
	}
	if tuple, isTuple := tv.Type.(*types.Tuple); isTuple {
		resIdx, errIdx = -1, -1
		for i := 0; i < tuple.Len(); i++ {
			t := tuple.At(i).Type()
			if resIdx < 0 && check(t) {
				resIdx = i
			} else if isError(t) {
				errIdx = i
			}
		}
		if resIdx < 0 {
			return 0, -1, "", false
		}
		return resIdx, errIdx, types.ExprString(call.Fun), true
	}
	if check(tv.Type) {
		return 0, -1, types.ExprString(call.Fun), true
	}
	return 0, -1, "", false
}

// checkBody analyzes one function-like body.
func (c *checker) checkBody(name string, body *ast.BlockStmt) {
	sites := c.collect(body)
	if len(sites) == 0 {
		return
	}
	byObj := map[types.Object][]*site{}
	byDef := map[ast.Node][]*site{}
	for _, s := range sites {
		if s.obj != nil {
			byObj[s.obj] = append(byObj[s.obj], s)
		}
		byDef[s.def] = append(byDef[s.def], s)
	}

	g := cfg.Build(body, cfg.Options{NoReturn: analysis.NoReturnCall(c.pass.Info)})

	// A deferred statement runs at every exit, after the sites are
	// defined, so a use inside one (typically a closure inspecting a
	// captured err) discharges the obligation regardless of where the
	// defer statement itself appears in flow order.
	deferChecked := map[types.Object]bool{}
	for _, d := range g.Defers {
		ops := c.classify(d, byObj, byDef)
		for _, obj := range ops.uses {
			deferChecked[obj] = true
		}
		for _, obj := range ops.errChecks {
			deferChecked[obj] = true
		}
	}

	// fact: the set of site ids whose error is still unchecked.
	type fact = map[int]bool
	kill := func(f fact, pred func(*site) bool) fact {
		var out fact
		for id := range f {
			if pred(sites[id]) {
				if out == nil {
					out = make(fact, len(f))
					for k := range f {
						out[k] = true
					}
				}
				delete(out, id)
			}
		}
		if out == nil {
			return f
		}
		return out
	}

	transfer := func(n ast.Node, f fact, report bool) fact {
		ops := c.classify(n, byObj, byDef)
		// 1. Uses check the error / escape the cursor.
		for _, obj := range ops.uses {
			f = kill(f, func(s *site) bool { return s.obj == obj })
		}
		// 2. Cursor Err() calls and refined passes.
		for _, obj := range ops.errChecks {
			f = kill(f, func(s *site) bool { return s.obj == obj })
		}
		for _, p := range ops.passes {
			p := p
			f = kill(f, func(s *site) bool {
				if s.obj != p.obj {
					return false
				}
				if s.kind == callbackSite {
					return true // passing the error on counts as a check
				}
				fs := c.pass.Summaries.Func(p.callee)
				if fs == nil {
					return true // unknown callee: assume it checks
				}
				return fs.ChecksErr[p.argIdx] || fs.Escapes[p.argIdx]
			})
		}
		if ops.errorExit {
			f = kill(f, func(*site) bool { return true })
		}
		// 3. Reassignments and redefinitions lose an unchecked error.
		lose := func(obj types.Object, exceptDef ast.Node) {
			f = kill(f, func(s *site) bool {
				dead := s.obj == obj && s.def != exceptDef
				if dead && report && !s.reported {
					s.reported = true
					c.pass.Reportf(s.pos,
						"error from %s is overwritten before it is checked", s.label)
				}
				return dead
			})
		}
		for _, obj := range ops.reassigns {
			lose(obj, nil)
		}
		for _, s := range ops.adds {
			if s.obj != nil {
				lose(s.obj, s.def)
			}
			out := make(fact, len(f)+1)
			for k := range f {
				out[k] = true
			}
			out[s.id] = true
			f = out
		}
		return f
	}

	res := dataflow.Forward(g, dataflow.Problem[fact]{
		Entry: fact{},
		Join: func(a, b fact) fact {
			if len(a) == 0 {
				return b
			}
			if len(b) == 0 {
				return a
			}
			out := make(fact, len(a)+len(b))
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(n ast.Node, f fact) fact { return transfer(n, f, false) },
		Edge: func(e cfg.Edge, f fact) fact {
			// On the branch where a cursor's paired constructor error is
			// non-nil, the cursor is dead and owes no Err check.
			obj, nonNil, ok := nilCheck(c.pass.Info, e.Cond)
			if !ok {
				return f
			}
			return kill(f, func(s *site) bool {
				if s.kind != cursorSite {
					return false
				}
				if s.errObj != nil && s.errObj == obj && nonNil == e.Branch {
					return true
				}
				// `if it == nil` on the nil arm likewise.
				return s.obj == obj && !nonNil == e.Branch
			})
		},
	})

	// Replay reached blocks once, reporting overwrites in flow order.
	for _, b := range g.Blocks {
		f, reached := res.In[b]
		if !reached {
			continue
		}
		for _, n := range b.Nodes {
			f = transfer(n, f, true)
		}
	}
	// Anything still unchecked at Exit on some path is the conviction.
	for id := range res.In[g.Exit] {
		s := sites[id]
		if s.reported || deferChecked[s.obj] {
			continue
		}
		s.reported = true
		switch s.kind {
		case callbackSite:
			c.pass.Reportf(s.pos,
				"error from %s is not checked on every path to return; a failed iteration must not pass for an empty one", s.label)
		case cursorSite:
			c.pass.Reportf(s.pos,
				"iterator from %s reaches a return without Err() being checked on every path", s.label)
		}
	}
}

// collect finds the iteration sites of body (not descending into
// nested function literals, which are analyzed on their own) and
// reports the immediate discards.
func (c *checker) collect(body *ast.BlockStmt) []*site {
	var sites []*site
	add := func(k siteKind, label string, pos token.Pos, obj, errObj types.Object, def ast.Node) {
		sites = append(sites, &site{
			id: len(sites), kind: k, label: label, pos: pos,
			obj: obj, errObj: errObj, def: def,
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if label, ok := c.iterCall(call); ok {
					c.pass.Reportf(call.Pos(),
						"error from %s is discarded; a failed iteration silently passes for an empty one", label)
				} else if _, _, label, ok := c.cursorResult(call); ok {
					c.pass.Reportf(call.Pos(),
						"iterator from %s is discarded; its Err() can never be checked", label)
				}
			}
		case *ast.DeferStmt:
			if label, ok := c.iterCall(n.Call); ok {
				c.pass.Reportf(n.Pos(), "defer discards the error from %s", label)
			}
		case *ast.GoStmt:
			if label, ok := c.iterCall(n.Call); ok {
				c.pass.Reportf(n.Pos(), "go statement discards the error from %s", label)
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if label, ok := c.iterCall(call); ok && len(n.Lhs) == 1 {
				obj := lhsObject(c.pass.Info, n.Lhs[0])
				if isBlank(n.Lhs[0]) {
					c.pass.Reportf(n.Pos(),
						"error from %s is assigned to the blank identifier; check it", label)
				} else if obj != nil {
					add(callbackSite, label, call.Pos(), obj, nil, n)
				}
				return true
			}
			if resIdx, errIdx, label, ok := c.cursorResult(call); ok && resIdx < len(n.Lhs) {
				obj := lhsObject(c.pass.Info, n.Lhs[resIdx])
				var errObj types.Object
				if errIdx >= 0 && errIdx < len(n.Lhs) {
					errObj = lhsObject(c.pass.Info, n.Lhs[errIdx])
				}
				if isBlank(n.Lhs[resIdx]) {
					c.pass.Reportf(n.Pos(),
						"iterator from %s is assigned to the blank identifier; its Err() can never be checked", label)
				} else if obj != nil {
					add(cursorSite, label, call.Pos(), obj, errObj, n)
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 1 || len(vs.Names) != 1 {
					continue
				}
				call, ok := vs.Values[0].(*ast.CallExpr)
				if !ok {
					continue
				}
				if label, ok := c.iterCall(call); ok {
					if obj := c.pass.Info.Defs[vs.Names[0]]; obj != nil {
						add(callbackSite, label, call.Pos(), obj, nil, n)
					}
				}
			}
		}
		return true
	})
	return sites
}

// passEvent is a tracked variable handed to a call as a plain argument.
type passEvent struct {
	obj    types.Object
	callee *types.Func // nil when the target is not statically known
	argIdx int
}

type nodeOps struct {
	uses      []types.Object
	errChecks []types.Object
	passes    []passEvent
	reassigns []types.Object
	adds      []*site
	// errorExit marks a return carrying some other non-nil error-typed
	// result: the function fails on this path, so nothing is being
	// swallowed and every obligation is discharged. Only a failed
	// iteration passing for a success is the bug class.
	errorExit bool
}

// classify extracts one CFG node's effects on the tracked sites.
func (c *checker) classify(n ast.Node, byObj map[types.Object][]*site, byDef map[ast.Node][]*site) nodeOps {
	var ops nodeOps
	ops.adds = byDef[n]

	tracked := func(e ast.Expr) (types.Object, *site) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil, nil
		}
		obj := c.pass.Info.ObjectOf(id)
		ss := byObj[obj]
		if len(ss) == 0 {
			return nil, nil
		}
		return obj, ss[0]
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if obj, _ := tracked(lhs); obj != nil {
						if len(byDef[x]) == 0 || !defines(byDef[x], obj) {
							ops.reassigns = append(ops.reassigns, obj)
						}
					} else if _, isIdent := lhs.(*ast.Ident); !isIdent {
						walk(lhs)
					}
				}
				for _, rhs := range x.Rhs {
					walk(rhs)
				}
				return false
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if obj, s := tracked(sel.X); obj != nil {
						if s.kind == cursorSite {
							if sel.Sel.Name == "Err" {
								ops.errChecks = append(ops.errChecks, obj)
							}
							// Other method calls on the cursor are neutral.
						} else {
							ops.uses = append(ops.uses, obj)
						}
						for _, arg := range x.Args {
							walk(arg)
						}
						return false
					}
				}
				callee := calleeOf(c.pass.Info, x)
				for i, arg := range x.Args {
					if obj, _ := tracked(arg); obj != nil {
						ops.passes = append(ops.passes, passEvent{obj: obj, callee: callee, argIdx: i})
						continue
					}
					walk(arg)
				}
				walk(x.Fun)
				return false
			case *ast.SelectorExpr:
				if obj, s := tracked(x.X); obj != nil {
					if s.kind == cursorSite {
						if x.Sel.Name == "Err" {
							ops.errChecks = append(ops.errChecks, obj)
						}
					} else {
						ops.uses = append(ops.uses, obj)
					}
					return false
				}
				return true
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if obj, _ := tracked(r); obj != nil {
						ops.uses = append(ops.uses, obj)
						continue
					}
					if tv, ok := c.pass.Info.Types[r]; ok && !tv.IsNil() && implementsError(tv.Type) {
						ops.errorExit = true
					}
					walk(r)
				}
				return false
			case *ast.RangeStmt:
				// Only the operand evaluates at this CFG node; the body
				// lives in its own blocks.
				walk(x.X)
				for _, v := range []ast.Expr{x.Key, x.Value} {
					if v == nil {
						continue
					}
					if obj, _ := tracked(v); obj != nil {
						ops.reassigns = append(ops.reassigns, obj)
					}
				}
				return false
			case *ast.Ident:
				if obj, _ := tracked(x); obj != nil {
					ops.uses = append(ops.uses, obj)
				}
			}
			return true
		})
	}
	walk(n)
	return ops
}

func defines(ss []*site, obj types.Object) bool {
	for _, s := range ss {
		if s.obj == obj {
			return true
		}
	}
	return false
}

// nilCheck matches `x != nil` / `x == nil` and returns the checked
// object and whether the true branch is the non-nil one.
func nilCheck(info *types.Info, cond ast.Expr) (types.Object, bool, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return nil, false, false
	}
	op := be.Op.String()
	if op != "!=" && op != "==" {
		return nil, false, false
	}
	x, y := be.X, be.Y
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) {
		return nil, false, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return nil, false, false
	}
	return obj, op == "!=", true
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := info.ObjectOf(id)
	// A package-level error variable escapes the function; other code
	// owns checking it.
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return obj
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isError(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface) ||
		types.Implements(types.NewPointer(t), errorIface)
}

func isBool(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

// hasMethodShape reports whether t's method set (through a pointer)
// has a method of the given name whose signature passes ok.
func hasMethodShape(t types.Type, name string, ok func(*types.Signature) bool) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	fn, isFn := obj.(*types.Func)
	if !isFn {
		return false
	}
	sig, isSig := fn.Type().(*types.Signature)
	return isSig && ok(sig)
}

func namedOrPtr(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func isModuleInterface(t types.Type, module string) bool {
	named, ok := t.(*types.Named)
	if !ok || !types.IsInterface(t) {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && analysis.ModulePath(obj.Pkg().Path()) == module
}
