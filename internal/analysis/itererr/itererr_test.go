package itererr_test

import (
	"testing"

	"gdbm/internal/analysis/analysistest"
	"gdbm/internal/analysis/itererr"
)

func TestIterErr(t *testing.T) {
	analysistest.Run(t, itererr.Analyzer, "testdata/src/iter", "")
}
