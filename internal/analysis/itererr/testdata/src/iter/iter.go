// Package iter is the itererr fixture: a graph with callback iteration
// and a Next/Err cursor, exercised both correctly and incorrectly.
package iter

import (
	"fmt"
	"os"
)

// Graph is a stand-in for the model.Graph callback-iteration surface.
type Graph struct{ n int }

func (g *Graph) Nodes(fn func(id string) bool) error      { return nil }
func (g *Graph) Edges(fn func(from, to string) bool) error { return nil }

// Cursor is the Next/Err iterator shape.
type Cursor struct{ err error }

func (c *Cursor) Next() bool    { return false }
func (c *Cursor) Err() error    { return c.err }
func (c *Cursor) Value() string { return "" }

func (g *Graph) Scan() *Cursor                 { return &Cursor{} }
func (g *Graph) ScanChecked() (*Cursor, error) { return &Cursor{}, nil }

// --- violations -----------------------------------------------------

func discarded(g *Graph) {
	g.Nodes(func(string) bool { return true }) // want `error from g\.Nodes is discarded`
}

func blankAssigned(g *Graph) {
	_ = g.Edges(func(string, string) bool { return true }) // want `error from g\.Edges is assigned to the blank identifier`
}

func inGoroutine(g *Graph) {
	go g.Nodes(func(string) bool { return true }) // want `go statement discards the error from g\.Nodes`
}

func oneArmUnchecked(g *Graph, verbose bool) error {
	err := g.Nodes(func(string) bool { return true }) // want `error from g\.Nodes is not checked on every path`
	if verbose {
		if err != nil {
			return err
		}
	}
	return nil
}

func overwritten(g *Graph) error {
	err := g.Nodes(func(string) bool { return true }) // want `error from g\.Nodes is overwritten before it is checked`
	err = g.Edges(func(string, string) bool { return true })
	return err
}

func rangeSwallows(g *Graph, items []string) int {
	var err error
	_ = err // silence the compiler; the analyzer still tracks the site below
	n := 0
	err = g.Nodes(func(string) bool { return true }) // want `error from g\.Nodes is not checked on every path`
	for range items {
		n++
	}
	return n
}

func cursorUnchecked(g *Graph) []string {
	var out []string
	c := g.Scan() // want `iterator from g\.Scan reaches a return without Err\(\) being checked`
	for c.Next() {
		out = append(out, c.Value())
	}
	return out
}

func cursorDiscarded(g *Graph) {
	g.Scan() // want `iterator from g\.Scan is discarded`
}

func cursorIgnoredByCallee(g *Graph) {
	c := g.Scan() // want `iterator from g\.Scan reaches a return without Err\(\) being checked`
	poke(c)
}

// poke neither checks the cursor's Err nor lets it escape, so handing
// the cursor to it cannot discharge the caller's obligation.
func poke(c *Cursor) {
	c.Next()
}

// --- clean ----------------------------------------------------------

func checkedBothArms(g *Graph) error {
	err := g.Nodes(func(string) bool { return true })
	if err != nil {
		return fmt.Errorf("nodes: %w", err)
	}
	return nil
}

func returnedDirectly(g *Graph) error {
	return g.Edges(func(string, string) bool { return true })
}

func passedOn(g *Graph) {
	err := g.Nodes(func(string) bool { return true })
	record(err)
}

func record(err error) {
	if err != nil {
		os.Exit(1)
	}
}

func exitPath(g *Graph, abort bool) error {
	err := g.Nodes(func(string) bool { return true })
	if abort {
		os.Exit(2)
	}
	return err
}

func deferredCheck(g *Graph) {
	var err error
	defer func() {
		if err != nil {
			panic(err)
		}
	}()
	err = g.Nodes(func(string) bool { return true })
}

func rangeAfter(g *Graph, items []string) error {
	err := g.Edges(func(string, string) bool { return true })
	for _, it := range items {
		_ = it
	}
	return err
}

func cursorChecked(g *Graph) ([]string, error) {
	var out []string
	c := g.Scan()
	for c.Next() {
		out = append(out, c.Value())
	}
	return out, c.Err()
}

func cursorPairedErr(g *Graph) error {
	c, err := g.ScanChecked()
	if err != nil {
		return err
	}
	for c.Next() {
	}
	return c.Err()
}

func cursorEscapes(g *Graph) *Cursor {
	return g.Scan()
}

func cursorAliased(g *Graph) *Cursor {
	c := g.Scan()
	return c
}

func cursorHandedOff(g *Graph) {
	c := g.Scan()
	drain(c)
}

// drain checks Err on the caller's behalf; the summaries prove it.
func drain(c *Cursor) {
	for c.Next() {
	}
	if err := c.Err(); err != nil {
		panic(err)
	}
}

// failsWithOtherError exits the iterErr-wins way: the path returning the
// callback's own error never reads the iteration error, but it fails the
// function, so nothing is swallowed.
func failsWithOtherError(g *Graph) error {
	var bad error
	err := g.Nodes(func(id string) bool {
		if id == "" {
			bad = fmt.Errorf("empty id")
			return false
		}
		return true
	})
	if bad != nil {
		return bad
	}
	return err
}

func suppressed(g *Graph) {
	//gdbvet:allow(itererr): fixture exercises the suppression path
	g.Nodes(func(string) bool { return true })
}
