// Package load type-checks Go packages for the gdbvet analyzers using
// only the standard library and the go command: `go list -deps -export`
// enumerates the packages and compiles export data for every dependency,
// the target packages are parsed from source, and go/importer's gc
// importer resolves their imports from the export files. This is the same
// shape `go vet` uses, without depending on golang.org/x/tools.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"gdbm/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
}

// Packages loads, parses and type-checks every package matching the
// patterns (relative to dir; empty dir means the current directory) and
// returns one analysis target per non-dependency package. The shared
// file set and importer keep types identical across targets.
func Packages(dir string, patterns ...string) ([]*analysis.Target, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exportFile := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})

	var out2 []*analysis.Target
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue // test-only or empty directory
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("load: %s uses cgo, unsupported", p.ImportPath)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %s: %w", p.ImportPath, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: typecheck %s: %w", p.ImportPath, err)
		}
		out2 = append(out2, &analysis.Target{
			PkgPath: p.ImportPath,
			Fset:    fset,
			Files:   files,
			Pkg:     tpkg,
			Info:    info,
		})
	}
	return out2, nil
}
