// Package lockdiscipline enforces two mutex rules in the storage stack
// and the engines: a sync lock must never be copied by value (a copied
// mutex guards nothing), and a Lock acquired in a function must be
// released in that same function — directly or by defer — unless the
// handoff is annotated. Cross-function lock handoffs (tx.Manager's
// transaction-lifetime writer lock) are legitimate but must say so with a
// justified //gdbvet:allow(lockdiscipline) directive.
package lockdiscipline

import (
	"go/ast"
	"go/types"

	"gdbm/internal/analysis"
)

var scope = []string{
	"gdbm/internal/storage",
	"gdbm/internal/engines",
	"gdbm/internal/kvgraph",
}

// lockTypes are the sync types that must not be copied once used.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true,
	"WaitGroup": true, "Cond": true, "Pool": true, "Map": true,
}

// Analyzer is the lockdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "no sync lock copied by value and no Lock without a same-function " +
		"Unlock (direct or deferred) in the storage and engine packages",
	AppliesTo: func(pkgPath string) bool {
		for _, s := range scope {
			if analysis.PathIsUnder(pkgPath, s) {
				return true
			}
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCopies(pass, fd)
			checkLockPairs(pass, fd)
		}
	}
	return nil
}

// lockName returns the sync type name a value of t embeds by value, or "".
func lockName(t types.Type) string {
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return obj.Name()
		}
		return lockName(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if n := lockName(u.Field(i).Type()); n != "" {
				return n
			}
		}
	case *types.Array:
		return lockName(u.Elem())
	}
	return ""
}

// typeOf resolves an expression's type, falling back to the defining or
// used object for identifiers (`:=`-introduced range variables live in
// Info.Defs, not Info.Types).
func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := pass.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// copyable reports whether the expression produces a fresh value, making
// the copy harmless (composite literals and new values from calls).
func copyable(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		return true
	case *ast.ParenExpr:
		return copyable(e.X)
	}
	return false
}

// checkCopies flags lock-containing values passed, assigned or returned
// by value.
func checkCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Parameters, results and receiver declared by value.
	checkField := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok {
				continue
			}
			if n := lockName(tv.Type); n != "" {
				pass.Reportf(field.Pos(), "%s %s by value carries a sync.%s; use a pointer",
					fd.Name.Name, what, n)
			}
		}
	}
	checkField(fd.Recv, "receiver")
	checkField(fd.Type.Params, "parameter")

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range stmt.Rhs {
				if copyable(rhs) {
					continue
				}
				tv, ok := pass.Info.Types[rhs]
				if !ok {
					continue
				}
				if name := lockName(tv.Type); name != "" {
					pass.Reportf(stmt.Pos(), "assignment copies a value containing sync.%s; use a pointer", name)
				}
			}
		case *ast.CallExpr:
			for _, arg := range stmt.Args {
				if copyable(arg) {
					continue
				}
				tv, ok := pass.Info.Types[arg]
				if !ok {
					continue
				}
				if name := lockName(tv.Type); name != "" {
					pass.Reportf(arg.Pos(), "call passes a value containing sync.%s by value; use a pointer", name)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range stmt.Results {
				if copyable(res) {
					continue
				}
				tv, ok := pass.Info.Types[res]
				if !ok {
					continue
				}
				if name := lockName(tv.Type); name != "" {
					pass.Reportf(res.Pos(), "return copies a value containing sync.%s; return a pointer", name)
				}
			}
		case *ast.RangeStmt:
			if stmt.Value != nil {
				if t := typeOf(pass, stmt.Value); t != nil {
					if name := lockName(t); name != "" {
						pass.Reportf(stmt.Value.Pos(), "range copies a value containing sync.%s per iteration; iterate by index or pointer", name)
					}
				}
			}
		}
		return true
	})
}

// mutexCall classifies a call as a sync.Mutex/RWMutex lock-family method
// call and returns the receiver's printed form plus the method name.
func mutexCall(pass *analysis.Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	selection, isMethod := pass.Info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	// The method must come from sync.Mutex or sync.RWMutex (possibly
	// promoted through embedding).
	mobj := selection.Obj()
	if mobj.Pkg() == nil || mobj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// checkLockPairs flags Lock/RLock calls with no same-function
// Unlock/RUnlock on the same receiver expression. The whole declaration
// body, including nested function literals (the `defer func() { ...
// mu.Unlock() }()` idiom), counts as "same function".
func checkLockPairs(pass *analysis.Pass, fd *ast.FuncDecl) {
	type lockSite struct {
		pos    ast.Node
		recv   string
		method string
	}
	var locks []lockSite
	unlocks := map[string]bool{} // recv + "\x00" + method

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := mutexCall(pass, call)
		if !ok {
			return true
		}
		switch method {
		case "Lock", "RLock":
			locks = append(locks, lockSite{call, recv, method})
		case "Unlock", "RUnlock":
			unlocks[recv+"\x00"+method] = true
		}
		return true
	})

	for _, l := range locks {
		want := "Unlock"
		if l.method == "RLock" {
			want = "RUnlock"
		}
		if !unlocks[l.recv+"\x00"+want] {
			pass.Reportf(l.pos.Pos(),
				"%s.%s() has no matching %s.%s() in %s; unlock on every path (prefer defer) or annotate the lock handoff",
				l.recv, l.method, l.recv, want, fd.Name.Name)
		}
	}
}
