package lockdiscipline_test

import (
	"testing"

	"gdbm/internal/analysis/analysistest"
	"gdbm/internal/analysis/lockdiscipline"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, lockdiscipline.Analyzer, "testdata/src/locky", "gdbm/internal/storage/locky")
}

func TestScope(t *testing.T) {
	for _, p := range []string{
		"gdbm/internal/storage/tx",
		"gdbm/internal/engines/hyperdb",
		"gdbm/internal/kvgraph",
	} {
		if !lockdiscipline.Analyzer.AppliesTo(p) {
			t.Errorf("%s should be in lockdiscipline scope", p)
		}
	}
	if lockdiscipline.Analyzer.AppliesTo("gdbm/cmd/gdbshell") {
		t.Error("cmd packages are out of lockdiscipline scope")
	}
}
