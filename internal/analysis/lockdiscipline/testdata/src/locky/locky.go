// Package locky is a lockdiscipline fixture; analysistest presents it
// under a virtual import path inside internal/storage.
package locky

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]string
}

type guarded struct {
	mu sync.Mutex
	n  int
}

// Copy violations.

func byValueParam(g guarded) int { // want `byValueParam parameter by value carries a sync\.Mutex`
	return g.n
}

func byValueReturn(g *guarded) guarded {
	return *g // want `return copies a value containing sync\.Mutex`
}

func assignCopy(g *guarded) {
	cp := *g // want `assignment copies a value containing sync\.Mutex`
	cp.n++
}

func argCopy(g *guarded) {
	byValueParam(*g) // want `call passes a value containing sync\.Mutex by value`
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range copies a value containing sync\.Mutex per iteration`
		total += g.n
	}
	return total
}

// Allowed copies: fresh values.

func freshValue() guarded {
	g := guarded{n: 1} // composite literal: fresh, no aliasing
	g.n++
	return guarded{}
}

// Lock/Unlock pairing violations.

func lockNoUnlock(s *store) string {
	s.mu.Lock() // want `s\.mu\.Lock\(\) has no matching s\.mu\.Unlock\(\) in lockNoUnlock`
	return s.data["k"]
}

func rlockWrongUnlock(s *store) string {
	s.rw.RLock() // want `s\.rw\.RLock\(\) has no matching s\.rw\.RUnlock\(\) in rlockWrongUnlock`
	defer s.rw.Unlock()
	return s.data["k"]
}

// Allowed pairings.

func deferred(s *store) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data["k"]
}

func direct(s *store) {
	s.mu.Lock()
	s.data["k"] = "v"
	s.mu.Unlock()
}

func deferredInClosure(s *store) string {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	return s.data["k"]
}

func readersWriter(s *store) string {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.data["k"]
}

// The escape hatch: a deliberate cross-function lock handoff.

func acquireForCaller(s *store) {
	s.mu.Lock() //gdbvet:allow(lockdiscipline): lock handed to the caller, released by releaseForCaller
}

func releaseForCaller(s *store) {
	s.mu.Unlock()
}
