// Package lockorder checks the program-wide lock-acquisition graph
// built by the cross-package summaries. Every sync.Mutex/RWMutex
// acquisition is abstracted to a lock class — the defining type plus
// the field name, or the package plus the variable name — and every
// "B acquired while A held" observation becomes an edge, including
// edges discovered through calls (a function called with A held that
// transitively acquires B).
//
// Three findings come out of the graph:
//
//   - A cycle between distinct classes: some code acquires B while
//     holding A and other code acquires A while holding B. Two such
//     goroutines deadlock. The edge is reported wherever it was
//     observed; under `go vet -vettool` only one package is loaded at
//     a time, so cross-package cycles need the standalone driver
//     (make lint runs both).
//
//   - A definite re-entry: the same lock expression acquired twice on
//     one path (Lock-then-Lock self-deadlocks; RLock-then-Lock is the
//     upgrade deadlock — sync.RWMutex blocks the writer behind the
//     held read lock).
//
//   - RLock-then-write-call misuse: a call made with a read lock held
//     that transitively acquires the write lock of the same class.
//     This is the server's gql-write classification bug class — a
//     query admitted under the read lock reaching a mutating engine
//     path. The class abstraction cannot distinguish instances, so
//     this one is reported as "may"; same-class write-while-write via
//     a call is deliberately not reported (parent/child instances of
//     one type would drown it in false positives).
package lockorder

import (
	"go/token"
	"sort"

	"gdbm/internal/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "lock acquisitions must be consistently ordered program-wide; re-entry on " +
		"one expression and RLock-then-write-call upgrades are deadlocks",
	Run: run,
}

func run(pass *analysis.Pass) error {
	edges := pass.Summaries.GlobalLockEdges()
	if len(edges) == 0 {
		return nil
	}

	// Only findings positioned in this package's files are reported
	// here; every other package sees the same global graph and reports
	// its own slice of it.
	inPkg := map[string]bool{}
	for _, f := range pass.Files {
		inPkg[pass.Fset.Position(f.Pos()).Filename] = true
	}

	seen := map[string]bool{}
	report := func(pos token.Position, key, format string, args ...any) {
		if !inPkg[pos.Filename] || seen[key] {
			return
		}
		seen[key] = true
		pass.ReportPosf(pos, format, args...)
	}

	// Distinct-class adjacency for the cycle check.
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if e.From.Class != e.To.Class {
			if adj[e.From.Class] == nil {
				adj[e.From.Class] = map[string]bool{}
			}
			adj[e.From.Class][e.To.Class] = true
		}
	}
	// reaches reports whether to is reachable from from.
	reaches := func(from, to string) bool {
		stack := []string{from}
		visited := map[string]bool{}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if visited[n] {
				continue
			}
			visited[n] = true
			next := make([]string, 0, len(adj[n]))
			for m := range adj[n] {
				next = append(next, m)
			}
			sort.Strings(next)
			stack = append(stack, next...)
		}
		return false
	}

	for _, e := range edges {
		switch {
		case e.From.Class == e.To.Class && e.SameExpr && e.To.Write && e.From.Write:
			report(e.Pos, "reentry|"+e.Pos.String(),
				"%s.Lock() while %s is already locked on this path; sync.Mutex is not reentrant",
				e.To.Expr, e.From.Expr)
		case e.From.Class == e.To.Class && e.SameExpr && e.To.Write && !e.From.Write:
			report(e.Pos, "upgrade|"+e.Pos.String(),
				"%s.Lock() while its read lock is held on this path; RLock-then-Lock deadlocks behind a waiting writer",
				e.To.Expr)
		case e.From.Class == e.To.Class && e.Via != "" && e.To.Write && !e.From.Write:
			report(e.Pos, "upgradecall|"+e.Pos.String()+"|"+e.Via,
				"call to %s may acquire the write lock on %s while its read lock is held",
				e.Via, e.To.Class)
		case e.From.Class != e.To.Class && reaches(e.To.Class, e.From.Class):
			via := ""
			if e.Via != "" {
				via = " (via " + e.Via + ")"
			}
			report(e.Pos, "cycle|"+e.From.Class+"|"+e.To.Class,
				"inconsistent lock order: %s is acquired while %s is held%s, but the opposite order also occurs; two goroutines taking the locks in opposite orders deadlock",
				e.To.Class, e.From.Class, via)
		}
	}
	return nil
}
