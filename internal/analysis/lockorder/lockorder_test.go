package lockorder_test

import (
	"testing"

	"gdbm/internal/analysis/analysistest"
	"gdbm/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/locks", "")
}
