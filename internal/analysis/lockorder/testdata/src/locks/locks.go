// Package locks is the lockorder fixture: an AB-BA ordering cycle, a
// same-expression re-entry, an RLock upgrade, and clean counterparts.
package locks

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// --- AB-BA cycle ----------------------------------------------------

func aThenB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `inconsistent lock order`
	b.n++
	b.mu.Unlock()
}

func bThenA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `inconsistent lock order`
	a.n++
	a.mu.Unlock()
}

// --- re-entry and upgrade on one expression -------------------------

type S struct {
	mu sync.RWMutex
	n  int
}

func (s *S) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `already locked on this path`
	s.n++
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *S) upgradeInline() {
	s.mu.RLock()
	s.mu.Lock() // want `RLock-then-Lock deadlocks`
	s.n++
	s.mu.Unlock()
	s.mu.RUnlock()
}

func (s *S) readThenWriteCall() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bump() // want `may acquire the write lock`
}

func (s *S) bump() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}

// --- clean ----------------------------------------------------------

type C struct {
	mu sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
	n  int
}

// Consistent C-before-D order in both functions: no cycle.
func cThenD(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}

func cThenDAgain(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	c.n++
	d.n++
	d.mu.Unlock()
	c.mu.Unlock()
}

// Sequential lock/unlock/lock on one expression: released in between,
// no re-entry edge.
func (s *S) sequential() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.mu.Lock()
	s.n--
	s.mu.Unlock()
}

// Read lock around a call that only reads: no upgrade.
func (s *S) readThenReadCall() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.peek()
}

func (s *S) peek() int {
	return s.n
}
