package analysis

import (
	"go/ast"
	"go/types"
)

// NoReturnCall returns a predicate for cfg.Options.NoReturn: it
// recognizes the standard-library calls that terminate the goroutine
// or the process (os.Exit, log.Fatal*, runtime.Goexit), so the
// dataflow analyzers do not demand cleanup on paths that never return.
func NoReturnCall(info *types.Info) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		pn, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return false
		}
		switch pn.Imported().Path() {
		case "os":
			return sel.Sel.Name == "Exit"
		case "log":
			switch sel.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		case "runtime":
			return sel.Sel.Name == "Goexit"
		}
		return false
	}
}

// FuncBodies visits every function-like body in the files: each
// FuncDecl body and each FuncLit body, outermost first. The dataflow
// analyzers analyze each independently, because a literal's body runs
// when the value is called, not where it appears.
func FuncBodies(files []*ast.File, visit func(name string, body *ast.BlockStmt)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd.Name.Name, fd.Body)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				visit("func literal", lit.Body)
			}
			return true
		})
	}
}
