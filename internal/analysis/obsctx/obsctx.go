// Package obsctx is the static twin of the observability contract's
// differential tests: a span started with StartSpan must be ended on
// every return path, or the trace it belongs to reports a region that
// never closes and the wall-time accounting in the traced sweep breaks.
// The returned end function is the only way to close a span, so the
// check is about what happens to that value: discarding it (expression
// statement, defer/go of the bare StartSpan, blank assignment) or
// binding it to a variable that is never called are convictions.
//
// The check is name-based and flow-insensitive, like syncerr: calling
// the end function anywhere in the function (including `defer end()`)
// satisfies it, and letting the value escape — returned, passed on,
// stored — hands the obligation to the receiver. Path-sensitive holes
// (an end called in only one branch) are covered dynamically by the
// trace differential tests, not here.
package obsctx

import (
	"go/ast"
	"go/types"

	"gdbm/internal/analysis"
)

// scope: everywhere spans are opened — the engines, the shared storage
// adapters, the query languages, the kernels, the harness and the tools.
// internal/obs itself is excluded: it manipulates raw span state to
// implement StartSpan.
var scope = []string{
	"gdbm/internal/engine",
	"gdbm/internal/engines",
	"gdbm/internal/kvgraph",
	"gdbm/internal/query",
	"gdbm/internal/par",
	"gdbm/internal/report",
	"gdbm/cmd",
}

// Analyzer is the obsctx check.
var Analyzer = &analysis.Analyzer{
	Name: "obsctx",
	Doc: "every StartSpan must have its end function called on every return path, " +
		"never discarded — the static half of the span accounting contract",
	AppliesTo: func(pkgPath string) bool {
		for _, s := range scope {
			if analysis.PathIsUnder(pkgPath, s) {
				return true
			}
		}
		return false
	},
	Run: run,
}

// isEndFunc reports whether t is func() — no params, no results.
func isEndFunc(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

func run(pass *analysis.Pass) error {
	// spanCall reports whether call is a method call named StartSpan whose
	// sole result is an end function.
	spanCall := func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "StartSpan" {
			return false
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return false
		}
		sig, ok := selection.Type().(*types.Signature)
		if !ok {
			return false
		}
		return sig.Results().Len() == 1 && isEndFunc(sig.Results().At(0).Type())
	}

	// bound tracks one end function bound to a named variable.
	type bound struct {
		pos     ast.Node
		ended   bool // invoked (directly or via defer) somewhere
		escaped bool // used as a value: returned, passed, stored
	}
	tracked := map[types.Object]*bound{}
	// skip holds ident occurrences that are bindings or blank discards of
	// a tracked variable, not real uses.
	skip := map[*ast.Ident]bool{}

	// Pass 1: convict the immediate discards and collect bindings.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok && spanCall(call) {
					pass.Reportf(call.Pos(),
						"StartSpan end function is discarded; the span never ends — defer it: defer x.StartSpan(...)()")
				}
			case *ast.DeferStmt:
				if spanCall(stmt.Call) {
					pass.Reportf(stmt.Pos(),
						"defer runs StartSpan but discards its end function; write defer x.StartSpan(...)() so the span ends on return")
				}
			case *ast.GoStmt:
				if spanCall(stmt.Call) {
					pass.Reportf(stmt.Pos(),
						"go statement discards the StartSpan end function; the span never ends")
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok || !spanCall(call) {
					return true
				}
				// StartSpan has one result, so the binding is 1:1.
				id, ok := stmt.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				if id.Name == "_" {
					pass.Reportf(stmt.Pos(),
						"StartSpan end function is assigned to the blank identifier; the span never ends")
					return true
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil {
					return true
				}
				skip[id] = true
				if _, dup := tracked[obj]; !dup {
					tracked[obj] = &bound{pos: stmt}
				}
			}
			return true
		})
	}
	if len(tracked) == 0 {
		return nil
	}

	// Pass 2: classify every other occurrence of a tracked variable.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok {
					if b := tracked[pass.Info.ObjectOf(id)]; b != nil {
						b.ended = true
						skip[id] = true
					}
				}
			case *ast.AssignStmt:
				// `_ = end` is a discard dressed as a use, not an escape.
				if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
					lhs, lok := x.Lhs[0].(*ast.Ident)
					rhs, rok := x.Rhs[0].(*ast.Ident)
					if lok && rok && lhs.Name == "_" && tracked[pass.Info.ObjectOf(rhs)] != nil {
						skip[rhs] = true
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || skip[id] {
				return true
			}
			if b := tracked[pass.Info.ObjectOf(id)]; b != nil {
				b.escaped = true
			}
			return true
		})
	}

	for _, b := range tracked {
		if !b.ended && !b.escaped {
			pass.Reportf(b.pos.Pos(),
				"StartSpan end function is never called; a started span must end on every return path")
		}
	}
	return nil
}
