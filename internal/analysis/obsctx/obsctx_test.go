package obsctx_test

import (
	"testing"

	"gdbm/internal/analysis/analysistest"
	"gdbm/internal/analysis/obsctx"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, obsctx.Analyzer, "testdata/src/spanfix", "gdbm/internal/engines/spanfix")
}

func TestScope(t *testing.T) {
	for _, p := range []string{
		"gdbm/internal/engine",
		"gdbm/internal/engines/neograph",
		"gdbm/internal/kvgraph",
		"gdbm/internal/query/gql",
		"gdbm/internal/par",
		"gdbm/internal/report",
		"gdbm/cmd/gdbbench",
	} {
		if !obsctx.Analyzer.AppliesTo(p) {
			t.Errorf("%s should be in obsctx scope", p)
		}
	}
	// The obs package implements spans; it is not subject to the check.
	if obsctx.Analyzer.AppliesTo("gdbm/internal/obs") {
		t.Error("internal/obs is out of obsctx scope")
	}
	if obsctx.Analyzer.AppliesTo("gdbm/internal/storage/pager") {
		t.Error("storage packages have no spans and are out of obsctx scope")
	}
}
