// Package spanfix is an obsctx fixture; analysistest presents it under a
// virtual import path inside internal/engines.
package spanfix

// trace mimics the span surface of the real obs.Trace.
type trace struct{}

func (*trace) StartSpan(name string) func() { return func() {} }

// counter has a look-alike method whose result is not an end function;
// it is outside the invariant and must not be convicted.
type counter struct{}

func (counter) StartSpan(name string) int { return 0 }

func work() {}

func finish(end func()) { end() }

// Violations.

func dropExpr(t *trace) {
	t.StartSpan("parse") // want `StartSpan end function is discarded`
}

func dropBlank(t *trace) {
	_ = t.StartSpan("plan") // want `assigned to the blank identifier`
}

func dropDefer(t *trace) {
	defer t.StartSpan("exec") // want `defer runs StartSpan but discards its end function`
}

func dropGo(t *trace) {
	go t.StartSpan("background") // want `go statement discards the StartSpan end function`
}

func neverEnded(t *trace) {
	end := t.StartSpan("scan") // want `end function is never called`
	work()
	_ = end
}

// Allowed: ended on return, ended inline, or obligation handed off.

func deferredEnd(t *trace) {
	defer t.StartSpan("parse")()
	work()
}

func boundThenDeferred(t *trace) {
	end := t.StartSpan("exec")
	defer end()
	work()
}

func boundThenCalled(t *trace) {
	end := t.StartSpan("scan")
	work()
	end()
}

func endedInClosure(t *trace) {
	end := t.StartSpan("flush")
	defer func() {
		work()
		end()
	}()
}

func zeroWidth(t *trace) {
	// Starting and immediately ending is pointless but sound.
	t.StartSpan("tick")()
}

func handoffReturn(t *trace) func() {
	// The caller owns the end; the value escapes.
	return t.StartSpan("handoff")
}

func handoffArg(t *trace) {
	end := t.StartSpan("handoff")
	finish(end)
}

func notASpan(c counter) {
	// Same name, wrong shape: no end function is produced.
	c.StartSpan("nope")
	n := c.StartSpan("nope")
	_ = n
}

// The escape hatch with justification.

func sanctioned(t *trace) {
	t.StartSpan("leaky") //gdbvet:allow(obsctx): fixture demonstrating the suppression comment
}
