package analysis

// Cross-package function summaries. The dataflow analyzers (itererr,
// closeleak, lockorder) reason about what a callee does to its
// arguments — does it close them, does it check their Err, does it
// stash them somewhere — and about which locks a call may acquire.
// ComputeSummaries extracts that per function from every loaded target
// and runs the propagation fixpoints, so a call into another package of
// the module is as transparent as a local one. Functions outside the
// loaded targets (the standard library, export-data-only dependencies)
// have no summary; analyzers must treat calls to them conservatively.
//
// Summaries are keyed by types.Func.FullName(), which is stable across
// the separately type-checked packages of one load (a function seen
// from its defining package and through export data yields distinct
// objects but the same full name).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gdbm/internal/analysis/cfg"
	"gdbm/internal/analysis/dataflow"
)

// RecvParam is the pseudo-index naming a method's receiver in the
// per-parameter summary maps.
const RecvParam = -1

// FuncSummary is what one function does with its parameters and locks.
type FuncSummary struct {
	// Name is the types.Func FullName.
	Name string
	// Closes[i] is true when the function closes parameter i (RecvParam
	// for the receiver) on some path, directly or via a summarized
	// callee.
	Closes map[int]bool
	// ChecksErr[i] is true when the function calls Err() on parameter i
	// or forwards it to a summarized checker.
	ChecksErr map[int]bool
	// Escapes[i] is true when parameter i may outlive the call: it is
	// returned, stored, sent, or passed to an unsummarized function.
	Escapes map[int]bool

	// Acquires are the lock classes the function acquires directly.
	Acquires []LockAcquire
	// LockEdges are the held→acquired orderings observed inside the
	// function body (From held when To was acquired).
	LockEdges []LockOrderEdge
	// LockCalls are the summarized calls made while at least one lock
	// was held.
	LockCalls []LockCall

	// calls lists the summarized callees with the caller-param → callee
	// param mapping, for the propagation fixpoints.
	calls []callRef
}

// LockAcquire is one lock acquisition site, abstracted to a class: the
// defining type (or package) plus the field or variable name, so every
// instance of `(*kvgraph.Graph).mu` lands in one class.
type LockAcquire struct {
	Class string // e.g. "gdbm/internal/kvgraph.Graph.mu"
	Expr  string // source form of the receiver, e.g. "g.mu"
	Write bool   // Lock (true) or RLock (false)
	Pos   token.Position
}

// LockOrderEdge records that To was acquired while From was held.
type LockOrderEdge struct {
	From, To LockAcquire
	// SameExpr marks From and To as the same receiver expression in the
	// same function: a definite re-entry, not just a class collision.
	SameExpr bool
	// Via names the callee whose transitive acquisition produced the
	// edge; empty for a direct acquisition.
	Via string
	Pos token.Position
}

// LockCall is a summarized call made with locks held.
type LockCall struct {
	Held   []LockAcquire
	Callee string
	Pos    token.Position
}

type callRef struct {
	callee string
	// argMap maps callee parameter index → caller parameter index
	// (RecvParam for the caller's receiver).
	argMap map[int]int
	// recvFrom is the caller parameter passed as the callee's receiver,
	// or a sentinel when none.
	recvFrom int
	hasRecv  bool
}

// Summaries indexes every loaded function's summary.
type Summaries struct {
	funcs map[string]*FuncSummary
	// trans is the transitive may-acquire closure per function.
	trans map[string][]LockAcquire
	// globalEdges is the program-wide lock-order edge set: direct edges
	// plus held × transitive-acquires-of-callee expansions.
	globalEdges []LockOrderEdge
}

// Func returns the summary for fn, or nil when fn was not among the
// loaded targets. Nil receivers are safe.
func (s *Summaries) Func(fn *types.Func) *FuncSummary {
	if s == nil || fn == nil {
		return nil
	}
	return s.funcs[fn.FullName()]
}

// Closes reports whether fn is known to close its param-th parameter.
func (s *Summaries) Closes(fn *types.Func, param int) bool {
	fs := s.Func(fn)
	return fs != nil && fs.Closes[param]
}

// ChecksErr reports whether fn is known to call Err() on its param-th
// parameter.
func (s *Summaries) ChecksErr(fn *types.Func, param int) bool {
	fs := s.Func(fn)
	return fs != nil && fs.ChecksErr[param]
}

// Escapes reports whether fn may retain its param-th parameter.
func (s *Summaries) Escapes(fn *types.Func, param int) bool {
	fs := s.Func(fn)
	return fs != nil && fs.Escapes[param]
}

// TransAcquires returns the lock classes a call to the named function
// may acquire, including transitively through summarized callees.
func (s *Summaries) TransAcquires(name string) []LockAcquire {
	if s == nil {
		return nil
	}
	return s.trans[name]
}

// GlobalLockEdges returns the program-wide lock-order edge set.
func (s *Summaries) GlobalLockEdges() []LockOrderEdge {
	if s == nil {
		return nil
	}
	return s.globalEdges
}

// AllLockCalls returns the summarized with-locks-held calls of every
// loaded function, for the upgrade-misuse check.
func (s *Summaries) AllLockCalls() []LockCall {
	if s == nil {
		return nil
	}
	var out []LockCall
	for _, name := range s.sortedNames() {
		out = append(out, s.funcs[name].LockCalls...)
	}
	return out
}

func (s *Summaries) sortedNames() []string {
	names := make([]string, 0, len(s.funcs))
	for n := range s.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ComputeSummaries builds the summary set for the targets of one load.
func ComputeSummaries(targets []*Target) *Summaries {
	s := &Summaries{funcs: map[string]*FuncSummary{}, trans: map[string][]LockAcquire{}}
	for _, t := range targets {
		for _, f := range t.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := t.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fs := summarizeFunc(t, fd, fn)
				s.funcs[fs.Name] = fs
			}
		}
	}
	s.propagate()
	s.closeLocks()
	return s
}

// summarizeFunc extracts one function's direct facts.
func summarizeFunc(t *Target, fd *ast.FuncDecl, fn *types.Func) *FuncSummary {
	fs := &FuncSummary{
		Name:      fn.FullName(),
		Closes:    map[int]bool{},
		ChecksErr: map[int]bool{},
		Escapes:   map[int]bool{},
	}

	// Parameter objects → index; receiver → RecvParam.
	paramIdx := map[types.Object]int{}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if obj := t.Info.Defs[name]; obj != nil {
					paramIdx[obj] = RecvParam
				}
			}
		}
	}
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := t.Info.Defs[name]; obj != nil {
					paramIdx[obj] = i
				}
				i++
			}
		}
	}
	pIdx := func(e ast.Expr) (int, bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return 0, false
		}
		idx, ok := paramIdx[t.Info.Uses[id]]
		return idx, ok
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Direct Close/Err on a parameter.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if idx, isParam := pIdx(sel.X); isParam {
					switch sel.Sel.Name {
					case "Close":
						fs.Closes[idx] = true
					case "Err":
						fs.ChecksErr[idx] = true
					}
				}
			}
			callee := calleeFunc(t.Info, n)
			if callee == nil {
				// Unknown target: any parameter passed in escapes.
				for _, arg := range n.Args {
					if idx, isParam := pIdx(arg); isParam {
						fs.Escapes[idx] = true
					}
				}
				return true
			}
			ref := callRef{callee: callee.FullName(), argMap: map[int]int{}}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if idx, isParam := pIdx(sel.X); isParam {
					ref.recvFrom, ref.hasRecv = idx, true
				}
			}
			for ai, arg := range n.Args {
				if idx, isParam := pIdx(arg); isParam {
					ref.argMap[ai] = idx
				}
			}
			fs.calls = append(fs.calls, ref)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				markParamIdents(t, paramIdx, res, fs.Escapes)
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				markParamIdents(t, paramIdx, rhs, fs.Escapes)
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				markParamIdents(t, paramIdx, el, fs.Escapes)
			}
		case *ast.SendStmt:
			markParamIdents(t, paramIdx, n.Value, fs.Escapes)
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				markParamIdents(t, paramIdx, arg, fs.Escapes)
			}
		}
		return true
	})

	summarizeLocks(t, fd, fs)
	return fs
}

// markParamIdents marks every parameter identifier inside e in the
// given fact map, including captures inside function literals (a
// capture can outlive the call, which is exactly what Escapes means).
func markParamIdents(t *Target, paramIdx map[types.Object]int, e ast.Expr, facts map[int]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if idx, ok := paramIdx[t.Info.Uses[id]]; ok {
				facts[idx] = true
			}
		}
		return true
	})
}

// calleeFunc resolves the statically-known target of a call: a
// package-level function, or a method reached through a concrete
// selector. Interface method calls and called values resolve to nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			// An interface method has no body anywhere we can see.
			if fn != nil && types.IsInterface(sel.Recv()) {
				return nil
			}
			return fn
		}
		// Qualified package function pkg.F.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ----- lock facts -----

// heldFact is the may-held lock set, keyed by class+expr+mode.
type heldFact map[string]LockAcquire

func (h heldFact) with(a LockAcquire) heldFact {
	out := make(heldFact, len(h)+1)
	for k, v := range h {
		out[k] = v
	}
	out[heldKey(a)] = a
	return out
}

func (h heldFact) without(class, expr string, write bool) heldFact {
	k := class + "\x00" + expr + "\x00" + modeStr(write)
	if _, ok := h[k]; !ok {
		return h
	}
	out := make(heldFact, len(h))
	for kk, v := range h {
		if kk != k {
			out[kk] = v
		}
	}
	return out
}

func heldKey(a LockAcquire) string {
	return a.Class + "\x00" + a.Expr + "\x00" + modeStr(a.Write)
}

func modeStr(write bool) string {
	if write {
		return "w"
	}
	return "r"
}

func joinHeld(a, b heldFact) heldFact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(heldFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

func equalHeld(a, b heldFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// summarizeLocks runs the held-set dataflow over fd and records direct
// acquisitions, order edges and with-locks-held calls on fs.
func summarizeLocks(t *Target, fd *ast.FuncDecl, fs *FuncSummary) {
	// transfer applies one node's lock effects to h; when record is
	// non-nil it also collects the summary facts.
	transfer := func(n ast.Node, h heldFact, record bool) heldFact {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			// A deferred Unlock keeps the lock held until Exit; a
			// deferred anything-else has no ordering effect we model.
			return h
		}
		calls := callsInOrder(n)
		for _, call := range calls {
			if acq, ok := mutexAcquire(t, call); ok {
				if record {
					fs.Acquires = append(fs.Acquires, acq)
					for _, held := range sortedHeld(h) {
						fs.LockEdges = append(fs.LockEdges, LockOrderEdge{
							From:     held,
							To:       acq,
							SameExpr: held.Class == acq.Class && held.Expr == acq.Expr,
							Pos:      acq.Pos,
						})
					}
				}
				h = h.with(acq)
				continue
			}
			if class, expr, write, ok := mutexRelease(t, call); ok {
				h = h.without(class, expr, write)
				continue
			}
			if record && len(h) > 0 {
				if callee := calleeFunc(t.Info, call); callee != nil {
					fs.LockCalls = append(fs.LockCalls, LockCall{
						Held:   sortedHeld(h),
						Callee: callee.FullName(),
						Pos:    t.Fset.Position(call.Pos()),
					})
				}
			}
		}
		return h
	}

	g := cfg.Build(fd.Body, cfg.Options{})
	res := dataflow.Forward(g, dataflow.Problem[heldFact]{
		Entry: heldFact{},
		Join:  joinHeld,
		Equal: equalHeld,
		Transfer: func(n ast.Node, h heldFact) heldFact {
			return transfer(n, h, false)
		},
	})
	// Replay each reached block once to record facts against the solved
	// entry state.
	for _, b := range g.Blocks {
		h, reached := res.In[b]
		if !reached {
			continue
		}
		for _, n := range b.Nodes {
			h = transfer(n, h, true)
		}
	}
}

func sortedHeld(h heldFact) []LockAcquire {
	out := make([]LockAcquire, 0, len(h))
	for _, v := range h {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Expr < out[j].Expr
	})
	return out
}

// callsInOrder lists the call expressions inside n in lexical order,
// without descending into function literals.
func callsInOrder(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			out = append(out, call)
		}
		return true
	})
	return out
}

// mutexAcquire classifies call as sync.Mutex/RWMutex Lock or RLock and
// returns the abstract acquisition.
func mutexAcquire(t *Target, call *ast.CallExpr) (LockAcquire, bool) {
	sel, name, ok := syncMethod(t.Info, call)
	if !ok || (name != "Lock" && name != "RLock") {
		return LockAcquire{}, false
	}
	return LockAcquire{
		Class: lockClass(t.Info, sel.X),
		Expr:  types.ExprString(sel.X),
		Write: name == "Lock",
		Pos:   t.Fset.Position(call.Pos()),
	}, true
}

// mutexRelease classifies call as Unlock/RUnlock.
func mutexRelease(t *Target, call *ast.CallExpr) (class, expr string, write, ok bool) {
	sel, name, found := syncMethod(t.Info, call)
	if !found || (name != "Unlock" && name != "RUnlock") {
		return "", "", false, false
	}
	return lockClass(t.Info, sel.X), types.ExprString(sel.X), name == "Unlock", true
}

// syncMethod matches a call to a lock-family method promoted from the
// sync package and returns its selector and method name.
func syncMethod(info *types.Info, call *ast.CallExpr) (*ast.SelectorExpr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	if obj := selection.Obj(); obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return sel, sel.Sel.Name, true
}

// lockClass abstracts the receiver expression of a lock call to a
// stable class name: the defining named type plus the field name for
// struct fields, the package path plus the variable name for variables.
func lockClass(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		// x.mu — name the field after x's named type.
		if t := exprType(info, e.X); t != nil {
			if named := namedOf(t); named != nil {
				obj := named.Obj()
				return pkgPrefix(obj.Pkg()) + obj.Name() + "." + e.Sel.Name
			}
		}
		return types.ExprString(e)
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return pkgPrefix(obj.Pkg()) + obj.Name()
		}
	}
	return types.ExprString(e)
}

func pkgPrefix(p *types.Package) string {
	if p == nil {
		return ""
	}
	return p.Path() + "."
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// ----- propagation fixpoints -----

// propagate closes Closes/ChecksErr/Escapes over the call graph: a
// parameter forwarded to a summarized callee inherits what the callee
// does with it.
func (s *Summaries) propagate() {
	changed := true
	for rounds := 0; changed && rounds < 10; rounds++ {
		changed = false
		for _, name := range s.sortedNames() {
			fs := s.funcs[name]
			for _, ref := range fs.calls {
				callee := s.funcs[ref.callee]
				if callee == nil {
					// Unsummarized callee: arguments escape.
					for _, callerIdx := range ref.argMap {
						if !fs.Escapes[callerIdx] {
							fs.Escapes[callerIdx] = true
							changed = true
						}
					}
					continue
				}
				for calleeIdx, callerIdx := range ref.argMap {
					if callee.Closes[calleeIdx] && !fs.Closes[callerIdx] {
						fs.Closes[callerIdx] = true
						changed = true
					}
					if callee.ChecksErr[calleeIdx] && !fs.ChecksErr[callerIdx] {
						fs.ChecksErr[callerIdx] = true
						changed = true
					}
					if callee.Escapes[calleeIdx] && !fs.Escapes[callerIdx] {
						fs.Escapes[callerIdx] = true
						changed = true
					}
				}
				if ref.hasRecv {
					if callee.Closes[RecvParam] && !fs.Closes[ref.recvFrom] {
						fs.Closes[ref.recvFrom] = true
						changed = true
					}
					if callee.ChecksErr[RecvParam] && !fs.ChecksErr[ref.recvFrom] {
						fs.ChecksErr[ref.recvFrom] = true
						changed = true
					}
					if callee.Escapes[RecvParam] && !fs.Escapes[ref.recvFrom] {
						fs.Escapes[ref.recvFrom] = true
						changed = true
					}
				}
			}
		}
	}
}

// closeLocks computes the transitive may-acquire closure and the
// program-wide lock-order edge set.
func (s *Summaries) closeLocks() {
	// Transitive acquires: direct ∪ callees', to a fixpoint.
	acq := map[string]map[string]LockAcquire{}
	for name, fs := range s.funcs {
		m := map[string]LockAcquire{}
		for _, a := range fs.Acquires {
			m[a.Class+modeStr(a.Write)] = a
		}
		acq[name] = m
	}
	changed := true
	for rounds := 0; changed && rounds < 20; rounds++ {
		changed = false
		for _, name := range s.sortedNames() {
			fs := s.funcs[name]
			m := acq[name]
			for _, ref := range fs.calls {
				for k, a := range acq[ref.callee] {
					if _, ok := m[k]; !ok {
						m[k] = a
						changed = true
					}
				}
			}
		}
	}
	for name, m := range acq {
		for _, a := range sortedAcquireMap(m) {
			s.trans[name] = append(s.trans[name], a)
		}
	}

	// Global edges: every direct edge, plus held × transitive acquires
	// at each with-locks-held call site.
	for _, name := range s.sortedNames() {
		fs := s.funcs[name]
		s.globalEdges = append(s.globalEdges, fs.LockEdges...)
		for _, lc := range fs.LockCalls {
			for _, to := range s.trans[lc.Callee] {
				for _, from := range lc.Held {
					s.globalEdges = append(s.globalEdges, LockOrderEdge{
						From: from,
						To:   to,
						Via:  lc.Callee,
						Pos:  lc.Pos,
					})
				}
			}
		}
	}
}

func sortedAcquireMap(m map[string]LockAcquire) []LockAcquire {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]LockAcquire, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// ModulePath extracts the leading module segment of an import path
// ("gdbm/internal/algo" → "gdbm"); analyzers use it to separate
// module-internal types from vendored or standard-library ones.
func ModulePath(pkgPath string) string {
	if i := strings.IndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[:i]
	}
	return pkgPath
}
