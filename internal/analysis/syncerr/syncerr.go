// Package syncerr is the static twin of the crash harness's fsyncgate
// tests: an error returned by Sync, Append, Commit or Flush is a
// durability event that must be checked and propagated. Discarding one —
// as an expression statement, behind defer/go, or by assigning it to the
// blank identifier — silently converts "not durable" into "fine".
package syncerr

import (
	"go/ast"
	"go/types"

	"gdbm/internal/analysis"
)

// scope: the storage stack, the engines, the kv-backed graph adapter and
// the tools that drive them.
var scope = []string{
	"gdbm/internal/storage",
	"gdbm/internal/engines",
	"gdbm/internal/kvgraph",
	"gdbm/cmd",
}

// watched is the set of durability-critical method names.
var watched = map[string]bool{
	"Sync": true, "Append": true, "Commit": true, "Flush": true,
}

// Analyzer is the syncerr check.
var Analyzer = &analysis.Analyzer{
	Name: "syncerr",
	Doc: "every Sync/Append/Commit/Flush error must be checked and propagated, " +
		"never discarded — the static half of the crash-recovery durability contract",
	AppliesTo: func(pkgPath string) bool {
		for _, s := range scope {
			if analysis.PathIsUnder(pkgPath, s) {
				return true
			}
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type()

	// watchedCall returns the method name if call is a method call to a
	// watched durability method whose final result is an error.
	watchedCall := func(call *ast.CallExpr) (string, bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !watched[sel.Sel.Name] {
			return "", false
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return "", false
		}
		sig, ok := selection.Type().(*types.Signature)
		if !ok {
			return "", false
		}
		res := sig.Results()
		if res.Len() == 0 || !types.Identical(res.At(res.Len()-1).Type(), errType) {
			return "", false
		}
		return sel.Sel.Name, true
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if name, ok := watchedCall(call); ok {
						pass.Reportf(call.Pos(),
							"%s error is discarded; durability failures must be checked and propagated", name)
					}
				}
			case *ast.DeferStmt:
				if name, ok := watchedCall(stmt.Call); ok {
					pass.Reportf(stmt.Pos(),
						"defer discards the %s error; capture it (defer func() { ... }()) or restructure", name)
				}
			case *ast.GoStmt:
				if name, ok := watchedCall(stmt.Call); ok {
					pass.Reportf(stmt.Pos(),
						"go statement discards the %s error; durability failures must be observed", name)
				}
			case *ast.AssignStmt:
				// Sole RHS call: result i binds to LHS i (or a single
				// result to each LHS in a 1:1 assignment).
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := watchedCall(call)
				if !ok {
					return true
				}
				// The error is the callee's final result, so it lands in
				// the final LHS position.
				last := stmt.Lhs[len(stmt.Lhs)-1]
				if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(stmt.Pos(),
						"%s error is assigned to the blank identifier; durability failures must be checked and propagated", name)
				}
			}
			return true
		})
	}
	return nil
}
