package syncerr_test

import (
	"testing"

	"gdbm/internal/analysis/analysistest"
	"gdbm/internal/analysis/syncerr"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, syncerr.Analyzer, "testdata/src/durably", "gdbm/internal/storage/durably")
}

func TestScope(t *testing.T) {
	for _, p := range []string{
		"gdbm/internal/storage/tx",
		"gdbm/internal/engines/gstore",
		"gdbm/cmd/gdbbench",
	} {
		if !syncerr.Analyzer.AppliesTo(p) {
			t.Errorf("%s should be in syncerr scope", p)
		}
	}
	if syncerr.Analyzer.AppliesTo("gdbm/internal/query/gql") {
		t.Error("query packages are out of syncerr scope")
	}
}
