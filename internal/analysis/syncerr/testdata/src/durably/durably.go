// Package durably is a syncerr fixture; analysistest presents it under a
// virtual import path inside internal/storage.
package durably

// log mimics the durability surface of the real wal.Log.
type log struct{}

func (log) Append(p []byte) (int64, error) { return 0, nil }
func (log) Sync() error                    { return nil }
func (log) Commit() error                  { return nil }
func (log) Flush() error                   { return nil }

// noErr has look-alike methods with no error result; they are not
// durability events and must not be convicted.
type noErr struct{}

func (noErr) Sync()   {}
func (noErr) Commit() {}

// Violations.

func dropExpr(l log) {
	l.Sync() // want `Sync error is discarded`
}

func dropCommit(l log) {
	l.Commit() // want `Commit error is discarded`
}

func dropBlank(l log) {
	_ = l.Flush() // want `Flush error is assigned to the blank identifier`
}

func dropAppendBlank(l log) {
	_, _ = l.Append(nil) // want `Append error is assigned to the blank identifier`
}

func dropDefer(l log) {
	defer l.Commit() // want `defer discards the Commit error`
}

func dropGo(l log) {
	go l.Sync() // want `go statement discards the Sync error`
}

// Allowed: checked, propagated, or legitimately captured.

func checked(l log) error {
	if err := l.Sync(); err != nil {
		return err
	}
	return l.Commit()
}

func captured(l log) (err error) {
	defer func() {
		if cerr := l.Commit(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	n, err := l.Append([]byte("x"))
	_ = n
	return err
}

func keepsPayloadDropsCount(l log) error {
	// Blanking the non-error result is fine; the error is still checked.
	_, err := l.Append([]byte("x"))
	return err
}

func notDurability(n noErr) {
	// Same names, no error result: out of the invariant.
	n.Sync()
	n.Commit()
}

// The escape hatch with justification.

func sanctioned(l log) {
	l.Sync() //gdbvet:allow(syncerr): best-effort background sync, failure is re-observed by the next foreground Sync
}
