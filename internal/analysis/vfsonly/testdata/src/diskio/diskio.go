// Package diskio is a vfsonly fixture; analysistest presents it under a
// virtual import path inside internal/storage.
package diskio

import (
	"io/ioutil"
	"os"

	"gdbm/internal/storage/vfs"
)

// Violations: every direct filesystem touch must be convicted.

func openDirect() error {
	f, err := os.Open("data.db") // want `direct os\.Open bypasses vfs\.FS`
	if err != nil {
		return err
	}
	return f.Close()
}

func writeDirect() error {
	return os.WriteFile("data.db", []byte("x"), 0o644) // want `direct os\.WriteFile bypasses vfs\.FS`
}

func mkTemp() (string, error) {
	return os.MkdirTemp("", "x") // want `direct os\.MkdirTemp bypasses vfs\.FS`
}

func legacy() ([]byte, error) {
	return ioutil.ReadFile("data.db") // want `ioutil\.ReadFile is deprecated and bypasses vfs\.FS`
}

// valueLeak shows that even referencing the function (not calling it)
// is convicted: handing os.Remove to a helper is the same hole.
var valueLeak = os.Remove // want `direct os\.Remove bypasses vfs\.FS`

// Allowed: non-filesystem os identifiers are fine.

func exitCode() {
	if os.Getenv("DEBUG") == "" {
		os.Stderr.WriteString("quiet\n")
	}
}

// Allowed: the justified escape hatch.

func sanctioned() error {
	f, err := os.Open("raw.db") //gdbvet:allow(vfsonly): fixture boundary, mirrors the vfs package's own OS seam
	if err != nil {
		return err
	}
	return f.Close()
}

// A directive with no justification suppresses nothing and is itself
// convicted, alongside the violation it failed to cover.

func unjustified() error {
	//gdbvet:allow(vfsonly) // want `missing its mandatory justification`
	return os.Truncate("data.db", 0) // want `direct os\.Truncate bypasses vfs\.FS`
}

// A justified directive that covers nothing is stale and convicted.

func stale() error {
	//gdbvet:allow(vfsonly): outdated annotation, nothing here needs it // want `unused gdbvet:allow\(vfsonly\) directive`
	return routed()
}

func routed() error {
	f, err := vfs.OSFS.OpenFile("data.db")
	if err != nil {
		return err
	}
	return f.Close()
}
