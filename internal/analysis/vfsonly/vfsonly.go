// Package vfsonly forbids direct filesystem access in the storage stack,
// the engines and the command-line tools: every byte must flow through
// vfs.FS so the FaultFS crash harness (PR 1) observes it. A direct
// os.Open in an engine is exactly the kind of hole that lets durability
// claims pass testing while dodging fault injection.
//
// The single sanctioned boundary is package internal/storage/vfs itself,
// whose os calls carry justified //gdbvet:allow(vfsonly) directives.
package vfsonly

import (
	"go/ast"
	"go/types"

	"gdbm/internal/analysis"
)

// scope lists the package subtrees where the invariant holds.
var scope = []string{
	"gdbm/internal/storage",
	"gdbm/internal/engines",
	"gdbm/internal/kvgraph",
	"gdbm/cmd",
}

// deniedOS is the set of package os functions that touch the filesystem.
// Non-filesystem identifiers (Stderr, Exit, Getenv, O_RDWR, ...) stay
// usable.
var deniedOS = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"NewFile": true, "ReadFile": true, "WriteFile": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Truncate": true, "ReadDir": true, "Readlink": true,
	"Stat": true, "Lstat": true, "Chmod": true, "Chown": true,
	"Chtimes": true, "Link": true, "Symlink": true,
	"Chdir": true, "DirFS": true, "CopyFS": true,
}

// Analyzer is the vfsonly check.
var Analyzer = &analysis.Analyzer{
	Name: "vfsonly",
	Doc: "forbid direct os/ioutil filesystem access outside vfs.FS so the " +
		"fault-injection harness sees every byte the storage stack and tools write",
	AppliesTo: func(pkgPath string) bool {
		for _, s := range scope {
			if analysis.PathIsUnder(pkgPath, s) {
				return true
			}
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "os":
				if deniedOS[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"direct os.%s bypasses vfs.FS; route file I/O through vfs.OSFS / Options.FS so the crash harness can intercept it",
						sel.Sel.Name)
				}
			case "io/ioutil":
				pass.Reportf(sel.Pos(),
					"ioutil.%s is deprecated and bypasses vfs.FS; route file I/O through vfs.OSFS / Options.FS",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
