package vfsonly_test

import (
	"testing"

	"gdbm/internal/analysis/analysistest"
	"gdbm/internal/analysis/vfsonly"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, vfsonly.Analyzer, "testdata/src/diskio", "gdbm/internal/storage/diskio")
}

// TestScope pins the guarded subtrees: the invariant is scoped, not
// global, and must cover the stack, the engines and the tools.
func TestScope(t *testing.T) {
	if vfsonly.Analyzer.AppliesTo("gdbm/internal/report") {
		t.Error("internal/report should be out of vfsonly scope")
	}
	for _, p := range []string{
		"gdbm/internal/storage/wal",
		"gdbm/internal/storage/vfs",
		"gdbm/internal/engines/neograph",
		"gdbm/cmd/gdbshell",
		"gdbm/internal/kvgraph",
	} {
		if !vfsonly.Analyzer.AppliesTo(p) {
			t.Errorf("%s should be in vfsonly scope", p)
		}
	}
}
