package cache

import "gdbm/internal/model"

// AdjEntry is one decoded adjacency record: the incident edge and the node
// at its far end, exactly as the storage layer would decode them.
type AdjEntry struct {
	Edge model.Edge
	Node model.Node
}

type adjKey struct {
	epoch uint64
	node  model.NodeID
	dir   model.Direction
}

// Adjacency memoizes decoded neighbor lists per (epoch, node, direction).
// The store owning it follows the Epoch publication protocol: look up at
// the current epoch, and Put only under an epoch observed stable across
// the whole decode. Entries are shared between hits — callers must clone
// any mutable parts (property maps) before handing records out.
type Adjacency struct {
	c *Clock[adjKey, []AdjEntry]
}

// NewAdjacency returns an adjacency cache bounded by budget bytes; a
// non-positive budget disables it.
func NewAdjacency(budget int64) *Adjacency {
	return &Adjacency{c: NewClock[adjKey, []AdjEntry](budget, adjCost)}
}

// adjCost estimates the resident size of one neighbor list. It prices the
// record headers, labels and a flat per-property charge; exactness does
// not matter, only that the budget bounds memory within a small factor.
func adjCost(_ adjKey, entries []AdjEntry) int64 {
	cost := int64(64) // key + slice header
	for _, e := range entries {
		cost += 96 + int64(len(e.Edge.Label)) + int64(len(e.Node.Label))
		cost += 48 * int64(len(e.Edge.Props)+len(e.Node.Props))
	}
	return cost
}

// Get returns the neighbor list cached for (epoch, node, dir).
func (a *Adjacency) Get(epoch uint64, node model.NodeID, dir model.Direction) ([]AdjEntry, bool) {
	return a.c.Get(adjKey{epoch, node, dir})
}

// Put caches a decoded neighbor list under (epoch, node, dir).
func (a *Adjacency) Put(epoch uint64, node model.NodeID, dir model.Direction, entries []AdjEntry) {
	a.c.Put(adjKey{epoch, node, dir}, entries)
}

// Stats returns a snapshot of the counters.
func (a *Adjacency) Stats() Stats { return a.c.Stats() }
