// Package cache is the versioned caching layer of the storage stack: a
// fixed-budget CLOCK (second-chance) cache, the bare CLOCK eviction policy
// the pager's buffer pool uses, a per-graph epoch counter, and the two
// typed caches built on them — a decoded-adjacency cache and a query-result
// cache.
//
// Invalidation contract (see DESIGN.md "Caching contract"): nothing in this
// package is ever invalidated in place. Cached entries are keyed on the
// owning graph's epoch, every mutation bumps the epoch on entry AND on
// exit, and readers only publish an entry when the epoch they observed
// before computing it is still current afterwards. Stale entries are
// therefore unreachable by construction and age out under budget pressure;
// a cached answer can only ever be one a fresh computation would return.
package cache

// Stats is a point-in-time snapshot of one cache layer's counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Entries and UsedBytes describe current occupancy; BudgetBytes is the
	// configured ceiling (0 means the layer is disabled).
	Entries     int   `json:"entries"`
	UsedBytes   int64 `json:"used_bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
}

// Add returns the element-wise sum of two snapshots (for aggregating the
// layers of one engine into a single report line).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:        s.Hits + o.Hits,
		Misses:      s.Misses + o.Misses,
		Evictions:   s.Evictions + o.Evictions,
		Entries:     s.Entries + o.Entries,
		UsedBytes:   s.UsedBytes + o.UsedBytes,
		BudgetBytes: s.BudgetBytes + o.BudgetBytes,
	}
}
