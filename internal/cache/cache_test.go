package cache

import (
	"fmt"
	"sync"
	"testing"

	"gdbm/internal/model"
)

func TestClockBasics(t *testing.T) {
	c := NewClock[string, int](3, nil) // unit costs: holds 3 entries
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	for k, want := range map[string]int{"a": 1, "b": 2, "c": 3} {
		if v, ok := c.Get(k); !ok || v != want {
			t.Fatalf("Get(%q) = %d, %v; want %d", k, v, ok, want)
		}
	}
	c.Put("d", 4) // over budget: one entry must go
	if c.Len() != 3 {
		t.Fatalf("Len = %d after eviction, want 3", c.Len())
	}
	s := c.Stats()
	if s.Evictions != 1 || s.UsedBytes != 3 || s.BudgetBytes != 3 {
		t.Fatalf("stats after eviction: %+v", s)
	}
	if !c.Remove("d") && !c.Remove("a") {
		t.Fatal("Remove found neither d nor a")
	}
}

func TestClockReplaceUpdatesCost(t *testing.T) {
	c := NewClock[string, string](10, func(_ string, v string) int64 { return int64(len(v)) })
	c.Put("k", "aaaa") // cost 4
	c.Put("k", "aa")   // cost 2: replacement must release the old cost
	if s := c.Stats(); s.UsedBytes != 2 || s.Entries != 1 {
		t.Fatalf("stats after replace: %+v", s)
	}
	c.Put("big", "aaaaaaaaaaaaaaaa") // cost 16 > budget: not admitted
	if _, ok := c.Get("big"); ok {
		t.Fatal("over-budget entry was admitted")
	}
}

func TestClockSecondChance(t *testing.T) {
	c := NewClock[int, int](3, nil)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	// Reference 1 and 2; 3's ref bit is cleared by a first sweep, so the
	// victim of the next insert must be 3.
	c.Get(1)
	c.Get(2)
	// Clear all ref bits with enough Puts is fiddly; instead assert only
	// that a referenced entry survives one eviction round.
	c.Put(4, 4)
	hits := 0
	for _, k := range []int{1, 2} {
		if _, ok := c.Get(k); ok {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("both recently-referenced entries were evicted before the unreferenced one")
	}
}

func TestClockZeroBudget(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		c := NewClock[string, int](budget, nil)
		c.Put("a", 1)
		if _, ok := c.Get("a"); ok {
			t.Fatalf("budget %d: Put stored an entry", budget)
		}
		if s := c.Stats(); s.Entries != 0 || s.UsedBytes != 0 {
			t.Fatalf("budget %d: stats %+v", budget, s)
		}
	}
	// The composed caches inherit the behavior.
	a := NewAdjacency(0)
	a.Put(1, 2, model.Out, []AdjEntry{{}})
	if _, ok := a.Get(1, 2, model.Out); ok {
		t.Fatal("zero-budget adjacency cache stored an entry")
	}
	r := NewResults(0)
	r.Put(7, 1, "x", 8)
	if _, ok := r.Get(7, 1); ok {
		t.Fatal("zero-budget result cache stored an entry")
	}
}

func TestClockConcurrentReaders(t *testing.T) {
	// Eviction churn under concurrent readers: a small budget forces every
	// writer Put to evict while readers Get. Run with -race in make race.
	c := NewClock[int, int](32, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Put((seed*2000+i)%97, i)
			}
		}(w)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Get((seed*31 + i) % 97)
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Entries > 32 || s.UsedBytes > 32 {
		t.Fatalf("budget exceeded after churn: %+v", s)
	}
	if s.Evictions == 0 {
		t.Fatal("expected eviction churn")
	}
}

func TestRingVictimOrder(t *testing.T) {
	r := NewRing[int]()
	r.Note(1)
	r.Note(2)
	r.Note(3)
	// All ref bits are set at insert, so the first sweep clears them in hand
	// order and the oldest entry falls first.
	if v, ok := r.Victim(); !ok || v != 1 {
		t.Fatalf("first victim = %d, %v; want 1", v, ok)
	}
	// Ref bits are now clear. A touch on 2 must protect it: the sweep skips
	// it (clearing the bit) and takes unreferenced 3 instead.
	r.Note(2)
	if v, ok := r.Victim(); !ok || v != 3 {
		t.Fatalf("second victim = %d, %v; want 3 (2 was just touched)", v, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d after two evictions, want 1", r.Len())
	}
	if !r.Remove(2) {
		t.Fatal("Remove(2) failed")
	}
	if r.Remove(2) {
		t.Fatal("double Remove(2) succeeded")
	}
}

func TestEpochWraparound(t *testing.T) {
	var e Epoch
	e.Set(^uint64(0)) // max: next Bump wraps to 0
	if got := e.Bump(); got != 0 {
		t.Fatalf("Bump at max = %d, want 0", got)
	}
	// A result cache keyed on the pre-wrap epoch must miss after the wrap:
	// the key includes the epoch value itself.
	r := NewResults(1 << 16)
	e.Set(^uint64(0))
	r.Put(42, e.Current(), "stale", 8)
	e.Bump() // wrap to 0
	e.Bump() // simulate mutation exit
	if _, ok := r.Get(42, e.Current()); ok {
		t.Fatal("post-wrap epoch hit a pre-wrap entry")
	}
	if v, ok := r.Get(42, ^uint64(0)); !ok || v != "stale" {
		t.Fatal("pre-wrap entry should still be addressable under its own epoch")
	}
}

func TestAdjacencyEpochKeying(t *testing.T) {
	a := NewAdjacency(1 << 16)
	ents := []AdjEntry{{
		Edge: model.Edge{ID: 1, Label: "knows", From: 1, To: 2},
		Node: model.Node{ID: 2, Label: "person", Props: model.Props("name", "b")},
	}}
	a.Put(5, 1, model.Out, ents)
	if got, ok := a.Get(5, 1, model.Out); !ok || len(got) != 1 || got[0].Edge.ID != 1 {
		t.Fatalf("Get(5,1,Out) = %v, %v", got, ok)
	}
	if _, ok := a.Get(6, 1, model.Out); ok {
		t.Fatal("entry visible under a later epoch")
	}
	if _, ok := a.Get(5, 1, model.In); ok {
		t.Fatal("entry visible under the wrong direction")
	}
}

func TestFingerprintSeparatorsMatter(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("fingerprint collision across part boundaries")
	}
	if Fingerprint("x") != Fingerprint("x") {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, Evictions: 3, Entries: 4, UsedBytes: 5, BudgetBytes: 6}
	b := Stats{Hits: 10, Misses: 20, Evictions: 30, Entries: 40, UsedBytes: 50, BudgetBytes: 60}
	got := a.Add(b)
	want := Stats{Hits: 11, Misses: 22, Evictions: 33, Entries: 44, UsedBytes: 55, BudgetBytes: 66}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}

func TestClockManyKeysStaysBounded(t *testing.T) {
	c := NewClock[string, int](100, nil)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
		if s := c.Stats(); s.UsedBytes > s.BudgetBytes {
			t.Fatalf("budget exceeded at i=%d: %+v", i, s)
		}
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
}
