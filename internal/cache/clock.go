package cache

import "sync"

// Clock is a fixed-budget in-memory cache with CLOCK (second-chance)
// replacement. Each entry carries a byte cost computed by the cost
// function at insert time; the sum of costs never exceeds the budget. A
// budget of zero or less disables the cache entirely: Put is a no-op and
// Get always misses, so callers need no separate "cache off" path.
//
// All methods are safe for concurrent use. Values are returned as stored —
// callers that hand out mutable values must copy on the way in or out.
type Clock[K comparable, V any] struct {
	mu     sync.Mutex
	budget int64
	used   int64
	cost   func(K, V) int64
	pos    map[K]int
	slots  []clockSlot[K, V]
	free   []int
	hand   int

	hits, misses, evictions uint64
}

type clockSlot[K comparable, V any] struct {
	key  K
	val  V
	cost int64
	ref  bool
	live bool
}

// NewClock returns a CLOCK cache bounded by budget bytes. cost prices one
// entry; nil means every entry costs 1 (an entry-count budget).
func NewClock[K comparable, V any](budget int64, cost func(K, V) int64) *Clock[K, V] {
	if cost == nil {
		cost = func(K, V) int64 { return 1 }
	}
	return &Clock[K, V]{budget: budget, cost: cost, pos: map[K]int{}}
}

// Get returns the cached value for k, marking the entry recently used.
func (c *Clock[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.pos[k]; ok {
		c.slots[i].ref = true
		c.hits++
		return c.slots[i].val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or replaces k. Entries whose cost alone exceeds the budget
// are not admitted.
func (c *Clock[K, V]) Put(k K, v V) {
	if c.budget <= 0 {
		return
	}
	cost := c.cost(k, v)
	c.mu.Lock()
	defer c.mu.Unlock()
	if cost > c.budget {
		return
	}
	if i, ok := c.pos[k]; ok {
		c.used += cost - c.slots[i].cost
		c.slots[i].val = v
		c.slots[i].cost = cost
		c.slots[i].ref = true
	} else {
		i := c.takeSlotLocked()
		c.slots[i] = clockSlot[K, V]{key: k, val: v, cost: cost, ref: true, live: true}
		c.pos[k] = i
		c.used += cost
	}
	for c.used > c.budget {
		if !c.evictOneLocked() {
			break
		}
	}
}

// takeSlotLocked returns a free slot index, growing the ring if needed.
func (c *Clock[K, V]) takeSlotLocked() int {
	if n := len(c.free); n > 0 {
		i := c.free[n-1]
		c.free = c.free[:n-1]
		return i
	}
	c.slots = append(c.slots, clockSlot[K, V]{})
	return len(c.slots) - 1
}

// evictOneLocked runs the clock hand: referenced entries get a second
// chance, the first unreferenced one is evicted. Terminates within two
// sweeps of the ring.
func (c *Clock[K, V]) evictOneLocked() bool {
	if len(c.pos) == 0 {
		return false
	}
	for scanned := 0; scanned < 2*len(c.slots); scanned++ {
		i := c.hand
		c.hand = (c.hand + 1) % len(c.slots)
		s := &c.slots[i]
		if !s.live {
			continue
		}
		if s.ref {
			s.ref = false
			continue
		}
		c.dropLocked(i)
		c.evictions++
		return true
	}
	return false
}

func (c *Clock[K, V]) dropLocked(i int) {
	s := &c.slots[i]
	delete(c.pos, s.key)
	c.used -= s.cost
	var zero clockSlot[K, V]
	*s = zero
	c.free = append(c.free, i)
}

// Remove deletes k if present, reporting whether it existed. Removals are
// not counted as evictions.
func (c *Clock[K, V]) Remove(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.pos[k]
	if ok {
		c.dropLocked(i)
	}
	return ok
}

// Purge empties the cache, keeping the counters.
func (c *Clock[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pos = map[K]int{}
	c.slots = nil
	c.free = nil
	c.hand = 0
	c.used = 0
}

// Len returns the number of cached entries.
func (c *Clock[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pos)
}

// Stats returns a snapshot of the counters.
func (c *Clock[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Entries:     len(c.pos),
		UsedBytes:   c.used,
		BudgetBytes: c.budget,
	}
}
