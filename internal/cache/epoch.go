package cache

import "sync/atomic"

// Epoch is a graph-version counter. Every mutation of the owning store
// bumps it twice — once on entry and once on exit, both while holding the
// store's mutation lock — so any read that overlaps a mutation observes
// different epochs before and after its computation and refuses to publish
// a cache entry. Reads that see a stable epoch ran against a quiescent
// store, and entries keyed on that epoch are valid for exactly as long as
// it remains current.
//
// The counter wraps around at 2^64 like any uint64. A stale entry could
// only be resurrected by a key colliding across a full wrap — 2^63
// mutations between the entry's write and the colliding read — which
// budget-pressure eviction makes unreachable in practice long before;
// the wraparound test pins the behavior at the boundary.
type Epoch struct {
	n atomic.Uint64
}

// Bump advances the epoch and returns the new value.
func (e *Epoch) Bump() uint64 { return e.n.Add(1) }

// Current returns the current epoch.
func (e *Epoch) Current() uint64 { return e.n.Load() }

// Set forces the counter to v. It exists for the wraparound tests; stores
// only ever Bump.
func (e *Epoch) Set(v uint64) { e.n.Store(v) }
