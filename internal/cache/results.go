package cache

import "hash/fnv"

// resultKey identifies one memoized answer: a query fingerprint at a graph
// epoch. Mutations bump the epoch, so every entry written before them is
// unreachable by construction — there is no explicit invalidation.
type resultKey struct {
	fp    uint64
	epoch uint64
}

// Results is the query-result cache. Keys are (fingerprint, epoch); the
// fingerprint encodes the engine, the query class and its arguments (see
// Fingerprint). Values are opaque to the cache; the caller prices each
// entry, and is responsible for storing/returning values that later
// mutation by its callers cannot corrupt (copy-in/copy-out).
type Results struct {
	c *Clock[resultKey, costed]
}

type costed struct {
	v    any
	cost int64
}

// NewResults returns a result cache bounded by budget bytes; a
// non-positive budget disables it.
func NewResults(budget int64) *Results {
	return &Results{c: NewClock[resultKey, costed](budget, func(_ resultKey, cv costed) int64 {
		return 64 + cv.cost
	})}
}

// Fingerprint hashes the parts identifying one query — by convention
// (engine, query class, rendered arguments...) — into a cache key
// component with FNV-1a.
func Fingerprint(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte{0}) // separator so ("ab","c") != ("a","bc")
		h.Write([]byte(p))
	}
	return h.Sum64()
}

// Get returns the answer cached for fingerprint fp at the given epoch.
func (r *Results) Get(fp, epoch uint64) (any, bool) {
	cv, ok := r.c.Get(resultKey{fp, epoch})
	if !ok {
		return nil, false
	}
	return cv.v, true
}

// Put caches v under (fp, epoch) with the given byte cost estimate.
func (r *Results) Put(fp, epoch uint64, v any, cost int64) {
	r.c.Put(resultKey{fp, epoch}, costed{v: v, cost: cost})
}

// Stats returns a snapshot of the counters.
func (r *Results) Stats() Stats { return r.c.Stats() }
