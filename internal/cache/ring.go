package cache

// Ring is the bare CLOCK eviction policy, without storage, locking or a
// byte budget: it tracks which keys exist and which were recently touched,
// and picks victims with the second-chance sweep. The pager's buffer pool
// uses it to choose eviction victims while keeping dirty-page write-back —
// which can fail, and must retain payloads for retried flushes — under its
// own lock and error handling.
//
// Ring is NOT safe for concurrent use; the owner must serialize calls.
type Ring[K comparable] struct {
	pos   map[K]int
	slots []ringSlot[K]
	free  []int
	hand  int
}

type ringSlot[K comparable] struct {
	key  K
	ref  bool
	live bool
}

// NewRing returns an empty policy ring.
func NewRing[K comparable]() *Ring[K] {
	return &Ring[K]{pos: map[K]int{}}
}

// Note records that k was just used: inserted if new, marked referenced if
// already tracked.
func (r *Ring[K]) Note(k K) {
	if i, ok := r.pos[k]; ok {
		r.slots[i].ref = true
		return
	}
	var i int
	if n := len(r.free); n > 0 {
		i = r.free[n-1]
		r.free = r.free[:n-1]
	} else {
		r.slots = append(r.slots, ringSlot[K]{})
		i = len(r.slots) - 1
	}
	r.slots[i] = ringSlot[K]{key: k, ref: true, live: true}
	r.pos[k] = i
}

// Victim removes and returns the next eviction victim: the first key the
// hand reaches whose reference bit is clear (referenced keys get a second
// chance). Returns false when the ring is empty.
func (r *Ring[K]) Victim() (K, bool) {
	var zero K
	if len(r.pos) == 0 {
		return zero, false
	}
	for scanned := 0; scanned < 2*len(r.slots); scanned++ {
		i := r.hand
		r.hand = (r.hand + 1) % len(r.slots)
		s := &r.slots[i]
		if !s.live {
			continue
		}
		if s.ref {
			s.ref = false
			continue
		}
		k := s.key
		r.dropSlot(i)
		return k, true
	}
	return zero, false
}

// Remove untracks k, reporting whether it was tracked.
func (r *Ring[K]) Remove(k K) bool {
	i, ok := r.pos[k]
	if ok {
		r.dropSlot(i)
	}
	return ok
}

func (r *Ring[K]) dropSlot(i int) {
	delete(r.pos, r.slots[i].key)
	var zero ringSlot[K]
	r.slots[i] = zero
	r.free = append(r.free, i)
}

// Len returns the number of tracked keys.
func (r *Ring[K]) Len() int { return len(r.pos) }
