package cache

import "testing"

// These tests pin the termination bound of the CLOCK sweeps under
// reference-bit saturation: every resident entry "pinned" by a fresh
// second chance while the cache sits at exactly its byte budget. The
// sweep's 2*len(slots) bound guarantees one full pass to strip the
// reference bits and a second to find a victim; without it, an all-
// referenced ring would spin the hand forever.

// fillToExactBudget inserts n entries of equal cost summing to exactly the
// budget, then touches each so every reference bit is set.
func fillToExactBudget(c *Clock[int, int], n int, cost int64) {
	for i := 0; i < n; i++ {
		c.Put(i, i)
	}
	for i := 0; i < n; i++ {
		c.Get(i)
	}
}

func TestClockPutTerminatesAtPinnedSaturation(t *testing.T) {
	const n, cost = 8, 4
	c := NewClock[int, int](n*cost, func(int, int) int64 { return cost })
	fillToExactBudget(c, n, cost)
	if s := c.Stats(); s.UsedBytes != s.BudgetBytes {
		t.Fatalf("setup: used %d != budget %d", s.UsedBytes, s.BudgetBytes)
	}

	// Every entry is referenced and the budget has no slack: the insert
	// must strip second chances and evict rather than spin.
	c.Put(100, 100)
	if _, ok := c.Get(100); !ok {
		t.Fatal("new entry not admitted at pinned saturation")
	}
	s := c.Stats()
	if s.UsedBytes > s.BudgetBytes {
		t.Fatalf("budget exceeded after saturated insert: used %d > budget %d", s.UsedBytes, s.BudgetBytes)
	}
	if s.Evictions == 0 {
		t.Fatal("saturated insert recorded no eviction")
	}
}

func TestClockRepeatedSaturatedInsertsTerminate(t *testing.T) {
	const n, cost = 8, 4
	c := NewClock[int, int](n*cost, func(int, int) int64 { return cost })
	fillToExactBudget(c, n, cost)
	// Each round re-references everything resident, then inserts; the
	// cache never leaves saturation, so every insert exercises the
	// all-referenced sweep.
	for round := 0; round < 100; round++ {
		for i := 0; i < n; i++ {
			c.Get(i)
		}
		c.Put(1000+round, round)
		if s := c.Stats(); s.UsedBytes > s.BudgetBytes {
			t.Fatalf("round %d: used %d > budget %d", round, s.UsedBytes, s.BudgetBytes)
		}
	}
}

func TestClockWholeBudgetEntryEvictsSaturatedRing(t *testing.T) {
	const n, cost = 4, 8
	budget := int64(n * cost)
	c := NewClock[int, int](budget, func(k, _ int) int64 {
		switch {
		case k >= 200:
			return budget + 1 // over budget: must be refused
		case k >= 100:
			return budget // one entry worth the whole budget
		}
		return cost
	})
	fillToExactBudget(c, n, cost)

	// Admitting a whole-budget entry from saturation must evict every
	// pinned resident — n consecutive victim sweeps — and stop there.
	c.Put(100, 1)
	if _, ok := c.Get(100); !ok {
		t.Fatal("whole-budget entry not admitted")
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d after whole-budget insert, want 1", got)
	}

	// An entry over the budget is refused outright, leaving the cache
	// untouched (no partial eviction spiral).
	c.Put(200, 1)
	if _, ok := c.Get(200); ok {
		t.Fatal("over-budget entry admitted")
	}
	if _, ok := c.Get(100); !ok {
		t.Fatal("refused insert evicted the resident entry")
	}
}

func TestRingVictimTerminatesAllReferenced(t *testing.T) {
	r := NewRing[int]()
	const n = 16
	for i := 0; i < n; i++ {
		r.Note(i)
	}
	// All n keys carry fresh reference bits. Drain the ring: each Victim
	// call must return within its two-sweep bound, and the ring must
	// empty in exactly n victims.
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		k, ok := r.Victim()
		if !ok {
			t.Fatalf("Victim ran dry after %d of %d", i, n)
		}
		if seen[k] {
			t.Fatalf("key %d evicted twice", k)
		}
		seen[k] = true
	}
	if _, ok := r.Victim(); ok {
		t.Fatal("Victim found a key in an empty ring")
	}
}

func TestRingVictimTerminatesWithDeadSlots(t *testing.T) {
	r := NewRing[int]()
	// Grow the slot array, then kill most of it so the sweep must step
	// over dead slots; the bound counts them, so it still must reach the
	// one live, referenced key within a single call.
	for i := 0; i < 64; i++ {
		r.Note(i)
	}
	for i := 0; i < 63; i++ {
		r.Remove(i)
	}
	r.Note(63) // re-reference the survivor
	k, ok := r.Victim()
	if !ok || k != 63 {
		t.Fatalf("Victim = %d, %v; want 63, true", k, ok)
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after final victim: %d", r.Len())
	}
}

func TestRingNoteAfterVictimReusesSlots(t *testing.T) {
	// Interleave saturated Note/Victim cycles: the free list must recycle
	// slots instead of growing the ring without bound.
	r := NewRing[int]()
	for i := 0; i < 8; i++ {
		r.Note(i)
	}
	for cycle := 0; cycle < 1000; cycle++ {
		if _, ok := r.Victim(); !ok {
			t.Fatalf("cycle %d: ring ran dry at Len=%d", cycle, r.Len())
		}
		r.Note(1000 + cycle)
	}
	if got := len(r.slots); got > 16 {
		t.Fatalf("slot array grew to %d under steady-state cycling, want <= 16", got)
	}
}
