// Package constraint implements the six integrity-constraint families the
// survey compares in Table VI: types checking, node/edge identity,
// referential integrity, cardinality checking, functional dependencies and
// graph pattern constraints. Engines install a Set of constraints and call
// its hooks around mutations; violations surface as model.ErrConstraint.
package constraint

import (
	"fmt"
	"sync"

	"gdbm/internal/algo"
	"gdbm/internal/model"
)

// Mutation describes a pending change for pre-validation.
type Mutation struct {
	// Exactly one of AddNode/AddEdge/DelNode is meaningful per kind.
	Kind    MutationKind
	Node    model.Node
	Edge    model.Edge
	FromLbl string // label of the edge's source node
	ToLbl   string // label of the edge's target node
}

// MutationKind discriminates Mutation.
type MutationKind uint8

const (
	AddNode MutationKind = iota
	AddEdge
	DelNode
	UpdateNode
)

// Constraint validates mutations against the current graph. Check is called
// before the mutation is applied.
type Constraint interface {
	// Name identifies the constraint family for Table VI probing.
	Name() string
	// Check returns a model.ErrConstraint-wrapped error to veto m.
	Check(g model.Graph, m Mutation) error
}

// Set is an ordered collection of constraints.
type Set struct {
	mu          sync.RWMutex
	constraints []Constraint
}

// NewSet returns an empty constraint set.
func NewSet() *Set { return &Set{} }

// Add installs a constraint.
func (s *Set) Add(c Constraint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.constraints = append(s.constraints, c)
}

// Names lists installed constraint names in order.
func (s *Set) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.constraints))
	for i, c := range s.constraints {
		out[i] = c.Name()
	}
	return out
}

// Check runs every constraint against the mutation.
func (s *Set) Check(g model.Graph, m Mutation) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, c := range s.constraints {
		if err := c.Check(g, m); err != nil {
			return err
		}
	}
	return nil
}

// --- types checking ---

// Types validates node and edge records against a schema (Table VI "Types
// checking").
type Types struct {
	Schema *model.Schema
}

// Name implements Constraint.
func (Types) Name() string { return "types" }

// Check implements Constraint.
func (t Types) Check(_ model.Graph, m Mutation) error {
	switch m.Kind {
	case AddNode, UpdateNode:
		return t.Schema.CheckNode(m.Node)
	case AddEdge:
		return t.Schema.CheckEdge(m.Edge, m.FromLbl, m.ToLbl)
	}
	return nil
}

// --- node/edge identity ---

// Identity requires the named property to uniquely identify nodes with the
// given label (Table VI "Node/edge identity"). An empty label applies to all
// nodes.
type Identity struct {
	Label string
	Prop  string
}

// Name implements Constraint.
func (Identity) Name() string { return "identity" }

// Check implements Constraint.
func (c Identity) Check(g model.Graph, m Mutation) error {
	if m.Kind != AddNode && m.Kind != UpdateNode {
		return nil
	}
	if c.Label != "" && m.Node.Label != c.Label {
		return nil
	}
	v := m.Node.Props.Get(c.Prop)
	if v.IsNull() {
		return fmt.Errorf("identity: node of type %q must set %q: %w", m.Node.Label, c.Prop, model.ErrConstraint)
	}
	var clash bool
	err := g.Nodes(func(n model.Node) bool {
		if n.ID != m.Node.ID && (c.Label == "" || n.Label == c.Label) && n.Props.Get(c.Prop).Equal(v) {
			clash = true
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if clash {
		return fmt.Errorf("identity: duplicate %q=%v for type %q: %w", c.Prop, v, c.Label, model.ErrConstraint)
	}
	return nil
}

// --- referential integrity ---

// Referential requires edge endpoints to exist and forbids deleting nodes
// that still have incident edges (Table VI "Referential integrity").
type Referential struct{}

// Name implements Constraint.
func (Referential) Name() string { return "referential" }

// Check implements Constraint.
func (Referential) Check(g model.Graph, m Mutation) error {
	switch m.Kind {
	case AddEdge:
		for _, id := range []model.NodeID{m.Edge.From, m.Edge.To} {
			if _, err := g.Node(id); err != nil {
				return fmt.Errorf("referential: edge references missing node %d: %w", id, model.ErrConstraint)
			}
		}
	case DelNode:
		d, err := g.Degree(m.Node.ID, model.Both)
		if err != nil {
			return nil // already gone; nothing to protect
		}
		if d > 0 {
			return fmt.Errorf("referential: node %d still has %d incident edges: %w", m.Node.ID, d, model.ErrConstraint)
		}
	}
	return nil
}

// --- cardinality ---

// Cardinality bounds the number of outgoing edges with a label per source
// node (Table VI "Cardinality checking"). Max <= 0 means only Min applies;
// Min is validated by ValidateGraph since insertion order must be free to
// pass through low counts.
type Cardinality struct {
	EdgeLabel string
	Max       int
}

// Name implements Constraint.
func (Cardinality) Name() string { return "cardinality" }

// Check implements Constraint.
func (c Cardinality) Check(g model.Graph, m Mutation) error {
	if m.Kind != AddEdge || m.Edge.Label != c.EdgeLabel || c.Max <= 0 {
		return nil
	}
	count := 0
	err := g.Neighbors(m.Edge.From, model.Out, func(e model.Edge, _ model.Node) bool {
		if e.Label == c.EdgeLabel {
			count++
		}
		return count <= c.Max
	})
	if err != nil {
		return err
	}
	if count >= c.Max {
		return fmt.Errorf("cardinality: node %d already has %d %q edges (max %d): %w",
			m.Edge.From, count, c.EdgeLabel, c.Max, model.ErrConstraint)
	}
	return nil
}

// --- functional dependency ---

// FuncDep enforces Determinant → Dependent within a node label: two nodes
// agreeing on the determinant property must agree on the dependent property
// (Table VI "Functional dependency").
type FuncDep struct {
	Label       string
	Determinant string
	Dependent   string
}

// Name implements Constraint.
func (FuncDep) Name() string { return "funcdep" }

// Check implements Constraint.
func (c FuncDep) Check(g model.Graph, m Mutation) error {
	if m.Kind != AddNode && m.Kind != UpdateNode {
		return nil
	}
	if c.Label != "" && m.Node.Label != c.Label {
		return nil
	}
	det := m.Node.Props.Get(c.Determinant)
	dep := m.Node.Props.Get(c.Dependent)
	if det.IsNull() {
		return nil
	}
	var violation error
	err := g.Nodes(func(n model.Node) bool {
		if n.ID == m.Node.ID || (c.Label != "" && n.Label != c.Label) {
			return true
		}
		if n.Props.Get(c.Determinant).Equal(det) && !n.Props.Get(c.Dependent).Equal(dep) {
			violation = fmt.Errorf("funcdep: %s=%v implies %s=%v but node %d has %v: %w",
				c.Determinant, det, c.Dependent, n.Props.Get(c.Dependent), m.Node.ID, dep, model.ErrConstraint)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return violation
}

// --- graph pattern constraint ---

// ForbiddenPattern vetoes any mutation that would complete an embedding of
// the pattern (Table VI "Graph pattern" constraints, negative form).
type ForbiddenPattern struct {
	Pattern *algo.Pattern
	// Desc is a human-readable description used in error messages.
	Desc string
}

// Name implements Constraint.
func (ForbiddenPattern) Name() string { return "pattern" }

// Check implements Constraint. It is called *before* the mutation applies,
// so it simulates edge additions with an overlay view.
func (c ForbiddenPattern) Check(g model.Graph, m Mutation) error {
	var view model.Graph = g
	if m.Kind == AddEdge {
		view = &edgeOverlay{Graph: g, extra: m.Edge}
	} else if m.Kind != AddNode && m.Kind != UpdateNode {
		return nil
	}
	matches, err := algo.FindMatches(view, c.Pattern, 1)
	if err != nil {
		return err
	}
	if len(matches) > 0 {
		return fmt.Errorf("pattern: forbidden pattern %q would be created: %w", c.Desc, model.ErrConstraint)
	}
	return nil
}

// edgeOverlay presents g plus one not-yet-inserted edge.
type edgeOverlay struct {
	model.Graph
	extra model.Edge
}

func (o *edgeOverlay) Size() int { return o.Graph.Size() + 1 }

func (o *edgeOverlay) Edge(id model.EdgeID) (model.Edge, error) {
	if id == o.extra.ID {
		return o.extra, nil
	}
	return o.Graph.Edge(id)
}

func (o *edgeOverlay) Edges(fn func(model.Edge) bool) error {
	stopped := false
	err := o.Graph.Edges(func(e model.Edge) bool {
		if !fn(e) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	fn(o.extra)
	return nil
}

func (o *edgeOverlay) Neighbors(id model.NodeID, dir model.Direction, fn func(model.Edge, model.Node) bool) error {
	stopped := false
	err := o.Graph.Neighbors(id, dir, func(e model.Edge, n model.Node) bool {
		if !fn(e, n) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	emit := func(far model.NodeID) error {
		n, err := o.Graph.Node(far)
		if err != nil {
			return nil // overlay edge to a node being added; skip
		}
		fn(o.extra, n)
		return nil
	}
	if (dir == model.Out || dir == model.Both) && o.extra.From == id {
		if err := emit(o.extra.To); err != nil {
			return err
		}
	}
	if (dir == model.In || dir == model.Both) && o.extra.To == id {
		if err := emit(o.extra.From); err != nil {
			return err
		}
	}
	return nil
}

func (o *edgeOverlay) Degree(id model.NodeID, dir model.Direction) (int, error) {
	d, err := o.Graph.Degree(id, dir)
	if err != nil {
		return 0, err
	}
	if (dir == model.Out || dir == model.Both) && o.extra.From == id {
		d++
	}
	if (dir == model.In || dir == model.Both) && o.extra.To == id {
		d++
	}
	return d, nil
}
