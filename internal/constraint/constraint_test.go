package constraint

import (
	"errors"
	"testing"

	"gdbm/internal/algo"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

func schemaFor(t *testing.T) *model.Schema {
	t.Helper()
	s := model.NewSchema()
	s.DefineNodeType(model.NodeType{
		Name: "Person",
		Properties: []model.PropertyType{
			{Name: "name", Kind: model.KindString, Required: true},
		},
	})
	s.DefineNodeType(model.NodeType{Name: "City"})
	s.DefineRelationType(model.RelationType{Name: "livesIn", From: "Person", To: "City"})
	return s
}

func TestTypesConstraint(t *testing.T) {
	g := memgraph.New()
	c := Types{Schema: schemaFor(t)}
	ok := Mutation{Kind: AddNode, Node: model.Node{Label: "Person", Props: model.Props("name", "ada")}}
	if err := c.Check(g, ok); err != nil {
		t.Errorf("valid node: %v", err)
	}
	bad := Mutation{Kind: AddNode, Node: model.Node{Label: "Person"}}
	if err := c.Check(g, bad); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("missing required: %v", err)
	}
	edgeOK := Mutation{Kind: AddEdge, Edge: model.Edge{Label: "livesIn"}, FromLbl: "Person", ToLbl: "City"}
	if err := c.Check(g, edgeOK); err != nil {
		t.Errorf("valid edge: %v", err)
	}
	edgeBad := Mutation{Kind: AddEdge, Edge: model.Edge{Label: "livesIn"}, FromLbl: "City", ToLbl: "City"}
	if err := c.Check(g, edgeBad); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("wrong endpoint type: %v", err)
	}
	// Non-node mutations pass through.
	if err := c.Check(g, Mutation{Kind: DelNode}); err != nil {
		t.Errorf("delnode: %v", err)
	}
}

func TestIdentityConstraint(t *testing.T) {
	g := memgraph.New()
	id, _ := g.AddNode("Person", model.Props("name", "ada"))
	c := Identity{Label: "Person", Prop: "name"}

	dup := Mutation{Kind: AddNode, Node: model.Node{ID: 99, Label: "Person", Props: model.Props("name", "ada")}}
	if err := c.Check(g, dup); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("duplicate identity: %v", err)
	}
	fresh := Mutation{Kind: AddNode, Node: model.Node{ID: 99, Label: "Person", Props: model.Props("name", "bob")}}
	if err := c.Check(g, fresh); err != nil {
		t.Errorf("fresh identity: %v", err)
	}
	missing := Mutation{Kind: AddNode, Node: model.Node{ID: 99, Label: "Person"}}
	if err := c.Check(g, missing); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("missing identity prop: %v", err)
	}
	// Updating the same node to its own value is allowed.
	self := Mutation{Kind: UpdateNode, Node: model.Node{ID: id, Label: "Person", Props: model.Props("name", "ada")}}
	if err := c.Check(g, self); err != nil {
		t.Errorf("self update: %v", err)
	}
	// Other labels are ignored.
	other := Mutation{Kind: AddNode, Node: model.Node{ID: 98, Label: "City", Props: model.Props("name", "ada")}}
	if err := c.Check(g, other); err != nil {
		t.Errorf("other label: %v", err)
	}
}

func TestReferentialConstraint(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("N", nil)
	b, _ := g.AddNode("N", nil)
	g.AddEdge("e", a, b, nil)
	c := Referential{}

	bad := Mutation{Kind: AddEdge, Edge: model.Edge{From: a, To: 999}}
	if err := c.Check(g, bad); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("dangling edge: %v", err)
	}
	okM := Mutation{Kind: AddEdge, Edge: model.Edge{From: a, To: b}}
	if err := c.Check(g, okM); err != nil {
		t.Errorf("valid edge: %v", err)
	}
	delBad := Mutation{Kind: DelNode, Node: model.Node{ID: a}}
	if err := c.Check(g, delBad); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("delete connected node: %v", err)
	}
	iso, _ := g.AddNode("N", nil)
	delOK := Mutation{Kind: DelNode, Node: model.Node{ID: iso}}
	if err := c.Check(g, delOK); err != nil {
		t.Errorf("delete isolated node: %v", err)
	}
}

func TestCardinalityConstraint(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("N", nil)
	b, _ := g.AddNode("N", nil)
	c2, _ := g.AddNode("N", nil)
	g.AddEdge("owns", a, b, nil)
	cons := Cardinality{EdgeLabel: "owns", Max: 1}

	over := Mutation{Kind: AddEdge, Edge: model.Edge{Label: "owns", From: a, To: c2}}
	if err := cons.Check(g, over); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("over max: %v", err)
	}
	otherLabel := Mutation{Kind: AddEdge, Edge: model.Edge{Label: "likes", From: a, To: c2}}
	if err := cons.Check(g, otherLabel); err != nil {
		t.Errorf("other label: %v", err)
	}
	otherSource := Mutation{Kind: AddEdge, Edge: model.Edge{Label: "owns", From: b, To: c2}}
	if err := cons.Check(g, otherSource); err != nil {
		t.Errorf("other source: %v", err)
	}
}

func TestFuncDepConstraint(t *testing.T) {
	g := memgraph.New()
	g.AddNode("City", model.Props("zip", "9000", "region", "west"))
	c := FuncDep{Label: "City", Determinant: "zip", Dependent: "region"}

	conflict := Mutation{Kind: AddNode, Node: model.Node{ID: 50, Label: "City", Props: model.Props("zip", "9000", "region", "east")}}
	if err := c.Check(g, conflict); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("fd violation: %v", err)
	}
	agree := Mutation{Kind: AddNode, Node: model.Node{ID: 50, Label: "City", Props: model.Props("zip", "9000", "region", "west")}}
	if err := c.Check(g, agree); err != nil {
		t.Errorf("fd agree: %v", err)
	}
	newDet := Mutation{Kind: AddNode, Node: model.Node{ID: 50, Label: "City", Props: model.Props("zip", "1000", "region", "east")}}
	if err := c.Check(g, newDet); err != nil {
		t.Errorf("new determinant: %v", err)
	}
	noDet := Mutation{Kind: AddNode, Node: model.Node{ID: 50, Label: "City"}}
	if err := c.Check(g, noDet); err != nil {
		t.Errorf("absent determinant: %v", err)
	}
}

func TestForbiddenPatternConstraint(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("N", nil)
	b, _ := g.AddNode("N", nil)
	g.AddEdge("e", a, b, nil)

	// Forbid a 2-cycle: x->y->x.
	pat, err := algo.NewPattern(
		[]algo.PatternNode{{Var: "x"}, {Var: "y"}},
		[]algo.PatternEdge{{From: 0, To: 1, Label: "e"}, {From: 1, To: 0, Label: "e"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	c := ForbiddenPattern{Pattern: pat, Desc: "2-cycle"}

	closing := Mutation{Kind: AddEdge, Edge: model.Edge{ID: 999, Label: "e", From: b, To: a}}
	if err := c.Check(g, closing); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("closing 2-cycle: %v", err)
	}
	harmless := Mutation{Kind: AddEdge, Edge: model.Edge{ID: 999, Label: "e", From: a, To: b}}
	if err := c.Check(g, harmless); err != nil {
		t.Errorf("parallel edge: %v", err)
	}
	// DelNode mutations are ignored by this constraint.
	if err := c.Check(g, Mutation{Kind: DelNode}); err != nil {
		t.Errorf("delnode: %v", err)
	}
}

func TestSetAggregatesConstraints(t *testing.T) {
	g := memgraph.New()
	g.AddNode("Person", model.Props("name", "ada"))
	s := NewSet()
	s.Add(Types{Schema: schemaFor(t)})
	s.Add(Identity{Label: "Person", Prop: "name"})
	names := s.Names()
	if len(names) != 2 || names[0] != "types" || names[1] != "identity" {
		t.Errorf("names = %v", names)
	}
	bad := Mutation{Kind: AddNode, Node: model.Node{ID: 9, Label: "Person", Props: model.Props("name", "ada")}}
	if err := s.Check(g, bad); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("set check: %v", err)
	}
	good := Mutation{Kind: AddNode, Node: model.Node{ID: 9, Label: "Person", Props: model.Props("name", "bob")}}
	if err := s.Check(g, good); err != nil {
		t.Errorf("set check good: %v", err)
	}
}

func TestEdgeOverlayView(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("N", nil)
	b, _ := g.AddNode("N", nil)
	g.AddEdge("e", a, b, nil)
	ov := &edgeOverlay{Graph: g, extra: model.Edge{ID: 99, Label: "x", From: b, To: a}}

	if ov.Size() != 2 {
		t.Errorf("overlay size = %d", ov.Size())
	}
	e, err := ov.Edge(99)
	if err != nil || e.Label != "x" {
		t.Errorf("overlay edge: %+v %v", e, err)
	}
	if _, err := ov.Edge(1); err != nil {
		t.Errorf("base edge: %v", err)
	}
	n := 0
	ov.Edges(func(model.Edge) bool { n++; return true })
	if n != 2 {
		t.Errorf("overlay edges visited %d", n)
	}
	d, _ := ov.Degree(a, model.Both)
	if d != 2 {
		t.Errorf("overlay degree = %d", d)
	}
	outB, _ := ov.Degree(b, model.Out)
	if outB != 1 {
		t.Errorf("overlay out degree b = %d", outB)
	}
	// Neighbors sees the overlay edge.
	seen := false
	ov.Neighbors(b, model.Out, func(e model.Edge, n model.Node) bool {
		if e.ID == 99 && n.ID == a {
			seen = true
		}
		return true
	})
	if !seen {
		t.Error("overlay edge missing from Neighbors")
	}
}
