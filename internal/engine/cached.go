package engine

import (
	"strconv"
	"strings"

	"gdbm/internal/algo"
	"gdbm/internal/cache"
	"gdbm/internal/model"
	"gdbm/internal/query/plan"
)

// CacheStatser is implemented by engines that expose their cache counters,
// keyed by tier ("page", "adjacency", "results"). Engines built without a
// tier omit its key.
type CacheStatser interface {
	CacheStats() map[string]cache.Stats
}

// CachedEssentials wraps an essential-query surface with a query-result
// cache keyed on (engine name, query class, rendered arguments) at the
// graph epoch reported by epoch. Entries are published only when the epoch
// is unchanged across the computation, so a result computed against a
// partially-applied mutation can never be served later; entries written
// before a mutation are unreachable because the mutation bumped the epoch.
// Values are copied in and copied out, so callers may mutate what they
// receive. Nil query classes stay nil, and errors are never cached.
func CachedEssentials(name string, es Essentials, rc *cache.Results, epoch func() uint64) Essentials {
	if rc == nil {
		return es
	}
	out := es
	if es.NodeAdjacency != nil {
		out.NodeAdjacency = func(a, b model.NodeID) (bool, error) {
			fp := cache.Fingerprint(name, "nadj", u(uint64(a)), u(uint64(b)))
			return cached(rc, epoch, fp, func(bool) int64 { return 1 }, ident[bool],
				func() (bool, error) { return es.NodeAdjacency(a, b) })
		}
	}
	if es.EdgeAdjacency != nil {
		out.EdgeAdjacency = func(e1, e2 model.EdgeID) (bool, error) {
			fp := cache.Fingerprint(name, "eadj", u(uint64(e1)), u(uint64(e2)))
			return cached(rc, epoch, fp, func(bool) int64 { return 1 }, ident[bool],
				func() (bool, error) { return es.EdgeAdjacency(e1, e2) })
		}
	}
	if es.KNeighborhood != nil {
		out.KNeighborhood = func(n model.NodeID, k int) ([]model.NodeID, error) {
			fp := cache.Fingerprint(name, "khood", u(uint64(n)), strconv.Itoa(k))
			return cached(rc, epoch, fp, idsCost, cloneIDs,
				func() ([]model.NodeID, error) { return es.KNeighborhood(n, k) })
		}
	}
	if es.FixedLengthPaths != nil {
		out.FixedLengthPaths = func(from, to model.NodeID, length int) ([]algo.Path, error) {
			fp := cache.Fingerprint(name, "fpaths", u(uint64(from)), u(uint64(to)), strconv.Itoa(length))
			return cached(rc, epoch, fp, pathsCost, clonePaths,
				func() ([]algo.Path, error) { return es.FixedLengthPaths(from, to, length) })
		}
	}
	if es.RegularSimplePaths != nil {
		out.RegularSimplePaths = func(from model.NodeID, expr string) ([]model.NodeID, error) {
			fp := cache.Fingerprint(name, "rpaths", u(uint64(from)), expr)
			return cached(rc, epoch, fp, idsCost, cloneIDs,
				func() ([]model.NodeID, error) { return es.RegularSimplePaths(from, expr) })
		}
	}
	if es.ShortestPath != nil {
		out.ShortestPath = func(from, to model.NodeID) (algo.Path, error) {
			fp := cache.Fingerprint(name, "spath", u(uint64(from)), u(uint64(to)))
			return cached(rc, epoch, fp, pathCost, clonePath,
				func() (algo.Path, error) { return es.ShortestPath(from, to) })
		}
	}
	if es.PatternMatching != nil {
		out.PatternMatching = func(p *algo.Pattern) ([]algo.Match, error) {
			fp := cache.Fingerprint(name, "pattern", p.String())
			return cached(rc, epoch, fp, matchesCost, cloneMatches,
				func() ([]algo.Match, error) { return es.PatternMatching(p) })
		}
	}
	if es.Summarization != nil {
		out.Summarization = func(kind algo.AggKind, label, prop string) (model.Value, error) {
			fp := cache.Fingerprint(name, "summ", strconv.Itoa(int(kind)), label, prop)
			return cached(rc, epoch, fp, func(model.Value) int64 { return 32 }, ident[model.Value],
				func() (model.Value, error) { return es.Summarization(kind, label, prop) })
		}
	}
	return out
}

// CachedQuery memoizes one statement execution under the same epoch-
// publication rule as CachedEssentials, copying results in and out. Callers
// must route only statements whose first keyword is in readVerbs (compare
// ReadOnlyStmt) — replaying a cached mutating statement would skip its side
// effects. The epoch guard is a second line of defense: a statement that
// does mutate the graph bumps the epoch and is therefore never published.
func CachedQuery(rc *cache.Results, epoch func() uint64, name, lang, stmt string,
	exec func() (*plan.Result, error)) (*plan.Result, error) {
	if rc == nil {
		return exec()
	}
	fp := cache.Fingerprint(name, lang, stmt)
	return cached(rc, epoch, fp, resultCost, (*plan.Result).Clone, exec)
}

// ReadOnlyStmt reports whether the statement's first keyword is one of the
// given read verbs (case-insensitive), e.g. "SELECT" for gsql or "MATCH"
// for gql.
func ReadOnlyStmt(stmt string, readVerbs ...string) bool {
	fields := strings.Fields(stmt)
	if len(fields) == 0 {
		return false
	}
	for _, v := range readVerbs {
		if strings.EqualFold(fields[0], v) {
			return true
		}
	}
	return false
}

func resultCost(r *plan.Result) int64 {
	c := int64(48)
	for _, col := range r.Cols {
		c += 16 + int64(len(col))
	}
	for _, row := range r.Rows {
		c += 24 + 40*int64(len(row))
	}
	return c
}

// cached runs one memoized call: look up at the current epoch, compute on
// miss, and publish a private copy only if no mutation overlapped the
// computation. The caller receives a value it owns either way.
func cached[T any](rc *cache.Results, epoch func() uint64, fp uint64,
	cost func(T) int64, clone func(T) T, compute func() (T, error)) (T, error) {
	e := epoch()
	if v, ok := rc.Get(fp, e); ok {
		return clone(v.(T)), nil
	}
	v, err := compute()
	if err != nil {
		return v, err
	}
	if epoch() == e {
		rc.Put(fp, e, clone(v), cost(v))
	}
	return v, nil
}

func u(v uint64) string { return strconv.FormatUint(v, 10) }

func ident[T any](v T) T { return v }

func cloneIDs(ids []model.NodeID) []model.NodeID {
	if ids == nil {
		return nil
	}
	return append([]model.NodeID(nil), ids...)
}

func clonePath(p algo.Path) algo.Path {
	return algo.Path{
		Nodes: append([]model.NodeID(nil), p.Nodes...),
		Edges: append([]model.EdgeID(nil), p.Edges...),
	}
}

func clonePaths(ps []algo.Path) []algo.Path {
	if ps == nil {
		return nil
	}
	out := make([]algo.Path, len(ps))
	for i, p := range ps {
		out[i] = clonePath(p)
	}
	return out
}

func cloneMatches(ms []algo.Match) []algo.Match {
	if ms == nil {
		return nil
	}
	out := make([]algo.Match, len(ms))
	for i, m := range ms {
		c := make(algo.Match, len(m))
		for k, v := range m {
			c[k] = v
		}
		out[i] = c
	}
	return out
}

func idsCost(ids []model.NodeID) int64 { return 24 + 8*int64(len(ids)) }

func pathCost(p algo.Path) int64 { return 48 + 8*int64(len(p.Nodes)+len(p.Edges)) }

func pathsCost(ps []algo.Path) int64 {
	c := int64(24)
	for _, p := range ps {
		c += pathCost(p)
	}
	return c
}

func matchesCost(ms []algo.Match) int64 {
	c := int64(24)
	for _, m := range ms {
		c += 48 + 16*int64(len(m))
	}
	return c
}
