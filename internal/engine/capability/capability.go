// Package capability is the single source of truth for which capability
// interfaces (engine.Loader, engine.Querier, ...) each archetype engine is
// allowed to implement, derived cell by cell from the survey's Tables I-VII.
//
// The registry is enforced from two sides:
//
//   - statically, by the gdbvet "capdecl" analyzer, which convicts any type
//     in an engine package that implements a capability interface its
//     profile forbids (including accidental implementations picked up by
//     embedding); and
//   - dynamically, by this package's conformance test, which opens every
//     registered engine and checks that the implemented set stays inside
//     the allowed set and that the allowed set is consistent with the
//     engine's declared Features.
//
// Together they pin the paper's feature matrices to the code: an engine
// cannot silently grow (or lose) a surface the survey says it should not
// have.
package capability

import "sort"

// Capability names one of the interface-level surfaces declared in
// package engine. The names must match the interface identifiers.
type Capability = string

// The capability vocabulary. Every entry names an exported interface of
// gdbm/internal/engine; the capdecl analyzer resolves them by name.
const (
	Loader        Capability = "Loader"
	GraphAPI      Capability = "GraphAPI"
	HyperAPI      Capability = "HyperAPI"
	Querier       Capability = "Querier"
	SchemaHolder  Capability = "SchemaHolder"
	Reasoner      Capability = "Reasoner"
	Transactional Capability = "Transactional"
	Persistent    Capability = "Persistent"
	Concurrent    Capability = "Concurrent"
)

// All lists the capability vocabulary in deterministic order.
func All() []Capability {
	return []Capability{
		Loader, GraphAPI, HyperAPI, Querier,
		SchemaHolder, Reasoner, Transactional, Persistent,
		Concurrent,
	}
}

// Profile is one engine package's allowance.
type Profile struct {
	// Row is the survey-table row the package reproduces ("Neo4j", ...).
	Row string
	// Allowed is the set of capability interfaces the archetype's paper
	// profile permits. Anything outside it is a capdecl violation.
	Allowed []Capability
	// DiskOnly marks archetypes that live solely in external memory
	// (Table I blanks their main-memory column): construction requires
	// Options.Dir. Harnesses consult this instead of hard-coding engine
	// names, so newly disk-only engines keep benching against the right
	// storage.
	DiskOnly bool
	// Library marks shared substrate packages that live under
	// internal/engines/ but are not archetypes themselves; capdecl does
	// not constrain them.
	Library bool
}

// Allows reports whether the profile permits the capability.
func (p Profile) Allows(c Capability) bool {
	for _, a := range p.Allowed {
		if a == c {
			return true
		}
	}
	return false
}

// Profiles maps engine package import path to its allowance. Rationale is
// recorded per entry against the survey's tables; the conformance test
// cross-checks the machine-checkable parts against Features().
var Profiles = map[string]Profile{
	// AllegroGraph: RDF store with SPARQL (Tables II+V query language),
	// RDFS++ reasoning (Table V), disk persistence (Table I external
	// memory) and a graph API. A multi-user server per Section II, hence
	// Concurrent.
	"gdbm/internal/engines/triplestore": {
		Row:     "AllegroGraph",
		Allowed: []Capability{Loader, GraphAPI, Querier, SchemaHolder, Reasoner, Persistent, Concurrent},
	},
	// DEX: bitmap-backed attributed multigraph, API-only operation
	// (Table II blanks DDL/DML/QL), node/relation types with types
	// checking (Tables IV+VI), external memory (Table I). Shared-session
	// graph management library, hence Concurrent.
	"gdbm/internal/engines/bitmapdb": {
		Row:     "DEX",
		Allowed: []Capability{Loader, GraphAPI, SchemaHolder, Persistent, Concurrent},
	},
	// Filament: schema-free pull-style API over a relational backend
	// (Table I backend storage); no language, no schema (Tables II, IV).
	"gdbm/internal/engines/filamentdb": {
		Row:     "Filament",
		Allowed: []Capability{Loader, GraphAPI, Persistent},
	},
	// G-Store: queries only through its language (Table V blanks the API
	// column), DDL in the language (Table II), paged external memory —
	// external memory *only*, so construction requires a data directory.
	"gdbm/internal/engines/gstore": {
		Row:      "G-Store",
		Allowed:  []Capability{Loader, Querier, SchemaHolder, Persistent},
		DiskOnly: true,
	},
	// HyperGraphDB: hypergraph model (Table III), typed atoms (Table IV
	// node/relation types), key-value backend storage (Table I). The
	// hypergraph surface is exposed by a side type, hence HyperAPI.
	"gdbm/internal/engines/hyperdb": {
		Row:     "HyperGraphDB",
		Allowed: []Capability{Loader, HyperAPI, SchemaHolder, Persistent},
	},
	// InfiniteGraph: distributed attributed graph, API operation, typed
	// nodes/relations (Table IV), external memory. Built for concurrent
	// distributed traversal, hence Concurrent.
	"gdbm/internal/engines/infinigraph": {
		Row:     "InfiniteGraph",
		Allowed: []Capability{Loader, GraphAPI, SchemaHolder, Persistent, Concurrent},
	},
	// Neo4j: schema-free network model — Table IV blanks every schema
	// column and Table II blanks DDL, so SchemaHolder is forbidden; the
	// Cypher-like gql is the Table V "in development" partial query
	// language; transactions per the survey's Section II component list.
	// Concurrent: the survey's Section II component list gives Neo4j the
	// full database-engine stack, transactions included.
	"gdbm/internal/engines/neograph": {
		Row:     "Neo4j",
		Allowed: []Capability{Loader, GraphAPI, Querier, Transactional, Persistent, Concurrent},
	},
	// Sones: main-memory only (Table I blanks external memory, so
	// Persistent is forbidden), GraphQL-style language with DDL, object
	// model with hypergraph flavor (Table III).
	"gdbm/internal/engines/sonesdb": {
		Row:     "Sones",
		Allowed: []Capability{Loader, GraphAPI, HyperAPI, Querier, SchemaHolder},
	},
	// VertexDB: REST/JSON document-per-vertex store over a key-value
	// backend (Table I), schema-free, API only.
	"gdbm/internal/engines/vertexkv": {
		Row:     "VertexDB",
		Allowed: []Capability{Loader, GraphAPI, Persistent},
	},
	// Shared substrate packages under internal/engines/ that archetypes
	// compose; they are not archetypes and carry no paper profile.
	"gdbm/internal/engines/propcore": {Library: true},
	"gdbm/internal/engines/suite":    {Library: true},
}

// ForEngine returns the profile of the engine registered under name (the
// engine.Register name, which matches the last path element of its package).
func ForEngine(name string) (Profile, bool) {
	p, ok := Profiles["gdbm/internal/engines/"+name]
	return p, ok
}

// NeedsDir reports whether the named engine is external-memory only and so
// must be opened with Options.Dir set.
func NeedsDir(name string) bool {
	p, ok := ForEngine(name)
	return ok && p.DiskOnly
}

// AllowsDir reports whether the named engine can use a data directory at
// all, i.e. its profile permits the Persistent capability.
func AllowsDir(name string) bool {
	p, ok := ForEngine(name)
	return ok && p.Allows(Persistent)
}

// Rows returns the registered engine package paths sorted by survey row.
func Rows() []string {
	var paths []string
	for p, prof := range Profiles {
		if !prof.Library {
			paths = append(paths, p)
		}
	}
	sort.Slice(paths, func(i, j int) bool {
		return Profiles[paths[i]].Row < Profiles[paths[j]].Row
	})
	return paths
}
