package capability_test

import (
	"path"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/engine/capability"

	_ "gdbm" // register every engine
)

// implementedBy probes which capability interfaces the live engine value
// satisfies — the dynamic twin of the capdecl analyzer's static check.
func implementedBy(e engine.Engine) map[capability.Capability]bool {
	caps := map[capability.Capability]bool{}
	if _, ok := e.(engine.Loader); ok {
		caps[capability.Loader] = true
	}
	if _, ok := e.(engine.GraphAPI); ok {
		caps[capability.GraphAPI] = true
	}
	if _, ok := e.(engine.HyperAPI); ok {
		caps[capability.HyperAPI] = true
	}
	if _, ok := e.(engine.Querier); ok {
		caps[capability.Querier] = true
	}
	if _, ok := e.(engine.SchemaHolder); ok {
		caps[capability.SchemaHolder] = true
	}
	if _, ok := e.(engine.Reasoner); ok {
		caps[capability.Reasoner] = true
	}
	if _, ok := e.(engine.Transactional); ok {
		caps[capability.Transactional] = true
	}
	if _, ok := e.(engine.Persistent); ok {
		caps[capability.Persistent] = true
	}
	if _, ok := e.(engine.Concurrent); ok {
		caps[capability.Concurrent] = true
	}
	return caps
}

func openEngine(t *testing.T, name string) engine.Engine {
	t.Helper()
	e, err := engine.Open(name, engine.Options{Dir: t.TempDir()})
	if err != nil {
		// Main-memory-only archetypes reject a data directory.
		e, err = engine.Open(name, engine.Options{})
	}
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	return e
}

// TestRegistryCoversEveryEngine pins the registry and the engine registry
// to each other: every registered engine has a profile and every
// non-library profile corresponds to a registered engine.
func TestRegistryCoversEveryEngine(t *testing.T) {
	byName := map[string]string{} // engine name -> package path
	for _, p := range capability.Rows() {
		byName[path.Base(p)] = p
	}
	names := engine.Names()
	if len(names) != len(byName) {
		t.Errorf("registry has %d engine profiles, engine registry has %d engines", len(byName), len(names))
	}
	for _, n := range names {
		if _, ok := byName[n]; !ok {
			t.Errorf("engine %s registered but missing from capability.Profiles", n)
		}
	}
}

// TestImplementedWithinAllowed opens every engine and checks that the
// capability interfaces it actually satisfies stay inside its allowance,
// and that the harness-required Loader surface is present.
func TestImplementedWithinAllowed(t *testing.T) {
	for _, pkg := range capability.Rows() {
		name := path.Base(pkg)
		prof := capability.Profiles[pkg]
		e := openEngine(t, name)
		caps := implementedBy(e)
		if !caps[capability.Loader] {
			t.Errorf("%s: every engine must implement engine.Loader (harness ingest surface)", name)
		}
		for c := range caps {
			if !prof.Allows(c) {
				t.Errorf("%s: implements engine.%s but the %q profile forbids it", name, c, prof.Row)
			}
		}
		if e.SurveyRow() != prof.Row {
			t.Errorf("%s: SurveyRow() = %q, registry says %q", name, e.SurveyRow(), prof.Row)
		}
		if err := e.Close(); err != nil {
			t.Errorf("%s: close: %v", name, err)
		}
	}
}

// TestDirRequirementsMatchProfiles pins the DiskOnly flag to observable
// construction behavior, so harnesses can trust capability.NeedsDir instead
// of hard-coding engine names: disk-only archetypes must refuse to open
// without a data directory, everything else must open without one, and
// profiles that forbid Persistent must reject a directory.
func TestDirRequirementsMatchProfiles(t *testing.T) {
	for _, pkg := range capability.Rows() {
		name := path.Base(pkg)
		prof := capability.Profiles[pkg]
		if prof.DiskOnly && !prof.Allows(capability.Persistent) {
			t.Errorf("%s: DiskOnly profile must allow Persistent", name)
		}
		if p, ok := capability.ForEngine(name); !ok || p.Row != prof.Row {
			t.Errorf("%s: ForEngine lookup failed or disagrees with Profiles", name)
		}
		if capability.NeedsDir(name) != prof.DiskOnly {
			t.Errorf("%s: NeedsDir = %v, profile DiskOnly = %v", name, capability.NeedsDir(name), prof.DiskOnly)
		}
		if capability.AllowsDir(name) != prof.Allows(capability.Persistent) {
			t.Errorf("%s: AllowsDir disagrees with the Persistent allowance", name)
		}
		e, err := engine.Open(name, engine.Options{})
		if prof.DiskOnly {
			if err == nil {
				e.Close()
				t.Errorf("%s: DiskOnly but opens without a data directory", name)
			}
		} else {
			if err != nil {
				t.Errorf("%s: not DiskOnly but fails to open without a directory: %v", name, err)
			} else {
				e.Close()
			}
		}
		e, err = engine.Open(name, engine.Options{Dir: t.TempDir()})
		if prof.Allows(capability.Persistent) {
			if err != nil {
				t.Errorf("%s: profile allows Persistent but a data directory is rejected: %v", name, err)
			} else {
				e.Close()
			}
		} else if err == nil {
			e.Close()
			t.Errorf("%s: profile forbids Persistent but a data directory is accepted", name)
		}
	}
}

// TestConcurrentSnapshotContract exercises the read-concurrency surface of
// every engine whose profile allows Concurrent: AcquireSnapshot must return
// a usable view and an idempotent release.
func TestConcurrentSnapshotContract(t *testing.T) {
	for _, pkg := range capability.Rows() {
		name := path.Base(pkg)
		prof := capability.Profiles[pkg]
		if !prof.Allows(capability.Concurrent) {
			continue
		}
		e := openEngine(t, name)
		c, ok := e.(engine.Concurrent)
		if !ok {
			t.Errorf("%s: profile allows Concurrent but engine.Concurrent is not implemented", name)
			e.Close()
			continue
		}
		if l, ok := e.(engine.Loader); ok {
			if _, err := l.LoadNode("thing", nil); err != nil {
				t.Fatalf("%s: seed: %v", name, err)
			}
		}
		g, release, err := c.AcquireSnapshot()
		if err != nil {
			t.Errorf("%s: AcquireSnapshot: %v", name, err)
			e.Close()
			continue
		}
		if g.Order() < 1 {
			t.Errorf("%s: snapshot misses the seeded node", name)
		}
		release()
		release() // must be a no-op the second time
		if err := e.Close(); err != nil {
			t.Errorf("%s: close: %v", name, err)
		}
	}
}

// TestAllowanceMatchesFeatures cross-checks the hand-written allowance
// against the engine's declared Features wherever the survey's tables give
// a machine-checkable predicate, so neither side can drift alone.
func TestAllowanceMatchesFeatures(t *testing.T) {
	for _, pkg := range capability.Rows() {
		name := path.Base(pkg)
		prof := capability.Profiles[pkg]
		e := openEngine(t, name)
		f := e.Features()
		no := engine.No

		type rule struct {
			cap  capability.Capability
			want bool
			why  string
		}
		rules := []rule{
			{capability.Querier, f.QueryLanguageShipped != no || f.QueryLanguage != no,
				"Tables II/V query language columns"},
			{capability.Reasoner, f.Reasoning != no, "Table V reasoning column"},
			{capability.Persistent, f.ExternalMemory != no || f.BackendStorage != no,
				"Table I external memory / backend storage"},
			{capability.HyperAPI, f.Hypergraphs != no, "Table III hypergraphs"},
			{capability.SchemaHolder,
				f.DDL != no || f.SchemaNodeTypes != no || f.SchemaPropertyTypes != no ||
					f.SchemaRelationTypes != no || f.TypesChecking != no,
				"Table II DDL / Table IV schema rows / Table VI types checking"},
		}
		for _, r := range rules {
			if got := prof.Allows(r.cap); got != r.want {
				t.Errorf("%s: profile allows %s=%v but features say %v (%s)", name, r.cap, got, r.want, r.why)
			}
		}
		if prof.Allows(capability.GraphAPI) && f.API == no {
			t.Errorf("%s: GraphAPI allowed but Table II marks no API", name)
		}
		if err := e.Close(); err != nil {
			t.Errorf("%s: close: %v", name, err)
		}
	}
}
