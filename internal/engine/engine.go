// Package engine defines the common surface of the nine archetype engines
// and the capability vocabulary the table-regeneration harness probes. Each
// engine reproduces, at the logical level, the feature profile the survey
// attributes to one of the nine systems it compares.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"gdbm/internal/algo"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query/plan"
	"gdbm/internal/storage/vfs"
)

// Support is a table cell: the survey's blank, ◦ and •.
type Support uint8

const (
	No Support = iota
	Partial
	Yes
)

// Mark renders the cell the way the paper prints it.
func (s Support) Mark() string {
	switch s {
	case Yes:
		return "•"
	case Partial:
		return "◦"
	default:
		return ""
	}
}

// Features enumerates every column of Tables I–VII. Engines declare their
// profile; the probe framework verifies each claim by exercising the engine
// and reports attested values.
type Features struct {
	// Table I — data storing.
	MainMemory, ExternalMemory, BackendStorage, Indexes Support
	// Table II — operation and manipulation. QueryLanguageShipped is the
	// Table II presence column (does the system ship a query language);
	// QueryLanguage is the Table V quality column, where a shipped but
	// structure-blind language (SPARQL over RDF) or an in-development one
	// (Cypher) is Partial.
	DDL, DML, QueryLanguageShipped, QueryLanguage, API, GUI Support
	// Table III — graph data structures.
	SimpleGraphs, Hypergraphs, NestedGraphs, AttributedGraphs Support
	NodeLabeled, NodeAttributed                               Support
	Directed, EdgeLabeled, EdgeAttributed                     Support
	// Table IV — entities and relations.
	SchemaNodeTypes, SchemaPropertyTypes, SchemaRelationTypes Support
	ObjectNodes, ValueNodes, ComplexNodes                     Support
	ObjectRelations, SimpleRelations, ComplexRelations        Support
	// Table V — query facilities. APIQueryFacility is Table V's API
	// column: whether the API is the system's query facility (G-Store and
	// Sones query through their language instead, so the paper leaves
	// their cells blank despite Table II's API mark).
	APIQueryFacility, GraphicalQL, Retrieval, Reasoning, Analysis Support
	// Table VI — integrity constraints.
	TypesChecking, NodeEdgeIdentity, ReferentialIntegrity           Support
	CardinalityChecking, FunctionalDependencies, PatternConstraints Support
}

// Essentials holds the engine's public, composable answers to the essential
// graph queries of Table VII. A nil field means the archetype's surface
// cannot answer that query class; the probe executes every non-nil field
// and only then marks support.
type Essentials struct {
	NodeAdjacency      func(a, b model.NodeID) (bool, error)
	EdgeAdjacency      func(e1, e2 model.EdgeID) (bool, error)
	KNeighborhood      func(n model.NodeID, k int) ([]model.NodeID, error)
	FixedLengthPaths   func(from, to model.NodeID, length int) ([]algo.Path, error)
	RegularSimplePaths func(from model.NodeID, expr string) ([]model.NodeID, error)
	ShortestPath       func(from, to model.NodeID) (algo.Path, error)
	PatternMatching    func(p *algo.Pattern) ([]algo.Match, error)
	Summarization      func(kind algo.AggKind, label, prop string) (model.Value, error)
}

// Engine is a database instance under one archetype.
type Engine interface {
	// Name is the engine's own name (e.g. "neograph").
	Name() string
	// SurveyRow is the row of the paper's tables this engine reproduces
	// (e.g. "Neo4j").
	SurveyRow() string
	// Features declares the archetype profile.
	Features() Features
	// Essentials exposes the essential-query surface.
	Essentials() Essentials
	// Close releases resources.
	Close() error
}

// Loader is the common ingest surface the harness uses to seed every engine
// with the same property-graph dataset, whatever the engine's native model.
type Loader interface {
	LoadNode(label string, props model.Properties) (model.NodeID, error)
	LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error)
}

// GraphAPI is implemented by engines whose public API exposes a binary
// property graph (queried by the planner and the shell).
type GraphAPI interface {
	model.MutableGraph
	plan.Source
}

// HyperAPI is implemented by hypergraph engines.
type HyperAPI interface {
	model.MutableHypergraph
}

// Querier is implemented by engines with a database query language.
type Querier interface {
	// LanguageName names the language ("gql", "sparqlish", "gsql").
	LanguageName() string
	// Query parses and runs one statement.
	Query(stmt string) (*plan.Result, error)
}

// SchemaHolder is implemented by engines with a data definition surface.
type SchemaHolder interface {
	Schema() *model.Schema
}

// Reasoner is implemented by engines with rule inference (Table V).
type Reasoner interface {
	// Materialize runs the engine's rule set to fixpoint and returns the
	// number of newly derived facts.
	Materialize() (int, error)
}

// Transactional is implemented by engines with transaction support.
type Transactional interface {
	// Update runs fn atomically: all mutations apply or none do.
	Update(fn func() error) error
}

// Persistent is implemented by engines whose data survives reopening.
type Persistent interface {
	// Flush forces buffered state to stable storage.
	Flush() error
}

// Concurrent is implemented by engines the survey profiles as concurrent-
// capable servers (systems shipped with a transaction/concurrency story,
// Section II): their read path may be shared by many goroutines at once,
// and the parallel query kernels of internal/algo/par fan traversals out
// across it. AcquireSnapshot follows the model.Snapshotter contract at
// frozen isolation: an immutable, epoch-pinned copy-on-write view that is
// O(1) to acquire on a quiescent store and safe for unsynchronized
// concurrent readers; writers never block pinned readers. Engines
// delegate to their store's model.Pinner (AcquireView) — deliberately a
// different method name, so embedding a pinning store does not leak this
// capability onto archetypes whose profile forbids it.
type Concurrent interface {
	AcquireSnapshot() (model.Graph, model.ReleaseFunc, error)
}

// ContextEssentials is implemented by engines whose Essentials closures
// can run under a caller-supplied context. The parallel kernels behind
// KNeighborhood and Summarization honour cancellation; Essentials()
// (context-free) is equivalent to EssentialsCtx(context.Background()).
// Callers holding a request context — the query service, harnesses with
// deadlines — must use EssentialsCtx so cancellation reaches the kernels
// instead of being severed at the dispatch site (the shape the ctxflow
// analyzer convicts inside engine packages).
type ContextEssentials interface {
	EssentialsCtx(ctx context.Context) Essentials
}

// Options configures engine construction.
type Options struct {
	// Dir is the data directory for disk-backed engines; empty selects a
	// pure in-memory configuration where the archetype allows it.
	Dir string
	// PoolPages bounds the buffer pool of page-file backed engines.
	PoolPages int
	// Partitions sets the shard count of the distributed archetype.
	Partitions int
	// FS is the filesystem disk-backed engines open their files on. Nil
	// means the real filesystem; the crash-recovery harness passes a
	// vfs.FaultFS to test durability under injected failures.
	FS vfs.FS
	// CacheBytes is the engine's total cache budget in bytes. Zero disables
	// caching entirely (beyond the pager's fixed PoolPages buffer pool);
	// when positive, disk-backed engines split it across the page cache,
	// the adjacency cache and the query-result cache. Cached and uncached
	// configurations must be observationally identical — the differential
	// harness in internal/enginetest/diff enforces this.
	CacheBytes int64
	// Metrics, when non-nil, receives the engine's storage counters
	// (pager.*, kvgraph.*; see internal/obs). Observed and unobserved
	// configurations must be observationally identical.
	Metrics *obs.Registry
}

// SplitCacheBudget divides an engine's CacheBytes across the three cache
// tiers: half to the page cache, a quarter each to the adjacency and
// query-result caches. Engines without one of the tiers fold its share into
// the page cache.
func SplitCacheBudget(total int64) (page, adj, results int64) {
	if total <= 0 {
		return 0, 0, 0
	}
	page = total / 2
	adj = total / 4
	results = total - page - adj
	return page, adj, results
}

// Factory constructs an engine.
type Factory func(opts Options) (Engine, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
	rows     = map[string]string{} // engine name -> survey row
)

// Register adds an engine constructor under its name. It panics on
// duplicates, which indicates a programming error at init time.
func Register(name, surveyRow string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; ok {
		panic(fmt.Sprintf("engine: duplicate registration %q", name))
	}
	registry[name] = f
	rows[name] = surveyRow
}

// Open constructs the named engine.
func Open(name string, opts Options) (Engine, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine %q: %w", name, model.ErrNotFound)
	}
	return f(opts)
}

// Names lists registered engines sorted by the survey row they reproduce,
// matching the row order of the paper's tables.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return rows[out[i]] < rows[out[j]] })
	return out
}
