package engine

import (
	"context"

	"gdbm/internal/obs"
	"gdbm/internal/query/plan"
)

// ContextQuerier is implemented by Querier engines whose query path is
// context-aware: QueryContext threads ctx (and any obs.Trace it carries)
// through parse, planning and execution, so per-query spans cover the whole
// pipeline. Query(stmt) must remain equivalent to
// QueryContext(context.Background(), stmt).
type ContextQuerier interface {
	Querier
	QueryContext(ctx context.Context, stmt string) (*plan.Result, error)
}

// QueryContext dispatches stmt on q, preferring the context-aware path when
// the engine offers one. For plain Queriers the whole call is recorded as a
// single "query" span on the trace in ctx (no-op when untraced), so traced
// runs see per-query timing for every engine, even ones without granular
// spans.
func QueryContext(ctx context.Context, q Querier, stmt string) (*plan.Result, error) {
	if cq, ok := q.(ContextQuerier); ok {
		return cq.QueryContext(ctx, stmt)
	}
	end := obs.FromContext(ctx).StartSpan("query")
	defer end()
	return q.Query(stmt)
}
