package engine

import (
	"context"

	"gdbm/internal/obs"
	"gdbm/internal/query/plan"
)

// StreamQuerier is implemented by Querier engines whose query path can emit
// result rows incrementally: QueryStream delivers columns and then each row
// into sink as execution produces them, so a serving layer can flush chunks
// before the result is whole. The stream must render exactly the rows, in
// exactly the order, that QueryContext would return for the same statement —
// streaming is a delivery mode, never a different answer. A sink error stops
// execution and is returned unchanged (wrapped sentinel comparisons with
// errors.Is still work), so cancelling the consumer cancels the query.
type StreamQuerier interface {
	Querier
	QueryStream(ctx context.Context, stmt string, sink plan.Sink) error
}

// QueryStream dispatches stmt on q delivering the result into sink,
// preferring the engine's native incremental path. Engines without one run
// the buffered QueryContext path and replay the materialized result into
// the sink — the consumer sees the same stream contract either way, just
// with first-row latency equal to full execution.
func QueryStream(ctx context.Context, q Querier, stmt string, sink plan.Sink) error {
	if sq, ok := q.(StreamQuerier); ok {
		return sq.QueryStream(ctx, stmt, sink)
	}
	res, err := QueryContext(ctx, q, stmt)
	if err != nil {
		return err
	}
	end := obs.FromContext(ctx).StartSpan("emit")
	defer end()
	return plan.Replay(res, sink)
}
