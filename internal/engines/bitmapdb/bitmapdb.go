// Package bitmapdb implements the DEX-archetype engine: a library for
// persistent and temporary graph management whose implementation is based
// on bitmaps and secondary structures (survey Section II). Its survey
// profile: main + external memory, indexes, API only (no query language),
// attributed directed graphs with a typed schema, and types/identity/
// referential integrity constraints (Table VI).
package bitmapdb

import (
	"context"
	"path/filepath"

	"gdbm/internal/adj"
	"gdbm/internal/algo"
	"gdbm/internal/algo/par"
	"gdbm/internal/cache"
	"gdbm/internal/constraint"
	"gdbm/internal/engine"
	"gdbm/internal/engines/propcore"
	"gdbm/internal/index"
	"gdbm/internal/kvgraph"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/storage/kv"
)

func init() {
	engine.Register("bitmapdb", "DEX", func(opts engine.Options) (engine.Engine, error) {
		return New(opts)
	})
}

// DB is the engine instance.
type DB struct {
	*propcore.Core
	labels  *index.Bitmap
	disk    *kv.Disk
	kg      *kvgraph.Graph // non-nil in the disk-backed configuration
	results *cache.Results // nil when CacheBytes is zero or main-memory
}

// New opens a bitmapdb instance. Label and property lookups run through
// bitmap indexes — the structure DEX is named for here. A positive
// Options.CacheBytes splits the budget across the page, adjacency and
// query-result caches (disk-backed configuration only).
func New(opts engine.Options) (*DB, error) {
	db := &DB{}
	if opts.Dir != "" {
		pageB, adjB, resB := engine.SplitCacheBudget(opts.CacheBytes)
		d, err := kv.OpenDiskWith(filepath.Join(opts.Dir, "bitmapdb.pg"), kv.DiskOptions{
			PoolPages: opts.PoolPages, CacheBytes: pageB, FS: opts.FS, Metrics: opts.Metrics,
		})
		if err != nil {
			return nil, err
		}
		db.disk = d
		db.kg = kvgraph.New(d)
		db.kg.SetMetrics(opts.Metrics)
		if adjB > 0 {
			db.kg.EnableAdjacencyCache(adjB)
		}
		if resB > 0 {
			db.results = cache.NewResults(resB)
		}
		// DEX's snapshots use the bitmap directory variant — the
		// compressed-bitmap organization the archetype is named for.
		db.kg.SetViewLayout(adj.LayoutBitmap)
		db.Core = propcore.New(db.kg)
	} else {
		mg := memgraph.New()
		mg.SetViewLayout(adj.LayoutBitmap)
		db.Core = propcore.New(mg)
	}
	lbl := index.NewBitmap()
	db.labels = lbl
	if err := db.Core.Idx.Register(index.Nodes, "", lbl); err != nil {
		return nil, err
	}
	// DEX-profile constraints: types checking + identity (per-type "name")
	// + referential integrity.
	db.Core.Cons.Add(constraint.Types{Schema: db.Core.Sch})
	db.Core.Cons.Add(constraint.Referential{})
	return db, nil
}

// AddIdentity installs a node/edge identity constraint: prop uniquely
// identifies nodes of the given label.
func (db *DB) AddIdentity(label, prop string) {
	db.Core.Cons.Add(constraint.Identity{Label: label, Prop: prop})
}

// CreateIndex adds a bitmap index on a node property.
func (db *DB) CreateIndex(prop string) error {
	idx, err := db.Core.Idx.Create(index.Nodes, prop, index.KindBitmap)
	if err != nil {
		return err
	}
	return db.Nodes(func(n model.Node) bool {
		if v, ok := n.Props[prop]; ok {
			idx.Add(v, uint64(n.ID))
		}
		return true
	})
}

// LabelSet exposes the bitmap algebra over node labels — the capability
// DEX's bitmap design exists for (used by the ablation benches).
func (db *DB) LabelSet(label string) *index.Bitset {
	return db.labels.Set(model.Str(label))
}

// LoadNode implements engine.Loader. The DEX archetype is typed, so the
// loader declares unseen labels as open node types before inserting —
// mirroring DEX's explicit type creation step.
func (db *DB) LoadNode(label string, props model.Properties) (model.NodeID, error) {
	db.Core.Sch.EnsureNodeType(label, props)
	return db.Core.AddNode(label, props)
}

// LoadEdge implements engine.Loader, declaring unseen relation types.
func (db *DB) LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	db.Core.Sch.EnsureRelationType(label, props)
	return db.Core.AddEdge(label, from, to, props)
}

// Name implements engine.Engine.
func (db *DB) Name() string { return "bitmapdb" }

// SurveyRow implements engine.Engine.
func (db *DB) SurveyRow() string { return "DEX" }

// Features implements engine.Engine.
func (db *DB) Features() engine.Features {
	return engine.Features{
		MainMemory: engine.Yes, ExternalMemory: engine.Yes, Indexes: engine.Yes,
		API:              engine.Yes,
		AttributedGraphs: engine.Yes,
		NodeLabeled:      engine.Yes, NodeAttributed: engine.Yes,
		Directed: engine.Yes, EdgeLabeled: engine.Yes, EdgeAttributed: engine.Yes,
		SchemaNodeTypes: engine.Yes, SchemaRelationTypes: engine.Yes,
		ObjectNodes: engine.Yes, ValueNodes: engine.Yes,
		ObjectRelations: engine.Yes, SimpleRelations: engine.Yes,
		APIQueryFacility: engine.Yes, Retrieval: engine.Yes, Analysis: engine.Yes,
		TypesChecking: engine.Yes, NodeEdgeIdentity: engine.Yes, ReferentialIntegrity: engine.Yes,
	}
}

// Essentials implements engine.Engine: DEX's API composes every essential
// query class except regular simple paths and pattern matching.
func (db *DB) Essentials() engine.Essentials {
	return db.EssentialsCtx(context.Background())
}

// EssentialsCtx implements engine.ContextEssentials: the parallel kernels
// run under the caller's context, so deadlines and cancellation reach
// them instead of being severed by a fresh background root.
func (db *DB) EssentialsCtx(ctx context.Context) engine.Essentials {
	es := db.essentialsCtx(ctx)
	if db.results == nil {
		return es
	}
	return engine.CachedEssentials(db.Name(), es, db.results, db.kg.Epoch)
}

// CacheStats implements engine.CacheStatser; main-memory instances report
// no tiers.
func (db *DB) CacheStats() map[string]cache.Stats {
	out := map[string]cache.Stats{}
	if db.disk != nil {
		out["page"] = db.disk.CacheStats()
	}
	if db.kg != nil {
		if s, ok := db.kg.AdjacencyStats(); ok {
			out["adjacency"] = s
		}
	}
	if db.results != nil {
		out["results"] = db.results.Stats()
	}
	return out
}

func (db *DB) essentialsCtx(ctx context.Context) engine.Essentials {
	return engine.Essentials{
		NodeAdjacency: func(a, b model.NodeID) (bool, error) {
			return algo.Adjacent(db.Core, a, b, model.Both)
		},
		EdgeAdjacency: func(e1, e2 model.EdgeID) (bool, error) {
			return algo.EdgesAdjacent(db.Core, e1, e2)
		},
		KNeighborhood: func(n model.NodeID, k int) ([]model.NodeID, error) {
			g, release, err := db.AcquireSnapshot()
			if err != nil {
				return nil, err
			}
			defer release()
			return par.Neighborhood(ctx, g, n, k, model.Both, par.Options{})
		},
		FixedLengthPaths: func(from, to model.NodeID, length int) ([]algo.Path, error) {
			return algo.FixedLengthPaths(db.Core, from, to, length, model.Out, 0)
		},
		ShortestPath: func(from, to model.NodeID) (algo.Path, error) {
			return algo.ShortestPath(db.Core, from, to, model.Out)
		},
		Summarization: func(kind algo.AggKind, label, prop string) (model.Value, error) {
			g, release, err := db.AcquireSnapshot()
			if err != nil {
				return model.Null(), err
			}
			defer release()
			return par.AggregateNodeProp(ctx, g, label, prop, kind, par.Options{})
		},
	}
}

// AcquireSnapshot implements engine.Concurrent (the model.Snapshotter
// contract) at frozen isolation, delegating to the store's copy-on-write
// views (bitmap directory layout): O(1) on a quiescent store, immutable
// under concurrent writers, in both configurations.
func (db *DB) AcquireSnapshot() (model.Graph, model.ReleaseFunc, error) {
	if p, ok := db.Core.Graph().(model.Pinner); ok {
		return p.AcquireView()
	}
	// Unreachable with the stores in this repository (both implement
	// model.Pinner); the live graph remains as a defensive fallback.
	return db.Core.Graph(), func() {}, nil
}

// Flush implements engine.Persistent for disk-backed instances.
func (db *DB) Flush() error {
	if db.disk != nil {
		return db.disk.Flush()
	}
	return nil
}

// Close implements engine.Engine.
func (db *DB) Close() error {
	if db.disk != nil {
		return db.disk.Close()
	}
	return nil
}

var (
	_ engine.Engine            = (*DB)(nil)
	_ engine.GraphAPI          = (*DB)(nil)
	_ engine.SchemaHolder      = (*DB)(nil)
	_ engine.Loader            = (*DB)(nil)
	_ engine.CacheStatser      = (*DB)(nil)
	_ engine.Concurrent        = (*DB)(nil)
	_ engine.ContextEssentials = (*DB)(nil)
)
