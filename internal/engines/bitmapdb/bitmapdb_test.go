package bitmapdb

import (
	"errors"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/model"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestLoaderAutoDeclaresTypes(t *testing.T) {
	db := openDB(t)
	a, err := db.LoadNode("Person", model.Props("name", "ada"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := db.LoadNode("Person", model.Props("name", "bob"))
	if _, err := db.LoadEdge("knows", a, b, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Schema().NodeType("Person"); !ok {
		t.Error("node type not auto-declared")
	}
	if _, ok := db.Schema().RelationType("knows"); !ok {
		t.Error("relation type not auto-declared")
	}
	// Direct API inserts are type-checked (DEX profile).
	if _, err := db.AddNode("Ghost", nil); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("undeclared type through API: %v", err)
	}
}

func TestReferentialIntegrity(t *testing.T) {
	db := openDB(t)
	a, _ := db.LoadNode("N", nil)
	b, _ := db.LoadNode("N", nil)
	db.LoadEdge("e", a, b, nil)
	if err := db.RemoveNode(a); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("removing connected node: %v", err)
	}
	// Remove the edge first, then the node.
	var eid model.EdgeID
	db.Edges(func(e model.Edge) bool { eid = e.ID; return false })
	if err := db.RemoveEdge(eid); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveNode(a); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityConstraint(t *testing.T) {
	db := openDB(t)
	db.AddIdentity("Person", "name")
	if _, err := db.LoadNode("Person", model.Props("name", "ada")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadNode("Person", model.Props("name", "ada")); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("duplicate identity: %v", err)
	}
}

func TestBitmapLabelAlgebra(t *testing.T) {
	db := openDB(t)
	for i := 0; i < 5; i++ {
		db.LoadNode("A", nil)
	}
	for i := 0; i < 3; i++ {
		db.LoadNode("B", nil)
	}
	a := db.LabelSet("A")
	bset := db.LabelSet("B")
	if a.Count() != 5 || bset.Count() != 3 {
		t.Errorf("label sets: A=%d B=%d", a.Count(), bset.Count())
	}
	union := a.Clone()
	union.Or(bset)
	if union.Count() != 8 {
		t.Errorf("union = %d", union.Count())
	}
	if db.LabelSet("Ghost").Count() != 0 {
		t.Errorf("missing label set should be empty")
	}
}

func TestPropertyBitmapIndex(t *testing.T) {
	db := openDB(t)
	for i := 0; i < 10; i++ {
		db.LoadNode("N", model.Props("color", []string{"red", "blue"}[i%2]))
	}
	if err := db.CreateIndex("color"); err != nil {
		t.Fatal(err)
	}
	n := 0
	handled, err := db.IndexedNodes("N", "color", model.Str("red"), func(model.Node) bool { n++; return true })
	if err != nil || !handled || n != 5 {
		t.Errorf("indexed lookup: handled=%v n=%d err=%v", handled, n, err)
	}
}

func TestDiskMode(t *testing.T) {
	dir := t.TempDir()
	db, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.LoadNode("N", model.Props("k", 1))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Order() != 1 {
		t.Errorf("order after reopen = %d", db2.Order())
	}
}
