package filamentdb

import (
	"testing"

	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/model"
)

func TestAPIOnlyProfile(t *testing.T) {
	db, err := New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	a, _ := db.LoadNode("N", nil)
	b, _ := db.LoadNode("N", nil)
	c, _ := db.LoadNode("N", nil)
	db.LoadEdge("e", a, b, nil)
	db.LoadEdge("e", b, c, nil)

	es := db.Essentials()
	if es.FixedLengthPaths != nil || es.ShortestPath != nil {
		t.Error("Filament's Table VII row exposes no path utilities")
	}
	nb, err := es.KNeighborhood(a, 2)
	if err != nil || len(nb) != 2 {
		t.Errorf("khood = %v %v", nb, err)
	}
	n, _ := es.Summarization(algo.AggCount, "N", "")
	if v, _ := n.AsInt(); v != 3 {
		t.Errorf("count = %v", n)
	}
	f := db.Features()
	if f.Indexes != engine.No {
		t.Error("Filament's Table I row has no index mark")
	}
	if f.BackendStorage != engine.Yes {
		t.Error("Filament keeps a backend store")
	}
}

func TestBackendPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.LoadNode("N", model.Props("k", 1))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Order() != 1 {
		t.Errorf("order after reopen = %d", db2.Order())
	}
}
