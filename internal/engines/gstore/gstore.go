// Package gstore implements the G-Store-archetype engine: a basic storage
// manager for large vertex-labeled graphs that lives *only* in external
// memory (its Table I row marks external memory alone) and offers an
// SQL-based query language with special graph instructions. Every
// operation reads through the page-backed store; there is no resident
// in-memory copy of the graph.
package gstore

import (
	"context"
	"fmt"
	"path/filepath"

	"gdbm/internal/algo"
	"gdbm/internal/cache"
	"gdbm/internal/engine"
	"gdbm/internal/kvgraph"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query/gsql"
	"gdbm/internal/query/plan"
	"gdbm/internal/storage/kv"
)

func init() {
	engine.Register("gstore", "G-Store", func(opts engine.Options) (engine.Engine, error) {
		return New(opts)
	})
}

// DB is the engine instance.
type DB struct {
	g       *kvgraph.Graph
	disk    *kv.Disk
	schema  *model.Schema
	results *cache.Results // nil when CacheBytes is zero
}

// New opens a gstore. Options.Dir is required: the archetype is external-
// memory only. A positive Options.CacheBytes splits the budget across the
// page, adjacency and query-result caches.
func New(opts engine.Options) (*DB, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("gstore: the G-Store archetype requires a data directory (external memory only, Table I)")
	}
	pageB, adjB, resB := engine.SplitCacheBudget(opts.CacheBytes)
	d, err := kv.OpenDiskWith(filepath.Join(opts.Dir, "gstore.pg"), kv.DiskOptions{
		PoolPages: opts.PoolPages, CacheBytes: pageB, FS: opts.FS, Metrics: opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{g: kvgraph.New(d), disk: d, schema: model.NewSchema()}
	db.g.SetMetrics(opts.Metrics)
	if adjB > 0 {
		db.g.EnableAdjacencyCache(adjB)
	}
	if resB > 0 {
		db.results = cache.NewResults(resB)
	}
	return db, nil
}

// CacheStats implements engine.CacheStatser.
func (db *DB) CacheStats() map[string]cache.Stats {
	out := map[string]cache.Stats{"page": db.disk.CacheStats()}
	if s, ok := db.g.AdjacencyStats(); ok {
		out["adjacency"] = s
	}
	if db.results != nil {
		out["results"] = db.results.Stats()
	}
	return out
}

// Schema implements engine.SchemaHolder (the DDL surface of its language).
func (db *DB) Schema() *model.Schema { return db.schema }

// Graph returns the disk-backed graph (the API surface).
func (db *DB) Graph() model.MutableGraph { return db.g }

// LanguageName implements engine.Querier.
func (db *DB) LanguageName() string { return "gsql" }

// Query implements engine.Querier. Read statements (SELECT) are memoized
// in the query-result cache at the current graph epoch.
func (db *DB) Query(stmt string) (*plan.Result, error) {
	return db.QueryContext(context.Background(), stmt)
}

// QueryContext implements engine.ContextQuerier: the whole dispatch is a
// "query" span on the trace in ctx, with gsql's "exec" span nested inside
// on cache misses. Tracing never changes the answer.
func (db *DB) QueryContext(ctx context.Context, stmt string) (*plan.Result, error) {
	defer obs.FromContext(ctx).StartSpan("query")()
	exec := func() (*plan.Result, error) { return gsql.ExecCtx(ctx, stmt, gsqlSurface{db}) }
	if !engine.ReadOnlyStmt(stmt, "SELECT") {
		return exec()
	}
	return engine.CachedQuery(db.results, db.g.Epoch, db.Name(), "gsql", stmt, exec)
}

// QueryStream implements engine.StreamQuerier: SELECTs emit rows into sink
// as the plan produces them. Instances with a result cache keep the cached
// path (materialize or hit, then replay) so streaming never bypasses cache
// coherence; the rows are identical either way.
func (db *DB) QueryStream(ctx context.Context, stmt string, sink plan.Sink) error {
	defer obs.FromContext(ctx).StartSpan("query")()
	if db.results == nil || !engine.ReadOnlyStmt(stmt, "SELECT") {
		return gsql.ExecStreamCtx(ctx, stmt, gsqlSurface{db}, sink)
	}
	res, err := engine.CachedQuery(db.results, db.g.Epoch, db.Name(), "gsql", stmt,
		func() (*plan.Result, error) { return gsql.ExecCtx(ctx, stmt, gsqlSurface{db}) })
	if err != nil {
		return err
	}
	return plan.Replay(res, sink)
}

type gsqlSurface struct{ db *DB }

func (s gsqlSurface) Schema() *model.Schema                    { return s.db.schema }
func (s gsqlSurface) Order() int                               { return s.db.g.Order() }
func (s gsqlSurface) Size() int                                { return s.db.g.Size() }
func (s gsqlSurface) Node(id model.NodeID) (model.Node, error) { return s.db.g.Node(id) }
func (s gsqlSurface) Edge(id model.EdgeID) (model.Edge, error) { return s.db.g.Edge(id) }
func (s gsqlSurface) Nodes(fn func(model.Node) bool) error     { return s.db.g.Nodes(fn) }
func (s gsqlSurface) Edges(fn func(model.Edge) bool) error     { return s.db.g.Edges(fn) }
func (s gsqlSurface) Neighbors(id model.NodeID, d model.Direction, fn func(model.Edge, model.Node) bool) error {
	return s.db.g.Neighbors(id, d, fn)
}
func (s gsqlSurface) Degree(id model.NodeID, d model.Direction) (int, error) {
	return s.db.g.Degree(id, d)
}
func (s gsqlSurface) IndexedNodes(string, string, model.Value, func(model.Node) bool) (bool, error) {
	return false, nil // G-Store's Table I row has no index column mark
}
func (s gsqlSurface) AddNode(label string, props model.Properties) (model.NodeID, error) {
	return s.db.g.AddNode(label, props)
}
func (s gsqlSurface) AddEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	return s.db.g.AddEdge(label, from, to, props)
}
func (s gsqlSurface) RemoveNode(id model.NodeID) error { return s.db.g.RemoveNode(id) }
func (s gsqlSurface) RemoveEdge(id model.EdgeID) error { return s.db.g.RemoveEdge(id) }
func (s gsqlSurface) SetNodeProp(id model.NodeID, key string, v model.Value) error {
	return s.db.g.SetNodeProp(id, key, v)
}

// Name implements engine.Engine.
func (db *DB) Name() string { return "gstore" }

// SurveyRow implements engine.Engine.
func (db *DB) SurveyRow() string { return "G-Store" }

// Features implements engine.Engine.
func (db *DB) Features() engine.Features {
	return engine.Features{
		ExternalMemory: engine.Yes,
		DDL:            engine.Yes, API: engine.Yes,
		QueryLanguageShipped: engine.Yes, QueryLanguage: engine.Yes,
		SimpleGraphs: engine.Yes,
		NodeLabeled:  engine.Yes,
		Directed:     engine.Yes, EdgeLabeled: engine.Yes,
		ValueNodes: engine.Yes, SimpleRelations: engine.Yes,
		Retrieval: engine.Yes,
	}
}

// Essentials implements engine.Engine: G-Store's language carries the graph
// instructions (PATH, NEIGHBORS, REACH), so all five composable classes of
// its Table VII row route through Query.
func (db *DB) Essentials() engine.Essentials {
	return engine.CachedEssentials(db.Name(), db.essentials(), db.results, db.g.Epoch)
}

func (db *DB) essentials() engine.Essentials {
	return engine.Essentials{
		NodeAdjacency: func(a, b model.NodeID) (bool, error) {
			return algo.Adjacent(db.g, a, b, model.Both)
		},
		EdgeAdjacency: func(e1, e2 model.EdgeID) (bool, error) {
			return algo.EdgesAdjacent(db.g, e1, e2)
		},
		KNeighborhood: func(n model.NodeID, k int) ([]model.NodeID, error) {
			res, err := db.Query(fmt.Sprintf("SELECT NEIGHBORS OF %d DEPTH %d", n, k))
			if err != nil {
				return nil, err
			}
			out := make([]model.NodeID, 0, len(res.Rows))
			for _, r := range res.Rows {
				id, _ := r[0].AsInt()
				out = append(out, model.NodeID(id))
			}
			return out, nil
		},
		FixedLengthPaths: func(from, to model.NodeID, length int) ([]algo.Path, error) {
			return algo.FixedLengthPaths(db.g, from, to, length, model.Out, 0)
		},
		ShortestPath: func(from, to model.NodeID) (algo.Path, error) {
			return algo.ShortestPath(db.g, from, to, model.Out)
		},
		Summarization: func(kind algo.AggKind, label, prop string) (model.Value, error) {
			return algo.AggregateNodeProp(db.g, label, prop, kind)
		},
	}
}

// LoadNode implements engine.Loader.
func (db *DB) LoadNode(label string, props model.Properties) (model.NodeID, error) {
	return db.g.AddNode(label, props)
}

// LoadEdge implements engine.Loader.
func (db *DB) LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	return db.g.AddEdge(label, from, to, props)
}

// Flush implements engine.Persistent.
func (db *DB) Flush() error { return db.disk.Flush() }

// Close implements engine.Engine.
func (db *DB) Close() error { return db.disk.Close() }

var (
	_ engine.Engine         = (*DB)(nil)
	_ engine.Querier        = (*DB)(nil)
	_ engine.ContextQuerier = (*DB)(nil)
	_ engine.Loader         = (*DB)(nil)
	_ engine.CacheStatser   = (*DB)(nil)
)
