package gstore

import (
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/model"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := New(engine.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestRequiresDirectory(t *testing.T) {
	if _, err := New(engine.Options{}); err == nil {
		t.Error("gstore without a directory must fail (external memory only)")
	}
}

func TestLanguageDDLDMLQuery(t *testing.T) {
	db := openDB(t)
	stmts := []string{
		`CREATE VERTEX TYPE City (name STRING, pop INT)`,
		`INSERT VERTEX City (name = 'zurich', pop = 400000)`,
		`INSERT VERTEX City (name = 'basel', pop = 180000)`,
	}
	for _, s := range stmts {
		if _, err := db.Query(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	res, err := db.Query(`SELECT name FROM City WHERE pop > 200000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsString(); n != "zurich" {
		t.Errorf("name = %q", n)
	}
}

func TestGraphInstructions(t *testing.T) {
	db := openDB(t)
	for i := 0; i < 4; i++ {
		if _, err := db.Query(`INSERT VERTEX N`); err != nil {
			t.Fatal(err)
		}
	}
	db.Query(`INSERT EDGE e FROM 1 TO 2`)
	db.Query(`INSERT EDGE e FROM 2 TO 3`)
	db.Query(`INSERT EDGE e FROM 3 TO 4`)
	res, err := db.Query(`SELECT PATH FROM 1 TO 4`)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := res.Rows[0][0].AsString(); p != "1->2->3->4" {
		t.Errorf("path = %q", p)
	}
	res2, _ := db.Query(`SELECT REACH FROM 4 TO 1`)
	if b, _ := res2.Rows[0][0].AsBool(); b {
		t.Error("4 should not reach 1")
	}
	res3, _ := db.Query(`SELECT NEIGHBORS OF 2`)
	if len(res3.Rows) != 2 {
		t.Errorf("neighbors = %v", res3.Rows)
	}
}

func TestEverythingOnDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.Query(`INSERT VERTEX N (k = 7)`)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	n, err := db2.Graph().Node(1)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Props.Get("k").AsInt(); v != 7 {
		t.Errorf("k = %v", n.Props)
	}
}

func TestEssentialsKNeighborhoodRoutesThroughQL(t *testing.T) {
	db := openDB(t)
	for i := 0; i < 3; i++ {
		db.Query(`INSERT VERTEX N`)
	}
	db.Query(`INSERT EDGE e FROM 1 TO 2`)
	db.Query(`INSERT EDGE e FROM 2 TO 3`)
	es := db.Essentials()
	nb, err := es.KNeighborhood(model.NodeID(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 2 {
		t.Errorf("khood = %v", nb)
	}
}
