// Package hyperdb implements the HyperGraphDB-archetype engine: the
// hypergraph data model where an edge (hyperedge) relates an arbitrary set
// of nodes, suited to higher-order relations (survey Section II). Its
// survey profile: main + external memory + backend storage with indexes,
// API only, typed atoms (types checking + identity constraints).
package hyperdb

import (
	"fmt"
	"path/filepath"

	"gdbm/internal/algo"
	"gdbm/internal/cache"
	"gdbm/internal/engine"
	"gdbm/internal/index"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/storage/kv"
)

func init() {
	engine.Register("hyperdb", "HyperGraphDB", func(opts engine.Options) (engine.Engine, error) {
		return New(opts)
	})
}

// DB is the engine instance: a main-memory hypergraph with an optional
// kv-backed statement log providing the backend-storage/persistence role.
type DB struct {
	h      *memgraph.Hypergraph
	idx    *index.Manager
	schema *model.Schema
	// identities: label -> identifying property.
	identities map[string]string
	backend    kv.Store
	disk       *kv.Disk
	seq        uint64
}

// New opens a hyperdb instance.
func New(opts engine.Options) (*DB, error) {
	db := &DB{
		h:          memgraph.NewHypergraph(),
		idx:        index.NewManager(),
		schema:     model.NewSchema(),
		identities: map[string]string{},
	}
	if _, err := db.idx.Create(index.Nodes, "", index.KindHash); err != nil {
		return nil, err
	}
	if opts.Dir != "" {
		// The hypergraph itself is main memory with a persisted atom log;
		// CacheBytes funds the log store's page cache alone.
		d, err := kv.OpenDiskWith(filepath.Join(opts.Dir, "hyperdb.pg"), kv.DiskOptions{
			PoolPages: opts.PoolPages, CacheBytes: opts.CacheBytes, FS: opts.FS, Metrics: opts.Metrics,
		})
		if err != nil {
			return nil, err
		}
		db.disk = d
		db.backend = d
		if err := db.replay(); err != nil {
			d.Close()
			return nil, err
		}
	}
	return db, nil
}

// CacheStats implements engine.CacheStatser; in-memory instances report no
// tiers.
func (db *DB) CacheStats() map[string]cache.Stats {
	out := map[string]cache.Stats{}
	if db.disk != nil {
		out["page"] = db.disk.CacheStats()
	}
	return out
}

// replay loads persisted atoms from the backend log into memory.
func (db *DB) replay() error {
	type pending struct {
		label   string
		members []model.NodeID
		props   model.Properties
	}
	var nodes []pending
	var edges []pending
	err := db.backend.Scan([]byte("a!"), func(k, v []byte) bool {
		db.seq++ // continue the log sequence after the persisted entries
		rec, perr := decodeAtom(v)
		if perr != nil {
			return true
		}
		if len(rec.members) == 0 {
			nodes = append(nodes, rec)
		} else {
			edges = append(edges, rec)
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, n := range nodes {
		id, err := db.h.AddNode(n.label, n.props)
		if err != nil {
			return err
		}
		db.idx.OnNodeWrite(model.Node{ID: id, Label: n.label, Props: n.props}, "", nil)
	}
	for _, e := range edges {
		if _, err := db.h.AddHyperEdge(e.label, e.members, e.props); err != nil {
			return err
		}
	}
	return nil
}

// AddAtom inserts a node atom, enforcing types checking and identity.
func (db *DB) AddAtom(label string, props model.Properties) (model.NodeID, error) {
	n := model.Node{Label: label, Props: props}
	if err := db.schema.CheckNode(n); err != nil {
		return 0, err
	}
	if prop, ok := db.identities[label]; ok {
		v := props.Get(prop)
		if v.IsNull() {
			return 0, fmt.Errorf("hyperdb: %q atoms must set %q: %w", label, prop, model.ErrConstraint)
		}
		// A failed scan must not fall through to AddNode: it could admit a
		// duplicate the identity check would have rejected.
		dup := false
		if err := db.h.Nodes(func(o model.Node) bool {
			if o.Label == label && o.Props.Get(prop).Equal(v) {
				dup = true
				return false
			}
			return true
		}); err != nil {
			return 0, err
		}
		if dup {
			return 0, fmt.Errorf("hyperdb: duplicate identity %s=%v: %w", prop, v, model.ErrConstraint)
		}
	}
	id, err := db.h.AddNode(label, props)
	if err != nil {
		return 0, err
	}
	db.idx.OnNodeWrite(model.Node{ID: id, Label: label, Props: props}, "", nil)
	if db.backend != nil {
		if err := db.persistAtom(label, nil, props); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// AddLink inserts a hyperedge relating the member atoms.
func (db *DB) AddLink(label string, members []model.NodeID, props model.Properties) (model.EdgeID, error) {
	id, err := db.h.AddHyperEdge(label, members, props)
	if err != nil {
		return 0, err
	}
	if db.backend != nil {
		if err := db.persistAtom(label, members, props); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// persistAtom appends one atom record to the backend log. A failed append
// must surface: swallowing it would report the atom as durable when the log
// no longer contains it.
func (db *DB) persistAtom(label string, members []model.NodeID, props model.Properties) error {
	db.seq++
	key := []byte(fmt.Sprintf("a!%016x", db.seq))
	return db.backend.Put(key, encodeAtom(label, members, props))
}

// Hypergraph exposes the structural read surface.
func (db *DB) Hypergraph() model.Hypergraph { return db.h }

// SetIdentity declares prop as the identity of label atoms.
func (db *DB) SetIdentity(label, prop string) { db.identities[label] = prop }

// Schema implements engine.SchemaHolder.
func (db *DB) Schema() *model.Schema { return db.schema }

// Name implements engine.Engine.
func (db *DB) Name() string { return "hyperdb" }

// SurveyRow implements engine.Engine.
func (db *DB) SurveyRow() string { return "HyperGraphDB" }

// Features implements engine.Engine.
func (db *DB) Features() engine.Features {
	return engine.Features{
		MainMemory: engine.Yes, ExternalMemory: engine.Yes, BackendStorage: engine.Yes, Indexes: engine.Yes,
		API:         engine.Yes,
		Hypergraphs: engine.Yes,
		NodeLabeled: engine.Yes,
		Directed:    engine.Yes, EdgeLabeled: engine.Yes,
		SchemaNodeTypes: engine.Yes, SchemaRelationTypes: engine.Yes,
		ValueNodes: engine.Yes, SimpleRelations: engine.Yes, ComplexRelations: engine.Yes,
		APIQueryFacility: engine.Yes, Retrieval: engine.Yes,
		TypesChecking: engine.Yes, NodeEdgeIdentity: engine.Yes,
	}
}

// Essentials implements engine.Engine: the hypergraph API composes node
// adjacency (shared hyperedge membership) and aggregate summarization;
// path utilities are not part of its surface (Table VII row).
func (db *DB) Essentials() engine.Essentials {
	return engine.Essentials{
		NodeAdjacency: func(a, b model.NodeID) (bool, error) {
			found := false
			err := db.h.Incident(a, func(e model.HyperEdge) bool {
				for _, m := range e.Members {
					if m == b {
						found = true
						return false
					}
				}
				return true
			})
			return found, err
		},
		EdgeAdjacency: func(e1, e2 model.EdgeID) (bool, error) {
			a, err := db.h.HyperEdge(e1)
			if err != nil {
				return false, err
			}
			b, err := db.h.HyperEdge(e2)
			if err != nil {
				return false, err
			}
			set := map[model.NodeID]bool{}
			for _, m := range a.Members {
				set[m] = true
			}
			for _, m := range b.Members {
				if set[m] {
					return true, nil
				}
			}
			return false, nil
		},
		Summarization: func(kind algo.AggKind, label, prop string) (model.Value, error) {
			agg := algo.NewAggregator(kind)
			err := db.h.Nodes(func(n model.Node) bool {
				if label != "" && n.Label != label {
					return true
				}
				if kind == algo.AggCount {
					agg.Add(model.Int(1))
				} else {
					agg.Add(n.Props.Get(prop))
				}
				return true
			})
			if err != nil {
				return model.Null(), err
			}
			return agg.Result(), nil
		},
	}
}

// LoadNode implements engine.Loader, declaring unseen atom types first.
func (db *DB) LoadNode(label string, props model.Properties) (model.NodeID, error) {
	db.schema.EnsureNodeType(label, props)
	return db.AddAtom(label, props)
}

// LoadEdge implements engine.Loader: binary edges become 2-member links.
func (db *DB) LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	return db.AddLink(label, []model.NodeID{from, to}, props)
}

// Flush implements engine.Persistent.
func (db *DB) Flush() error {
	if db.disk != nil {
		return db.disk.Flush()
	}
	return nil
}

// Close implements engine.Engine.
func (db *DB) Close() error {
	if db.disk != nil {
		return db.disk.Close()
	}
	return nil
}

// --- atom log encoding ---

func encodeAtom(label string, members []model.NodeID, props model.Properties) []byte {
	buf := make([]byte, 0, 64)
	buf = appendString(buf, label)
	buf = appendUvarint(buf, uint64(len(members)))
	for _, m := range members {
		buf = appendUvarint(buf, uint64(m))
	}
	pb, _ := props.MarshalBinary()
	buf = append(buf, pb...)
	return buf
}

func decodeAtom(data []byte) (struct {
	label   string
	members []model.NodeID
	props   model.Properties
}, error) {
	var out struct {
		label   string
		members []model.NodeID
		props   model.Properties
	}
	label, rest, err := readString(data)
	if err != nil {
		return out, err
	}
	out.label = label
	n, rest, err := readUvarint(rest)
	if err != nil {
		return out, err
	}
	for i := uint64(0); i < n; i++ {
		var m uint64
		m, rest, err = readUvarint(rest)
		if err != nil {
			return out, err
		}
		out.members = append(out.members, model.NodeID(m))
	}
	props, err := model.UnmarshalProperties(rest)
	if err != nil {
		return out, err
	}
	if len(props) > 0 {
		out.props = props
	}
	return out, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func readUvarint(b []byte) (uint64, []byte, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << shift
		if b[i] < 0x80 {
			return v, b[i+1:], nil
		}
		shift += 7
	}
	return 0, nil, fmt.Errorf("hyperdb: truncated varint")
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("hyperdb: truncated string")
	}
	return string(rest[:n]), rest[n:], nil
}

var (
	_ engine.Engine       = (*DB)(nil)
	_ engine.CacheStatser = (*DB)(nil)
	_ engine.HyperAPI     = hyperAPI{}
	_ engine.Loader       = (*DB)(nil)
)

// hyperAPI adapts DB to engine.HyperAPI.
type hyperAPI struct{ db *DB }

// HyperAPIOf returns the mutable hypergraph surface.
func (db *DB) HyperAPIOf() engine.HyperAPI { return hyperAPI{db} }

func (h hyperAPI) Order() int                               { return h.db.h.Order() }
func (h hyperAPI) Size() int                                { return h.db.h.Size() }
func (h hyperAPI) Node(id model.NodeID) (model.Node, error) { return h.db.h.Node(id) }
func (h hyperAPI) HyperEdge(id model.EdgeID) (model.HyperEdge, error) {
	return h.db.h.HyperEdge(id)
}
func (h hyperAPI) Nodes(fn func(model.Node) bool) error           { return h.db.h.Nodes(fn) }
func (h hyperAPI) HyperEdges(fn func(model.HyperEdge) bool) error { return h.db.h.HyperEdges(fn) }
func (h hyperAPI) Incident(id model.NodeID, fn func(model.HyperEdge) bool) error {
	return h.db.h.Incident(id, fn)
}
func (h hyperAPI) AddNode(label string, props model.Properties) (model.NodeID, error) {
	return h.db.AddAtom(label, props)
}
func (h hyperAPI) AddHyperEdge(label string, members []model.NodeID, props model.Properties) (model.EdgeID, error) {
	return h.db.AddLink(label, members, props)
}
func (h hyperAPI) RemoveHyperEdge(id model.EdgeID) error { return h.db.h.RemoveHyperEdge(id) }
