package hyperdb

import (
	"errors"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/model"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestAtomsAndLinks(t *testing.T) {
	db := openDB(t)
	a, err := db.AddAtom("", model.Props("name", "a"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := db.AddAtom("", nil)
	c, _ := db.AddAtom("", nil)
	link, err := db.AddLink("rel", []model.NodeID{a, b, c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := db.Hypergraph()
	if h.Order() != 3 || h.Size() != 1 {
		t.Fatalf("order=%d size=%d", h.Order(), h.Size())
	}
	e, _ := h.HyperEdge(link)
	if len(e.Members) != 3 {
		t.Errorf("members = %v", e.Members)
	}
}

func TestTypedAtomsAndIdentity(t *testing.T) {
	db := openDB(t)
	db.Schema().EnsureNodeType("Protein", model.Props("name", ""))
	db.SetIdentity("Protein", "name")
	if _, err := db.AddAtom("Protein", model.Props("name", "p53")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAtom("Protein", model.Props("name", "p53")); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("duplicate identity: %v", err)
	}
	if _, err := db.AddAtom("Protein", nil); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("missing identity prop: %v", err)
	}
	if _, err := db.AddAtom("Ghost", nil); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("undeclared type: %v", err)
	}
}

func TestEssentialsHyperSemantics(t *testing.T) {
	db := openDB(t)
	a, _ := db.AddAtom("", nil)
	b, _ := db.AddAtom("", nil)
	c, _ := db.AddAtom("", nil)
	d, _ := db.AddAtom("", nil)
	e1, _ := db.AddLink("x", []model.NodeID{a, b, c}, nil)
	e2, _ := db.AddLink("y", []model.NodeID{c, d}, nil)

	es := db.Essentials()
	ok, _ := es.NodeAdjacency(a, b)
	if !ok {
		t.Error("a,b share a hyperedge")
	}
	ok, _ = es.NodeAdjacency(a, d)
	if ok {
		t.Error("a,d share no hyperedge")
	}
	// Hyperedges sharing node c are adjacent.
	ok, _ = es.EdgeAdjacency(e1, e2)
	if !ok {
		t.Error("e1,e2 share c")
	}
	if _, err := es.EdgeAdjacency(e1, 99); err == nil {
		t.Error("missing hyperedge should error")
	}
}

func TestHyperAPIOf(t *testing.T) {
	db := openDB(t)
	api := db.HyperAPIOf()
	a, err := api.AddNode("", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := api.AddNode("", nil)
	id, err := api.AddHyperEdge("e", []model.NodeID{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if api.Order() != 2 || api.Size() != 1 {
		t.Errorf("order=%d size=%d", api.Order(), api.Size())
	}
	n := 0
	api.Incident(a, func(model.HyperEdge) bool { n++; return true })
	if n != 1 {
		t.Errorf("incident = %d", n)
	}
	if err := api.RemoveHyperEdge(id); err != nil {
		t.Fatal(err)
	}
	if api.Size() != 0 {
		t.Errorf("size after remove = %d", api.Size())
	}
	nn := 0
	api.Nodes(func(model.Node) bool { nn++; return true })
	ne := 0
	api.HyperEdges(func(model.HyperEdge) bool { ne++; return true })
	if nn != 2 || ne != 0 {
		t.Errorf("nodes=%d hyperedges=%d", nn, ne)
	}
	if _, err := api.Node(a); err != nil {
		t.Error(err)
	}
	if _, err := api.HyperEdge(id); err == nil {
		t.Error("removed hyperedge should be gone")
	}
}

func TestPersistenceReplaysAtomLog(t *testing.T) {
	dir := t.TempDir()
	db, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.Schema().EnsureNodeType("P", model.Props("name", ""))
	a, _ := db.AddAtom("P", model.Props("name", "a"))
	b, _ := db.AddAtom("P", model.Props("name", "b"))
	db.AddLink("pair", []model.NodeID{a, b}, model.Props("w", 1))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	h := db2.Hypergraph()
	if h.Order() != 2 || h.Size() != 1 {
		t.Fatalf("after reopen: order=%d size=%d", h.Order(), h.Size())
	}
	var e model.HyperEdge
	h.HyperEdges(func(he model.HyperEdge) bool { e = he; return false })
	if e.Label != "pair" || len(e.Members) != 2 {
		t.Errorf("replayed edge = %+v", e)
	}
	if v, _ := e.Props.Get("w").AsInt(); v != 1 {
		t.Errorf("replayed props = %v", e.Props)
	}
	// The log sequence continues: new atoms must not clobber old entries.
	db2.Schema().EnsureNodeType("Q", nil)
	if _, err := db2.AddAtom("Q", nil); err != nil {
		t.Fatal(err)
	}
	db2.Flush()
	db2.Close()
	db3, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.Hypergraph().Order() != 3 {
		t.Errorf("order after second reopen = %d (log clobbered?)", db3.Hypergraph().Order())
	}
}

func TestAtomLogEncoding(t *testing.T) {
	enc := encodeAtom("label", []model.NodeID{3, 7}, model.Props("k", 1))
	rec, err := decodeAtom(enc)
	if err != nil {
		t.Fatal(err)
	}
	if rec.label != "label" || len(rec.members) != 2 || rec.members[1] != 7 {
		t.Errorf("decoded = %+v", rec)
	}
	if v, _ := rec.props.Get("k").AsInt(); v != 1 {
		t.Errorf("props = %v", rec.props)
	}
	// Truncated inputs fail cleanly.
	for i := 0; i < len(enc)-1; i++ {
		if _, err := decodeAtom(enc[:i]); err == nil {
			// Some prefixes decode as shorter valid atoms (empty label,
			// zero members, empty props); only structural truncation must
			// error, so just ensure no panic occurred.
			continue
		}
	}
}
