// Package infinigraph implements the InfiniteGraph-archetype engine: a
// database oriented to large-scale graphs in a *distributed* environment,
// aiming at efficient traversal of relations across massive and distributed
// stores (survey Section II). The distribution substrate is simulated with
// in-process partitions: nodes hash onto shards, edges may cross shards,
// and every traversal transparently spans partitions — exercising the same
// code path as a networked deployment without the network.
package infinigraph

import (
	"context"
	"hash/fnv"
	"path/filepath"
	"sync"

	"gdbm/internal/adj"
	"gdbm/internal/algo"
	"gdbm/internal/algo/par"
	"gdbm/internal/cache"
	"gdbm/internal/constraint"
	"gdbm/internal/engine"
	"gdbm/internal/index"
	"gdbm/internal/kvgraph"
	"gdbm/internal/model"
	"gdbm/internal/query/stats"
	"gdbm/internal/storage/kv"
)

func init() {
	engine.Register("infinigraph", "InfiniteGraph", func(opts engine.Options) (engine.Engine, error) {
		return New(opts)
	})
}

// partition is one shard: node records live in the shard their id hashes
// to; each edge is recorded in both endpoint shards so traversals are
// always shard-local reads.
type partition struct {
	nodes map[model.NodeID]*model.Node
	out   map[model.NodeID][]model.EdgeID
	in    map[model.NodeID][]model.EdgeID
}

// DB is the engine instance. Mutations double-bump epoch and mark the
// touched ID blocks in ver, which publishes the frozen copy-on-write
// snapshots AcquireSnapshot pins (see the adj package).
type DB struct {
	mu     sync.RWMutex
	parts  []*partition
	edges  map[model.EdgeID]*model.Edge
	nextN  model.NodeID
	nextE  model.EdgeID
	epoch  cache.Epoch
	ver    adj.Versioned
	idx    *index.Manager
	cons   *constraint.Set
	schema *model.Schema
	// CrossEdges counts edges whose endpoints live on different shards —
	// the distribution-sensitive statistic the perf bench reports.
	crossEdges int
	spill      *kvgraph.Graph // external-memory mirror when Dir is set
	disk       *kv.Disk
	pstats     stats.Versioned // planner statistics, epoch-keyed (planstats.go)
}

// New opens an infinigraph with opts.Partitions shards (default 4).
func New(opts engine.Options) (*DB, error) {
	n := opts.Partitions
	if n <= 0 {
		n = 4
	}
	db := &DB{
		parts:  make([]*partition, n),
		edges:  make(map[model.EdgeID]*model.Edge),
		idx:    index.NewManager(),
		cons:   constraint.NewSet(),
		schema: model.NewSchema(),
	}
	for i := range db.parts {
		db.parts[i] = &partition{
			nodes: map[model.NodeID]*model.Node{},
			out:   map[model.NodeID][]model.EdgeID{},
			in:    map[model.NodeID][]model.EdgeID{},
		}
	}
	if _, err := db.idx.Create(index.Nodes, "", index.KindHash); err != nil {
		return nil, err
	}
	db.cons.Add(constraint.Types{Schema: db.schema})
	if opts.Dir != "" {
		// The working graph is sharded main memory; only the spill mirror
		// reads pages back, so CacheBytes funds the page cache alone.
		d, err := kv.OpenDiskWith(filepath.Join(opts.Dir, "infinigraph.pg"), kv.DiskOptions{
			PoolPages: opts.PoolPages, CacheBytes: opts.CacheBytes, FS: opts.FS, Metrics: opts.Metrics,
		})
		if err != nil {
			return nil, err
		}
		db.disk = d
		db.spill = kvgraph.New(d)
		db.spill.SetMetrics(opts.Metrics)
	}
	return db, nil
}

// CacheStats implements engine.CacheStatser; in-memory instances report no
// tiers.
func (db *DB) CacheStats() map[string]cache.Stats {
	out := map[string]cache.Stats{}
	if db.disk != nil {
		out["page"] = db.disk.CacheStats()
	}
	return out
}

// AddIdentity installs an identity constraint.
func (db *DB) AddIdentity(label, prop string) {
	db.cons.Add(constraint.Identity{Label: label, Prop: prop})
}

// Schema implements engine.SchemaHolder.
func (db *DB) Schema() *model.Schema { return db.schema }

func (db *DB) shardOf(id model.NodeID) *partition {
	h := fnv.New32a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(id) >> (8 * i))
	}
	h.Write(b[:])
	return db.parts[h.Sum32()%uint32(len(db.parts))]
}

// Partitions returns the shard count.
func (db *DB) Partitions() int { return len(db.parts) }

// CrossEdges returns how many edges span two shards.
func (db *DB) CrossEdges() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.crossEdges
}

// --- model.MutableGraph ---

// AddNode implements model.MutableGraph.
func (db *DB) AddNode(label string, props model.Properties) (model.NodeID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.epoch.Bump()
	defer db.epoch.Bump()
	m := constraint.Mutation{Kind: constraint.AddNode, Node: model.Node{Label: label, Props: props}}
	if err := db.cons.Check(lockedView{db}, m); err != nil {
		return 0, err
	}
	db.nextN++
	id := db.nextN
	db.ver.MarkNode(id)
	db.shardOf(id).nodes[id] = &model.Node{ID: id, Label: label, Props: props.Clone()}
	db.idx.OnNodeWrite(model.Node{ID: id, Label: label, Props: props}, "", nil)
	if db.spill != nil {
		// A failed mirror write must surface: swallowing it would leave the
		// external-memory copy silently behind the working graph.
		if _, err := db.spill.AddNode(label, props); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// AddEdge implements model.MutableGraph.
func (db *DB) AddEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.epoch.Bump()
	defer db.epoch.Bump()
	fp, tp := db.shardOf(from), db.shardOf(to)
	if _, ok := fp.nodes[from]; !ok {
		return 0, model.NodeNotFound(from)
	}
	if _, ok := tp.nodes[to]; !ok {
		return 0, model.NodeNotFound(to)
	}
	m := constraint.Mutation{
		Kind:    constraint.AddEdge,
		Edge:    model.Edge{Label: label, From: from, To: to, Props: props},
		FromLbl: fp.nodes[from].Label,
		ToLbl:   tp.nodes[to].Label,
	}
	if err := db.cons.Check(lockedView{db}, m); err != nil {
		return 0, err
	}
	db.nextE++
	id := db.nextE
	db.ver.MarkEdge(id)
	db.ver.MarkNode(from)
	db.ver.MarkNode(to)
	db.edges[id] = &model.Edge{ID: id, Label: label, From: from, To: to, Props: props.Clone()}
	fp.out[from] = append(fp.out[from], id)
	tp.in[to] = append(tp.in[to], id)
	if fp != tp {
		db.crossEdges++
	}
	return id, nil
}

// RemoveNode implements model.MutableGraph.
func (db *DB) RemoveNode(id model.NodeID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.epoch.Bump()
	defer db.epoch.Bump()
	p := db.shardOf(id)
	n, ok := p.nodes[id]
	if !ok {
		return model.NodeNotFound(id)
	}
	if err := db.cons.Check(lockedView{db}, constraint.Mutation{Kind: constraint.DelNode, Node: *n}); err != nil {
		return err
	}
	for _, eid := range append(append([]model.EdgeID(nil), p.out[id]...), p.in[id]...) {
		db.removeEdgeLocked(eid)
	}
	db.idx.OnNodeDelete(*n)
	db.ver.MarkNode(id)
	delete(p.nodes, id)
	delete(p.out, id)
	delete(p.in, id)
	return nil
}

// RemoveEdge implements model.MutableGraph.
func (db *DB) RemoveEdge(id model.EdgeID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.epoch.Bump()
	defer db.epoch.Bump()
	if _, ok := db.edges[id]; !ok {
		return model.EdgeNotFound(id)
	}
	db.removeEdgeLocked(id)
	return nil
}

func (db *DB) removeEdgeLocked(id model.EdgeID) {
	e, ok := db.edges[id]
	if !ok {
		return
	}
	db.ver.MarkEdge(id)
	db.ver.MarkNode(e.From)
	db.ver.MarkNode(e.To)
	fp, tp := db.shardOf(e.From), db.shardOf(e.To)
	fp.out[e.From] = removeID(fp.out[e.From], id)
	tp.in[e.To] = removeID(tp.in[e.To], id)
	if fp != tp {
		db.crossEdges--
	}
	delete(db.edges, id)
}

func removeID(s []model.EdgeID, id model.EdgeID) []model.EdgeID {
	for i, v := range s {
		if v == id {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// SetNodeProp implements model.MutableGraph.
func (db *DB) SetNodeProp(id model.NodeID, key string, v model.Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.epoch.Bump()
	defer db.epoch.Bump()
	n, ok := db.shardOf(id).nodes[id]
	if !ok {
		return model.NodeNotFound(id)
	}
	db.ver.MarkNode(id)
	updated := *n
	updated.Props = n.Props.Clone()
	if updated.Props == nil {
		updated.Props = model.Properties{}
	}
	updated.Props[key] = v
	if err := db.cons.Check(lockedView{db}, constraint.Mutation{Kind: constraint.UpdateNode, Node: updated}); err != nil {
		return err
	}
	old := *n
	n.Props = updated.Props
	db.idx.OnNodeWrite(updated, old.Label, old.Props)
	return nil
}

// SetEdgeProp implements model.MutableGraph.
func (db *DB) SetEdgeProp(id model.EdgeID, key string, v model.Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.epoch.Bump()
	defer db.epoch.Bump()
	e, ok := db.edges[id]
	if !ok {
		return model.EdgeNotFound(id)
	}
	db.ver.MarkEdge(id)
	// Copy-on-write: Neighbors/Edges hand out record copies sharing the old
	// map past the read lock, so the map must be replaced, not mutated.
	props := e.Props.Clone()
	if props == nil {
		props = model.Properties{}
	}
	props[key] = v
	e.Props = props
	return nil
}

// --- model.Graph reads (shard-spanning) ---

// lockedView reads the graph while db.mu is already held (constraint checks
// run inside mutations).
type lockedView struct{ db *DB }

func (v lockedView) Order() int { return v.db.orderLocked() }
func (v lockedView) Size() int  { return len(v.db.edges) }
func (v lockedView) Node(id model.NodeID) (model.Node, error) {
	if n, ok := v.db.shardOf(id).nodes[id]; ok {
		return *n, nil
	}
	return model.Node{}, model.NodeNotFound(id)
}
func (v lockedView) Edge(id model.EdgeID) (model.Edge, error) {
	if e, ok := v.db.edges[id]; ok {
		return *e, nil
	}
	return model.Edge{}, model.EdgeNotFound(id)
}
func (v lockedView) Nodes(fn func(model.Node) bool) error {
	for _, p := range v.db.parts {
		for _, n := range p.nodes {
			if !fn(*n) {
				return nil
			}
		}
	}
	return nil
}
func (v lockedView) Edges(fn func(model.Edge) bool) error {
	for _, e := range v.db.edges {
		if !fn(*e) {
			return nil
		}
	}
	return nil
}
func (v lockedView) Neighbors(id model.NodeID, dir model.Direction, fn func(model.Edge, model.Node) bool) error {
	return v.db.neighborsLocked(id, dir, fn)
}
func (v lockedView) Degree(id model.NodeID, dir model.Direction) (int, error) {
	return v.db.degreeLocked(id, dir)
}

func (db *DB) orderLocked() int {
	n := 0
	for _, p := range db.parts {
		n += len(p.nodes)
	}
	return n
}

// Order implements model.Graph.
func (db *DB) Order() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.orderLocked()
}

// Size implements model.Graph.
func (db *DB) Size() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.edges)
}

// Node implements model.Graph.
func (db *DB) Node(id model.NodeID) (model.Node, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return lockedView{db}.Node(id)
}

// Edge implements model.Graph.
func (db *DB) Edge(id model.EdgeID) (model.Edge, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return lockedView{db}.Edge(id)
}

// Nodes implements model.Graph.
func (db *DB) Nodes(fn func(model.Node) bool) error {
	db.mu.RLock()
	var snapshot []model.Node
	err := lockedView{db}.Nodes(func(n model.Node) bool {
		snapshot = append(snapshot, n)
		return true
	})
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	for _, n := range snapshot {
		if !fn(n) {
			return nil
		}
	}
	return nil
}

// Edges implements model.Graph.
func (db *DB) Edges(fn func(model.Edge) bool) error {
	db.mu.RLock()
	var snapshot []model.Edge
	err := lockedView{db}.Edges(func(e model.Edge) bool {
		snapshot = append(snapshot, e)
		return true
	})
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	for _, e := range snapshot {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

func (db *DB) neighborsLocked(id model.NodeID, dir model.Direction, fn func(model.Edge, model.Node) bool) error {
	p := db.shardOf(id)
	if _, ok := p.nodes[id]; !ok {
		return model.NodeNotFound(id)
	}
	emit := func(eids []model.EdgeID, far func(*model.Edge) model.NodeID) bool {
		for _, eid := range eids {
			e := db.edges[eid]
			farN := db.shardOf(far(e)).nodes[far(e)]
			if !fn(*e, *farN) {
				return false
			}
		}
		return true
	}
	if dir == model.Out || dir == model.Both {
		if !emit(p.out[id], func(e *model.Edge) model.NodeID { return e.To }) {
			return nil
		}
	}
	if dir == model.In || dir == model.Both {
		emit(p.in[id], func(e *model.Edge) model.NodeID { return e.From })
	}
	return nil
}

// Neighbors implements model.Graph; traversal spans shards transparently.
func (db *DB) Neighbors(id model.NodeID, dir model.Direction, fn func(model.Edge, model.Node) bool) error {
	db.mu.RLock()
	type pair struct {
		e model.Edge
		n model.Node
	}
	var snapshot []pair
	err := db.neighborsLocked(id, dir, func(e model.Edge, n model.Node) bool {
		snapshot = append(snapshot, pair{e, n})
		return true
	})
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	for _, p := range snapshot {
		if !fn(p.e, p.n) {
			return nil
		}
	}
	return nil
}

func (db *DB) degreeLocked(id model.NodeID, dir model.Direction) (int, error) {
	p := db.shardOf(id)
	if _, ok := p.nodes[id]; !ok {
		return 0, model.NodeNotFound(id)
	}
	switch dir {
	case model.Out:
		return len(p.out[id]), nil
	case model.In:
		return len(p.in[id]), nil
	default:
		return len(p.out[id]) + len(p.in[id]), nil
	}
}

// Degree implements model.Graph.
func (db *DB) Degree(id model.NodeID, dir model.Direction) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.degreeLocked(id, dir)
}

// IndexedNodes implements plan.Source.
func (db *DB) IndexedNodes(label, prop string, v model.Value, fn func(model.Node) bool) (bool, error) {
	var idx index.Index
	var key model.Value
	if prop != "" {
		i, ok := db.idx.Get(index.Nodes, prop)
		if !ok {
			return false, nil
		}
		idx, key = i, v
	} else {
		i, ok := db.idx.Get(index.Nodes, "")
		if !ok || label == "" {
			return false, nil
		}
		idx, key = i, model.Str(label)
	}
	err := idx.Lookup(key, func(raw uint64) bool {
		n, err := db.Node(model.NodeID(raw))
		if err != nil {
			return true
		}
		if label != "" && n.Label != label {
			return true
		}
		return fn(n)
	})
	return true, err
}

// Name implements engine.Engine.
func (db *DB) Name() string { return "infinigraph" }

// SurveyRow implements engine.Engine.
func (db *DB) SurveyRow() string { return "InfiniteGraph" }

// Features implements engine.Engine.
func (db *DB) Features() engine.Features {
	return engine.Features{
		ExternalMemory: engine.Yes, Indexes: engine.Yes,
		API:              engine.Yes,
		AttributedGraphs: engine.Yes,
		NodeLabeled:      engine.Yes, NodeAttributed: engine.Yes,
		Directed: engine.Yes, EdgeLabeled: engine.Yes, EdgeAttributed: engine.Yes,
		SchemaNodeTypes: engine.Yes, SchemaRelationTypes: engine.Yes,
		ObjectNodes: engine.Yes, ValueNodes: engine.Yes,
		ObjectRelations: engine.Yes, SimpleRelations: engine.Yes,
		APIQueryFacility: engine.Yes, Retrieval: engine.Yes,
		TypesChecking: engine.Yes, NodeEdgeIdentity: engine.Yes,
	}
}

// Essentials implements engine.Engine; kernels run under a background
// context. Callers holding a request context should prefer EssentialsCtx.
func (db *DB) Essentials() engine.Essentials {
	return db.essentialsCtx(context.Background())
}

// EssentialsCtx implements engine.ContextEssentials: the parallel kernels
// run under the caller's context, so deadlines and cancellation reach
// them instead of being severed by a fresh background root.
func (db *DB) EssentialsCtx(ctx context.Context) engine.Essentials {
	return db.essentialsCtx(ctx)
}

func (db *DB) essentialsCtx(ctx context.Context) engine.Essentials {
	return engine.Essentials{
		NodeAdjacency: func(a, b model.NodeID) (bool, error) {
			return algo.Adjacent(db, a, b, model.Both)
		},
		EdgeAdjacency: func(e1, e2 model.EdgeID) (bool, error) {
			return algo.EdgesAdjacent(db, e1, e2)
		},
		KNeighborhood: func(n model.NodeID, k int) ([]model.NodeID, error) {
			g, release, err := db.AcquireSnapshot()
			if err != nil {
				return nil, err
			}
			defer release()
			return par.Neighborhood(ctx, g, n, k, model.Both, par.Options{})
		},
		FixedLengthPaths: func(from, to model.NodeID, length int) ([]algo.Path, error) {
			return algo.FixedLengthPaths(db, from, to, length, model.Out, 0)
		},
		ShortestPath: func(from, to model.NodeID) (algo.Path, error) {
			return algo.ShortestPath(db, from, to, model.Out)
		},
		Summarization: func(kind algo.AggKind, label, prop string) (model.Value, error) {
			g, release, err := db.AcquireSnapshot()
			if err != nil {
				return model.Null(), err
			}
			defer release()
			return par.AggregateNodeProp(ctx, g, label, prop, kind, par.Options{})
		},
	}
}

// AcquireSnapshot implements engine.Concurrent (the model.Snapshotter
// contract) at frozen isolation: an immutable copy-on-write snapshot of
// all shards merged, pinned at the current stable epoch. The fast path is
// O(1) — one atomic load and a pin when the store is quiescent — and a
// re-render after mutations touches only the dirty ID blocks, mirroring
// InfiniteGraph's concurrent distributed traversal over stable views.
func (db *DB) AcquireSnapshot() (model.Graph, model.ReleaseFunc, error) {
	if s, rel := db.ver.TryPin(db.epoch.Current()); rel != nil {
		return s, rel, nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, rel, err := db.ver.Pin(db.epoch.Current(), igSource{db})
	if err != nil {
		return nil, nil, err
	}
	return s, rel, nil
}

// igSource adapts the shard maps to the snapshot builder. Its methods are
// unlocked: Versioned.Pin runs with db.mu read-held (excluding writers),
// so the partitions are quiescent for the whole render.
type igSource struct{ db *DB }

func (s igSource) MaxNodeID() (model.NodeID, error) { return s.db.nextN, nil }
func (s igSource) MaxEdgeID() (model.EdgeID, error) { return s.db.nextE, nil }

func (s igSource) NodeByID(id model.NodeID) (model.Node, bool, error) {
	if n, ok := s.db.shardOf(id).nodes[id]; ok {
		return *n, true, nil
	}
	return model.Node{}, false, nil
}

func (s igSource) EdgeByID(id model.EdgeID) (model.Edge, bool, error) {
	if e, ok := s.db.edges[id]; ok {
		return *e, true, nil
	}
	return model.Edge{}, false, nil
}

func (s igSource) OutEdges(id model.NodeID) ([]model.EdgeID, error) {
	return s.db.shardOf(id).out[id], nil
}

func (s igSource) InEdges(id model.NodeID) ([]model.EdgeID, error) {
	return s.db.shardOf(id).in[id], nil
}

// LoadNode implements engine.Loader, declaring unseen types first.
func (db *DB) LoadNode(label string, props model.Properties) (model.NodeID, error) {
	db.schema.EnsureNodeType(label, props)
	return db.AddNode(label, props)
}

// LoadEdge implements engine.Loader, declaring unseen relation types first.
func (db *DB) LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	db.schema.EnsureRelationType(label, props)
	return db.AddEdge(label, from, to, props)
}

// Flush implements engine.Persistent.
func (db *DB) Flush() error {
	if db.disk != nil {
		return db.disk.Flush()
	}
	return nil
}

// Close implements engine.Engine.
func (db *DB) Close() error {
	if db.disk != nil {
		return db.disk.Close()
	}
	return nil
}

var (
	_ engine.Engine            = (*DB)(nil)
	_ engine.CacheStatser      = (*DB)(nil)
	_ engine.GraphAPI          = (*DB)(nil)
	_ engine.Loader            = (*DB)(nil)
	_ engine.Concurrent        = (*DB)(nil)
	_ engine.ContextEssentials = (*DB)(nil)
	_ adj.Source               = igSource{}
)
