package infinigraph

import (
	"errors"
	"testing"

	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/gen"
	"gdbm/internal/model"
)

func openDB(t *testing.T, parts int) *DB {
	t.Helper()
	db, err := New(engine.Options{Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestShardingDistributesNodes(t *testing.T) {
	db := openDB(t, 4)
	if db.Partitions() != 4 {
		t.Fatalf("partitions = %d", db.Partitions())
	}
	for i := 0; i < 200; i++ {
		db.LoadNode("N", nil)
	}
	// Every shard should hold a reasonable share.
	for i, p := range db.parts {
		if len(p.nodes) < 20 {
			t.Errorf("shard %d holds only %d nodes", i, len(p.nodes))
		}
	}
}

func TestCrossShardTraversal(t *testing.T) {
	db := openDB(t, 4)
	ids, err := gen.Generate(gen.Spec{Kind: gen.ER, Nodes: 100, EdgesPerNode: 3, Seed: 11}, db)
	if err != nil {
		t.Fatal(err)
	}
	if db.CrossEdges() == 0 {
		t.Fatal("expected cross-shard edges in a random graph")
	}
	// BFS spans shards transparently.
	count := 0
	if err := algo.BFS(db, ids[0], model.Both, func(model.NodeID, int) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count < 50 {
		t.Errorf("BFS reached only %d nodes", count)
	}
}

func TestCrossEdgeAccounting(t *testing.T) {
	db := openDB(t, 4)
	// Find two nodes on different shards.
	var a, b model.NodeID
	for i := 0; i < 50 && b == 0; i++ {
		id, _ := db.AddNode("N", nil)
		if a == 0 {
			a = id
			continue
		}
		if db.shardOf(id) != db.shardOf(a) {
			b = id
		}
	}
	if b == 0 {
		t.Skip("hash put everything on one shard (unlikely)")
	}
	before := db.CrossEdges()
	eid, err := db.AddEdge("x", a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.CrossEdges() != before+1 {
		t.Errorf("cross edges = %d, want %d", db.CrossEdges(), before+1)
	}
	db.RemoveEdge(eid)
	if db.CrossEdges() != before {
		t.Errorf("cross edges after remove = %d", db.CrossEdges())
	}
}

func TestGraphSemantics(t *testing.T) {
	db := openDB(t, 2)
	db.Schema().EnsureNodeType("P", model.Props("name", "", "age", 0))
	db.Schema().EnsureRelationType("knows", model.Props("since", 0))
	a, _ := db.AddNode("P", model.Props("name", "ada"))
	b, _ := db.AddNode("P", nil)
	eid, _ := db.AddEdge("knows", a, b, model.Props("since", 2019))
	if db.Order() != 2 || db.Size() != 1 {
		t.Fatalf("order=%d size=%d", db.Order(), db.Size())
	}
	n, err := db.Node(a)
	if err != nil || n.Label != "P" {
		t.Fatalf("Node: %+v %v", n, err)
	}
	e, err := db.Edge(eid)
	if err != nil || e.From != a {
		t.Fatalf("Edge: %+v %v", e, err)
	}
	if err := db.SetNodeProp(a, "age", model.Int(3)); err != nil {
		t.Fatal(err)
	}
	if err := db.SetEdgeProp(eid, "w", model.Float(1)); err != nil {
		t.Fatal(err)
	}
	d, _ := db.Degree(a, model.Out)
	if d != 1 {
		t.Errorf("degree = %d", d)
	}
	if err := db.RemoveNode(a); err != nil {
		t.Fatal(err)
	}
	if db.Order() != 1 || db.Size() != 0 {
		t.Errorf("cascade failed: order=%d size=%d", db.Order(), db.Size())
	}
	if _, err := db.Node(a); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("removed node: %v", err)
	}
	if err := db.RemoveEdge(99); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing edge: %v", err)
	}
}

func TestTypesCheckingAndIdentity(t *testing.T) {
	db := openDB(t, 2)
	db.Schema().EnsureNodeType("T", model.Props("name", ""))
	db.AddIdentity("T", "name")
	if _, err := db.AddNode("T", model.Props("name", "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddNode("T", model.Props("name", "x")); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("identity: %v", err)
	}
	if _, err := db.AddNode("Nope", nil); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("undeclared type: %v", err)
	}
}

func TestIndexedNodesViaLabelIndex(t *testing.T) {
	db := openDB(t, 3)
	db.Schema().EnsureNodeType("A", nil)
	db.Schema().EnsureNodeType("B", nil)
	db.AddNode("A", nil)
	db.AddNode("A", nil)
	db.AddNode("B", nil)
	n := 0
	handled, err := db.IndexedNodes("A", "", model.Null(), func(model.Node) bool { n++; return true })
	if err != nil || !handled || n != 2 {
		t.Errorf("indexed lookup: handled=%v n=%d err=%v", handled, n, err)
	}
}
