package infinigraph

import (
	"gdbm/internal/adj"
	"gdbm/internal/model"
	"gdbm/internal/query/stats"
)

// This file is the engine's planning surface, mirroring memgraph/kvgraph:
// epoch-keyed cardinality statistics and the sorted-adjacency capability,
// both served from the pinned merged-shard snapshot so they see one stable
// epoch and never block writers.

// PlanStats implements stats.Provider. Statistics are keyed on the pinned
// snapshot's epoch (the same double-bump discipline mutations follow), so
// any write makes them unreachable and the next call rebuilds from the
// then-current snapshot. Racing rebuilds are harmless: Publish keeps the
// newest epoch.
func (db *DB) PlanStats() (*stats.Stats, error) {
	g, release, err := db.AcquireSnapshot()
	if err != nil {
		return nil, err
	}
	defer release()
	snap, ok := g.(*adj.Snapshot)
	if !ok {
		return nil, nil
	}
	if s := db.pstats.TryGet(snap.Epoch()); s != nil {
		return s, nil
	}
	s, err := stats.Build(snap, snap.Epoch())
	if err != nil {
		return nil, err
	}
	db.pstats.Publish(s)
	return s, nil
}

// SortedNeighborIDs implements model.SortedAdjacency from the pinned
// snapshot, whose CSR rows serve the sorted lists without walking the
// per-partition edge maps.
func (db *DB) SortedNeighborIDs(id model.NodeID, dir model.Direction, label string) ([]model.NodeID, error) {
	g, release, err := db.AcquireSnapshot()
	if err != nil {
		return nil, err
	}
	defer release()
	sa, ok := g.(model.SortedAdjacency)
	if !ok {
		return nil, model.ErrUnsupported
	}
	return sa.SortedNeighborIDs(id, dir, label)
}

var (
	_ stats.Provider        = (*DB)(nil)
	_ model.SortedAdjacency = (*DB)(nil)
)
