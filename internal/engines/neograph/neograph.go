// Package neograph implements the Neo4j-archetype engine: a network-
// oriented model where relations are first-class objects, an object-
// oriented API, a native disk-based storage manager and a traversal
// framework (survey Section II). Its survey profile: main + external
// memory, indexes, API plus a partial query language (the Cypher-like gql),
// attributed directed graphs, object/value nodes and object/simple
// relations, no schema and no integrity constraints.
package neograph

import (
	"context"
	"fmt"
	"path/filepath"

	"gdbm/internal/algo"
	"gdbm/internal/algo/par"
	"gdbm/internal/cache"
	"gdbm/internal/engine"
	"gdbm/internal/engines/propcore"
	"gdbm/internal/index"
	"gdbm/internal/kvgraph"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query/gql"
	"gdbm/internal/query/plan"
	"gdbm/internal/storage/kv"
	"gdbm/internal/storage/tx"
)

func init() {
	engine.Register("neograph", "Neo4j", func(opts engine.Options) (engine.Engine, error) {
		return New(opts)
	})
}

// DB is the engine instance.
type DB struct {
	*propcore.Core
	disk    *kv.Disk
	kg      *kvgraph.Graph // non-nil in the disk-backed configuration
	results *cache.Results // nil when CacheBytes is zero or main-memory
}

// New opens a neograph instance. With Options.Dir set, data lives in a
// disk-backed store (the "native disk-based storage manager"); otherwise in
// main memory. A positive Options.CacheBytes splits the budget across the
// page, adjacency and query-result caches; the latter two need the
// kv-layered graph's epoch, so they apply to disk-backed instances only.
func New(opts engine.Options) (*DB, error) {
	db := &DB{}
	if opts.Dir != "" {
		pageB, adjB, resB := engine.SplitCacheBudget(opts.CacheBytes)
		d, err := kv.OpenDiskWith(filepath.Join(opts.Dir, "neograph.pg"), kv.DiskOptions{
			PoolPages: opts.PoolPages, CacheBytes: pageB, FS: opts.FS, Metrics: opts.Metrics,
		})
		if err != nil {
			return nil, err
		}
		db.disk = d
		db.kg = kvgraph.New(d)
		db.kg.SetMetrics(opts.Metrics)
		if adjB > 0 {
			db.kg.EnableAdjacencyCache(adjB)
		}
		if resB > 0 {
			db.results = cache.NewResults(resB)
		}
		db.Core = propcore.New(db.kg)
	} else {
		db.Core = propcore.New(memgraph.New())
	}
	// Label index is always on; property indexes are created on demand.
	lbl, err := db.Core.Idx.Create(index.Nodes, "", index.KindHash)
	if err != nil {
		return nil, err
	}
	if db.disk != nil {
		// Rebuild the label index from the persisted store.
		err := db.Core.Nodes(func(n model.Node) bool {
			if n.Label != "" {
				lbl.Add(model.Str(n.Label), uint64(n.ID))
			}
			return true
		})
		if err != nil {
			db.disk.Close()
			return nil, err
		}
	}
	return db, nil
}

// Schema shadows the schema surface promoted from the embedded
// *propcore.Core. The Neo4j archetype is schema-free — Table II blanks its
// DDL column and Table IV blanks every schema row — so DB must not satisfy
// engine.SchemaHolder; without this shadow the embedding would leak a
// capability the survey forbids (caught by gdbvet's capdecl analyzer and
// the capability conformance test). The substrate schema stays reachable
// as db.Core.Schema() for package-internal use.
func (db *DB) Schema() {}

// CreateIndex adds a hash index on a node property.
func (db *DB) CreateIndex(prop string) error {
	idx, err := db.Core.Idx.Create(index.Nodes, prop, index.KindHash)
	if err != nil {
		return err
	}
	// Backfill.
	return db.Nodes(func(n model.Node) bool {
		if v, ok := n.Props[prop]; ok {
			idx.Add(v, uint64(n.ID))
		}
		return true
	})
}

// Name implements engine.Engine.
func (db *DB) Name() string { return "neograph" }

// SurveyRow implements engine.Engine.
func (db *DB) SurveyRow() string { return "Neo4j" }

// Features implements engine.Engine.
func (db *DB) Features() engine.Features {
	return engine.Features{
		MainMemory: engine.Yes, ExternalMemory: engine.Yes, Indexes: engine.Yes,
		API: engine.Yes, QueryLanguage: engine.Partial,
		AttributedGraphs: engine.Yes,
		NodeLabeled:      engine.Yes, NodeAttributed: engine.Yes,
		Directed: engine.Yes, EdgeLabeled: engine.Yes, EdgeAttributed: engine.Yes,
		ObjectNodes: engine.Yes, ValueNodes: engine.Yes,
		ObjectRelations: engine.Yes, SimpleRelations: engine.Yes,
		APIQueryFacility: engine.Yes, Retrieval: engine.Yes,
	}
}

// LanguageName implements engine.Querier.
func (db *DB) LanguageName() string { return "gql" }

// Query implements engine.Querier with the Cypher-like language. On
// disk-backed instances with a cache budget, read statements (MATCH) are
// memoized at the current graph epoch.
func (db *DB) Query(stmt string) (*plan.Result, error) {
	return db.QueryContext(context.Background(), stmt)
}

// QueryContext implements engine.ContextQuerier: the whole dispatch is a
// "query" span on the trace in ctx, with gql's "parse"/"exec" spans nested
// inside on cache misses. Tracing never changes the answer.
func (db *DB) QueryContext(ctx context.Context, stmt string) (*plan.Result, error) {
	defer obs.FromContext(ctx).StartSpan("query")()
	exec := func() (*plan.Result, error) { return gql.ExecCtx(ctx, stmt, db.Core) }
	if db.results == nil || !engine.ReadOnlyStmt(stmt, "MATCH") {
		return exec()
	}
	return engine.CachedQuery(db.results, db.kg.Epoch, db.Name(), "gql", stmt, exec)
}

// QueryStream implements engine.StreamQuerier: read statements emit rows
// into sink as the plan produces them. Instances with a result cache keep
// the cached path (materialize or hit, then replay) so streaming never
// bypasses cache coherence; the rows are identical either way.
func (db *DB) QueryStream(ctx context.Context, stmt string, sink plan.Sink) error {
	defer obs.FromContext(ctx).StartSpan("query")()
	if db.results == nil || !engine.ReadOnlyStmt(stmt, "MATCH") {
		return gql.ExecStreamCtx(ctx, stmt, db.Core, sink)
	}
	res, err := engine.CachedQuery(db.results, db.kg.Epoch, db.Name(), "gql", stmt,
		func() (*plan.Result, error) { return gql.ExecCtx(ctx, stmt, db.Core) })
	if err != nil {
		return err
	}
	return plan.Replay(res, sink)
}

// CacheStats implements engine.CacheStatser; main-memory instances report
// no tiers.
func (db *DB) CacheStats() map[string]cache.Stats {
	out := map[string]cache.Stats{}
	if db.disk != nil {
		out["page"] = db.disk.CacheStats()
	}
	if db.kg != nil {
		if s, ok := db.kg.AdjacencyStats(); ok {
			out["adjacency"] = s
		}
	}
	if db.results != nil {
		out["results"] = db.results.Stats()
	}
	return out
}

// Essentials implements engine.Engine: the Neo4j archetype's traversal
// framework composes adjacency, neighborhoods, fixed-length and shortest
// paths, and summarization.
func (db *DB) Essentials() engine.Essentials {
	return db.EssentialsCtx(context.Background())
}

// EssentialsCtx implements engine.ContextEssentials: the parallel kernels
// run under the caller's context, so deadlines and cancellation reach
// them instead of being severed by a fresh background root.
func (db *DB) EssentialsCtx(ctx context.Context) engine.Essentials {
	es := db.essentialsCtx(ctx)
	if db.results == nil {
		return es
	}
	return engine.CachedEssentials(db.Name(), es, db.results, db.kg.Epoch)
}

func (db *DB) essentialsCtx(ctx context.Context) engine.Essentials {
	return engine.Essentials{
		NodeAdjacency: func(a, b model.NodeID) (bool, error) {
			return algo.Adjacent(db.Core, a, b, model.Both)
		},
		EdgeAdjacency: func(e1, e2 model.EdgeID) (bool, error) {
			return algo.EdgesAdjacent(db.Core, e1, e2)
		},
		KNeighborhood: func(n model.NodeID, k int) ([]model.NodeID, error) {
			g, release, err := db.AcquireSnapshot()
			if err != nil {
				return nil, err
			}
			defer release()
			return par.Neighborhood(ctx, g, n, k, model.Both, par.Options{})
		},
		FixedLengthPaths: func(from, to model.NodeID, length int) ([]algo.Path, error) {
			return algo.FixedLengthPaths(db.Core, from, to, length, model.Out, 0)
		},
		ShortestPath: func(from, to model.NodeID) (algo.Path, error) {
			return algo.ShortestPath(db.Core, from, to, model.Out)
		},
		Summarization: func(kind algo.AggKind, label, prop string) (model.Value, error) {
			g, release, err := db.AcquireSnapshot()
			if err != nil {
				return model.Null(), err
			}
			defer release()
			return par.AggregateNodeProp(ctx, g, label, prop, kind, par.Options{})
		},
	}
}

// AcquireSnapshot implements engine.Concurrent (the model.Snapshotter
// contract) at frozen isolation, delegating to the store's copy-on-write
// views: O(1) on a quiescent store, immutable under concurrent writers,
// in both configurations.
func (db *DB) AcquireSnapshot() (model.Graph, model.ReleaseFunc, error) {
	if p, ok := db.Core.Graph().(model.Pinner); ok {
		return p.AcquireView()
	}
	// Unreachable with the stores in this repository (both implement
	// model.Pinner); the live graph remains as a defensive fallback.
	return db.Core.Graph(), func() {}, nil
}

// Update implements engine.Transactional for main-memory instances: fn's
// mutations apply atomically — on error every change is rolled back via a
// snapshot. All writes must go through Update while a transaction runs
// (single-writer discipline, enforced by the transaction manager's lock).
// Disk-backed instances refuse: their durability path has no snapshot.
func (db *DB) Update(fn func() error) error {
	mg, ok := db.Core.Graph().(*memgraph.Graph)
	if !ok {
		return fmt.Errorf("neograph: transactions require the main-memory configuration")
	}
	return db.Core.TM.Update(func(*tx.Tx) error {
		snap := mg.Snapshot()
		if err := fn(); err != nil {
			mg.RestoreFrom(snap)
			return err
		}
		return nil
	})
}

// Flush implements engine.Persistent for disk-backed instances.
func (db *DB) Flush() error {
	if db.disk != nil {
		return db.disk.Flush()
	}
	return nil
}

// Close implements engine.Engine.
func (db *DB) Close() error {
	if db.disk != nil {
		return db.disk.Close()
	}
	return nil
}

var (
	_ engine.Engine            = (*DB)(nil)
	_ engine.GraphAPI          = (*DB)(nil)
	_ engine.Querier           = (*DB)(nil)
	_ engine.ContextQuerier    = (*DB)(nil)
	_ engine.ContextEssentials = (*DB)(nil)
	_ engine.Concurrent        = (*DB)(nil)
	_ engine.Loader            = (*DB)(nil)
	_ engine.CacheStatser      = (*DB)(nil)
)
