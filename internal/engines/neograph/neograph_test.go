package neograph

import (
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/model"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestQueryLanguageRoundTrip(t *testing.T) {
	db := openDB(t)
	if _, err := db.Query(`CREATE (a:P {name: 'ada'})`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`CREATE (b:P {name: 'bob'})`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`MATCH (a:P {name: 'ada'}), (b:P {name: 'bob'}) CREATE (a)-[:knows]->(b)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`MATCH (a)-[:knows]->(b) RETURN b.name AS n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if db.LanguageName() != "gql" {
		t.Errorf("language = %q", db.LanguageName())
	}
}

func TestCreateIndexBackfillsAndServesPlanner(t *testing.T) {
	db := openDB(t)
	for i := 0; i < 100; i++ {
		db.AddNode("P", model.Props("idx", i))
	}
	if err := db.CreateIndex("idx"); err != nil {
		t.Fatal(err)
	}
	n := 0
	handled, err := db.IndexedNodes("P", "idx", model.Int(42), func(model.Node) bool { n++; return true })
	if err != nil || !handled || n != 1 {
		t.Fatalf("indexed lookup: handled=%v n=%d err=%v", handled, n, err)
	}
	// Index stays maintained for new inserts.
	db.AddNode("P", model.Props("idx", 42))
	n = 0
	db.IndexedNodes("P", "idx", model.Int(42), func(model.Node) bool { n++; return true })
	if n != 2 {
		t.Errorf("post-insert lookup = %d", n)
	}
	// Duplicate index rejected.
	if err := db.CreateIndex("idx"); err == nil {
		t.Error("duplicate index should fail")
	}
}

func TestDiskPersistenceWithLabelIndexRebuild(t *testing.T) {
	dir := t.TempDir()
	db, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.AddNode("P", model.Props("name", "ada"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Order() != 1 {
		t.Fatalf("order after reopen = %d", db2.Order())
	}
	res, err := db2.Query(`MATCH (p:P) RETURN p.name AS n`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("query after reopen: %v %v", res, err)
	}
}
