package neograph

import (
	"fmt"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

func TestTransactionalUpdateCommits(t *testing.T) {
	db := openDB(t)
	err := db.Update(func() error {
		a, err := db.AddNode("P", model.Props("name", "ada"))
		if err != nil {
			return err
		}
		b, err := db.AddNode("P", model.Props("name", "bob"))
		if err != nil {
			return err
		}
		_, err = db.AddEdge("knows", a, b, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Order() != 2 || db.Size() != 1 {
		t.Errorf("after commit: order=%d size=%d", db.Order(), db.Size())
	}
}

func TestTransactionalUpdateRollsBack(t *testing.T) {
	db := openDB(t)
	keeper, _ := db.AddNode("P", model.Props("name", "keeper"))
	err := db.Update(func() error {
		db.AddNode("P", model.Props("name", "doomed1"))
		db.AddNode("P", model.Props("name", "doomed2"))
		db.SetNodeProp(keeper, "name", model.Str("mutated"))
		return fmt.Errorf("business rule failed")
	})
	if err == nil {
		t.Fatal("Update should surface fn's error")
	}
	if db.Order() != 1 {
		t.Errorf("order after rollback = %d", db.Order())
	}
	n, _ := db.Node(keeper)
	if v, _ := n.Props.Get("name").AsString(); v != "keeper" {
		t.Errorf("property mutation not rolled back: %v", n.Props)
	}
	// The engine stays usable.
	if _, err := db.AddNode("P", model.Props("name", "after")); err != nil {
		t.Fatal(err)
	}
	if db.Order() != 2 {
		t.Errorf("order after new insert = %d", db.Order())
	}
}

func TestTransactionalRejectsDiskMode(t *testing.T) {
	db, err := New(engine.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Update(func() error { return nil }); err == nil {
		t.Error("disk-backed Update should refuse")
	}
}

func TestSnapshotIsDeep(t *testing.T) {
	g := memgraph.New()
	a, _ := g.AddNode("N", model.Props("k", 1))
	b, _ := g.AddNode("N", nil)
	g.AddEdge("e", a, b, nil)
	snap := g.Snapshot()
	// Mutate the original; the snapshot must be unaffected.
	g.SetNodeProp(a, "k", model.Int(99))
	g.AddNode("N", nil)
	g.RemoveEdge(1)
	if snap.Order() != 2 || snap.Size() != 1 {
		t.Errorf("snapshot drifted: order=%d size=%d", snap.Order(), snap.Size())
	}
	n, _ := snap.Node(a)
	if v, _ := n.Props.Get("k").AsInt(); v != 1 {
		t.Errorf("snapshot props drifted: %v", n.Props)
	}
	// Restore brings the original back.
	g.RestoreFrom(snap)
	if g.Order() != 2 || g.Size() != 1 {
		t.Errorf("restore failed: order=%d size=%d", g.Order(), g.Size())
	}
	// ID allocation continues from the snapshot point without collisions.
	id, _ := g.AddNode("N", nil)
	if _, err := g.Node(id); err != nil {
		t.Fatal(err)
	}
}

var _ engine.Transactional = (*DB)(nil)
