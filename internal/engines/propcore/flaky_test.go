package propcore

import (
	"errors"
	"testing"

	"gdbm/internal/algo/algotest"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

// TestRemoveNodePropagatesScanError pins the fix for a swallowed-iterator
// bug: RemoveNode scans incident edges to drop their index entries before
// the storage cascade, and used to ignore the scan's error — a failed scan
// proceeded to delete the node, stranding index entries for its edges.
func TestRemoveNodePropagatesScanError(t *testing.T) {
	mg := memgraph.New()
	flaky := algotest.NewFlakyMutable(mg, 0)
	c := New(flaky)
	// Build through the unwrapped graph so setup consumes no budget.
	a, err := mg.AddNode("V", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mg.AddNode("V", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.AddEdge("e", a, b, nil); err != nil {
		t.Fatal(err)
	}

	err = c.RemoveNode(a)
	if !errors.Is(err, algotest.ErrInjected) {
		t.Fatalf("RemoveNode over a failing scan = %v, want ErrInjected", err)
	}
	if _, err := mg.Node(a); err != nil {
		t.Fatalf("node was removed despite the failed incident-edge scan: %v", err)
	}
	if _, err := mg.Edge(model.EdgeID(1)); err != nil {
		t.Fatalf("edge was removed despite the failed incident-edge scan: %v", err)
	}
}
