// Package propcore is the reusable property-graph core most engines build
// on: a mutable graph (in-memory or kv-backed) wired to an index manager, a
// constraint set, a schema and a transaction manager. Engines embed a Core
// and expose the subset of its surface their archetype supports.
package propcore

import (
	"sort"
	"sync"

	"gdbm/internal/constraint"
	"gdbm/internal/index"
	"gdbm/internal/model"
	"gdbm/internal/query/plan"
	"gdbm/internal/query/stats"
	"gdbm/internal/storage/tx"
)

// Core couples a storage graph with indexing, constraints and transactions.
type Core struct {
	g    model.MutableGraph
	Idx  *index.Manager
	Cons *constraint.Set
	Sch  *model.Schema
	TM   *tx.Manager
	mu   sync.Mutex // serializes mutations for constraint-check atomicity
}

// New builds a core over the given storage graph.
func New(g model.MutableGraph) *Core {
	return &Core{
		g:    g,
		Idx:  index.NewManager(),
		Cons: constraint.NewSet(),
		Sch:  model.NewSchema(),
		TM:   tx.NewManager(nil),
	}
}

// Graph returns the underlying storage graph.
func (c *Core) Graph() model.MutableGraph { return c.g }

// Schema returns the engine schema.
func (c *Core) Schema() *model.Schema { return c.Sch }

// --- model.Graph (reads delegate) ---

// Order implements model.Graph.
func (c *Core) Order() int { return c.g.Order() }

// Size implements model.Graph.
func (c *Core) Size() int { return c.g.Size() }

// Node implements model.Graph.
func (c *Core) Node(id model.NodeID) (model.Node, error) { return c.g.Node(id) }

// Edge implements model.Graph.
func (c *Core) Edge(id model.EdgeID) (model.Edge, error) { return c.g.Edge(id) }

// Nodes implements model.Graph.
func (c *Core) Nodes(fn func(model.Node) bool) error { return c.g.Nodes(fn) }

// Edges implements model.Graph.
func (c *Core) Edges(fn func(model.Edge) bool) error { return c.g.Edges(fn) }

// Neighbors implements model.Graph.
func (c *Core) Neighbors(id model.NodeID, dir model.Direction, fn func(model.Edge, model.Node) bool) error {
	return c.g.Neighbors(id, dir, fn)
}

// Degree implements model.Graph.
func (c *Core) Degree(id model.NodeID, dir model.Direction) (int, error) {
	return c.g.Degree(id, dir)
}

// --- mutations with constraint + index hooks ---

// AddNode implements model.MutableGraph with constraint validation and
// index maintenance.
func (c *Core) AddNode(label string, props model.Properties) (model.NodeID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := constraint.Mutation{Kind: constraint.AddNode, Node: model.Node{Label: label, Props: props}}
	if err := c.Cons.Check(c.g, m); err != nil {
		return 0, err
	}
	id, err := c.g.AddNode(label, props)
	if err != nil {
		return 0, err
	}
	c.Idx.OnNodeWrite(model.Node{ID: id, Label: label, Props: props}, "", nil)
	return id, nil
}

// AddEdge implements model.MutableGraph with validation and indexing.
func (c *Core) AddEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var fromLbl, toLbl string
	if n, err := c.g.Node(from); err == nil {
		fromLbl = n.Label
	}
	if n, err := c.g.Node(to); err == nil {
		toLbl = n.Label
	}
	m := constraint.Mutation{
		Kind:    constraint.AddEdge,
		Edge:    model.Edge{Label: label, From: from, To: to, Props: props},
		FromLbl: fromLbl,
		ToLbl:   toLbl,
	}
	if err := c.Cons.Check(c.g, m); err != nil {
		return 0, err
	}
	id, err := c.g.AddEdge(label, from, to, props)
	if err != nil {
		return 0, err
	}
	c.Idx.OnEdgeWrite(model.Edge{ID: id, Label: label, From: from, To: to, Props: props}, "", nil)
	return id, nil
}

// RemoveNode implements model.MutableGraph.
func (c *Core) RemoveNode(id model.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, err := c.g.Node(id)
	if err != nil {
		return err
	}
	if err := c.Cons.Check(c.g, constraint.Mutation{Kind: constraint.DelNode, Node: n}); err != nil {
		return err
	}
	// Incident edges cascade in the storage layer; drop their index
	// entries first. An iteration error must abort the removal: proceeding
	// would leave index entries for edges the cascade is about to delete.
	if err := c.g.Neighbors(id, model.Both, func(e model.Edge, _ model.Node) bool {
		c.Idx.OnEdgeDelete(e)
		return true
	}); err != nil {
		return err
	}
	if err := c.g.RemoveNode(id); err != nil {
		return err
	}
	c.Idx.OnNodeDelete(n)
	return nil
}

// RemoveEdge implements model.MutableGraph.
func (c *Core) RemoveEdge(id model.EdgeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, err := c.g.Edge(id)
	if err != nil {
		return err
	}
	if err := c.g.RemoveEdge(id); err != nil {
		return err
	}
	c.Idx.OnEdgeDelete(e)
	return nil
}

// SetNodeProp implements model.MutableGraph.
func (c *Core) SetNodeProp(id model.NodeID, key string, v model.Value) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	old, err := c.g.Node(id)
	if err != nil {
		return err
	}
	// Snapshot the old properties: storage layers may return records that
	// share the live map, which the mutation below would alias.
	oldProps := old.Props.Clone()
	updated := old
	updated.Props = old.Props.Clone()
	if updated.Props == nil {
		updated.Props = model.Properties{}
	}
	updated.Props[key] = v
	m := constraint.Mutation{Kind: constraint.UpdateNode, Node: updated}
	if err := c.Cons.Check(c.g, m); err != nil {
		return err
	}
	if err := c.g.SetNodeProp(id, key, v); err != nil {
		return err
	}
	c.Idx.OnNodeWrite(updated, old.Label, oldProps)
	return nil
}

// SetEdgeProp implements model.MutableGraph.
func (c *Core) SetEdgeProp(id model.EdgeID, key string, v model.Value) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	old, err := c.g.Edge(id)
	if err != nil {
		return err
	}
	oldProps := old.Props.Clone()
	if err := c.g.SetEdgeProp(id, key, v); err != nil {
		return err
	}
	updated := old
	updated.Props = oldProps.Clone()
	if updated.Props == nil {
		updated.Props = model.Properties{}
	}
	updated.Props[key] = v
	c.Idx.OnEdgeWrite(updated, old.Label, oldProps)
	return nil
}

// PlanStats implements stats.Provider by delegating to the storage graph;
// engines embedding a Core expose it by promotion, which is what routes
// their query front-ends onto the cost-based planner (plan.CompileFor).
// Stores without statistics answer (nil, nil): planner falls back to naive.
func (c *Core) PlanStats() (*stats.Stats, error) {
	if sp, ok := c.g.(stats.Provider); ok {
		return sp.PlanStats()
	}
	return nil, nil
}

// SortedNeighborIDs implements model.SortedAdjacency, serving the
// worst-case-optimal join natively from the storage graph's snapshot rows
// when available and by collect-and-sort over Neighbors otherwise.
func (c *Core) SortedNeighborIDs(id model.NodeID, dir model.Direction, label string) ([]model.NodeID, error) {
	if sa, ok := c.g.(model.SortedAdjacency); ok {
		return sa.SortedNeighborIDs(id, dir, label)
	}
	var ids []model.NodeID
	err := c.g.Neighbors(id, dir, func(e model.Edge, n model.Node) bool {
		if label == "" || e.Label == label {
			ids = append(ids, n.ID)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// IndexedNodes implements plan.Source via the index manager.
func (c *Core) IndexedNodes(label, prop string, v model.Value, fn func(model.Node) bool) (bool, error) {
	var idx index.Index
	var key model.Value
	if prop != "" {
		i, ok := c.Idx.Get(index.Nodes, prop)
		if !ok {
			return false, nil
		}
		idx, key = i, v
	} else {
		i, ok := c.Idx.Get(index.Nodes, "")
		if !ok || label == "" {
			return false, nil
		}
		idx, key = i, model.Str(label)
	}
	var innerErr error
	err := idx.Lookup(key, func(id uint64) bool {
		n, err := c.g.Node(model.NodeID(id))
		if err != nil {
			return true // index lag; skip
		}
		if label != "" && n.Label != label {
			return true
		}
		return fn(n)
	})
	if err != nil {
		return false, err
	}
	return true, innerErr
}

// LoadNode implements the harness Loader.
func (c *Core) LoadNode(label string, props model.Properties) (model.NodeID, error) {
	return c.AddNode(label, props)
}

// LoadEdge implements the harness Loader.
func (c *Core) LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	return c.AddEdge(label, from, to, props)
}

var _ plan.Source = (*Core)(nil)
var _ model.MutableGraph = (*Core)(nil)
