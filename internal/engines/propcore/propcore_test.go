package propcore

import (
	"errors"
	"testing"

	"gdbm/internal/constraint"
	"gdbm/internal/index"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

func newCore(t *testing.T) *Core {
	t.Helper()
	return New(memgraph.New())
}

func TestDelegatedReads(t *testing.T) {
	c := newCore(t)
	a, _ := c.AddNode("P", model.Props("name", "ada"))
	b, _ := c.AddNode("P", nil)
	eid, _ := c.AddEdge("knows", a, b, nil)
	if c.Order() != 2 || c.Size() != 1 {
		t.Fatalf("order=%d size=%d", c.Order(), c.Size())
	}
	if _, err := c.Node(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Edge(eid); err != nil {
		t.Fatal(err)
	}
	n := 0
	c.Nodes(func(model.Node) bool { n++; return true })
	if n != 2 {
		t.Errorf("nodes visited %d", n)
	}
	n = 0
	c.Edges(func(model.Edge) bool { n++; return true })
	if n != 1 {
		t.Errorf("edges visited %d", n)
	}
	d, _ := c.Degree(a, model.Out)
	if d != 1 {
		t.Errorf("degree = %d", d)
	}
}

func TestConstraintsVetoMutations(t *testing.T) {
	c := newCore(t)
	c.Cons.Add(constraint.Identity{Label: "P", Prop: "name"})
	if _, err := c.AddNode("P", model.Props("name", "ada")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNode("P", model.Props("name", "ada")); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("duplicate identity: %v", err)
	}
	// Referential: node with edges cannot be removed.
	c2 := newCore(t)
	c2.Cons.Add(constraint.Referential{})
	a, _ := c2.AddNode("N", nil)
	b, _ := c2.AddNode("N", nil)
	c2.AddEdge("e", a, b, nil)
	if err := c2.RemoveNode(a); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("remove connected: %v", err)
	}
}

func TestSetNodePropValidated(t *testing.T) {
	c := newCore(t)
	sch := c.Schema()
	sch.DefineNodeType(model.NodeType{Name: "P", Properties: []model.PropertyType{
		{Name: "age", Kind: model.KindInt},
	}})
	c.Cons.Add(constraint.Types{Schema: sch})
	id, err := c.AddNode("P", model.Props("age", 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetNodeProp(id, "age", model.Str("old")); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("wrong kind: %v", err)
	}
	if err := c.SetNodeProp(id, "age", model.Int(4)); err != nil {
		t.Fatal(err)
	}
	n, _ := c.Node(id)
	if v, _ := n.Props.Get("age").AsInt(); v != 4 {
		t.Errorf("age = %v", n.Props)
	}
}

func TestIndexMaintenanceThroughMutations(t *testing.T) {
	c := newCore(t)
	idx, err := c.Idx.Create(index.Nodes, "name", index.KindHash)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.AddNode("P", model.Props("name", "ada"))
	if idx.Count(model.Str("ada")) != 1 {
		t.Error("insert not indexed")
	}
	c.SetNodeProp(a, "name", model.Str("lovelace"))
	if idx.Count(model.Str("ada")) != 0 || idx.Count(model.Str("lovelace")) != 1 {
		t.Error("update not re-indexed")
	}
	c.RemoveNode(a)
	if idx.Count(model.Str("lovelace")) != 0 {
		t.Error("delete not unindexed")
	}
}

func TestEdgeIndexMaintenance(t *testing.T) {
	c := newCore(t)
	idx, _ := c.Idx.Create(index.Edges, "", index.KindHash)
	a, _ := c.AddNode("N", nil)
	b, _ := c.AddNode("N", nil)
	eid, _ := c.AddEdge("knows", a, b, nil)
	if idx.Count(model.Str("knows")) != 1 {
		t.Error("edge label not indexed")
	}
	c.RemoveEdge(eid)
	if idx.Count(model.Str("knows")) != 0 {
		t.Error("edge delete not unindexed")
	}
	// Removing a node cascades edge index entries too.
	eid2, _ := c.AddEdge("knows", a, b, nil)
	_ = eid2
	c.RemoveNode(a)
	if idx.Count(model.Str("knows")) != 0 {
		t.Error("cascade delete not unindexed")
	}
}

func TestIndexedNodesPlanSource(t *testing.T) {
	c := newCore(t)
	// No index: not handled.
	handled, err := c.IndexedNodes("P", "name", model.Str("x"), func(model.Node) bool { return true })
	if err != nil || handled {
		t.Errorf("no index: handled=%v err=%v", handled, err)
	}
	c.Idx.Create(index.Nodes, "name", index.KindHash)
	c.Idx.Create(index.Nodes, "", index.KindHash)
	c.AddNode("P", model.Props("name", "ada"))
	c.AddNode("Q", model.Props("name", "ada"))

	var got []model.Node
	handled, err = c.IndexedNodes("P", "name", model.Str("ada"), func(n model.Node) bool {
		got = append(got, n)
		return true
	})
	if err != nil || !handled {
		t.Fatalf("handled=%v err=%v", handled, err)
	}
	if len(got) != 1 || got[0].Label != "P" {
		t.Errorf("label filter through index failed: %v", got)
	}
	// Label-only lookup.
	n := 0
	handled, _ = c.IndexedNodes("Q", "", model.Null(), func(model.Node) bool { n++; return true })
	if !handled || n != 1 {
		t.Errorf("label index: handled=%v n=%d", handled, n)
	}
}

func TestLoaderSurface(t *testing.T) {
	c := newCore(t)
	a, err := c.LoadNode("N", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := c.LoadNode("N", nil)
	if _, err := c.LoadEdge("e", a, b, nil); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 1 {
		t.Errorf("size = %d", c.Size())
	}
}
