// Package sonesdb implements the Sones-archetype engine: high-level data
// abstraction concepts for graphs (hypergraph + attributed structures) with
// its own SQL-flavoured graph query language covering DDL, DML and querying
// (survey Section II, Tables II/III). Its survey profile: main memory with
// indexes, full database languages plus GUI, identity and cardinality
// constraints.
package sonesdb

import (
	"context"
	"fmt"

	"gdbm/internal/algo"
	"gdbm/internal/constraint"
	"gdbm/internal/engine"
	"gdbm/internal/engines/propcore"
	"gdbm/internal/index"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query/gsql"
	"gdbm/internal/query/plan"
)

func init() {
	engine.Register("sonesdb", "Sones", func(opts engine.Options) (engine.Engine, error) {
		return New(opts)
	})
}

// DB is the engine instance: a binary attributed graph plus a hypergraph
// side-structure for higher-order relations ("walks" and groupings).
type DB struct {
	*propcore.Core
	hyper *memgraph.Hypergraph
}

// New opens a sonesdb instance (main-memory only, per its Table I row).
func New(opts engine.Options) (*DB, error) {
	if opts.Dir != "" {
		return nil, fmt.Errorf("sonesdb: the Sones archetype is main-memory only (Table I)")
	}
	db := &DB{
		Core:  propcore.New(memgraph.New()),
		hyper: memgraph.NewHypergraph(),
	}
	if _, err := db.Core.Idx.Create(index.Nodes, "", index.KindHash); err != nil {
		return nil, err
	}
	return db, nil
}

// AddIdentity installs an identity constraint.
func (db *DB) AddIdentity(label, prop string) {
	db.Core.Cons.Add(constraint.Identity{Label: label, Prop: prop})
}

// AddCardinality bounds outgoing edges with the label per node.
func (db *DB) AddCardinality(edgeLabel string, max int) {
	db.Core.Cons.Add(constraint.Cardinality{EdgeLabel: edgeLabel, Max: max})
}

// AddGrouping creates a hyperedge grouping the member nodes — Sones'
// "complex relation" (Table IV).
func (db *DB) AddGrouping(label string, members []model.NodeID, props model.Properties) (model.EdgeID, error) {
	for _, m := range members {
		if _, err := db.Core.Node(m); err != nil {
			return 0, err
		}
	}
	// Mirror the members into the hypergraph structure.
	idmap := make([]model.NodeID, len(members))
	for i, m := range members {
		n, _ := db.Core.Node(m)
		hid, err := db.hyper.AddNode(n.Label, model.Properties{"ref": model.Int(int64(m))})
		if err != nil {
			return 0, err
		}
		idmap[i] = hid
	}
	return db.hyper.AddHyperEdge(label, idmap, props)
}

// Groupings returns the number of hyperedge groupings.
func (db *DB) Groupings() int { return db.hyper.Size() }

// LanguageName implements engine.Querier.
func (db *DB) LanguageName() string { return "gsql" }

// Query implements engine.Querier with the SQL-flavoured graph language.
func (db *DB) Query(stmt string) (*plan.Result, error) {
	return db.QueryContext(context.Background(), stmt)
}

// QueryContext implements engine.ContextQuerier: the whole dispatch is a
// "query" span on the trace in ctx, with gsql's "exec" span nested inside.
// Tracing never changes the answer.
func (db *DB) QueryContext(ctx context.Context, stmt string) (*plan.Result, error) {
	defer obs.FromContext(ctx).StartSpan("query")()
	return gsql.ExecCtx(ctx, stmt, gsqlSurface{db})
}

// QueryStream implements engine.StreamQuerier: SELECTs emit rows into sink
// as the plan produces them; the rows are identical to QueryContext's.
func (db *DB) QueryStream(ctx context.Context, stmt string, sink plan.Sink) error {
	defer obs.FromContext(ctx).StartSpan("query")()
	return gsql.ExecStreamCtx(ctx, stmt, gsqlSurface{db}, sink)
}

// gsqlSurface adapts DB to gsql.Engine.
type gsqlSurface struct{ db *DB }

func (s gsqlSurface) Schema() *model.Schema                    { return s.db.Core.Sch }
func (s gsqlSurface) Order() int                               { return s.db.Core.Order() }
func (s gsqlSurface) Size() int                                { return s.db.Core.Size() }
func (s gsqlSurface) Node(id model.NodeID) (model.Node, error) { return s.db.Core.Node(id) }
func (s gsqlSurface) Edge(id model.EdgeID) (model.Edge, error) { return s.db.Core.Edge(id) }
func (s gsqlSurface) Nodes(fn func(model.Node) bool) error     { return s.db.Core.Nodes(fn) }
func (s gsqlSurface) Edges(fn func(model.Edge) bool) error     { return s.db.Core.Edges(fn) }
func (s gsqlSurface) Neighbors(id model.NodeID, d model.Direction, fn func(model.Edge, model.Node) bool) error {
	return s.db.Core.Neighbors(id, d, fn)
}
func (s gsqlSurface) Degree(id model.NodeID, d model.Direction) (int, error) {
	return s.db.Core.Degree(id, d)
}
func (s gsqlSurface) IndexedNodes(label, prop string, v model.Value, fn func(model.Node) bool) (bool, error) {
	return s.db.Core.IndexedNodes(label, prop, v, fn)
}
func (s gsqlSurface) AddNode(label string, props model.Properties) (model.NodeID, error) {
	return s.db.Core.AddNode(label, props)
}
func (s gsqlSurface) AddEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	return s.db.Core.AddEdge(label, from, to, props)
}
func (s gsqlSurface) RemoveNode(id model.NodeID) error { return s.db.Core.RemoveNode(id) }
func (s gsqlSurface) RemoveEdge(id model.EdgeID) error { return s.db.Core.RemoveEdge(id) }
func (s gsqlSurface) SetNodeProp(id model.NodeID, key string, v model.Value) error {
	return s.db.Core.SetNodeProp(id, key, v)
}

// Name implements engine.Engine.
func (db *DB) Name() string { return "sonesdb" }

// SurveyRow implements engine.Engine.
func (db *DB) SurveyRow() string { return "Sones" }

// Features implements engine.Engine.
func (db *DB) Features() engine.Features {
	return engine.Features{
		MainMemory: engine.Yes, Indexes: engine.Yes,
		DDL: engine.Yes, DML: engine.Yes,
		QueryLanguageShipped: engine.Yes, QueryLanguage: engine.Yes,
		API: engine.Yes, GUI: engine.Yes, GraphicalQL: engine.Yes,
		Hypergraphs: engine.Yes, AttributedGraphs: engine.Yes,
		NodeLabeled: engine.Yes, NodeAttributed: engine.Yes,
		Directed: engine.Yes, EdgeLabeled: engine.Yes, EdgeAttributed: engine.Yes,
		ValueNodes: engine.Yes, SimpleRelations: engine.Yes, ComplexRelations: engine.Yes,
		Retrieval: engine.Yes, Analysis: engine.Yes,
		NodeEdgeIdentity: engine.Yes, CardinalityChecking: engine.Yes,
	}
}

// Essentials implements engine.Engine: per the Table VII row, the Sones
// surface composes node/edge adjacency and summarization only.
func (db *DB) Essentials() engine.Essentials {
	return engine.Essentials{
		NodeAdjacency: func(a, b model.NodeID) (bool, error) {
			return algo.Adjacent(db.Core, a, b, model.Both)
		},
		EdgeAdjacency: func(e1, e2 model.EdgeID) (bool, error) {
			return algo.EdgesAdjacent(db.Core, e1, e2)
		},
		Summarization: func(kind algo.AggKind, label, prop string) (model.Value, error) {
			return algo.AggregateNodeProp(db.Core, label, prop, kind)
		},
	}
}

// Close implements engine.Engine.
func (db *DB) Close() error { return nil }

var (
	_ engine.Engine         = (*DB)(nil)
	_ engine.GraphAPI       = (*DB)(nil)
	_ engine.Querier        = (*DB)(nil)
	_ engine.ContextQuerier = (*DB)(nil)
	_ engine.SchemaHolder   = (*DB)(nil)
	_ engine.Loader         = (*DB)(nil)
)
