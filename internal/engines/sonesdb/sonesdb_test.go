package sonesdb

import (
	"errors"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/model"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestMainMemoryOnly(t *testing.T) {
	if _, err := New(engine.Options{Dir: t.TempDir()}); err == nil {
		t.Error("sonesdb must reject a data directory (main-memory only)")
	}
}

func TestFullLanguageSurface(t *testing.T) {
	db := openDB(t)
	stmts := []string{
		`CREATE VERTEX TYPE Person (name STRING REQUIRED UNIQUE, age INT)`,
		`CREATE EDGE TYPE knows FROM Person TO Person`,
		`INSERT VERTEX Person (name = 'ada', age = 36)`,
		`INSERT VERTEX Person (name = 'bob', age = 40)`,
		`INSERT EDGE knows FROM 1 TO 2`,
	}
	for _, s := range stmts {
		if _, err := db.Query(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	res, err := db.Query(`SELECT name FROM Person WHERE age > 30 ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if db.LanguageName() != "gsql" {
		t.Errorf("language = %s", db.LanguageName())
	}
}

func TestIdentityAndCardinality(t *testing.T) {
	db := openDB(t)
	db.AddIdentity("P", "name")
	db.AddCardinality("owns", 1)
	a, err := db.AddNode("P", model.Props("name", "ada"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddNode("P", model.Props("name", "ada")); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("duplicate identity: %v", err)
	}
	b, _ := db.AddNode("P", model.Props("name", "bob"))
	c, _ := db.AddNode("P", model.Props("name", "cam"))
	if _, err := db.AddEdge("owns", a, b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddEdge("owns", a, c, nil); !errors.Is(err, model.ErrConstraint) {
		t.Errorf("cardinality overflow: %v", err)
	}
}

func TestGroupingsAreComplexRelations(t *testing.T) {
	db := openDB(t)
	a, _ := db.AddNode("P", model.Props("name", "a"))
	b, _ := db.AddNode("P", model.Props("name", "b"))
	c, _ := db.AddNode("P", model.Props("name", "c"))
	if _, err := db.AddGrouping("team", []model.NodeID{a, b, c}, model.Props("name", "core")); err != nil {
		t.Fatal(err)
	}
	if db.Groupings() != 1 {
		t.Errorf("groupings = %d", db.Groupings())
	}
	if _, err := db.AddGrouping("team", []model.NodeID{a, 999}, nil); err == nil {
		t.Error("grouping with missing member should fail")
	}
}

func TestEssentialsProfile(t *testing.T) {
	db := openDB(t)
	es := db.Essentials()
	if es.NodeAdjacency == nil || es.Summarization == nil {
		t.Error("adjacency and summarization must be exposed")
	}
	if es.KNeighborhood != nil || es.ShortestPath != nil || es.FixedLengthPaths != nil {
		t.Error("Sones' Table VII row exposes only adjacency and summarization")
	}
}
