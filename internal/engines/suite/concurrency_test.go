package suite

import (
	"fmt"
	"sync"
	"testing"

	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/model"
)

// Engines must tolerate concurrent readers alongside a writer — the survey
// counts a transaction/concurrency story among the qualifying components of
// a graph *database* (Section II). Run with -race in CI.
func TestConcurrentReadersAndWriter(t *testing.T) {
	for name, e := range openAll(t) {
		t.Run(name, func(t *testing.T) {
			l, ok := e.(engine.Loader)
			if !ok {
				t.Skip("no loader")
			}
			seedIDs := make([]model.NodeID, 0, 50)
			for i := 0; i < 50; i++ {
				id, err := l.LoadNode("Thing", model.Props("i", i))
				if err != nil {
					t.Fatal(err)
				}
				seedIDs = append(seedIDs, id)
			}
			for i := 0; i+1 < 50; i++ {
				if _, err := l.LoadEdge("next", seedIDs[i], seedIDs[i+1], nil); err != nil {
					t.Fatal(err)
				}
			}
			es := e.Essentials()
			var wg sync.WaitGroup
			// One writer keeps inserting.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					l.LoadNode("Thing", model.Props("i", 1000+i))
				}
			}()
			// Several readers run essential queries concurrently.
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < 30; i++ {
						if es.NodeAdjacency != nil {
							es.NodeAdjacency(seedIDs[i%50], seedIDs[(i+1)%50])
						}
						if es.KNeighborhood != nil {
							es.KNeighborhood(seedIDs[(i*7)%50], 2)
						}
						if es.Summarization != nil {
							es.Summarization(algo.AggCount, "Thing", "")
						}
					}
				}(r)
			}
			wg.Wait()
			// The graph is consistent afterwards.
			if es.Summarization != nil {
				v, err := es.Summarization(algo.AggCount, "Thing", "")
				if err != nil {
					t.Fatal(err)
				}
				if n, _ := v.AsInt(); n < 150 {
					t.Errorf("count after concurrent load = %v", v)
				}
			}
		})
	}
}

// Querier engines must serve concurrent query streams.
func TestConcurrentQueries(t *testing.T) {
	e, err := engine.Open("neograph", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	q := e.(engine.Querier)
	if _, err := q.Query(`CREATE (a:P {name: 'ada'})`); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if w%2 == 0 {
					if _, err := q.Query(fmt.Sprintf(`CREATE (x:P {name: 'w%d-%d'})`, w, i)); err != nil {
						errs <- err
						return
					}
				} else {
					if _, err := q.Query(`MATCH (p:P) RETURN count(*) AS n`); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	res, err := q.Query(`MATCH (p:P) RETURN count(*) AS n`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Equal(model.Int(101)) {
		t.Errorf("final count = %v", res.Rows[0][0])
	}
}
