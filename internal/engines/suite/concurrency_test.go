package suite

import (
	"fmt"
	"sync"
	"testing"

	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/engine/capability"
	"gdbm/internal/kvgraph"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/storage/kv"
)

// Engines must tolerate concurrent readers alongside a writer — the survey
// counts a transaction/concurrency story among the qualifying components of
// a graph *database* (Section II). Run with -race in CI.
func TestConcurrentReadersAndWriter(t *testing.T) {
	for name, e := range openAll(t) {
		t.Run(name, func(t *testing.T) {
			l, ok := e.(engine.Loader)
			if !ok {
				t.Skip("no loader")
			}
			seedIDs := make([]model.NodeID, 0, 50)
			for i := 0; i < 50; i++ {
				id, err := l.LoadNode("Thing", model.Props("i", i))
				if err != nil {
					t.Fatal(err)
				}
				seedIDs = append(seedIDs, id)
			}
			for i := 0; i+1 < 50; i++ {
				if _, err := l.LoadEdge("next", seedIDs[i], seedIDs[i+1], nil); err != nil {
					t.Fatal(err)
				}
			}
			es := e.Essentials()
			var wg sync.WaitGroup
			// One writer keeps inserting.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					l.LoadNode("Thing", model.Props("i", 1000+i))
				}
			}()
			// Several readers run essential queries concurrently.
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < 30; i++ {
						if es.NodeAdjacency != nil {
							es.NodeAdjacency(seedIDs[i%50], seedIDs[(i+1)%50])
						}
						if es.KNeighborhood != nil {
							es.KNeighborhood(seedIDs[(i*7)%50], 2)
						}
						if es.Summarization != nil {
							es.Summarization(algo.AggCount, "Thing", "")
						}
					}
				}(r)
			}
			wg.Wait()
			// The graph is consistent afterwards.
			if es.Summarization != nil {
				v, err := es.Summarization(algo.AggCount, "Thing", "")
				if err != nil {
					t.Fatal(err)
				}
				if n, _ := v.AsInt(); n < 150 {
					t.Errorf("count after concurrent load = %v", v)
				}
			}
		})
	}
}

// Querier engines must serve concurrent query streams.
func TestConcurrentQueries(t *testing.T) {
	e, err := engine.Open("neograph", engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	q := e.(engine.Querier)
	if _, err := q.Query(`CREATE (a:P {name: 'ada'})`); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if w%2 == 0 {
					if _, err := q.Query(fmt.Sprintf(`CREATE (x:P {name: 'w%d-%d'})`, w, i)); err != nil {
						errs <- err
						return
					}
				} else {
					if _, err := q.Query(`MATCH (p:P) RETURN count(*) AS n`); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	res, err := q.Query(`MATCH (p:P) RETURN count(*) AS n`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Equal(model.Int(101)) {
		t.Errorf("final count = %v", res.Rows[0][0])
	}
}

// The tests below are minimal reproducers for the data races fixed in the
// concurrency sweep. Each fails under `go test -race` against the pre-fix
// code.

// Race: memgraph.SetNodeProp/SetEdgeProp used to mutate the record's
// property map in place. Readers receive shallow record copies that share
// that map, so a reader iterating Props after its read-lock was released
// raced the writer. The fix is copy-on-write: mutate a clone, swap the
// pointer.
func TestMemgraphPropWritesDoNotRaceRecordReaders(t *testing.T) {
	g := memgraph.New()
	n, _ := g.AddNode("P", model.Properties{"w": model.Int(0)})
	m, _ := g.AddNode("P", nil)
	e, _ := g.AddEdge("a", n, m, model.Properties{"w": model.Int(0)})

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			g.SetNodeProp(n, fmt.Sprintf("k%d", i%7), model.Int(int64(i)))
			g.SetEdgeProp(e, fmt.Sprintf("k%d", i%7), model.Int(int64(i)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			nd, err := g.Node(n)
			if err != nil {
				t.Error(err)
				return
			}
			for range nd.Props { // iterate the map shared with the record
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			ed, err := g.Edge(e)
			if err != nil {
				t.Error(err)
				return
			}
			for range ed.Props {
			}
		}
	}()
	wg.Wait()
}

// Race: kvgraph mutations are multi-key read-modify-write sequences over
// the store (ID counter, record, adjacency lists). Two concurrent AddNode
// calls could read the same next-ID and collide. The fix serializes
// mutations behind a graph-level mutex.
func TestKVGraphConcurrentMutationsKeepIDsUnique(t *testing.T) {
	g := kvgraph.New(kv.NewMemory())
	const workers, each = 8, 50
	ids := make([][]model.NodeID, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id, err := g.AddNode("P", model.Props("w", w))
				if err != nil {
					t.Error(err)
					return
				}
				ids[w] = append(ids[w], id)
			}
		}(w)
	}
	wg.Wait()
	seen := map[model.NodeID]bool{}
	for _, part := range ids {
		for _, id := range part {
			if seen[id] {
				t.Fatalf("duplicate node id %d handed out concurrently", id)
			}
			seen[id] = true
		}
	}
	if g.Order() != workers*each {
		t.Fatalf("Order() = %d, want %d", g.Order(), workers*each)
	}

	// Concurrent edge insertion over the shared adjacency keys.
	all := make([]model.NodeID, 0, len(seen))
	for id := range seen {
		all = append(all, id)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				from := all[(w*each+i)%len(all)]
				to := all[(w*each+i*7+1)%len(all)]
				if _, err := g.AddEdge("a", from, to, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if g.Size() != workers*each {
		t.Fatalf("Size() = %d, want %d", g.Size(), workers*each)
	}
}

// Every engine whose profile allows Concurrent must serve snapshot readers
// while a writer mutates: the Essentials queries route through
// AcquireSnapshot, so this drives the whole read-concurrency contract.
func TestConcurrentEnginesServeReadersUnderWrites(t *testing.T) {
	for _, name := range engine.Names() {
		prof, ok := capability.ForEngine(name)
		if !ok || !prof.Allows(capability.Concurrent) {
			continue
		}
		t.Run(name, func(t *testing.T) {
			opts := engine.Options{}
			if capability.NeedsDir(name) {
				opts.Dir = t.TempDir()
			}
			e, err := engine.Open(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			ids := seed(t, e)
			api, hasAPI := e.(engine.GraphAPI)
			con := e.(engine.Concurrent)

			var wg sync.WaitGroup
			wg.Add(3)
			go func() { // writer: new nodes plus property churn
				defer wg.Done()
				l := e.(engine.Loader)
				for i := 0; i < 200; i++ {
					if _, err := l.LoadNode("Thing", model.Props("rank", i)); err != nil {
						t.Error(err)
						return
					}
					if hasAPI {
						if err := api.SetNodeProp(ids[0], "rank", model.Int(int64(i))); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}()
			go func() { // reader: k-neighborhood via snapshot
				defer wg.Done()
				kn := e.Essentials().KNeighborhood
				if kn == nil {
					return
				}
				for i := 0; i < 200; i++ {
					if _, err := kn(ids[4], 2); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			go func() { // reader: raw snapshot scans
				defer wg.Done()
				for i := 0; i < 200; i++ {
					g, release, err := con.AcquireSnapshot()
					if err != nil {
						t.Error(err)
						return
					}
					err = g.Nodes(func(n model.Node) bool {
						for range n.Props {
						}
						return true
					})
					release()
					if err != nil {
						t.Error(err)
						return
					}
				}
			}()
			wg.Wait()
		})
	}
}
