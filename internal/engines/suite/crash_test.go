package suite

import (
	"fmt"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/model"
	"gdbm/internal/storage/crashtest"
	"gdbm/internal/storage/vfs"
)

// crashEngines are the disk-backed engines run through the crash-recovery
// harness. All three persist through the same kv.Disk → pager stack but
// reach it through different surfaces (propcore, kvgraph embedding, and a
// language-fronted store).
var crashEngines = []string{"neograph", "vertexkv", "gstore"}

func crashVal(op int) string { return fmt.Sprintf("v-%d", op) }

// engineInst adapts an engine to crashtest.Instance: op i is one loaded
// node carrying both its op number and a derived value, committed by
// Flush. A failed flush is retryable (crashtest.Flusher), which is what
// drags the pager's dirty-until-synced bookkeeping into every scenario.
type engineInst struct {
	eng engine.Engine
}

func (e *engineInst) Commit(op int) error {
	ld, ok := e.eng.(engine.Loader)
	if !ok {
		return fmt.Errorf("%s: no Loader surface", e.eng.Name())
	}
	props := model.Props("op", op, "val", crashVal(op))
	if _, err := ld.LoadNode("Crash", props); err != nil {
		return err
	}
	if err := e.Flush(); err != nil {
		return fmt.Errorf("%w: %v", crashtest.ErrAppliedNotDurable, err)
	}
	return nil
}

func (e *engineInst) Flush() error {
	return e.eng.(engine.Persistent).Flush()
}

// nodeIter is the scan surface Visible needs; engines expose it either
// directly or through their graph accessor.
type nodeIter interface {
	Nodes(fn func(model.Node) bool) error
}

func (e *engineInst) Visible() (map[int]bool, error) {
	var it nodeIter
	switch src := e.eng.(type) {
	case nodeIter:
		it = src
	case interface{ Graph() model.MutableGraph }:
		it = src.Graph()
	default:
		return nil, fmt.Errorf("%s: no node scan surface", e.eng.Name())
	}
	vis := map[int]bool{}
	var inner error
	err := it.Nodes(func(n model.Node) bool {
		if n.Label != "Crash" {
			return true
		}
		op, ok := n.Props.Get("op").AsInt()
		if !ok {
			inner = fmt.Errorf("node %d: op property missing", n.ID)
			return false
		}
		val, ok := n.Props.Get("val").AsString()
		if !ok || val != crashVal(int(op)) {
			inner = fmt.Errorf("node %d: op %d carries wrong value %q", n.ID, op, val)
			return false
		}
		if vis[int(op)] {
			inner = fmt.Errorf("op %d visible twice", op)
			return false
		}
		vis[int(op)] = true
		return true
	})
	if err != nil {
		return nil, err
	}
	if inner != nil {
		return nil, inner
	}
	return vis, nil
}

func (e *engineInst) Close() error { return e.eng.Close() }

// TestEngineCrashRecovery runs each disk-backed engine through the crash
// harness: a power cut before every durability operation, failed and
// sticky-failed fsyncs (with retried flushes), corruption of every
// recovery read, and a second crash inside every recovery. Torn page
// writes are excluded: the engines overwrite pages in place, which
// detects torn pages by checksum but cannot repair them (see DESIGN.md,
// durability contract).
func TestEngineCrashRecovery(t *testing.T) {
	for _, name := range crashEngines {
		t.Run(name, func(t *testing.T) {
			rep, err := crashtest.Run(crashtest.Config{
				Open: func(fs *vfs.FaultFS) (crashtest.Instance, error) {
					eng, err := engine.Open(name, engine.Options{Dir: "crash", PoolPages: 4, FS: fs})
					if err != nil {
						return nil, err
					}
					return &engineInst{eng: eng}, nil
				},
				Ops:          4,
				SyncFaults:   true,
				ReadFaults:   true,
				DoubleFaults: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range rep.Violations {
				if i == 5 {
					t.Errorf("... and %d more", len(rep.Violations)-5)
					break
				}
				t.Errorf("violation: %s", v)
			}
			if len(rep.Violations) > 0 {
				t.Fatalf("%s: %d violations over %d scenarios", name, len(rep.Violations), rep.Scenarios)
			}
			t.Logf("%s: %d scenarios, no violations", name, rep.Scenarios)
		})
	}
}
