package suite

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/engine/capability"
	"gdbm/internal/model"
)

// TestEssentialsCtxHonorsCancellation is the dynamic half of the ctxflow
// kernel rule: every Concurrent engine exposes EssentialsCtx, and a
// cancelled caller context must reach the parallel kernels behind
// KNeighborhood and Summarization instead of being severed by a fresh
// background root at the dispatch site (the pre-fix bug).
func TestEssentialsCtxHonorsCancellation(t *testing.T) {
	for _, name := range engine.Names() {
		prof, ok := capability.ForEngine(name)
		if !ok || !prof.Allows(capability.Concurrent) {
			continue
		}
		t.Run(name, func(t *testing.T) {
			opts := engine.Options{}
			if capability.NeedsDir(name) {
				opts.Dir = t.TempDir()
			}
			e, err := engine.Open(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			ids := seed(t, e)
			ce, ok := e.(engine.ContextEssentials)
			if !ok {
				t.Fatalf("%s allows Concurrent but does not implement engine.ContextEssentials", name)
			}

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			es := ce.EssentialsCtx(ctx)
			if es.KNeighborhood != nil {
				if _, err := es.KNeighborhood(ids[0], 2); !errors.Is(err, context.Canceled) {
					t.Errorf("KNeighborhood under cancelled ctx: err = %v, want context.Canceled", err)
				}
			}
			// The triple engine's labeled summarization is a sequential
			// typed-subject scan; its parallel kernel path is the
			// unlabeled term aggregate.
			summLabel := "Thing"
			if name == "triplestore" {
				summLabel = ""
			}
			if es.Summarization != nil {
				if _, err := es.Summarization(algo.AggCount, summLabel, ""); !errors.Is(err, context.Canceled) {
					t.Errorf("Summarization under cancelled ctx: err = %v, want context.Canceled", err)
				}
			}

			// The cancelled run must not have wedged the engine: a live
			// context still answers, and with the right values.
			live := ce.EssentialsCtx(context.Background())
			if live.Summarization != nil {
				v, err := live.Summarization(algo.AggCount, summLabel, "")
				if err != nil {
					t.Fatalf("Summarization after cancelled run: %v", err)
				}
				if n, _ := v.AsInt(); n < 5 {
					t.Errorf("count after cancelled run = %v", v)
				}
			}
		})
	}
}

// seedChain loads a chain graph of n nodes for the snapshot-cost tests.
func seedChain(tb testing.TB, e engine.Engine, n int) {
	tb.Helper()
	l, ok := e.(engine.Loader)
	if !ok {
		tb.Fatalf("%s does not implement Loader", e.Name())
	}
	ids := make([]model.NodeID, n)
	for i := 0; i < n; i++ {
		id, err := l.LoadNode("Thing", model.Props("rank", i))
		if err != nil {
			tb.Fatal(err)
		}
		ids[i] = id
	}
	for i := 0; i+1 < n; i++ {
		if _, err := l.LoadEdge("next", ids[i], ids[i+1], nil); err != nil {
			tb.Fatal(err)
		}
	}
}

// acquireWarm performs one acquire/release cycle so the store's versioned
// view is built; subsequent acquisitions take the O(1) pin fast path.
func acquireWarm(tb testing.TB, con engine.Concurrent) {
	tb.Helper()
	g, release, err := con.AcquireSnapshot()
	if err != nil {
		tb.Fatal(err)
	}
	if g.Order() == 0 {
		tb.Fatal("warm snapshot is empty")
	}
	release()
}

// TestAcquireSnapshotAllocationsFlat pins the O(1) contract: once the
// versioned view is built, acquiring a snapshot allocates a small constant
// amount regardless of graph size. The deep-copy implementation this
// replaced allocated O(order+size) per acquisition.
func TestAcquireSnapshotAllocationsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a 100k-node graph")
	}
	allocsAt := func(n int) float64 {
		e, err := engine.Open("neograph", engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		seedChain(t, e, n)
		con := e.(engine.Concurrent)
		acquireWarm(t, con)
		return testing.AllocsPerRun(50, func() {
			_, release, err := con.AcquireSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			release()
		})
	}
	small := allocsAt(1_000)
	mid := allocsAt(10_000)
	large := allocsAt(100_000)
	t.Logf("allocs per warm AcquireSnapshot: 1k=%.0f 10k=%.0f 100k=%.0f", small, mid, large)
	if small > 16 {
		t.Errorf("warm AcquireSnapshot allocates %.0f objects on a 1k graph; want a small constant", small)
	}
	if mid > small || large > small {
		t.Errorf("AcquireSnapshot allocations grow with graph size: 1k=%.0f 10k=%.0f 100k=%.0f", small, mid, large)
	}
}

// BenchmarkAcquireSnapshot measures the warm acquire/release cycle at
// three graph sizes. Flat ns/op and B/op across sizes is the O(1) MVCC
// claim; regressions back toward O(n) deep copying show up as ns/op
// scaling with n.
func BenchmarkAcquireSnapshot(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			e, err := engine.Open("neograph", engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			seedChain(b, e, n)
			con := e.(engine.Concurrent)
			acquireWarm(b, con)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, release, err := con.AcquireSnapshot()
				if err != nil {
					b.Fatal(err)
				}
				release()
			}
		})
	}
}
