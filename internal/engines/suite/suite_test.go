// Package suite runs the cross-engine conformance tests: every registered
// engine is seeded through the common Loader surface and its declared
// capabilities are exercised.
package suite

import (
	"errors"
	"testing"

	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/engine/capability"
	"gdbm/internal/model"

	_ "gdbm/internal/engines/bitmapdb"
	_ "gdbm/internal/engines/filamentdb"
	_ "gdbm/internal/engines/gstore"
	_ "gdbm/internal/engines/hyperdb"
	_ "gdbm/internal/engines/infinigraph"
	_ "gdbm/internal/engines/neograph"
	_ "gdbm/internal/engines/sonesdb"
	_ "gdbm/internal/engines/triplestore"
	_ "gdbm/internal/engines/vertexkv"
)

// openAll opens every registered engine, giving disk-requiring archetypes a
// temp dir.
func openAll(t *testing.T) map[string]engine.Engine {
	t.Helper()
	out := map[string]engine.Engine{}
	for _, name := range engine.Names() {
		opts := engine.Options{}
		if capability.NeedsDir(name) {
			opts.Dir = t.TempDir()
		}
		e, err := engine.Open(name, opts)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		t.Cleanup(func() { e.Close() })
		out[name] = e
	}
	return out
}

// seed loads the probe graph: a chain n0->n1->n2->n3 plus a hub.
// Returns the per-engine node ids.
func seed(t *testing.T, e engine.Engine) []model.NodeID {
	t.Helper()
	l, ok := e.(engine.Loader)
	if !ok {
		t.Fatalf("%s does not implement Loader", e.Name())
	}
	ids := make([]model.NodeID, 5)
	names := []string{"n0", "n1", "n2", "n3", "hub"}
	for i, nm := range names {
		id, err := l.LoadNode("Thing", model.Props("name", nm, "rank", i))
		if err != nil {
			t.Fatalf("%s LoadNode: %v", e.Name(), err)
		}
		ids[i] = id
	}
	for i := 0; i < 3; i++ {
		if _, err := l.LoadEdge("next", ids[i], ids[i+1], nil); err != nil {
			t.Fatalf("%s LoadEdge: %v", e.Name(), err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := l.LoadEdge("spoke", ids[4], ids[i], nil); err != nil {
			t.Fatalf("%s LoadEdge hub: %v", e.Name(), err)
		}
	}
	return ids
}

func TestAllEnginesRegistered(t *testing.T) {
	names := engine.Names()
	if len(names) != 9 {
		t.Fatalf("registered engines = %v", names)
	}
	rows := map[string]bool{}
	for _, n := range names {
		e, err := engine.Open(n, engine.Options{Dir: t.TempDir()})
		if err != nil {
			// sonesdb rejects Dir; retry memory-only.
			e, err = engine.Open(n, engine.Options{})
			if err != nil {
				t.Fatalf("open %s: %v", n, err)
			}
		}
		rows[e.SurveyRow()] = true
		e.Close()
	}
	for _, want := range []string{"AllegroGraph", "DEX", "Filament", "G-Store", "HyperGraphDB", "InfiniteGraph", "Neo4j", "Sones", "VertexDB"} {
		if !rows[want] {
			t.Errorf("no engine reproduces survey row %q", want)
		}
	}
	if _, err := engine.Open("nope", engine.Options{}); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("unknown engine: %v", err)
	}
}

func TestEssentialsMatchDeclaredProfile(t *testing.T) {
	// Table VII profiles: which essential-query classes each archetype's
	// surface must (and must not) expose.
	type profile struct {
		adj, khood, fixed, shortest, summ bool
	}
	want := map[string]profile{
		"AllegroGraph":  {adj: true, khood: true, summ: true},
		"DEX":           {adj: true, khood: true, fixed: true, shortest: true, summ: true},
		"Filament":      {adj: true, khood: true, summ: true},
		"G-Store":       {adj: true, khood: true, fixed: true, shortest: true, summ: true},
		"HyperGraphDB":  {adj: true, summ: true},
		"InfiniteGraph": {adj: true, khood: true, fixed: true, shortest: true, summ: true},
		"Neo4j":         {adj: true, khood: true, fixed: true, shortest: true, summ: true},
		"Sones":         {adj: true, summ: true},
		"VertexDB":      {adj: true, khood: true, fixed: true, summ: true},
	}
	for name, e := range openAll(t) {
		p, ok := want[e.SurveyRow()]
		if !ok {
			t.Fatalf("%s: unknown row %s", name, e.SurveyRow())
		}
		es := e.Essentials()
		check := func(what string, got, want bool) {
			if got != want {
				t.Errorf("%s: %s exposed=%v, profile says %v", name, what, got, want)
			}
		}
		check("NodeAdjacency", es.NodeAdjacency != nil, p.adj)
		check("KNeighborhood", es.KNeighborhood != nil, p.khood)
		check("FixedLengthPaths", es.FixedLengthPaths != nil, p.fixed)
		check("ShortestPath", es.ShortestPath != nil, p.shortest)
		check("Summarization", es.Summarization != nil, p.summ)
		// Table VII: no surveyed system composes regular simple paths or
		// pattern matching.
		check("RegularSimplePaths", es.RegularSimplePaths != nil, false)
		check("PatternMatching", es.PatternMatching != nil, false)
	}
}

func TestEssentialsExecuteCorrectly(t *testing.T) {
	for name, e := range openAll(t) {
		t.Run(name, func(t *testing.T) {
			ids := seed(t, e)
			es := e.Essentials()
			if es.NodeAdjacency != nil {
				ok, err := es.NodeAdjacency(ids[0], ids[1])
				if err != nil || !ok {
					t.Errorf("adjacency(n0,n1) = %v, %v", ok, err)
				}
				ok, err = es.NodeAdjacency(ids[0], ids[3])
				if err != nil || ok {
					t.Errorf("adjacency(n0,n3) = %v, %v", ok, err)
				}
			}
			if es.KNeighborhood != nil {
				nb, err := es.KNeighborhood(ids[0], 1)
				if err != nil {
					t.Fatalf("khood: %v", err)
				}
				set := map[model.NodeID]bool{}
				for _, id := range nb {
					set[id] = true
				}
				// n0 touches n1 and hub. The triple engine also counts the
				// type/rank term nodes among the neighbors — correct for
				// its model — so assert containment, and exact size for
				// property-graph engines.
				if !set[ids[1]] || !set[ids[4]] {
					t.Errorf("khood(n0,1) = %v, missing n1/hub", nb)
				}
				if name != "triplestore" && len(nb) != 2 {
					t.Errorf("khood(n0,1) = %v", nb)
				}
			}
			if es.FixedLengthPaths != nil {
				paths, err := es.FixedLengthPaths(ids[0], ids[2], 2)
				if err != nil || len(paths) != 1 {
					t.Errorf("fixed paths = %v, %v", paths, err)
				}
			}
			if es.ShortestPath != nil {
				p, err := es.ShortestPath(ids[0], ids[3])
				if err != nil || p.Len() != 3 {
					t.Errorf("shortest = %v, %v", p, err)
				}
			}
			if es.Summarization != nil {
				v, err := es.Summarization(algo.AggCount, "Thing", "")
				if err != nil {
					t.Fatalf("summarize: %v", err)
				}
				if n, _ := v.AsInt(); n != 5 {
					t.Errorf("count Thing = %v", v)
				}
			}
		})
	}
}

func TestPersistence(t *testing.T) {
	// Engines claiming external/backend storage must survive reopening.
	for _, name := range []string{"neograph", "bitmapdb", "vertexkv", "filamentdb", "gstore", "triplestore"} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			e, err := engine.Open(name, engine.Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			l := e.(engine.Loader)
			if _, err := l.LoadNode("P", model.Props("name", "keep")); err != nil {
				t.Fatal(err)
			}
			if p, ok := e.(engine.Persistent); ok {
				if err := p.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}

			e2, err := engine.Open(name, engine.Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			es := e2.Essentials()
			v, err := es.Summarization(algo.AggCount, "P", "")
			if name == "triplestore" {
				// Triple engines store the label as a statement, not a
				// node label; count terms instead.
				v, err = es.Summarization(algo.AggCount, "", "")
				if err != nil {
					t.Fatal(err)
				}
				if n, _ := v.AsInt(); n < 2 { // term "keep" + type term "P"
					t.Errorf("terms after reopen = %v", v)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if n, _ := v.AsInt(); n != 1 {
				t.Errorf("count after reopen = %v", v)
			}
		})
	}
}
