package triplestore

import (
	"errors"
	"testing"

	"gdbm/internal/algo/algotest"
	"gdbm/internal/engine"
	"gdbm/internal/engines/propcore"
	"gdbm/internal/model"
)

// TestAddTriplePropagatesScanError pins the fix for a swallowed-iterator
// bug: AddTriple deduplicates by scanning the subject's outgoing edges and
// used to ignore the scan's error, so a failed scan fell through to AddEdge
// and could assert a statement twice.
func TestAddTriplePropagatesScanError(t *testing.T) {
	db, err := New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.AddTriple("a", "p", "b"); err != nil {
		t.Fatal(err)
	}
	before := db.Count()

	// Re-core the engine over a read-failing wrapper of the same graph. The
	// term dictionary is already warm, so the next AddTriple's first graph
	// read is the dedup scan.
	mg := db.Core.Graph()
	db.Core = propcore.New(algotest.NewFlakyMutable(mg.(model.MutableGraph), 0))

	err = db.AddTriple("a", "p", "b")
	if !errors.Is(err, algotest.ErrInjected) {
		t.Fatalf("AddTriple over a failing dedup scan = %v, want ErrInjected", err)
	}
	if got := db.Count(); got != before {
		t.Fatalf("statement count changed across a failed dedup scan: %d -> %d", before, got)
	}
}
