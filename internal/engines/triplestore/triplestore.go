// Package triplestore implements the AllegroGraph-archetype engine: a graph
// database oriented to the Semantic Web standards. Data is a set of
// subject-predicate-object statements; every term (resource or literal) is
// a value node carrying its lexical form, and each statement is a directed
// edge labelled with the predicate. Its survey profile: main + external
// memory with indexes, full database languages plus GUI, a *partial* query
// language (BGP matching, "not oriented to querying the graph structure"),
// reasoning, and analysis functions.
package triplestore

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"

	"gdbm/internal/algo"
	"gdbm/internal/algo/par"
	"gdbm/internal/cache"
	"gdbm/internal/engine"
	"gdbm/internal/engines/propcore"
	"gdbm/internal/index"
	"gdbm/internal/kvgraph"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query/plan"
	"gdbm/internal/query/sparqlish"
	"gdbm/internal/reason"
	"gdbm/internal/storage/kv"
)

func init() {
	engine.Register("triplestore", "AllegroGraph", func(opts engine.Options) (engine.Engine, error) {
		return New(opts)
	})
}

// DB is the engine instance.
type DB struct {
	*propcore.Core
	mu      sync.Mutex
	terms   map[string]model.NodeID // lexical form -> term node
	rules   []reason.Rule
	disk    *kv.Disk
	kg      *kvgraph.Graph // non-nil in the disk-backed configuration
	results *cache.Results // nil when CacheBytes is zero or main-memory
}

// New opens a triplestore. A positive Options.CacheBytes splits the budget
// across the page, adjacency and query-result caches (disk-backed
// configuration only).
func New(opts engine.Options) (*DB, error) {
	db := &DB{terms: make(map[string]model.NodeID), rules: reason.RDFS()}
	if opts.Dir != "" {
		pageB, adjB, resB := engine.SplitCacheBudget(opts.CacheBytes)
		d, err := kv.OpenDiskWith(filepath.Join(opts.Dir, "triples.pg"), kv.DiskOptions{
			PoolPages: opts.PoolPages, CacheBytes: pageB, FS: opts.FS, Metrics: opts.Metrics,
		})
		if err != nil {
			return nil, err
		}
		db.disk = d
		db.kg = kvgraph.New(d)
		db.kg.SetMetrics(opts.Metrics)
		if adjB > 0 {
			db.kg.EnableAdjacencyCache(adjB)
		}
		if resB > 0 {
			db.results = cache.NewResults(resB)
		}
		db.Core = propcore.New(db.kg)
		// Rebuild the term dictionary from persisted nodes.
		err = db.Core.Nodes(func(n model.Node) bool {
			if v, ok := n.Props.Get("value").AsString(); ok {
				db.terms[v] = n.ID
			}
			return true
		})
		if err != nil {
			d.Close()
			return nil, err
		}
	} else {
		db.Core = propcore.New(memgraph.New())
	}
	// Term-value index: the SPO/POS access paths of a triple store reduce
	// to value lookup + directed adjacency here.
	if _, err := db.Core.Idx.Create(index.Nodes, "value", index.KindHash); err != nil {
		return nil, err
	}
	if db.disk != nil {
		// Re-index persisted terms. An iteration error means a partial
		// index, which would silently drop rows from indexed scans.
		idx, _ := db.Core.Idx.Get(index.Nodes, "value")
		err := db.Core.Nodes(func(n model.Node) bool {
			if v, ok := n.Props["value"]; ok {
				idx.Add(v, uint64(n.ID))
			}
			return true
		})
		if err != nil {
			db.disk.Close()
			return nil, err
		}
	}
	return db, nil
}

// Term interns a lexical form and returns its node.
func (db *DB) Term(value string) (model.NodeID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if id, ok := db.terms[value]; ok {
		return id, nil
	}
	id, err := db.Core.AddNode("", model.Properties{"value": model.Str(value)})
	if err != nil {
		return 0, err
	}
	db.terms[value] = id
	return id, nil
}

// TermID looks up an existing term.
func (db *DB) TermID(value string) (model.NodeID, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	id, ok := db.terms[value]
	return id, ok
}

// AddTriple asserts one statement.
func (db *DB) AddTriple(s, p, o string) error {
	sid, err := db.Term(s)
	if err != nil {
		return err
	}
	oid, err := db.Term(o)
	if err != nil {
		return err
	}
	// Deduplicate identical statements. A failed scan must not fall through
	// to AddEdge: it could assert a duplicate the scan would have caught.
	dup := false
	if err := db.Core.Neighbors(sid, model.Out, func(e model.Edge, n model.Node) bool {
		if e.Label == p && n.ID == oid {
			dup = true
			return false
		}
		return true
	}); err != nil {
		return err
	}
	if dup {
		return nil
	}
	_, err = db.Core.AddEdge(p, sid, oid, nil)
	return err
}

// Triples streams every statement.
func (db *DB) Triples(fn func(s, p, o string) bool) error {
	var iterErr error
	err := db.Core.Edges(func(e model.Edge) bool {
		s, err := db.termValue(e.From)
		if err != nil {
			iterErr = err
			return false
		}
		o, err := db.termValue(e.To)
		if err != nil {
			iterErr = err
			return false
		}
		return fn(s, e.Label, o)
	})
	if iterErr != nil {
		return iterErr
	}
	return err
}

func (db *DB) termValue(id model.NodeID) (string, error) {
	n, err := db.Core.Node(id)
	if err != nil {
		return "", err
	}
	v, ok := n.Props.Get("value").AsString()
	if !ok {
		return "", fmt.Errorf("triplestore: node %d has no value", id)
	}
	return v, nil
}

// Count returns the number of asserted statements.
func (db *DB) Count() int { return db.Core.Size() }

// AddRule installs an inference rule alongside the RDFS defaults.
func (db *DB) AddRule(r reason.Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.rules = append(db.rules, r)
	return nil
}

// Materialize implements engine.Reasoner: it runs the rules to fixpoint and
// asserts the derived statements, returning how many were added.
func (db *DB) Materialize() (int, error) {
	var base []reason.Triple
	if err := db.Triples(func(s, p, o string) bool {
		base = append(base, reason.Triple{S: s, P: p, O: o})
		return true
	}); err != nil {
		return 0, err
	}
	db.mu.Lock()
	rules := append([]reason.Rule(nil), db.rules...)
	db.mu.Unlock()
	derived, err := reason.Infer(base, rules)
	if err != nil {
		return 0, err
	}
	for _, t := range derived {
		if err := db.AddTriple(t.S, t.P, t.O); err != nil {
			return 0, err
		}
	}
	return len(derived), nil
}

// LanguageName implements engine.Querier.
func (db *DB) LanguageName() string { return "sparqlish" }

// Query implements engine.Querier with the SPARQL-like language. The
// surface also accepts INSERT DATA { <s> <p> <o> . ... } for DML and the
// DDL no-ops typical of schema-free triple stores.
func (db *DB) Query(stmt string) (*plan.Result, error) {
	return db.QueryContext(context.Background(), stmt)
}

// QueryContext implements engine.ContextQuerier: the whole dispatch is a
// "query" span on the trace in ctx, with sparqlish's "parse"/"exec" spans
// nested inside on cache misses. Tracing never changes the answer.
func (db *DB) QueryContext(ctx context.Context, stmt string) (*plan.Result, error) {
	defer obs.FromContext(ctx).StartSpan("query")()
	trimmed := strings.TrimSpace(stmt)
	if strings.HasPrefix(strings.ToUpper(trimmed), "INSERT DATA") {
		return db.insertData(trimmed)
	}
	if db.results != nil && engine.ReadOnlyStmt(trimmed, "SELECT", "ASK") {
		return engine.CachedQuery(db.results, db.kg.Epoch, db.Name(), "sparqlish", trimmed,
			func() (*plan.Result, error) { return sparqlish.RunCtx(ctx, stmt, db.Core) })
	}
	return sparqlish.RunCtx(ctx, stmt, db.Core)
}

// QueryStream implements engine.StreamQuerier: SELECT/ASK emit rows into
// sink as the plan produces them. INSERT DATA (one counter row, whole by
// construction) and the cached read path materialize and replay, so
// streaming never bypasses cache coherence; the rows are identical to
// QueryContext's either way.
func (db *DB) QueryStream(ctx context.Context, stmt string, sink plan.Sink) error {
	defer obs.FromContext(ctx).StartSpan("query")()
	trimmed := strings.TrimSpace(stmt)
	if strings.HasPrefix(strings.ToUpper(trimmed), "INSERT DATA") {
		res, err := db.insertData(trimmed)
		if err != nil {
			return err
		}
		return plan.Replay(res, sink)
	}
	if db.results != nil && engine.ReadOnlyStmt(trimmed, "SELECT", "ASK") {
		res, err := engine.CachedQuery(db.results, db.kg.Epoch, db.Name(), "sparqlish", trimmed,
			func() (*plan.Result, error) { return sparqlish.RunCtx(ctx, stmt, db.Core) })
		if err != nil {
			return err
		}
		return plan.Replay(res, sink)
	}
	return sparqlish.RunStreamCtx(ctx, stmt, db.Core, sink)
}

// insertData parses INSERT DATA { <s> <p> <o> . ... }.
func (db *DB) insertData(stmt string) (*plan.Result, error) {
	open := strings.IndexByte(stmt, '{')
	close_ := strings.LastIndexByte(stmt, '}')
	if open < 0 || close_ < open {
		return nil, fmt.Errorf("triplestore: INSERT DATA requires { ... }")
	}
	body := stmt[open+1 : close_]
	n := 0
	for _, line := range strings.Split(body, ".") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		terms := splitTerms(line)
		if len(terms) != 3 {
			return nil, fmt.Errorf("triplestore: bad triple %q", line)
		}
		if err := db.AddTriple(terms[0], terms[1], terms[2]); err != nil {
			return nil, err
		}
		n++
	}
	return &plan.Result{Cols: []string{"inserted"}, Rows: [][]model.Value{{model.Int(int64(n))}}}, nil
}

// splitTerms splits "<a> <b> "c d"" into terms, stripping <> and quotes.
func splitTerms(line string) []string {
	var out []string
	i := 0
	for i < len(line) {
		switch {
		case line[i] == ' ' || line[i] == '\t' || line[i] == '\n':
			i++
		case line[i] == '<':
			end := strings.IndexByte(line[i:], '>')
			if end < 0 {
				out = append(out, line[i+1:])
				return out
			}
			out = append(out, line[i+1:i+end])
			i += end + 1
		case line[i] == '"':
			end := strings.IndexByte(line[i+1:], '"')
			if end < 0 {
				out = append(out, line[i+1:])
				return out
			}
			out = append(out, line[i+1:i+1+end])
			i += end + 2
		default:
			end := strings.IndexAny(line[i:], " \t\n")
			if end < 0 {
				out = append(out, line[i:])
				return out
			}
			out = append(out, line[i:i+end])
			i += end
		}
	}
	return out
}

// Name implements engine.Engine.
func (db *DB) Name() string { return "triplestore" }

// SurveyRow implements engine.Engine.
func (db *DB) SurveyRow() string { return "AllegroGraph" }

// Features implements engine.Engine.
func (db *DB) Features() engine.Features {
	return engine.Features{
		MainMemory: engine.Yes, ExternalMemory: engine.Yes, Indexes: engine.Yes,
		DDL: engine.Yes, DML: engine.Yes,
		QueryLanguageShipped: engine.Yes, QueryLanguage: engine.Partial,
		API: engine.Yes, GUI: engine.Yes, GraphicalQL: engine.Yes,
		SimpleGraphs: engine.Yes,
		NodeLabeled:  engine.Yes,
		Directed:     engine.Yes, EdgeLabeled: engine.Yes,
		ValueNodes: engine.Yes, SimpleRelations: engine.Yes,
		APIQueryFacility: engine.Yes, Retrieval: engine.Yes, Reasoning: engine.Yes, Analysis: engine.Yes,
	}
}

// Essentials implements engine.Engine: the triple surface composes node
// adjacency, k-neighborhood and aggregate summarization. Path utilities are
// not part of its query surface (Table VII row).
func (db *DB) Essentials() engine.Essentials {
	return db.EssentialsCtx(context.Background())
}

// EssentialsCtx implements engine.ContextEssentials: the parallel kernels
// run under the caller's context, so deadlines and cancellation reach
// them instead of being severed by a fresh background root.
func (db *DB) EssentialsCtx(ctx context.Context) engine.Essentials {
	es := db.essentialsCtx(ctx)
	if db.results == nil {
		return es
	}
	return engine.CachedEssentials(db.Name(), es, db.results, db.kg.Epoch)
}

// CacheStats implements engine.CacheStatser; main-memory instances report
// no tiers.
func (db *DB) CacheStats() map[string]cache.Stats {
	out := map[string]cache.Stats{}
	if db.disk != nil {
		out["page"] = db.disk.CacheStats()
	}
	if db.kg != nil {
		if s, ok := db.kg.AdjacencyStats(); ok {
			out["adjacency"] = s
		}
	}
	if db.results != nil {
		out["results"] = db.results.Stats()
	}
	return out
}

func (db *DB) essentialsCtx(ctx context.Context) engine.Essentials {
	return engine.Essentials{
		NodeAdjacency: func(a, b model.NodeID) (bool, error) {
			return algo.Adjacent(db.Core, a, b, model.Both)
		},
		EdgeAdjacency: func(e1, e2 model.EdgeID) (bool, error) {
			return algo.EdgesAdjacent(db.Core, e1, e2)
		},
		KNeighborhood: func(n model.NodeID, k int) ([]model.NodeID, error) {
			g, release, err := db.AcquireSnapshot()
			if err != nil {
				return nil, err
			}
			defer release()
			return par.Neighborhood(ctx, g, n, k, model.Both, par.Options{})
		},
		Summarization: func(kind algo.AggKind, label, prop string) (model.Value, error) {
			// In the triple model a "label" is a type statement, not a
			// node label: filter subjects by an outgoing type edge.
			if label == "" {
				g, release, err := db.AcquireSnapshot()
				if err != nil {
					return model.Null(), err
				}
				defer release()
				return par.AggregateNodeProp(ctx, g, "", prop, kind, par.Options{})
			}
			typeTerm, ok := db.TermID(label)
			if !ok {
				if kind == algo.AggCount {
					return model.Int(0), nil
				}
				return model.Null(), nil
			}
			agg := algo.NewAggregator(kind)
			var iterErr error
			err := db.Core.Nodes(func(n model.Node) bool {
				typed := false
				if err := db.Core.Neighbors(n.ID, model.Out, func(e model.Edge, far model.Node) bool {
					if e.Label == "type" && far.ID == typeTerm {
						typed = true
						return false
					}
					return true
				}); err != nil {
					iterErr = err
					return false
				}
				if !typed {
					return true
				}
				if kind == algo.AggCount {
					agg.Add(model.Int(1))
				} else {
					agg.Add(n.Props.Get(prop))
				}
				return true
			})
			if iterErr != nil {
				return model.Null(), iterErr
			}
			if err != nil {
				return model.Null(), err
			}
			return agg.Result(), nil
		},
	}
}

// AcquireSnapshot implements engine.Concurrent (the model.Snapshotter
// contract) at frozen isolation, delegating to the store's copy-on-write
// views: O(1) on a quiescent store, immutable under concurrent writers,
// in both the main-memory and kv-backed configurations.
func (db *DB) AcquireSnapshot() (model.Graph, model.ReleaseFunc, error) {
	if p, ok := db.Core.Graph().(model.Pinner); ok {
		return p.AcquireView()
	}
	// Unreachable with the stores in this repository (both implement
	// model.Pinner); the live graph remains as a defensive fallback.
	return db.Core.Graph(), func() {}, nil
}

// LoadNode implements engine.Loader: property-graph nodes become terms; the
// label and properties become statements about the term.
func (db *DB) LoadNode(label string, props model.Properties) (model.NodeID, error) {
	name := fmt.Sprintf("_:n%d", db.Core.Order()+1)
	if v, ok := props.Get("name").AsString(); ok {
		name = v
	}
	id, err := db.Term(name)
	if err != nil {
		return 0, err
	}
	if label != "" {
		if err := db.AddTriple(name, "type", label); err != nil {
			return 0, err
		}
	}
	for k, v := range props {
		if k == "name" {
			continue
		}
		if err := db.AddTriple(name, k, v.String()); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// LoadEdge implements engine.Loader: an edge becomes one statement.
func (db *DB) LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	s, err := db.termValue(from)
	if err != nil {
		return 0, err
	}
	o, err := db.termValue(to)
	if err != nil {
		return 0, err
	}
	if err := db.AddTriple(s, label, o); err != nil {
		return 0, err
	}
	// Return the id of the just-added (or pre-existing) statement edge. A
	// failed scan must not return the zero EdgeID as if it were a real id.
	var eid model.EdgeID
	if err := db.Core.Neighbors(from, model.Out, func(e model.Edge, n model.Node) bool {
		if e.Label == label && n.ID == to {
			eid = e.ID
			return false
		}
		return true
	}); err != nil {
		return 0, err
	}
	return eid, nil
}

// Flush implements engine.Persistent.
func (db *DB) Flush() error {
	if db.disk != nil {
		return db.disk.Flush()
	}
	return nil
}

// Close implements engine.Engine.
func (db *DB) Close() error {
	if db.disk != nil {
		return db.disk.Close()
	}
	return nil
}

var (
	_ engine.Engine            = (*DB)(nil)
	_ engine.Querier           = (*DB)(nil)
	_ engine.ContextQuerier    = (*DB)(nil)
	_ engine.ContextEssentials = (*DB)(nil)
	_ engine.Concurrent        = (*DB)(nil)
	_ engine.Reasoner          = (*DB)(nil)
	_ engine.Loader            = (*DB)(nil)
	_ engine.CacheStatser      = (*DB)(nil)
)
