package triplestore

import (
	"path/filepath"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/model"
	"gdbm/internal/reason"
)

func openMem(t *testing.T) *DB {
	t.Helper()
	db, err := New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestAddTripleAndDedup(t *testing.T) {
	db := openMem(t)
	if err := db.AddTriple("a", "p", "b"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTriple("a", "p", "b"); err != nil {
		t.Fatal(err)
	}
	if db.Count() != 1 {
		t.Errorf("count = %d (dedup failed)", db.Count())
	}
	db.AddTriple("a", "q", "b")
	db.AddTriple("b", "p", "a")
	if db.Count() != 3 {
		t.Errorf("count = %d", db.Count())
	}
	var got [][3]string
	db.Triples(func(s, p, o string) bool {
		got = append(got, [3]string{s, p, o})
		return true
	})
	if len(got) != 3 {
		t.Errorf("triples = %v", got)
	}
}

func TestTermInterning(t *testing.T) {
	db := openMem(t)
	a1, _ := db.Term("ada")
	a2, _ := db.Term("ada")
	if a1 != a2 {
		t.Error("terms not interned")
	}
	if id, ok := db.TermID("ada"); !ok || id != a1 {
		t.Errorf("TermID = %v %v", id, ok)
	}
	if _, ok := db.TermID("ghost"); ok {
		t.Error("missing term found")
	}
}

func TestSparqlQuery(t *testing.T) {
	db := openMem(t)
	db.AddTriple("ada", "type", "person")
	db.AddTriple("bob", "type", "person")
	db.AddTriple("ada", "knows", "bob")
	res, err := db.Query(`SELECT ?x WHERE { ?x <type> "person" . ?x <knows> ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if v, _ := res.Rows[0][0].AsString(); v != "ada" {
		t.Errorf("x = %q", v)
	}
}

func TestInsertData(t *testing.T) {
	db := openMem(t)
	res, err := db.Query(`INSERT DATA { <a> <p> <b> . <a> <name> "Ada L" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Rows[0][0].AsInt(); v != 2 {
		t.Errorf("inserted = %v", res.Rows[0][0])
	}
	if db.Count() != 2 {
		t.Errorf("count = %d", db.Count())
	}
	if _, err := db.Query(`INSERT DATA <a> <p> <b>`); err == nil {
		t.Error("missing braces should fail")
	}
	if _, err := db.Query(`INSERT DATA { <a> <p> . }`); err == nil {
		t.Error("2-term triple should fail")
	}
}

func TestMaterializeRDFS(t *testing.T) {
	db := openMem(t)
	db.AddTriple("cat", "subClassOf", "animal")
	db.AddTriple("felix", "type", "cat")
	n, err := db.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("derived = %d", n)
	}
	res, _ := db.Query(`SELECT ?x WHERE { ?x <type> <animal> . }`)
	if len(res.Rows) != 1 {
		t.Errorf("inferred type query = %v", res.Rows)
	}
	// Idempotent.
	n2, _ := db.Materialize()
	if n2 != 0 {
		t.Errorf("re-materialize derived %d", n2)
	}
}

func TestCustomRule(t *testing.T) {
	db := openMem(t)
	db.AddTriple("a", "parent", "b")
	db.AddTriple("b", "parent", "c")
	err := db.AddRule(reason.Rule{
		Name: "grandparent",
		Head: reason.Pattern{S: "?x", P: "grandparent", O: "?z"},
		Body: []reason.Pattern{{S: "?x", P: "parent", O: "?y"}, {S: "?y", P: "parent", O: "?z"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize(); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(`SELECT ?x WHERE { ?x <grandparent> <c> . }`)
	if len(res.Rows) != 1 {
		t.Errorf("grandparent query = %v", res.Rows)
	}
	// Unsafe rules rejected.
	bad := reason.Rule{Head: reason.Pattern{S: "?q", P: "x", O: "y"}}
	if err := db.AddRule(bad); err == nil {
		t.Error("unsafe rule accepted")
	}
}

func TestPersistenceRebuildsTermsAndIndex(t *testing.T) {
	dir := t.TempDir()
	db, err := New(engine.Options{Dir: filepath.Join(dir)})
	if err != nil {
		t.Fatal(err)
	}
	db.AddTriple("ada", "knows", "bob")
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := New(engine.Options{Dir: filepath.Join(dir)})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Count() != 1 {
		t.Fatalf("count after reopen = %d", db2.Count())
	}
	// Terms dictionary rebuilt: dedup still works.
	db2.AddTriple("ada", "knows", "bob")
	if db2.Count() != 1 {
		t.Errorf("dedup after reopen failed: %d", db2.Count())
	}
	// The value index serves queries.
	res, err := db2.Query(`SELECT ?o WHERE { <ada> <knows> ?o . }`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("query after reopen: %v %v", res, err)
	}
}

func TestLoaderMapsPropertyGraph(t *testing.T) {
	db := openMem(t)
	a, err := db.LoadNode("Person", model.Props("name", "ada", "age", 36))
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.LoadNode("Person", model.Props("name", "bob"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadEdge("knows", a, b, nil); err != nil {
		t.Fatal(err)
	}
	// The property graph became statements: type, age and knows.
	want := map[[3]string]bool{
		{"ada", "type", "Person"}: true,
		{"ada", "age", "36"}:      true,
		{"ada", "knows", "bob"}:   true,
		{"bob", "type", "Person"}: true,
	}
	found := 0
	db.Triples(func(s, p, o string) bool {
		if want[[3]string{s, p, o}] {
			found++
		}
		return true
	})
	if found != len(want) {
		t.Errorf("found %d/%d expected statements", found, len(want))
	}
	// LoadEdge is idempotent on duplicate statements and returns the edge.
	eid, err := db.LoadEdge("knows", a, b, nil)
	if err != nil || eid == 0 {
		t.Errorf("re-load edge: %v %v", eid, err)
	}
}
