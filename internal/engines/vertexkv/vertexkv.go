// Package vertexkv implements the VertexDB-archetype engine: a graph store
// on top of a B-tree key/value disk store (the survey names TokyoCabinet;
// here the role is played by this repository's own on-disk B+tree). Its
// Table I row marks external memory + backend storage; the surface is API
// only.
package vertexkv

import (
	"path/filepath"

	"gdbm/internal/algo"
	"gdbm/internal/cache"
	"gdbm/internal/engine"
	"gdbm/internal/kvgraph"
	"gdbm/internal/model"
	"gdbm/internal/storage/kv"
)

func init() {
	engine.Register("vertexkv", "VertexDB", func(opts engine.Options) (engine.Engine, error) {
		return New(opts)
	})
}

// DB is the engine instance. The kv-layered graph is embedded, so the
// engine itself is the API surface (engine.GraphAPI).
type DB struct {
	*kvgraph.Graph
	disk    *kv.Disk
	results *cache.Results // nil when CacheBytes is zero
}

// New opens a vertexkv instance. With no Dir the B-tree role is played by
// the in-memory ordered store (useful for tests); with Dir it is the real
// on-disk B+tree. A positive Options.CacheBytes splits the budget across
// the page, adjacency and query-result caches.
func New(opts engine.Options) (*DB, error) {
	pageB, adjB, resB := engine.SplitCacheBudget(opts.CacheBytes)
	db := &DB{}
	if opts.Dir == "" {
		db.Graph = kvgraph.New(kv.NewMemory())
	} else {
		d, err := kv.OpenDiskWith(filepath.Join(opts.Dir, "vertexkv.pg"), kv.DiskOptions{
			PoolPages: opts.PoolPages, CacheBytes: pageB, FS: opts.FS, Metrics: opts.Metrics,
		})
		if err != nil {
			return nil, err
		}
		db.Graph, db.disk = kvgraph.New(d), d
	}
	db.Graph.SetMetrics(opts.Metrics)
	if adjB > 0 {
		db.Graph.EnableAdjacencyCache(adjB)
	}
	if resB > 0 {
		db.results = cache.NewResults(resB)
	}
	return db, nil
}

// CacheStats implements engine.CacheStatser.
func (db *DB) CacheStats() map[string]cache.Stats {
	out := map[string]cache.Stats{}
	if db.disk != nil {
		out["page"] = db.disk.CacheStats()
	}
	if s, ok := db.Graph.AdjacencyStats(); ok {
		out["adjacency"] = s
	}
	if db.results != nil {
		out["results"] = db.results.Stats()
	}
	return out
}

// IndexedNodes implements plan.Source: the VertexDB archetype has no
// secondary indexes (Table I), so lookups always fall back to scans.
func (db *DB) IndexedNodes(string, string, model.Value, func(model.Node) bool) (bool, error) {
	return false, nil
}

// Name implements engine.Engine.
func (db *DB) Name() string { return "vertexkv" }

// SurveyRow implements engine.Engine.
func (db *DB) SurveyRow() string { return "VertexDB" }

// Features implements engine.Engine.
func (db *DB) Features() engine.Features {
	return engine.Features{
		ExternalMemory: engine.Yes, BackendStorage: engine.Yes,
		API:          engine.Yes,
		SimpleGraphs: engine.Yes,
		NodeLabeled:  engine.Yes,
		Directed:     engine.Yes, EdgeLabeled: engine.Yes,
		ValueNodes: engine.Yes, SimpleRelations: engine.Yes,
		APIQueryFacility: engine.Yes, Retrieval: engine.Yes,
	}
}

// Essentials implements engine.Engine: adjacency, k-neighborhood,
// fixed-length paths and summarization (no shortest-path utility) per its
// Table VII row.
func (db *DB) Essentials() engine.Essentials {
	return engine.CachedEssentials(db.Name(), db.essentials(), db.results, db.Graph.Epoch)
}

func (db *DB) essentials() engine.Essentials {
	return engine.Essentials{
		NodeAdjacency: func(a, b model.NodeID) (bool, error) {
			return algo.Adjacent(db.Graph, a, b, model.Both)
		},
		EdgeAdjacency: func(e1, e2 model.EdgeID) (bool, error) {
			return algo.EdgesAdjacent(db.Graph, e1, e2)
		},
		KNeighborhood: func(n model.NodeID, k int) ([]model.NodeID, error) {
			return algo.Neighborhood(db.Graph, n, k, model.Both)
		},
		FixedLengthPaths: func(from, to model.NodeID, length int) ([]algo.Path, error) {
			return algo.FixedLengthPaths(db.Graph, from, to, length, model.Out, 0)
		},
		Summarization: func(kind algo.AggKind, label, prop string) (model.Value, error) {
			return algo.AggregateNodeProp(db.Graph, label, prop, kind)
		},
	}
}

// LoadNode implements engine.Loader.
func (db *DB) LoadNode(label string, props model.Properties) (model.NodeID, error) {
	return db.Graph.AddNode(label, props)
}

// LoadEdge implements engine.Loader.
func (db *DB) LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	return db.Graph.AddEdge(label, from, to, props)
}

// Flush implements engine.Persistent.
func (db *DB) Flush() error {
	if db.disk != nil {
		return db.disk.Flush()
	}
	return nil
}

// Close implements engine.Engine.
func (db *DB) Close() error {
	if db.disk != nil {
		return db.disk.Close()
	}
	return nil
}

var (
	_ engine.Engine       = (*DB)(nil)
	_ engine.Loader       = (*DB)(nil)
	_ engine.GraphAPI     = (*DB)(nil)
	_ engine.CacheStatser = (*DB)(nil)
)
