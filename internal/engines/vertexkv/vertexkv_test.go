package vertexkv

import (
	"testing"

	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/model"
)

func TestMemoryModeBasics(t *testing.T) {
	db, err := New(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	a, _ := db.LoadNode("N", model.Props("name", "a"))
	b, _ := db.LoadNode("N", nil)
	if _, err := db.LoadEdge("e", a, b, nil); err != nil {
		t.Fatal(err)
	}
	es := db.Essentials()
	ok, _ := es.NodeAdjacency(a, b)
	if !ok {
		t.Error("adjacency failed")
	}
	// No shortest path on this archetype.
	if es.ShortestPath != nil {
		t.Error("VertexDB row has no shortest-path mark")
	}
	paths, err := es.FixedLengthPaths(a, b, 1)
	if err != nil || len(paths) != 1 {
		t.Errorf("fixed paths: %v %v", paths, err)
	}
	n, _ := es.Summarization(algo.AggCount, "N", "")
	if v, _ := n.AsInt(); v != 2 {
		t.Errorf("count = %v", n)
	}
}

func TestBtreeBackedPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := db.LoadNode("N", nil)
	b, _ := db.LoadNode("N", nil)
	db.LoadEdge("e", a, b, nil)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := New(engine.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	g := db2
	if g.Order() != 2 || g.Size() != 1 {
		t.Errorf("after reopen: order=%d size=%d", g.Order(), g.Size())
	}
}
