package diff

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/model"
	"gdbm/internal/storage/vfs"
)

// crashRounds is the number of flush-terminated mutation rounds the sweep
// replays. Each round is derived only from its round number, so any prefix
// can be rebuilt on a reference engine without replaying the crashed run.
const crashRounds = 5

// crashRound applies round r: a marker node recording the round number,
// two data nodes, two edges, a property update and (every other round) an
// edge removal, all committed by one Flush. The mutation mix is chosen to
// invalidate all three cache tiers. The first error aborts the round —
// after a power cut every call fails.
func crashRound(e engine.Engine, r int) error {
	var mg model.MutableGraph
	switch src := e.(type) {
	case model.MutableGraph:
		mg = src
	case interface{ Graph() model.MutableGraph }:
		mg = src.Graph()
	default:
		return fmt.Errorf("%s: no MutableGraph surface", e.Name())
	}
	marker, err := mg.AddNode("round", model.Props("r", r))
	if err != nil {
		return err
	}
	a, err := mg.AddNode("person", model.Props("rank", r))
	if err != nil {
		return err
	}
	b, err := mg.AddNode("place", model.Props("rank", r*2))
	if err != nil {
		return err
	}
	knows, err := mg.AddEdge("knows", a, b, nil)
	if err != nil {
		return err
	}
	if _, err := mg.AddEdge("near", b, marker, nil); err != nil {
		return err
	}
	if err := mg.SetNodeProp(a, "rank", model.Int(int64(r+100))); err != nil {
		return err
	}
	if r%2 == 1 {
		if err := mg.RemoveEdge(knows); err != nil {
			return err
		}
	}
	return e.(engine.Persistent).Flush()
}

// warmCaches runs a few queries between rounds so the crash interrupts an
// instance with populated caches, not a cold one.
func warmCaches(e engine.Engine) {
	es := e.Essentials()
	if es.Summarization != nil {
		es.Summarization(0, "person", "rank")
	}
	if es.KNeighborhood != nil {
		var first model.NodeID
		found := false
		if it, ok := nodeScanner(e); ok {
			it.Nodes(func(n model.Node) bool { first = n.ID; found = true; return false })
		}
		if found {
			es.KNeighborhood(first, 2)
		}
	}
}

type nodeIter interface {
	Nodes(fn func(model.Node) bool) error
}

type edgeIter interface {
	Edges(fn func(model.Edge) bool) error
}

func nodeScanner(e engine.Engine) (nodeIter, bool) {
	switch src := e.(type) {
	case nodeIter:
		return src, true
	case interface{ Graph() model.MutableGraph }:
		if it, ok := src.Graph().(nodeIter); ok {
			return it, true
		}
	}
	return nil, false
}

func edgeScanner(e engine.Engine) (edgeIter, bool) {
	switch src := e.(type) {
	case edgeIter:
		return src, true
	case interface{ Graph() model.MutableGraph }:
		if it, ok := src.Graph().(edgeIter); ok {
			return it, true
		}
	}
	return nil, false
}

// crashDump renders the full engine state plus an essential-query sweep
// over every stored node, using raw ids. Two same-archetype instances that
// replayed the same rounds from empty stores assign identical ids, so the
// renderings are directly comparable.
func crashDump(t *testing.T, e engine.Engine) string {
	t.Helper()
	it, ok := nodeScanner(e)
	if !ok {
		t.Fatalf("%s: no node scan surface", e.Name())
	}
	var lines []string
	var ids []model.NodeID
	if err := it.Nodes(func(n model.Node) bool {
		lines = append(lines, fmt.Sprintf("node %d %s %s", n.ID, n.Label, n.Props.String()))
		ids = append(ids, n.ID)
		return true
	}); err != nil {
		t.Fatalf("%s: Nodes: %v", e.Name(), err)
	}
	if eit, ok := edgeScanner(e); ok {
		if err := eit.Edges(func(ed model.Edge) bool {
			lines = append(lines, fmt.Sprintf("edge %d %s %d->%d", ed.ID, ed.Label, ed.From, ed.To))
			return true
		}); err != nil {
			t.Fatalf("%s: Edges: %v", e.Name(), err)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	es := e.Essentials()
	for _, id := range ids {
		if es.KNeighborhood != nil {
			hood, err := es.KNeighborhood(id, 2)
			if err != nil {
				lines = append(lines, fmt.Sprintf("khood %d err", id))
			} else {
				sort.Slice(hood, func(i, j int) bool { return hood[i] < hood[j] })
				lines = append(lines, fmt.Sprintf("khood %d %v", id, hood))
			}
		}
	}
	for i := 0; i+1 < len(ids); i += 2 {
		if es.NodeAdjacency != nil {
			ok, err := es.NodeAdjacency(ids[i], ids[i+1])
			lines = append(lines, fmt.Sprintf("adj %d-%d %v %v", ids[i], ids[i+1], ok, err != nil))
		}
		if es.ShortestPath != nil {
			p, err := es.ShortestPath(ids[i], ids[i+1])
			if err != nil {
				lines = append(lines, fmt.Sprintf("spath %d-%d unreachable", ids[i], ids[i+1]))
			} else {
				lines = append(lines, fmt.Sprintf("spath %d-%d len=%d", ids[i], ids[i+1], p.Len()))
			}
		}
	}
	if es.Summarization != nil {
		for _, label := range []string{"person", "place", "round"} {
			v, err := es.Summarization(0, label, "rank")
			if err != nil {
				lines = append(lines, "summ "+label+" err")
			} else {
				lines = append(lines, "summ "+label+" "+v.String())
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// durableRounds scans the recovered engine for round markers and asserts
// they form a prefix 0..k-1: a crash may lose trailing rounds but never
// expose a later round without all earlier ones (flush ordering).
func durableRounds(t *testing.T, e engine.Engine) int {
	t.Helper()
	it, ok := nodeScanner(e)
	if !ok {
		t.Fatalf("%s: no node scan surface", e.Name())
	}
	seen := map[int]bool{}
	if err := it.Nodes(func(n model.Node) bool {
		if n.Label != "round" {
			return true
		}
		r, ok := n.Props.Get("r").AsInt()
		if !ok {
			t.Errorf("round marker %d without r prop", n.ID)
			return false
		}
		seen[int(r)] = true
		return true
	}); err != nil {
		t.Fatalf("%s: Nodes: %v", e.Name(), err)
	}
	for r := 0; r < len(seen); r++ {
		if !seen[r] {
			t.Fatalf("%s: durable rounds %v are not a prefix (missing %d)", e.Name(), seen, r)
		}
	}
	return len(seen)
}

// TestCachedCrashRecoveryDifferential power-cuts a cached engine at sampled
// durability operations, recovers, and requires the recovered store — and a
// further mutation round on top of it — to be indistinguishable from an
// uncached engine that only ever executed the durable round prefix. Stale
// cache state surviving a crash/recover cycle in any tier would diverge
// here.
func TestCachedCrashRecoveryDifferential(t *testing.T) {
	for _, name := range []string{"neograph", "vertexkv", "gstore"} {
		t.Run(name, func(t *testing.T) {
			// openErr may fail: an early crash point cuts power during the
			// initial open itself. open is for contexts where failure is a
			// test bug (probe run, post-recovery reopen).
			openErr := func(fs *vfs.FaultFS, cacheBytes int64) (engine.Engine, error) {
				return engine.Open(name, engine.Options{Dir: "crash", PoolPages: 4, FS: fs, CacheBytes: cacheBytes})
			}
			open := func(fs *vfs.FaultFS, cacheBytes int64) engine.Engine {
				t.Helper()
				e, err := openErr(fs, cacheBytes)
				if err != nil {
					t.Fatalf("open %s: %v", name, err)
				}
				return e
			}
			runRounds := func(e engine.Engine) int {
				for r := 0; r < crashRounds; r++ {
					if err := crashRound(e, r); err != nil {
						return r
					}
					warmCaches(e)
				}
				return crashRounds
			}

			// Probe run: count durability ops of a fault-free cached run.
			probe := vfs.NewFaultFS()
			pe := open(probe, twinCacheBytes)
			if got := runRounds(pe); got != crashRounds {
				t.Fatalf("probe run stopped at round %d", got)
			}
			pe.Close()
			total := probe.Ops()
			if total == 0 {
				t.Fatal("probe run performed no durability ops")
			}

			// Sweep: power-cut before op p for up to 24 evenly-spaced p.
			stride := total/24 + 1
			points := 0
			for p := 1; p <= total; p += stride {
				points++
				fs := vfs.NewFaultFS()
				fs.SetFaults(vfs.Fault{Kind: vfs.PowerCut, Op: p})
				if ce, err := openErr(fs, twinCacheBytes); err == nil {
					runRounds(ce)
					ce.Close()
				}
				fs.Recover()

				recovered := open(fs, twinCacheBytes)
				k := durableRounds(t, recovered)

				ref, err := engine.Open(name, engine.Options{Dir: t.TempDir()})
				if err != nil {
					t.Fatalf("open reference: %v", err)
				}
				for r := 0; r < k; r++ {
					if err := crashRound(ref, r); err != nil {
						t.Fatalf("reference round %d: %v", r, err)
					}
				}
				if got, want := crashDump(t, recovered), crashDump(t, ref); got != want {
					t.Fatalf("cut at op %d/%d (k=%d): recovered cached state diverges from uncached reference\nrecovered:\n%s\nreference:\n%s",
						p, total, k, got, want)
				}

				// One more round on both: the recovered instance's caches must
				// invalidate correctly for post-recovery mutations too.
				if err := crashRound(recovered, 1000); err != nil {
					t.Fatalf("cut at op %d: post-recovery round on recovered: %v", p, err)
				}
				if err := crashRound(ref, 1000); err != nil {
					t.Fatalf("cut at op %d: post-recovery round on reference: %v", p, err)
				}
				if got, want := crashDump(t, recovered), crashDump(t, ref); got != want {
					t.Fatalf("cut at op %d/%d (k=%d): post-recovery mutations diverge\nrecovered:\n%s\nreference:\n%s",
						p, total, k, got, want)
				}
				recovered.Close()
				ref.Close()
			}
			t.Logf("%s: %d crash points over %d durability ops, all differential checks passed", name, points, total)
		})
	}
}
