package diff

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"testing"

	"gdbm/internal/algo"
	"gdbm/internal/engine"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

// seedFlag makes every differential failure replayable: the failing test
// logs its seed, and rerunning the package with -seed=<n> pins every
// workload in the package to exactly that seed.
var seedFlag = flag.Int64("seed", 0, "override the differential workload seed (0 = per-test defaults)")

// SeedOrDefault returns the -seed flag when set, else def. Tests derive
// their workloads only through this, so any failure is replayable.
func SeedOrDefault(def int64) int64 {
	if *seedFlag != 0 {
		return *seedFlag
	}
	return def
}

// Instance is one side of a differential pair: an engine (or the oracle)
// plus the mapping from workload indexes to its id space.
type Instance struct {
	Name string
	es   engine.Essentials
	mg   model.MutableGraph // full mutation surface; nil = loader-only
	ld   engine.Loader
	pers engine.Persistent // nil when the instance has no flush

	nodes []model.NodeID // workload node index -> instance id
	edges []model.EdgeID
	rev   map[model.NodeID]int
	reve  map[model.EdgeID]int
}

// NewInstance wraps an engine. The mutation surface is resolved in order:
// the engine's own MutableGraph, a Graph() accessor (gstore), or the
// Loader alone — in the last case removals and property updates are
// unavailable and Pair skips them on both sides.
func NewInstance(t testing.TB, e engine.Engine) *Instance {
	t.Helper()
	in := &Instance{
		Name: e.Name(),
		es:   e.Essentials(),
		rev:  map[model.NodeID]int{},
		reve: map[model.EdgeID]int{},
	}
	switch src := e.(type) {
	case model.MutableGraph:
		in.mg = src
	case interface{ Graph() model.MutableGraph }:
		in.mg = src.Graph()
	}
	if ld, ok := e.(engine.Loader); ok {
		in.ld = ld
	}
	if in.mg == nil && in.ld == nil {
		t.Fatalf("%s: no mutation surface", e.Name())
	}
	if p, ok := e.(engine.Persistent); ok {
		in.pers = p
	}
	return in
}

// NewOracle returns the reference instance: the in-memory graph queried
// directly through the algo kernels with the same direction conventions
// the engines use (Both for adjacency and neighborhoods, Out for paths).
func NewOracle() *Instance {
	g := memgraph.New()
	return &Instance{
		Name: "oracle",
		mg:   g,
		rev:  map[model.NodeID]int{},
		reve: map[model.EdgeID]int{},
		es: engine.Essentials{
			NodeAdjacency: func(a, b model.NodeID) (bool, error) {
				return algo.Adjacent(g, a, b, model.Both)
			},
			KNeighborhood: func(n model.NodeID, k int) ([]model.NodeID, error) {
				return algo.Neighborhood(g, n, k, model.Both)
			},
			FixedLengthPaths: func(from, to model.NodeID, length int) ([]algo.Path, error) {
				return algo.FixedLengthPaths(g, from, to, length, model.Out, 0)
			},
			ShortestPath: func(from, to model.NodeID) (algo.Path, error) {
				return algo.ShortestPath(g, from, to, model.Out)
			},
			Summarization: func(kind algo.AggKind, label, prop string) (model.Value, error) {
				return algo.AggregateNodeProp(g, label, prop, kind)
			},
		},
	}
}

// Classes masks which essential-query classes a comparison exercises.
type Classes struct {
	Adj, KHood, Fixed, Shortest, Summ bool
}

// AllClasses enables every query class; Pair still intersects with what
// both instances actually expose.
func AllClasses() Classes {
	return Classes{Adj: true, KHood: true, Fixed: true, Shortest: true, Summ: true}
}

// nodeRef renders an instance node id as its workload index; ids outside
// the mapping (engine-internal nodes) render by raw id, which only two
// instances with identical id spaces can agree on.
func (in *Instance) nodeRef(id model.NodeID) string {
	if i, ok := in.rev[id]; ok {
		return fmt.Sprintf("n%d", i)
	}
	return fmt.Sprintf("#%d", id)
}

func (in *Instance) edgeRef(id model.EdgeID) string {
	if i, ok := in.reve[id]; ok {
		return fmt.Sprintf("e%d", i)
	}
	return fmt.Sprintf("#%d", id)
}

func (in *Instance) pathRef(p algo.Path) string {
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteByte('-')
			b.WriteString(in.edgeRef(p.Edges[i-1]))
			b.WriteByte('-')
		}
		b.WriteString(in.nodeRef(n))
	}
	return b.String()
}

// errRef folds errors into the rendering. strict keeps the message (same-
// engine twins must agree on it exactly); loose keeps only the fact.
func errRef(err error, strict bool) string {
	if strict {
		return "err:" + err.Error()
	}
	return "err"
}

// Apply executes one op and returns its canonical rendering. Mutations
// render their outcome so divergent failures are caught too.
func (in *Instance) Apply(op Op, strict bool) string {
	switch op.Kind {
	case OpAddNode:
		props := model.Props(op.Prop, op.Val)
		var id model.NodeID
		var err error
		if in.mg != nil {
			id, err = in.mg.AddNode(op.Label, props)
		} else {
			id, err = in.ld.LoadNode(op.Label, props)
		}
		in.nodes = append(in.nodes, id)
		if err != nil {
			return "addnode:" + errRef(err, strict)
		}
		in.rev[id] = len(in.nodes) - 1
		return "addnode:ok"
	case OpAddEdge:
		from, to := in.nodes[op.A], in.nodes[op.B]
		var id model.EdgeID
		var err error
		if in.mg != nil {
			id, err = in.mg.AddEdge(op.Label, from, to, nil)
		} else {
			id, err = in.ld.LoadEdge(op.Label, from, to, nil)
		}
		in.edges = append(in.edges, id)
		if err != nil {
			return "addedge:" + errRef(err, strict)
		}
		in.reve[id] = len(in.edges) - 1
		return "addedge:ok"
	case OpRemoveEdge:
		if err := in.mg.RemoveEdge(in.edges[op.E]); err != nil {
			return "rmedge:" + errRef(err, strict)
		}
		return "rmedge:ok"
	case OpRemoveNode:
		if err := in.mg.RemoveNode(in.nodes[op.A]); err != nil {
			return "rmnode:" + errRef(err, strict)
		}
		return "rmnode:ok"
	case OpSetNodeProp:
		if err := in.mg.SetNodeProp(in.nodes[op.A], op.Prop, model.Int(op.Val)); err != nil {
			return "setprop:" + errRef(err, strict)
		}
		return "setprop:ok"
	case OpFlush:
		if in.pers == nil {
			return "flush:ok"
		}
		if err := in.pers.Flush(); err != nil {
			return "flush:" + errRef(err, strict)
		}
		return "flush:ok"
	case OpQueryAdjacency:
		ok, err := in.es.NodeAdjacency(in.nodes[op.A], in.nodes[op.B])
		if err != nil {
			return "adj:" + errRef(err, strict)
		}
		return fmt.Sprintf("adj:%v", ok)
	case OpQueryKNeighborhood:
		ids, err := in.es.KNeighborhood(in.nodes[op.A], op.K)
		if err != nil {
			return "khood:" + errRef(err, strict)
		}
		refs := make([]string, len(ids))
		for i, id := range ids {
			refs[i] = in.nodeRef(id)
		}
		sort.Strings(refs)
		return "khood:[" + strings.Join(refs, " ") + "]"
	case OpQueryFixedPaths:
		paths, err := in.es.FixedLengthPaths(in.nodes[op.A], in.nodes[op.B], op.K)
		if err != nil {
			return "fpaths:" + errRef(err, strict)
		}
		refs := make([]string, len(paths))
		for i, p := range paths {
			refs[i] = in.pathRef(p)
		}
		sort.Strings(refs)
		return "fpaths:[" + strings.Join(refs, " ") + "]"
	case OpQueryShortest:
		p, err := in.es.ShortestPath(in.nodes[op.A], in.nodes[op.B])
		if err != nil {
			// Unreachable targets error; that outcome must match.
			return "spath:" + errRef(err, strict)
		}
		if !strict {
			// Equal-length shortest paths may tie-break differently across
			// engines; the length is the contract.
			return fmt.Sprintf("spath:len=%d", p.Len())
		}
		return "spath:" + in.pathRef(p)
	case OpQuerySummarize:
		// Sum over the mutated rank property: stale cached values show up
		// as a wrong aggregate immediately.
		v, err := in.es.Summarization(algo.AggSum, op.Label, op.Prop)
		if err != nil {
			return "summ:" + errRef(err, strict)
		}
		return "summ:" + v.String()
	}
	return "unknown-op"
}

// supportsQuery reports whether the instance's essential surface exposes
// the op's query class (mutations always count as supported here; Pair
// handles loader-only instances separately).
func (in *Instance) supportsQuery(op Op) bool {
	switch op.Kind {
	case OpQueryAdjacency:
		return in.es.NodeAdjacency != nil
	case OpQueryKNeighborhood:
		return in.es.KNeighborhood != nil
	case OpQueryFixedPaths:
		return in.es.FixedLengthPaths != nil
	case OpQueryShortest:
		return in.es.ShortestPath != nil
	case OpQuerySummarize:
		return in.es.Summarization != nil
	}
	return true
}

func maskAllows(mask Classes, op Op) bool {
	switch op.Kind {
	case OpQueryAdjacency:
		return mask.Adj
	case OpQueryKNeighborhood:
		return mask.KHood
	case OpQueryFixedPaths:
		return mask.Fixed
	case OpQueryShortest:
		return mask.Shortest
	case OpQuerySummarize:
		return mask.Summ
	}
	return true
}

func isDestructive(op Op) bool {
	switch op.Kind {
	case OpRemoveEdge, OpRemoveNode, OpSetNodeProp:
		return true
	}
	return false
}

// Pair replays ops against both instances and fails on the first rendered
// divergence, logging the seed and op index for replay. strict demands
// byte-identical renderings including full paths and error text (same-
// engine twins); loose mode compares the portable contract (cross-engine
// versus the oracle). Ops either side cannot express — queries outside the
// mask or the shared surface, destructive mutations on loader-only
// instances — are skipped on BOTH sides so the graphs never diverge.
func Pair(t *testing.T, seed int64, ops []Op, a, b *Instance, strict bool, mask Classes) {
	t.Helper()
	applied := 0
	for i, op := range ops {
		if isDestructive(op) && (a.mg == nil || b.mg == nil) {
			continue
		}
		if !maskAllows(mask, op) || !a.supportsQuery(op) || !b.supportsQuery(op) {
			continue
		}
		ra := a.Apply(op, strict)
		rb := b.Apply(op, strict)
		if ra != rb {
			t.Fatalf("seed %d: op %d diverged\n  op: %+v\n  %s: %s\n  %s: %s\n(replay with -seed=%d)",
				seed, i, op, a.Name, ra, b.Name, rb, seed)
		}
		applied++
	}
	if applied == 0 {
		t.Fatalf("seed %d: workload applied no ops", seed)
	}
}
