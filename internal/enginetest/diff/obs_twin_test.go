package diff

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/gen"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query/plan"
)

// TestObservedUnobservedTwins replays one seeded mutate/query workload
// against an instrumented instance (a metrics registry wired through
// Options.Metrics, so every pager, WAL and kvgraph touch records) and a
// bare twin, and requires byte-identical renderings of every answer. This
// is the observability half of the cardinal rule in internal/obs: turning
// observation on must never change what any query returns.
func TestObservedUnobservedTwins(t *testing.T) {
	for i, name := range twinEngines {
		t.Run(name, func(t *testing.T) {
			seed := SeedOrDefault(0x0B5E + int64(i))
			ops := Generate(seed, 400)
			reg := obs.NewRegistry()
			observed, err := engine.Open(name, engine.Options{
				Dir: t.TempDir(), CacheBytes: twinCacheBytes, Metrics: reg,
			})
			if err != nil {
				t.Fatalf("open observed %s: %v", name, err)
			}
			t.Cleanup(func() { observed.Close() })
			plain := openTwin(t, name, twinCacheBytes)
			Pair(t, seed, ops, NewInstance(t, observed), NewInstance(t, plain), true, AllClasses())

			// The proof is vacuous if nothing was observed: the workload
			// must have recorded storage traffic in the registry.
			var total uint64
			for _, v := range reg.Counters() {
				total += v
			}
			if total == 0 {
				t.Fatalf("%s: observed twin recorded no metrics over %d ops", name, len(ops))
			}
		})
	}
}

// renderResult canonicalizes a query result for byte comparison.
func renderResult(res *plan.Result, err error) string {
	if err != nil {
		return "err:" + err.Error()
	}
	var b strings.Builder
	b.WriteString(strings.Join(res.Cols, "|"))
	for _, row := range res.Rows {
		b.WriteByte('\n')
		for j, v := range row {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
	}
	return b.String()
}

// twinStatements is a read-only workload per query language over the
// generator's graph shape (nodes labeled N with int property idx, edges
// labeled link). Statements order their output so renderings are stable.
func twinStatements(lang string, ids []model.NodeID) []string {
	switch lang {
	case "gql":
		return []string{
			`MATCH (a:N) WHERE a.idx < 8 RETURN a.idx AS i ORDER BY i`,
			`MATCH (a:N)-[:link]->(b) RETURN count(*) AS n`,
		}
	case "gsql":
		return []string{
			`SELECT ORDER`,
			`SELECT SIZE`,
			fmt.Sprintf(`SELECT NEIGHBORS OF %d DEPTH 2`, ids[0]),
		}
	case "sparqlish":
		return []string{
			`SELECT ?x WHERE { ?x <type> "N" . } ORDER BY ?x LIMIT 8`,
			`SELECT DISTINCT ?o WHERE { ?s <link> ?o . } ORDER BY ?o LIMIT 8`,
		}
	}
	return nil
}

// TestTracedUntracedQueryTwins runs identical statements through each
// disk-backed Querier twin pair — one dispatch carrying a live trace, the
// other none — and requires byte-identical renderings. This is the span
// half of the cardinal rule: the parse/exec spans a trace records must be
// pure observation.
func TestTracedUntracedQueryTwins(t *testing.T) {
	for _, name := range twinEngines {
		t.Run(name, func(t *testing.T) {
			traced := openTwin(t, name, twinCacheBytes)
			untraced := openTwin(t, name, twinCacheBytes)
			qt, ok := traced.(engine.Querier)
			if !ok {
				t.Skipf("%s is API-only; no language to trace", name)
			}
			qu := untraced.(engine.Querier)

			spec := gen.Spec{Kind: gen.RMAT, Nodes: 300, EdgesPerNode: 2, Seed: 7}
			ids, err := gen.Generate(spec, traced.(engine.Loader))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := gen.Generate(spec, untraced.(engine.Loader)); err != nil {
				t.Fatal(err)
			}

			stmts := twinStatements(qt.LanguageName(), ids)
			if len(stmts) == 0 {
				t.Fatalf("no twin statements for language %q", qt.LanguageName())
			}
			for _, stmt := range stmts {
				// Run each statement twice per side so the second traced run
				// exercises the result-cache hit path under tracing too.
				for pass := 0; pass < 2; pass++ {
					tr := obs.New(stmt)
					ctx := obs.WithTrace(context.Background(), tr)
					ra := renderResult(engine.QueryContext(ctx, qt, stmt))
					tr.Finish()
					rb := renderResult(qu.Query(stmt))
					if ra != rb {
						t.Fatalf("%s pass %d: %q diverged under tracing\n  traced:   %s\n  untraced: %s",
							name, pass, stmt, ra, rb)
					}
					// Vacuity guard: the traced side must actually have traced.
					spans := tr.Spans()
					if len(spans) == 0 {
						t.Fatalf("%s: %q recorded no spans", name, stmt)
					}
					found := false
					for _, s := range spans {
						if s.Name == "query" && s.Depth == 0 {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s: %q has no depth-0 query span: %+v", name, stmt, spans)
					}
				}
			}
		})
	}
}
