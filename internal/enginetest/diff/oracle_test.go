package diff

import (
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/engine/capability"
	"gdbm/internal/model"

	_ "gdbm/internal/engines/hyperdb"
	_ "gdbm/internal/engines/infinigraph"
	_ "gdbm/internal/engines/sonesdb"
)

// declareWorkloadTypes pre-declares the workload's label alphabet on
// schema-checked engines (DEX and InfiniteGraph reject undeclared types on
// the direct API; the Loader auto-declares, but the workload mutates
// through MutableGraph).
func declareWorkloadTypes(e engine.Engine) {
	s, ok := e.(interface{ Schema() *model.Schema })
	if !ok {
		return
	}
	for _, l := range nodeLabels {
		s.Schema().EnsureNodeType(l, model.Props("rank", 0))
	}
	for _, l := range edgeLabels {
		s.Schema().EnsureRelationType(l, nil)
	}
}

// oracleMask narrows the compared classes where an archetype's semantics
// legitimately differ from the property-graph oracle. Triplestore resolves
// a summarization label as an rdf:type statement, not a node label, so
// labeled aggregates are incomparable by design.
func oracleMask(name string) Classes {
	m := AllClasses()
	if name == "triplestore" {
		m.Summ = false
	}
	return m
}

// TestEnginesAgainstOracle replays the seeded workload against every
// registered engine (cached configuration) and the in-memory algo oracle
// in loose mode. Pair intersects the query classes with what each engine's
// Essentials actually expose, so every archetype is checked on exactly its
// Table VII profile; loader-only engines (hyperdb, sonesdb) run the
// add-only subset of the workload.
func TestEnginesAgainstOracle(t *testing.T) {
	for i, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			seed := SeedOrDefault(0x0AC1E + int64(i))
			ops := Generate(seed, 300)
			opts := engine.Options{CacheBytes: twinCacheBytes}
			if capability.NeedsDir(name) {
				opts.Dir = t.TempDir()
			}
			e, err := engine.Open(name, opts)
			if err != nil {
				t.Fatalf("open %s: %v", name, err)
			}
			t.Cleanup(func() { e.Close() })
			declareWorkloadTypes(e)
			if name == "bitmapdb" {
				// DEX enforces referential integrity: removing a node with
				// incident edges is a constraint violation, not a cascade.
				// Dropping the removals keeps both sides consistent — every
				// workload reference stays valid because removal only ever
				// shrinks the simulated live set.
				kept := ops[:0]
				for _, op := range ops {
					if op.Kind != OpRemoveNode {
						kept = append(kept, op)
					}
				}
				ops = kept
			}
			Pair(t, seed, ops, NewInstance(t, e), NewOracle(), false, oracleMask(name))
		})
	}
}
