package diff

import (
	"sort"
	"strings"
	"testing"

	"gdbm/internal/query/plan"
	"gdbm/internal/query/stats"
)

// planPatCount is how many blueprints each run draws (fixed cyclic cores
// plus seeded random patterns). Replay a failing run with -seed=N.
const planPatCount = 24

// planInstance is one engine prepared for plan-differential rendering.
type planInstance struct {
	name string
	src  plan.Source
	st   *stats.Stats
}

func openPlanInstance(t *testing.T, name, cfg string) *planInstance {
	t.Helper()
	tw := openSnapTwin(t, name, cfg)
	seedPlanGraph(t, tw.ld)
	src, ok := tw.eng.(plan.Source)
	if !ok {
		t.Fatalf("%s does not implement plan.Source", name)
	}
	inst := &planInstance{name: name, src: src}
	if sp, ok := tw.eng.(stats.Provider); ok {
		st, err := sp.PlanStats()
		if err != nil {
			t.Fatalf("%s PlanStats: %v", name, err)
		}
		inst.st = st
	}
	if inst.st == nil {
		st, err := stats.Build(src, 0)
		if err != nil {
			t.Fatalf("%s stats.Build fallback: %v", name, err)
		}
		inst.st = st
	}
	return inst
}

// plannerSet is the three planners every spec renders under. Each planner
// gets its own freshly rendered spec: compilation normalizes the spec in
// place, and sharing one would leak normalization across planners.
type namedPlanner struct {
	name    string
	compile func(*plan.MatchSpec, *stats.Stats) (plan.Op, error)
}

var planners = []namedPlanner{
	{"naive", func(s *plan.MatchSpec, _ *stats.Stats) (plan.Op, error) {
		return plan.Compile(s)
	}},
	{"cost", func(s *plan.MatchSpec, st *stats.Stats) (plan.Op, error) {
		op, _, err := plan.Planner{Stats: st}.Compile(s)
		return op, err
	}},
	{"wco", func(s *plan.MatchSpec, st *stats.Stats) (plan.Op, error) {
		op, _, err := plan.Planner{Stats: st, WCO: true}.Compile(s)
		return op, err
	}},
}

// renderPlanResult canonicalizes a result: EncodeKey per row, sorted unless the
// pattern carries a total OrderBy (then order is part of the answer).
func renderPlanResult(res *plan.Result, ordered bool) string {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var kb []byte
		for _, v := range row {
			kb = v.EncodeKey(kb)
			kb = append(kb, '|')
		}
		lines[i] = string(kb)
	}
	if !ordered {
		sort.Strings(lines)
	}
	return strings.Join(lines, "\n")
}

// runPat renders pat under every planner on inst and fails the test unless
// all three renderings are byte-identical; it returns the agreed rendering
// and whether any plan used the multiway intersection operator.
func runPat(t *testing.T, inst *planInstance, pi int, pat PlanPat) (string, bool) {
	t.Helper()
	var agreed string
	usedIntersect := false
	for k, pl := range planners {
		spec, cols := pat.Render("v")
		op, err := pl.compile(spec, inst.st)
		if err != nil {
			t.Fatalf("pat %d planner %s compile: %v", pi, pl.name, err)
		}
		if strings.Contains(op.String(), "Intersect") {
			usedIntersect = true
		}
		res, err := plan.Collect(op, inst.src, cols)
		if err != nil {
			t.Fatalf("pat %d planner %s run: %v\nplan: %s", pi, pl.name, err, op)
		}
		got := renderPlanResult(res, pat.Ordered())
		if k == 0 {
			agreed = got
			continue
		}
		if got != agreed {
			t.Errorf("pat %d: planner %s disagrees with %s\nplan: %s\n%s: %q\n%s: %q",
				pi, pl.name, planners[0].name, op, planners[0].name, agreed, pl.name, got)
		}
	}
	return agreed, usedIntersect
}

// pgFaithful are the snapshotting engines whose Loader preserves the
// property-graph surface verbatim. Triplestore is deliberately absent: its
// triple mapping reifies labels and properties as extra statements (and
// dedupes parallel edges), so the same logical load yields a different —
// equally valid — graph. It still runs the full three-planner identity
// check per pattern; only the cross-engine rendering comparison excludes it.
var pgFaithful = map[string]bool{"bitmapdb": true, "infinigraph": true, "neograph": true}

// TestPlanDifferential is the planner-equivalence proof: every seeded
// pattern, rendered under the naive, cost-based, and worst-case-optimal
// planners, must produce byte-identical canonical results — per engine on
// all snapshotting engines, and then across the property-graph-faithful
// engines (projections are property values, so internal IDs never leak
// into the comparison). It also asserts the WCO planner actually fired at
// least once: a differential test against a plan that never runs proves
// nothing.
func TestPlanDifferential(t *testing.T) {
	pats := GeneratePlanPats(SeedOrDefault(7), planPatCount)
	renders := map[string][]string{}
	intersected := false
	for _, name := range snapEngines {
		t.Run(name, func(t *testing.T) {
			inst := openPlanInstance(t, name, "mem")
			out := make([]string, len(pats))
			for pi, pat := range pats {
				got, usedIntersect := runPat(t, inst, pi, pat)
				out[pi] = got
				intersected = intersected || usedIntersect
			}
			if !t.Failed() && pgFaithful[name] {
				renders[name] = out
			}
		})
	}
	if !intersected {
		t.Errorf("no plan used the Intersect operator; the WCO path went untested")
	}
	// Cross-engine identity over the engines that completed.
	base, baseName := []string(nil), ""
	for _, name := range snapEngines {
		out, ok := renders[name]
		if !ok {
			continue
		}
		if base == nil {
			base, baseName = out, name
			continue
		}
		for pi := range pats {
			if out[pi] != base[pi] {
				t.Errorf("pat %d: engine %s disagrees with %s\n%s: %q\n%s: %q",
					pi, name, baseName, baseName, base[pi], name, out[pi])
			}
		}
	}
}

// TestPlanDifferentialDisk repeats the differential sweep on the
// disk-backed configuration of one representative engine, so the kvgraph
// statistics/sorted-adjacency path is exercised by the harness too.
func TestPlanDifferentialDisk(t *testing.T) {
	pats := GeneratePlanPats(SeedOrDefault(7), planPatCount)
	mem := openPlanInstance(t, "neograph", "mem")
	dir := openPlanInstance(t, "neograph", "dir")
	for pi, pat := range pats {
		a, _ := runPat(t, mem, pi, pat)
		b, _ := runPat(t, dir, pi, pat)
		if a != b {
			t.Errorf("pat %d: dir configuration disagrees with mem\nmem: %q\ndir: %q", pi, a, b)
		}
	}
}
