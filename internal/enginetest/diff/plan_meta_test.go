package diff

import (
	"math"
	"math/rand"
	"testing"

	"gdbm/internal/model"
	"gdbm/internal/query/plan"
	"gdbm/internal/query/stats"
)

// Metamorphic plan tests: a MatchSpec denotes a pattern, not a procedure,
// so rewritings that preserve the pattern — permuting node declarations,
// permuting edge declarations, reversing a Both-direction edge, renaming
// every variable — must never change the rendered result. The estimated
// cost class must hold too: the estimate derives from graph statistics,
// not from declaration order, so a transform may only move it by float
// noise (tie-breaks between equal-cost plans), never by a magnitude.

// permuteNodes relocates node i to perm[i], remapping edges and returns.
func permuteNodes(p PlanPat, perm []int) PlanPat {
	q := p
	q.Nodes = make([]PlanNode, len(p.Nodes))
	for i, n := range p.Nodes {
		q.Nodes[perm[i]] = n
	}
	q.Edges = make([]PlanEdge, len(p.Edges))
	for i, e := range p.Edges {
		e.From, e.To = perm[e.From], perm[e.To]
		q.Edges[i] = e
	}
	q.ReturnNodes = make([]int, len(p.ReturnNodes))
	for i, ni := range p.ReturnNodes {
		q.ReturnNodes[i] = perm[ni]
	}
	return q
}

// permuteEdges reorders edge declarations.
func permuteEdges(p PlanPat, perm []int) PlanPat {
	q := p
	q.Edges = make([]PlanEdge, len(p.Edges))
	for i, e := range p.Edges {
		q.Edges[perm[i]] = e
	}
	return q
}

// flipBoth reverses the endpoints of every single-hop Both edge; an
// undirected pattern edge has no orientation to preserve.
func flipBoth(p PlanPat) PlanPat {
	q := p
	q.Edges = make([]PlanEdge, len(p.Edges))
	for i, e := range p.Edges {
		if e.Dir == model.Both && !e.VarLength {
			e.From, e.To = e.To, e.From
		}
		q.Edges[i] = e
	}
	return q
}

// costClassStable accepts equal classes, or estimates whose underlying
// costs differ by float noise only (summation order and tie-breaks between
// equal-cost plans can straddle a log10 boundary).
func costClassStable(a, b plan.Estimate) bool {
	if a.CostClass() == b.CostClass() {
		return true
	}
	hi := math.Max(a.Cost, b.Cost)
	return hi > 0 && math.Abs(a.Cost-b.Cost)/hi <= 0.01
}

// compileEst compiles under the cost-based planner (WCO on, the planner
// with the most order-sensitive search) and returns plan + estimate.
func compileEst(t *testing.T, spec *plan.MatchSpec, st *stats.Stats) (plan.Op, plan.Estimate) {
	t.Helper()
	op, est, err := plan.Planner{Stats: st, WCO: true}.Compile(spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return op, est
}

// runPatWCO renders pat with prefix, compiles it under the WCO planner,
// and executes it on inst.
func runPatWCO(t *testing.T, inst *planInstance, pat PlanPat, prefix string) (string, plan.Estimate) {
	t.Helper()
	spec, cols := pat.Render(prefix)
	op, est := compileEst(t, spec, inst.st)
	res, err := plan.Collect(op, inst.src, cols)
	if err != nil {
		t.Fatalf("run: %v\nplan: %s", err, op)
	}
	return renderPlanResult(res, pat.Ordered()), est
}

// TestPlanMetamorphic applies every transform to every seeded blueprint on
// one property-graph engine and demands identical renderings and a stable
// cost class. Transform permutations derive from the same seed, so a
// failure replays with -seed=N.
func TestPlanMetamorphic(t *testing.T) {
	seed := SeedOrDefault(13)
	pats := GeneratePlanPats(seed, planPatCount)
	rng := rand.New(rand.NewSource(seed + 1))
	inst := openPlanInstance(t, "neograph", "mem")
	for pi, pat := range pats {
		base, baseEst := runPatWCO(t, inst, pat, "v")
		transforms := []struct {
			name string
			pat  PlanPat
			pre  string
		}{
			{"permute-nodes", permuteNodes(pat, rng.Perm(len(pat.Nodes))), "v"},
			{"permute-edges", permuteEdges(pat, rng.Perm(len(pat.Edges))), "v"},
			{"flip-both", flipBoth(pat), "v"},
			{"rename-vars", pat, "other_"},
		}
		for _, tr := range transforms {
			got, est := runPatWCO(t, inst, tr.pat, tr.pre)
			if got != base {
				t.Errorf("seed %d pat %d transform %s changed the result\nbase: %q\ngot:  %q\n(replay with -seed=%d)",
					seed, pi, tr.name, base, got, seed)
			}
			if !costClassStable(baseEst, est) {
				t.Errorf("seed %d pat %d transform %s moved the cost class: %d (cost %g) -> %d (cost %g)",
					seed, pi, tr.name, baseEst.CostClass(), baseEst.Cost, est.CostClass(), est.Cost)
			}
		}
	}
}

// TestPlanMetamorphicAcrossPlanners re-checks the node-permutation
// transform under the naive and stats-only planners too: pattern-identity
// is a property of the spec semantics, not of one planner's search order.
func TestPlanMetamorphicAcrossPlanners(t *testing.T) {
	seed := SeedOrDefault(17)
	pats := GeneratePlanPats(seed, planPatCount)
	rng := rand.New(rand.NewSource(seed + 1))
	inst := openPlanInstance(t, "bitmapdb", "mem")
	for pi, pat := range pats {
		perm := rng.Perm(len(pat.Nodes))
		mutated := permuteNodes(pat, perm)
		for _, pl := range planners {
			render := func(p PlanPat) string {
				spec, cols := p.Render("v")
				op, err := pl.compile(spec, inst.st)
				if err != nil {
					t.Fatalf("pat %d planner %s compile: %v", pi, pl.name, err)
				}
				res, err := plan.Collect(op, inst.src, cols)
				if err != nil {
					t.Fatalf("pat %d planner %s run: %v", pi, pl.name, err)
				}
				return renderPlanResult(res, pat.Ordered())
			}
			if a, b := render(pat), render(mutated); a != b {
				t.Errorf("seed %d pat %d planner %s: node permutation changed the result\nbase: %q\ngot:  %q\n(replay with -seed=%d)",
					seed, pi, pl.name, a, b, seed)
			}
		}
	}
}
