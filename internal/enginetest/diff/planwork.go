package diff

import (
	"fmt"
	"math/rand"

	"gdbm/internal/model"
	"gdbm/internal/query"
	"gdbm/internal/query/plan"
)

// This file is the plan-differential workload: seeded pattern blueprints
// rendered into plan.MatchSpec values. A blueprint is deliberately NOT a
// MatchSpec — it is the abstract pattern, so the metamorphic transforms
// (node/edge permutation, Both-edge reversal, variable renaming) operate on
// structure and re-render, rather than rewriting compiled expressions. Two
// renderings of equivalent blueprints must produce byte-identical results
// under every planner on every engine.

// PlanNode is one abstract pattern node: an optional label constraint and
// an optional rank-equality constraint (-1 = none).
type PlanNode struct {
	Label  string
	RankEq int
}

// PlanEdge joins blueprint nodes by index.
type PlanEdge struct {
	From, To  int
	Label     string
	Dir       model.Direction
	VarLength bool
	Min, Max  int
}

// PlanPat is one differential test case in abstract form.
type PlanPat struct {
	Nodes []PlanNode
	Edges []PlanEdge
	// ReturnNodes lists the node indices projected (as their rank
	// property — never raw IDs, which differ across engines).
	ReturnNodes []int
	Distinct    bool
	Count       bool // global count(*) instead of projection
	Limit       int  // -1 = none; >=0 renders with a total OrderBy
	Offset      int
}

// Render materializes the blueprint as a MatchSpec. Variable names derive
// from prefix, so renaming is just re-rendering with a different prefix.
// When Limit/Offset are active the spec carries an OrderBy over ALL
// returned columns: only a totally-ordered prefix is deterministic under
// join reordering (rows tying on every rendered column are
// interchangeable, and render identically).
func (p PlanPat) Render(prefix string) (*plan.MatchSpec, []string) {
	spec := &plan.MatchSpec{Limit: -1}
	for _, n := range p.Nodes {
		np := plan.NodePat{Var: fmt.Sprintf("%s%d", prefix, len(spec.Nodes)), Label: n.Label}
		if n.RankEq >= 0 {
			np.Props = model.Props("rank", n.RankEq)
		}
		spec.Nodes = append(spec.Nodes, np)
	}
	for _, e := range p.Edges {
		spec.Edges = append(spec.Edges, plan.EdgePat{
			From: e.From, To: e.To, Label: e.Label, Dir: e.Dir,
			VarLength: e.VarLength, Min: e.Min, Max: e.Max,
		})
	}
	var cols []string
	if p.Count {
		spec.Aggs = []plan.AggItem{{Name: "n", Fn: "count"}}
		return spec, []string{"n"}
	}
	for k, ni := range p.ReturnNodes {
		name := fmt.Sprintf("c%d", k)
		spec.Return = append(spec.Return, plan.Item{
			Name: name,
			Expr: query.Var{Name: spec.Nodes[ni].Var, Prop: "rank"},
		})
		cols = append(cols, name)
	}
	spec.Distinct = p.Distinct
	if p.Limit >= 0 || p.Offset > 0 {
		spec.Limit = p.Limit
		spec.Offset = p.Offset
		for _, c := range cols {
			spec.OrderBy = append(spec.OrderBy, plan.OrderKey{Expr: query.Var{Name: c}})
		}
	}
	return spec, cols
}

// Ordered reports whether renderings compare positionally (total OrderBy
// active) instead of as sorted multisets.
func (p PlanPat) Ordered() bool { return !p.Count && (p.Limit >= 0 || p.Offset > 0) }

// fixedPlanPats are the hand-written cyclic cores every run must cover:
// the shapes the WCO operator exists for.
func fixedPlanPats() []PlanPat {
	none := -1
	return []PlanPat{
		{ // triangle
			Nodes: []PlanNode{{"", none}, {"", none}, {"", none}},
			Edges: []PlanEdge{
				{From: 0, To: 1, Label: "knows", Dir: model.Out},
				{From: 1, To: 2, Label: "knows", Dir: model.Out},
				{From: 0, To: 2, Label: "knows", Dir: model.Out},
			},
			ReturnNodes: []int{0, 1, 2}, Limit: -1,
		},
		{ // triangle, undirected
			Nodes: []PlanNode{{"person", none}, {"", none}, {"", none}},
			Edges: []PlanEdge{
				{From: 0, To: 1, Label: "", Dir: model.Both},
				{From: 1, To: 2, Label: "", Dir: model.Both},
				{From: 0, To: 2, Label: "", Dir: model.Both},
			},
			ReturnNodes: []int{0, 1, 2}, Limit: -1, Distinct: true,
		},
		{ // diamond
			Nodes: []PlanNode{{"", none}, {"", none}, {"", none}, {"", none}},
			Edges: []PlanEdge{
				{From: 0, To: 1, Label: "knows", Dir: model.Out},
				{From: 0, To: 2, Label: "near", Dir: model.Out},
				{From: 1, To: 3, Label: "near", Dir: model.Out},
				{From: 2, To: 3, Label: "knows", Dir: model.Out},
			},
			ReturnNodes: []int{0, 3}, Limit: -1,
		},
		{ // cyclic core feeding a var-length tail
			Nodes: []PlanNode{{"", none}, {"", none}, {"", none}, {"", none}},
			Edges: []PlanEdge{
				{From: 0, To: 1, Label: "knows", Dir: model.Out},
				{From: 1, To: 2, Label: "knows", Dir: model.Out},
				{From: 0, To: 2, Label: "knows", Dir: model.Out},
				{From: 2, To: 3, Label: "", Dir: model.Out, VarLength: true, Min: 1, Max: 2},
			},
			ReturnNodes: []int{0, 3}, Limit: -1,
		},
		{ // triangle counted
			Nodes: []PlanNode{{"", none}, {"", none}, {"", none}},
			Edges: []PlanEdge{
				{From: 0, To: 1, Label: "", Dir: model.Out},
				{From: 1, To: 2, Label: "", Dir: model.Out},
				{From: 0, To: 2, Label: "", Dir: model.Out},
			},
			Count: true, Limit: -1,
		},
	}
}

// GeneratePlanPats derives n deterministic pattern blueprints from seed,
// prefixed by the fixed cyclic cores. Sizes are bounded so the worst
// blueprint stays small enough to run under three planners on every
// engine: at most 4 nodes, and 3+ node patterns are kept connected-ish by
// construction (disconnected cross-products are exercised with 2 nodes).
func GeneratePlanPats(seed int64, n int) []PlanPat {
	rng := rand.New(rand.NewSource(seed))
	pats := fixedPlanPats()
	dirs := []model.Direction{model.Out, model.In, model.Both}
	for len(pats) < n {
		var p PlanPat
		nn := 1 + rng.Intn(4)
		for i := 0; i < nn; i++ {
			node := PlanNode{RankEq: -1}
			if rng.Intn(2) == 0 {
				node.Label = nodeLabels[rng.Intn(len(nodeLabels))]
			}
			if rng.Intn(5) == 0 {
				node.RankEq = rng.Intn(7)
			}
			p.Nodes = append(p.Nodes, node)
		}
		// Edge count: enough to usually connect 3+ patterns, sometimes
		// extra edges that close cycles or duplicate pairs.
		ne := 0
		if nn > 1 {
			ne = nn - 1 + rng.Intn(3)
		}
		for j := 0; j < ne; j++ {
			e := PlanEdge{Dir: dirs[rng.Intn(len(dirs))]}
			if j < nn-1 && nn > 2 {
				// Spanning-ish: attach node j+1 to an earlier node.
				e.From = rng.Intn(j + 1)
				e.To = j + 1
			} else {
				e.From = rng.Intn(nn)
				e.To = rng.Intn(nn)
			}
			if rng.Intn(5) > 0 {
				e.Label = edgeLabels[rng.Intn(len(edgeLabels))]
			}
			if rng.Intn(8) == 0 {
				e.VarLength = true
				e.Min = rng.Intn(2)
				e.Max = e.Min + 1 + rng.Intn(2)
				e.Dir = model.Out
			}
			p.Edges = append(p.Edges, e)
		}
		switch rng.Intn(10) {
		case 0:
			p.Count = true
		default:
			k := 1 + rng.Intn(nn)
			perm := rng.Perm(nn)
			p.ReturnNodes = append(p.ReturnNodes, perm[:k]...)
			p.Distinct = rng.Intn(4) == 0
		}
		p.Limit = -1
		if !p.Count && rng.Intn(5) == 0 {
			p.Limit = 1 + rng.Intn(5)
			p.Offset = rng.Intn(3)
		}
		pats = append(pats, p)
	}
	return pats
}

// seedPlanGraph loads the deterministic plan-differential graph through the
// Loader: 24 nodes over the three labels with rank i%7, a chain/skip edge
// mesh, explicit triangles and diamonds (so the cyclic cores are
// populated), one parallel edge and one self-loop (the multiplicity edge
// cases the WCO operator must reproduce exactly).
func seedPlanGraph(tb interface {
	Helper()
	Fatalf(string, ...interface{})
}, ld interface {
	LoadNode(string, model.Properties) (model.NodeID, error)
	LoadEdge(string, model.NodeID, model.NodeID, model.Properties) (model.EdgeID, error)
}) []model.NodeID {
	tb.Helper()
	const n = 24
	ids := make([]model.NodeID, 0, n)
	for i := 0; i < n; i++ {
		id, err := ld.LoadNode(nodeLabels[i%len(nodeLabels)], model.Props("rank", i%7))
		if err != nil {
			tb.Fatalf("seedPlanGraph LoadNode %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	addEdge := func(label string, a, b int) {
		if _, err := ld.LoadEdge(label, ids[a], ids[b], nil); err != nil {
			tb.Fatalf("seedPlanGraph LoadEdge %s %d->%d: %v", label, a, b, err)
		}
	}
	for j := 0; j < 2*n; j++ {
		addEdge(edgeLabels[j%len(edgeLabels)], j%n, (j*7+1)%n)
	}
	// Deterministic triangles: i -> i+1 -> i+2 -> closed by i -> i+2.
	for i := 0; i < n-2; i += 3 {
		addEdge("knows", i, i+1)
		addEdge("knows", i+1, i+2)
		addEdge("knows", i, i+2)
	}
	// Diamonds over "near": i -> {i+2, i+4} -> i+6.
	for i := 0; i < n-6; i += 5 {
		addEdge("near", i, i+2)
		addEdge("near", i, i+4)
		addEdge("near", i+2, i+6)
		addEdge("near", i+4, i+6)
	}
	// Multiplicity edge cases.
	addEdge("knows", 0, 1) // parallel with the first triangle edge
	addEdge("owns", 5, 5)  // self-loop
	return ids
}
