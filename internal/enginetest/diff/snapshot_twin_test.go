package diff

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/model"

	_ "gdbm/internal/engines/infinigraph"
)

// snapEngines are the four archetypes whose profiles allow Concurrent:
// their AcquireSnapshot must return a frozen, epoch-pinned view that
// writers cannot perturb.
var snapEngines = []string{"triplestore", "bitmapdb", "infinigraph", "neograph"}

// renderGraph dumps a model.Graph canonically: every node and edge in
// ascending-id order with sorted properties, then the Both-direction
// neighborhood of every node. Two graphs with equal renderings are
// observationally identical to the essential-query surface.
func renderGraph(t *testing.T, g model.Graph) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "order=%d size=%d\n", g.Order(), g.Size())
	var nodes []model.Node
	if err := g.Nodes(func(n model.Node) bool { nodes = append(nodes, n); return true }); err != nil {
		t.Errorf("render Nodes: %v", err)
		return "render-error"
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		fmt.Fprintf(&b, "n%d %s %s\n", n.ID, n.Label, renderProps(n.Props))
	}
	var edges []model.Edge
	if err := g.Edges(func(e model.Edge) bool { edges = append(edges, e); return true }); err != nil {
		t.Errorf("render Edges: %v", err)
		return "render-error"
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].ID < edges[j].ID })
	for _, e := range edges {
		fmt.Fprintf(&b, "e%d %s n%d->n%d %s\n", e.ID, e.Label, e.From, e.To, renderProps(e.Props))
	}
	for _, n := range nodes {
		var nbr []string
		err := g.Neighbors(n.ID, model.Both, func(e model.Edge, m model.Node) bool {
			nbr = append(nbr, fmt.Sprintf("n%d/e%d", m.ID, e.ID))
			return true
		})
		if err != nil {
			t.Errorf("render Neighbors(%d): %v", n.ID, err)
			return "render-error"
		}
		sort.Strings(nbr)
		fmt.Fprintf(&b, "adj n%d [%s]\n", n.ID, strings.Join(nbr, " "))
	}
	return b.String()
}

func renderProps(p model.Properties) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + p[k].String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// snapTwin is one side of the snapshot twin pair, seeded through the
// Loader surface (which declares labels on typed archetypes) so the same
// script replays on every engine.
type snapTwin struct {
	eng   engine.Engine
	con   engine.Concurrent
	ld    engine.Loader
	mg    model.MutableGraph
	nodes []model.NodeID
}

func openSnapTwin(t *testing.T, name, cfg string) *snapTwin {
	t.Helper()
	opts := engine.Options{}
	if cfg == "dir" {
		opts.Dir = t.TempDir()
	}
	e, err := engine.Open(name, opts)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	t.Cleanup(func() { e.Close() })
	tw := &snapTwin{eng: e}
	var ok bool
	if tw.con, ok = e.(engine.Concurrent); !ok {
		t.Fatalf("%s does not implement engine.Concurrent", name)
	}
	if tw.ld, ok = e.(engine.Loader); !ok {
		t.Fatalf("%s does not implement engine.Loader", name)
	}
	if tw.mg, ok = e.(model.MutableGraph); !ok {
		t.Fatalf("%s does not expose a mutation surface", name)
	}
	return tw
}

// seedPrefix loads the deterministic base graph: 24 nodes over the three
// node labels, 48 edges over the three edge labels.
func (tw *snapTwin) seedPrefix(t *testing.T) {
	t.Helper()
	const n = 24
	for i := 0; i < n; i++ {
		id, err := tw.ld.LoadNode(nodeLabels[i%len(nodeLabels)], model.Props("rank", i))
		if err != nil {
			t.Fatalf("%s prefix LoadNode %d: %v", tw.eng.Name(), i, err)
		}
		tw.nodes = append(tw.nodes, id)
	}
	for j := 0; j < 2*n; j++ {
		from, to := tw.nodes[j%n], tw.nodes[(j*7+1)%n]
		if _, err := tw.ld.LoadEdge(edgeLabels[j%len(edgeLabels)], from, to, nil); err != nil {
			t.Fatalf("%s prefix LoadEdge %d: %v", tw.eng.Name(), j, err)
		}
	}
}

// applySuffix replays the racing-phase mutation script: edge churn through
// the Loader (declared labels), property churn and paired removals through
// the mutable surface. Deterministic, so both twins converge to the same
// final graph.
func (tw *snapTwin) applySuffix(t *testing.T) {
	t.Helper()
	n := len(tw.nodes)
	var added []model.EdgeID
	for j := 0; j < 90; j++ {
		switch j % 3 {
		case 0:
			id, err := tw.ld.LoadEdge(edgeLabels[j%len(edgeLabels)], tw.nodes[j%n], tw.nodes[(j*5+2)%n], nil)
			if err != nil {
				t.Errorf("%s suffix LoadEdge %d: %v", tw.eng.Name(), j, err)
				return
			}
			added = append(added, id)
		case 1:
			if err := tw.mg.SetNodeProp(tw.nodes[(j*3)%n], "rank", model.Int(int64(1000+j))); err != nil {
				t.Errorf("%s suffix SetNodeProp %d: %v", tw.eng.Name(), j, err)
				return
			}
		case 2:
			// j=3k adds edge #k and j=3k+2 removes it, so each added edge
			// is removed exactly once.
			if err := tw.mg.RemoveEdge(added[j/3]); err != nil {
				t.Errorf("%s suffix RemoveEdge %d: %v", tw.eng.Name(), j, err)
				return
			}
		}
	}
}

// TestPinnedSnapshotSurvivesWriterTwins is the writer-during-long-read
// proof. For each snapshotting engine (memory and disk configurations): a
// twin pair replays the same mutation prefix; instance A pins a snapshot;
// a writer then races a suffix of mutations against concurrent readers
// re-rendering the pinned view. Every concurrent rendering — and a final
// one after the writer finishes — must be byte-identical to a snapshot of
// twin B, which replayed only the prefix sequentially. A fresh snapshot
// acquired afterwards on A must equal twin B after B replays the suffix.
// Run under -race this also proves the pin/publish protocol is race-clean.
func TestPinnedSnapshotSurvivesWriterTwins(t *testing.T) {
	for _, name := range snapEngines {
		for _, cfg := range []string{"mem", "dir"} {
			t.Run(name+"/"+cfg, func(t *testing.T) {
				a := openSnapTwin(t, name, cfg)
				b := openSnapTwin(t, name, cfg)
				a.seedPrefix(t)
				b.seedPrefix(t)

				// Pin the prefix epoch on A; twin B's snapshot is the
				// sequential replay of the same epoch.
				pinned, release, err := a.con.AcquireSnapshot()
				if err != nil {
					t.Fatalf("AcquireSnapshot: %v", err)
				}
				baseline := renderGraph(t, pinned)
				gb, relB, err := b.con.AcquireSnapshot()
				if err != nil {
					t.Fatalf("twin AcquireSnapshot: %v", err)
				}
				if rb := renderGraph(t, gb); rb != baseline {
					t.Fatalf("pinned view diverged from sequential twin before any write:\nA:\n%s\nB:\n%s", baseline, rb)
				}
				relB()

				// Writer races readers that keep re-rendering the pinned view.
				var wg sync.WaitGroup
				stop := make(chan struct{})
				for r := 0; r < 3; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							select {
							case <-stop:
								return
							default:
							}
							if got := renderGraph(t, pinned); got != baseline {
								t.Errorf("pinned view changed under a concurrent writer")
								return
							}
						}
					}()
				}
				a.applySuffix(t)
				close(stop)
				wg.Wait()

				// Immutability holds after the writer too.
				if got := renderGraph(t, pinned); got != baseline {
					t.Fatalf("pinned view changed after the writer finished")
				}
				release()
				release() // idempotent

				// A fresh snapshot sees the suffix: it must equal twin B
				// after B replays the same suffix sequentially.
				b.applySuffix(t)
				ga2, relA2, err := a.con.AcquireSnapshot()
				if err != nil {
					t.Fatalf("fresh AcquireSnapshot: %v", err)
				}
				defer relA2()
				gb2, relB2, err := b.con.AcquireSnapshot()
				if err != nil {
					t.Fatalf("twin fresh AcquireSnapshot: %v", err)
				}
				defer relB2()
				ra, rb := renderGraph(t, ga2), renderGraph(t, gb2)
				if ra != rb {
					t.Fatalf("post-write snapshots diverged between racing and sequential twins:\nA:\n%s\nB:\n%s", ra, rb)
				}
				if ra == baseline {
					t.Fatalf("fresh snapshot still renders the pre-write epoch")
				}
			})
		}
	}
}
