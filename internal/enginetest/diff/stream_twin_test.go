package diff

import (
	"context"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/gen"
	"gdbm/internal/model"
	"gdbm/internal/query/plan"

	_ "gdbm/internal/engines/sonesdb"
)

// collectSink materializes a streamed result for comparison.
type collectSink struct {
	res plan.Result
}

func (c *collectSink) Cols(cols []string) error {
	c.res.Cols = append([]string(nil), cols...)
	return nil
}

func (c *collectSink) Row(vals []model.Value) error {
	c.res.Rows = append(c.res.Rows, vals)
	return nil
}

// streamTwinEngines are the four language-fronted engines that implement
// engine.StreamQuerier — one per query surface the server exposes
// (gql, gsql on disk, gsql in memory, sparqlish).
var streamTwinEngines = []string{"neograph", "gstore", "sonesdb", "triplestore"}

// TestStreamedBufferedTwins runs identical statements through QueryContext
// (materialize) and QueryStream (incremental emission) on the same engine
// instance and requires byte-identical renderings: streaming is a delivery
// change, never a result change. Each statement runs twice so the second
// pass exercises the result-cache hit path (cached reads replay through the
// same sink interface).
func TestStreamedBufferedTwins(t *testing.T) {
	for _, name := range streamTwinEngines {
		t.Run(name, func(t *testing.T) {
			var eng engine.Engine
			if name == "sonesdb" {
				e, err := engine.Open(name, engine.Options{})
				if err != nil {
					t.Fatalf("open %s: %v", name, err)
				}
				t.Cleanup(func() { e.Close() })
				eng = e
			} else {
				eng = openTwin(t, name, twinCacheBytes)
			}
			q := eng.(engine.Querier)
			sq, ok := q.(engine.StreamQuerier)
			if !ok {
				t.Fatalf("%s does not implement StreamQuerier; twin is vacuous", name)
			}

			spec := gen.Spec{Kind: gen.RMAT, Nodes: 300, EdgesPerNode: 2, Seed: 7}
			ids, err := gen.Generate(spec, eng.(engine.Loader))
			if err != nil {
				t.Fatal(err)
			}

			stmts := twinStatements(q.LanguageName(), ids)
			if len(stmts) == 0 {
				t.Fatalf("no twin statements for language %q", q.LanguageName())
			}
			totalRows := 0
			for _, stmt := range stmts {
				for pass := 0; pass < 2; pass++ {
					buffered := renderResult(engine.QueryContext(context.Background(), q, stmt))
					var sink collectSink
					serr := sq.QueryStream(context.Background(), stmt, &sink)
					streamed := renderResult(&sink.res, serr)
					if streamed != buffered {
						t.Fatalf("%s pass %d: %q diverged\n  buffered: %s\n  streamed: %s",
							name, pass, stmt, buffered, streamed)
					}
					totalRows += len(sink.res.Rows)
				}
			}
			// Vacuity guard: the workload must actually have streamed rows.
			if totalRows == 0 {
				t.Fatalf("%s: no rows streamed across %d statements", name, len(stmts))
			}
		})
	}
}

// TestStreamFallbackTwin: engine.QueryStream on a Querier without native
// streaming must materialize and replay the identical result — the server
// depends on this to host any engine uniformly.
func TestStreamFallbackTwin(t *testing.T) {
	eng := openTwin(t, "vertexkv", twinCacheBytes)
	q, ok := eng.(engine.Querier)
	if !ok {
		t.Skip("vertexkv is API-only in this build")
	}
	if _, native := q.(engine.StreamQuerier); native {
		t.Skip("vertexkv gained native streaming; fallback twin is vacuous")
	}
	spec := gen.Spec{Kind: gen.RMAT, Nodes: 100, EdgesPerNode: 2, Seed: 11}
	ids, err := gen.Generate(spec, eng.(engine.Loader))
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range twinStatements(q.LanguageName(), ids) {
		buffered := renderResult(engine.QueryContext(context.Background(), q, stmt))
		var sink collectSink
		serr := engine.QueryStream(context.Background(), q, stmt, &sink)
		streamed := renderResult(&sink.res, serr)
		if streamed != buffered {
			t.Fatalf("%q diverged through the fallback\n  buffered: %s\n  streamed: %s",
				stmt, buffered, streamed)
		}
	}
}
