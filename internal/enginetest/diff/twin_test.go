package diff

import (
	"sync"
	"testing"

	"gdbm/internal/engine"
	"gdbm/internal/model"

	_ "gdbm/internal/engines/bitmapdb"
	_ "gdbm/internal/engines/filamentdb"
	_ "gdbm/internal/engines/gstore"
	_ "gdbm/internal/engines/neograph"
	_ "gdbm/internal/engines/triplestore"
	_ "gdbm/internal/engines/vertexkv"
)

// twinEngines are the disk-backed engines whose cached and uncached
// configurations are proven observationally identical. They cover three
// distinct storage surfaces: propcore over kvgraph (neograph, bitmapdb,
// triplestore), direct kvgraph embedding (vertexkv, filamentdb) and a
// language-fronted store (gstore).
var twinEngines = []string{"neograph", "vertexkv", "gstore", "filamentdb", "bitmapdb", "triplestore"}

const twinCacheBytes = 1 << 20

func openTwin(t *testing.T, name string, cacheBytes int64) engine.Engine {
	t.Helper()
	e, err := engine.Open(name, engine.Options{Dir: t.TempDir(), CacheBytes: cacheBytes})
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestCachedUncachedTwins replays one seeded mutate/query workload against
// a cached and an uncached instance of the same engine and requires
// byte-identical renderings of every answer. This is the invalidation
// proof: any stale cache entry surfaces as a divergence at the first query
// after the mutation that should have invalidated it.
func TestCachedUncachedTwins(t *testing.T) {
	for i, name := range twinEngines {
		t.Run(name, func(t *testing.T) {
			seed := SeedOrDefault(0xD1FF + int64(i))
			ops := Generate(seed, 400)
			cached := openTwin(t, name, twinCacheBytes)
			uncached := openTwin(t, name, 0)
			Pair(t, seed, ops, NewInstance(t, cached), NewInstance(t, uncached), true, AllClasses())

			// The proof is vacuous if the cached side never actually hit its
			// caches: require at least one hit across the tiers.
			cs, ok := cached.(engine.CacheStatser)
			if !ok {
				t.Fatalf("%s: cached instance exposes no CacheStats", name)
			}
			var hits uint64
			for tier, s := range cs.CacheStats() {
				t.Logf("%s %s: hits=%d misses=%d evictions=%d used=%d/%d",
					name, tier, s.Hits, s.Misses, s.Evictions, s.UsedBytes, s.BudgetBytes)
				hits += s.Hits
			}
			if hits == 0 {
				t.Fatalf("%s: cached twin recorded zero cache hits over %d ops", name, len(ops))
			}
		})
	}
}

// symMut is a symbolic mutation for the concurrent twin test: it references
// nodes by workload index and phase-added edges by add order, so the same
// list replays against either instance using that instance's own ids.
type symMut struct {
	kind  OpKind
	a, b  int // workload node indexes
	eStep int // index into this phase's added edges (OpRemoveEdge)
	val   int64
}

func applySym(t *testing.T, in *Instance, muts []symMut) {
	t.Helper()
	var added []model.EdgeID
	for i, m := range muts {
		switch m.kind {
		case OpAddEdge:
			id, err := in.mg.AddEdge("knows", in.nodes[m.a], in.nodes[m.b], nil)
			if err != nil {
				t.Fatalf("%s mut %d: AddEdge: %v", in.Name, i, err)
			}
			added = append(added, id)
		case OpRemoveEdge:
			if err := in.mg.RemoveEdge(added[m.eStep]); err != nil {
				t.Fatalf("%s mut %d: RemoveEdge: %v", in.Name, i, err)
			}
		case OpSetNodeProp:
			if err := in.mg.SetNodeProp(in.nodes[m.a], "rank", model.Int(m.val)); err != nil {
				t.Fatalf("%s mut %d: SetNodeProp: %v", in.Name, i, err)
			}
		}
	}
}

// TestCachedTwinConcurrentReaders hammers a cached engine with concurrent
// essential queries while a writer mutates the graph, then replays the same
// mutations on an uncached twin and requires the final query sweeps to
// agree. Run under -race this also proves the epoch/cache machinery is
// data-race free against the engines' own locking.
func TestCachedTwinConcurrentReaders(t *testing.T) {
	for i, name := range []string{"neograph", "vertexkv", "gstore"} {
		t.Run(name, func(t *testing.T) {
			seed := SeedOrDefault(0xCAFE + int64(i))
			ops := Generate(seed, 150)
			cached := NewInstance(t, openTwin(t, name, twinCacheBytes))
			uncached := NewInstance(t, openTwin(t, name, 0))

			// Build identical bases: mutations only, queries dropped. Node
			// removals are skipped so every workload index stays valid for
			// the concurrent readers below.
			for _, op := range ops {
				if op.Kind >= OpQueryAdjacency || op.Kind == OpRemoveNode {
					continue
				}
				cached.Apply(op, true)
			}
			snapshot := append([]model.NodeID(nil), cached.nodes...)
			if len(snapshot) < 2 {
				t.Fatalf("seed %d: base workload produced %d nodes", seed, len(snapshot))
			}

			// Deterministic mutation script for the concurrent phase.
			var muts []symMut
			for j := 0; j < 60; j++ {
				switch j % 3 {
				case 0:
					muts = append(muts, symMut{kind: OpAddEdge, a: j % len(snapshot), b: (j * 7) % len(snapshot)})
				case 1:
					muts = append(muts, symMut{kind: OpSetNodeProp, a: (j * 3) % len(snapshot), val: int64(j)})
				case 2:
					// j=3k adds edge #k and j=3k+2 removes it, so each edge is
					// removed exactly once.
					muts = append(muts, symMut{kind: OpRemoveEdge, eStep: len(muts) / 3})
				}
			}

			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					es := cached.es
					for j := 0; ; j++ {
						select {
						case <-stop:
							return
						default:
						}
						a := snapshot[(r+j)%len(snapshot)]
						b := snapshot[(r*13+j*5)%len(snapshot)]
						// Results are discarded: correctness of concurrent
						// reads is the final sweep's job; this loop exists to
						// race Get/Put/eviction against the writer's epoch
						// bumps. Not every archetype exposes every class
						// (vertexkv has no shortest path), hence the guards.
						if es.NodeAdjacency != nil {
							es.NodeAdjacency(a, b)
						}
						if es.KNeighborhood != nil {
							es.KNeighborhood(a, 1+j%3)
						}
						if es.ShortestPath != nil {
							es.ShortestPath(a, b)
						}
						if es.Summarization != nil {
							es.Summarization(0, "person", "rank")
						}
					}
				}(r)
			}
			applySym(t, cached, muts)
			close(stop)
			wg.Wait()

			// Bring the uncached twin to the same final state and compare
			// full query sweeps over every node pair.
			for _, op := range ops {
				if op.Kind >= OpQueryAdjacency || op.Kind == OpRemoveNode {
					continue
				}
				uncached.Apply(op, true)
			}
			applySym(t, uncached, muts)
			n := len(snapshot)
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					for _, q := range []Op{
						{Kind: OpQueryAdjacency, A: a, B: b},
						{Kind: OpQueryKNeighborhood, A: a, K: 2},
						{Kind: OpQueryShortest, A: a, B: b},
					} {
						if !cached.supportsQuery(q) {
							continue
						}
						ra, rb := cached.Apply(q, true), uncached.Apply(q, true)
						if ra != rb {
							t.Fatalf("seed %d: final sweep diverged at (%d,%d) %+v\n  cached:   %s\n  uncached: %s\n(replay with -seed=%d)",
								seed, a, b, q, ra, rb, seed)
						}
					}
				}
			}
			for _, label := range nodeLabels {
				q := Op{Kind: OpQuerySummarize, Label: label, Prop: "rank"}
				if !cached.supportsQuery(q) {
					continue
				}
				if ra, rb := cached.Apply(q, true), uncached.Apply(q, true); ra != rb {
					t.Fatalf("seed %d: summarize(%s) diverged: %s vs %s", seed, label, ra, rb)
				}
			}
		})
	}
}
