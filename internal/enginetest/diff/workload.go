// Package diff is the differential-testing substrate for the caching layer
// and the engine fleet. One seeded workload — interleaved mutations and the
// essential query classes of Table VII — is replayed against two instances
// (a cached and an uncached twin of the same engine, or an engine against
// the in-memory oracle), and every rendered answer must match byte for
// byte. Failures always log the seed so a run is replayable with
// -seed=<n>.
package diff

import "math/rand"

// OpKind enumerates workload operations. Mutations interleave with all
// four essential query classes (adjacency, neighborhood, paths,
// summarization) so cache invalidation is exercised between every pair of
// reads.
type OpKind int

const (
	OpAddNode OpKind = iota
	OpAddEdge
	OpRemoveEdge
	OpRemoveNode
	OpSetNodeProp
	OpFlush
	OpQueryAdjacency
	OpQueryKNeighborhood
	OpQueryFixedPaths
	OpQueryShortest
	OpQuerySummarize
)

// Op is one workload step. Node and edge references are workload indexes
// (dense, allocation-ordered), not engine ids: each instance maintains its
// own index-to-id mapping, so the same workload drives engines with
// different id spaces.
type Op struct {
	Kind OpKind
	// A, B reference nodes by workload index (OpAddEdge endpoints, query
	// arguments, OpSetNodeProp/OpRemoveNode target).
	A, B int
	// E references an edge by workload index (OpRemoveEdge).
	E int
	// K is the neighborhood depth or path length.
	K int
	// Label is the node/edge label (mutations) or the summarized label.
	Label string
	// Prop and Val carry OpSetNodeProp's assignment.
	Prop string
	Val  int64
}

// nodeLabels keeps the label alphabet small so summarization queries hit
// populated groups.
var nodeLabels = []string{"person", "place", "thing"}

var edgeLabels = []string{"knows", "near", "owns"}

// Generate derives a deterministic workload of n ops from seed. It
// simulates the graph structure as it generates, so every reference is
// valid at execution time (edges are only removed once, endpoints exist,
// queries target live nodes).
func Generate(seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	var ops []Op
	var liveNodes []int // workload indexes of live nodes
	type sedge struct {
		idx, from, to int
	}
	var liveEdges []sedge
	nextNode, nextEdge := 0, 0

	addNode := func() {
		ops = append(ops, Op{
			Kind:  OpAddNode,
			Label: nodeLabels[rng.Intn(len(nodeLabels))],
			Prop:  "rank",
			Val:   int64(rng.Intn(100)),
		})
		liveNodes = append(liveNodes, nextNode)
		nextNode++
	}
	// Seed a small base so early queries have something to traverse.
	for i := 0; i < 8; i++ {
		addNode()
	}

	pickNode := func() int { return liveNodes[rng.Intn(len(liveNodes))] }

	for len(ops) < n {
		switch r := rng.Intn(100); {
		case r < 14:
			addNode()
		case r < 34:
			if len(liveNodes) < 2 {
				addNode()
				continue
			}
			from, to := pickNode(), pickNode()
			ops = append(ops, Op{
				Kind: OpAddEdge, A: from, B: to,
				Label: edgeLabels[rng.Intn(len(edgeLabels))],
			})
			liveEdges = append(liveEdges, sedge{idx: nextEdge, from: from, to: to})
			nextEdge++
		case r < 40:
			if len(liveEdges) == 0 {
				continue
			}
			i := rng.Intn(len(liveEdges))
			ops = append(ops, Op{Kind: OpRemoveEdge, E: liveEdges[i].idx})
			liveEdges = append(liveEdges[:i], liveEdges[i+1:]...)
		case r < 44:
			// Keep the graph from emptying out; node removal cascades to
			// incident edges in the structural simulation exactly as the
			// kvgraph contract specifies.
			if len(liveNodes) <= 4 {
				continue
			}
			i := rng.Intn(len(liveNodes))
			victim := liveNodes[i]
			ops = append(ops, Op{Kind: OpRemoveNode, A: victim})
			liveNodes = append(liveNodes[:i], liveNodes[i+1:]...)
			kept := liveEdges[:0]
			for _, e := range liveEdges {
				if e.from != victim && e.to != victim {
					kept = append(kept, e)
				}
			}
			liveEdges = kept
		case r < 52:
			ops = append(ops, Op{
				Kind: OpSetNodeProp, A: pickNode(),
				Prop: "rank", Val: int64(rng.Intn(100)),
			})
		case r < 55:
			ops = append(ops, Op{Kind: OpFlush})
		case r < 68:
			ops = append(ops, Op{Kind: OpQueryAdjacency, A: pickNode(), B: pickNode()})
		case r < 80:
			ops = append(ops, Op{Kind: OpQueryKNeighborhood, A: pickNode(), K: 1 + rng.Intn(3)})
		case r < 88:
			ops = append(ops, Op{Kind: OpQueryFixedPaths, A: pickNode(), B: pickNode(), K: 1 + rng.Intn(3)})
		case r < 94:
			ops = append(ops, Op{Kind: OpQueryShortest, A: pickNode(), B: pickNode()})
		default:
			ops = append(ops, Op{
				Kind:  OpQuerySummarize,
				Label: nodeLabels[rng.Intn(len(nodeLabels))],
				Prop:  "rank",
			})
		}
	}
	return ops
}
