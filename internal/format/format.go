// Package format implements graph import/export in the interchange formats
// the survey discusses (Section III notes the lack of a standard): GraphML
// (XML), N-Triples for RDF data, and CSV edge lists.
package format

import (
	"bufio"
	"encoding/csv"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gdbm/internal/model"
)

// Writer abstracts an export target; model graphs satisfy the read side.
type graphReader interface {
	Nodes(fn func(model.Node) bool) error
	Edges(fn func(model.Edge) bool) error
}

// Sink receives imported elements (engine.Loader satisfies it).
type Sink interface {
	LoadNode(label string, props model.Properties) (model.NodeID, error)
	LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error)
}

// --- GraphML ---

type graphmlDoc struct {
	XMLName xml.Name     `xml:"graphml"`
	Graph   graphmlGraph `xml:"graph"`
	Keys    []graphmlKey `xml:"key"`
}

type graphmlKey struct {
	ID   string `xml:"id,attr"`
	For  string `xml:"for,attr"`
	Name string `xml:"attr.name,attr"`
	Type string `xml:"attr.type,attr"`
}

type graphmlGraph struct {
	EdgeDefault string        `xml:"edgedefault,attr"`
	Nodes       []graphmlNode `xml:"node"`
	Edges       []graphmlEdge `xml:"edge"`
}

type graphmlNode struct {
	ID    string        `xml:"id,attr"`
	Label string        `xml:"label,attr,omitempty"`
	Data  []graphmlData `xml:"data"`
}

type graphmlEdge struct {
	Source string        `xml:"source,attr"`
	Target string        `xml:"target,attr"`
	Label  string        `xml:"label,attr,omitempty"`
	Data   []graphmlData `xml:"data"`
}

type graphmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// WriteGraphML exports g as GraphML.
func WriteGraphML(w io.Writer, g graphReader) error {
	doc := graphmlDoc{Graph: graphmlGraph{EdgeDefault: "directed"}}
	err := g.Nodes(func(n model.Node) bool {
		gn := graphmlNode{ID: fmt.Sprintf("n%d", n.ID), Label: n.Label}
		for _, k := range n.Props.Keys() {
			gn.Data = append(gn.Data, graphmlData{Key: k, Value: n.Props[k].String()})
		}
		doc.Graph.Nodes = append(doc.Graph.Nodes, gn)
		return true
	})
	if err != nil {
		return err
	}
	err = g.Edges(func(e model.Edge) bool {
		ge := graphmlEdge{
			Source: fmt.Sprintf("n%d", e.From),
			Target: fmt.Sprintf("n%d", e.To),
			Label:  e.Label,
		}
		for _, k := range e.Props.Keys() {
			ge.Data = append(ge.Data, graphmlData{Key: k, Value: e.Props[k].String()})
		}
		doc.Graph.Edges = append(doc.Graph.Edges, ge)
		return true
	})
	if err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	return enc.Encode(doc)
}

// ReadGraphML imports a GraphML document into sink. Property values are
// parsed as bool/int/float where possible, else strings.
func ReadGraphML(r io.Reader, sink Sink) (nodes, edges int, err error) {
	var doc graphmlDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return 0, 0, fmt.Errorf("format: graphml decode: %w", err)
	}
	idmap := map[string]model.NodeID{}
	for _, n := range doc.Graph.Nodes {
		props := model.Properties{}
		for _, d := range n.Data {
			props[d.Key] = parseValue(d.Value)
		}
		if len(props) == 0 {
			props = nil
		}
		id, err := sink.LoadNode(n.Label, props)
		if err != nil {
			return nodes, edges, err
		}
		idmap[n.ID] = id
		nodes++
	}
	for _, e := range doc.Graph.Edges {
		from, ok := idmap[e.Source]
		if !ok {
			return nodes, edges, fmt.Errorf("format: edge references unknown node %q", e.Source)
		}
		to, ok := idmap[e.Target]
		if !ok {
			return nodes, edges, fmt.Errorf("format: edge references unknown node %q", e.Target)
		}
		props := model.Properties{}
		for _, d := range e.Data {
			props[d.Key] = parseValue(d.Value)
		}
		if len(props) == 0 {
			props = nil
		}
		if _, err := sink.LoadEdge(e.Label, from, to, props); err != nil {
			return nodes, edges, err
		}
		edges++
	}
	return nodes, edges, nil
}

func parseValue(s string) model.Value {
	switch s {
	case "true":
		return model.Bool(true)
	case "false":
		return model.Bool(false)
	case "null":
		return model.Str("null") // literal string; null properties are omitted
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return model.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return model.Float(f)
	}
	return model.Str(s)
}

// --- N-Triples ---

// TripleSource streams statements (the triplestore engine satisfies it).
type TripleSource interface {
	Triples(fn func(s, p, o string) bool) error
}

// TripleSink accepts statements.
type TripleSink interface {
	AddTriple(s, p, o string) error
}

// WriteNTriples exports statements as N-Triples lines. Terms containing
// spaces are written as quoted literals, others as IRIs.
func WriteNTriples(w io.Writer, src TripleSource) error {
	bw := bufio.NewWriter(w)
	err := src.Triples(func(s, p, o string) bool {
		fmt.Fprintf(bw, "%s %s %s .\n", term(s), term(p), term(o))
		return true
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

func term(t string) string {
	// Quote anything that cannot survive inside <...> on one line: the
	// closing delimiter, whitespace, quotes, and line breaks.
	if strings.ContainsAny(t, " \t\"<>\n\r") {
		return strconv.Quote(t)
	}
	return "<" + t + ">"
}

// ReadNTriples imports N-Triples lines.
func ReadNTriples(r io.Reader, sink TripleSink) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		line = strings.TrimSuffix(strings.TrimSpace(line), ".")
		terms, err := parseNTTerms(line)
		if err != nil {
			return n, err
		}
		if len(terms) != 3 {
			return n, fmt.Errorf("format: line %q has %d terms", line, len(terms))
		}
		if err := sink.AddTriple(terms[0], terms[1], terms[2]); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

func parseNTTerms(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		switch {
		case line[i] == ' ' || line[i] == '\t':
			i++
		case line[i] == '<':
			end := strings.IndexByte(line[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("format: unterminated IRI in %q", line)
			}
			out = append(out, line[i+1:i+end])
			i += end + 1
		case line[i] == '"':
			s, err := strconv.QuotedPrefix(line[i:])
			if err != nil {
				return nil, fmt.Errorf("format: bad literal in %q", line)
			}
			unq, _ := strconv.Unquote(s)
			out = append(out, unq)
			i += len(s)
		default:
			end := strings.IndexAny(line[i:], " \t")
			if end < 0 {
				out = append(out, line[i:])
				i = len(line)
			} else {
				out = append(out, line[i:i+end])
				i += end
			}
		}
	}
	return out, nil
}

// --- CSV edge lists ---

// WriteCSV exports the graph as two CSV sections via two writers: nodes
// (id,label) and edges (from,to,label).
func WriteCSV(nodesW, edgesW io.Writer, g graphReader) error {
	nw := csv.NewWriter(nodesW)
	if err := nw.Write([]string{"id", "label"}); err != nil {
		return err
	}
	err := g.Nodes(func(n model.Node) bool {
		nw.Write([]string{strconv.FormatUint(uint64(n.ID), 10), n.Label})
		return true
	})
	if err != nil {
		return err
	}
	nw.Flush()
	if err := nw.Error(); err != nil {
		return err
	}
	ew := csv.NewWriter(edgesW)
	if err := ew.Write([]string{"from", "to", "label"}); err != nil {
		return err
	}
	err = g.Edges(func(e model.Edge) bool {
		ew.Write([]string{
			strconv.FormatUint(uint64(e.From), 10),
			strconv.FormatUint(uint64(e.To), 10),
			e.Label,
		})
		return true
	})
	if err != nil {
		return err
	}
	ew.Flush()
	return ew.Error()
}

// ReadCSV imports node and edge CSV sections produced by WriteCSV.
func ReadCSV(nodesR, edgesR io.Reader, sink Sink) (nodes, edges int, err error) {
	nr := csv.NewReader(nodesR)
	rows, err := nr.ReadAll()
	if err != nil {
		return 0, 0, fmt.Errorf("format: nodes csv: %w", err)
	}
	idmap := map[string]model.NodeID{}
	for i, row := range rows {
		if i == 0 {
			continue // header
		}
		if len(row) < 2 {
			return nodes, edges, fmt.Errorf("format: node row %d too short", i)
		}
		id, err := sink.LoadNode(row[1], nil)
		if err != nil {
			return nodes, edges, err
		}
		idmap[row[0]] = id
		nodes++
	}
	er := csv.NewReader(edgesR)
	erows, err := er.ReadAll()
	if err != nil {
		return nodes, 0, fmt.Errorf("format: edges csv: %w", err)
	}
	for i, row := range erows {
		if i == 0 {
			continue
		}
		if len(row) < 3 {
			return nodes, edges, fmt.Errorf("format: edge row %d too short", i)
		}
		from, ok := idmap[row[0]]
		if !ok {
			return nodes, edges, fmt.Errorf("format: edge row %d references unknown node %q", i, row[0])
		}
		to, ok := idmap[row[1]]
		if !ok {
			return nodes, edges, fmt.Errorf("format: edge row %d references unknown node %q", i, row[1])
		}
		if _, err := sink.LoadEdge(row[2], from, to, nil); err != nil {
			return nodes, edges, err
		}
		edges++
	}
	return nodes, edges, nil
}
