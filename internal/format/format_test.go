package format

import (
	"bytes"
	"strings"
	"testing"

	"gdbm/internal/gen"
	"gdbm/internal/memgraph"
	"gdbm/internal/model"
)

func sample(t *testing.T) *memgraph.Graph {
	t.Helper()
	g := memgraph.New()
	a, _ := g.AddNode("Person", model.Props("name", "ada", "age", 36))
	b, _ := g.AddNode("Person", model.Props("name", "bob"))
	c, _ := g.AddNode("City", nil)
	g.AddEdge("knows", a, b, model.Props("since", 2019))
	g.AddEdge("livesIn", a, c, nil)
	return g
}

// memLoader adapts gen.MemSink as a format.Sink via embedding.
type memLoader struct{ gen.MemSink }

func TestGraphMLRoundTrip(t *testing.T) {
	g := sample(t)
	var buf bytes.Buffer
	if err := WriteGraphML(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graphml") || !strings.Contains(out, "knows") {
		t.Fatalf("output missing structure: %s", out[:120])
	}
	var sink memLoader
	nodes, edges, err := ReadGraphML(&buf, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 3 || edges != 2 {
		t.Errorf("imported %d nodes %d edges", nodes, edges)
	}
	// Property values survive with kinds.
	found := false
	for _, n := range sink.NodesList {
		if v, ok := n.Props.Get("age").AsInt(); ok && v == 36 {
			found = true
		}
	}
	if !found {
		t.Error("age property lost in round trip")
	}
}

func TestGraphMLBadInput(t *testing.T) {
	var sink memLoader
	if _, _, err := ReadGraphML(strings.NewReader("not xml"), &sink); err == nil {
		t.Error("bad xml should fail")
	}
	// Edge to unknown node.
	doc := `<graphml><graph edgedefault="directed">
	  <node id="n1"/><edge source="n1" target="n99"/></graph></graphml>`
	if _, _, err := ReadGraphML(strings.NewReader(doc), &sink); err == nil {
		t.Error("dangling edge should fail")
	}
}

type tripleBuf struct{ triples [][3]string }

func (b *tripleBuf) AddTriple(s, p, o string) error {
	b.triples = append(b.triples, [3]string{s, p, o})
	return nil
}
func (b *tripleBuf) Triples(fn func(s, p, o string) bool) error {
	for _, t := range b.triples {
		if !fn(t[0], t[1], t[2]) {
			return nil
		}
	}
	return nil
}

func TestNTriplesRoundTrip(t *testing.T) {
	src := &tripleBuf{}
	src.AddTriple("ada", "knows", "bob")
	src.AddTriple("ada", "name", "Ada Lovelace") // literal with space
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, src); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `<ada> <knows> <bob> .`) {
		t.Errorf("output = %q", text)
	}
	if !strings.Contains(text, `"Ada Lovelace"`) {
		t.Errorf("literal not quoted: %q", text)
	}
	dst := &tripleBuf{}
	n, err := ReadNTriples(&buf, dst)
	if err != nil || n != 2 {
		t.Fatalf("read %d, %v", n, err)
	}
	if dst.triples[1][2] != "Ada Lovelace" {
		t.Errorf("literal = %q", dst.triples[1][2])
	}
}

func TestNTriplesCommentsAndErrors(t *testing.T) {
	dst := &tripleBuf{}
	n, err := ReadNTriples(strings.NewReader("# comment\n\n<a> <b> <c> .\n"), dst)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := ReadNTriples(strings.NewReader("<a> <b> .\n"), dst); err == nil {
		t.Error("2-term line should fail")
	}
	if _, err := ReadNTriples(strings.NewReader("<a <b> <c> .\n"), dst); err == nil {
		t.Error("unterminated IRI should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := sample(t)
	var nbuf, ebuf bytes.Buffer
	if err := WriteCSV(&nbuf, &ebuf, g); err != nil {
		t.Fatal(err)
	}
	var sink memLoader
	nodes, edges, err := ReadCSV(&nbuf, &ebuf, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 3 || edges != 2 {
		t.Errorf("imported %d nodes, %d edges", nodes, edges)
	}
	if sink.EdgesList[0].Label == "" {
		t.Error("edge label lost")
	}
}

func TestCSVErrors(t *testing.T) {
	var sink memLoader
	if _, _, err := ReadCSV(strings.NewReader("id,label\n1,A\n"), strings.NewReader("from,to,label\n1,99,e\n"), &sink); err == nil {
		t.Error("dangling edge should fail")
	}
	if _, _, err := ReadCSV(strings.NewReader("id\n1\n"), strings.NewReader("from,to,label\n"), &sink); err == nil {
		t.Error("short node row should fail")
	}
}

func TestParseValueKinds(t *testing.T) {
	if v := parseValue("true"); !v.Equal(model.Bool(true)) {
		t.Errorf("true = %v", v)
	}
	if v := parseValue("42"); !v.Equal(model.Int(42)) {
		t.Errorf("42 = %v", v)
	}
	if v := parseValue("2.5"); !v.Equal(model.Float(2.5)) {
		t.Errorf("2.5 = %v", v)
	}
	if v := parseValue("hello"); !v.Equal(model.Str("hello")) {
		t.Errorf("hello = %v", v)
	}
}
