package format

import (
	"bytes"
	"testing"

	"gdbm/internal/model"
)

// sinkReader adapts the imported element lists back to the export side's
// graphReader so a parsed document can be re-exported.
type sinkReader struct{ memLoader }

func (s *sinkReader) Nodes(fn func(model.Node) bool) error {
	for _, n := range s.NodesList {
		if !fn(n) {
			return nil
		}
	}
	return nil
}

func (s *sinkReader) Edges(fn func(model.Edge) bool) error {
	for _, e := range s.EdgesList {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// FuzzFormatRoundTrip feeds arbitrary bytes to the GraphML and N-Triples
// readers. Rejections are fine; what must hold is that nothing panics and
// that any accepted document reaches a fixed point after one normalizing
// round trip: export(import(export(import(x)))) == export(import(x)).
func FuzzFormatRoundTrip(f *testing.F) {
	f.Add([]byte(`<graphml><graph edgedefault="directed">` +
		`<node id="n1" label="Person"><data key="d0">ada</data></node>` +
		`<node id="n2"/><edge source="n1" target="n2" label="knows"/>` +
		`</graph><key id="d0" for="node" attr.name="name" attr.type="string"/></graphml>`))
	f.Add([]byte("<a> <b> <c> .\n# comment\n<a> <b> \"lit\" .\n"))
	f.Add([]byte("<graphml><graph><node id=\"x\"/><edge source=\"x\" target=\"y\"/></graph></graphml>"))
	f.Add([]byte("\x00\xff<<>>"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var first sinkReader
		if _, _, err := ReadGraphML(bytes.NewReader(data), &first); err == nil {
			var out1 bytes.Buffer
			if err := WriteGraphML(&out1, &first); err != nil {
				t.Fatalf("exporting an accepted GraphML document failed: %v", err)
			}
			var second sinkReader
			if _, _, err := ReadGraphML(bytes.NewReader(out1.Bytes()), &second); err != nil {
				t.Fatalf("re-importing our own GraphML failed: %v\n%s", err, out1.Bytes())
			}
			if len(second.NodesList) != len(first.NodesList) || len(second.EdgesList) != len(first.EdgesList) {
				t.Fatalf("GraphML round trip changed counts: %d/%d -> %d/%d",
					len(first.NodesList), len(first.EdgesList), len(second.NodesList), len(second.EdgesList))
			}
			var out2 bytes.Buffer
			if err := WriteGraphML(&out2, &second); err != nil {
				t.Fatalf("second GraphML export failed: %v", err)
			}
			if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
				t.Fatalf("GraphML not a fixed point after one round trip:\n--- first\n%s\n--- second\n%s", out1.Bytes(), out2.Bytes())
			}
		}

		var tfirst tripleBuf
		if _, err := ReadNTriples(bytes.NewReader(data), &tfirst); err == nil {
			var out1 bytes.Buffer
			if err := WriteNTriples(&out1, &tfirst); err != nil {
				t.Fatalf("exporting accepted N-Triples failed: %v", err)
			}
			var tsecond tripleBuf
			if _, err := ReadNTriples(bytes.NewReader(out1.Bytes()), &tsecond); err != nil {
				t.Fatalf("re-importing our own N-Triples failed: %v\n%s", err, out1.Bytes())
			}
			if len(tsecond.triples) != len(tfirst.triples) {
				t.Fatalf("N-Triples round trip changed count: %d -> %d", len(tfirst.triples), len(tsecond.triples))
			}
			var out2 bytes.Buffer
			if err := WriteNTriples(&out2, &tsecond); err != nil {
				t.Fatalf("second N-Triples export failed: %v", err)
			}
			if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
				t.Fatalf("N-Triples not a fixed point:\n--- first\n%s\n--- second\n%s", out1.Bytes(), out2.Bytes())
			}
		}
	})
}
