// Package gen produces synthetic graph workloads for the benchmark harness:
// Erdős–Rényi random graphs, Barabási–Albert preferential-attachment graphs
// (the scale-free shape of the social networks the survey's motivation
// cites), and R-MAT graphs in the style of the HPC Scalable Graph Analysis
// Benchmark used by the performance study the survey references
// (Dominguez-Sal et al. [11]). All generators are deterministic under a
// seed.
package gen

import (
	"fmt"
	"math/rand"

	"gdbm/internal/model"
)

// Spec describes a synthetic graph.
type Spec struct {
	Kind  Kind
	Nodes int
	// EdgesPerNode controls density: ER uses it as mean degree, BA as the
	// attachment count m, RMAT as the edge factor.
	EdgesPerNode int
	Seed         int64
	// Labels cycles node labels; nil defaults to ["N"].
	Labels []string
	// EdgeLabel labels every edge; empty defaults to "link".
	EdgeLabel string
}

// Kind selects the generator family.
type Kind uint8

const (
	ER   Kind = iota // Erdős–Rényi G(n, m)
	BA               // Barabási–Albert preferential attachment
	RMAT             // Recursive matrix (SSCA2/Graph500 style)
)

// String names the generator.
func (k Kind) String() string {
	switch k {
	case ER:
		return "erdos-renyi"
	case BA:
		return "barabasi-albert"
	case RMAT:
		return "rmat"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Sink receives generated elements; engine.Loader satisfies it.
type Sink interface {
	LoadNode(label string, props model.Properties) (model.NodeID, error)
	LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error)
}

// Generate builds the graph described by spec into sink and returns the
// created node ids in creation order.
func Generate(spec Spec, sink Sink) ([]model.NodeID, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("gen: need at least one node")
	}
	if spec.EdgesPerNode <= 0 {
		spec.EdgesPerNode = 2
	}
	labels := spec.Labels
	if len(labels) == 0 {
		labels = []string{"N"}
	}
	elabel := spec.EdgeLabel
	if elabel == "" {
		elabel = "link"
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	ids := make([]model.NodeID, spec.Nodes)
	for i := range ids {
		id, err := sink.LoadNode(labels[i%len(labels)], model.Props("idx", i, "weight", rng.Float64()))
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}

	addEdge := func(a, b int) error {
		_, err := sink.LoadEdge(elabel, ids[a], ids[b], model.Props("w", 1+rng.Float64()))
		return err
	}

	switch spec.Kind {
	case ER:
		m := spec.Nodes * spec.EdgesPerNode
		for i := 0; i < m; i++ {
			a, b := rng.Intn(spec.Nodes), rng.Intn(spec.Nodes)
			if a == b {
				continue
			}
			if err := addEdge(a, b); err != nil {
				return nil, err
			}
		}
	case BA:
		// Start from a small seed clique, then attach each new node to m
		// targets chosen proportionally to degree (approximated by the
		// repeated-endpoints trick).
		m := spec.EdgesPerNode
		var endpoints []int
		seedN := m + 1
		if seedN > spec.Nodes {
			seedN = spec.Nodes
		}
		for i := 0; i < seedN; i++ {
			for j := i + 1; j < seedN; j++ {
				if err := addEdge(i, j); err != nil {
					return nil, err
				}
				endpoints = append(endpoints, i, j)
			}
		}
		for i := seedN; i < spec.Nodes; i++ {
			seen := map[int]bool{}
			for len(seen) < m && len(seen) < i {
				var target int
				if len(endpoints) == 0 {
					target = rng.Intn(i)
				} else {
					target = endpoints[rng.Intn(len(endpoints))]
				}
				if target == i || seen[target] {
					continue
				}
				seen[target] = true
				if err := addEdge(i, target); err != nil {
					return nil, err
				}
				endpoints = append(endpoints, i, target)
			}
		}
	case RMAT:
		// Classic recursive quadrant selection with (a,b,c,d) =
		// (0.57, 0.19, 0.19, 0.05), the Graph500/SSCA2 parameters.
		scale := 0
		for (1 << scale) < spec.Nodes {
			scale++
		}
		m := spec.Nodes * spec.EdgesPerNode
		for i := 0; i < m; i++ {
			a, b := rmatPick(rng, scale, spec.Nodes)
			if a == b {
				continue
			}
			if err := addEdge(a, b); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("gen: unknown kind %v", spec.Kind)
	}
	return ids, nil
}

func rmatPick(rng *rand.Rand, scale, n int) (int, int) {
	row, col := 0, 0
	for bit := 0; bit < scale; bit++ {
		r := rng.Float64()
		switch {
		case r < 0.57:
			// top-left: nothing to add
		case r < 0.76:
			col |= 1 << bit
		case r < 0.95:
			row |= 1 << bit
		default:
			row |= 1 << bit
			col |= 1 << bit
		}
	}
	return row % n, col % n
}

// MemSink collects a generated graph into memory without an engine; it
// implements Sink for generator tests and format export.
type MemSink struct {
	NodesList []model.Node
	EdgesList []model.Edge
}

// LoadNode implements Sink.
func (m *MemSink) LoadNode(label string, props model.Properties) (model.NodeID, error) {
	id := model.NodeID(len(m.NodesList) + 1)
	m.NodesList = append(m.NodesList, model.Node{ID: id, Label: label, Props: props})
	return id, nil
}

// LoadEdge implements Sink.
func (m *MemSink) LoadEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	id := model.EdgeID(len(m.EdgesList) + 1)
	m.EdgesList = append(m.EdgesList, model.Edge{ID: id, Label: label, From: from, To: to, Props: props})
	return id, nil
}
