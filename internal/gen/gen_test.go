package gen

import (
	"testing"

	"gdbm/internal/model"
)

func TestGenerateValidatesSpec(t *testing.T) {
	if _, err := Generate(Spec{Nodes: 0}, &MemSink{}); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := Generate(Spec{Kind: Kind(99), Nodes: 5}, &MemSink{}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestGeneratorsProduceExpectedShape(t *testing.T) {
	for _, kind := range []Kind{ER, BA, RMAT} {
		t.Run(kind.String(), func(t *testing.T) {
			sink := &MemSink{}
			ids, err := Generate(Spec{Kind: kind, Nodes: 200, EdgesPerNode: 3, Seed: 42}, sink)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 200 || len(sink.NodesList) != 200 {
				t.Fatalf("nodes = %d", len(sink.NodesList))
			}
			if len(sink.EdgesList) == 0 {
				t.Fatal("no edges generated")
			}
			// No self loops; endpoints valid.
			for _, e := range sink.EdgesList {
				if e.From == e.To {
					t.Fatalf("self loop %v", e)
				}
				if e.From == 0 || e.To == 0 || int(e.From) > 200 || int(e.To) > 200 {
					t.Fatalf("bad endpoint %v", e)
				}
			}
		})
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a, b := &MemSink{}, &MemSink{}
	Generate(Spec{Kind: RMAT, Nodes: 100, EdgesPerNode: 4, Seed: 7}, a)
	Generate(Spec{Kind: RMAT, Nodes: 100, EdgesPerNode: 4, Seed: 7}, b)
	if len(a.EdgesList) != len(b.EdgesList) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.EdgesList), len(b.EdgesList))
	}
	for i := range a.EdgesList {
		if a.EdgesList[i].From != b.EdgesList[i].From || a.EdgesList[i].To != b.EdgesList[i].To {
			t.Fatalf("edge %d differs", i)
		}
	}
	c := &MemSink{}
	Generate(Spec{Kind: RMAT, Nodes: 100, EdgesPerNode: 4, Seed: 8}, c)
	same := len(c.EdgesList) == len(a.EdgesList)
	if same {
		identical := true
		for i := range a.EdgesList {
			if a.EdgesList[i].From != c.EdgesList[i].From || a.EdgesList[i].To != c.EdgesList[i].To {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestBAPreferentialAttachmentSkew(t *testing.T) {
	sink := &MemSink{}
	Generate(Spec{Kind: BA, Nodes: 500, EdgesPerNode: 2, Seed: 1}, sink)
	deg := map[model.NodeID]int{}
	for _, e := range sink.EdgesList {
		deg[e.From]++
		deg[e.To]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	avg := float64(2*len(sink.EdgesList)) / 500
	if float64(max) < 4*avg {
		t.Errorf("BA max degree %d not skewed vs avg %.1f", max, avg)
	}
}

func TestLabelsCycle(t *testing.T) {
	sink := &MemSink{}
	Generate(Spec{Kind: ER, Nodes: 4, EdgesPerNode: 1, Seed: 1, Labels: []string{"A", "B"}}, sink)
	if sink.NodesList[0].Label != "A" || sink.NodesList[1].Label != "B" || sink.NodesList[2].Label != "A" {
		t.Errorf("labels = %v %v %v", sink.NodesList[0].Label, sink.NodesList[1].Label, sink.NodesList[2].Label)
	}
}

func TestEdgeLabelDefaultAndOverride(t *testing.T) {
	sink := &MemSink{}
	Generate(Spec{Kind: ER, Nodes: 10, EdgesPerNode: 2, Seed: 3}, sink)
	if len(sink.EdgesList) > 0 && sink.EdgesList[0].Label != "link" {
		t.Errorf("default edge label = %q", sink.EdgesList[0].Label)
	}
	sink2 := &MemSink{}
	Generate(Spec{Kind: ER, Nodes: 10, EdgesPerNode: 2, Seed: 3, EdgeLabel: "knows"}, sink2)
	if len(sink2.EdgesList) > 0 && sink2.EdgesList[0].Label != "knows" {
		t.Errorf("override edge label = %q", sink2.EdgesList[0].Label)
	}
}
