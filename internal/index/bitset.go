// Package index provides the secondary index structures of Table I's
// "Indexes" column: a DEX-style bitmap index, a hash index, and an ordered
// index that can be backed by the on-disk B+tree. Engines choose index kinds
// according to their archetype; the ablation benchmarks compare them.
package index

import "math/bits"

// Bitset is a growable bit vector keyed by uint64 identifiers. The zero
// value is an empty set.
type Bitset struct {
	words []uint64
}

// Set adds id to the set.
func (b *Bitset) Set(id uint64) {
	w := id / 64
	for uint64(len(b.words)) <= w {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (id % 64)
}

// Clear removes id from the set.
func (b *Bitset) Clear(id uint64) {
	w := id / 64
	if w < uint64(len(b.words)) {
		b.words[w] &^= 1 << (id % 64)
	}
}

// Test reports whether id is in the set.
func (b *Bitset) Test(id uint64) bool {
	w := id / 64
	return w < uint64(len(b.words)) && b.words[w]&(1<<(id%64)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Iterate calls fn for each set id in ascending order until fn returns false.
func (b *Bitset) Iterate(fn func(id uint64) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := uint64(bits.TrailingZeros64(w))
			if !fn(uint64(wi)*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{words: append([]uint64(nil), b.words...)}
}

// And intersects the receiver with o in place.
func (b *Bitset) And(o *Bitset) {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &= o.words[i]
	}
	for i := n; i < len(b.words); i++ {
		b.words[i] = 0
	}
}

// Or unions o into the receiver.
func (b *Bitset) Or(o *Bitset) {
	for len(b.words) < len(o.words) {
		b.words = append(b.words, 0)
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// AndNot removes o's members from the receiver.
func (b *Bitset) AndNot(o *Bitset) {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &^= o.words[i]
	}
}

// Empty reports whether no bit is set.
func (b *Bitset) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}
