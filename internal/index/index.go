package index

import (
	"encoding/binary"
	"sync"

	"gdbm/internal/model"
	"gdbm/internal/storage/kv"
)

// Index maps property values to sets of uint64 identifiers (node or edge
// IDs). Implementations differ in lookup cost and capability: bitmap and
// hash indexes serve equality lookups; the ordered index also serves ranges.
type Index interface {
	// Add associates id with value.
	Add(v model.Value, id uint64) error
	// Remove drops the association.
	Remove(v model.Value, id uint64) error
	// Lookup calls fn for each id with the exact value until fn returns
	// false.
	Lookup(v model.Value, fn func(id uint64) bool) error
	// Count returns the number of ids associated with the value.
	Count(v model.Value) int
	// Kind names the index implementation.
	Kind() string
}

// RangeIndex is implemented by ordered indexes that support range lookups.
type RangeIndex interface {
	Index
	// Range calls fn for each (value, id) with min <= value <= max in
	// ascending value order. Nil bounds are open.
	Range(min, max *model.Value, fn func(v model.Value, id uint64) bool) error
}

// --- bitmap index ---

// Bitmap is a DEX-style bitmap index: one bitset per distinct value. Lookups
// and set operations over whole value classes are fast; memory grows with
// the id universe.
type Bitmap struct {
	mu   sync.RWMutex
	sets map[string]*Bitset
}

// NewBitmap returns an empty bitmap index.
func NewBitmap() *Bitmap { return &Bitmap{sets: make(map[string]*Bitset)} }

// Kind implements Index.
func (b *Bitmap) Kind() string { return "bitmap" }

func valueKey(v model.Value) string { return string(v.EncodeKey(nil)) }

// Add implements Index.
func (b *Bitmap) Add(v model.Value, id uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := valueKey(v)
	s, ok := b.sets[k]
	if !ok {
		s = &Bitset{}
		b.sets[k] = s
	}
	s.Set(id)
	return nil
}

// Remove implements Index.
func (b *Bitmap) Remove(v model.Value, id uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s, ok := b.sets[valueKey(v)]; ok {
		s.Clear(id)
		if s.Empty() {
			delete(b.sets, valueKey(v))
		}
	}
	return nil
}

// Lookup implements Index.
func (b *Bitmap) Lookup(v model.Value, fn func(uint64) bool) error {
	b.mu.RLock()
	s, ok := b.sets[valueKey(v)]
	var snap *Bitset
	if ok {
		snap = s.Clone()
	}
	b.mu.RUnlock()
	if snap != nil {
		snap.Iterate(fn)
	}
	return nil
}

// Count implements Index.
func (b *Bitmap) Count(v model.Value) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if s, ok := b.sets[valueKey(v)]; ok {
		return s.Count()
	}
	return 0
}

// Set returns a copy of the bitset for value, or an empty set. It exposes
// the bitmap-algebra capability (AND/OR across values) that motivates this
// index kind.
func (b *Bitmap) Set(v model.Value) *Bitset {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if s, ok := b.sets[valueKey(v)]; ok {
		return s.Clone()
	}
	return &Bitset{}
}

// --- hash index ---

// Hash is a hash index: one id set per distinct value.
type Hash struct {
	mu   sync.RWMutex
	sets map[string]map[uint64]struct{}
}

// NewHash returns an empty hash index.
func NewHash() *Hash { return &Hash{sets: make(map[string]map[uint64]struct{})} }

// Kind implements Index.
func (h *Hash) Kind() string { return "hash" }

// Add implements Index.
func (h *Hash) Add(v model.Value, id uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := valueKey(v)
	s, ok := h.sets[k]
	if !ok {
		s = make(map[uint64]struct{})
		h.sets[k] = s
	}
	s[id] = struct{}{}
	return nil
}

// Remove implements Index.
func (h *Hash) Remove(v model.Value, id uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := valueKey(v)
	if s, ok := h.sets[k]; ok {
		delete(s, id)
		if len(s) == 0 {
			delete(h.sets, k)
		}
	}
	return nil
}

// Lookup implements Index. Iteration order is unspecified.
func (h *Hash) Lookup(v model.Value, fn func(uint64) bool) error {
	h.mu.RLock()
	s := h.sets[valueKey(v)]
	snap := make([]uint64, 0, len(s))
	for id := range s {
		snap = append(snap, id)
	}
	h.mu.RUnlock()
	for _, id := range snap {
		if !fn(id) {
			return nil
		}
	}
	return nil
}

// Count implements Index.
func (h *Hash) Count(v model.Value) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.sets[valueKey(v)])
}

// --- ordered index ---

// Ordered is a B+tree-backed index supporting range scans. The key layout is
// EncodeKey(value) ++ 0x00 ++ bigendian(id), which preserves value order and
// makes (value, id) pairs unique.
type Ordered struct {
	store kv.Store
}

// NewOrdered wraps a kv store (in-memory or disk) as an ordered index.
func NewOrdered(store kv.Store) *Ordered { return &Ordered{store: store} }

// Kind implements Index.
func (o *Ordered) Kind() string { return "ordered" }

func (o *Ordered) key(v model.Value, id uint64) []byte {
	k := v.EncodeKey(nil)
	k = append(k, 0x00)
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], id)
	return append(k, idb[:]...)
}

// Add implements Index.
func (o *Ordered) Add(v model.Value, id uint64) error {
	return o.store.Put(o.key(v, id), nil)
}

// Remove implements Index.
func (o *Ordered) Remove(v model.Value, id uint64) error {
	_, err := o.store.Delete(o.key(v, id))
	return err
}

// Lookup implements Index.
func (o *Ordered) Lookup(v model.Value, fn func(uint64) bool) error {
	prefix := append(v.EncodeKey(nil), 0x00)
	return o.store.Scan(prefix, func(k, _ []byte) bool {
		id := binary.BigEndian.Uint64(k[len(k)-8:])
		return fn(id)
	})
}

// Count implements Index.
func (o *Ordered) Count(v model.Value) int {
	n := 0
	o.Lookup(v, func(uint64) bool { n++; return true })
	return n
}

// Range implements RangeIndex.
func (o *Ordered) Range(min, max *model.Value, fn func(model.Value, uint64) bool) error {
	stop := false
	err := o.store.Scan(nil, func(k, _ []byte) bool {
		if len(k) < 9 {
			return true
		}
		vk := k[:len(k)-9]
		id := binary.BigEndian.Uint64(k[len(k)-8:])
		v, ok := decodeValueKey(vk)
		if !ok {
			return true
		}
		if min != nil && v.Compare(*min) < 0 {
			return true
		}
		if max != nil && v.Compare(*max) > 0 {
			stop = true
			return false
		}
		return fn(v, id)
	})
	_ = stop
	return err
}

// decodeValueKey inverts model.Value.EncodeKey for the kinds we index. The
// numeric payload decodes exactly; the original int-vs-float distinction is
// collapsed to float, which is sufficient for comparisons.
func decodeValueKey(k []byte) (model.Value, bool) {
	if len(k) == 0 {
		return model.Value{}, false
	}
	switch k[0] {
	case 0:
		return model.Null(), true
	case 1:
		if len(k) < 2 {
			return model.Value{}, false
		}
		return model.Bool(k[1] == 1), true
	case 2:
		if len(k) < 9 {
			return model.Value{}, false
		}
		bits := binary.BigEndian.Uint64(k[1:9])
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return model.Float(floatFromBits(bits)), true
	case 3:
		return model.Str(string(k[1:])), true
	}
	return model.Value{}, false
}

var (
	_ Index      = (*Bitmap)(nil)
	_ Index      = (*Hash)(nil)
	_ RangeIndex = (*Ordered)(nil)
)
