package index

import (
	"testing"
	"testing/quick"

	"gdbm/internal/model"
	"gdbm/internal/storage/kv"
)

func TestBitsetBasics(t *testing.T) {
	var b Bitset
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("zero bitset should be empty")
	}
	b.Set(3)
	b.Set(64)
	b.Set(130)
	if b.Count() != 3 {
		t.Errorf("count = %d", b.Count())
	}
	if !b.Test(3) || !b.Test(64) || !b.Test(130) || b.Test(4) {
		t.Error("Test results wrong")
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 2 {
		t.Error("Clear failed")
	}
	b.Clear(100000) // no-op beyond range
	var ids []uint64
	b.Iterate(func(id uint64) bool { ids = append(ids, id); return true })
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 130 {
		t.Errorf("iterate = %v", ids)
	}
	// Early stop.
	n := 0
	b.Iterate(func(uint64) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestBitsetAlgebra(t *testing.T) {
	a, b := &Bitset{}, &Bitset{}
	for _, id := range []uint64{1, 2, 3, 200} {
		a.Set(id)
	}
	for _, id := range []uint64{2, 3, 4} {
		b.Set(id)
	}
	and := a.Clone()
	and.And(b)
	if and.Count() != 2 || !and.Test(2) || !and.Test(3) {
		t.Errorf("And wrong: count=%d", and.Count())
	}
	or := a.Clone()
	or.Or(b)
	if or.Count() != 5 {
		t.Errorf("Or count = %d", or.Count())
	}
	not := a.Clone()
	not.AndNot(b)
	if not.Count() != 2 || !not.Test(1) || !not.Test(200) {
		t.Errorf("AndNot wrong: count=%d", not.Count())
	}
	// Clone independence.
	c := a.Clone()
	c.Clear(1)
	if !a.Test(1) {
		t.Error("Clone not independent")
	}
}

func allIndexes(t *testing.T) map[string]Index {
	t.Helper()
	return map[string]Index{
		"bitmap":  NewBitmap(),
		"hash":    NewHash(),
		"ordered": NewOrdered(kv.NewMemory()),
	}
}

func TestIndexAddLookupRemove(t *testing.T) {
	for name, idx := range allIndexes(t) {
		t.Run(name, func(t *testing.T) {
			idx.Add(model.Str("red"), 1)
			idx.Add(model.Str("red"), 2)
			idx.Add(model.Str("blue"), 3)
			if got := idx.Count(model.Str("red")); got != 2 {
				t.Errorf("count red = %d", got)
			}
			var ids []uint64
			idx.Lookup(model.Str("red"), func(id uint64) bool { ids = append(ids, id); return true })
			if len(ids) != 2 {
				t.Errorf("lookup red = %v", ids)
			}
			idx.Remove(model.Str("red"), 1)
			if got := idx.Count(model.Str("red")); got != 1 {
				t.Errorf("count after remove = %d", got)
			}
			if got := idx.Count(model.Str("missing")); got != 0 {
				t.Errorf("count missing = %d", got)
			}
			// Removing a non-member is a no-op.
			if err := idx.Remove(model.Str("missing"), 9); err != nil {
				t.Errorf("remove missing: %v", err)
			}
			// Early stop in Lookup.
			idx.Add(model.Int(5), 10)
			idx.Add(model.Int(5), 11)
			n := 0
			idx.Lookup(model.Int(5), func(uint64) bool { n++; return false })
			if n != 1 {
				t.Errorf("early stop visited %d", n)
			}
		})
	}
}

func TestIndexValueKindsDistinct(t *testing.T) {
	for name, idx := range allIndexes(t) {
		t.Run(name, func(t *testing.T) {
			idx.Add(model.Str("1"), 1)
			idx.Add(model.Int(1), 2)
			if idx.Count(model.Str("1")) != 1 || idx.Count(model.Int(1)) != 1 {
				t.Error("string and int values must not collide")
			}
		})
	}
}

func TestOrderedRange(t *testing.T) {
	o := NewOrdered(kv.NewMemory())
	for i := int64(0); i < 10; i++ {
		o.Add(model.Int(i), uint64(i+100))
	}
	min, max := model.Int(3), model.Int(6)
	var got []uint64
	o.Range(&min, &max, func(v model.Value, id uint64) bool {
		got = append(got, id)
		return true
	})
	if len(got) != 4 || got[0] != 103 || got[3] != 106 {
		t.Errorf("range = %v", got)
	}
	// Open bounds.
	n := 0
	o.Range(nil, nil, func(model.Value, uint64) bool { n++; return true })
	if n != 10 {
		t.Errorf("open range visited %d", n)
	}
	// Min only.
	n = 0
	o.Range(&min, nil, func(model.Value, uint64) bool { n++; return true })
	if n != 7 {
		t.Errorf("min-only range visited %d", n)
	}
}

func TestOrderedRangeMixedKinds(t *testing.T) {
	o := NewOrdered(kv.NewMemory())
	o.Add(model.Str("apple"), 1)
	o.Add(model.Int(5), 2)
	o.Add(model.Bool(true), 3)
	min, max := model.Int(0), model.Int(10)
	var got []uint64
	o.Range(&min, &max, func(v model.Value, id uint64) bool { got = append(got, id); return true })
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("numeric range over mixed kinds = %v", got)
	}
}

func TestManagerLifecycle(t *testing.T) {
	m := NewManager()
	if _, err := m.Create(Nodes, "name", KindHash); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(Nodes, "name", KindBitmap); err == nil {
		t.Error("duplicate index should fail")
	}
	if _, err := m.Create(Edges, "weight", KindOrdered); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(Nodes, "x", "bogus"); err == nil {
		t.Error("unknown kind should fail")
	}
	list := m.List()
	if len(list) != 2 {
		t.Errorf("list = %v", list)
	}
	if err := m.Drop(Nodes, "name"); err != nil {
		t.Fatal(err)
	}
	if err := m.Drop(Nodes, "name"); err == nil {
		t.Error("double drop should fail")
	}
	if _, ok := m.Get(Nodes, "name"); ok {
		t.Error("dropped index still present")
	}
}

func TestManagerWriteHooks(t *testing.T) {
	m := NewManager()
	labelIdx, _ := m.Create(Nodes, "", KindBitmap)
	nameIdx, _ := m.Create(Nodes, "name", KindHash)

	n := model.Node{ID: 7, Label: "Person", Props: model.Props("name", "ada")}
	m.OnNodeWrite(n, "", nil)
	if labelIdx.Count(model.Str("Person")) != 1 {
		t.Error("label not indexed")
	}
	if nameIdx.Count(model.Str("ada")) != 1 {
		t.Error("name not indexed")
	}
	// Property change: old value removed, new added.
	n2 := model.Node{ID: 7, Label: "Person", Props: model.Props("name", "lovelace")}
	m.OnNodeWrite(n2, "Person", n.Props)
	if nameIdx.Count(model.Str("ada")) != 0 || nameIdx.Count(model.Str("lovelace")) != 1 {
		t.Error("property change not reflected")
	}
	// Delete.
	m.OnNodeDelete(n2)
	if labelIdx.Count(model.Str("Person")) != 0 || nameIdx.Count(model.Str("lovelace")) != 0 {
		t.Error("delete not reflected")
	}
}

func TestManagerEdgeHooks(t *testing.T) {
	m := NewManager()
	idx, _ := m.Create(Edges, "", KindHash)
	e := model.Edge{ID: 3, Label: "knows"}
	m.OnEdgeWrite(e, "", nil)
	if idx.Count(model.Str("knows")) != 1 {
		t.Error("edge label not indexed")
	}
	m.OnEdgeDelete(e)
	if idx.Count(model.Str("knows")) != 0 {
		t.Error("edge delete not reflected")
	}
}

// Property: all three index kinds agree with a reference map on arbitrary
// add/remove sequences.
func TestIndexEquivalenceQuick(t *testing.T) {
	type op struct {
		Val uint8
		ID  uint8
		Del bool
	}
	f := func(ops []op) bool {
		idxs := []Index{NewBitmap(), NewHash(), NewOrdered(kv.NewMemory())}
		ref := map[uint8]map[uint8]bool{}
		for _, o := range ops {
			v := model.Int(int64(o.Val))
			if o.Del {
				for _, idx := range idxs {
					idx.Remove(v, uint64(o.ID))
				}
				if s := ref[o.Val]; s != nil {
					delete(s, o.ID)
				}
			} else {
				for _, idx := range idxs {
					idx.Add(v, uint64(o.ID))
				}
				if ref[o.Val] == nil {
					ref[o.Val] = map[uint8]bool{}
				}
				ref[o.Val][o.ID] = true
			}
		}
		for val, s := range ref {
			for _, idx := range idxs {
				if idx.Count(model.Int(int64(val))) != len(s) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapSetAlgebraAccessor(t *testing.T) {
	b := NewBitmap()
	b.Add(model.Str("a"), 1)
	b.Add(model.Str("a"), 2)
	b.Add(model.Str("b"), 2)
	s := b.Set(model.Str("a"))
	s.And(b.Set(model.Str("b")))
	if s.Count() != 1 || !s.Test(2) {
		t.Error("bitmap algebra through Set() wrong")
	}
	if b.Set(model.Str("zzz")).Count() != 0 {
		t.Error("missing value should give empty set")
	}
}
