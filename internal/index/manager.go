package index

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"gdbm/internal/model"
	"gdbm/internal/storage/kv"
)

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Target says whether an index covers nodes or edges.
type Target uint8

const (
	Nodes Target = iota
	Edges
)

// String returns "nodes" or "edges".
func (t Target) String() string {
	if t == Nodes {
		return "nodes"
	}
	return "edges"
}

// KindName selects an index implementation in Manager.Create.
type KindName string

const (
	KindBitmap  KindName = "bitmap"
	KindHash    KindName = "hash"
	KindOrdered KindName = "ordered"
)

// Manager owns the secondary indexes of one engine, keyed by (target,
// property). The special property "" indexes labels.
type Manager struct {
	mu      sync.RWMutex
	indexes map[string]Index
}

// NewManager returns an empty index manager.
func NewManager() *Manager {
	return &Manager{indexes: make(map[string]Index)}
}

func (m *Manager) keyFor(t Target, prop string) string {
	return t.String() + "\x00" + prop
}

// Create registers an index of the given kind for (target, prop). Ordered
// indexes are created over an in-memory store; use CreateOrderedOn for a
// disk-backed one.
func (m *Manager) Create(t Target, prop string, kind KindName) (Index, error) {
	var idx Index
	switch kind {
	case KindBitmap:
		idx = NewBitmap()
	case KindHash:
		idx = NewHash()
	case KindOrdered:
		idx = NewOrdered(kv.NewMemory())
	default:
		return nil, fmt.Errorf("index: unknown kind %q", kind)
	}
	return idx, m.Register(t, prop, idx)
}

// CreateOrderedOn registers an ordered index over the supplied store.
func (m *Manager) CreateOrderedOn(t Target, prop string, store kv.Store) (Index, error) {
	idx := NewOrdered(store)
	return idx, m.Register(t, prop, idx)
}

// Register installs a caller-constructed index for (target, prop).
func (m *Manager) Register(t Target, prop string, idx Index) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := m.keyFor(t, prop)
	if _, ok := m.indexes[k]; ok {
		return fmt.Errorf("index on %s %q: %w", t, prop, model.ErrAlreadyExists)
	}
	m.indexes[k] = idx
	return nil
}

// Drop removes the index for (target, prop).
func (m *Manager) Drop(t Target, prop string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := m.keyFor(t, prop)
	if _, ok := m.indexes[k]; !ok {
		return fmt.Errorf("index on %s %q: %w", t, prop, model.ErrNotFound)
	}
	delete(m.indexes, k)
	return nil
}

// Get returns the index for (target, prop) if one exists.
func (m *Manager) Get(t Target, prop string) (Index, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	idx, ok := m.indexes[m.keyFor(t, prop)]
	return idx, ok
}

// List describes the registered indexes as "target:prop:kind" strings,
// sorted, for introspection and the feature probes.
func (m *Manager) List() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.indexes))
	for k, idx := range m.indexes {
		target, prop, _ := strings.Cut(k, "\x00")
		out = append(out, target+":"+prop+":"+idx.Kind())
	}
	sort.Strings(out)
	return out
}

// OnNodeWrite updates node indexes for a node insert or property change.
// oldProps may be nil for inserts.
func (m *Manager) OnNodeWrite(n model.Node, oldLabel string, oldProps model.Properties) {
	m.onWrite(Nodes, uint64(n.ID), n.Label, n.Props, oldLabel, oldProps)
}

// OnNodeDelete removes node index entries.
func (m *Manager) OnNodeDelete(n model.Node) {
	m.onDelete(Nodes, uint64(n.ID), n.Label, n.Props)
}

// OnEdgeWrite updates edge indexes.
func (m *Manager) OnEdgeWrite(e model.Edge, oldLabel string, oldProps model.Properties) {
	m.onWrite(Edges, uint64(e.ID), e.Label, e.Props, oldLabel, oldProps)
}

// OnEdgeDelete removes edge index entries.
func (m *Manager) OnEdgeDelete(e model.Edge) {
	m.onDelete(Edges, uint64(e.ID), e.Label, e.Props)
}

func (m *Manager) onWrite(t Target, id uint64, label string, props model.Properties, oldLabel string, oldProps model.Properties) {
	if idx, ok := m.Get(t, ""); ok {
		if oldLabel != "" && oldLabel != label {
			idx.Remove(model.Str(oldLabel), id)
		}
		if label != "" {
			idx.Add(model.Str(label), id)
		}
	}
	for name, old := range oldProps {
		if nv, ok := props[name]; !ok || !nv.Equal(old) {
			if idx, ok := m.Get(t, name); ok {
				idx.Remove(old, id)
			}
		}
	}
	for name, v := range props {
		if idx, ok := m.Get(t, name); ok {
			idx.Add(v, id)
		}
	}
}

func (m *Manager) onDelete(t Target, id uint64, label string, props model.Properties) {
	if idx, ok := m.Get(t, ""); ok && label != "" {
		idx.Remove(model.Str(label), id)
	}
	for name, v := range props {
		if idx, ok := m.Get(t, name); ok {
			idx.Remove(v, id)
		}
	}
}
