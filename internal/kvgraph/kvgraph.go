// Package kvgraph layers a property graph over an ordered key/value store —
// the construction the survey describes for VertexDB (a graph store on top
// of TokyoCabinet) and the storage role Filament delegates to SQL/JDBC.
// Backed by kv.Memory it is a main-memory graph; backed by kv.Disk it is an
// external-memory/backend-storage graph.
//
// Key layout (prefix bytes keep record classes in disjoint ranges):
//
//	M!n / M!e          -> next node / edge id (8-byte big endian)
//	n!<id>             -> node record
//	e!<id>             -> edge record
//	o!<node>!<edge>    -> out-adjacency entry (value: far node id)
//	i!<node>!<edge>    -> in-adjacency entry (value: far node id)
package kvgraph

import (
	"encoding/binary"
	"fmt"
	"sync"

	adjpkg "gdbm/internal/adj"
	"gdbm/internal/cache"
	"gdbm/internal/model"
	"gdbm/internal/obs"
	"gdbm/internal/query/stats"
	"gdbm/internal/storage/kv"
)

// Graph is a property graph stored in a kv.Store. Reads are safe for
// concurrent use because the stores in this repository are internally
// synchronized; mutations additionally serialize on a graph-level mutex —
// each is a multi-key read-modify-write sequence (id allocation, record,
// adjacency entries) that per-key store locking alone cannot keep atomic.
//
// Every mutation bumps the graph epoch twice (entry and exit, under mu).
// The optional adjacency cache memoizes decoded neighbor lists keyed on
// that epoch, publishing an entry only when the epoch stayed stable across
// the decode; see the cache.Epoch contract. Engines key their query-result
// caches on Epoch() under the same rule.
type Graph struct {
	mu    sync.Mutex // serializes mutations
	st    kv.Store
	epoch cache.Epoch
	ver   adjpkg.Versioned // copy-on-write views, see view.go
	adj   *cache.Adjacency // nil: adjacency caching disabled
	stats stats.Versioned  // planner statistics, epoch-keyed (planstats.go)

	// Observability counters; nil-safe no-ops until SetMetrics.
	mNodeReads, mEdgeReads, mAdjScans *obs.Counter
}

// New wraps a kv store as a graph.
func New(st kv.Store) *Graph { return &Graph{st: st} }

// EnableAdjacencyCache turns on memoization of decoded neighbor lists,
// bounded by budget bytes. Call before sharing the graph; a non-positive
// budget leaves caching off.
func (g *Graph) EnableAdjacencyCache(budget int64) {
	if budget > 0 {
		g.adj = cache.NewAdjacency(budget)
	}
}

// SetMetrics routes the graph's counters (kvgraph.node_reads,
// kvgraph.edge_reads, kvgraph.adj_scans) into r. Call before sharing the
// graph, alongside EnableAdjacencyCache.
func (g *Graph) SetMetrics(r *obs.Registry) {
	g.mNodeReads = r.Counter("kvgraph.node_reads")
	g.mEdgeReads = r.Counter("kvgraph.edge_reads")
	g.mAdjScans = r.Counter("kvgraph.adj_scans")
}

// Epoch returns the graph's current version. It changes (at least) twice
// per mutation; a value observed identical before and after a read-only
// computation proves no mutation overlapped it.
func (g *Graph) Epoch() uint64 { return g.epoch.Current() }

// AdjacencyStats returns the adjacency-cache counters; ok is false when
// the cache is disabled.
func (g *Graph) AdjacencyStats() (s cache.Stats, ok bool) {
	if g.adj == nil {
		return cache.Stats{}, false
	}
	return g.adj.Stats(), true
}

// Store exposes the underlying store (for flushing/closing by the owner).
func (g *Graph) Store() kv.Store { return g.st }

func u64key(prefix string, id uint64) []byte {
	k := make([]byte, 0, len(prefix)+8)
	k = append(k, prefix...)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return append(k, b[:]...)
}

func adjKey(prefix string, node, edge uint64) []byte {
	k := u64key(prefix, node)
	k = append(k, '!')
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], edge)
	return append(k, b[:]...)
}

func (g *Graph) nextID(key string) (uint64, error) {
	raw, ok, err := g.st.Get([]byte(key))
	if err != nil {
		return 0, err
	}
	var n uint64
	if ok {
		n = binary.BigEndian.Uint64(raw)
	}
	n++
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], n)
	if err := g.st.Put([]byte(key), b[:]); err != nil {
		return 0, err
	}
	return n, nil
}

func encodeNodeRecord(n model.Node) ([]byte, error) {
	props, err := n.Props.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 2+len(n.Label)+len(props))
	buf = binary.AppendUvarint(buf, uint64(len(n.Label)))
	buf = append(buf, n.Label...)
	buf = append(buf, props...)
	return buf, nil
}

func decodeNodeRecord(id model.NodeID, data []byte) (model.Node, error) {
	ll, w := binary.Uvarint(data)
	if w <= 0 || int(ll) > len(data)-w {
		return model.Node{}, fmt.Errorf("kvgraph: corrupt node record %d", id)
	}
	label := string(data[w : w+int(ll)])
	props, err := model.UnmarshalProperties(data[w+int(ll):])
	if err != nil {
		return model.Node{}, err
	}
	if len(props) == 0 {
		props = nil
	}
	return model.Node{ID: id, Label: label, Props: props}, nil
}

func encodeEdgeRecord(e model.Edge) ([]byte, error) {
	props, err := e.Props.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 18+len(e.Label)+len(props))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(e.From))
	buf = append(buf, b[:]...)
	binary.BigEndian.PutUint64(b[:], uint64(e.To))
	buf = append(buf, b[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(e.Label)))
	buf = append(buf, e.Label...)
	buf = append(buf, props...)
	return buf, nil
}

func decodeEdgeRecord(id model.EdgeID, data []byte) (model.Edge, error) {
	if len(data) < 16 {
		return model.Edge{}, fmt.Errorf("kvgraph: corrupt edge record %d", id)
	}
	from := model.NodeID(binary.BigEndian.Uint64(data[0:8]))
	to := model.NodeID(binary.BigEndian.Uint64(data[8:16]))
	rest := data[16:]
	ll, w := binary.Uvarint(rest)
	if w <= 0 || int(ll) > len(rest)-w {
		return model.Edge{}, fmt.Errorf("kvgraph: corrupt edge record %d", id)
	}
	label := string(rest[w : w+int(ll)])
	props, err := model.UnmarshalProperties(rest[w+int(ll):])
	if err != nil {
		return model.Edge{}, err
	}
	if len(props) == 0 {
		props = nil
	}
	return model.Edge{ID: id, Label: label, From: from, To: to, Props: props}, nil
}

// AddNode implements model.MutableGraph.
func (g *Graph) AddNode(label string, props model.Properties) (model.NodeID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	id, err := g.nextID("M!n")
	if err != nil {
		return 0, err
	}
	g.ver.MarkNode(model.NodeID(id))
	rec, err := encodeNodeRecord(model.Node{Label: label, Props: props})
	if err != nil {
		return 0, err
	}
	if err := g.st.Put(u64key("n!", id), rec); err != nil {
		return 0, err
	}
	return model.NodeID(id), nil
}

// AddEdge implements model.MutableGraph.
func (g *Graph) AddEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	if _, err := g.Node(from); err != nil {
		return 0, err
	}
	if _, err := g.Node(to); err != nil {
		return 0, err
	}
	id, err := g.nextID("M!e")
	if err != nil {
		return 0, err
	}
	g.ver.MarkEdge(model.EdgeID(id))
	g.ver.MarkNode(from)
	g.ver.MarkNode(to)
	rec, err := encodeEdgeRecord(model.Edge{From: from, To: to, Label: label, Props: props})
	if err != nil {
		return 0, err
	}
	if err := g.st.Put(u64key("e!", id), rec); err != nil {
		return 0, err
	}
	var far [8]byte
	binary.BigEndian.PutUint64(far[:], uint64(to))
	if err := g.st.Put(adjKey("o!", uint64(from), id), far[:]); err != nil {
		return 0, err
	}
	binary.BigEndian.PutUint64(far[:], uint64(from))
	if err := g.st.Put(adjKey("i!", uint64(to), id), far[:]); err != nil {
		return 0, err
	}
	return model.EdgeID(id), nil
}

// Node implements model.Graph.
func (g *Graph) Node(id model.NodeID) (model.Node, error) {
	g.mNodeReads.Inc()
	raw, ok, err := g.st.Get(u64key("n!", uint64(id)))
	if err != nil {
		return model.Node{}, err
	}
	if !ok {
		return model.Node{}, model.NodeNotFound(id)
	}
	return decodeNodeRecord(id, raw)
}

// Edge implements model.Graph.
func (g *Graph) Edge(id model.EdgeID) (model.Edge, error) {
	g.mEdgeReads.Inc()
	raw, ok, err := g.st.Get(u64key("e!", uint64(id)))
	if err != nil {
		return model.Edge{}, err
	}
	if !ok {
		return model.Edge{}, model.EdgeNotFound(id)
	}
	return decodeEdgeRecord(id, raw)
}

// RemoveNode implements model.MutableGraph; incident edges are removed too.
func (g *Graph) RemoveNode(id model.NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	if _, err := g.Node(id); err != nil {
		return err
	}
	seen := map[model.EdgeID]bool{}
	var eids []model.EdgeID
	collect := func(prefix string) error {
		return g.st.Scan(u64key(prefix, uint64(id)), func(k, _ []byte) bool {
			eid := model.EdgeID(binary.BigEndian.Uint64(k[len(k)-8:]))
			if !seen[eid] { // self-loops appear in both adjacency lists
				seen[eid] = true
				eids = append(eids, eid)
			}
			return true
		})
	}
	if err := collect("o!"); err != nil {
		return err
	}
	if err := collect("i!"); err != nil {
		return err
	}
	for _, eid := range eids {
		if err := g.removeEdgeLocked(eid); err != nil {
			return err
		}
	}
	g.ver.MarkNode(id)
	_, err := g.st.Delete(u64key("n!", uint64(id)))
	return err
}

// RemoveEdge implements model.MutableGraph.
func (g *Graph) RemoveEdge(id model.EdgeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	return g.removeEdgeLocked(id)
}

func (g *Graph) removeEdgeLocked(id model.EdgeID) error {
	e, err := g.Edge(id)
	if err != nil {
		return err
	}
	g.ver.MarkEdge(id)
	g.ver.MarkNode(e.From)
	g.ver.MarkNode(e.To)
	if _, err := g.st.Delete(u64key("e!", uint64(id))); err != nil {
		return err
	}
	if _, err := g.st.Delete(adjKey("o!", uint64(e.From), uint64(id))); err != nil {
		return err
	}
	if _, err := g.st.Delete(adjKey("i!", uint64(e.To), uint64(id))); err != nil {
		return err
	}
	return nil
}

// SetNodeProp implements model.MutableGraph.
func (g *Graph) SetNodeProp(id model.NodeID, key string, v model.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	n, err := g.Node(id)
	if err != nil {
		return err
	}
	g.ver.MarkNode(id)
	if n.Props == nil {
		n.Props = model.Properties{}
	}
	n.Props[key] = v
	rec, err := encodeNodeRecord(n)
	if err != nil {
		return err
	}
	return g.st.Put(u64key("n!", uint64(id)), rec)
}

// SetEdgeProp implements model.MutableGraph.
func (g *Graph) SetEdgeProp(id model.EdgeID, key string, v model.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	e, err := g.Edge(id)
	if err != nil {
		return err
	}
	g.ver.MarkEdge(id)
	if e.Props == nil {
		e.Props = model.Properties{}
	}
	e.Props[key] = v
	rec, err := encodeEdgeRecord(e)
	if err != nil {
		return err
	}
	return g.st.Put(u64key("e!", uint64(id)), rec)
}

// Order implements model.Graph.
func (g *Graph) Order() int {
	n := 0
	g.st.Scan([]byte("n!"), func(_, _ []byte) bool { n++; return true })
	return n
}

// Size implements model.Graph.
func (g *Graph) Size() int {
	n := 0
	g.st.Scan([]byte("e!"), func(_, _ []byte) bool { n++; return true })
	return n
}

// Nodes implements model.Graph. Records are materialized before fn runs so
// callbacks may issue further store reads (the scan holds the store lock).
func (g *Graph) Nodes(fn func(model.Node) bool) error {
	var decodeErr error
	var nodes []model.Node
	err := g.st.Scan([]byte("n!"), func(k, v []byte) bool {
		id := model.NodeID(binary.BigEndian.Uint64(k[len(k)-8:]))
		n, err := decodeNodeRecord(id, v)
		if err != nil {
			decodeErr = err
			return false
		}
		nodes = append(nodes, n)
		return true
	})
	if decodeErr != nil {
		return decodeErr
	}
	if err != nil {
		return err
	}
	for _, n := range nodes {
		if !fn(n) {
			return nil
		}
	}
	return nil
}

// Edges implements model.Graph; see Nodes for the materialization contract.
func (g *Graph) Edges(fn func(model.Edge) bool) error {
	var decodeErr error
	var edges []model.Edge
	err := g.st.Scan([]byte("e!"), func(k, v []byte) bool {
		id := model.EdgeID(binary.BigEndian.Uint64(k[len(k)-8:]))
		e, err := decodeEdgeRecord(id, v)
		if err != nil {
			decodeErr = err
			return false
		}
		edges = append(edges, e)
		return true
	})
	if decodeErr != nil {
		return decodeErr
	}
	if err != nil {
		return err
	}
	for _, e := range edges {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// adjEntriesDir returns the decoded adjacency list for a single direction
// (model.Out or model.In), consulting the adjacency cache when enabled.
// Cached entries are shared between hits; callers must clone mutable parts
// (property maps) before handing records out.
func (g *Graph) adjEntriesDir(id model.NodeID, dir model.Direction) ([]cache.AdjEntry, error) {
	var epoch uint64
	if g.adj != nil {
		epoch = g.epoch.Current()
		if ents, ok := g.adj.Get(epoch, id, dir); ok {
			return ents, nil
		}
	}
	g.mAdjScans.Inc()
	prefix := "o!"
	if dir == model.In {
		prefix = "i!"
	}
	// Materialize the adjacency entries before fetching records: the
	// store's scan holds its internal lock, so nested Get calls from the
	// callback would self-deadlock.
	type entry struct {
		eid model.EdgeID
		far model.NodeID
	}
	var raw []entry
	err := g.st.Scan(append(u64key(prefix, uint64(id)), '!'), func(k, v []byte) bool {
		raw = append(raw, entry{
			eid: model.EdgeID(binary.BigEndian.Uint64(k[len(k)-8:])),
			far: model.NodeID(binary.BigEndian.Uint64(v)),
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	ents := make([]cache.AdjEntry, 0, len(raw))
	for _, it := range raw {
		e, err := g.Edge(it.eid)
		if err != nil {
			return nil, err
		}
		far, err := g.Node(it.far)
		if err != nil {
			return nil, err
		}
		ents = append(ents, cache.AdjEntry{Edge: e, Node: far})
	}
	// Publish only if no mutation overlapped the decode: a changed epoch
	// means the list may mix pre- and post-mutation records, and an entry
	// keyed on the old epoch could serve that mix to later readers.
	if g.adj != nil && g.epoch.Current() == epoch {
		g.adj.Put(epoch, id, dir, ents)
	}
	return ents, nil
}

// Neighbors implements model.Graph.
func (g *Graph) Neighbors(id model.NodeID, dir model.Direction, fn func(model.Edge, model.Node) bool) error {
	if _, err := g.Node(id); err != nil {
		return err
	}
	emit := func(d model.Direction) (bool, error) {
		ents, err := g.adjEntriesDir(id, d)
		if err != nil {
			return false, err
		}
		for _, it := range ents {
			e, far := it.Edge, it.Node
			if g.adj != nil {
				// Entries may be shared with the cache; callbacks own
				// what they receive, so detach the mutable maps.
				e.Props = e.Props.Clone()
				far.Props = far.Props.Clone()
			}
			if !fn(e, far) {
				return true, nil
			}
		}
		return false, nil
	}
	if dir == model.Out || dir == model.Both {
		stopped, err := emit(model.Out)
		if err != nil || stopped {
			return err
		}
	}
	if dir == model.In || dir == model.Both {
		if _, err := emit(model.In); err != nil {
			return err
		}
	}
	return nil
}

// Degree implements model.Graph.
func (g *Graph) Degree(id model.NodeID, dir model.Direction) (int, error) {
	if _, err := g.Node(id); err != nil {
		return 0, err
	}
	count := func(prefix string) int {
		n := 0
		g.st.Scan(append(u64key(prefix, uint64(id)), '!'), func(_, _ []byte) bool { n++; return true })
		return n
	}
	switch dir {
	case model.Out:
		return count("o!"), nil
	case model.In:
		return count("i!"), nil
	default:
		return count("o!") + count("i!"), nil
	}
}

var _ model.MutableGraph = (*Graph)(nil)
