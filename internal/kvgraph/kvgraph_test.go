package kvgraph

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"gdbm/internal/memgraph"
	"gdbm/internal/model"
	"gdbm/internal/storage/kv"
)

func graphs(t *testing.T) map[string]*Graph {
	t.Helper()
	disk, err := kv.OpenDisk(filepath.Join(t.TempDir(), "g.pg"), 32)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	return map[string]*Graph{
		"memory": New(kv.NewMemory()),
		"disk":   New(disk),
	}
}

func TestBasicCRUD(t *testing.T) {
	for name, g := range graphs(t) {
		t.Run(name, func(t *testing.T) {
			a, err := g.AddNode("Person", model.Props("name", "ada"))
			if err != nil {
				t.Fatal(err)
			}
			b, _ := g.AddNode("Person", nil)
			eid, err := g.AddEdge("knows", a, b, model.Props("since", 2019))
			if err != nil {
				t.Fatal(err)
			}
			if g.Order() != 2 || g.Size() != 1 {
				t.Fatalf("order=%d size=%d", g.Order(), g.Size())
			}
			n, err := g.Node(a)
			if err != nil || n.Label != "Person" {
				t.Fatalf("Node: %+v %v", n, err)
			}
			if v, _ := n.Props.Get("name").AsString(); v != "ada" {
				t.Errorf("name = %v", n.Props)
			}
			e, err := g.Edge(eid)
			if err != nil || e.From != a || e.To != b || e.Label != "knows" {
				t.Fatalf("Edge: %+v %v", e, err)
			}
			if v, _ := e.Props.Get("since").AsInt(); v != 2019 {
				t.Errorf("since = %v", e.Props)
			}
			if _, err := g.Node(99); !errors.Is(err, model.ErrNotFound) {
				t.Errorf("missing node: %v", err)
			}
			if _, err := g.Edge(99); !errors.Is(err, model.ErrNotFound) {
				t.Errorf("missing edge: %v", err)
			}
			if _, err := g.AddEdge("x", a, 99, nil); !errors.Is(err, model.ErrNotFound) {
				t.Errorf("dangling edge: %v", err)
			}
		})
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	for name, g := range graphs(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := g.AddNode("N", nil)
			b, _ := g.AddNode("N", nil)
			c, _ := g.AddNode("N", nil)
			g.AddEdge("e", a, b, nil)
			g.AddEdge("e", a, c, nil)
			g.AddEdge("f", b, a, nil)
			count := func(dir model.Direction) int {
				n := 0
				g.Neighbors(a, dir, func(model.Edge, model.Node) bool { n++; return true })
				return n
			}
			if count(model.Out) != 2 || count(model.In) != 1 || count(model.Both) != 3 {
				t.Errorf("neighbors out=%d in=%d both=%d", count(model.Out), count(model.In), count(model.Both))
			}
			d, _ := g.Degree(a, model.Both)
			if d != 3 {
				t.Errorf("degree = %d", d)
			}
			// Early stop.
			n := 0
			g.Neighbors(a, model.Both, func(model.Edge, model.Node) bool { n++; return false })
			if n != 1 {
				t.Errorf("early stop visited %d", n)
			}
			if err := g.Neighbors(99, model.Out, func(model.Edge, model.Node) bool { return true }); !errors.Is(err, model.ErrNotFound) {
				t.Errorf("missing node: %v", err)
			}
		})
	}
}

func TestRemoveNodeCascadesAndSelfLoop(t *testing.T) {
	for name, g := range graphs(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := g.AddNode("N", nil)
			b, _ := g.AddNode("N", nil)
			g.AddEdge("e", a, b, nil)
			g.AddEdge("self", a, a, nil) // self loop: both adjacency lists
			if err := g.RemoveNode(a); err != nil {
				t.Fatal(err)
			}
			if g.Order() != 1 || g.Size() != 0 {
				t.Errorf("order=%d size=%d", g.Order(), g.Size())
			}
			if err := g.RemoveNode(a); !errors.Is(err, model.ErrNotFound) {
				t.Errorf("double remove: %v", err)
			}
		})
	}
}

func TestSetProps(t *testing.T) {
	for name, g := range graphs(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := g.AddNode("N", nil)
			b, _ := g.AddNode("N", nil)
			eid, _ := g.AddEdge("e", a, b, nil)
			if err := g.SetNodeProp(a, "k", model.Int(7)); err != nil {
				t.Fatal(err)
			}
			n, _ := g.Node(a)
			if v, _ := n.Props.Get("k").AsInt(); v != 7 {
				t.Errorf("k = %v", n.Props)
			}
			if err := g.SetEdgeProp(eid, "w", model.Float(0.5)); err != nil {
				t.Fatal(err)
			}
			e, _ := g.Edge(eid)
			if v, _ := e.Props.Get("w").AsFloat(); v != 0.5 {
				t.Errorf("w = %v", e.Props)
			}
			if err := g.SetNodeProp(99, "k", model.Int(1)); !errors.Is(err, model.ErrNotFound) {
				t.Errorf("missing: %v", err)
			}
		})
	}
}

func TestIterationMaterializedAllowsNestedReads(t *testing.T) {
	// The regression behind the materialization contract: nested reads
	// inside Nodes/Edges/Neighbors callbacks must not deadlock on the
	// store lock.
	disk, err := kv.OpenDisk(filepath.Join(t.TempDir(), "nested.pg"), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	g := New(disk)
	a, _ := g.AddNode("N", nil)
	b, _ := g.AddNode("N", nil)
	g.AddEdge("e", a, b, nil)

	done := make(chan error, 1)
	go func() {
		done <- g.Nodes(func(n model.Node) bool {
			// Nested read during iteration.
			g.Degree(n.ID, model.Both)
			g.Neighbors(n.ID, model.Both, func(e model.Edge, far model.Node) bool {
				g.Edge(e.ID)
				return true
			})
			return true
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("nested reads deadlocked")
	}
}

// Property: kvgraph over memory KV behaves identically to memgraph for
// arbitrary operation sequences.
func TestKVGraphMatchesMemgraphQuick(t *testing.T) {
	type op struct {
		A, B    uint8
		Del     bool
		DelNode bool
	}
	f := func(ops []op) bool {
		kvg := New(kv.NewMemory())
		ref := memgraph.New()
		const k = 8
		kvIDs := make([]model.NodeID, k)
		refIDs := make([]model.NodeID, k)
		for i := 0; i < k; i++ {
			kvIDs[i], _ = kvg.AddNode("N", nil)
			refIDs[i], _ = ref.AddNode("N", nil)
		}
		alive := make([]bool, k)
		for i := range alive {
			alive[i] = true
		}
		for _, o := range ops {
			a, b := int(o.A)%k, int(o.B)%k
			switch {
			case o.DelNode:
				if alive[a] {
					kvg.RemoveNode(kvIDs[a])
					ref.RemoveNode(refIDs[a])
					alive[a] = false
				}
			case !o.Del:
				if alive[a] && alive[b] {
					kvg.AddEdge("e", kvIDs[a], kvIDs[b], nil)
					ref.AddEdge("e", refIDs[a], refIDs[b], nil)
				}
			}
		}
		if kvg.Order() != ref.Order() || kvg.Size() != ref.Size() {
			return false
		}
		for i := 0; i < k; i++ {
			if !alive[i] {
				continue
			}
			for _, dir := range []model.Direction{model.Out, model.In, model.Both} {
				kd, _ := kvg.Degree(kvIDs[i], dir)
				rd, _ := ref.Degree(refIDs[i], dir)
				if kd != rd {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.pg")
	disk, err := kv.OpenDisk(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	g := New(disk)
	var last model.NodeID
	for i := 0; i < 50; i++ {
		last, _ = g.AddNode("N", model.Props("i", i))
		if i > 0 {
			g.AddEdge("next", last-1, last, nil)
		}
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	disk2, err := kv.OpenDisk(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer disk2.Close()
	g2 := New(disk2)
	if g2.Order() != 50 || g2.Size() != 49 {
		t.Fatalf("after reopen: order=%d size=%d", g2.Order(), g2.Size())
	}
	// ID allocation continues after the persisted counter.
	id, _ := g2.AddNode("N", nil)
	if id != 51 {
		t.Errorf("next id = %d, want 51", id)
	}
	n, err := g2.Node(25)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Props.Get("i").AsInt(); v != 24 {
		t.Errorf("node 25 props = %v", n.Props)
	}
}

func TestStoreAccessor(t *testing.T) {
	st := kv.NewMemory()
	g := New(st)
	if g.Store() != st {
		t.Error("Store() should return the wrapped store")
	}
	_ = fmt.Sprint(g.Order())
}
