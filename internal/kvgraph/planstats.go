package kvgraph

import (
	adjpkg "gdbm/internal/adj"
	"gdbm/internal/model"
	"gdbm/internal/query/stats"
)

// This file is the graph's planning surface: epoch-keyed cardinality
// statistics for the cost-based planner and the sorted-adjacency capability
// the worst-case-optimal join intersects. Both are served from the pinned
// copy-on-write view, so they see exactly one stable epoch and never block
// writers.

// PlanStats implements stats.Provider. The published statistics are keyed
// on the view's stable epoch — the same double-bump discipline the caches
// use — so any mutation makes them unreachable and the next call rebuilds
// from the then-current view. Rebuilds race harmlessly: Publish keeps the
// newest epoch.
func (g *Graph) PlanStats() (*stats.Stats, error) {
	v, rel, err := g.AcquireView()
	if err != nil {
		return nil, err
	}
	defer rel()
	snap, ok := v.(*adjpkg.Snapshot)
	if !ok {
		return nil, nil
	}
	if s := g.stats.TryGet(snap.Epoch()); s != nil {
		return s, nil
	}
	s, err := stats.Build(snap, snap.Epoch())
	if err != nil {
		return nil, err
	}
	g.stats.Publish(s)
	return s, nil
}

// SortedNeighborIDs implements model.SortedAdjacency from the pinned view,
// whose CSR rows serve the sorted lists without touching node records.
func (g *Graph) SortedNeighborIDs(id model.NodeID, dir model.Direction, label string) ([]model.NodeID, error) {
	v, rel, err := g.AcquireView()
	if err != nil {
		return nil, err
	}
	defer rel()
	snap, ok := v.(model.SortedAdjacency)
	if !ok {
		return nil, model.ErrUnsupported
	}
	return snap.SortedNeighborIDs(id, dir, label)
}

var (
	_ stats.Provider        = (*Graph)(nil)
	_ model.SortedAdjacency = (*Graph)(nil)
)
