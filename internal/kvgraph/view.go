package kvgraph

import (
	"encoding/binary"

	"gdbm/internal/adj"
	"gdbm/internal/model"
)

// This file is the graph's read-concurrency surface: epoch-based
// copy-on-write views rendered into succinct adjacency snapshots
// (internal/adj). The mutation epoch kvgraph already double-bumps for the
// cache layer doubles as the view version: AcquireView pins the published
// snapshot in O(1) when the epoch is unchanged and re-renders only the
// dirty ID blocks otherwise, decoding records once into block arrays so
// the read path never touches the store.

// SetViewLayout selects the snapshot directory layout (the bitmap variant
// for the DEX-style engine). Call at construction time, before the graph
// is shared.
func (g *Graph) SetViewLayout(l adj.Layout) { g.ver.SetLayout(l) }

// AcquireView pins an immutable point-in-time view of the graph. The fast
// path is O(1): when the published snapshot already renders the current
// stable epoch, acquisition is one atomic load and a pin, independent of
// graph size. Otherwise the mutation mutex is taken to exclude writers
// while the dirty blocks re-render from the store. The release must be
// called exactly once; it is idempotent.
func (g *Graph) AcquireView() (model.Graph, model.ReleaseFunc, error) {
	if s, rel := g.ver.TryPin(g.epoch.Current()); rel != nil {
		return s, rel, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s, rel, err := g.ver.Pin(g.epoch.Current(), kvSource{g})
	if err != nil {
		return nil, nil, err
	}
	return s, rel, nil
}

// kvSource adapts the key layout to the snapshot builder. Its reads do not
// take g.mu (the stores are internally synchronized), so they are safe to
// call from Versioned.Pin while AcquireView holds the mutex.
type kvSource struct{ g *Graph }

func (s kvSource) counter(key string) (uint64, error) {
	raw, ok, err := s.g.st.Get([]byte(key))
	if err != nil || !ok {
		return 0, err
	}
	return binary.BigEndian.Uint64(raw), nil
}

func (s kvSource) MaxNodeID() (model.NodeID, error) {
	n, err := s.counter("M!n")
	return model.NodeID(n), err
}

func (s kvSource) MaxEdgeID() (model.EdgeID, error) {
	n, err := s.counter("M!e")
	return model.EdgeID(n), err
}

func (s kvSource) NodeByID(id model.NodeID) (model.Node, bool, error) {
	raw, ok, err := s.g.st.Get(u64key("n!", uint64(id)))
	if err != nil || !ok {
		return model.Node{}, false, err
	}
	n, err := decodeNodeRecord(id, raw)
	if err != nil {
		return model.Node{}, false, err
	}
	return n, true, nil
}

func (s kvSource) EdgeByID(id model.EdgeID) (model.Edge, bool, error) {
	raw, ok, err := s.g.st.Get(u64key("e!", uint64(id)))
	if err != nil || !ok {
		return model.Edge{}, false, err
	}
	e, err := decodeEdgeRecord(id, raw)
	if err != nil {
		return model.Edge{}, false, err
	}
	return e, true, nil
}

func (s kvSource) incident(prefix string, id model.NodeID) ([]model.EdgeID, error) {
	var eids []model.EdgeID
	err := s.g.st.Scan(append(u64key(prefix, uint64(id)), '!'), func(k, _ []byte) bool {
		eids = append(eids, model.EdgeID(binary.BigEndian.Uint64(k[len(k)-8:])))
		return true
	})
	return eids, err
}

func (s kvSource) OutEdges(id model.NodeID) ([]model.EdgeID, error) {
	return s.incident("o!", id)
}

func (s kvSource) InEdges(id model.NodeID) ([]model.EdgeID, error) {
	return s.incident("i!", id)
}

var (
	_ model.Pinner = (*Graph)(nil)
	_ adj.Source   = kvSource{}
)
