package kvgraph

import (
	"testing"

	"gdbm/internal/adj"
	"gdbm/internal/model"
	"gdbm/internal/storage/kv"
)

// TestAcquireViewPinsDrain mirrors the memgraph release-discipline test
// over the kv-layered store: cold render, warm lock-free pin of the same
// snapshot, idempotent release draining pins to zero, and invalidation
// on mutation.
func TestAcquireViewPinsDrain(t *testing.T) {
	g := New(kv.NewMemory())
	n1, err := g.AddNode("P", model.Props("rank", 1))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := g.AddNode("P", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("knows", n1, n2, nil); err != nil {
		t.Fatal(err)
	}

	v1, rel1, err := g.AcquireView()
	if err != nil {
		t.Fatal(err)
	}
	v2, rel2, err := g.AcquireView()
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := v1.(*adj.Snapshot), v2.(*adj.Snapshot)
	if s1 != s2 {
		t.Fatal("warm AcquireView rebuilt instead of pinning the published snapshot")
	}
	rel1()
	rel1() // idempotent
	rel2()
	if got := s1.Pins(); got != 0 {
		t.Fatalf("pins after releases = %d, want 0", got)
	}

	if err := g.RemoveEdge(model.EdgeID(1)); err != nil {
		t.Fatal(err)
	}
	v3, rel3, err := g.AcquireView()
	if err != nil {
		t.Fatal(err)
	}
	defer rel3()
	if v3.(*adj.Snapshot) == s1 {
		t.Fatal("AcquireView returned a stale snapshot after a mutation")
	}
	if v3.Size() != 0 || s1.Size() != 1 {
		t.Fatalf("sizes after removal: new=%d old=%d, want 0/1", v3.Size(), s1.Size())
	}
}
