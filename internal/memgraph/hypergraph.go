package memgraph

import (
	"sync"

	"gdbm/internal/model"
)

// Hypergraph is an in-memory hypergraph: each hyperedge relates an arbitrary
// ordered set of nodes. It backs the HyperGraphDB- and Sones-archetype
// engines.
type Hypergraph struct {
	mu       sync.RWMutex
	nodes    map[model.NodeID]*model.Node
	edges    map[model.EdgeID]*model.HyperEdge
	incident map[model.NodeID][]model.EdgeID
	nextNode model.NodeID
	nextEdge model.EdgeID
}

// NewHypergraph returns an empty hypergraph.
func NewHypergraph() *Hypergraph {
	return &Hypergraph{
		nodes:    make(map[model.NodeID]*model.Node),
		edges:    make(map[model.EdgeID]*model.HyperEdge),
		incident: make(map[model.NodeID][]model.EdgeID),
	}
}

// Order returns the number of nodes.
func (g *Hypergraph) Order() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// Size returns the number of hyperedges.
func (g *Hypergraph) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// AddNode inserts a node.
func (g *Hypergraph) AddNode(label string, props model.Properties) (model.NodeID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextNode++
	id := g.nextNode
	g.nodes[id] = &model.Node{ID: id, Label: label, Props: props.Clone()}
	return id, nil
}

// AddHyperEdge inserts a hyperedge over members. Every member must exist and
// at least one member is required.
func (g *Hypergraph) AddHyperEdge(label string, members []model.NodeID, props model.Properties) (model.EdgeID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(members) == 0 {
		return 0, model.ErrUnsupported
	}
	for _, m := range members {
		if _, ok := g.nodes[m]; !ok {
			return 0, model.NodeNotFound(m)
		}
	}
	g.nextEdge++
	id := g.nextEdge
	g.edges[id] = &model.HyperEdge{
		ID:      id,
		Label:   label,
		Members: append([]model.NodeID(nil), members...),
		Props:   props.Clone(),
	}
	seen := make(map[model.NodeID]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			g.incident[m] = append(g.incident[m], id)
			seen[m] = true
		}
	}
	return id, nil
}

// RemoveHyperEdge deletes a hyperedge.
func (g *Hypergraph) RemoveHyperEdge(id model.EdgeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.edges[id]
	if !ok {
		return model.EdgeNotFound(id)
	}
	for _, m := range e.Members {
		inc := g.incident[m]
		for i, v := range inc {
			if v == id {
				inc[i] = inc[len(inc)-1]
				g.incident[m] = inc[:len(inc)-1]
				break
			}
		}
	}
	delete(g.edges, id)
	return nil
}

// Node returns the node record for id.
func (g *Hypergraph) Node(id model.NodeID) (model.Node, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return model.Node{}, model.NodeNotFound(id)
	}
	return *n, nil
}

// HyperEdge returns the hyperedge record for id.
func (g *Hypergraph) HyperEdge(id model.EdgeID) (model.HyperEdge, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.edges[id]
	if !ok {
		return model.HyperEdge{}, model.EdgeNotFound(id)
	}
	cp := *e
	cp.Members = append([]model.NodeID(nil), e.Members...)
	return cp, nil
}

// Nodes iterates all nodes.
func (g *Hypergraph) Nodes(fn func(model.Node) bool) error {
	g.mu.RLock()
	snapshot := make([]model.Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		snapshot = append(snapshot, *n)
	}
	g.mu.RUnlock()
	for _, n := range snapshot {
		if !fn(n) {
			return nil
		}
	}
	return nil
}

// HyperEdges iterates all hyperedges.
func (g *Hypergraph) HyperEdges(fn func(model.HyperEdge) bool) error {
	g.mu.RLock()
	snapshot := make([]model.HyperEdge, 0, len(g.edges))
	for _, e := range g.edges {
		cp := *e
		cp.Members = append([]model.NodeID(nil), e.Members...)
		snapshot = append(snapshot, cp)
	}
	g.mu.RUnlock()
	for _, e := range snapshot {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// Incident iterates the hyperedges containing id.
func (g *Hypergraph) Incident(id model.NodeID, fn func(model.HyperEdge) bool) error {
	g.mu.RLock()
	if _, ok := g.nodes[id]; !ok {
		g.mu.RUnlock()
		return model.NodeNotFound(id)
	}
	snapshot := make([]model.HyperEdge, 0, len(g.incident[id]))
	for _, eid := range g.incident[id] {
		e := g.edges[eid]
		cp := *e
		cp.Members = append([]model.NodeID(nil), e.Members...)
		snapshot = append(snapshot, cp)
	}
	g.mu.RUnlock()
	for _, e := range snapshot {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// Binary projects the hypergraph to a binary graph view: each 2-member
// hyperedge becomes a directed edge, and each k>2 hyperedge is expanded into
// the clique of ordered pairs of its members. The projection lets the shared
// algorithm layer run over hypergraph engines. An iteration error aborts
// the projection: a partial view must not pass for the whole hypergraph.
func (g *Hypergraph) Binary() (*Graph, error) {
	bin := New()
	idmap := make(map[model.NodeID]model.NodeID)
	if err := g.Nodes(func(n model.Node) bool {
		nid, _ := bin.AddNode(n.Label, n.Props)
		idmap[n.ID] = nid
		return true
	}); err != nil {
		return nil, err
	}
	if err := g.HyperEdges(func(e model.HyperEdge) bool {
		if len(e.Members) == 2 {
			bin.AddEdge(e.Label, idmap[e.Members[0]], idmap[e.Members[1]], e.Props)
			return true
		}
		for i := range e.Members {
			for j := range e.Members {
				if i != j {
					bin.AddEdge(e.Label, idmap[e.Members[i]], idmap[e.Members[j]], e.Props)
				}
			}
		}
		return true
	}); err != nil {
		return nil, err
	}
	return bin, nil
}

var _ model.MutableHypergraph = (*Hypergraph)(nil)
