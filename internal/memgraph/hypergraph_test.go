package memgraph

import (
	"errors"
	"testing"

	"gdbm/internal/model"
)

func TestHypergraphBasics(t *testing.T) {
	g := NewHypergraph()
	a, _ := g.AddNode("P", model.Props("name", "a"))
	b, _ := g.AddNode("P", nil)
	c, _ := g.AddNode("P", nil)
	he, err := g.AddHyperEdge("complex", []model.NodeID{a, b, c}, model.Props("kind", "trimer"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Order() != 3 || g.Size() != 1 {
		t.Fatalf("order=%d size=%d", g.Order(), g.Size())
	}
	e, err := g.HyperEdge(he)
	if err != nil || len(e.Members) != 3 {
		t.Fatalf("HyperEdge: %+v %v", e, err)
	}
	n, err := g.Node(a)
	if err != nil || n.Label != "P" {
		t.Fatalf("Node: %+v %v", n, err)
	}
	if _, err := g.Node(99); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing node: %v", err)
	}
	if _, err := g.HyperEdge(99); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing edge: %v", err)
	}
}

func TestHyperEdgeValidation(t *testing.T) {
	g := NewHypergraph()
	a, _ := g.AddNode("P", nil)
	if _, err := g.AddHyperEdge("x", nil, nil); err == nil {
		t.Error("empty member set should fail")
	}
	if _, err := g.AddHyperEdge("x", []model.NodeID{a, 77}, nil); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing member: %v", err)
	}
}

func TestIncident(t *testing.T) {
	g := NewHypergraph()
	a, _ := g.AddNode("P", nil)
	b, _ := g.AddNode("P", nil)
	c, _ := g.AddNode("P", nil)
	g.AddHyperEdge("e1", []model.NodeID{a, b}, nil)
	g.AddHyperEdge("e2", []model.NodeID{a, b, c}, nil)
	count := func(id model.NodeID) int {
		n := 0
		g.Incident(id, func(model.HyperEdge) bool { n++; return true })
		return n
	}
	if count(a) != 2 || count(b) != 2 || count(c) != 1 {
		t.Errorf("incident counts: a=%d b=%d c=%d", count(a), count(b), count(c))
	}
	if err := g.Incident(99, func(model.HyperEdge) bool { return true }); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing node: %v", err)
	}
	// Repeated members are indexed once.
	d, _ := g.AddNode("P", nil)
	g.AddHyperEdge("loop", []model.NodeID{d, d}, nil)
	if count(d) != 1 {
		t.Errorf("repeat-member incident count = %d", count(d))
	}
}

func TestRemoveHyperEdge(t *testing.T) {
	g := NewHypergraph()
	a, _ := g.AddNode("P", nil)
	b, _ := g.AddNode("P", nil)
	id, _ := g.AddHyperEdge("e", []model.NodeID{a, b}, nil)
	if err := g.RemoveHyperEdge(id); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 0 {
		t.Errorf("size = %d", g.Size())
	}
	n := 0
	g.Incident(a, func(model.HyperEdge) bool { n++; return true })
	if n != 0 {
		t.Errorf("stale incidence after removal: %d", n)
	}
	if err := g.RemoveHyperEdge(id); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
}

func TestHyperEdgeSnapshotIsolation(t *testing.T) {
	g := NewHypergraph()
	a, _ := g.AddNode("P", nil)
	b, _ := g.AddNode("P", nil)
	id, _ := g.AddHyperEdge("e", []model.NodeID{a, b}, nil)
	e, _ := g.HyperEdge(id)
	e.Members[0] = 999
	e2, _ := g.HyperEdge(id)
	if e2.Members[0] != a {
		t.Error("HyperEdge should return an independent copy of Members")
	}
}

func TestBinaryProjection(t *testing.T) {
	g := NewHypergraph()
	a, _ := g.AddNode("P", nil)
	b, _ := g.AddNode("P", nil)
	c, _ := g.AddNode("P", nil)
	g.AddHyperEdge("pair", []model.NodeID{a, b}, nil)
	g.AddHyperEdge("trio", []model.NodeID{a, b, c}, nil)
	bin, err := g.Binary()
	if err != nil {
		t.Fatalf("Binary: %v", err)
	}
	if bin.Order() != 3 {
		t.Errorf("binary order = %d", bin.Order())
	}
	// pair -> 1 edge; trio -> 3*2 = 6 ordered pairs.
	if bin.Size() != 7 {
		t.Errorf("binary size = %d, want 7", bin.Size())
	}
}

func TestHypergraphIterators(t *testing.T) {
	g := NewHypergraph()
	a, _ := g.AddNode("P", nil)
	g.AddHyperEdge("e", []model.NodeID{a}, nil)
	n := 0
	g.Nodes(func(model.Node) bool { n++; return true })
	if n != 1 {
		t.Errorf("Nodes visited %d", n)
	}
	n = 0
	g.HyperEdges(func(model.HyperEdge) bool { n++; return false })
	if n != 1 {
		t.Errorf("HyperEdges early stop visited %d", n)
	}
}
