// Package memgraph provides the in-memory ("main memory" in the survey's
// Table I) implementations of the model's graph structures: an attributed
// directed multigraph with adjacency lists, a hypergraph, and a nested graph.
// All engines that advertise main-memory storage build on these types.
package memgraph

import (
	"sync"

	"gdbm/internal/adj"
	"gdbm/internal/cache"
	"gdbm/internal/model"
	"gdbm/internal/query/stats"
)

type adjacency struct {
	out []model.EdgeID
	in  []model.EdgeID
}

// Graph is an in-memory attributed directed multigraph. It is safe for
// concurrent use; reads take a shared lock. Every mutation double-bumps
// the epoch and marks the touched ID blocks in ver, which publishes the
// O(1) copy-on-write views of AcquireView (see view.go).
type Graph struct {
	mu       sync.RWMutex
	nodes    map[model.NodeID]*model.Node
	edges    map[model.EdgeID]*model.Edge
	adj      map[model.NodeID]*adjacency
	nextNode model.NodeID
	nextEdge model.EdgeID
	epoch    cache.Epoch
	ver      adj.Versioned
	stats    stats.Versioned // planner statistics, epoch-keyed (planstats.go)
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[model.NodeID]*model.Node),
		edges: make(map[model.EdgeID]*model.Edge),
		adj:   make(map[model.NodeID]*adjacency),
	}
}

// Order returns the number of nodes.
func (g *Graph) Order() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// Size returns the number of edges.
func (g *Graph) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// AddNode inserts a node and returns its identifier.
func (g *Graph) AddNode(label string, props model.Properties) (model.NodeID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	g.nextNode++
	g.ver.MarkNode(g.nextNode)
	id := g.nextNode
	g.nodes[id] = &model.Node{ID: id, Label: label, Props: props.Clone()}
	g.adj[id] = &adjacency{}
	return id, nil
}

// AddEdge inserts a directed edge and returns its identifier. Both endpoints
// must exist.
func (g *Graph) AddEdge(label string, from, to model.NodeID, props model.Properties) (model.EdgeID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	if _, ok := g.nodes[from]; !ok {
		return 0, model.NodeNotFound(from)
	}
	if _, ok := g.nodes[to]; !ok {
		return 0, model.NodeNotFound(to)
	}
	g.nextEdge++
	id := g.nextEdge
	g.ver.MarkEdge(id)
	g.ver.MarkNode(from)
	g.ver.MarkNode(to)
	g.edges[id] = &model.Edge{ID: id, Label: label, From: from, To: to, Props: props.Clone()}
	g.adj[from].out = append(g.adj[from].out, id)
	g.adj[to].in = append(g.adj[to].in, id)
	return id, nil
}

// RemoveNode deletes a node and every incident edge.
func (g *Graph) RemoveNode(id model.NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	a, ok := g.adj[id]
	if !ok {
		return model.NodeNotFound(id)
	}
	for _, eid := range append(append([]model.EdgeID(nil), a.out...), a.in...) {
		g.removeEdgeLocked(eid)
	}
	g.ver.MarkNode(id)
	delete(g.nodes, id)
	delete(g.adj, id)
	return nil
}

// RemoveEdge deletes an edge.
func (g *Graph) RemoveEdge(id model.EdgeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	if _, ok := g.edges[id]; !ok {
		return model.EdgeNotFound(id)
	}
	g.removeEdgeLocked(id)
	return nil
}

func (g *Graph) removeEdgeLocked(id model.EdgeID) {
	e, ok := g.edges[id]
	if !ok {
		return
	}
	g.ver.MarkEdge(id)
	g.ver.MarkNode(e.From)
	g.ver.MarkNode(e.To)
	if a := g.adj[e.From]; a != nil {
		a.out = removeID(a.out, id)
	}
	if a := g.adj[e.To]; a != nil {
		a.in = removeID(a.in, id)
	}
	delete(g.edges, id)
}

func removeID(s []model.EdgeID, id model.EdgeID) []model.EdgeID {
	for i, v := range s {
		if v == id {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// Node returns the node record for id.
func (g *Graph) Node(id model.NodeID) (model.Node, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return model.Node{}, model.NodeNotFound(id)
	}
	return *n, nil
}

// Edge returns the edge record for id.
func (g *Graph) Edge(id model.EdgeID) (model.Edge, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.edges[id]
	if !ok {
		return model.Edge{}, model.EdgeNotFound(id)
	}
	return *e, nil
}

// SetNodeProp sets one property on a node. The property map is replaced,
// not mutated: readers hold record copies that share the old map beyond the
// read lock, so an in-place write would race with them.
func (g *Graph) SetNodeProp(id model.NodeID, key string, v model.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	n, ok := g.nodes[id]
	if !ok {
		return model.NodeNotFound(id)
	}
	g.ver.MarkNode(id)
	props := n.Props.Clone()
	if props == nil {
		props = model.Properties{}
	}
	props[key] = v
	n.Props = props
	return nil
}

// SetEdgeProp sets one property on an edge, with the same copy-on-write
// discipline as SetNodeProp.
func (g *Graph) SetEdgeProp(id model.EdgeID, key string, v model.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	e, ok := g.edges[id]
	if !ok {
		return model.EdgeNotFound(id)
	}
	g.ver.MarkEdge(id)
	props := e.Props.Clone()
	if props == nil {
		props = model.Properties{}
	}
	props[key] = v
	e.Props = props
	return nil
}

// Nodes iterates all nodes. Iteration order is unspecified.
func (g *Graph) Nodes(fn func(model.Node) bool) error {
	g.mu.RLock()
	snapshot := make([]model.Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		snapshot = append(snapshot, *n)
	}
	g.mu.RUnlock()
	for _, n := range snapshot {
		if !fn(n) {
			return nil
		}
	}
	return nil
}

// Edges iterates all edges. Iteration order is unspecified.
func (g *Graph) Edges(fn func(model.Edge) bool) error {
	g.mu.RLock()
	snapshot := make([]model.Edge, 0, len(g.edges))
	for _, e := range g.edges {
		snapshot = append(snapshot, *e)
	}
	g.mu.RUnlock()
	for _, e := range snapshot {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// Neighbors iterates edges incident to id in direction dir together with the
// far-end node.
func (g *Graph) Neighbors(id model.NodeID, dir model.Direction, fn func(model.Edge, model.Node) bool) error {
	g.mu.RLock()
	a, ok := g.adj[id]
	if !ok {
		g.mu.RUnlock()
		return model.NodeNotFound(id)
	}
	type pair struct {
		e model.Edge
		n model.Node
	}
	var pairs []pair
	collect := func(eids []model.EdgeID, far func(*model.Edge) model.NodeID) {
		for _, eid := range eids {
			e := g.edges[eid]
			n := g.nodes[far(e)]
			pairs = append(pairs, pair{*e, *n})
		}
	}
	if dir == model.Out || dir == model.Both {
		collect(a.out, func(e *model.Edge) model.NodeID { return e.To })
	}
	if dir == model.In || dir == model.Both {
		collect(a.in, func(e *model.Edge) model.NodeID { return e.From })
	}
	g.mu.RUnlock()
	for _, p := range pairs {
		if !fn(p.e, p.n) {
			return nil
		}
	}
	return nil
}

// Degree returns the number of incident edges in direction dir.
func (g *Graph) Degree(id model.NodeID, dir model.Direction) (int, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	a, ok := g.adj[id]
	if !ok {
		return 0, model.NodeNotFound(id)
	}
	switch dir {
	case model.Out:
		return len(a.out), nil
	case model.In:
		return len(a.in), nil
	default:
		return len(a.out) + len(a.in), nil
	}
}

var _ model.MutableGraph = (*Graph)(nil)
