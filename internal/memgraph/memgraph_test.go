package memgraph

import (
	"errors"
	"testing"
	"testing/quick"

	"gdbm/internal/model"
)

func triangle(t *testing.T) (*Graph, [3]model.NodeID) {
	t.Helper()
	g := New()
	var ids [3]model.NodeID
	for i, name := range []string{"a", "b", "c"} {
		id, err := g.AddNode("N", model.Props("name", name))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	mustEdge(t, g, "e", ids[0], ids[1])
	mustEdge(t, g, "e", ids[1], ids[2])
	mustEdge(t, g, "e", ids[2], ids[0])
	return g, ids
}

func mustEdge(t *testing.T, g *Graph, label string, from, to model.NodeID) model.EdgeID {
	t.Helper()
	id, err := g.AddEdge(label, from, to, nil)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestGraphOrderSize(t *testing.T) {
	g, _ := triangle(t)
	if g.Order() != 3 || g.Size() != 3 {
		t.Fatalf("order=%d size=%d", g.Order(), g.Size())
	}
}

func TestGraphNodeEdgeLookup(t *testing.T) {
	g, ids := triangle(t)
	n, err := g.Node(ids[0])
	if err != nil || n.Label != "N" {
		t.Fatalf("Node: %v %v", n, err)
	}
	if _, err := g.Node(999); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing node: %v", err)
	}
	e, err := g.Edge(1)
	if err != nil || e.From != ids[0] || e.To != ids[1] {
		t.Fatalf("Edge: %+v %v", e, err)
	}
	if _, err := g.Edge(999); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing edge: %v", err)
	}
}

func TestAddEdgeRequiresEndpoints(t *testing.T) {
	g := New()
	id, _ := g.AddNode("N", nil)
	if _, err := g.AddEdge("e", id, 42, nil); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing target: %v", err)
	}
	if _, err := g.AddEdge("e", 42, id, nil); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing source: %v", err)
	}
}

func TestNeighborsDirections(t *testing.T) {
	g, ids := triangle(t)
	count := func(dir model.Direction) int {
		n := 0
		g.Neighbors(ids[0], dir, func(model.Edge, model.Node) bool { n++; return true })
		return n
	}
	if count(model.Out) != 1 || count(model.In) != 1 || count(model.Both) != 2 {
		t.Errorf("neighbor counts out=%d in=%d both=%d", count(model.Out), count(model.In), count(model.Both))
	}
	// Out neighbor of a is b.
	g.Neighbors(ids[0], model.Out, func(e model.Edge, n model.Node) bool {
		if n.ID != ids[1] {
			t.Errorf("out neighbor = %d, want %d", n.ID, ids[1])
		}
		return true
	})
	if err := g.Neighbors(999, model.Out, func(model.Edge, model.Node) bool { return true }); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing node: %v", err)
	}
}

func TestDegree(t *testing.T) {
	g, ids := triangle(t)
	for _, id := range ids {
		for dir, want := range map[model.Direction]int{model.Out: 1, model.In: 1, model.Both: 2} {
			d, err := g.Degree(id, dir)
			if err != nil || d != want {
				t.Errorf("Degree(%d, %v) = %d, %v; want %d", id, dir, d, err, want)
			}
		}
	}
	if _, err := g.Degree(999, model.Out); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing node degree: %v", err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g, ids := triangle(t)
	if err := g.RemoveEdge(1); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Errorf("size after removal = %d", g.Size())
	}
	if d, _ := g.Degree(ids[0], model.Out); d != 0 {
		t.Errorf("out degree after removal = %d", d)
	}
	if err := g.RemoveEdge(1); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
}

func TestRemoveNodeCascades(t *testing.T) {
	g, ids := triangle(t)
	if err := g.RemoveNode(ids[0]); err != nil {
		t.Fatal(err)
	}
	if g.Order() != 2 || g.Size() != 1 {
		t.Errorf("order=%d size=%d after cascade", g.Order(), g.Size())
	}
	if err := g.RemoveNode(ids[0]); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
}

func TestSetProps(t *testing.T) {
	g, ids := triangle(t)
	if err := g.SetNodeProp(ids[0], "age", model.Int(3)); err != nil {
		t.Fatal(err)
	}
	n, _ := g.Node(ids[0])
	if v, _ := n.Props["age"].AsInt(); v != 3 {
		t.Errorf("age = %v", n.Props["age"])
	}
	if err := g.SetEdgeProp(1, "w", model.Float(0.5)); err != nil {
		t.Fatal(err)
	}
	e, _ := g.Edge(1)
	if v, _ := e.Props["w"].AsFloat(); v != 0.5 {
		t.Errorf("w = %v", e.Props["w"])
	}
	if err := g.SetNodeProp(999, "x", model.Int(1)); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing node prop: %v", err)
	}
	if err := g.SetEdgeProp(999, "x", model.Int(1)); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("missing edge prop: %v", err)
	}
}

func TestPropsAreCopiedOnInsert(t *testing.T) {
	g := New()
	p := model.Props("k", 1)
	id, _ := g.AddNode("N", p)
	p["k"] = model.Int(2)
	n, _ := g.Node(id)
	if v, _ := n.Props["k"].AsInt(); v != 1 {
		t.Error("insert should copy the property map")
	}
}

func TestIterationEarlyStop(t *testing.T) {
	g, _ := triangle(t)
	n := 0
	g.Nodes(func(model.Node) bool { n++; return false })
	if n != 1 {
		t.Errorf("Nodes early stop visited %d", n)
	}
	n = 0
	g.Edges(func(model.Edge) bool { n++; return false })
	if n != 1 {
		t.Errorf("Edges early stop visited %d", n)
	}
}

// Property: for any sequence of edge insertions over k nodes, the sum of out
// degrees equals the number of edges (handshake invariant, directed form).
func TestDegreeSumInvariantQuick(t *testing.T) {
	f := func(pairs []struct{ A, B uint8 }) bool {
		g := New()
		const k = 16
		ids := make([]model.NodeID, k)
		for i := range ids {
			ids[i], _ = g.AddNode("N", nil)
		}
		for _, p := range pairs {
			g.AddEdge("e", ids[int(p.A)%k], ids[int(p.B)%k], nil)
		}
		sumOut, sumIn := 0, 0
		for _, id := range ids {
			o, _ := g.Degree(id, model.Out)
			i, _ := g.Degree(id, model.In)
			sumOut += o
			sumIn += i
		}
		return sumOut == g.Size() && sumIn == g.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
