package memgraph

import (
	"sync"

	"gdbm/internal/model"
)

// Nested is an in-memory nested graph: a Graph whose nodes may carry child
// graphs (hypernodes). The survey observes that hypergraphs and attributed
// graphs can be modelled by nested graphs but not vice versa; Nested exists
// so the comparison harness can exercise that claim.
type Nested struct {
	*Graph
	mu       sync.RWMutex
	children map[model.NodeID]*Nested
}

// NewNested returns an empty nested graph.
func NewNested() *Nested {
	return &Nested{Graph: New(), children: make(map[model.NodeID]*Nested)}
}

// Nest attaches child to node id, making it a hypernode. The child must be a
// *Nested or *Graph produced by this package.
func (g *Nested) Nest(id model.NodeID, child model.MutableGraph) error {
	if _, err := g.Graph.Node(id); err != nil {
		return err
	}
	var nc *Nested
	switch c := child.(type) {
	case *Nested:
		nc = c
	case *Graph:
		nc = &Nested{Graph: c, children: make(map[model.NodeID]*Nested)}
	default:
		return model.ErrUnsupported
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.children[id]; ok {
		return model.ErrAlreadyExists
	}
	g.children[id] = nc
	return nil
}

// Unnest detaches and returns the child graph of id.
func (g *Nested) Unnest(id model.NodeID) (model.MutableGraph, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.children[id]
	if !ok {
		return nil, model.NodeNotFound(id)
	}
	delete(g.children, id)
	return c, nil
}

// Child returns the nested graph of id, or ErrNotFound for a flat node.
func (g *Nested) Child(id model.NodeID) (model.Graph, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c, ok := g.children[id]
	if !ok {
		return nil, model.NodeNotFound(id)
	}
	return c, nil
}

// Depth returns the maximum nesting depth below id: 0 for a flat node, 1 for
// a hypernode whose child has no hypernodes, and so on.
func (g *Nested) Depth(id model.NodeID) (int, error) {
	if _, err := g.Graph.Node(id); err != nil {
		return 0, err
	}
	g.mu.RLock()
	c, ok := g.children[id]
	g.mu.RUnlock()
	if !ok {
		return 0, nil
	}
	max := 0
	var nodes []model.NodeID
	if err := c.Nodes(func(n model.Node) bool {
		nodes = append(nodes, n.ID)
		return true
	}); err != nil {
		return 0, err
	}
	for _, nid := range nodes {
		d, err := c.Depth(nid)
		if err != nil {
			return 0, err
		}
		if d > max {
			max = d
		}
	}
	return 1 + max, nil
}

// RemoveNode removes the node and any nested child graph.
func (g *Nested) RemoveNode(id model.NodeID) error {
	g.mu.Lock()
	delete(g.children, id)
	g.mu.Unlock()
	return g.Graph.RemoveNode(id)
}

// Flatten returns a flat Graph in which every hypernode's child nodes are
// inlined and connected to the hypernode's neighbours via edges labelled
// "nests". It demonstrates the survey's claim that nested graphs subsume the
// other structures. An iteration error at any nesting level aborts the
// flattening: a partially-inlined graph must not pass for the whole.
func (g *Nested) Flatten() (*Graph, error) {
	flat := New()
	if err := g.flattenInto(flat, nil); err != nil {
		return nil, err
	}
	return flat, nil
}

func (g *Nested) flattenInto(flat *Graph, parent *model.NodeID) error {
	idmap := make(map[model.NodeID]model.NodeID)
	if err := g.Nodes(func(n model.Node) bool {
		nid, _ := flat.AddNode(n.Label, n.Props)
		idmap[n.ID] = nid
		if parent != nil {
			flat.AddEdge("nests", *parent, nid, nil)
		}
		return true
	}); err != nil {
		return err
	}
	if err := g.Edges(func(e model.Edge) bool {
		flat.AddEdge(e.Label, idmap[e.From], idmap[e.To], e.Props)
		return true
	}); err != nil {
		return err
	}
	g.mu.RLock()
	kids := make(map[model.NodeID]*Nested, len(g.children))
	for id, c := range g.children {
		kids[id] = c
	}
	g.mu.RUnlock()
	for id, c := range kids {
		mapped := idmap[id]
		if err := c.flattenInto(flat, &mapped); err != nil {
			return err
		}
	}
	return nil
}

var _ model.NestedGraph = (*Nested)(nil)
