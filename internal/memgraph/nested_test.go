package memgraph

import (
	"errors"
	"testing"

	"gdbm/internal/model"
)

func TestNestedBasics(t *testing.T) {
	g := NewNested()
	outer, _ := g.AddNode("Module", nil)
	inner := NewNested()
	x, _ := inner.AddNode("Fn", nil)
	y, _ := inner.AddNode("Fn", nil)
	inner.AddEdge("calls", x, y, nil)

	if err := g.Nest(outer, inner); err != nil {
		t.Fatal(err)
	}
	child, err := g.Child(outer)
	if err != nil {
		t.Fatal(err)
	}
	if child.Order() != 2 || child.Size() != 1 {
		t.Errorf("child order=%d size=%d", child.Order(), child.Size())
	}
	if err := g.Nest(outer, NewNested()); !errors.Is(err, model.ErrAlreadyExists) {
		t.Errorf("double nest: %v", err)
	}
	if err := g.Nest(999, NewNested()); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("nest on missing node: %v", err)
	}
}

func TestNestedDepth(t *testing.T) {
	g := NewNested()
	a, _ := g.AddNode("L0", nil)
	mid := NewNested()
	b, _ := mid.AddNode("L1", nil)
	deep := NewNested()
	deep.AddNode("L2", nil)
	if err := mid.Nest(b, deep); err != nil {
		t.Fatal(err)
	}
	if err := g.Nest(a, mid); err != nil {
		t.Fatal(err)
	}
	d, err := g.Depth(a)
	if err != nil || d != 2 {
		t.Fatalf("Depth = %d, %v; want 2", d, err)
	}
	flatNode, _ := g.AddNode("flat", nil)
	if d, _ := g.Depth(flatNode); d != 0 {
		t.Errorf("flat node depth = %d", d)
	}
	if _, err := g.Depth(999); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("depth of missing node: %v", err)
	}
}

func TestUnnest(t *testing.T) {
	g := NewNested()
	a, _ := g.AddNode("M", nil)
	child := NewNested()
	child.AddNode("inner", nil)
	g.Nest(a, child)
	got, err := g.Unnest(a)
	if err != nil {
		t.Fatal(err)
	}
	if got.Order() != 1 {
		t.Errorf("unnested child order = %d", got.Order())
	}
	if _, err := g.Child(a); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("child after unnest: %v", err)
	}
	if _, err := g.Unnest(a); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("double unnest: %v", err)
	}
}

func TestNestPlainGraph(t *testing.T) {
	g := NewNested()
	a, _ := g.AddNode("M", nil)
	plain := New()
	plain.AddNode("inner", nil)
	if err := g.Nest(a, plain); err != nil {
		t.Fatal(err)
	}
	c, err := g.Child(a)
	if err != nil || c.Order() != 1 {
		t.Fatalf("child: %v %v", c, err)
	}
}

func TestNestedRemoveNodeDropsChild(t *testing.T) {
	g := NewNested()
	a, _ := g.AddNode("M", nil)
	g.Nest(a, NewNested())
	if err := g.RemoveNode(a); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Child(a); !errors.Is(err, model.ErrNotFound) {
		t.Errorf("child should be gone: %v", err)
	}
}

func TestFlatten(t *testing.T) {
	g := NewNested()
	a, _ := g.AddNode("M", nil)
	b, _ := g.AddNode("M", nil)
	g.AddEdge("next", a, b, nil)
	child := NewNested()
	c1, _ := child.AddNode("inner", nil)
	c2, _ := child.AddNode("inner", nil)
	child.AddEdge("in", c1, c2, nil)
	g.Nest(a, child)

	flat, err := g.Flatten()
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	// Nodes: a, b, c1, c2 = 4. Edges: next, in, and 2 "nests" edges = 4.
	if flat.Order() != 4 {
		t.Errorf("flat order = %d, want 4", flat.Order())
	}
	if flat.Size() != 4 {
		t.Errorf("flat size = %d, want 4", flat.Size())
	}
	nests := 0
	flat.Edges(func(e model.Edge) bool {
		if e.Label == "nests" {
			nests++
		}
		return true
	})
	if nests != 2 {
		t.Errorf("nests edges = %d, want 2", nests)
	}
}
