package memgraph

import "gdbm/internal/model"

// Snapshot returns a deep copy of the graph's state, and RestoreFrom
// replaces the state with a previously taken snapshot. Together they give
// the in-memory engines an all-or-nothing transaction primitive (the
// "transaction engine" component the survey requires of a graph database):
// take a snapshot, apply a batch, restore on failure.
func (g *Graph) Snapshot() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := New()
	s.nextNode = g.nextNode
	s.nextEdge = g.nextEdge
	for id, n := range g.nodes {
		cp := *n
		cp.Props = n.Props.Clone()
		s.nodes[id] = &cp
	}
	for id, e := range g.edges {
		cp := *e
		cp.Props = e.Props.Clone()
		s.edges[id] = &cp
	}
	for id, a := range g.adj {
		s.adj[id] = &adjacency{
			out: append([]model.EdgeID(nil), a.out...),
			in:  append([]model.EdgeID(nil), a.in...),
		}
	}
	return s
}

// RestoreFrom replaces the receiver's state with the snapshot's. The
// snapshot must not be used afterwards. Wholesale replacement invalidates
// every copy-on-write view block and moves the epoch.
func (g *Graph) RestoreFrom(s *Graph) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch.Bump()
	defer g.epoch.Bump()
	s.mu.Lock()
	defer s.mu.Unlock()
	g.nodes = s.nodes
	g.edges = s.edges
	g.adj = s.adj
	g.nextNode = s.nextNode
	g.nextEdge = s.nextEdge
	g.ver.MarkAll()
}
