package memgraph

import (
	"gdbm/internal/adj"
	"gdbm/internal/model"
)

// This file is the graph's read-concurrency surface: epoch-based
// copy-on-write views rendered into succinct adjacency snapshots
// (internal/adj). Every mutation double-bumps the epoch under the write
// lock (odd mid-mutation, even at rest — the same discipline kvgraph uses
// for the cache layer) and marks the touched ID blocks dirty; AcquireView
// pins the published snapshot in O(1) when the store is quiescent and
// re-renders only dirty blocks otherwise.

// Epoch returns the graph's mutation epoch. Stable states are even; the
// count only moves forward.
func (g *Graph) Epoch() uint64 { return g.epoch.Current() }

// SetViewLayout selects the snapshot directory layout (the bitmap variant
// for the DEX-style engine). Call at construction time, before the graph
// is shared.
func (g *Graph) SetViewLayout(l adj.Layout) { g.ver.SetLayout(l) }

// AcquireView pins an immutable point-in-time view of the graph. The fast
// path is O(1): when the published snapshot already renders the current
// stable epoch, acquisition is one atomic load and a pin, independent of
// graph size. Otherwise the read lock is taken (excluding writers, not
// readers) and the dirty blocks are re-rendered. The release must be
// called exactly once; it is idempotent.
func (g *Graph) AcquireView() (model.Graph, model.ReleaseFunc, error) {
	if s, rel := g.ver.TryPin(g.epoch.Current()); rel != nil {
		return s, rel, nil
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	s, rel, err := g.ver.Pin(g.epoch.Current(), memSource{g})
	if err != nil {
		return nil, nil, err
	}
	return s, rel, nil
}

// memSource adapts the graph's internals to the snapshot builder. Its
// methods are unlocked: Versioned.Pin is called with g.mu held (read side,
// which excludes writers), so the maps are quiescent for the whole render.
type memSource struct{ g *Graph }

func (s memSource) MaxNodeID() (model.NodeID, error) { return s.g.nextNode, nil }
func (s memSource) MaxEdgeID() (model.EdgeID, error) { return s.g.nextEdge, nil }

func (s memSource) NodeByID(id model.NodeID) (model.Node, bool, error) {
	n, ok := s.g.nodes[id]
	if !ok {
		return model.Node{}, false, nil
	}
	return *n, true, nil
}

func (s memSource) EdgeByID(id model.EdgeID) (model.Edge, bool, error) {
	e, ok := s.g.edges[id]
	if !ok {
		return model.Edge{}, false, nil
	}
	return *e, true, nil
}

func (s memSource) OutEdges(id model.NodeID) ([]model.EdgeID, error) {
	if a := s.g.adj[id]; a != nil {
		return a.out, nil
	}
	return nil, nil
}

func (s memSource) InEdges(id model.NodeID) ([]model.EdgeID, error) {
	if a := s.g.adj[id]; a != nil {
		return a.in, nil
	}
	return nil, nil
}

var (
	_ model.Pinner = (*Graph)(nil)
	_ adj.Source   = memSource{}
)
