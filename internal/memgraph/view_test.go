package memgraph

import (
	"testing"

	"gdbm/internal/adj"
	"gdbm/internal/model"
)

// TestAcquireViewPinsDrain is the release-discipline regression test for
// the closeleak ReleaseFunc sweep: every acquire path (cold render and
// warm TryPin) must hand back a release that is idempotent and drains
// the pin count to zero, and a warm acquire must reuse the published
// snapshot rather than rebuilding.
func TestAcquireViewPinsDrain(t *testing.T) {
	g := New()
	n1, err := g.AddNode("P", model.Props("rank", 1))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := g.AddNode("P", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("knows", n1, n2, nil); err != nil {
		t.Fatal(err)
	}

	v1, rel1, err := g.AcquireView() // cold: renders the first snapshot
	if err != nil {
		t.Fatal(err)
	}
	v2, rel2, err := g.AcquireView() // warm: lock-free pin of the same one
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := v1.(*adj.Snapshot), v2.(*adj.Snapshot)
	if s1 != s2 {
		t.Fatal("warm AcquireView rebuilt instead of pinning the published snapshot")
	}
	if got := s1.Pins(); got != 2 {
		t.Fatalf("pins after two acquires = %d, want 2", got)
	}
	rel1()
	rel1() // idempotent: must not double-decrement
	rel2()
	if got := s1.Pins(); got != 0 {
		t.Fatalf("pins after releases = %d, want 0", got)
	}

	// A mutation invalidates the published snapshot; the next acquire
	// renders the new epoch and the old pinned view stays intact.
	if _, err := g.AddNode("P", nil); err != nil {
		t.Fatal(err)
	}
	v3, rel3, err := g.AcquireView()
	if err != nil {
		t.Fatal(err)
	}
	defer rel3()
	if v3.(*adj.Snapshot) == s1 {
		t.Fatal("AcquireView returned a stale snapshot after a mutation")
	}
	if v3.Order() != 3 || s1.Order() != 2 {
		t.Fatalf("orders after mutation: new=%d old=%d, want 3/2", v3.Order(), s1.Order())
	}
}
