package model

import (
	"errors"
	"fmt"
)

// NodeID identifies a node within a graph. IDs are allocated densely from 1;
// 0 is never a valid ID.
type NodeID uint64

// EdgeID identifies an edge (or hyperedge) within a graph. 0 is never valid.
type EdgeID uint64

// InvalidNode and InvalidEdge are the zero identifiers.
const (
	InvalidNode NodeID = 0
	InvalidEdge EdgeID = 0
)

// Node is the record form of a vertex: an identifier, an optional label
// (type name), and an optional attribute map. Engines whose archetype lacks
// attribution reject non-empty Props at their own surface; the record type is
// shared.
type Node struct {
	ID    NodeID
	Label string
	Props Properties
}

// Edge is the record form of a binary edge. Directed engines interpret
// From→To; undirected engines treat the pair symmetrically.
type Edge struct {
	ID    EdgeID
	Label string
	From  NodeID
	To    NodeID
	Props Properties
}

// HyperEdge relates an arbitrary, ordered set of nodes (the survey's
// hypergraph structure). Members may contain repeats.
type HyperEdge struct {
	ID      EdgeID
	Label   string
	Members []NodeID
	Props   Properties
}

// Sentinel errors shared across engines and substrates.
var (
	ErrNotFound      = errors.New("not found")
	ErrAlreadyExists = errors.New("already exists")
	ErrUnsupported   = errors.New("operation not supported by this engine")
	ErrClosed        = errors.New("database is closed")
	ErrReadOnly      = errors.New("transaction is read-only")
	ErrConstraint    = errors.New("integrity constraint violation")
)

// NodeNotFound wraps ErrNotFound with the offending ID.
func NodeNotFound(id NodeID) error {
	return fmt.Errorf("node %d: %w", id, ErrNotFound)
}

// EdgeNotFound wraps ErrNotFound with the offending ID.
func EdgeNotFound(id EdgeID) error {
	return fmt.Errorf("edge %d: %w", id, ErrNotFound)
}

// Direction selects which incident edges of a node a traversal follows.
type Direction uint8

const (
	Out  Direction = iota // edges whose From is the node
	In                    // edges whose To is the node
	Both                  // union of Out and In
)

// String returns "out", "in" or "both".
func (d Direction) String() string {
	switch d {
	case Out:
		return "out"
	case In:
		return "in"
	default:
		return "both"
	}
}

// Reverse flips Out and In; Both is its own reverse.
func (d Direction) Reverse() Direction {
	switch d {
	case Out:
		return In
	case In:
		return Out
	default:
		return Both
	}
}

// Graph is the structural read interface every binary-edge engine exposes to
// the algorithm layer. Implementations must be safe for concurrent readers.
type Graph interface {
	// Order returns the number of nodes.
	Order() int
	// Size returns the number of edges.
	Size() int
	// Node returns the node record for id.
	Node(id NodeID) (Node, error)
	// Edge returns the edge record for id.
	Edge(id EdgeID) (Edge, error)
	// Nodes calls fn for every node until fn returns false or an error.
	Nodes(fn func(Node) bool) error
	// Edges calls fn for every edge until fn returns false or an error.
	Edges(fn func(Edge) bool) error
	// Neighbors calls fn for each edge incident to id in the given
	// direction, together with the node at the far end.
	Neighbors(id NodeID, dir Direction, fn func(Edge, Node) bool) error
	// Degree returns the number of incident edges in the given direction.
	Degree(id NodeID, dir Direction) (int, error)
}

// ReleaseFunc returns resources pinned by an acquired snapshot. It must be
// called exactly once when the caller is done with the view; calling it
// more than once is a no-op for the implementations in this repository.
type ReleaseFunc func()

// Snapshotter is the read-concurrency contract of stores that can expose a
// read view to many goroutines at once. AcquireSnapshot returns a Graph
// that is safe for unsynchronized use by any number of concurrent readers
// until released, at frozen isolation: the view is an immutable
// point-in-time rendering, unaffected by later mutations, pinned to the
// store's stable epoch at acquisition.
//
// Since the epoch-versioned copy-on-write views (internal/adj), frozen is
// the only isolation level: acquisition is O(1) on a quiescent store (one
// atomic load and a pin — no copying), writers never block pinned readers,
// and a re-render after mutations touches only the dirty ID blocks. The
// parallel query kernels (internal/algo/par) rely on the immutability for
// their determinism guarantee — results identical to the sequential
// kernels on the pinned state.
//
// The returned release follows the ReleaseFunc contract: call it exactly
// once when done; the implementations here make it idempotent.
type Snapshotter interface {
	AcquireSnapshot() (Graph, ReleaseFunc, error)
}

// SortedAdjacency is an optional Graph capability: the IDs of the
// neighbors of a node in a direction, filtered by edge label ("" = any),
// in ascending NodeID order with one entry per matching edge (parallel
// edges repeat their endpoint; a self-loop under Both appears once per
// direction, mirroring Neighbors enumeration). The worst-case-optimal
// join operator leapfrogs over these lists without loading node records;
// graphs that do not implement it are served by a collect-and-sort
// fallback over Neighbors.
type SortedAdjacency interface {
	SortedNeighborIDs(id NodeID, dir Direction, label string) ([]NodeID, error)
}

// Pinner is the store-level face of the same contract, implemented by the
// mutable stores (memgraph, kvgraph) that render copy-on-write views. It
// is deliberately a different method name from Snapshotter: engines embed
// the stores, and the capability registry must stay free to forbid the
// engine-level Concurrent surface (AcquireSnapshot) on archetypes whose
// paper profile lacks it without a promoted method leaking it for free.
// Engines whose profile allows Concurrent delegate AcquireSnapshot to
// AcquireView.
type Pinner interface {
	AcquireView() (Graph, ReleaseFunc, error)
}

// MutableGraph extends Graph with update operations.
type MutableGraph interface {
	Graph
	AddNode(label string, props Properties) (NodeID, error)
	AddEdge(label string, from, to NodeID, props Properties) (EdgeID, error)
	RemoveNode(id NodeID) error
	RemoveEdge(id EdgeID) error
	SetNodeProp(id NodeID, key string, v Value) error
	SetEdgeProp(id EdgeID, key string, v Value) error
}

// Hypergraph is the structural interface for hyperedge engines.
type Hypergraph interface {
	Order() int
	Size() int
	Node(id NodeID) (Node, error)
	HyperEdge(id EdgeID) (HyperEdge, error)
	Nodes(fn func(Node) bool) error
	HyperEdges(fn func(HyperEdge) bool) error
	// Incident calls fn for every hyperedge containing id.
	Incident(id NodeID, fn func(HyperEdge) bool) error
}

// MutableHypergraph extends Hypergraph with update operations.
type MutableHypergraph interface {
	Hypergraph
	AddNode(label string, props Properties) (NodeID, error)
	AddHyperEdge(label string, members []NodeID, props Properties) (EdgeID, error)
	RemoveHyperEdge(id EdgeID) error
}

// NestedGraph models graphs whose nodes may themselves contain graphs
// (hypernodes). The survey notes no current system supports nesting; this
// repository implements it as the paper's "future work" structure so the
// comparison harness can exercise the full taxonomy.
type NestedGraph interface {
	MutableGraph
	// Nest attaches a child graph to node id, making it a hypernode.
	Nest(id NodeID, child MutableGraph) error
	// Unnest detaches and returns the child graph of a hypernode.
	Unnest(id NodeID) (MutableGraph, error)
	// Child returns the nested graph of id, or ErrNotFound if id is flat.
	Child(id NodeID) (Graph, error)
	// Depth returns the maximum nesting depth below id (0 for flat nodes).
	Depth(id NodeID) (int, error)
}
