package model

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Properties maps attribute names to typed values. A nil map is a valid empty
// property set. Attributed graphs in the survey's taxonomy attach such maps to
// nodes and edges.
type Properties map[string]Value

// Props builds a property map from alternating key/value pairs, converting
// values with Of. It panics on an odd number of arguments or non-string keys,
// which makes misuse visible at development time; it is intended for literals.
func Props(kv ...any) Properties {
	if len(kv)%2 != 0 {
		panic("model.Props: odd number of arguments")
	}
	p := make(Properties, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			panic(fmt.Sprintf("model.Props: key %d is %T, not string", i/2, kv[i]))
		}
		p[k] = Of(kv[i+1])
	}
	return p
}

// Get returns the value for key, or null if absent.
func (p Properties) Get(key string) Value {
	if p == nil {
		return Null()
	}
	return p[key]
}

// Has reports whether the key is present.
func (p Properties) Has(key string) bool {
	_, ok := p[key]
	return ok
}

// Clone returns an independent copy.
func (p Properties) Clone() Properties {
	if p == nil {
		return nil
	}
	c := make(Properties, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// Equal reports whether two property maps contain the same keys and
// semantically equal values.
func (p Properties) Equal(o Properties) bool {
	if len(p) != len(o) {
		return false
	}
	for k, v := range p {
		ov, ok := o[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Keys returns the property names in sorted order.
func (p Properties) Keys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the map deterministically as {k: v, ...}.
func (p Properties) String() string {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range p.Keys() {
		if i > 0 {
			buf.WriteString(", ")
		}
		fmt.Fprintf(&buf, "%s: %s", k, p[k])
	}
	buf.WriteByte('}')
	return buf.String()
}

// MarshalBinary encodes the property map for storage. Keys are written in
// sorted order so the encoding is deterministic.
func (p Properties) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	putUvarint(uint64(len(p)))
	for _, k := range p.Keys() {
		putUvarint(uint64(len(k)))
		buf.WriteString(k)
		vb, err := p[k].MarshalBinary()
		if err != nil {
			return nil, err
		}
		putUvarint(uint64(len(vb)))
		buf.Write(vb)
	}
	return buf.Bytes(), nil
}

// UnmarshalProperties decodes a map produced by Properties.MarshalBinary.
func UnmarshalProperties(data []byte) (Properties, error) {
	rd := bytes.NewReader(data)
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("model: bad property count: %w", err)
	}
	p := make(Properties, n)
	for i := uint64(0); i < n; i++ {
		klen, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("model: bad key length: %w", err)
		}
		kb := make([]byte, klen)
		if _, err := rd.Read(kb); err != nil {
			return nil, fmt.Errorf("model: bad key bytes: %w", err)
		}
		vlen, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("model: bad value length: %w", err)
		}
		vb := make([]byte, vlen)
		if _, err := rd.Read(vb); err != nil {
			return nil, fmt.Errorf("model: bad value bytes: %w", err)
		}
		v, err := UnmarshalValue(vb)
		if err != nil {
			return nil, err
		}
		p[string(kb)] = v
	}
	return p, nil
}
