package model

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestPropsBuilder(t *testing.T) {
	p := Props("name", "ada", "age", 36, "score", 9.5, "active", true)
	if v, _ := p["name"].AsString(); v != "ada" {
		t.Errorf("name = %v", p["name"])
	}
	if v, _ := p["age"].AsInt(); v != 36 {
		t.Errorf("age = %v", p["age"])
	}
	if v, _ := p["score"].AsFloat(); v != 9.5 {
		t.Errorf("score = %v", p["score"])
	}
	if v, _ := p["active"].AsBool(); !v {
		t.Errorf("active = %v", p["active"])
	}
}

func TestPropsBuilderPanics(t *testing.T) {
	assertPanics(t, func() { Props("only-key") })
	assertPanics(t, func() { Props(1, "value") })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestPropsGetHasClone(t *testing.T) {
	var nilProps Properties
	if !nilProps.Get("x").IsNull() {
		t.Error("nil props Get should be null")
	}
	if nilProps.Has("x") {
		t.Error("nil props Has should be false")
	}
	if nilProps.Clone() != nil {
		t.Error("nil props Clone should be nil")
	}
	p := Props("a", 1)
	c := p.Clone()
	c["a"] = Int(2)
	if v, _ := p["a"].AsInt(); v != 1 {
		t.Error("Clone should be independent")
	}
}

func TestPropsEqual(t *testing.T) {
	a := Props("x", 1, "y", "z")
	b := Props("y", "z", "x", 1)
	if !a.Equal(b) {
		t.Error("equal maps reported unequal")
	}
	if a.Equal(Props("x", 1)) {
		t.Error("different sizes reported equal")
	}
	if a.Equal(Props("x", 2, "y", "z")) {
		t.Error("different values reported equal")
	}
	if a.Equal(Props("x", 1, "w", "z")) {
		t.Error("different keys reported equal")
	}
	// Numeric equality across kinds.
	if !Props("n", 1).Equal(Props("n", 1.0)) {
		t.Error("int/float numeric equality should hold")
	}
}

func TestPropsStringDeterministic(t *testing.T) {
	p := Props("b", 2, "a", 1)
	want := "{a: 1, b: 2}"
	for i := 0; i < 10; i++ {
		if got := p.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestPropsMarshalRoundTrip(t *testing.T) {
	p := Props("name", "grace", "year", 1952, "ratio", 0.25, "ok", true)
	b, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProperties(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Errorf("round trip: got %v want %v", got, p)
	}
	// Empty map round trip.
	b2, err := Properties{}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := UnmarshalProperties(b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 0 {
		t.Errorf("empty round trip has %d keys", len(got2))
	}
}

func TestPropsMarshalDeterministic(t *testing.T) {
	p := Props("z", 1, "a", 2, "m", 3)
	b1, _ := p.MarshalBinary()
	b2, _ := p.MarshalBinary()
	if !reflect.DeepEqual(b1, b2) {
		t.Error("marshal not deterministic")
	}
}

func TestPropsRoundTripQuick(t *testing.T) {
	f := func(keys []string, ints []int64) bool {
		p := Properties{}
		for i, k := range keys {
			if i < len(ints) {
				p[k] = Int(ints[i])
			} else {
				p[k] = Str(k)
			}
		}
		b, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := UnmarshalProperties(b)
		if err != nil {
			return false
		}
		return got.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalPropertiesErrors(t *testing.T) {
	if _, err := UnmarshalProperties(nil); err == nil {
		t.Error("nil should fail")
	}
	// Claim one entry but provide nothing else.
	if _, err := UnmarshalProperties([]byte{1}); err == nil {
		t.Error("truncated should fail")
	}
}
