package model

import (
	"fmt"
	"sort"
	"sync"
)

// PropertyType declares a typed attribute inside a node or relation type.
// Required properties must be present on every instance; Unique properties
// identify the instance among all instances of the owning type (the survey's
// "node/edge identity by attribute values").
type PropertyType struct {
	Name     string
	Kind     Kind
	Required bool
	Unique   bool
}

// Cardinality bounds how many relation instances of a type may leave a single
// source node. Max == 0 means unbounded.
type Cardinality struct {
	Min int
	Max int
}

// NodeType declares a class of nodes at the schema level.
type NodeType struct {
	Name       string
	Properties []PropertyType
}

// Property returns the declared property with the given name.
func (t *NodeType) Property(name string) (PropertyType, bool) {
	for _, p := range t.Properties {
		if p.Name == name {
			return p, true
		}
	}
	return PropertyType{}, false
}

// RelationKind distinguishes plain relations from the "complex relations"
// of the survey: grouping, derivation and inheritance semantics.
type RelationKind uint8

const (
	RelationPlain RelationKind = iota
	RelationGrouping
	RelationDerivation
	RelationInheritance
)

// String names the relation kind.
func (k RelationKind) String() string {
	switch k {
	case RelationPlain:
		return "plain"
	case RelationGrouping:
		return "grouping"
	case RelationDerivation:
		return "derivation"
	case RelationInheritance:
		return "inheritance"
	default:
		return fmt.Sprintf("relationkind(%d)", uint8(k))
	}
}

// RelationType declares a class of edges at the schema level. From/To name
// node types; empty strings mean "any". Optional relation types may be absent
// on an instance without violating Min cardinality (the schema-evolution
// mechanism the paper advocates in Section III-C).
type RelationType struct {
	Name        string
	From, To    string
	Kind        RelationKind
	Properties  []PropertyType
	Cardinality Cardinality
	Optional    bool
}

// Property returns the declared property with the given name.
func (t *RelationType) Property(name string) (PropertyType, bool) {
	for _, p := range t.Properties {
		if p.Name == name {
			return p, true
		}
	}
	return PropertyType{}, false
}

// Schema is a mutable catalog of node and relation types. It is safe for
// concurrent use. Engines that the survey marks without a Data Definition
// Language simply never expose a schema to their users.
type Schema struct {
	mu        sync.RWMutex
	nodes     map[string]*NodeType
	relations map[string]*RelationType
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		nodes:     make(map[string]*NodeType),
		relations: make(map[string]*RelationType),
	}
}

// DefineNodeType registers a node type. Redefinition of an existing name
// fails with ErrAlreadyExists.
func (s *Schema) DefineNodeType(t NodeType) error {
	if t.Name == "" {
		return fmt.Errorf("schema: node type needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.nodes[t.Name]; ok {
		return fmt.Errorf("node type %q: %w", t.Name, ErrAlreadyExists)
	}
	cp := t
	cp.Properties = append([]PropertyType(nil), t.Properties...)
	s.nodes[t.Name] = &cp
	return nil
}

// DefineRelationType registers a relation type. Referential targets must be
// declared node types (or empty for "any").
func (s *Schema) DefineRelationType(t RelationType) error {
	if t.Name == "" {
		return fmt.Errorf("schema: relation type needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.relations[t.Name]; ok {
		return fmt.Errorf("relation type %q: %w", t.Name, ErrAlreadyExists)
	}
	for _, end := range []string{t.From, t.To} {
		if end == "" {
			continue
		}
		if _, ok := s.nodes[end]; !ok {
			return fmt.Errorf("relation type %q references undeclared node type %q: %w", t.Name, end, ErrNotFound)
		}
	}
	cp := t
	cp.Properties = append([]PropertyType(nil), t.Properties...)
	s.relations[t.Name] = &cp
	return nil
}

// DropNodeType removes a node type; it fails if any relation type still
// references it.
func (s *Schema) DropNodeType(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.nodes[name]; !ok {
		return fmt.Errorf("node type %q: %w", name, ErrNotFound)
	}
	for _, r := range s.relations {
		if r.From == name || r.To == name {
			return fmt.Errorf("node type %q still referenced by relation type %q", name, r.Name)
		}
	}
	delete(s.nodes, name)
	return nil
}

// DropRelationType removes a relation type.
func (s *Schema) DropRelationType(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.relations[name]; !ok {
		return fmt.Errorf("relation type %q: %w", name, ErrNotFound)
	}
	delete(s.relations, name)
	return nil
}

// NodeType returns the declared node type with the given name.
func (s *Schema) NodeType(name string) (*NodeType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.nodes[name]
	return t, ok
}

// RelationType returns the declared relation type with the given name.
func (s *Schema) RelationType(name string) (*RelationType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.relations[name]
	return t, ok
}

// NodeTypes lists declared node types sorted by name.
func (s *Schema) NodeTypes() []*NodeType {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*NodeType, 0, len(s.nodes))
	for _, t := range s.nodes {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RelationTypes lists declared relation types sorted by name.
func (s *Schema) RelationTypes() []*RelationType {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*RelationType, 0, len(s.relations))
	for _, t := range s.relations {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// EnsureNodeType declares label as an open node type covering the given
// properties, or widens an existing declaration with unseen properties. It
// is the loader-side convenience for typed engines ingesting schemaless
// datasets: the explicit "create type" step is performed implicitly.
func (s *Schema) EnsureNodeType(label string, props Properties) {
	if label == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.nodes[label]
	if !ok {
		t = &NodeType{Name: label}
		s.nodes[label] = t
	}
	for k, v := range props {
		if !declared(t.Properties, k) {
			t.Properties = append(t.Properties, PropertyType{Name: k, Kind: v.Kind()})
		}
	}
}

// EnsureRelationType declares label as an open relation type covering the
// given properties, or widens an existing declaration.
func (s *Schema) EnsureRelationType(label string, props Properties) {
	if label == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.relations[label]
	if !ok {
		t = &RelationType{Name: label}
		s.relations[label] = t
	}
	for k, v := range props {
		if !declared(t.Properties, k) {
			t.Properties = append(t.Properties, PropertyType{Name: k, Kind: v.Kind()})
		}
	}
}

// CheckNode validates a node record against the schema: declared label,
// declared property names, kinds, and required presence. Engines without
// types checking skip this. An empty label always passes (untyped node).
func (s *Schema) CheckNode(n Node) error {
	if n.Label == "" {
		return nil
	}
	t, ok := s.NodeType(n.Label)
	if !ok {
		return fmt.Errorf("node label %q is not a declared type: %w", n.Label, ErrConstraint)
	}
	return checkProps(n.Props, t.Properties, "node type "+t.Name)
}

// CheckEdge validates an edge record and its endpoint labels.
func (s *Schema) CheckEdge(e Edge, fromLabel, toLabel string) error {
	if e.Label == "" {
		return nil
	}
	t, ok := s.RelationType(e.Label)
	if !ok {
		return fmt.Errorf("edge label %q is not a declared relation type: %w", e.Label, ErrConstraint)
	}
	if t.From != "" && t.From != fromLabel {
		return fmt.Errorf("relation %q requires source type %q, got %q: %w", t.Name, t.From, fromLabel, ErrConstraint)
	}
	if t.To != "" && t.To != toLabel {
		return fmt.Errorf("relation %q requires target type %q, got %q: %w", t.Name, t.To, toLabel, ErrConstraint)
	}
	return checkProps(e.Props, t.Properties, "relation type "+t.Name)
}

func checkProps(props Properties, decls []PropertyType, owner string) error {
	for _, d := range decls {
		v, present := props[d.Name]
		if !present {
			if d.Required {
				return fmt.Errorf("%s: missing required property %q: %w", owner, d.Name, ErrConstraint)
			}
			continue
		}
		if v.Kind() != d.Kind && !(v.Kind() == KindInt && d.Kind == KindFloat) {
			return fmt.Errorf("%s: property %q has kind %v, want %v: %w", owner, d.Name, v.Kind(), d.Kind, ErrConstraint)
		}
	}
	for name := range props {
		if !declared(decls, name) {
			return fmt.Errorf("%s: property %q is not declared: %w", owner, name, ErrConstraint)
		}
	}
	return nil
}

func declared(decls []PropertyType, name string) bool {
	for _, d := range decls {
		if d.Name == name {
			return true
		}
	}
	return false
}
