package model

import (
	"errors"
	"testing"
)

func personSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	if err := s.DefineNodeType(NodeType{
		Name: "Person",
		Properties: []PropertyType{
			{Name: "name", Kind: KindString, Required: true, Unique: true},
			{Name: "age", Kind: KindInt},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineNodeType(NodeType{Name: "City"}); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineRelationType(RelationType{
		Name: "livesIn", From: "Person", To: "City",
		Cardinality: Cardinality{Max: 1},
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaDefineAndLookup(t *testing.T) {
	s := personSchema(t)
	nt, ok := s.NodeType("Person")
	if !ok || nt.Name != "Person" {
		t.Fatalf("NodeType lookup failed: %v %v", nt, ok)
	}
	if _, ok := nt.Property("name"); !ok {
		t.Error("Property(name) not found")
	}
	if _, ok := nt.Property("ghost"); ok {
		t.Error("Property(ghost) should not exist")
	}
	rt, ok := s.RelationType("livesIn")
	if !ok || rt.From != "Person" || rt.To != "City" {
		t.Fatalf("RelationType lookup failed: %+v %v", rt, ok)
	}
	if got := len(s.NodeTypes()); got != 2 {
		t.Errorf("NodeTypes len = %d", got)
	}
	if got := len(s.RelationTypes()); got != 1 {
		t.Errorf("RelationTypes len = %d", got)
	}
}

func TestSchemaDuplicateAndMissing(t *testing.T) {
	s := personSchema(t)
	if err := s.DefineNodeType(NodeType{Name: "Person"}); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("duplicate node type: %v", err)
	}
	if err := s.DefineRelationType(RelationType{Name: "livesIn"}); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("duplicate relation type: %v", err)
	}
	if err := s.DefineRelationType(RelationType{Name: "x", From: "Nope"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("undeclared endpoint: %v", err)
	}
	if err := s.DefineNodeType(NodeType{}); err == nil {
		t.Error("empty name should fail")
	}
}

func TestSchemaDrop(t *testing.T) {
	s := personSchema(t)
	if err := s.DropNodeType("Person"); err == nil {
		t.Error("dropping referenced node type should fail")
	}
	if err := s.DropRelationType("livesIn"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropNodeType("Person"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropNodeType("Person"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double drop: %v", err)
	}
	if err := s.DropRelationType("livesIn"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double drop relation: %v", err)
	}
}

func TestSchemaCheckNode(t *testing.T) {
	s := personSchema(t)
	ok := Node{Label: "Person", Props: Props("name", "ada", "age", 36)}
	if err := s.CheckNode(ok); err != nil {
		t.Errorf("valid node rejected: %v", err)
	}
	// Untyped nodes always pass.
	if err := s.CheckNode(Node{Props: Props("anything", 1)}); err != nil {
		t.Errorf("untyped node rejected: %v", err)
	}
	cases := []Node{
		{Label: "Ghost"}, // undeclared label
		{Label: "Person", Props: Props("age", 30)},             // missing required
		{Label: "Person", Props: Props("name", 5)},             // wrong kind
		{Label: "Person", Props: Props("name", "x", "pet", 1)}, // undeclared prop
	}
	for i, n := range cases {
		if err := s.CheckNode(n); !errors.Is(err, ErrConstraint) {
			t.Errorf("case %d: want constraint violation, got %v", i, err)
		}
	}
	// Int accepted where float declared.
	s2 := NewSchema()
	s2.DefineNodeType(NodeType{Name: "M", Properties: []PropertyType{{Name: "w", Kind: KindFloat}}})
	if err := s2.CheckNode(Node{Label: "M", Props: Props("w", 3)}); err != nil {
		t.Errorf("int-for-float rejected: %v", err)
	}
}

func TestSchemaCheckEdge(t *testing.T) {
	s := personSchema(t)
	e := Edge{Label: "livesIn"}
	if err := s.CheckEdge(e, "Person", "City"); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if err := s.CheckEdge(e, "City", "City"); !errors.Is(err, ErrConstraint) {
		t.Errorf("wrong source: %v", err)
	}
	if err := s.CheckEdge(e, "Person", "Person"); !errors.Is(err, ErrConstraint) {
		t.Errorf("wrong target: %v", err)
	}
	if err := s.CheckEdge(Edge{Label: "nope"}, "", ""); !errors.Is(err, ErrConstraint) {
		t.Errorf("undeclared relation: %v", err)
	}
	if err := s.CheckEdge(Edge{}, "", ""); err != nil {
		t.Errorf("unlabeled edge rejected: %v", err)
	}
}

func TestRelationKindString(t *testing.T) {
	want := map[RelationKind]string{
		RelationPlain:       "plain",
		RelationGrouping:    "grouping",
		RelationDerivation:  "derivation",
		RelationInheritance: "inheritance",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestDirectionHelpers(t *testing.T) {
	if Out.Reverse() != In || In.Reverse() != Out || Both.Reverse() != Both {
		t.Error("Reverse is wrong")
	}
	if Out.String() != "out" || In.String() != "in" || Both.String() != "both" {
		t.Error("Direction.String is wrong")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindNull: "null", KindBool: "bool", KindInt: "int", KindFloat: "float", KindString: "string"} {
		if k.String() != want {
			t.Errorf("kind %d: %q", k, k.String())
		}
	}
}
