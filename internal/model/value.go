// Package model defines the logical data model shared by every engine in the
// repository: typed values, property maps, identifiers, graph structure
// interfaces and schemas. It corresponds to the "data structure types"
// component of a database model in the sense of Codd (1980), which the
// surveyed paper uses as its comparison frame.
package model

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the primitive value types supported by the model layer.
type Kind uint8

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a typed scalar. The zero Value is the null value. Values are
// comparable with == only within the same kind; use Compare or Equal for
// cross-kind semantics (numeric kinds compare numerically).
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the null value.
func Null() Value { return Value{} }

// Bool wraps a bool.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Int wraps an int64.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String wraps a string.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Of converts a native Go value into a Value. Unsupported types yield null.
func Of(v any) Value {
	switch x := v.(type) {
	case nil:
		return Null()
	case bool:
		return Bool(x)
	case int:
		return Int(int64(x))
	case int32:
		return Int(int64(x))
	case int64:
		return Int(x)
	case uint32:
		return Int(int64(x))
	case float32:
		return Float(float64(x))
	case float64:
		return Float(x)
	case string:
		return Str(x)
	case Value:
		return x
	default:
		return Null()
	}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; ok is false for non-bool values.
func (v Value) AsBool() (val, ok bool) { return v.b, v.kind == KindBool }

// AsInt returns the integer payload; ok is false for non-int values.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns a float for int or float values.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	}
	return 0, false
}

// AsString returns the string payload; ok is false for non-string values.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// Native returns the value as a plain Go value (nil, bool, int64, float64 or
// string).
func (v Value) Native() any {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i
	case KindFloat:
		return v.f
	case KindString:
		return v.s
	default:
		return nil
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// Equal reports semantic equality: numeric kinds compare numerically, other
// kinds must match exactly.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare orders two values. Values of different non-numeric kinds order by
// kind tag (null < bool < numeric < string); int and float compare
// numerically. The result is -1, 0 or +1.
func (v Value) Compare(o Value) int {
	va, aok := v.AsFloat()
	vb, bok := o.AsFloat()
	if aok && bok {
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		default:
			// Distinguish equal-magnitude int vs float only by payload
			// equality; 1 == 1.0 in this model.
			return 0
		}
	}
	if v.kind != o.kind {
		if rank(v.kind) < rank(o.kind) {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	}
	return 0
}

// rank collapses int and float to a single numeric rank for cross-kind order.
func rank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	}
	return 4
}

// EncodeKey renders the value as an order-preserving byte key, suitable for
// ordered indexes: bytewise comparison of two encoded values agrees with
// Compare. The layout is a rank tag byte followed by a payload.
func (v Value) EncodeKey(dst []byte) []byte {
	dst = append(dst, byte(rank(v.kind)))
	switch v.kind {
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt, KindFloat:
		f, _ := v.AsFloat()
		bits := math.Float64bits(f)
		// Flip so that bytewise order equals numeric order.
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		dst = append(dst, buf[:]...)
	case KindString:
		dst = append(dst, v.s...)
	}
	return dst
}

// MarshalBinary encodes the value for storage (not order-preserving).
func (v Value) MarshalBinary() ([]byte, error) {
	switch v.kind {
	case KindNull:
		return []byte{byte(KindNull)}, nil
	case KindBool:
		if v.b {
			return []byte{byte(KindBool), 1}, nil
		}
		return []byte{byte(KindBool), 0}, nil
	case KindInt:
		buf := make([]byte, 9)
		buf[0] = byte(KindInt)
		binary.BigEndian.PutUint64(buf[1:], uint64(v.i))
		return buf, nil
	case KindFloat:
		buf := make([]byte, 9)
		buf[0] = byte(KindFloat)
		binary.BigEndian.PutUint64(buf[1:], math.Float64bits(v.f))
		return buf, nil
	case KindString:
		buf := make([]byte, 1+len(v.s))
		buf[0] = byte(KindString)
		copy(buf[1:], v.s)
		return buf, nil
	}
	return nil, fmt.Errorf("model: cannot marshal value of kind %v", v.kind)
}

// UnmarshalValue decodes a value produced by MarshalBinary.
func UnmarshalValue(data []byte) (Value, error) {
	if len(data) == 0 {
		return Value{}, fmt.Errorf("model: empty value encoding")
	}
	switch Kind(data[0]) {
	case KindNull:
		return Null(), nil
	case KindBool:
		if len(data) != 2 {
			return Value{}, fmt.Errorf("model: bad bool encoding length %d", len(data))
		}
		return Bool(data[1] == 1), nil
	case KindInt:
		if len(data) != 9 {
			return Value{}, fmt.Errorf("model: bad int encoding length %d", len(data))
		}
		return Int(int64(binary.BigEndian.Uint64(data[1:]))), nil
	case KindFloat:
		if len(data) != 9 {
			return Value{}, fmt.Errorf("model: bad float encoding length %d", len(data))
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(data[1:]))), nil
	case KindString:
		return Str(string(data[1:])), nil
	}
	return Value{}, fmt.Errorf("model: unknown value kind tag %d", data[0])
}
