package model

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() should be null")
	}
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Fatalf("Bool(true) = %v, %v", v, ok)
	}
	if v, ok := Int(42).AsInt(); !ok || v != 42 {
		t.Fatalf("Int(42) = %v, %v", v, ok)
	}
	if v, ok := Float(2.5).AsFloat(); !ok || v != 2.5 {
		t.Fatalf("Float(2.5) = %v, %v", v, ok)
	}
	if v, ok := Str("x").AsString(); !ok || v != "x" {
		t.Fatalf("Str(x) = %v, %v", v, ok)
	}
	// Cross accessors fail.
	if _, ok := Int(1).AsBool(); ok {
		t.Fatal("Int should not read as bool")
	}
	if _, ok := Str("a").AsInt(); ok {
		t.Fatal("Str should not read as int")
	}
	// Int reads as float.
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Fatalf("Int(3).AsFloat() = %v, %v", f, ok)
	}
}

func TestOfConversions(t *testing.T) {
	cases := []struct {
		in   any
		want Value
	}{
		{nil, Null()},
		{true, Bool(true)},
		{7, Int(7)},
		{int32(7), Int(7)},
		{int64(7), Int(7)},
		{uint32(7), Int(7)},
		{float32(1.5), Float(1.5)},
		{2.25, Float(2.25)},
		{"hi", Str("hi")},
		{Int(9), Int(9)},
		{struct{}{}, Null()},
	}
	for _, c := range cases {
		if got := Of(c.in); !got.Equal(c.want) {
			t.Errorf("Of(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.0), 0},
		{Float(0.5), Int(1), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Null(), Bool(false), -1},
		{Bool(true), Int(0), -1},
		{Int(10), Str(""), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"null": Null(),
		"true": Bool(true),
		"-3":   Int(-3),
		"2.5":  Float(2.5),
		"abc":  Str("abc"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestEncodeKeyOrderMatchesCompare(t *testing.T) {
	vals := []Value{
		Null(), Bool(false), Bool(true),
		Int(math.MinInt64 / 2), Int(-1), Int(0), Int(1), Int(1 << 40),
		Float(-1e300), Float(-0.5), Float(0), Float(0.5), Float(1e300),
		Str(""), Str("a"), Str("ab"), Str("b"),
	}
	for _, a := range vals {
		for _, b := range vals {
			ka := a.EncodeKey(nil)
			kb := b.EncodeKey(nil)
			cmpKeys := bytes.Compare(ka, kb)
			cmpVals := a.Compare(b)
			if (cmpKeys < 0) != (cmpVals < 0) || (cmpKeys > 0) != (cmpVals > 0) {
				t.Errorf("key order disagrees for %v vs %v: keys %d, vals %d", a, b, cmpKeys, cmpVals)
			}
		}
	}
}

func TestValueMarshalRoundTrip(t *testing.T) {
	vals := []Value{Null(), Bool(true), Bool(false), Int(-99), Int(1 << 50), Float(3.14159), Str(""), Str("hello world")}
	for _, v := range vals {
		b, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		got, err := UnmarshalValue(b)
		if err != nil {
			t.Fatalf("unmarshal %v: %v", v, err)
		}
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestUnmarshalValueErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{byte(KindBool)},      // too short
		{byte(KindInt), 1, 2}, // wrong length
		{byte(KindFloat), 1},  // wrong length
		{200},                 // unknown tag
	}
	for _, b := range bad {
		if _, err := UnmarshalValue(b); err == nil {
			t.Errorf("UnmarshalValue(%v) should fail", b)
		}
	}
}

func TestIntMarshalQuick(t *testing.T) {
	f := func(x int64) bool {
		b, err := Int(x).MarshalBinary()
		if err != nil {
			return false
		}
		v, err := UnmarshalValue(b)
		if err != nil {
			return false
		}
		got, ok := v.AsInt()
		return ok && got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatKeyOrderQuick(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := Float(a).EncodeKey(nil)
		kb := Float(b).EncodeKey(nil)
		c := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
