// Package obs is the observability substrate of the workbench: a
// lock-cheap metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms), per-query span tracing carried through
// context.Context, a slow-query log rendered through the vfs seam, and a
// pprof-label hook for worker-pool tasks.
//
// The package is zero-dependency (standard library plus the repo's own
// vfs seam) and nil-safe throughout: a nil *Registry hands out nil
// collectors, and every collector and trace method is a cheap no-op on a
// nil receiver. Instrumented code therefore needs no "observability off"
// branches — it records unconditionally, and when nothing is listening
// the records cost one nil check.
//
// The cardinal rule, enforced by the differential twins in
// internal/enginetest/diff, is that observation never changes answers:
// tracing on and tracing off must render byte-identical query results.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a valid no-op sink.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use;
// a nil *Gauge is a valid no-op sink.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value; zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the histogram bounds used when none are given:
// a 1-2.5-5 ladder from one microsecond to ten seconds, in nanoseconds.
var DefaultLatencyBuckets = []int64{
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
	10_000_000, 25_000_000, 50_000_000, 100_000_000, 250_000_000, 500_000_000,
	1_000_000_000, 2_500_000_000, 5_000_000_000, 10_000_000_000,
}

// Histogram counts observations into fixed buckets chosen at construction.
// Bucket i holds observations v with bounds[i-1] < v <= bounds[i]; one
// overflow bucket past the last bound catches the rest. Observations are
// a single atomic increment; a nil *Histogram is a valid no-op sink.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	count  atomic.Uint64
	sum    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := append([]int64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending at %d", i))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a consistent-enough copy of a histogram's state:
// each field is read atomically, so concurrent observers may skew the
// totals by in-flight observations but never corrupt them.
type HistogramSnapshot struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"` // len(Bounds)+1, last is overflow
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
}

// Snapshot copies the histogram's current state; zero-valued on nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry hands out named collectors. Lookup takes a read lock only;
// creation upgrades to the write lock once per name. A nil *Registry
// returns nil collectors, which are themselves no-op sinks, so code can
// thread an optional registry without branching.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds (DefaultLatencyBuckets when none) on first use. Later calls
// return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Counters returns a sorted-key snapshot of every counter's value.
func (r *Registry) Counters() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Render prints the registry one collector per line, sorted by name —
// the \stats surface of gdbshell.
func (r *Registry) Render() string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", name, g.Value()))
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		mean := int64(0)
		if s.Count > 0 {
			mean = s.Sum / int64(s.Count)
		}
		lines = append(lines, fmt.Sprintf("histogram %s: count=%d sum=%d mean=%d", name, s.Count, s.Sum, mean))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
