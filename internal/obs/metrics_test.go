package obs

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Get-or-create races against increments on purpose.
				r.Counter("queries").Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("lat").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("queries").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("depth").Value(); got != workers*per {
		t.Fatalf("gauge = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("lat").Snapshot().Count; got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Fatal("distinct names must return distinct counters")
	}
	if r.Histogram("h") != r.Histogram("h", 1, 2, 3) {
		t.Fatal("later Histogram calls must return the existing histogram")
	}
}

// TestHistogramBucketBoundaries pins the bucket rule: bucket i counts
// bounds[i-1] < v <= bounds[i], with one overflow bucket past the end.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {9, 0}, {10, 0}, // at the bound -> that bucket
		{11, 1}, {100, 1},
		{101, 2}, {1000, 2},
		{1001, 3}, {1 << 40, 3}, // overflow
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	want := make([]uint64, 4)
	var sum int64
	for _, c := range cases {
		want[c.bucket]++
		sum += c.v
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Errorf("bucket %d: count %d, want %d", i, s.Counts[i], want[i])
		}
	}
	if s.Count != uint64(len(cases)) {
		t.Errorf("total count %d, want %d", s.Count, len(cases))
	}
	if s.Sum != sum {
		t.Errorf("sum %d, want %d", s.Sum, sum)
	}
	if len(s.Counts) != len(s.Bounds)+1 {
		t.Errorf("counts len %d, want bounds+1 = %d", len(s.Counts), len(s.Bounds)+1)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := newHistogram(nil)
	if len(h.bounds) != len(DefaultLatencyBuckets) {
		t.Fatalf("default bounds len %d, want %d", len(h.bounds), len(DefaultLatencyBuckets))
	}
	h.Observe(1) // 1ns -> first bucket
	if got := h.Snapshot().Counts[0]; got != 1 {
		t.Fatalf("first bucket = %d, want 1", got)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	newHistogram([]int64{10, 10})
}

// TestNilSafety is the tracing-off fast path: every collector method must
// be a harmless no-op on nil receivers and nil registries.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	r.Gauge("x").Set(5)
	r.Histogram("x").Observe(5)
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 {
		t.Fatal("nil collectors must read zero")
	}
	if s := r.Histogram("x").Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
	if r.Counters() != nil || r.Render() != "" {
		t.Fatal("nil registry snapshots must be empty")
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.second").Add(2)
	r.Counter("a.first").Inc()
	out := r.Render()
	want := "counter a.first = 1\ncounter b.second = 2"
	if out != want {
		t.Fatalf("Render:\n%q\nwant:\n%q", out, want)
	}
}
