package obs

import (
	"context"
	"runtime/pprof"
)

// Profile runs fn with the given pprof label set (alternating key, value
// pairs) attached for the duration of the call, so CPU profiles taken
// while a worker pool is busy attribute samples to the work they belong
// to. An empty or odd-length label list runs fn without labels; fn always
// runs exactly once on the calling goroutine.
func Profile(ctx context.Context, fn func(context.Context), labels ...string) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(labels) == 0 || len(labels)%2 != 0 {
		fn(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(labels...), fn)
}
