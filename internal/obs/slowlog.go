package obs

import (
	"sync"
	"time"

	"gdbm/internal/storage/vfs"
)

// SlowLog appends the one-line Record of every observed trace whose wall
// time meets the threshold. All writes go through the vfs seam, so the
// crash harness can intercept them and the vfsonly invariant holds for
// every tool that opens one. A nil *SlowLog observes nothing, which is
// the "slow log off" path.
type SlowLog struct {
	mu        sync.Mutex
	f         vfs.File
	off       int64
	threshold time.Duration
}

// OpenSlowLog opens (appending to) the log at path on fsys; nil fsys
// means the real filesystem. Traces at or above threshold are recorded; a
// zero threshold records every observed trace.
func OpenSlowLog(fsys vfs.FS, path string, threshold time.Duration) (*SlowLog, error) {
	if fsys == nil {
		fsys = vfs.OS()
	}
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &SlowLog{f: f, off: size, threshold: threshold}, nil
}

// Threshold returns the configured threshold; zero on a nil receiver.
func (s *SlowLog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.threshold
}

// Observe appends tr's Record when its finished wall time is at or above
// the threshold. Unfinished (or nil) traces are never recorded, so a
// crashed query cannot leave a half-timed entry.
func (s *SlowLog) Observe(tr *Trace) error {
	if s == nil || tr == nil {
		return nil
	}
	tr.mu.Lock()
	finished := tr.done
	wall := tr.wall
	tr.mu.Unlock()
	if !finished || wall < s.threshold {
		return nil
	}
	line := append([]byte(tr.Record()), '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.f.WriteAt(line, s.off)
	s.off += int64(n)
	return err
}

// Close syncs and closes the log file.
func (s *SlowLog) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
