package obs

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gdbm/internal/storage/vfs"
)

func readAll(t *testing.T, path string) string {
	t.Helper()
	f, err := vfs.OS().OpenFile(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	return string(buf)
}

func TestSlowLogThreshold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.log")
	sl, err := OpenSlowLog(vfs.OS(), path, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	fast := New("fast-query")
	fast.Finish()
	if err := sl.Observe(fast); err != nil {
		t.Fatal(err)
	}

	slow := New("slow-query")
	time.Sleep(60 * time.Millisecond)
	slow.Add("cache.page.misses", 7)
	slow.Finish()
	if err := sl.Observe(slow); err != nil {
		t.Fatal(err)
	}

	unfinished := New("never-finished")
	if err := sl.Observe(unfinished); err != nil {
		t.Fatal(err)
	}

	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, path)
	lines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log has %d lines, want 1:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], `trace="slow-query"`) || !strings.Contains(lines[0], "ctr=cache.page.misses:7") {
		t.Fatalf("unexpected record: %s", lines[0])
	}
}

// TestSlowLogAppends proves reopening appends rather than truncating, so
// a long-lived instance's history survives restarts.
func TestSlowLogAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.log")
	for i := 0; i < 2; i++ {
		sl, err := OpenSlowLog(nil, path, 0)
		if err != nil {
			t.Fatal(err)
		}
		tr := New("q")
		tr.Finish()
		if err := sl.Observe(tr); err != nil {
			t.Fatal(err)
		}
		if err := sl.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := strings.Count(readAll(t, path), "\n"); got != 2 {
		t.Fatalf("expected 2 appended records, got %d", got)
	}
}

func TestSlowLogNil(t *testing.T) {
	var sl *SlowLog
	if err := sl.Observe(New("q")); err != nil {
		t.Fatal(err)
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	if sl.Threshold() != 0 {
		t.Fatal("nil slow log threshold must be zero")
	}
}
