package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one completed, named interval of a trace. Start is the offset
// from the trace's start; Depth is the number of spans open when this one
// began (0 for top-level spans), so non-overlapping wall-time accounting
// sums the depth-0 spans only.
type Span struct {
	Name  string        `json:"name"`
	Depth int           `json:"depth"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Trace accumulates the spans and counters of one query execution. It is
// carried through context.Context (WithTrace / FromContext); code that
// may run without tracing calls the methods on whatever FromContext
// returns — every method is a cheap no-op on a nil receiver, which is the
// "tracing off" fast path.
//
// Spans must nest within one goroutine; concurrent helpers (worker-pool
// tasks) contribute through Add, which is safe from any goroutine.
type Trace struct {
	name  string
	start time.Time

	mu       sync.Mutex
	open     int // currently open spans, for Depth
	spans    []Span
	counters map[string]int64
	wall     time.Duration
	done     bool
}

// New starts a trace named after the work it times (usually the query
// text or kernel name).
func New(name string) *Trace {
	return &Trace{name: name, start: time.Now(), counters: map[string]int64{}}
}

// Name returns the trace's name; empty on a nil receiver.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

type ctxKey struct{}

// WithTrace returns a context carrying t. A nil trace returns ctx
// unchanged, so callers can thread an optional trace unconditionally.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil when tracing is
// off. The nil result is usable directly: all Trace methods no-op on it.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// noopEnd is the shared end function of the tracing-off fast path.
var noopEnd = func() {}

// StartSpan opens a named span and returns the function that closes it.
// The end function must be called on every return path of the function
// that opened the span — the gdbvet obsctx analyzer enforces this
// statically; `defer t.StartSpan("x")()` is the common form. Calling the
// end function more than once records the span once, at the first call.
// On a nil receiver StartSpan returns a shared no-op.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return noopEnd
	}
	t.mu.Lock()
	depth := t.open
	t.open++
	t.mu.Unlock()
	start := time.Since(t.start)
	var once sync.Once
	return func() {
		once.Do(func() {
			dur := time.Since(t.start) - start
			t.mu.Lock()
			t.open--
			t.spans = append(t.spans, Span{Name: name, Depth: depth, Start: start, Dur: dur})
			t.mu.Unlock()
		})
	}
}

// Add accumulates delta into the named trace counter (cache hits by tier,
// pages read, WAL syncs, queue-wait nanoseconds, ...). Safe from any
// goroutine; a no-op on nil receivers and zero deltas.
func (t *Trace) Add(counter string, delta int64) {
	if t == nil || delta == 0 {
		return
	}
	t.mu.Lock()
	t.counters[counter] += delta
	t.mu.Unlock()
}

// Finish fixes the trace's wall time at the first call and returns it.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	wall := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.done = true
		t.wall = wall
	}
	return t.wall
}

// Wall returns the finished wall time (zero before Finish or on nil).
func (t *Trace) Wall() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wall
}

// Spans returns a copy of the completed spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Counters returns a copy of the trace counters.
func (t *Trace) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// Record renders the finished trace as one structured line — the
// slow-query log format (see DESIGN.md "Observability contract"):
//
//	trace="<name>" wall_ns=<n> span=<name>@<depth>:<dur_ns>... ctr=<name>:<v>...
//
// Spans appear in completion order; counters sorted by name. Empty on a
// nil receiver.
func (t *Trace) Record() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "trace=%q wall_ns=%d", t.name, t.wall.Nanoseconds())
	for _, s := range t.spans {
		fmt.Fprintf(&b, " span=%s@%d:%d", s.Name, s.Depth, s.Dur.Nanoseconds())
	}
	keys := make([]string, 0, len(t.counters))
	for k := range t.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " ctr=%s:%d", k, t.counters[k])
	}
	return b.String()
}
